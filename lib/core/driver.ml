module Prog = Hecate_ir.Prog
module Typing = Hecate_ir.Typing
module Passes = Hecate_ir.Passes
module Pass_manager = Hecate_ir.Pass_manager
module Diagnostic = Hecate_ir.Diagnostic

type scheme = Eva | Pars | Smse | Hecate

type exploration_stats = {
  units : int;
  smu_edges : int;
  use_def_edges : int;
  epochs : int;
  plans_explored : int;
  cache_hits : int;
  trace : Explore.epoch_trace list;
  elapsed_seconds : float;
  best_plan : Explore.plan;
  strategy : string;
  strategies : Explore.strategy_stats list;
  keyed_plan : (string * int) list;
  seeded : bool;
}

type compiled = {
  prog : Prog.t;
  params : Paramselect.t;
  estimated_seconds : float;
  exploration : exploration_stats option;
  pass_timings : Pass_manager.timing list;
}

let scheme_name = function Eva -> "EVA" | Pars -> "PARS" | Smse -> "SMSE" | Hecate -> "HECATE"
let all_schemes = [ Eva; Pars; Smse; Hecate ]

let finalize ?q0_bits ?(early_modswitch = true)
    ?(instr = Pass_manager.instrumentation ()) ?stats ~cfg prog =
  let prog = Pass_manager.run ~instr ?stats (Pass_manager.finalize ~early_modswitch) prog in
  let types =
    match Typing.check cfg prog with Ok tys -> tys | Error d -> Diagnostic.error d
  in
  let params =
    Paramselect.select ?q0_bits
      ~sf_bits:(int_of_float cfg.Typing.sf)
      ~types ~slot_count:prog.Prog.slot_count ()
  in
  (prog, params)

(* Canonical per-edge keys: each SMU edge named by the sorted list of its
   (canonical op id, operand) sites. Alpha-equivalent programs assign
   corresponding ops equal canonical ids, so the keys — unlike raw edge
   indices, which follow op order — survive renumbering, and a cached
   plan transports onto any structurally matching program. *)
let edge_keys prog (edges : Smu.edge array) =
  let ids = Prog.canonical_ids prog in
  Array.map
    (fun (e : Smu.edge) ->
      e.Smu.sites
      |> List.map (fun (op, operand) -> Printf.sprintf "%d.%d" ids.(op) operand)
      |> List.sort String.compare
      |> String.concat ",")
    edges

(* Re-key a cached (site key -> degree) plan onto the current program's
   edges; [None] when nothing carries over. *)
let plan_of_keyed keys keyed =
  match keyed with
  | [] -> None
  | _ ->
      let tbl = Hashtbl.create 16 in
      List.iter (fun (k, d) -> Hashtbl.replace tbl k d) keyed;
      let p =
        Array.map (fun k -> Option.value ~default:0 (Hashtbl.find_opt tbl k)) keys
      in
      if Array.exists (fun d -> d > 0) p then Some p else None

let compile ?(model = Costmodel.analytic ()) ?(max_epochs = 100) ?(naive_exploration = false)
    ?q0_bits ?early_modswitch ?(downscale_analysis = true) ?smu_phases ?noise_budget_bits
    ?pool_size ?(passes = Pass_manager.cleanup) ?(instr = Pass_manager.instrumentation ())
    ?(strategy = Explore.default_strategy) ?gate ?(warm_plans = [])
    ?should_stop ?on_epoch scheme ~sf_bits ~waterline_bits prog =
  if not (Explore.known_strategy strategy) then
    invalid_arg
      (Printf.sprintf "Driver.compile: unknown exploration strategy %S (known: %s, %s)"
         strategy
         (String.concat ", " (Explore.strategy_names ()))
         Explore.portfolio_name);
  let cfg = Typing.config ~sf:(float_of_int sf_bits) ~waterline:waterline_bits () in
  let stats = Pass_manager.create_stats () in
  (* Reject managed inputs up front, for every scheme: Codegen would raise
     the same diagnostic for [Eva]/[Pars], but the exploring schemes hit
     [Smu.generate]'s bare [Invalid_argument] first. *)
  (match
     Array.find_opt
       (fun (o : Prog.op) ->
         match o.Prog.kind with
         | Prog.Encode _ | Prog.Rescale | Prog.Modswitch | Prog.Upscale _ | Prog.Downscale _ ->
             true
         | _ -> false)
       prog.Prog.body
   with
  | Some o ->
      Diagnostic.error
        (Diagnostic.at o
           (Diagnostic.v ~code:Diagnostic.Already_managed
              ~hint:
                "the driver inserts all scale management itself; strip the existing \
                 rescale/modswitch/encode operations first"
              "Driver.compile: input program already contains scale-management operations"))
  | None -> ());
  let prog = Pass_manager.run ~instr ~stats passes prog in
  let generator ~hook =
    match scheme with
    | Eva | Smse -> Codegen.waterline cfg ~hook prog
    | Pars | Hecate -> Codegen.pars cfg ~hook ~downscale_analysis prog
  in
  let run_finalized ~hook =
    let managed = generator ~hook in
    fst (finalize ?q0_bits ?early_modswitch ~instr ~stats ~cfg managed)
  in
  let evaluate p =
    (* types are already on the ops after finalize's check *)
    let types = Array.map (fun (o : Prog.op) -> o.Prog.ty) p.Prog.body in
    let params =
      Paramselect.select ?q0_bits ~sf_bits ~types ~slot_count:p.Prog.slot_count ()
    in
    (* ELASM-style noise-aware exploration: reject plans whose predicted
       output error exceeds the budget *)
    let noise_ok =
      match noise_budget_bits with
      | None -> true
      | Some budget ->
          let ncfg = Noisemodel.default_config ~n:params.Paramselect.secure_n in
          Noisemodel.predicted_rmse_bits ncfg p <= budget
    in
    if not noise_ok then infinity
    else Estimator.estimate ~model ~params ~n:params.Paramselect.secure_n p
  in
  match scheme with
  | Eva | Pars ->
      let managed = run_finalized ~hook:Codegen.no_hook in
      let types = Array.map (fun (o : Prog.op) -> o.Prog.ty) managed.Prog.body in
      let params =
        Paramselect.select ?q0_bits ~sf_bits ~types ~slot_count:managed.Prog.slot_count ()
      in
      {
        prog = managed;
        params;
        estimated_seconds =
          Estimator.estimate ~model ~params ~n:params.Paramselect.secure_n managed;
        exploration = None;
        pass_timings = Pass_manager.timings stats;
      }
  | Smse | Hecate ->
      let smu = Smu.generate ?phases:smu_phases prog in
      let edges = if naive_exploration then Smu.naive_edges prog else smu.Smu.edges in
      let keys = edge_keys prog edges in
      let warm_starts = List.filter_map (plan_of_keyed keys) warm_plans in
      let strategies =
        if strategy = Explore.portfolio_name then None else Some [ strategy ]
      in
      let t0 = Unix.gettimeofday () in
      let result =
        Explore.portfolio ~codegen:run_finalized ~evaluate ~edges ?strategies
          ~max_epochs ?pool_size ?should_stop ?on_epoch ~warm_starts ?gate ()
      in
      let explore_seconds = Unix.gettimeofday () -. t0 in
      let best = result.Explore.p_best_prog in
      let types = Array.map (fun (o : Prog.op) -> o.Prog.ty) best.Prog.body in
      let params =
        Paramselect.select ?q0_bits ~sf_bits ~types ~slot_count:best.Prog.slot_count ()
      in
      let winner =
        List.find
          (fun (s : Explore.strategy_stats) -> s.Explore.strategy = result.Explore.p_winner)
          result.Explore.p_strategies
      in
      let best_plan = result.Explore.p_best_plan in
      {
        prog = best;
        params;
        estimated_seconds = result.Explore.p_best_cost;
        exploration =
          Some
            {
              units = Smu.unit_count smu;
              smu_edges = Array.length edges;
              use_def_edges = smu.Smu.use_def_edges;
              epochs = winner.Explore.s_epochs;
              plans_explored = result.Explore.p_plans_explored;
              cache_hits = result.Explore.p_cache_hits;
              trace = winner.Explore.s_trace;
              elapsed_seconds = explore_seconds;
              best_plan;
              strategy = result.Explore.p_winner;
              strategies = result.Explore.p_strategies;
              keyed_plan =
                List.filter_map
                  (fun i ->
                    if best_plan.(i) > 0 then Some (keys.(i), best_plan.(i)) else None)
                  (List.init (Array.length best_plan) Fun.id);
              seeded = result.Explore.p_seeded;
            };
        pass_timings = Pass_manager.timings stats;
      }

let compile_result ?model ?max_epochs ?naive_exploration ?q0_bits ?early_modswitch
    ?downscale_analysis ?smu_phases ?noise_budget_bits ?pool_size ?passes ?instr
    ?strategy ?gate ?warm_plans ?should_stop ?on_epoch scheme ~sf_bits ~waterline_bits
    prog =
  match
    compile ?model ?max_epochs ?naive_exploration ?q0_bits ?early_modswitch
      ?downscale_analysis ?smu_phases ?noise_budget_bits ?pool_size ?passes ?instr
      ?strategy ?gate ?warm_plans ?should_stop ?on_epoch scheme ~sf_bits ~waterline_bits
      prog
  with
  | c -> Ok c
  | exception Diagnostic.Error d -> Error d
  | exception Pass_manager.Pass_failed { pass; reason } ->
      Error
        (Diagnostic.v ~code:Diagnostic.Internal
           ~hint:"this is a compiler bug; re-run with --print-ir-after to bisect the pipeline"
           (Printf.sprintf "pass %s failed: %s" pass reason))
  | exception Invalid_argument msg ->
      Error
        (Diagnostic.v ~code:Diagnostic.Precondition
           ~hint:
             "the compiler configuration cannot accommodate this program (e.g. the modulus \
              chain outgrew every supported ring degree); adjust the waterline, rescaling \
              factor or program depth"
           msg)

let estimate_at ?(model = Costmodel.analytic ()) compiled ~n =
  Estimator.estimate ~model ~params:compiled.params ~n compiled.prog
