module Prog = Hecate_ir.Prog
module Types = Hecate_ir.Types
module Typing = Hecate_ir.Typing
module Diagnostic = Hecate_ir.Diagnostic
module R = Hecate_ir.Prog.Rewriter

type hook = op_id:int -> operand:int -> int

let no_hook ~op_id:_ ~operand:_ = 0
let eps = 1e-6

let scale_of r v = Types.scale_exn (R.ty r v)
let level_of r v = Types.level_exn (R.ty r v)
let is_cipher r v = Types.is_cipher (R.ty r v)
let is_free r v = R.ty r v = Types.Free

let retag r v (s : Types.scaled) =
  if is_cipher r v then Types.Cipher s else Types.Plain s

let emit_rescale r (cfg : Typing.config) v =
  let s = scale_of r v and k = level_of r v in
  R.emit r Prog.Rescale [| v |] (Types.Cipher { scale = s -. cfg.sf; level = k + 1 })

let emit_modswitch r v =
  let s = scale_of r v and k = level_of r v in
  R.emit r Prog.Modswitch [| v |] (retag r v { scale = s; level = k + 1 })

let emit_downscale r (cfg : Typing.config) v =
  let k = level_of r v in
  R.emit r
    (Prog.Downscale { waterline = cfg.waterline })
    [| v |]
    (Types.Cipher { scale = cfg.waterline; level = k + 1 })

let emit_upscale r v target =
  let k = level_of r v in
  R.emit r (Prog.Upscale { target_scale = target }) [| v |] (retag r v { scale = target; level = k })

let encode_free r (cfg : Typing.config) v ~scale ~level =
  let scale = Float.max scale cfg.waterline in
  R.emit r (Prog.Encode { scale; level }) [| v |] (Types.Plain { scale; level })

let rescale_applicable (cfg : Typing.config) s = s -. cfg.sf >= cfg.waterline -. eps

(* (b) rescale analysis: reduce a ciphertext's scale by the fixed factor as
   long as the waterline allows. *)
let rescale_while r cfg v =
  let rec go v = if is_cipher r v && rescale_applicable cfg (scale_of r v) then go (emit_rescale r cfg v) else v in
  go v

(* One forced scale-management step, as the SMSE planner prescribes. *)
let force_step r (cfg : Typing.config) v =
  if not (is_cipher r v) then emit_modswitch r v
  else
    let s = scale_of r v in
    if rescale_applicable cfg s then emit_rescale r cfg v
    else if s > cfg.waterline +. eps then emit_downscale r cfg v
    else emit_modswitch r v

let apply_hook r cfg (hook : hook) ~op_id ~operand v =
  if is_free r v then v
  else
    let rec go v d = if d = 0 then v else go (force_step r cfg v) (d - 1) in
    go v (hook ~op_id ~operand)

(* (c) level match, proactive flavor: raise a value to [target] one prime at
   a time, preferring rescale, then downscale, falling back to modswitch. *)
let raise_level_pars r cfg v ~target =
  let rec go v =
    if level_of r v >= target then v
    else if not (is_cipher r v) then go (emit_modswitch r v)
    else
      let s = scale_of r v in
      if rescale_applicable cfg s then go (emit_rescale r cfg v)
      else if s > cfg.waterline +. eps then go (emit_downscale r cfg v)
      else go (emit_modswitch r v)
  in
  go v

(* EVA flavor: modswitch only. *)
let raise_level_eva r v ~target =
  let rec go v = if level_of r v >= target then v else go (emit_modswitch r v) in
  go v

(* (d) scale match for additive operations. *)
let scale_match r a b =
  let sa = scale_of r a and sb = scale_of r b in
  if Types.scale_close sa sb then (a, b)
  else if sa < sb then (emit_upscale r a sb, b)
  else (a, emit_upscale r b sa)

let binop_kind_exn (o : Prog.op) =
  match o.Prog.kind with
  | Prog.Add -> `Add
  | Prog.Sub -> `Sub
  | Prog.Mul -> `Mul
  | _ -> invalid_arg "Codegen: not a binary operation"

let emit_binop r o a b ty =
  let kind = match binop_kind_exn o with `Add -> Prog.Add | `Sub -> Prog.Sub | `Mul -> Prog.Mul in
  R.emit ?prov:o.Prog.prov r kind [| a; b |] ty

let result_scaled r ~is_mul a b : Types.scaled =
  let sa = scale_of r a and ka = level_of r a in
  let sb = scale_of r b in
  if is_mul then { scale = sa +. sb; level = ka } else { scale = sa; level = ka }

let result_ty r ~is_mul a b =
  let s = result_scaled r ~is_mul a b in
  if is_cipher r a || is_cipher r b then Types.Cipher s else Types.Plain s

(* Shared driver: walks the source program, delegating binary operations. *)
let run (cfg : Typing.config) ~hook ~binop (p : Prog.t) =
  let r = R.create p in
  Prog.iter
    (fun (o : Prog.op) ->
      let new_id =
        match o.Prog.kind with
        | Prog.Input { name } ->
            R.emit ?prov:o.Prog.prov r (Prog.Input { name }) [||]
              (Types.Cipher { scale = cfg.waterline; level = 0 })
        | Prog.Const { value } -> R.emit ?prov:o.Prog.prov r (Prog.Const { value }) [||] Types.Free
        | Prog.Negate | Prog.Rotate _ ->
            let a = R.mapped r o.Prog.args.(0) in
            let a = apply_hook r cfg hook ~op_id:o.Prog.id ~operand:0 a in
            let a =
              if is_free r a then encode_free r cfg a ~scale:cfg.waterline ~level:0 else a
            in
            R.emit ?prov:o.Prog.prov r o.Prog.kind [| a |]
              (retag r a { scale = scale_of r a; level = level_of r a })
        | Prog.Add | Prog.Sub | Prog.Mul ->
            let a = R.mapped r o.Prog.args.(0) in
            let b = R.mapped r o.Prog.args.(1) in
            let a = apply_hook r cfg hook ~op_id:o.Prog.id ~operand:0 a in
            let b = apply_hook r cfg hook ~op_id:o.Prog.id ~operand:1 b in
            binop r o a b
        | Prog.Encode _ | Prog.Rescale | Prog.Modswitch | Prog.Upscale _ | Prog.Downscale _ ->
            Diagnostic.error
              (Diagnostic.at o
                 (Diagnostic.v ~code:Diagnostic.Already_managed
                    ~hint:
                      "strip the existing rescale/modswitch/encode operations (or compile \
                       the program as-is without a scheme) before re-managing it"
                    "Codegen: input program already contains scale-management operations"))
      in
      R.set_mapped r ~old_value:o.Prog.id new_id)
    p;
  R.finish r

(* ------------------------------------------------------------------ *)
(* EVA: waterline rescaling                                             *)
(* ------------------------------------------------------------------ *)

let waterline cfg ?(hook = no_hook) p =
  let binop r o a b =
    let is_mul = binop_kind_exn o = `Mul in
    match (is_free r a, is_free r b) with
    | true, true ->
        let a = encode_free r cfg a ~scale:cfg.waterline ~level:0 in
        let b = encode_free r cfg b ~scale:cfg.waterline ~level:0 in
        emit_binop r o a b (result_ty r ~is_mul a b)
    | _ ->
        (* normalize ciphers: waterline rescaling *)
        let norm v = if is_free r v then v else rescale_while r cfg v in
        let a = norm a and b = norm b in
        (* level match the scaled operands by modswitch *)
        let target =
          max
            (if is_free r a then 0 else level_of r a)
            (if is_free r b then 0 else level_of r b)
        in
        let lift v = if is_free r v then v else raise_level_eva r v ~target in
        let a = lift a and b = lift b in
        (* encode free operands at the sibling's level; additive ops need the
           sibling's scale, multiplicative the waterline *)
        let encode_at sibling v =
          if is_free r v then
            encode_free r cfg v
              ~scale:(if is_mul then cfg.waterline else scale_of r sibling)
              ~level:(level_of r sibling)
          else v
        in
        let a = encode_at b a and b = encode_at a b in
        let a, b = if is_mul then (a, b) else scale_match r a b in
        let res = emit_binop r o a b (result_ty r ~is_mul a b) in
        (* reactive rescaling of multiplication results *)
        if is_mul then rescale_while r cfg res else res
  in
  run cfg ~hook ~binop p

(* ------------------------------------------------------------------ *)
(* PARS: proactive rescaling (Algorithm 2)                              *)
(* ------------------------------------------------------------------ *)

let pars cfg ?(hook = no_hook) ?(downscale_analysis = true) p =
  let binop r o a b =
    let is_mul = binop_kind_exn o = `Mul in
    match (is_free r a, is_free r b) with
    | true, true ->
        let a = encode_free r cfg a ~scale:cfg.waterline ~level:0 in
        let b = encode_free r cfg b ~scale:cfg.waterline ~level:0 in
        emit_binop r o a b (result_ty r ~is_mul a b)
    | _ ->
        (* (b) rescale analysis *)
        let norm v = if is_free r v then v else rescale_while r cfg v in
        let a = norm a and b = norm b in
        (* (c) level match: proactive, may downscale *)
        let target =
          max
            (if is_free r a then 0 else level_of r a)
            (if is_free r b then 0 else level_of r b)
        in
        let lift v = if is_free r v then v else raise_level_pars r cfg v ~target in
        let a = lift a and b = lift b in
        (* (e) downscale analysis for multiplications: if the product scale
           would exceed the peak a pre-downscale costs, downscale operands
           first *)
        let a, b =
          if
            is_mul && downscale_analysis
            && (not (is_free r a))
            && (not (is_free r b))
            && scale_of r a +. scale_of r b > cfg.sf +. (2. *. cfg.waterline) +. eps
          then
            let down v =
              if not (is_cipher r v) then emit_modswitch r v
              else if scale_of r v > cfg.waterline +. eps then emit_downscale r cfg v
              else emit_modswitch r v
            in
            (down a, down b)
          else (a, b)
        in
        (* (a) encode free operands at the sibling's level *)
        let encode_at sibling v =
          if is_free r v then
            encode_free r cfg v
              ~scale:(if is_mul then cfg.waterline else scale_of r sibling)
              ~level:(level_of r sibling)
          else v
        in
        let a = encode_at b a and b = encode_at a b in
        (* (d) scale match for additive ops *)
        let a, b = if is_mul then (a, b) else scale_match r a b in
        emit_binop r o a b (result_ty r ~is_mul a b)
  in
  run cfg ~hook ~binop p
