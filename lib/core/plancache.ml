module Prog = Hecate_ir.Prog
module Printer = Hecate_ir.Printer
module Json = Hecate_support.Json
module Fileio = Hecate_support.Fileio

(* ------------------------------------------------------------------ *)
(* Entries                                                             *)
(* ------------------------------------------------------------------ *)

type entry = {
  key : string;
  fingerprint : string;
  structure : string;
  scheme : Driver.scheme;
  sf_bits : int;
  waterline_bits : float;
  max_epochs : int;
  strategy : string;
  winner_strategy : string;
  artifact : string;
  params : Paramselect.t;
  estimated_seconds : float;
  plan : int array option;
  keyed_plan : (string * int) list;
  explore_epochs : int;
  explore_plans : int;
  compile_seconds : float;
}

type origin = Cold | Memory | Disk | Joined

let origin_name = function
  | Cold -> "cold"
  | Memory -> "memory"
  | Disk -> "disk"
  | Joined -> "joined"

(* The cache key covers everything that can change the produced artifact:
   the canonical program fingerprint plus the compilation configuration.
   [max_epochs] is part of the key because a budget-truncated climb can
   legitimately produce a different (worse) plan than an unbounded one —
   serving it to a larger-budget client would silently degrade them. *)
let key ?(strategy = Explore.default_strategy) ~scheme ~sf_bits ~waterline_bits
    ~max_epochs prog =
  let fp = Prog.fingerprint prog in
  (* The default strategy keeps the PR 7 key format verbatim, so every
     existing disk entry (and the daemon's committed latency baselines)
     stays addressable; other strategies can produce different winning
     plans, so they get their own key space. *)
  let suffix = if strategy = Explore.default_strategy then "" else "|" ^ strategy in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "plan-v1|%s|%s|%d|%h|%d%s" fp (Driver.scheme_name scheme) sf_bits
          waterline_bits max_epochs suffix))

(* ------------------------------------------------------------------ *)
(* On-disk serialization                                               *)
(* ------------------------------------------------------------------ *)

let scheme_of_name = function
  | "EVA" -> Some Driver.Eva
  | "PARS" -> Some Driver.Pars
  | "SMSE" -> Some Driver.Smse
  | "HECATE" -> Some Driver.Hecate
  | _ -> None

let entry_to_json (e : entry) =
  Json.Obj
    [
      ("version", Json.int 1);
      ("key", Json.Str e.key);
      ("fingerprint", Json.Str e.fingerprint);
      ("scheme", Json.Str (Driver.scheme_name e.scheme));
      ("sf_bits", Json.int e.sf_bits);
      ("waterline_bits", Json.Num e.waterline_bits);
      ("max_epochs", Json.int e.max_epochs);
      ("artifact", Json.Str e.artifact);
      ( "params",
        Json.Obj
          [
            ("q0_bits", Json.int e.params.Paramselect.q0_bits);
            ("sf_bits", Json.int e.params.Paramselect.sf_bits);
            ("chain_levels", Json.int e.params.Paramselect.chain_levels);
            ("log_q", Json.Num e.params.Paramselect.log_q);
            ("secure_n", Json.int e.params.Paramselect.secure_n);
            ("slot_count", Json.int e.params.Paramselect.slot_count);
          ] );
      ("estimated_seconds", Json.Num e.estimated_seconds);
      ( "plan",
        match e.plan with
        | None -> Json.Null
        | Some p -> Json.Arr (Array.to_list (Array.map Json.int p)) );
      ("explore_epochs", Json.int e.explore_epochs);
      ("explore_plans", Json.int e.explore_plans);
      ("compile_seconds", Json.Num e.compile_seconds);
      (* PR 10 corpus fields. Optional on read, so pre-portfolio disk
         entries keep parsing (they fall back to the default strategy and
         an empty portable plan). *)
      ("structure", Json.Str e.structure);
      ("strategy", Json.Str e.strategy);
      ("winner_strategy", Json.Str e.winner_strategy);
      ( "keyed_plan",
        Json.Arr
          (List.map
             (fun (site, degree) ->
               Json.Obj [ ("site", Json.Str site); ("degree", Json.int degree) ])
             e.keyed_plan) );
    ]

let entry_of_json j =
  let open Json in
  let ( let* ) = Option.bind in
  let* version = to_int (member "version" j) in
  if version <> 1 then None
  else
    let* key = to_string (member "key" j) in
    let* fingerprint = to_string (member "fingerprint" j) in
    let* scheme = Option.bind (to_string (member "scheme" j)) scheme_of_name in
    let* sf_bits = to_int (member "sf_bits" j) in
    let* waterline_bits = to_float (member "waterline_bits" j) in
    let* max_epochs = to_int (member "max_epochs" j) in
    let* artifact = to_string (member "artifact" j) in
    let pj = member "params" j in
    let* q0_bits = to_int (member "q0_bits" pj) in
    let* psf_bits = to_int (member "sf_bits" pj) in
    let* chain_levels = to_int (member "chain_levels" pj) in
    let* log_q = to_float (member "log_q" pj) in
    let* secure_n = to_int (member "secure_n" pj) in
    let* slot_count = to_int (member "slot_count" pj) in
    let* estimated_seconds = to_float (member "estimated_seconds" j) in
    let plan =
      match member "plan" j with
      | Null -> None
      | Arr items ->
          Some (Array.of_list (List.filter_map to_int items))
      | _ -> None
    in
    let* explore_epochs = to_int (member "explore_epochs" j) in
    let* explore_plans = to_int (member "explore_plans" j) in
    let* compile_seconds = to_float (member "compile_seconds" j) in
    let str_default d m = Option.value ~default:d (to_string (member m j)) in
    let structure = str_default "" "structure" in
    let strategy = str_default Explore.default_strategy "strategy" in
    let winner_strategy = str_default strategy "winner_strategy" in
    let keyed_plan =
      match member "keyed_plan" j with
      | Arr items ->
          List.filter_map
            (fun item ->
              match (to_string (member "site" item), to_int (member "degree" item)) with
              | Some site, Some degree -> Some (site, degree)
              | _ -> None)
            items
      | _ -> []
    in
    Some
      {
        key;
        fingerprint;
        structure;
        scheme;
        sf_bits;
        waterline_bits;
        max_epochs;
        strategy;
        winner_strategy;
        artifact;
        params =
          {
            Paramselect.q0_bits;
            sf_bits = psf_bits;
            chain_levels;
            log_q;
            secure_n;
            slot_count;
          };
        estimated_seconds;
        plan;
        keyed_plan;
        explore_epochs;
        explore_plans;
        compile_seconds;
      }

(* ------------------------------------------------------------------ *)
(* The cache                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable hits_memory : int;
  mutable hits_disk : int;
  mutable misses : int;
  mutable joins : int;
  mutable evictions : int;
}

type stats_snapshot = {
  s_hits_memory : int;
  s_hits_disk : int;
  s_misses : int;
  s_joins : int;
  s_evictions : int;
  s_entries : int;
}

type node = { entry : entry; mutable last_use : int }

(* A single in-flight computation: the first requester computes, every
   concurrent requester for the same key parks on [cond] and shares the
   one result (or the one failure). *)
type flight = {
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable outcome : (entry, exn * Printexc.raw_backtrace) result option;
}

type t = {
  dir : string option;
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable tick : int;
  lock : Mutex.t;
  inflight : (string, flight) Hashtbl.t;
  stats : stats;
}

let default_dir () =
  match Sys.getenv_opt "HECATE_CACHE_DIR" with
  | Some d when d <> "" -> Some d
  | Some _ | None -> (
      let join a b = Filename.concat a b in
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Some (join d "hecate")
      | _ -> (
          match Sys.getenv_opt "HOME" with
          | Some h when h <> "" -> Some (join (join h ".cache") "hecate")
          | _ -> None))

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir ?(capacity = 128) () =
  if capacity < 1 then invalid_arg "Plancache.create: capacity must be >= 1";
  Option.iter mkdir_p dir;
  {
    dir;
    capacity;
    table = Hashtbl.create 64;
    tick = 0;
    lock = Mutex.create ();
    inflight = Hashtbl.create 8;
    stats = { hits_memory = 0; hits_disk = 0; misses = 0; joins = 0; evictions = 0 };
  }

let entry_path t key =
  Option.map (fun dir -> Filename.concat dir (key ^ ".json")) t.dir

let memory_size t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let snapshot t =
  Mutex.lock t.lock;
  let s = t.stats in
  let snap =
    {
      s_hits_memory = s.hits_memory;
      s_hits_disk = s.hits_disk;
      s_misses = s.misses;
      s_joins = s.joins;
      s_evictions = s.evictions;
      s_entries = Hashtbl.length t.table;
    }
  in
  Mutex.unlock t.lock;
  snap

(* locked: insert into memory, evicting the least-recently-used entries
   beyond capacity. O(capacity) eviction scan — the cache holds at most a
   few hundred entries, and insertions are rare (one per cold compile). *)
let insert_locked t entry =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table entry.key { entry; last_use = t.tick };
  while Hashtbl.length t.table > t.capacity do
    let victim = ref None in
    Hashtbl.iter
      (fun k node ->
        match !victim with
        | Some (_, lu) when lu <= node.last_use -> ()
        | _ -> victim := Some (k, node.last_use))
      t.table;
    match !victim with
    | Some (k, _) ->
        Hashtbl.remove t.table k;
        t.stats.evictions <- t.stats.evictions + 1
    | None -> ()
  done

let persist t entry =
  match entry_path t entry.key with
  | None -> ()
  | Some path ->
      (* a failed persist must not fail the compilation that produced the
         entry: the disk store is an optimization, stderr-note and move on *)
      (try Fileio.write_atomic ~path (Json.render (entry_to_json entry) ^ "\n")
       with Sys_error msg | Unix.Unix_error (_, msg, _) ->
         Printf.eprintf "hecate: warning: plan cache persist failed: %s\n%!" msg)

let load_disk t key =
  match entry_path t key with
  | None -> None
  | Some path when not (Sys.file_exists path) -> None
  | Some path -> (
      match
        let e = entry_of_json (Json.parse (Fileio.read_file ~path)) in
        match e with
        | Some e when e.key = key -> Some e
        | _ -> None
      with
      | v -> v
      | exception (Sys_error _ | Json.Parse_error _) -> None)

let add t entry =
  Mutex.lock t.lock;
  insert_locked t entry;
  Mutex.unlock t.lock;
  persist t entry

let find t key =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.tick <- t.tick + 1;
      node.last_use <- t.tick;
      t.stats.hits_memory <- t.stats.hits_memory + 1;
      Mutex.unlock t.lock;
      Some (node.entry, Memory)
  | None -> (
      Mutex.unlock t.lock;
      (* disk probe outside the lock: file I/O must not serialize other
         requests *)
      match load_disk t key with
      | Some entry ->
          Mutex.lock t.lock;
          insert_locked t entry;
          t.stats.hits_disk <- t.stats.hits_disk + 1;
          Mutex.unlock t.lock;
          Some (entry, Disk)
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Plan corpus: warm-start seeds                                       *)
(* ------------------------------------------------------------------ *)

(* Portable plans from structurally similar entries, best first. Exact
   fingerprint matches rank ahead of structural-digest matches; within a
   rank, cheaper estimates first, key order as the final deterministic
   tie-break. Scans the in-memory layer only — the disk store feeds it
   through hits and {!preload}. *)
let warm_plans t ?(limit = 4) ~fingerprint ~structure ~scheme ~sf_bits () =
  Mutex.lock t.lock;
  let candidates =
    Hashtbl.fold
      (fun _ node acc ->
        let e = node.entry in
        if e.scheme = scheme && e.sf_bits = sf_bits && e.keyed_plan <> [] then
          if e.fingerprint = fingerprint then (0, e) :: acc
          else if structure <> "" && e.structure = structure then (1, e) :: acc
          else acc
        else acc)
      t.table []
  in
  Mutex.unlock t.lock;
  candidates
  |> List.sort (fun (p1, (e1 : entry)) (p2, e2) ->
         match compare p1 p2 with
         | 0 -> (
             match Float.compare e1.estimated_seconds e2.estimated_seconds with
             | 0 -> String.compare e1.key e2.key
             | d -> d)
         | d -> d)
  |> List.filteri (fun i _ -> i < limit)
  |> List.map (fun (_, e) -> e.keyed_plan)

(* Load every on-disk entry into the in-memory layer (up to capacity, in
   filename order), so [warm_plans] sees the persistent corpus right after
   a restart. Returns the number of entries loaded. *)
let preload t =
  match t.dir with
  | None -> 0
  | Some dir -> (
      match Sys.readdir dir with
      | exception Sys_error _ -> 0
      | files ->
          Array.sort String.compare files;
          let n = ref 0 in
          Array.iter
            (fun f ->
              if Filename.check_suffix f ".json" && !n < t.capacity then
                match load_disk t (Filename.chop_suffix f ".json") with
                | Some e ->
                    Mutex.lock t.lock;
                    insert_locked t e;
                    Mutex.unlock t.lock;
                    incr n
                | None -> ())
            files;
          !n)

(* ------------------------------------------------------------------ *)
(* Single-flight lookup-or-compute                                     *)
(* ------------------------------------------------------------------ *)

let find_or_compute t key ~compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.tick <- t.tick + 1;
      node.last_use <- t.tick;
      t.stats.hits_memory <- t.stats.hits_memory + 1;
      Mutex.unlock t.lock;
      (node.entry, Memory)
  | None -> (
      match Hashtbl.find_opt t.inflight key with
      | Some flight ->
          (* someone is already exploring this exact program+config: park
             until their result lands, never start a second exploration *)
          t.stats.joins <- t.stats.joins + 1;
          Mutex.unlock t.lock;
          Mutex.lock flight.fmutex;
          while flight.outcome = None do
            Condition.wait flight.fcond flight.fmutex
          done;
          let outcome = Option.get flight.outcome in
          Mutex.unlock flight.fmutex;
          (match outcome with
          | Ok entry -> (entry, Joined)
          | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      | None ->
          let flight =
            { fmutex = Mutex.create (); fcond = Condition.create (); outcome = None }
          in
          Hashtbl.replace t.inflight key flight;
          Mutex.unlock t.lock;
          let settle ~store outcome =
            Mutex.lock t.lock;
            Hashtbl.remove t.inflight key;
            (match outcome with
            | Ok entry when store -> insert_locked t entry
            | Ok _ | Error _ -> ());
            Mutex.unlock t.lock;
            Mutex.lock flight.fmutex;
            flight.outcome <- Some outcome;
            Condition.broadcast flight.fcond;
            Mutex.unlock flight.fmutex
          in
          let bump f =
            Mutex.lock t.lock;
            f t.stats;
            Mutex.unlock t.lock
          in
          (* the disk probe rides the flight too: concurrent requesters for
             a disk-resident key do one read, not N *)
          (match load_disk t key with
          | Some entry ->
              bump (fun s -> s.hits_disk <- s.hits_disk + 1);
              settle ~store:true (Ok entry);
              (entry, Disk)
          | None -> (
              bump (fun s -> s.misses <- s.misses + 1);
              match compute () with
              | entry, store ->
                  settle ~store (Ok entry);
                  if store then persist t entry;
                  (entry, Cold)
              | exception e ->
                  let bt = Printexc.get_raw_backtrace () in
                  settle ~store:false (Error (e, bt));
                  Printexc.raise_with_backtrace e bt)))

(* ------------------------------------------------------------------ *)
(* Compilation through the cache                                       *)
(* ------------------------------------------------------------------ *)

let compile t ?pool_size ?should_stop ?on_epoch ?budget_seconds
    ?(strategy = Explore.default_strategy) ?gate ~scheme ~sf_bits ~waterline_bits
    ?(max_epochs = 100) prog =
  let k = key ~strategy ~scheme ~sf_bits ~waterline_bits ~max_epochs prog in
  let fingerprint = Prog.fingerprint prog in
  let structure = Prog.structural_digest prog in
  find_or_compute t k ~compute:(fun () ->
      (* A cold compile warm-starts from the plan corpus: portable plans of
         structurally similar entries seed every strategy. The seeds only
         accelerate the search — the result is the same plan a cold run
         finds (or a better one the budget would have missed). *)
      let warm = warm_plans t ~fingerprint ~structure ~scheme ~sf_bits () in
      let t0 = Unix.gettimeofday () in
      (* If the stop signal (cancellation or budget expiry) fires, the
         climb returns its best-so-far — a valid artifact for this
         requester, but a truncated one that must not be cached as the
         canonical answer for the key. *)
      let stopped = ref false in
      let stop () =
        let s =
          (match budget_seconds with
          | Some b -> Unix.gettimeofday () -. t0 > b
          | None -> false)
          || (match should_stop with Some f -> f () | None -> false)
        in
        if s then stopped := true;
        s
      in
      let c =
        Driver.compile ?pool_size ~should_stop:stop ?on_epoch ~max_epochs ~strategy
          ?gate ~warm_plans:warm scheme ~sf_bits ~waterline_bits prog
      in
      let compile_seconds = Unix.gettimeofday () -. t0 in
      let plan, keyed_plan, explore_epochs, explore_plans, winner_strategy =
        match c.Driver.exploration with
        | None -> (None, [], 0, 0, strategy)
        | Some e ->
            ( Some e.Driver.best_plan,
              e.Driver.keyed_plan,
              e.Driver.epochs,
              e.Driver.plans_explored,
              e.Driver.strategy )
      in
      ( {
          key = k;
          fingerprint;
          structure;
          scheme;
          sf_bits;
          waterline_bits;
          max_epochs;
          strategy;
          winner_strategy;
          artifact = Printer.to_string c.Driver.prog;
          params = c.Driver.params;
          estimated_seconds = c.Driver.estimated_seconds;
          plan;
          keyed_plan;
          explore_epochs;
          explore_plans;
          compile_seconds;
        },
        not !stopped ))
