module Prog = Hecate_ir.Prog
module Printer = Hecate_ir.Printer
module Json = Hecate_support.Json
module Fileio = Hecate_support.Fileio

(* ------------------------------------------------------------------ *)
(* Entries                                                             *)
(* ------------------------------------------------------------------ *)

type entry = {
  key : string;
  fingerprint : string;
  scheme : Driver.scheme;
  sf_bits : int;
  waterline_bits : float;
  max_epochs : int;
  artifact : string;
  params : Paramselect.t;
  estimated_seconds : float;
  plan : int array option;
  explore_epochs : int;
  explore_plans : int;
  compile_seconds : float;
}

type origin = Cold | Memory | Disk | Joined

let origin_name = function
  | Cold -> "cold"
  | Memory -> "memory"
  | Disk -> "disk"
  | Joined -> "joined"

(* The cache key covers everything that can change the produced artifact:
   the canonical program fingerprint plus the compilation configuration.
   [max_epochs] is part of the key because a budget-truncated climb can
   legitimately produce a different (worse) plan than an unbounded one —
   serving it to a larger-budget client would silently degrade them. *)
let key ~scheme ~sf_bits ~waterline_bits ~max_epochs prog =
  let fp = Prog.fingerprint prog in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "plan-v1|%s|%s|%d|%h|%d" fp (Driver.scheme_name scheme) sf_bits
          waterline_bits max_epochs))

(* ------------------------------------------------------------------ *)
(* On-disk serialization                                               *)
(* ------------------------------------------------------------------ *)

let scheme_of_name = function
  | "EVA" -> Some Driver.Eva
  | "PARS" -> Some Driver.Pars
  | "SMSE" -> Some Driver.Smse
  | "HECATE" -> Some Driver.Hecate
  | _ -> None

let entry_to_json (e : entry) =
  Json.Obj
    [
      ("version", Json.int 1);
      ("key", Json.Str e.key);
      ("fingerprint", Json.Str e.fingerprint);
      ("scheme", Json.Str (Driver.scheme_name e.scheme));
      ("sf_bits", Json.int e.sf_bits);
      ("waterline_bits", Json.Num e.waterline_bits);
      ("max_epochs", Json.int e.max_epochs);
      ("artifact", Json.Str e.artifact);
      ( "params",
        Json.Obj
          [
            ("q0_bits", Json.int e.params.Paramselect.q0_bits);
            ("sf_bits", Json.int e.params.Paramselect.sf_bits);
            ("chain_levels", Json.int e.params.Paramselect.chain_levels);
            ("log_q", Json.Num e.params.Paramselect.log_q);
            ("secure_n", Json.int e.params.Paramselect.secure_n);
            ("slot_count", Json.int e.params.Paramselect.slot_count);
          ] );
      ("estimated_seconds", Json.Num e.estimated_seconds);
      ( "plan",
        match e.plan with
        | None -> Json.Null
        | Some p -> Json.Arr (Array.to_list (Array.map Json.int p)) );
      ("explore_epochs", Json.int e.explore_epochs);
      ("explore_plans", Json.int e.explore_plans);
      ("compile_seconds", Json.Num e.compile_seconds);
    ]

let entry_of_json j =
  let open Json in
  let ( let* ) = Option.bind in
  let* version = to_int (member "version" j) in
  if version <> 1 then None
  else
    let* key = to_string (member "key" j) in
    let* fingerprint = to_string (member "fingerprint" j) in
    let* scheme = Option.bind (to_string (member "scheme" j)) scheme_of_name in
    let* sf_bits = to_int (member "sf_bits" j) in
    let* waterline_bits = to_float (member "waterline_bits" j) in
    let* max_epochs = to_int (member "max_epochs" j) in
    let* artifact = to_string (member "artifact" j) in
    let pj = member "params" j in
    let* q0_bits = to_int (member "q0_bits" pj) in
    let* psf_bits = to_int (member "sf_bits" pj) in
    let* chain_levels = to_int (member "chain_levels" pj) in
    let* log_q = to_float (member "log_q" pj) in
    let* secure_n = to_int (member "secure_n" pj) in
    let* slot_count = to_int (member "slot_count" pj) in
    let* estimated_seconds = to_float (member "estimated_seconds" j) in
    let plan =
      match member "plan" j with
      | Null -> None
      | Arr items ->
          Some (Array.of_list (List.filter_map to_int items))
      | _ -> None
    in
    let* explore_epochs = to_int (member "explore_epochs" j) in
    let* explore_plans = to_int (member "explore_plans" j) in
    let* compile_seconds = to_float (member "compile_seconds" j) in
    Some
      {
        key;
        fingerprint;
        scheme;
        sf_bits;
        waterline_bits;
        max_epochs;
        artifact;
        params =
          {
            Paramselect.q0_bits;
            sf_bits = psf_bits;
            chain_levels;
            log_q;
            secure_n;
            slot_count;
          };
        estimated_seconds;
        plan;
        explore_epochs;
        explore_plans;
        compile_seconds;
      }

(* ------------------------------------------------------------------ *)
(* The cache                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable hits_memory : int;
  mutable hits_disk : int;
  mutable misses : int;
  mutable joins : int;
  mutable evictions : int;
}

type stats_snapshot = {
  s_hits_memory : int;
  s_hits_disk : int;
  s_misses : int;
  s_joins : int;
  s_evictions : int;
  s_entries : int;
}

type node = { entry : entry; mutable last_use : int }

(* A single in-flight computation: the first requester computes, every
   concurrent requester for the same key parks on [cond] and shares the
   one result (or the one failure). *)
type flight = {
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable outcome : (entry, exn * Printexc.raw_backtrace) result option;
}

type t = {
  dir : string option;
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable tick : int;
  lock : Mutex.t;
  inflight : (string, flight) Hashtbl.t;
  stats : stats;
}

let default_dir () =
  match Sys.getenv_opt "HECATE_CACHE_DIR" with
  | Some d when d <> "" -> Some d
  | Some _ | None -> (
      let join a b = Filename.concat a b in
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Some (join d "hecate")
      | _ -> (
          match Sys.getenv_opt "HOME" with
          | Some h when h <> "" -> Some (join (join h ".cache") "hecate")
          | _ -> None))

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir ?(capacity = 128) () =
  if capacity < 1 then invalid_arg "Plancache.create: capacity must be >= 1";
  Option.iter mkdir_p dir;
  {
    dir;
    capacity;
    table = Hashtbl.create 64;
    tick = 0;
    lock = Mutex.create ();
    inflight = Hashtbl.create 8;
    stats = { hits_memory = 0; hits_disk = 0; misses = 0; joins = 0; evictions = 0 };
  }

let entry_path t key =
  Option.map (fun dir -> Filename.concat dir (key ^ ".json")) t.dir

let memory_size t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let snapshot t =
  Mutex.lock t.lock;
  let s = t.stats in
  let snap =
    {
      s_hits_memory = s.hits_memory;
      s_hits_disk = s.hits_disk;
      s_misses = s.misses;
      s_joins = s.joins;
      s_evictions = s.evictions;
      s_entries = Hashtbl.length t.table;
    }
  in
  Mutex.unlock t.lock;
  snap

(* locked: insert into memory, evicting the least-recently-used entries
   beyond capacity. O(capacity) eviction scan — the cache holds at most a
   few hundred entries, and insertions are rare (one per cold compile). *)
let insert_locked t entry =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table entry.key { entry; last_use = t.tick };
  while Hashtbl.length t.table > t.capacity do
    let victim = ref None in
    Hashtbl.iter
      (fun k node ->
        match !victim with
        | Some (_, lu) when lu <= node.last_use -> ()
        | _ -> victim := Some (k, node.last_use))
      t.table;
    match !victim with
    | Some (k, _) ->
        Hashtbl.remove t.table k;
        t.stats.evictions <- t.stats.evictions + 1
    | None -> ()
  done

let persist t entry =
  match entry_path t entry.key with
  | None -> ()
  | Some path ->
      (* a failed persist must not fail the compilation that produced the
         entry: the disk store is an optimization, stderr-note and move on *)
      (try Fileio.write_atomic ~path (Json.render (entry_to_json entry) ^ "\n")
       with Sys_error msg | Unix.Unix_error (_, msg, _) ->
         Printf.eprintf "hecate: warning: plan cache persist failed: %s\n%!" msg)

let load_disk t key =
  match entry_path t key with
  | None -> None
  | Some path when not (Sys.file_exists path) -> None
  | Some path -> (
      match
        let e = entry_of_json (Json.parse (Fileio.read_file ~path)) in
        match e with
        | Some e when e.key = key -> Some e
        | _ -> None
      with
      | v -> v
      | exception (Sys_error _ | Json.Parse_error _) -> None)

let add t entry =
  Mutex.lock t.lock;
  insert_locked t entry;
  Mutex.unlock t.lock;
  persist t entry

let find t key =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.tick <- t.tick + 1;
      node.last_use <- t.tick;
      t.stats.hits_memory <- t.stats.hits_memory + 1;
      Mutex.unlock t.lock;
      Some (node.entry, Memory)
  | None -> (
      Mutex.unlock t.lock;
      (* disk probe outside the lock: file I/O must not serialize other
         requests *)
      match load_disk t key with
      | Some entry ->
          Mutex.lock t.lock;
          insert_locked t entry;
          t.stats.hits_disk <- t.stats.hits_disk + 1;
          Mutex.unlock t.lock;
          Some (entry, Disk)
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Single-flight lookup-or-compute                                     *)
(* ------------------------------------------------------------------ *)

let find_or_compute t key ~compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.tick <- t.tick + 1;
      node.last_use <- t.tick;
      t.stats.hits_memory <- t.stats.hits_memory + 1;
      Mutex.unlock t.lock;
      (node.entry, Memory)
  | None -> (
      match Hashtbl.find_opt t.inflight key with
      | Some flight ->
          (* someone is already exploring this exact program+config: park
             until their result lands, never start a second exploration *)
          t.stats.joins <- t.stats.joins + 1;
          Mutex.unlock t.lock;
          Mutex.lock flight.fmutex;
          while flight.outcome = None do
            Condition.wait flight.fcond flight.fmutex
          done;
          let outcome = Option.get flight.outcome in
          Mutex.unlock flight.fmutex;
          (match outcome with
          | Ok entry -> (entry, Joined)
          | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      | None ->
          let flight =
            { fmutex = Mutex.create (); fcond = Condition.create (); outcome = None }
          in
          Hashtbl.replace t.inflight key flight;
          Mutex.unlock t.lock;
          let settle ~store outcome =
            Mutex.lock t.lock;
            Hashtbl.remove t.inflight key;
            (match outcome with
            | Ok entry when store -> insert_locked t entry
            | Ok _ | Error _ -> ());
            Mutex.unlock t.lock;
            Mutex.lock flight.fmutex;
            flight.outcome <- Some outcome;
            Condition.broadcast flight.fcond;
            Mutex.unlock flight.fmutex
          in
          let bump f =
            Mutex.lock t.lock;
            f t.stats;
            Mutex.unlock t.lock
          in
          (* the disk probe rides the flight too: concurrent requesters for
             a disk-resident key do one read, not N *)
          (match load_disk t key with
          | Some entry ->
              bump (fun s -> s.hits_disk <- s.hits_disk + 1);
              settle ~store:true (Ok entry);
              (entry, Disk)
          | None -> (
              bump (fun s -> s.misses <- s.misses + 1);
              match compute () with
              | entry, store ->
                  settle ~store (Ok entry);
                  if store then persist t entry;
                  (entry, Cold)
              | exception e ->
                  let bt = Printexc.get_raw_backtrace () in
                  settle ~store:false (Error (e, bt));
                  Printexc.raise_with_backtrace e bt)))

(* ------------------------------------------------------------------ *)
(* Compilation through the cache                                       *)
(* ------------------------------------------------------------------ *)

let compile t ?pool_size ?should_stop ?on_epoch ?budget_seconds ~scheme ~sf_bits
    ~waterline_bits ?(max_epochs = 100) prog =
  let k = key ~scheme ~sf_bits ~waterline_bits ~max_epochs prog in
  find_or_compute t k ~compute:(fun () ->
      let t0 = Unix.gettimeofday () in
      (* If the stop signal (cancellation or budget expiry) fires, the
         climb returns its best-so-far — a valid artifact for this
         requester, but a truncated one that must not be cached as the
         canonical answer for the key. *)
      let stopped = ref false in
      let stop () =
        let s =
          (match budget_seconds with
          | Some b -> Unix.gettimeofday () -. t0 > b
          | None -> false)
          || (match should_stop with Some f -> f () | None -> false)
        in
        if s then stopped := true;
        s
      in
      let c =
        Driver.compile ?pool_size ~should_stop:stop ?on_epoch ~max_epochs scheme ~sf_bits
          ~waterline_bits prog
      in
      let compile_seconds = Unix.gettimeofday () -. t0 in
      let plan, explore_epochs, explore_plans =
        match c.Driver.exploration with
        | None -> (None, 0, 0)
        | Some e -> (Some e.Driver.best_plan, e.Driver.epochs, e.Driver.plans_explored)
      in
      ( {
          key = k;
          fingerprint = Prog.fingerprint prog;
          scheme;
          sf_bits;
          waterline_bits;
          max_epochs;
          artifact = Printer.to_string c.Driver.prog;
          params = c.Driver.params;
          estimated_seconds = c.Driver.estimated_seconds;
          plan;
          explore_epochs;
          explore_plans;
          compile_seconds;
        },
        not !stopped ))
