(** Top-level compilation driver: the four scale-management schemes of the
    paper's evaluation (§VII-A).

    - [Eva]: waterline rescaling, no exploration (the baseline);
    - [Pars]: proactive rescaling, no exploration;
    - [Smse]: exploration over waterline-rescaling code generation;
    - [Hecate]: exploration over proactive-rescaling code generation. *)

type scheme = Eva | Pars | Smse | Hecate

type exploration_stats = {
  units : int;
  smu_edges : int;
  use_def_edges : int;
  epochs : int; (** winning strategy's improving epochs *)
  plans_explored : int; (** candidate programs actually compiled+evaluated *)
  cache_hits : int; (** candidates answered by the shared plan memo cache *)
  trace : Explore.epoch_trace list;
      (** the winning strategy's per-epoch records, in epoch order *)
  elapsed_seconds : float; (** exploration wall-clock, including the base plan *)
  best_plan : Explore.plan;
      (** the winning per-edge degree assignment — persisted by the plan
          cache so warm-started compilations can skip the climb *)
  strategy : string; (** the winning strategy's name *)
  strategies : Explore.strategy_stats list;
      (** every raced strategy's outcome (best cost, trace, gate verdict),
          in name order — a single-strategy compile has exactly one *)
  keyed_plan : (string * int) list;
      (** [best_plan] re-keyed by canonical SMU-edge site keys (nonzero
          degrees only): the portable form the plan corpus persists, valid
          for any alpha-variant of this program *)
  seeded : bool; (** a warm-start seed beat the all-zero base plan *)
}

type compiled = {
  prog : Hecate_ir.Prog.t; (** finalized, typed *)
  params : Paramselect.t;
  estimated_seconds : float; (** at the security-mandated ring degree *)
  exploration : exploration_stats option; (** for [Smse] and [Hecate] *)
  pass_timings : Hecate_ir.Pass_manager.timing list;
      (** per-pass wall time and op delta over the whole compile, including
          every finalization the explorer ran on candidate plans *)
}

val scheme_name : scheme -> string
val all_schemes : scheme list

val compile :
  ?model:Costmodel.t ->
  ?max_epochs:int ->
  ?naive_exploration:bool ->
  ?q0_bits:int ->
  ?early_modswitch:bool ->
  ?downscale_analysis:bool ->
  ?smu_phases:int ->
  ?noise_budget_bits:float ->
  ?pool_size:int ->
  ?passes:Hecate_ir.Pass_manager.pipeline ->
  ?instr:Hecate_ir.Pass_manager.instrumentation ->
  ?strategy:string ->
  ?gate:Explore.gate ->
  ?warm_plans:(string * int) list list ->
  ?should_stop:(unit -> bool) ->
  ?on_epoch:(strategy:string -> Explore.epoch_trace -> unit) ->
  scheme ->
  sf_bits:int ->
  waterline_bits:float ->
  Hecate_ir.Prog.t ->
  compiled
(** [compile scheme ~sf_bits ~waterline_bits prog] cleans the input
    ({!Hecate_ir.Pass_manager.cleanup}: CSE, constant folding, rotation
    folding and DCE to fixpoint), applies the scheme, then finalizes
    ({!Hecate_ir.Pass_manager.finalize} run to fixpoint: early-modswitch
    hoisting, CSE, constant folding, DCE), type checks and selects
    parameters. [passes] substitutes a different cleanup pipeline; [instr]
    controls inter-pass verification and IR dumps (default: structural
    {!Hecate_ir.Prog.validate} after every pass, no dumps).
    [naive_exploration] replaces SMU edges with raw use-def edges (the
    Table III baseline). The remaining optional flags are ablations:
    [early_modswitch] (default true) toggles EVA's hoisting pass,
    [downscale_analysis] (default true) toggles PARS step (e), and
    [smu_phases] truncates SMU generation (see {!Smu.generate}).
    [noise_budget_bits] enables ELASM-style noise-aware exploration: plans
    whose {!Noisemodel}-predicted output error exceeds [2^budget] are
    rejected during the climb (only meaningful for [Smse]/[Hecate]).
    [pool_size] sets the exploration worker-domain count (see
    {!Explore.portfolio}); every pool size returns the same result.

    [strategy] picks the exploration strategy for [Smse]/[Hecate]: a name
    from {!Explore.strategy_names} (default {!Explore.default_strategy}),
    or {!Explore.portfolio_name} to race every registered strategy under
    the shared budget. [gate] re-validates every strategy's winning plan
    through the differential oracle before it is returned (construct one
    with [Hecate_fuzz.Oracle.explorer_gate]); if all strategies are
    rejected, compilation fails with code [Oracle_rejected]. [warm_plans]
    are canonical-site-keyed plans from the plan corpus
    ({!exploration_stats.keyed_plan} of previous compiles, via
    [Plancache.warm_plans]); each is re-keyed onto this program's SMU
    edges and seeds every strategy. [should_stop] and [on_epoch] forward
    to {!Explore.portfolio} for the exploring schemes (cancellation /
    wall-clock budgets and streamed per-strategy progress; no-ops for
    [Eva]/[Pars], whose compiles are single-shot).
    @raise Explore.Cancelled if [should_stop] is already true when
    exploration would start.
    @raise Hecate_ir.Diagnostic.Error with code [Oracle_rejected] if
    [gate] rejected every strategy's winning plan.
    @raise Hecate_ir.Diagnostic.Error with code [Already_managed] if the
    input already contains scale-management operations, or with the typing
    code (C1–C3) if the managed program fails the checker.
    @raise Invalid_argument if the configuration itself is infeasible
    (e.g. parameter selection cannot find a supported ring degree). *)

val compile_result :
  ?model:Costmodel.t ->
  ?max_epochs:int ->
  ?naive_exploration:bool ->
  ?q0_bits:int ->
  ?early_modswitch:bool ->
  ?downscale_analysis:bool ->
  ?smu_phases:int ->
  ?noise_budget_bits:float ->
  ?pool_size:int ->
  ?passes:Hecate_ir.Pass_manager.pipeline ->
  ?instr:Hecate_ir.Pass_manager.instrumentation ->
  ?strategy:string ->
  ?gate:Explore.gate ->
  ?warm_plans:(string * int) list list ->
  ?should_stop:(unit -> bool) ->
  ?on_epoch:(strategy:string -> Explore.epoch_trace -> unit) ->
  scheme ->
  sf_bits:int ->
  waterline_bits:float ->
  Hecate_ir.Prog.t ->
  (compiled, Hecate_ir.Diagnostic.t) result
(** Non-raising counterpart of {!compile}: every failure — structured
    diagnostics, pass-manager failures ([Internal]), infeasible
    configurations ([Precondition]) — comes back as [Error]. This is the
    API front ends and tools should consume; {!compile} remains for callers
    that prefer exceptions. {!Explore.Cancelled} is not a compilation
    failure and still raises: cancellation is the caller's own signal. *)

val finalize :
  ?q0_bits:int ->
  ?early_modswitch:bool ->
  ?instr:Hecate_ir.Pass_manager.instrumentation ->
  ?stats:Hecate_ir.Pass_manager.stats ->
  cfg:Hecate_ir.Typing.config ->
  Hecate_ir.Prog.t ->
  Hecate_ir.Prog.t * Paramselect.t
(** The shared post-codegen pipeline, exposed for the explorer and tests.
    Runs {!Hecate_ir.Pass_manager.finalize} under [instr] (default:
    structural verification only), charging pass timings to [stats]. *)

val estimate_at : ?model:Costmodel.t -> compiled -> n:int -> float
(** Re-estimate a compiled program's latency at an explicit ring degree
    (used when comparing against actual execution at a reduced degree). *)
