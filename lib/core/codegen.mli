(** Scale-management code generation.

    Two generators rewrite an unmanaged HECATE IR program (homomorphic
    operations only) into a fully typed program satisfying C1-C3:

    - {!waterline} reimplements EVA: reactive fixed-factor rescaling after
      multiplications, level matching by [modswitch], scale matching by
      [upscale];
    - {!pars} is the paper's proactive rescaling algorithm (Algorithm 2):
      encode, rescale analysis, level match (using [downscale] when the
      scale is strictly between the waterline and the rescaling threshold),
      scale match, and the pre-multiplication downscale analysis.

    Both accept a {!hook} so the scale-management space explorer can force
    additional scale-management operations on any operand: the hook returns
    how many extra operations to apply to operand [operand] of original
    operation [op_id]; each forced step picks [rescale], [downscale] or
    [modswitch] from the operand's current scale, as the planner prescribes
    (§VI-A). *)

type hook = op_id:int -> operand:int -> int

val no_hook : hook

val waterline : Hecate_ir.Typing.config -> ?hook:hook -> Hecate_ir.Prog.t -> Hecate_ir.Prog.t
(** EVA's waterline rescaling. Surface provenance is carried onto the
    re-emitted operations, so diagnostics on the managed program still name
    the originating combinators.
    @raise Hecate_ir.Diagnostic.Error (code [Already_managed]) if the input
    already contains scale-management operations. *)

val pars :
  Hecate_ir.Typing.config ->
  ?hook:hook ->
  ?downscale_analysis:bool ->
  Hecate_ir.Prog.t ->
  Hecate_ir.Prog.t
(** Proactive rescaling (PARS). Same contract as {!waterline}.
    [downscale_analysis] (default true) enables step (e), the
    pre-multiplication downscale; disabling it is the ablation of
    Algorithm 2's last phase. *)
