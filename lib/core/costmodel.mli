(** Cost models for RNS-CKKS operations (paper §VI-C).

    The latency of an RNS-CKKS operation is determined by the number of RNS
    primes still present in the operands — [num_primes = L - level] — and the
    ring degree [n]: linear or quadratic in the prime count, linear or
    log-linear in [n]. A model maps an operation class and those two
    parameters to seconds. The estimator consumes a model; the backend can
    build one from profiled measurements of the real evaluator. *)

type op_class =
  | Cipher_add (** also sub / negate between ciphertexts *)
  | Plain_add
  | Cipher_mul (** tensor + relinearization *)
  | Plain_mul
  | Rotate
  | Rotate_hoisted
      (** marginal rotation in a hoisted fan: the digit decomposition of the
          shared source is paid once (by the fan's first [Rotate]) and each
          further rotation only permutes the cached digits *)
  | Rescale
  | Mul_rescale
      (** fused ciphertext multiply + rescale (one NTT round-trip saved
          relative to [Cipher_mul] followed by [Rescale]) *)
  | Modswitch
  | Encode

type t = { cost : op_class -> num_primes:int -> n:int -> float (** seconds *) }

val analytic : ?units_per_second:float -> unit -> t
(** Structural model counting modular-arithmetic work: NTTs are
    [n log2 n] units, linear passes [n] units per prime; key switching is
    quadratic in the prime count. [units_per_second] calibrates units to
    wall-clock (default [2.5e8], roughly this machine). *)

val of_table : (op_class * int * int, float) Hashtbl.t -> fallback:t -> t
(** Model backed by measured samples keyed by [(class, num_primes, n)];
    missing entries fall back to [fallback] rescaled to agree with the
    nearest measured prime count when one exists. The nearest-neighbour
    choice is deterministic: when two measured prime counts are
    equidistant from the query, the smaller one wins (never the hash-table
    iteration order), so estimates are reproducible run-to-run for the
    same table contents. *)

val classes : op_class list
val class_name : op_class -> string
