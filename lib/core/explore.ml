module Pool = Hecate_support.Pool

type plan = int array

type epoch_trace = {
  epoch : int;
  candidates : int;
  cache_hits : int;
  best_cost : float;
  elapsed_seconds : float;
}

type result = {
  best_plan : plan;
  best_prog : Hecate_ir.Prog.t;
  best_cost : float;
  epochs : int;
  plans_explored : int;
  cache_hits : int;
  trace : epoch_trace list;
}

let hook_of_plan (edges : Smu.edge array) (plan : plan) =
  let table = Hashtbl.create 64 in
  Array.iteri
    (fun i (e : Smu.edge) ->
      if plan.(i) > 0 then
        List.iter (fun site -> Hashtbl.replace table site plan.(i)) e.Smu.sites)
    edges;
  fun ~op_id ~operand -> Option.value ~default:0 (Hashtbl.find_opt table (op_id, operand))

(* The ±1 neighbourhood of [plan], in the deterministic tie-break order:
   ascending edge index, the -1 move (where legal) before the +1 move. *)
let moves_of (plan : plan) =
  let acc = ref [] in
  for i = Array.length plan - 1 downto 0 do
    let shift delta =
      let p = Array.copy plan in
      p.(i) <- p.(i) + delta;
      p
    in
    acc := shift 1 :: !acc;
    if plan.(i) > 0 then acc := shift (-1) :: !acc
  done;
  !acc

exception Cancelled

let hill_climb ~codegen ~evaluate ~(edges : Smu.edge array) ?(max_epochs = 100)
    ?pool_size ?(should_stop = fun () -> false) ?on_epoch () =
  if should_stop () then raise Cancelled;
  let num_edges = Array.length edges in
  (* Infeasible candidates — the type system rejects the forced plan during
     codegen, or parameter selection / noise estimation rejects the result
     during evaluation — get an infinite cost. Only the all-zero base plan
     is required to succeed. [run] must stay safe to call from worker
     domains: no mutation outside its own frame. A stop request makes the
     remaining queued candidates return immediately ([infinity] cost), so
     an in-flight epoch drains in O(running tasks) instead of finishing
     its whole neighbourhood. *)
  let run plan =
    if should_stop () then (None, infinity)
    else
      match
        let prog = codegen ~hook:(hook_of_plan edges plan) in
        (prog, evaluate prog)
      with
      | prog, cost -> (Some prog, cost)
      | exception Invalid_argument _ -> (None, infinity)
      | exception Hecate_ir.Diagnostic.Error _ -> (None, infinity)
  in
  let base_plan = Array.make num_edges 0 in
  let base_prog, base_cost =
    match run base_plan with
    | Some prog, cost -> (prog, cost)
    | None, _ ->
        if should_stop () then raise Cancelled
        else invalid_arg "Explore.hill_climb: the unmodified plan failed to compile"
  in
  (* Memoized candidate costs, keyed by plan contents. Only costs are kept:
     a cached plan can never win an epoch (every previously evaluated plan
     costs at least the incumbent best), so its program is never needed.
     The cache is read and written by the coordinating domain only. *)
  let memo : (plan, float) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.replace memo base_plan base_cost;
  let explored = ref 1 and cache_hits = ref 0 in
  let best_plan = ref base_plan
  and best_prog = ref base_prog
  and best_cost = ref base_cost in
  let epochs = ref 0 and trace = ref [] in
  Pool.with_pool ?size:pool_size (fun pool ->
      let improved = ref true in
      while !improved && !epochs < max_epochs && not (should_stop ()) do
        let t0 = Unix.gettimeofday () in
        let moves = moves_of !best_plan in
        let epoch_hits = ref 0 in
        (* Split cached from fresh before dispatch, so hit/miss accounting
           and the winner rule are independent of the pool size. *)
        let classified =
          List.map
            (fun plan ->
              match Hashtbl.find_opt memo plan with
              | Some cost ->
                  incr epoch_hits;
                  (plan, `Cached cost)
              | None -> (plan, `Fresh))
            moves
        in
        let fresh =
          Array.of_list
            (List.filter_map
               (function plan, `Fresh -> Some plan | _, `Cached _ -> None)
               classified)
        in
        let fresh_results = Pool.map_array pool ~f:run fresh in
        explored := !explored + Array.length fresh;
        cache_hits := !cache_hits + !epoch_hits;
        Array.iteri
          (fun i plan -> Hashtbl.replace memo plan (snd fresh_results.(i)))
          fresh;
        (* Deterministic winner: strictly improving, lowest cost; ties fall
           to the earliest move in [moves] order (lowest edge index, -1
           before +1). Cached candidates cannot improve, so only fresh
           results — walked in move order — are considered. *)
        let winner = ref None in
        let next_fresh = ref 0 in
        List.iter
          (fun (_, cls) ->
            match cls with
            | `Cached _ -> ()
            | `Fresh ->
                let i = !next_fresh in
                incr next_fresh;
                (match fresh_results.(i) with
                | Some prog, cost when cost < !best_cost -> (
                    match !winner with
                    | Some (_, _, c) when c <= cost -> ()
                    | _ -> winner := Some (fresh.(i), prog, cost))
                | _ -> ()))
          classified;
        (match !winner with
        | Some (plan, prog, cost) ->
            best_plan := plan;
            best_prog := prog;
            best_cost := cost;
            incr epochs
        | None -> improved := false);
        let record =
          {
            epoch = List.length !trace + 1;
            candidates = List.length moves;
            cache_hits = !epoch_hits;
            best_cost = !best_cost;
            elapsed_seconds = Unix.gettimeofday () -. t0;
          }
        in
        trace := record :: !trace;
        Option.iter (fun f -> f record) on_epoch
      done);
  {
    best_plan = !best_plan;
    best_prog = !best_prog;
    best_cost = !best_cost;
    epochs = !epochs;
    plans_explored = !explored;
    cache_hits = !cache_hits;
    trace = List.rev !trace;
  }
