module Pool = Hecate_support.Pool
module Prng = Hecate_support.Prng
module Diagnostic = Hecate_ir.Diagnostic

type plan = int array

type epoch_trace = {
  epoch : int;
  candidates : int;
  cache_hits : int;
  best_cost : float;
  elapsed_seconds : float;
}

type result = {
  best_plan : plan;
  best_prog : Hecate_ir.Prog.t;
  best_cost : float;
  epochs : int;
  plans_explored : int;
  cache_hits : int;
  trace : epoch_trace list;
}

let hook_of_plan (edges : Smu.edge array) (plan : plan) =
  let table = Hashtbl.create 64 in
  Array.iteri
    (fun i (e : Smu.edge) ->
      if plan.(i) > 0 then
        List.iter (fun site -> Hashtbl.replace table site plan.(i)) e.Smu.sites)
    edges;
  fun ~op_id ~operand -> Option.value ~default:0 (Hashtbl.find_opt table (op_id, operand))

(* The ±1 neighbourhood of [plan], in the deterministic tie-break order:
   ascending edge index, the -1 move (where legal) before the +1 move. *)
let moves_of (plan : plan) =
  let acc = ref [] in
  for i = Array.length plan - 1 downto 0 do
    let shift delta =
      let p = Array.copy plan in
      p.(i) <- p.(i) + delta;
      p
    in
    acc := shift 1 :: !acc;
    if plan.(i) > 0 then acc := shift (-1) :: !acc
  done;
  !acc

(* [moves_of] with the (edge, delta) labels kept — the gradient strategy
   needs to know which single move touched which edge. Same order. *)
let labelled_moves_of (plan : plan) =
  let acc = ref [] in
  for i = Array.length plan - 1 downto 0 do
    let shift delta =
      let p = Array.copy plan in
      p.(i) <- p.(i) + delta;
      (i, delta, p)
    in
    acc := shift 1 :: !acc;
    if plan.(i) > 0 then acc := shift (-1) :: !acc
  done;
  !acc

exception Cancelled

(* ------------------------------------------------------------------ *)
(* Shared evaluation context                                           *)
(* ------------------------------------------------------------------ *)

(* Every candidate evaluation — the base plan, warm-start seeds, and each
   strategy's neighbourhoods — flows through one memoized batch evaluator.
   The memo maps plan contents to cost and is read and written by the
   coordinating domain only; worker domains run the pure
   codegen+evaluate closure. Because costs are a pure function of the
   plan, sharing the memo across portfolio strategies cannot change any
   strategy's trajectory — only the hit/miss accounting. *)
type context = {
  ctx_run : plan -> Hecate_ir.Prog.t option * float;
  ctx_memo : (plan, float) Hashtbl.t;
  ctx_pool : Pool.t;
  mutable ctx_explored : int;
  mutable ctx_hits : int;
}

type batch_eval = plan array -> (Hecate_ir.Prog.t option * float) array * int

(* Evaluate a batch of plans: split cached from fresh (and fresh
   duplicates within the batch) before dispatch, so hit/miss accounting
   and every downstream winner rule are independent of the pool size.
   Cached answers come back with [None] for the program — a winning plan
   whose program was dropped is rebuilt by one extra codegen at the end,
   never re-evaluated. *)
let eval_batch ctx (plans : plan array) : (Hecate_ir.Prog.t option * float) array * int =
  let n = Array.length plans in
  let state = Array.make n `Dup in
  let hits = ref 0 in
  let seen = Hashtbl.create (2 * n) in
  let fresh_rev = ref [] in
  Array.iteri
    (fun i p ->
      match Hashtbl.find_opt ctx.ctx_memo p with
      | Some cost ->
          incr hits;
          state.(i) <- `Cached cost
      | None ->
          if Hashtbl.mem seen p then incr hits (* duplicate within the batch *)
          else begin
            Hashtbl.replace seen p ();
            fresh_rev := i :: !fresh_rev
          end)
    plans;
  let fresh_idx = Array.of_list (List.rev !fresh_rev) in
  let fresh = Array.map (fun i -> plans.(i)) fresh_idx in
  let results = Pool.map_array ctx.ctx_pool ~f:ctx.ctx_run fresh in
  Array.iteri
    (fun k i ->
      let prog, cost = results.(k) in
      Hashtbl.replace ctx.ctx_memo plans.(i) cost;
      state.(i) <- `Fresh (prog, cost))
    fresh_idx;
  ctx.ctx_explored <- ctx.ctx_explored + Array.length fresh;
  ctx.ctx_hits <- ctx.ctx_hits + !hits;
  let out =
    Array.mapi
      (fun i -> function
        | `Fresh (prog, cost) -> (prog, cost)
        | `Cached cost -> (None, cost)
        | `Dup -> (None, Hashtbl.find ctx.ctx_memo plans.(i)))
      state
  in
  (out, !hits)

(* ------------------------------------------------------------------ *)
(* Strategy registry                                                   *)
(* ------------------------------------------------------------------ *)

type step = {
  step_plan : plan;
  step_cost : float;
  step_prog : Hecate_ir.Prog.t option;
  step_candidates : int;
  step_hits : int;
  step_improved : bool;
  step_finished : bool;
}

type stepper = unit -> step

type strategy_params = { beam_width : int; prng_seed : int; anneal_proposals : int }

type strategy_maker =
  params:strategy_params ->
  eval:batch_eval ->
  edges:Smu.edge array ->
  base:plan * float ->
  seeds:(plan * float) list ->
  stepper

(* Best of a non-empty (plan, cost) list, ties to the earliest entry. *)
let best_of first rest =
  List.fold_left
    (fun ((_, bc) as b) ((_, c) as x) -> if c < bc then x else b)
    first rest

(* --- hill-climb: the paper's steepest-ascent baseline ------------------ *)

let make_hill_climb ~params:_ ~eval ~edges:_ ~base ~seeds () =
  let cur_plan, cur_cost = ref (fst base), ref (snd base) in
  let () =
    let p, c = best_of base seeds in
    cur_plan := p;
    cur_cost := c
  in
  fun () ->
    let moves = Array.of_list (moves_of !cur_plan) in
    let res, hits = eval moves in
    (* Deterministic winner: strictly improving, lowest cost; ties fall to
       the earliest move (lowest edge index, -1 before +1). With a warm
       memo a cached candidate can win too — its cost is just as real. *)
    let winner = ref None in
    Array.iteri
      (fun i (prog, cost) ->
        if cost < !cur_cost then
          match !winner with
          | Some (_, _, c) when c <= cost -> ()
          | _ -> winner := Some (moves.(i), prog, cost))
      res;
    match !winner with
    | Some (plan, prog, cost) ->
        cur_plan := plan;
        cur_cost := cost;
        {
          step_plan = plan;
          step_cost = cost;
          step_prog = prog;
          step_candidates = Array.length moves;
          step_hits = hits;
          step_improved = true;
          step_finished = false;
        }
    | None ->
        {
          step_plan = !cur_plan;
          step_cost = !cur_cost;
          step_prog = None;
          step_candidates = Array.length moves;
          step_hits = hits;
          step_improved = false;
          step_finished = true;
        }

(* --- beam: breadth over the same ±1 move space ------------------------- *)

let plan_compare (a : plan) (b : plan) = Stdlib.compare a b

let make_beam ~params ~eval ~edges:_ ~base ~seeds () =
  let width = max 1 params.beam_width in
  let dedup_sorted entries =
    (* sort by (cost, plan) — a total, pool-size-independent order — and
       drop duplicate plans *)
    let sorted =
      List.sort
        (fun (c1, p1) (c2, p2) ->
          match Float.compare c1 c2 with 0 -> plan_compare p1 p2 | d -> d)
        entries
    in
    let rec uniq = function
      | (_, p1) :: ((_, p2) :: _ as tl) when plan_compare p1 p2 = 0 -> uniq tl
      | x :: tl -> x :: uniq tl
      | [] -> []
    in
    uniq sorted
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let beam =
    ref
      (take width
         (dedup_sorted (List.map (fun (p, c) -> (c, p)) (base :: seeds))))
  in
  let best_cost = ref (match !beam with (c, _) :: _ -> c | [] -> infinity) in
  fun () ->
    let expansion =
      Array.of_list (List.concat_map (fun (_, p) -> moves_of p) !beam)
    in
    let res, hits = eval expansion in
    let evaluated =
      Array.to_list (Array.mapi (fun i (_, cost) -> (cost, expansion.(i))) res)
    in
    let feasible = List.filter (fun (c, _) -> c < infinity) evaluated in
    let next = take width (dedup_sorted (!beam @ feasible)) in
    let unchanged =
      List.length next = List.length !beam
      && List.for_all2 (fun (_, p1) (_, p2) -> plan_compare p1 p2 = 0) next !beam
    in
    beam := next;
    let head_cost, head_plan =
      match !beam with (c, p) :: _ -> (c, p) | [] -> (infinity, fst base)
    in
    let improved = head_cost < !best_cost in
    if improved then best_cost := head_cost;
    let head_prog =
      (* the head's program, when this epoch freshly evaluated it *)
      let found = ref None in
      Array.iteri
        (fun i (prog, _) ->
          if !found = None && prog <> None && plan_compare expansion.(i) head_plan = 0
          then found := prog)
        res;
      !found
    in
    {
      step_plan = head_plan;
      step_cost = head_cost;
      step_prog = head_prog;
      step_candidates = Array.length expansion;
      step_hits = hits;
      step_improved = improved;
      step_finished = unchanged;
    }

(* --- anneal: random-restart simulated annealing ------------------------ *)

let make_anneal ~params ~eval ~edges:_ ~base ~seeds () =
  let g = Prng.create ~seed:params.prng_seed in
  let start_plan, start_cost = best_of base seeds in
  let cur_plan = ref start_plan and cur_cost = ref start_cost in
  let best_plan = ref start_plan and best_cost = ref start_cost in
  let temp0 = Float.max (0.25 *. Float.abs start_cost) 1e-9 in
  let temp = ref temp0 in
  let stagnant = ref 0 and restarts = ref 0 in
  let num_edges = Array.length start_plan in
  let perturb plan =
    let p = Array.copy plan in
    let tweaks = 1 + Prng.int_below g 3 in
    for _ = 1 to tweaks do
      let i = Prng.int_below g num_edges in
      let up = p.(i) = 0 || Prng.int_below g 2 = 0 in
      p.(i) <- (if up then p.(i) + 1 else p.(i) - 1)
    done;
    p
  in
  let random_plan () = Array.init num_edges (fun _ -> Prng.int_below g 3) in
  fun () ->
    let props =
      Array.init (max 1 params.anneal_proposals) (fun _ -> perturb !cur_plan)
    in
    let res, hits = eval props in
    (* Metropolis walk over the batch, in proposal order: strict
       improvements are always taken; uphill moves with probability
       exp(-Δ/T). The PRNG is advanced only on the uphill test, so the
       whole trajectory is a pure function of the seed and the costs. *)
    Array.iteri
      (fun i (_, cost) ->
        if cost < !cur_cost then begin
          cur_plan := props.(i);
          cur_cost := cost
        end
        else if cost < infinity then begin
          let u = Prng.float01 g in
          if u < Float.exp (-.(cost -. !cur_cost) /. Float.max !temp 1e-12) then begin
            cur_plan := props.(i);
            cur_cost := cost
          end
        end)
      res;
    let improved = !cur_cost < !best_cost in
    if improved then begin
      best_plan := !cur_plan;
      best_cost := !cur_cost;
      stagnant := 0
    end
    else incr stagnant;
    temp := !temp *. 0.85;
    let finished = ref false in
    let extra_candidates = ref 0 and extra_hits = ref 0 in
    let restart_improved = ref false in
    if !stagnant >= 5 then
      if !restarts >= 3 then finished := true
      else begin
        (* restart from a fresh random plan, evaluated as part of this
           epoch so the trace keeps accounting for every candidate *)
        incr restarts;
        stagnant := 0;
        temp := temp0;
        let p = random_plan () in
        let res1, hits1 = eval [| p |] in
        incr extra_candidates;
        extra_hits := hits1;
        let _, c = res1.(0) in
        if c < infinity then begin
          cur_plan := p;
          cur_cost := c;
          if c < !best_cost then begin
            best_plan := p;
            best_cost := c;
            restart_improved := true
          end
        end
      end;
    {
      step_plan = !best_plan;
      step_cost = !best_cost;
      step_prog = None;
      step_candidates = Array.length props + !extra_candidates;
      step_hits = hits + !extra_hits;
      step_improved = improved || !restart_improved;
      step_finished = !finished;
    }

(* --- gradient: estimator-gradient-guided composite moves --------------- *)

let make_gradient ~params:_ ~eval ~edges:_ ~base ~seeds () =
  let cur_plan, cur_cost =
    let p, c = best_of base seeds in
    (ref p, ref c)
  in
  fun () ->
    let labelled = Array.of_list (labelled_moves_of !cur_plan) in
    let moves = Array.map (fun (_, _, p) -> p) labelled in
    let res, hits = eval moves in
    (* The ±1 neighbourhood is the discrete gradient of the estimator.
       Take the best improving direction per edge, then also try the
       composite plan that applies all of them at once — a multi-edge
       step along the steepest descent direction. *)
    let num_edges = Array.length !cur_plan in
    let best_delta = Array.make num_edges 0 in
    let best_delta_cost = Array.make num_edges infinity in
    Array.iteri
      (fun i (_, cost) ->
        let edge, delta, _ = labelled.(i) in
        if cost < !cur_cost && cost < best_delta_cost.(edge) then begin
          best_delta.(edge) <- delta;
          best_delta_cost.(edge) <- cost
        end)
      res;
    let any = Array.exists (fun d -> d <> 0) best_delta in
    if not any then
      {
        step_plan = !cur_plan;
        step_cost = !cur_cost;
        step_prog = None;
        step_candidates = Array.length moves;
        step_hits = hits;
        step_improved = false;
        step_finished = true;
      }
    else begin
      (* best single move, in move order (ties to the earliest) *)
      let single = ref None in
      Array.iteri
        (fun i (prog, cost) ->
          if cost < !cur_cost then
            match !single with
            | Some (_, _, c) when c <= cost -> ()
            | _ -> single := Some (moves.(i), prog, cost))
        res;
      let sp, sprog, sc = Option.get !single in
      let composite = Array.copy !cur_plan in
      Array.iteri (fun e d -> composite.(e) <- composite.(e) + d) best_delta;
      let res2, hits2 = eval [| composite |] in
      let cprog, cc = res2.(0) in
      let plan, prog, cost = if cc < sc then (composite, cprog, cc) else (sp, sprog, sc) in
      cur_plan := plan;
      cur_cost := cost;
      {
        step_plan = plan;
        step_cost = cost;
        step_prog = prog;
        step_candidates = Array.length moves + 1;
        step_hits = hits + hits2;
        step_improved = true;
        step_finished = false;
      }
    end

let registry : (string, strategy_maker) Hashtbl.t = Hashtbl.create 8

let register_strategy ~name maker = Hashtbl.replace registry name maker

let () =
  register_strategy ~name:"hill-climb" (fun ~params ~eval ~edges ~base ~seeds ->
      make_hill_climb ~params ~eval ~edges ~base ~seeds ());
  register_strategy ~name:"beam" (fun ~params ~eval ~edges ~base ~seeds ->
      make_beam ~params ~eval ~edges ~base ~seeds ());
  register_strategy ~name:"anneal" (fun ~params ~eval ~edges ~base ~seeds ->
      make_anneal ~params ~eval ~edges ~base ~seeds ());
  register_strategy ~name:"gradient" (fun ~params ~eval ~edges ~base ~seeds ->
      make_gradient ~params ~eval ~edges ~base ~seeds ())

let default_strategy = "hill-climb"
let portfolio_name = "portfolio"

let strategy_names () =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])

let known_strategy name = Hashtbl.mem registry name || name = portfolio_name

(* ------------------------------------------------------------------ *)
(* Oracle gate                                                         *)
(* ------------------------------------------------------------------ *)

type gate_failure = {
  failed_check : string;
  failed_code : string option;
  failed_detail : string;
}

type gate_outcome = Not_gated | Gate_passed | Gate_rejected of gate_failure

type gate = strategy:string -> plan:plan -> Hecate_ir.Prog.t -> (unit, gate_failure) Result.t

(* ------------------------------------------------------------------ *)
(* Portfolio                                                           *)
(* ------------------------------------------------------------------ *)

type strategy_stats = {
  strategy : string;
  s_best_plan : plan;
  s_best_cost : float;
  s_epochs : int;
  s_steps : int;
  s_trace : epoch_trace list;
  s_gate : gate_outcome;
}

type portfolio_result = {
  p_winner : string;
  p_best_plan : plan;
  p_best_prog : Hecate_ir.Prog.t;
  p_best_cost : float;
  p_strategies : strategy_stats list;
  p_plans_explored : int;
  p_cache_hits : int;
  p_seeded : bool;
}

(* Per-strategy bookkeeping owned by the round-robin scheduler. *)
type runner = {
  r_name : string;
  r_step : stepper;
  mutable r_best_plan : plan;
  mutable r_best_cost : float;
  mutable r_best_prog : Hecate_ir.Prog.t option;
  mutable r_epochs : int; (* improving epochs *)
  mutable r_steps : int; (* epochs run *)
  mutable r_finished : bool;
  mutable r_trace_rev : epoch_trace list;
}

let make_context ~codegen ~evaluate ~edges ~should_stop pool =
  let run plan =
    if should_stop () then (None, infinity)
    else
      match
        let prog = codegen ~hook:(hook_of_plan edges plan) in
        (prog, evaluate prog)
      with
      | prog, cost -> (Some prog, cost)
      | exception Invalid_argument _ -> (None, infinity)
      | exception Hecate_ir.Diagnostic.Error _ -> (None, infinity)
  in
  {
    ctx_run = run;
    ctx_memo = Hashtbl.create 256;
    ctx_pool = pool;
    ctx_explored = 0;
    ctx_hits = 0;
  }

let portfolio ~codegen ~evaluate ~(edges : Smu.edge array) ?strategies
    ?(beam_width = 4) ?(prng_seed = 0x48454341) ?(anneal_proposals = 8)
    ?(max_epochs = 100) ?budget_seconds ?pool_size
    ?(should_stop = fun () -> false) ?on_epoch ?(warm_starts = [])
    ?(gate : gate option) () =
  let requested =
    match strategies with Some l -> l | None -> strategy_names ()
  in
  let names = List.sort_uniq String.compare requested in
  List.iter
    (fun n ->
      if not (Hashtbl.mem registry n) then
        invalid_arg (Printf.sprintf "Explore.portfolio: unknown strategy %S" n))
    names;
  if names = [] then invalid_arg "Explore.portfolio: empty strategy list";
  if should_stop () then raise Cancelled;
  let t_start = Unix.gettimeofday () in
  let stop () =
    should_stop ()
    || match budget_seconds with
       | Some b -> Unix.gettimeofday () -. t_start >= b
       | None -> false
  in
  let num_edges = Array.length edges in
  Pool.with_pool ?size:pool_size (fun pool ->
      let ctx = make_context ~codegen ~evaluate ~edges ~should_stop pool in
      let eval = eval_batch ctx in
      (* Base plan plus any warm-start seeds are the shared opening batch;
         every strategy starts from the best of them, and the memo already
         holds their costs — a strategy never re-evaluates its own start. *)
      let base_plan = Array.make num_edges 0 in
      let seeds_in =
        List.filter
          (fun p -> Array.length p = num_edges && Array.for_all (fun d -> d >= 0) p)
          warm_starts
      in
      let opening = Array.of_list (base_plan :: seeds_in) in
      let res0, _ = eval opening in
      let base_prog, base_cost =
        match res0.(0) with
        | Some prog, cost when cost < infinity -> (prog, cost)
        | _ ->
            if should_stop () then raise Cancelled
            else invalid_arg "Explore.portfolio: the unmodified plan failed to compile"
      in
      let seeds =
        List.filteri (fun i _ -> i > 0) (Array.to_list res0)
        |> List.mapi (fun i (_, cost) -> (List.nth seeds_in i, cost))
        |> List.filter (fun (_, c) -> c < infinity)
      in
      let seeded = List.exists (fun (_, c) -> c < base_cost) seeds in
      let params = { beam_width; prng_seed; anneal_proposals } in
      let runners =
        List.map
          (fun name ->
            let maker = Hashtbl.find registry name in
            let start_plan, start_cost =
              best_of (base_plan, base_cost) seeds
            in
            {
              r_name = name;
              r_step =
                maker ~params ~eval ~edges ~base:(base_plan, base_cost) ~seeds;
              r_best_plan = start_plan;
              r_best_cost = start_cost;
              r_best_prog = (if start_cost = base_cost then Some base_prog else None);
              r_epochs = 0;
              r_steps = 0;
              r_finished = false;
              r_trace_rev = [];
            })
          names
      in
      let runnable r = (not r.r_finished) && r.r_steps < max_epochs in
      (* Round-robin, one epoch per live strategy per pass, in name order:
         fair under the shared budget and independent of both registration
         order and pool size. The scheduler itself is single-threaded;
         parallelism lives inside the batch evaluator. *)
      let progressed = ref true in
      while !progressed && not (stop ()) do
        progressed := false;
        List.iter
          (fun r ->
            if runnable r && not (stop ()) then begin
              let t0 = Unix.gettimeofday () in
              let s = r.r_step () in
              r.r_steps <- r.r_steps + 1;
              if s.step_improved then r.r_epochs <- r.r_epochs + 1;
              if s.step_cost < r.r_best_cost then begin
                r.r_best_plan <- s.step_plan;
                r.r_best_cost <- s.step_cost;
                r.r_best_prog <- s.step_prog
              end
              else if
                r.r_best_prog = None && plan_compare s.step_plan r.r_best_plan = 0
              then r.r_best_prog <- s.step_prog;
              if s.step_finished then r.r_finished <- true;
              let record =
                {
                  epoch = r.r_steps;
                  candidates = s.step_candidates;
                  cache_hits = s.step_hits;
                  best_cost = r.r_best_cost;
                  elapsed_seconds = Unix.gettimeofday () -. t0;
                }
              in
              r.r_trace_rev <- record :: r.r_trace_rev;
              Option.iter (fun f -> f ~strategy:r.r_name record) on_epoch;
              if runnable r then progressed := true
            end)
          runners
      done;
      (* One codegen rebuilds a winner whose program was answered from the
         memo; no re-evaluation, and the generators are deterministic. *)
      let rebuild plan = codegen ~hook:(hook_of_plan edges plan) in
      let prog_of r =
        match r.r_best_prog with Some p -> p | None -> rebuild r.r_best_plan
      in
      (* Gate every strategy's winner (deduplicated by plan — strategies
         that converged to the same plan share one oracle run). *)
      let verdicts : (plan, (unit, gate_failure) Result.t) Hashtbl.t =
        Hashtbl.create 8
      in
      let gate_of r =
        match gate with
        | None -> Not_gated
        | Some g -> (
            let v =
              match Hashtbl.find_opt verdicts r.r_best_plan with
              | Some v -> v
              | None ->
                  let v = g ~strategy:r.r_name ~plan:r.r_best_plan (prog_of r) in
                  Hashtbl.replace verdicts r.r_best_plan v;
                  v
            in
            match v with Ok () -> Gate_passed | Error f -> Gate_rejected f)
      in
      let stats =
        List.map
          (fun r ->
            {
              strategy = r.r_name;
              s_best_plan = r.r_best_plan;
              s_best_cost = r.r_best_cost;
              s_epochs = r.r_epochs;
              s_steps = r.r_steps;
              s_trace = List.rev r.r_trace_rev;
              s_gate = gate_of r;
            })
          runners
      in
      (* Deterministic winner: lowest cost among strategies whose winner
         passed (or was not) gated, ties to the earliest strategy name. *)
      let ranked =
        List.stable_sort
          (fun a b -> Float.compare a.s_best_cost b.s_best_cost)
          stats
      in
      let winner =
        List.find_opt
          (fun s ->
            match s.s_gate with
            | Not_gated | Gate_passed -> true
            | Gate_rejected _ -> false)
          ranked
      in
      match winner with
      | None ->
          let detail =
            String.concat "; "
              (List.map
                 (fun s ->
                   match s.s_gate with
                   | Gate_rejected f ->
                       Printf.sprintf "%s: %s%s" s.strategy f.failed_check
                         (match f.failed_code with
                         | Some c -> " (" ^ c ^ ")"
                         | None -> "")
                   | _ -> s.strategy ^ ": ?")
                 stats)
          in
          Diagnostic.error
            (Diagnostic.v ~code:Diagnostic.Oracle_rejected
               ~hint:
                 "every strategy's winning plan failed the differential oracle; \
                  this points at a codegen or estimator bug, not at the input \
                  program — re-run with --strategy hill-climb -v and file the \
                  reproducer"
               (Printf.sprintf
                  "Explore.portfolio: all exploration strategies were rejected \
                   by the oracle gate: %s"
                  detail))
      | Some w ->
          let w_runner = List.find (fun r -> r.r_name = w.strategy) runners in
          {
            p_winner = w.strategy;
            p_best_plan = w.s_best_plan;
            p_best_prog = prog_of w_runner;
            p_best_cost = w.s_best_cost;
            p_strategies = stats;
            p_plans_explored = ctx.ctx_explored;
            p_cache_hits = ctx.ctx_hits;
            p_seeded = seeded;
          })

(* ------------------------------------------------------------------ *)
(* hill_climb: the PR 1 entry point, now a one-strategy portfolio       *)
(* ------------------------------------------------------------------ *)

let hill_climb ~codegen ~evaluate ~(edges : Smu.edge array) ?(max_epochs = 100)
    ?pool_size ?(should_stop = fun () -> false) ?on_epoch () =
  let r =
    portfolio ~codegen ~evaluate ~edges ~strategies:[ "hill-climb" ] ~max_epochs
      ?pool_size ~should_stop
      ?on_epoch:(Option.map (fun f -> fun ~strategy:_ t -> f t) on_epoch)
      ()
  in
  let s = List.hd r.p_strategies in
  {
    best_plan = r.p_best_plan;
    best_prog = r.p_best_prog;
    best_cost = r.p_best_cost;
    epochs = s.s_epochs;
    plans_explored = r.p_plans_explored;
    cache_hits = r.p_cache_hits;
    trace = s.s_trace;
  }
