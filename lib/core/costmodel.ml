type op_class =
  | Cipher_add
  | Plain_add
  | Cipher_mul
  | Plain_mul
  | Rotate
  | Rotate_hoisted
  | Rescale
  | Mul_rescale
  | Modswitch
  | Encode

type t = { cost : op_class -> num_primes:int -> n:int -> float }

let classes =
  [
    Cipher_add;
    Plain_add;
    Cipher_mul;
    Plain_mul;
    Rotate;
    Rotate_hoisted;
    Rescale;
    Mul_rescale;
    Modswitch;
    Encode;
  ]

let class_name = function
  | Cipher_add -> "cipher_add"
  | Plain_add -> "plain_add"
  | Cipher_mul -> "cipher_mul"
  | Plain_mul -> "plain_mul"
  | Rotate -> "rotate"
  | Rotate_hoisted -> "rotate_hoisted"
  | Rescale -> "rescale"
  | Mul_rescale -> "mul_rescale"
  | Modswitch -> "modswitch"
  | Encode -> "encode"

(* Work in abstract units; one unit is roughly one modular multiply. *)
let rec units cls ~num_primes ~n =
  let l = float_of_int num_primes in
  let nf = float_of_int n in
  let ntt = nf *. (log nf /. log 2.) in
  (* Hybrid key switching: per digit, lift to l+1 moduli and NTT each, then
     two multiply-accumulates; finally inverse-NTT and mod-down both
     components. Quadratic in the prime count. *)
  let keyswitch = (l *. (l +. 1.) *. (ntt +. (3. *. nf))) +. (2. *. (l +. 1.) *. ntt) +. (4. *. l *. nf) in
  match cls with
  | Cipher_add -> 2. *. l *. nf
  | Plain_add -> l *. nf
  | Cipher_mul -> (5. *. l *. nf) +. keyswitch
  | Plain_mul -> 2. *. l *. nf
  | Rotate -> (4. *. l *. ntt) +. (2. *. l *. nf) +. keyswitch
  | Rotate_hoisted ->
      (* marginal rotation in a hoisted fan (Halevi–Shoup): the digit
         decomposition's l*(l+1) lifts and forward NTTs are shared, leaving
         per rotation: digit permutations + multiply-accumulates
         (3 linear passes per digit per modulus), the accumulator inverse
         NTTs + mod-down, the switched pair's forward NTTs, and the
         permutation/add of c0. *)
      (3. *. l *. (l +. 1.) *. nf) +. (2. *. (l +. 1.) *. ntt) +. (2. *. l *. ntt)
      +. (6. *. l *. nf)
  | Rescale -> (2. *. l *. ntt) +. (2. *. (l -. 1.) *. (ntt +. nf))
  | Mul_rescale ->
      (* fused multiply + rescale: the switched pair stays in Coeff, saving
         its 2l forward NTTs relative to Cipher_mul + Rescale *)
      units Cipher_mul ~num_primes ~n +. units Rescale ~num_primes ~n -. (2. *. l *. ntt)
  | Modswitch -> 0.25 *. l *. nf (* copying the surviving components *)
  | Encode -> ntt +. (l *. (ntt +. nf))

let analytic ?(units_per_second = 2.5e8) () =
  { cost = (fun cls ~num_primes ~n -> units cls ~num_primes ~n /. units_per_second) }

let of_table table ~fallback =
  let cost cls ~num_primes ~n =
    match Hashtbl.find_opt table (cls, num_primes, n) with
    | Some t -> t
    | None ->
        (* Scale the analytic shape to agree with the closest measured prime
           count at the same degree, if any. The choice must not depend on
           [Hashtbl.iter] order: equidistant measurements tie-break to the
           smaller prime count. *)
        let best = ref None in
        let better l l0 =
          let d = abs (l - num_primes) and d0 = abs (l0 - num_primes) in
          d < d0 || (d = d0 && l < l0)
        in
        Hashtbl.iter
          (fun (c, l, n') t ->
            if c = cls && n' = n then
              match !best with
              | Some (l0, _) when not (better l l0) -> ()
              | _ -> best := Some (l, t))
          table;
        let base = fallback.cost cls ~num_primes ~n in
        (match !best with
        | None -> base
        | Some (l_near, t_near) ->
            let shape_near = fallback.cost cls ~num_primes:l_near ~n in
            if shape_near <= 0. then base else base *. (t_near /. shape_near))
  in
  { cost }
