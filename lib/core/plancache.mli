(** Content-addressed cache of winning compilation plans and artifacts.

    The SMSE explorer pays its search cost once per (program, config); this
    cache makes that literal across processes and across time. Entries are
    keyed by {!key}: the {!Hecate_ir.Prog.fingerprint} of the canonicalized
    input program combined with every configuration knob that can change
    the produced artifact (scheme, [sf_bits], [waterline_bits],
    [max_epochs]). Alpha-equivalent programs — same DAG up to op order,
    naming, dead derived code and metadata — therefore share one entry,
    and a warm hit returns the {e byte-identical} printed artifact of the
    cold compile without re-running exploration.

    Three layers:
    - an in-memory LRU of at most [capacity] entries (near-zero-cost hits);
    - an optional on-disk store (one JSON file per key, written with
      {!Hecate_support.Fileio.write_atomic} so a crash can never leave a
      torn entry) that survives process restarts and feeds the in-memory
      layer on miss;
    - single-flight deduplication: N concurrent requests for the same key
      trigger {e one} exploration, the rest park until the result lands
      and share it (origin [Joined]).

    All operations are thread-safe (one internal lock; compilation and
    file I/O run outside it). *)

type entry = {
  key : string;
  fingerprint : string;  (** canonical program fingerprint *)
  structure : string;
      (** {!Hecate_ir.Prog.structural_digest} — the coarse bucket
          [warm_plans] matches "structurally similar" entries by *)
  scheme : Driver.scheme;
  sf_bits : int;
  waterline_bits : float;
  max_epochs : int;
  strategy : string;  (** requested exploration strategy (part of the key) *)
  winner_strategy : string;  (** the strategy that actually won the race *)
  artifact : string;  (** printed managed IR — byte-identical on every hit *)
  params : Paramselect.t;
  estimated_seconds : float;
  plan : int array option;  (** winning explore plan; [None] for EVA/PARS *)
  keyed_plan : (string * int) list;
      (** the winning plan re-keyed by canonical SMU site keys — the
          portable form [warm_plans] serves to structurally similar
          programs *)
  explore_epochs : int;
  explore_plans : int;
  compile_seconds : float;  (** wall-clock of the cold compile *)
}

type origin =
  | Cold  (** computed by this request *)
  | Memory  (** in-memory hit *)
  | Disk  (** loaded from the on-disk store *)
  | Joined  (** shared a concurrent in-flight computation *)

val origin_name : origin -> string

type stats_snapshot = {
  s_hits_memory : int;
  s_hits_disk : int;
  s_misses : int;
  s_joins : int;
  s_evictions : int;
  s_entries : int;  (** current in-memory entry count *)
}

type t

val default_dir : unit -> string option
(** [$HECATE_CACHE_DIR], else [$XDG_CACHE_HOME/hecate], else
    [$HOME/.cache/hecate]; [None] when no environment variable resolves. *)

val create : ?dir:string -> ?capacity:int -> unit -> t
(** [create ~dir ~capacity ()] — [dir] is the on-disk store root (created
    recursively; omit it for a memory-only cache), [capacity] (default
    128) bounds the in-memory layer.
    @raise Invalid_argument if [capacity < 1]. *)

val key :
  ?strategy:string ->
  scheme:Driver.scheme ->
  sf_bits:int ->
  waterline_bits:float ->
  max_epochs:int ->
  Hecate_ir.Prog.t ->
  string
(** The content address: canonical program fingerprint x configuration.
    The default [strategy] ({!Explore.default_strategy}) reproduces the
    PR 7 key byte-for-byte, so existing disk stores stay valid; any other
    strategy gets its own key space (different strategies can win with
    different plans). *)

val warm_plans :
  t ->
  ?limit:int ->
  fingerprint:string ->
  structure:string ->
  scheme:Driver.scheme ->
  sf_bits:int ->
  unit ->
  (string * int) list list
(** Portable (site-keyed) plans of cached entries structurally similar to
    the program at hand, best first: exact-fingerprint matches (alpha
    variants), then {!Hecate_ir.Prog.structural_digest} matches (same kind
    skeleton, different attributes), at most [limit] (default 4). Same
    scheme and [sf_bits] only — plans do not transport across codegens.
    Scans the in-memory layer; call {!preload} after a restart to surface
    the on-disk corpus. Deterministic order (rank, estimate, key). *)

val preload : t -> int
(** Load every on-disk entry into the in-memory layer (up to capacity, in
    filename order) so {!warm_plans} sees the persistent corpus. Returns
    the number of entries loaded; 0 for a memory-only cache. *)

val find : t -> string -> (entry * origin) option
(** Memory first, then disk (a disk hit is promoted into memory). *)

val add : t -> entry -> unit
(** Insert into memory (evicting LRU entries beyond capacity) and persist
    to the on-disk store. Persist failures are warnings, not errors. *)

val find_or_compute : t -> string -> compute:(unit -> entry * bool) -> entry * origin
(** Single-flight lookup: a hit (memory or disk) returns immediately; a
    miss runs [compute] — but at most one [compute] per key is in flight
    at any moment, concurrent requesters for the same key block and share
    the result (origin [Joined]). [compute]'s boolean says whether the
    entry is canonical and should be stored ([true]) or transient
    ([false] — e.g. a budget-truncated exploration whose best-so-far is
    valid for this requester but must not be cached as the answer for the
    key). Waiters receive the entry either way. If [compute] raises,
    every waiter re-raises the same exception and nothing is cached. *)

val compile :
  t ->
  ?pool_size:int ->
  ?should_stop:(unit -> bool) ->
  ?on_epoch:(strategy:string -> Explore.epoch_trace -> unit) ->
  ?budget_seconds:float ->
  ?strategy:string ->
  ?gate:Explore.gate ->
  scheme:Driver.scheme ->
  sf_bits:int ->
  waterline_bits:float ->
  ?max_epochs:int ->
  Hecate_ir.Prog.t ->
  entry * origin
(** {!Driver.compile} through the cache: compute the key, then
    {!find_or_compute}. [should_stop]/[on_epoch]/[budget_seconds] only
    apply to the requester that actually runs the cold compile.
    [budget_seconds] bounds the exploration wall clock: past it the climb
    stops and returns its best-so-far (anytime semantics). A compile
    truncated by the budget or by [should_stop] is returned to the caller
    but {e not} cached — the key means "the full-budget answer", and a
    truncated plan must not poison it. Exceptions from {!Driver.compile}
    (diagnostics, {!Explore.Cancelled}, gate rejections with code
    [Oracle_rejected]) propagate to every requester of the flight and are
    not cached — so nothing the oracle rejected ever enters the cache.

    [strategy] forwards to {!Driver.compile} and is part of the key;
    [gate] re-validates every strategy winner before the entry is built.
    A cold compile warm-starts from {!warm_plans} automatically. *)

val memory_size : t -> int
val snapshot : t -> stats_snapshot

val entry_to_json : entry -> Hecate_support.Json.t
val entry_of_json : Hecate_support.Json.t -> entry option
(** The on-disk representation, exposed for the serve protocol and tests. *)
