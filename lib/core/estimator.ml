module Prog = Hecate_ir.Prog
module Types = Hecate_ir.Types

let primes_for params level = Paramselect.num_primes_at params ~level

let operand_level name arg_tys i =
  match Types.scaled_of arg_tys.(i) with
  | Some s -> s.Types.level
  | None -> invalid_arg ("Estimator: " ^ name ^ " operand is not scaled")

let per_op_seconds ~model ~params ~n (o : Prog.op) (arg_tys : Types.t array) =
  let cost cls ~level = model.Costmodel.cost cls ~num_primes:(primes_for params level) ~n in
  match o.Prog.kind with
  | Prog.Input _ | Prog.Const _ -> 0.
  | Prog.Encode _ ->
      let level = match Types.scaled_of o.Prog.ty with Some s -> s.Types.level | None -> 0 in
      cost Costmodel.Encode ~level
  | Prog.Add | Prog.Sub ->
      let level = operand_level "add" arg_tys 0 in
      let both_cipher = Types.is_cipher arg_tys.(0) && Types.is_cipher arg_tys.(1) in
      cost (if both_cipher then Costmodel.Cipher_add else Costmodel.Plain_add) ~level
  | Prog.Negate ->
      let level = operand_level "negate" arg_tys 0 in
      cost Costmodel.Plain_add ~level
  | Prog.Mul ->
      let level = operand_level "mul" arg_tys 0 in
      let both_cipher = Types.is_cipher arg_tys.(0) && Types.is_cipher arg_tys.(1) in
      if both_cipher then cost Costmodel.Cipher_mul ~level
      else cost Costmodel.Plain_mul ~level +. cost Costmodel.Encode ~level
  | Prog.Rotate _ ->
      let level = operand_level "rotate" arg_tys 0 in
      cost Costmodel.Rotate ~level
  | Prog.Rescale ->
      let level = operand_level "rescale" arg_tys 0 in
      cost Costmodel.Rescale ~level
  | Prog.Modswitch ->
      let level = operand_level "modswitch" arg_tys 0 in
      cost Costmodel.Modswitch ~level
  | Prog.Upscale _ ->
      (* lowering: encode a constant 1 and plain-multiply *)
      let level = operand_level "upscale" arg_tys 0 in
      cost Costmodel.Plain_mul ~level +. cost Costmodel.Encode ~level
  | Prog.Downscale _ ->
      (* lowering: upscale then rescale *)
      let level = operand_level "downscale" arg_tys 0 in
      cost Costmodel.Plain_mul ~level +. cost Costmodel.Encode ~level
      +. cost Costmodel.Rescale ~level

(* The backend interpreter executes two structural optimizations that a
   per-op sum would misprice: rotation fans (several Rotate ops on one
   value share a hoisted digit decomposition — the first rotation pays
   [Rotate], the rest the marginal [Rotate_hoisted]) and Mul -> Rescale
   fusion (a ciphertext product whose only consumer is a Rescale runs as
   the fused [Mul_rescale]). The estimate mirrors both so the Fig. 8
   estimator-vs-actual property keeps holding on the optimized engine. *)
let estimate ~model ~params ~n (p : Prog.t) =
  let num_ops = Prog.num_ops p in
  let use_count = Array.make num_ops 0 in
  Prog.iter
    (fun (o : Prog.op) ->
      Array.iter (fun a -> use_count.(a) <- use_count.(a) + 1) o.Prog.args)
    p;
  List.iter (fun v -> use_count.(v) <- use_count.(v) + 1) p.Prog.outputs;
  let fused_mul = Array.make num_ops false in
  Prog.iter
    (fun (o : Prog.op) ->
      match o.Prog.kind with
      | Prog.Rescale -> (
          let src = o.Prog.args.(0) in
          let so = Prog.op p src in
          match so.Prog.kind with
          | Prog.Mul when use_count.(src) = 1 ->
              let cipher i = Types.is_cipher (Prog.op p so.Prog.args.(i)).Prog.ty in
              if cipher 0 && cipher 1 then fused_mul.(src) <- true
          | _ -> ())
      | _ -> ())
    p;
  (* distinct rotation amounts per source; fans are sources with >= 2 *)
  let amounts : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  Prog.iter
    (fun (o : Prog.op) ->
      match o.Prog.kind with
      | Prog.Rotate { amount } ->
          let src = o.Prog.args.(0) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt amounts src) in
          if not (List.mem amount prev) then Hashtbl.replace amounts src (amount :: prev)
      | _ -> ())
    p;
  let fan_started : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let total = ref 0. in
  Prog.iter
    (fun (o : Prog.op) ->
      let arg_tys = Array.map (fun a -> (Prog.op p a).Prog.ty) o.Prog.args in
      let cost cls ~level =
        model.Costmodel.cost cls ~num_primes:(primes_for params level) ~n
      in
      let seconds =
        match o.Prog.kind with
        | Prog.Mul when fused_mul.(o.Prog.id) -> 0. (* charged at the Rescale *)
        | Prog.Rescale when fused_mul.(o.Prog.args.(0)) ->
            let level = operand_level "rescale" arg_tys 0 in
            cost Costmodel.Mul_rescale ~level
        | Prog.Rotate _ ->
            let src = o.Prog.args.(0) in
            let level = operand_level "rotate" arg_tys 0 in
            let in_fan =
              match Hashtbl.find_opt amounts src with
              | Some distinct -> List.length distinct >= 2
              | None -> false
            in
            if in_fan && Hashtbl.mem fan_started src then cost Costmodel.Rotate_hoisted ~level
            else begin
              Hashtbl.replace fan_started src ();
              cost Costmodel.Rotate ~level
            end
        | _ -> per_op_seconds ~model ~params ~n o arg_tys
      in
      total := !total +. seconds)
    p;
  !total
