(** Scale management space exploration (paper §VI): steepest-ascent hill
    climbing over per-edge optimization degrees.

    A plan maps every edge of the SMU graph (or every use-def edge, for the
    naïve baseline of Table III) to a degree: the number of extra
    scale-management operations forced on the values crossing that edge.
    Each epoch evaluates the full ±1 neighbourhood of the incumbent plan
    (the degree of each edge incremented, and decremented where positive);
    the climb stops at a local optimum or at [max_epochs].

    The engine is:

    - {e exception-safe}: an [Invalid_argument] raised by either [codegen]
      or [evaluate] marks that one candidate infeasible ([infinity] cost)
      instead of aborting the search — except on the all-zero base plan,
      which must compile and evaluate (a failure there is a hard error);
    - {e parallel}: the neighbourhood of each epoch is evaluated
      concurrently on a {!Hecate_support.Pool} of OCaml 5 domains (each
      candidate is an independent codegen+evaluate closure);
    - {e memoized}: candidate costs are cached by plan contents, so plans
      revisited across epochs (e.g. the previous incumbent, reachable by a
      −1 move) are never recompiled;
    - {e deterministic}: the epoch winner is the strict-improvement
      candidate with the lowest cost, ties broken by the lowest edge
      index, then by the −1 move before the +1 move — so parallel and
      serial runs return bit-identical [best_plan]/[best_cost];
    - {e observable}: every epoch appends an {!epoch_trace} record. *)

type plan = int array (** degree per edge *)

type epoch_trace = {
  epoch : int; (** 1-based epoch index *)
  candidates : int; (** neighbour plans considered this epoch *)
  cache_hits : int; (** of which were answered from the memo cache *)
  best_cost : float; (** best cost after this epoch (seconds) *)
  elapsed_seconds : float; (** wall-clock spent on this epoch *)
}

type result = {
  best_plan : plan;
  best_prog : Hecate_ir.Prog.t; (** finalized and typed *)
  best_cost : float; (** estimated seconds *)
  epochs : int; (** epochs that found an improvement *)
  plans_explored : int; (** candidate programs actually compiled+evaluated *)
  cache_hits : int; (** candidates answered by the plan memo cache *)
  trace : epoch_trace list; (** per-epoch records, in epoch order *)
}

val hook_of_plan : Smu.edge array -> plan -> Codegen.hook
(** Degree lookup for the code generators: the degree of the edge owning a
    given (op, operand) site, 0 elsewhere. *)

exception Cancelled
(** Raised by {!hill_climb} when [should_stop] was already true before any
    work happened (no base plan compiled, nothing to return). A stop
    request that arrives {e during} the climb instead ends it early and
    returns the best plan found so far (anytime behaviour). *)

val hill_climb :
  codegen:(hook:Codegen.hook -> Hecate_ir.Prog.t) ->
  evaluate:(Hecate_ir.Prog.t -> float) ->
  edges:Smu.edge array ->
  ?max_epochs:int ->
  ?pool_size:int ->
  ?should_stop:(unit -> bool) ->
  ?on_epoch:(epoch_trace -> unit) ->
  unit ->
  result
(** [codegen] runs one scale-management code generation under a plan hook
    and must return a finalized, typed program; [evaluate] scores it
    (seconds, lower is better; [infinity] for infeasible candidates).
    Both must be safe to call concurrently from several domains: they may
    not touch shared mutable state (the in-tree generators and estimator
    qualify). [pool_size] sets the number of worker domains (default
    {!Hecate_support.Pool.default_size}, clamped to ≥1); the result is
    identical for every pool size.

    [should_stop] is polled between epochs and at the start of every
    candidate task (so a stop request drains an in-flight epoch quickly —
    queued candidates short-circuit to [infinity] cost). When it turns
    true mid-climb the incumbent best is returned; when it is already
    true on entry, {!Cancelled} is raised. [on_epoch] is invoked on the
    coordinating domain after each epoch with that epoch's trace record —
    the daemon streams these to clients as progress events.
    @raise Cancelled if [should_stop] is true before the base plan runs.
    @raise Invalid_argument if the all-zero base plan fails to compile or
    evaluate. *)
