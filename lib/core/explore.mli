(** Scale management space exploration (paper §VI): a portfolio of search
    strategies over per-edge optimization degrees.

    A plan maps every edge of the SMU graph (or every use-def edge, for the
    naïve baseline of Table III) to a degree: the number of extra
    scale-management operations forced on the values crossing that edge.
    PR 1's steepest-ascent hill climbing is the baseline strategy; this
    module races it against beam search, random-restart annealing and
    estimator-gradient-guided moves under one anytime budget.

    The engine is:

    - {e exception-safe}: an [Invalid_argument] raised by either [codegen]
      or [evaluate] marks that one candidate infeasible ([infinity] cost)
      instead of aborting the search — except on the all-zero base plan,
      which must compile and evaluate (a failure there is a hard error);
    - {e parallel}: each strategy's per-epoch candidate batch is evaluated
      concurrently on a {!Hecate_support.Pool} of OCaml 5 domains; the
      scheduler itself is single-threaded round-robin, so strategies never
      nest pool calls;
    - {e memoized}: candidate costs are cached by plan contents in a memo
      {e shared by every strategy} — a plan any strategy (or the opening
      base-plan/warm-start batch) has already scored is never recompiled,
      and in particular a strategy's own incumbent is never re-evaluated
      when the memo is warm;
    - {e deterministic}: batches are classified cached/fresh before
      dispatch and every winner rule is a pure function of plan costs, so
      parallel and serial runs — and any strategy-registration order —
      return bit-identical winners;
    - {e gated}: when an oracle {!gate} is supplied, every strategy's
      winning plan must pass it before it can be returned (or cached by
      callers); if all strategies are rejected the portfolio raises
      {!Hecate_ir.Diagnostic.Error} with code [Oracle_rejected];
    - {e observable}: every epoch appends an {!epoch_trace} record, tagged
      with its strategy. *)

type plan = int array (** degree per edge *)

type epoch_trace = {
  epoch : int; (** 1-based epoch index, per strategy *)
  candidates : int; (** neighbour plans considered this epoch *)
  cache_hits : int; (** of which were answered from the shared memo *)
  best_cost : float; (** strategy's best cost after this epoch (seconds) *)
  elapsed_seconds : float; (** wall-clock spent on this epoch *)
}

type result = {
  best_plan : plan;
  best_prog : Hecate_ir.Prog.t; (** finalized and typed *)
  best_cost : float; (** estimated seconds *)
  epochs : int; (** epochs that found an improvement *)
  plans_explored : int; (** candidate programs actually compiled+evaluated *)
  cache_hits : int; (** candidates answered by the plan memo cache *)
  trace : epoch_trace list; (** per-epoch records, in epoch order *)
}

val hook_of_plan : Smu.edge array -> plan -> Codegen.hook
(** Degree lookup for the code generators: the degree of the edge owning a
    given (op, operand) site, 0 elsewhere. *)

val moves_of : plan -> plan list
(** The ±1 neighbourhood of a plan, in the deterministic tie-break order:
    ascending edge index, the -1 move (where legal) before the +1 move.
    Exposed for strategy authors. *)

exception Cancelled
(** Raised when [should_stop] was already true before any work happened
    (no base plan compiled, nothing to return). A stop request that
    arrives {e during} a search instead ends it early and returns the best
    plan found so far (anytime behaviour). *)

(** {1 Strategy registry}

    A strategy is a stepper: a closure advanced one epoch at a time by the
    portfolio's round-robin scheduler. It scores candidates exclusively
    through the [eval] batch function it is constructed with (which is
    memoized, pool-parallel and deterministic) and reports its best plan
    after every epoch. Steppers run on the coordinating domain only. *)

type step = {
  step_plan : plan; (** strategy's best plan after this epoch *)
  step_cost : float;
  step_prog : Hecate_ir.Prog.t option;
      (** the program for [step_plan] when this epoch evaluated it fresh;
          [None] when it came from the memo (rebuilt once if it wins) *)
  step_candidates : int;
  step_hits : int;
  step_improved : bool;
  step_finished : bool; (** converged: the scheduler stops stepping it *)
}

type stepper = unit -> step

type batch_eval = plan array -> (Hecate_ir.Prog.t option * float) array * int
(** Memoized batch evaluation: costs aligned with the input (programs only
    for plans evaluated fresh by this very call), plus the number of
    candidates answered from the memo (cached, or duplicated within the
    batch). Infeasible plans cost [infinity]. *)

type strategy_params = {
  beam_width : int; (** beam search width (default 4) *)
  prng_seed : int; (** seed for the annealer's deterministic PRNG *)
  anneal_proposals : int; (** proposals per annealing epoch (default 8) *)
}

type strategy_maker =
  params:strategy_params ->
  eval:batch_eval ->
  edges:Smu.edge array ->
  base:plan * float ->
  seeds:(plan * float) list ->
  stepper
(** [base] is the all-zero plan and its cost; [seeds] are feasible
    warm-start plans (already scored — their costs are in the memo, so
    starting from one costs no evaluation). *)

val register_strategy : name:string -> strategy_maker -> unit
(** Add (or replace) a strategy. The built-ins are ["hill-climb"],
    ["beam"], ["anneal"] and ["gradient"]; registration order never
    matters — the portfolio always runs strategies in name order. *)

val strategy_names : unit -> string list
(** Registered strategy names, sorted. *)

val default_strategy : string
(** ["hill-climb"] — the paper-faithful baseline every driver entry point
    defaults to. *)

val portfolio_name : string
(** ["portfolio"]: the pseudo-strategy name callers use to request every
    registered strategy at once. *)

val known_strategy : string -> bool
(** A registered strategy name, or {!portfolio_name}. *)

(** {1 Oracle gate} *)

type gate_failure = {
  failed_check : string; (** oracle check name, e.g. ["accuracy"] *)
  failed_code : string option; (** diagnostic code name, when one applies *)
  failed_detail : string;
}

type gate_outcome = Not_gated | Gate_passed | Gate_rejected of gate_failure

type gate = strategy:string -> plan:plan -> Hecate_ir.Prog.t -> (unit, gate_failure) Result.t
(** Differential-oracle re-validation of a strategy's winning plan (built
    by [Hecate_fuzz.Oracle.explorer_gate]; Explore only defines the shape
    so lib/core stays independent of the fuzzer). *)

(** {1 Portfolio} *)

type strategy_stats = {
  strategy : string;
  s_best_plan : plan;
  s_best_cost : float;
  s_epochs : int; (** epochs that improved this strategy's best *)
  s_steps : int; (** epochs run *)
  s_trace : epoch_trace list;
  s_gate : gate_outcome;
}

type portfolio_result = {
  p_winner : string; (** winning strategy name *)
  p_best_plan : plan;
  p_best_prog : Hecate_ir.Prog.t;
  p_best_cost : float;
  p_strategies : strategy_stats list; (** per strategy, in name order *)
  p_plans_explored : int; (** fresh evaluations across all strategies *)
  p_cache_hits : int; (** answered by the shared memo *)
  p_seeded : bool; (** a warm-start seed beat the all-zero base plan *)
}

val portfolio :
  codegen:(hook:Codegen.hook -> Hecate_ir.Prog.t) ->
  evaluate:(Hecate_ir.Prog.t -> float) ->
  edges:Smu.edge array ->
  ?strategies:string list ->
  ?beam_width:int ->
  ?prng_seed:int ->
  ?anneal_proposals:int ->
  ?max_epochs:int ->
  ?budget_seconds:float ->
  ?pool_size:int ->
  ?should_stop:(unit -> bool) ->
  ?on_epoch:(strategy:string -> epoch_trace -> unit) ->
  ?warm_starts:plan list ->
  ?gate:gate ->
  unit ->
  portfolio_result
(** Race [strategies] (default: every registered strategy; the list is
    deduplicated and sorted, so its order never matters) under one anytime
    budget: [max_epochs] caps each strategy's epochs, [budget_seconds]
    caps the whole race's wall clock, and [should_stop] cancels it — both
    of the latter return the best-so-far (anytime), and only epoch-budget
    runs are bit-deterministic across machines. The base plan and every
    [warm_starts] seed (wrong-length or infeasible seeds are dropped) are
    scored once in a shared opening batch; each strategy starts from the
    best of them. The winner is the lowest-cost strategy whose plan passed
    [gate] (ties to the earliest strategy name); per-strategy outcomes,
    including rejections with their diagnostic code, are in
    [p_strategies].

    [codegen] and [evaluate] must be safe to call concurrently from
    several domains (the in-tree generators and estimator qualify).
    [on_epoch] fires on the coordinating domain after every strategy
    epoch — the daemon streams these as per-strategy progress events.
    @raise Cancelled if [should_stop] is true before the base plan runs.
    @raise Invalid_argument if the base plan fails to compile or evaluate,
    or a name in [strategies] is not registered.
    @raise Hecate_ir.Diagnostic.Error with code [Oracle_rejected] if every
    strategy's winning plan failed [gate]. *)

val hill_climb :
  codegen:(hook:Codegen.hook -> Hecate_ir.Prog.t) ->
  evaluate:(Hecate_ir.Prog.t -> float) ->
  edges:Smu.edge array ->
  ?max_epochs:int ->
  ?pool_size:int ->
  ?should_stop:(unit -> bool) ->
  ?on_epoch:(epoch_trace -> unit) ->
  unit ->
  result
(** The PR 1 entry point, kept verbatim: a one-strategy portfolio running
    ["hill-climb"] with no seeds and no gate. Same winner rule, same
    accounting, same anytime/cancellation contract as before.
    @raise Cancelled if [should_stop] is true before the base plan runs.
    @raise Invalid_argument if the all-zero base plan fails to compile or
    evaluate. *)
