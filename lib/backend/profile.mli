(** Profiled cost model (paper §VI-C): measure each CKKS operation class on
    the real evaluator at every available prime count, producing a
    {!Hecate.Costmodel} table the estimator consumes. Results are cached per
    (ring degree, chain length) within a process.

    Timings are the median of the requested repetitions (via
    {!Hecate_support.Stats.time_median}), which is robust against scheduler
    noise that skews a mean. *)

val measure :
  ?reps:int -> Hecate_ckks.Eval.t -> (Hecate.Costmodel.op_class * int * int, float) Hashtbl.t
(** [measure eval] times every operation class at every level of [eval]'s
    chain. Keys are [(class, num_primes, n)]; values are seconds per
    operation. *)

val model_for : ?reps:int -> Hecate_ckks.Eval.t -> Hecate.Costmodel.t
(** Table-backed model with the analytic model as shape-preserving
    fallback. *)

val cached_model : ?reps:int -> n:int -> levels:int -> q0_bits:int -> sf_bits:int -> unit -> Hecate.Costmodel.t
(** Build (or reuse) a throwaway evaluator for the given shape and profile
    it. Rotation keys for step 1 are included so [Rotate] can be measured. *)
