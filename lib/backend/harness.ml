module Driver = Hecate.Driver
module Apps = Hecate_apps.Apps
module Eval = Hecate_ckks.Eval

let default_waterlines = List.init 36 (fun i -> 10. +. (0.5 *. float_of_int i))

type selection = {
  scheme : Driver.scheme;
  waterline_bits : float;
  compiled : Driver.compiled;
  rmse : float;
  max_abs_error : float;
  actual_seconds : float;
  estimated_seconds_exec : float;
  exec_n : int;
  configs_executed : int;
}

let estimate_only ?(waterlines = default_waterlines) ?(sf_bits = 28) ?(max_epochs = 100) ~scheme
    (bench : Apps.t) =
  let candidates =
    List.filter_map
      (fun wl ->
        match Driver.compile scheme ~max_epochs ~sf_bits ~waterline_bits:wl bench.Apps.prog with
        | compiled -> Some (wl, compiled)
        | exception Invalid_argument _ -> None
        | exception Hecate_ir.Diagnostic.Error _ -> None
        | exception Hecate_ir.Pass_manager.Pass_failed { pass; reason } ->
            (* A pass-manager failure at one waterline is a compiler bug for
               that configuration, not an infeasibility — skip the waterline
               so the rest of the sweep survives, but say so loudly. *)
            Printf.eprintf
              "hecate: warning: %s/%s wl=%g: pass %s failed (%s); waterline skipped\n%!"
              bench.Apps.name (Driver.scheme_name scheme) wl pass reason;
            None)
      waterlines
  in
  List.sort
    (fun (_, a) (_, b) ->
      compare a.Driver.estimated_seconds b.Driver.estimated_seconds)
    candidates

(* Key generation dominates sweep time; contexts are shared across
   configurations with the same chain shape and rotation set. *)
let context_cache : (int * int * int * int * int list, Eval.t) Hashtbl.t = Hashtbl.create 16

let cached_context ~(params : Hecate.Paramselect.t) ~rotations =
  let min_n =
    let rec up n = if n / 2 >= params.Hecate.Paramselect.slot_count then n else up (2 * n) in
    up 16
  in
  let key =
    ( min_n,
      params.Hecate.Paramselect.q0_bits,
      params.Hecate.Paramselect.sf_bits,
      params.Hecate.Paramselect.chain_levels,
      rotations )
  in
  match Hashtbl.find_opt context_cache key with
  | Some eval -> eval
  | None ->
      if Hashtbl.length context_cache > 32 then Hashtbl.reset context_cache;
      let eval = Interp.context ~params ~rotations () in
      Hashtbl.replace context_cache key eval;
      eval

let search ?waterlines ?(error_bound = 0x1p-8) ?(sf_bits = 28) ?(max_epochs = 100)
    ?(use_profiled_model = false) ?(feasible_target = 3) ~scheme (bench : Apps.t) =
  let ranked = estimate_only ?waterlines ~sf_bits ~max_epochs ~scheme bench in
  let executed = ref 0 in
  (* walk configurations fastest-estimated first; keep executing until
     several feasible ones are in hand, then report the fastest measured —
     the paper's "minimum latency among error-bound-satisfying waterlines" *)
  let rec walk found = function
    | [] -> found
    | _ when List.length found >= feasible_target -> found
    | (wl, (compiled : Driver.compiled)) :: rest -> (
        let attempt () =
          incr executed;
          let rotations = Interp.required_rotations compiled.Driver.prog in
          let eval = cached_context ~params:compiled.Driver.params ~rotations in
          let acc =
            Accuracy.measure eval ~waterline_bits:wl compiled.Driver.prog ~inputs:bench.Apps.inputs
              ~valid_slots:bench.Apps.valid_slots
          in
          let exec_n = (Eval.params eval).Hecate_ckks.Params.n in
          let model =
            if use_profiled_model then
              Profile.cached_model ~n:exec_n
                ~levels:compiled.Driver.params.Hecate.Paramselect.chain_levels
                ~q0_bits:compiled.Driver.params.Hecate.Paramselect.q0_bits
                ~sf_bits:compiled.Driver.params.Hecate.Paramselect.sf_bits ()
            else Hecate.Costmodel.analytic ()
          in
          (acc, exec_n, Driver.estimate_at ~model compiled ~n:exec_n)
        in
        match attempt () with
        | acc, exec_n, est when acc.Accuracy.rmse <= error_bound ->
            let sel =
              {
                scheme;
                waterline_bits = wl;
                compiled;
                rmse = acc.Accuracy.rmse;
                max_abs_error = acc.Accuracy.max_abs_error;
                actual_seconds = acc.Accuracy.elapsed_seconds;
                estimated_seconds_exec = est;
                exec_n;
                configs_executed = !executed;
              }
            in
            walk (sel :: found) rest
        | _ -> walk found rest
        | exception (Invalid_argument _ | Eval.Scale_mismatch _ | Eval.Level_mismatch _) ->
            walk found rest)
  in
  match walk [] ranked with
  | [] -> None
  | feasible ->
      Some
        (List.fold_left
           (fun best s -> if s.actual_seconds < best.actual_seconds then s else best)
           (List.hd feasible) (List.tl feasible))
