(** Execution of scale-managed programs on the RNS-CKKS evaluator (the
    paper's SEAL backend role).

    The interpreter lowers the opaque operations to their CKKS
    implementations ([downscale] = upscale-to-[S_f * S_w] + rescale), applies
    SEAL-style scale adjustment before additions to absorb prime drift, and
    releases dead ciphertexts using the liveness plan. Per-operation
    wall-clock times are accumulated by cost-model class for the
    estimator-accuracy experiment.

    When the execution ring offers more slots than the program declares
    ([n/2 > slot_count]), input and constant vectors are replicated across
    the physical register so that slot rotation stays cyclic in the
    declared slot count (found by the differential fuzzer — see
    test/corpus/ and docs/TESTING.md). *)

type class_stat = { count : int; seconds : float }

type report = {
  outputs : float array list; (** decrypted slot vectors, one per output *)
  elapsed_seconds : float; (** homomorphic execution only (no keygen/decrypt) *)
  per_class : (Hecate.Costmodel.op_class * class_stat) list;
  peak_live : int; (** peak simultaneously-live ciphertext count *)
}

val required_rotations : Hecate_ir.Prog.t -> int list
(** Distinct rotation amounts the program needs keys for. *)

val context :
  ?seed:int ->
  ?exec_n:int ->
  params:Hecate.Paramselect.t ->
  rotations:int list ->
  unit ->
  Hecate_ckks.Eval.t
(** Build an evaluator matching the selected parameters at ring degree
    [exec_n] (default: the smallest degree fitting the program's slots —
    this repository executes at reduced, insecure degrees; see DESIGN.md).
    @raise Invalid_argument if [exec_n] cannot hold the slot count or the
    chain. *)

val execute :
  Hecate_ckks.Eval.t ->
  waterline_bits:float ->
  Hecate_ir.Prog.t ->
  inputs:(string * float array) list ->
  report
(** Encrypt the inputs at the waterline scale, run the program, decrypt the
    outputs. The program must be typed (compile it with {!Hecate.Driver}).
    @raise Invalid_argument on missing inputs or rotation keys. *)
