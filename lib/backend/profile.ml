module Eval = Hecate_ckks.Eval
module Params = Hecate_ckks.Params
module Costmodel = Hecate.Costmodel

let time_reps reps f =
  Hecate_support.Stats.time_median ~warmup:1 ~min_sample_s:1e-4 ~reps (fun () -> ignore (f ()))

let measure ?(reps = 3) eval =
  let params = Eval.params eval in
  let n = params.Params.n in
  let levels = params.Params.levels in
  let table = Hashtbl.create 64 in
  let slots = Params.slots params in
  let v = Array.init slots (fun i -> 0.5 +. (0.001 *. float_of_int (i mod 7))) in
  let scale = 0x1p20 in
  let fresh = Eval.encrypt_vector eval ~scale v in
  let record cls ~level seconds =
    Hashtbl.replace table (cls, levels + 1 - level, n) seconds
  in
  let ct = ref fresh in
  for level = 0 to levels do
    let c = !ct in
    let pt = Eval.encode eval ~level ~scale v in
    record Costmodel.Encode ~level (time_reps reps (fun () -> Eval.encode eval ~level ~scale v));
    record Costmodel.Cipher_add ~level (time_reps reps (fun () -> Eval.add eval c c));
    record Costmodel.Plain_add ~level (time_reps reps (fun () -> Eval.add_plain eval c pt));
    record Costmodel.Cipher_mul ~level (time_reps reps (fun () -> Eval.mul eval c c));
    record Costmodel.Plain_mul ~level (time_reps reps (fun () -> Eval.mul_plain eval c pt));
    (try
       let t_rot = time_reps reps (fun () -> Eval.rotate eval c 1) in
       record Costmodel.Rotate ~level t_rot;
       (* marginal hoisted rotation: a 3-rotation fan pays the decomposition
          once, so (fan - single) / 2 isolates the per-extra-rotation cost;
          clamp against timer noise driving the difference negative *)
       let t_fan = time_reps reps (fun () -> Eval.rotate_many eval c [ 1; 1; 1 ]) in
       record Costmodel.Rotate_hoisted ~level (Float.max ((t_fan -. t_rot) /. 2.) (0.05 *. t_rot))
     with Not_found -> ());
    if level < levels then begin
      let squared = Eval.mul eval c c in
      record Costmodel.Rescale ~level (time_reps reps (fun () -> Eval.rescale eval squared));
      record Costmodel.Mul_rescale ~level (time_reps reps (fun () -> Eval.mul_rescale eval c c));
      record Costmodel.Modswitch ~level (time_reps reps (fun () -> Eval.mod_switch eval c));
      ct := Eval.mod_switch eval c
    end
  done;
  table

let model_for ?reps eval =
  Costmodel.of_table (measure ?reps eval) ~fallback:(Costmodel.analytic ())

let cache : (int * int * int * int, Costmodel.t) Hashtbl.t = Hashtbl.create 8

let cached_model ?reps ~n ~levels ~q0_bits ~sf_bits () =
  let key = (n, levels, q0_bits, sf_bits) in
  match Hashtbl.find_opt cache key with
  | Some m -> m
  | None ->
      let params = Params.create ~n ~q0_bits ~sf_bits ~levels () in
      let eval = Eval.create ~seed:0xBEEF params ~rotations:[ 1 ] in
      let m = model_for ?reps eval in
      Hashtbl.replace cache key m;
      m
