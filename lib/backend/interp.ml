module Prog = Hecate_ir.Prog
module Types = Hecate_ir.Types
module Liveness = Hecate_ir.Liveness
module Eval = Hecate_ckks.Eval
module Params = Hecate_ckks.Params
module Chain = Hecate_rns.Chain
module Costmodel = Hecate.Costmodel

type class_stat = { count : int; seconds : float }

type report = {
  outputs : float array list;
  elapsed_seconds : float;
  per_class : (Costmodel.op_class * class_stat) list;
  peak_live : int;
}

let required_rotations (p : Prog.t) =
  let amounts = Hashtbl.create 8 in
  Prog.iter
    (fun (o : Prog.op) ->
      match o.Prog.kind with
      | Prog.Rotate { amount } -> Hashtbl.replace amounts amount ()
      | _ -> ())
    p;
  Hashtbl.fold (fun a () acc -> a :: acc) amounts [] |> List.sort compare

let context ?(seed = 0x5EED) ?exec_n ~(params : Hecate.Paramselect.t) ~rotations () =
  let min_n =
    let rec up n = if n / 2 >= params.Hecate.Paramselect.slot_count then n else up (2 * n) in
    up 16
  in
  let n = match exec_n with Some n -> n | None -> min_n in
  if n / 2 < params.Hecate.Paramselect.slot_count then
    invalid_arg "Interp.context: ring degree too small for the program's slot count";
  let ckks_params =
    Params.create ~n ~q0_bits:params.Hecate.Paramselect.q0_bits
      ~sf_bits:params.Hecate.Paramselect.sf_bits ~levels:params.Hecate.Paramselect.chain_levels ()
  in
  Eval.create ~seed ckks_params ~rotations

type value =
  | Vcipher of Eval.ciphertext
  | Vplain of Eval.plaintext
  | Vfree of float array
  | Vpending_mul of Eval.ciphertext * Eval.ciphertext
      (* a ciphertext Mul whose only consumer is a Rescale: the operands are
         held until the Rescale executes the fused Eval.mul_rescale *)

let class_of_op (p : Prog.t) (o : Prog.op) =
  let cipher_arg i =
    match (Prog.op p o.Prog.args.(i)).Prog.ty with Types.Cipher _ -> true | _ -> false
  in
  match o.Prog.kind with
  | Prog.Input _ | Prog.Const _ -> None
  | Prog.Encode _ -> Some Costmodel.Encode
  | Prog.Add | Prog.Sub ->
      Some (if cipher_arg 0 && cipher_arg 1 then Costmodel.Cipher_add else Costmodel.Plain_add)
  | Prog.Negate -> Some Costmodel.Plain_add
  | Prog.Mul -> Some (if cipher_arg 0 && cipher_arg 1 then Costmodel.Cipher_mul else Costmodel.Plain_mul)
  | Prog.Rotate _ -> Some Costmodel.Rotate
  | Prog.Rescale -> Some Costmodel.Rescale
  | Prog.Modswitch -> Some Costmodel.Modswitch
  | Prog.Upscale _ -> Some Costmodel.Plain_mul
  | Prog.Downscale _ -> Some Costmodel.Plain_mul (* dominated by the plain product + rescale *)

let execute eval ~waterline_bits (p : Prog.t) ~inputs =
  let sc = p.Prog.slot_count in
  let chain = (Eval.params eval).Params.chain in
  let wl = Float.exp2 waterline_bits in
  let live = Liveness.analyze p in
  let values : value option array = Array.make (Prog.num_ops p) None in
  let peak = ref 0 and live_count = ref 0 in
  let stats = Hashtbl.create 8 in
  let elapsed = ref 0. in
  let get v =
    match values.(v) with
    | Some x -> x
    | None -> invalid_arg "Interp.execute: value used after free (liveness bug)"
  in
  let cipher_exn v =
    match get v with
    | Vcipher c -> c
    | Vplain _ | Vfree _ | Vpending_mul _ ->
        invalid_arg "Interp.execute: expected a ciphertext operand"
  in
  (* Rotation fans: several Rotate ops consuming the same SSA value can share
     one digit decomposition of its c1 (Eval.rotate_many). Pre-scan for
     values rotated by >= 2 distinct amounts; the first Rotate of a fan
     computes all of them, later ones drain the cache. Results are
     bit-identical to per-rotation Eval.rotate, so this is invisible to the
     differential fuzzer. *)
  let fans : (int, int list) Hashtbl.t = Hashtbl.create 4 in
  Prog.iter
    (fun (o : Prog.op) ->
      match o.Prog.kind with
      | Prog.Rotate { amount } ->
          let src = o.Prog.args.(0) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt fans src) in
          if not (List.mem amount prev) then Hashtbl.replace fans src (amount :: prev)
      | _ -> ())
    p;
  Hashtbl.filter_map_inplace
    (fun _ amounts -> if List.length amounts >= 2 then Some (List.rev amounts) else None)
    fans;
  let hoisted : (int * int, Eval.ciphertext) Hashtbl.t = Hashtbl.create 8 in
  (* Mul -> Rescale fusion: a ciphertext-ciphertext Mul whose result has
     exactly one consumer, a Rescale, runs as the fused Eval.mul_rescale
     (one NTT round-trip saved; bit-identical output). *)
  let use_count = Array.make (Prog.num_ops p) 0 in
  Prog.iter
    (fun (o : Prog.op) ->
      Array.iter (fun a -> use_count.(a) <- use_count.(a) + 1) o.Prog.args)
    p;
  List.iter (fun v -> use_count.(v) <- use_count.(v) + 1) p.Prog.outputs;
  let fuse_mul = Array.make (Prog.num_ops p) false in
  Prog.iter
    (fun (o : Prog.op) ->
      match o.Prog.kind with
      | Prog.Rescale -> (
          let src = o.Prog.args.(0) in
          let so = Prog.op p src in
          match so.Prog.kind with
          | Prog.Mul when use_count.(src) = 1 ->
              let cipher i =
                match (Prog.op p so.Prog.args.(i)).Prog.ty with
                | Types.Cipher _ -> true
                | _ -> false
              in
              if cipher 0 && cipher 1 then fuse_mul.(src) <- true
          | _ -> ())
      | _ -> ())
    p;
  (* The logical vector is replicated across the physical register: when the
     execution degree offers more slots than the program declares, rotation
     must still be cyclic in [slot_count], and replication makes the Galois
     rotation of the register exactly that (slot counts and register widths
     are both powers of two). Found by the differential fuzzer: a 4-slot
     rotate executed at n = 16 used to wrap zeros in through the 8-slot
     register. Identity when the register width equals [slot_count]. *)
  let phys = Params.slots (Eval.params eval) in
  let pad v =
    let len = Array.length v in
    Array.init phys (fun i ->
        let j = i mod sc in
        if j < len then v.(j) else 0.)
  in
  (* SEAL-style scale alignment before additive operations. *)
  let align_cipher a target =
    if Float.abs (Eval.scale a -. target) /. target < 1e-9 then a else Eval.set_scale eval a target
  in
  let run_op (o : Prog.op) =
    match o.Prog.kind with
    | Prog.Input { name } -> (
        match List.assoc_opt name inputs with
        | Some v -> Vcipher (Eval.encrypt_vector eval ~scale:wl (pad v))
        | None -> invalid_arg ("Interp.execute: missing input " ^ name))
    | Prog.Const { value = Prog.Scalar x } -> Vfree (Array.make phys x)
    | Prog.Const { value = Prog.Vector v } -> Vfree (pad v)
    | Prog.Encode { scale; level } -> (
        match get o.Prog.args.(0) with
        | Vfree v -> Vplain (Eval.encode eval ~level ~scale:(Float.exp2 scale) v)
        | _ -> invalid_arg "Interp.execute: encode of a non-free value")
    | Prog.Add | Prog.Sub -> (
        let sub = o.Prog.kind = Prog.Sub in
        match (get o.Prog.args.(0), get o.Prog.args.(1)) with
        | Vcipher a, Vcipher b ->
            let b = align_cipher b (Eval.scale a) in
            Vcipher (if sub then Eval.sub eval a b else Eval.add eval a b)
        | Vcipher a, Vplain b ->
            let a = align_cipher a b.Eval.pt_scale in
            Vcipher (if sub then Eval.sub_plain eval a b else Eval.add_plain eval a b)
        | Vplain a, Vcipher b ->
            let b = align_cipher b a.Eval.pt_scale in
            Vcipher
              (if sub then Eval.negate eval (Eval.sub_plain eval b a) else Eval.add_plain eval b a)
        | _ -> invalid_arg "Interp.execute: additive operands must pair a ciphertext with a plaintext")
    | Prog.Mul -> (
        match (get o.Prog.args.(0), get o.Prog.args.(1)) with
        | Vcipher a, Vcipher b ->
            if fuse_mul.(o.Prog.id) then Vpending_mul (a, b) else Vcipher (Eval.mul eval a b)
        | Vcipher a, Vplain b | Vplain b, Vcipher a -> Vcipher (Eval.mul_plain eval a b)
        | _ -> invalid_arg "Interp.execute: mul operands must pair a ciphertext with a plaintext")
    | Prog.Negate -> Vcipher (Eval.negate eval (cipher_exn o.Prog.args.(0)))
    | Prog.Rotate { amount } -> (
        let src = o.Prog.args.(0) in
        match Hashtbl.find_opt hoisted (src, amount) with
        | Some c ->
            Hashtbl.remove hoisted (src, amount);
            Vcipher c
        | None -> (
            match Hashtbl.find_opt fans src with
            | Some amounts ->
                let results = Eval.rotate_many eval (cipher_exn src) amounts in
                List.iter2 (fun a c -> Hashtbl.replace hoisted (src, a) c) amounts results;
                Hashtbl.remove fans src;
                let c = Hashtbl.find hoisted (src, amount) in
                Hashtbl.remove hoisted (src, amount);
                Vcipher c
            | None -> Vcipher (Eval.rotate eval (cipher_exn src) amount)))
    | Prog.Rescale -> (
        match get o.Prog.args.(0) with
        | Vpending_mul (a, b) -> Vcipher (Eval.mul_rescale eval a b)
        | Vcipher c -> Vcipher (Eval.rescale eval c)
        | Vplain _ | Vfree _ -> invalid_arg "Interp.execute: rescale on a non-ciphertext")
    | Prog.Modswitch -> (
        match get o.Prog.args.(0) with
        | Vcipher c -> Vcipher (Eval.mod_switch eval c)
        | Vplain pt -> Vplain (Eval.mod_switch_plain eval pt)
        | _ -> invalid_arg "Interp.execute: modswitch on a free value")
    | Prog.Upscale { target_scale } ->
        let c = cipher_exn o.Prog.args.(0) in
        let factor = Float.exp2 target_scale /. Eval.scale c in
        if factor < 1.5 then Vcipher (Eval.set_scale eval c (Float.exp2 target_scale))
        else Vcipher (Eval.upscale eval c ~factor)
    | Prog.Downscale _ ->
        let c = cipher_exn o.Prog.args.(0) in
        let lc = Chain.length chain - Eval.level c in
        let q_drop = float_of_int (Chain.prime chain (lc - 1)) in
        (* upscale to S_f * S_w (the rescale prime times the waterline), then
           rescale: the result lands on the waterline up to the rounding of
           the integer multiplier (see DESIGN.md on small-S_f precision) *)
        let factor = q_drop *. wl /. Eval.scale c in
        Vcipher (Eval.rescale eval (Eval.upscale eval c ~factor))
  in
  Prog.iter
    (fun (o : Prog.op) ->
      let t0 = Unix.gettimeofday () in
      let v = run_op o in
      let dt = Unix.gettimeofday () -. t0 in
      (match class_of_op p o with
      | None -> ()
      | Some cls ->
          elapsed := !elapsed +. dt;
          let prev = Option.value ~default:{ count = 0; seconds = 0. } (Hashtbl.find_opt stats cls) in
          Hashtbl.replace stats cls { count = prev.count + 1; seconds = prev.seconds +. dt });
      values.(o.Prog.id) <- Some v;
      (match v with
      | Vcipher _ | Vpending_mul _ ->
          incr live_count;
          peak := max !peak !live_count
      | Vplain _ | Vfree _ -> ());
      (* free operands whose last use this was *)
      Array.iter
        (fun a ->
          if live.Liveness.last_use.(a) = o.Prog.id then begin
            (match values.(a) with
            | Some (Vcipher _ | Vpending_mul _) -> decr live_count
            | _ -> ());
            values.(a) <- None
          end)
        o.Prog.args)
    p;
  let outputs =
    List.map
      (fun v ->
        match get v with
        | Vcipher c -> Eval.decrypt eval c
        | Vplain _ | Vfree _ | Vpending_mul _ ->
            invalid_arg "Interp.execute: output is not a ciphertext")
      p.Prog.outputs
  in
  {
    outputs;
    elapsed_seconds = !elapsed;
    per_class = Hashtbl.fold (fun cls st acc -> (cls, st) :: acc) stats [];
    peak_live = !peak;
  }
