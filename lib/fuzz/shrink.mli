(** Greedy structural shrinking of failing fuzz cases.

    The shrinker repeatedly tries two reductions — restricting the program
    to a single output, and replacing an operation by one of its own
    operands (which dead-code-eliminates the operation and everything only
    it needed, including now-unused inputs) — and keeps any strictly
    smaller program on which the failure predicate still holds. Every
    candidate is valid by construction: reductions that would leave an
    output without ciphertext provenance are discarded. *)

val substitute :
  Hecate_ir.Prog.t -> value:Hecate_ir.Prog.value -> by:Hecate_ir.Prog.value -> Hecate_ir.Prog.t option
(** [substitute p ~value ~by] rewires every use of [value] (including
    outputs) to [by], removes dead code, renumbers densely and prunes
    unused inputs. [None] if the result is structurally invalid or an
    output loses its input provenance. Also usable for fault injection in
    tests (deleting a [rescale] by replacing it with its operand). *)

val restrict_outputs : Hecate_ir.Prog.t -> Hecate_ir.Prog.value list -> Hecate_ir.Prog.t option
(** Keep only the given outputs, then dead-code-eliminate. *)

val shrink :
  ?max_rounds:int -> keep:(Hecate_ir.Prog.t -> bool) -> Hecate_ir.Prog.t -> Hecate_ir.Prog.t
(** First-improvement greedy loop to a fixpoint (or [max_rounds], default
    200): returns a program no larger than the argument on which [keep]
    still holds. [keep] is never called on the argument itself — the caller
    asserts it fails. *)
