module Prog = Hecate_ir.Prog
module Typing = Hecate_ir.Typing
module Printer = Hecate_ir.Printer
module Parser = Hecate_ir.Parser
module Diagnostic = Hecate_ir.Diagnostic
module Driver = Hecate.Driver
module Explore = Hecate.Explore
module Paramselect = Hecate.Paramselect
module Estimator = Hecate.Estimator
module Costmodel = Hecate.Costmodel
module Interp = Hecate_backend.Interp
module Accuracy = Hecate_backend.Accuracy
module Harness = Hecate_backend.Harness

type check = Compile | Validate | Typecheck | Roundtrip | Estimate | Accuracy | Cross_scheme

type failure = {
  check : check;
  scheme : Driver.scheme option;
  detail : string;
  code : Diagnostic.code option;
}

let same_class a b = a.check = b.check && a.code = b.code

let check_name = function
  | Compile -> "compile"
  | Validate -> "validate"
  | Typecheck -> "typecheck"
  | Roundtrip -> "roundtrip"
  | Estimate -> "estimate"
  | Accuracy -> "accuracy"
  | Cross_scheme -> "cross-scheme"

let check_of_name = function
  | "compile" -> Some Compile
  | "validate" -> Some Validate
  | "typecheck" -> Some Typecheck
  | "roundtrip" -> Some Roundtrip
  | "estimate" -> Some Estimate
  | "accuracy" -> Some Accuracy
  | "cross-scheme" -> Some Cross_scheme
  | _ -> None

let describe f =
  Printf.sprintf "%s[%s]%s: %s" (check_name f.check)
    (match f.scheme with Some s -> Driver.scheme_name s | None -> "all")
    (match f.code with Some c -> Printf.sprintf "{%s}" (Diagnostic.code_name c) | None -> "")
    f.detail

type config = {
  sf_bits : int;
  waterline_bits : float;
  rmse_bound : float;
  cross_bound : float;
  max_epochs : int;
  schemes : Driver.scheme list;
}

let default_config =
  {
    sf_bits = 28;
    waterline_bits = 20.;
    rmse_bound = 0x1p-7;
    cross_bound = 0x1p-6;
    max_epochs = 40;
    schemes = Driver.all_schemes;
  }

let exn_text e = Printexc.to_string e

(* Harness.cached_context mutates a shared table with no lock (fine for the
   single-threaded fuzz loop). The explorer gate runs on hecated worker
   threads, so serialize context lookup/creation here. *)
let ctx_mutex = Mutex.create ()

let shared_context ~params ~rotations =
  Mutex.lock ctx_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock ctx_mutex)
    (fun () -> Harness.cached_context ~params ~rotations)

(* The checks every compiled (managed) program must pass, shared by the
   per-scheme differential oracle and the explorer gate: structural
   validity, the C1-C3 type system, print->parse round-trip, a finite
   non-negative cost estimate, and encrypted execution within [rmse_bound]
   of the exact plaintext reference. Returns the decrypted outputs so the
   caller can run agreement checks across schemes or against a baseline.
   [params]/[estimate] default to being recomputed from the program's
   types (the gate has no compiled record in hand). *)
let check_managed ?scheme ?params ?estimate ~sf_bits ~waterline_bits ~rmse_bound ~inputs
    ~valid_slots p =
  let fail ?code check detail = Error { check; scheme; detail; code } in
  match Prog.validate p with
  | Error msg -> fail ~code:Diagnostic.Invalid_program Validate msg
  | Ok () -> (
      let tcfg = Typing.config ~sf:(float_of_int sf_bits) ~waterline:waterline_bits () in
      match Typing.check tcfg p with
      | Error d -> fail ~code:d.Diagnostic.code Typecheck (Diagnostic.to_string d)
      | Ok types -> (
          match Parser.parse (Printer.to_string p) with
          | exception e -> fail Roundtrip ("re-parse raised: " ^ exn_text e)
          | p' when not (Prog.equal p p') ->
              fail Roundtrip "printed program re-parses to a different program"
          | _ -> (
              match
                match params with
                | Some ps -> ps
                | None ->
                    Paramselect.select ~sf_bits ~types ~slot_count:p.Prog.slot_count ()
              with
              | exception e -> fail Estimate ("parameter selection raised: " ^ exn_text e)
              | params ->
                  let est =
                    match estimate with
                    | Some e -> e
                    | None ->
                        Estimator.estimate ~model:(Costmodel.analytic ()) ~params
                          ~n:params.Paramselect.secure_n p
                  in
                  if not (Float.is_finite est && est >= 0.) then
                    fail Estimate (Printf.sprintf "estimated cost %g" est)
                  else (
                    match
                      let rotations = Interp.required_rotations p in
                      let eval = shared_context ~params ~rotations in
                      Accuracy.measure eval ~waterline_bits p ~inputs ~valid_slots
                    with
                    | exception e -> fail Accuracy ("execution raised: " ^ exn_text e)
                    | acc ->
                        if not (acc.Accuracy.rmse <= rmse_bound) then
                          fail Accuracy
                            (Printf.sprintf "rmse %.3e exceeds bound %.3e (max abs %.3e)"
                               acc.Accuracy.rmse rmse_bound acc.Accuracy.max_abs_error)
                        else Ok acc.Accuracy.outputs))))

(* One scheme: compile, then run the per-scheme checks. Returns the decrypted
   outputs for the cross-scheme comparison. *)
let run_scheme ~transform cfg scheme prog ~inputs =
  let fail ?code check detail = Error { check; scheme = Some scheme; detail; code } in
  match
    Driver.compile ~max_epochs:cfg.max_epochs scheme ~sf_bits:cfg.sf_bits
      ~waterline_bits:cfg.waterline_bits prog
  with
  | exception Diagnostic.Error d -> fail ~code:d.Diagnostic.code Compile (Diagnostic.to_string d)
  | exception e -> fail Compile (exn_text e)
  | compiled ->
      check_managed ~scheme ~params:compiled.Driver.params
        ~estimate:compiled.Driver.estimated_seconds ~sf_bits:cfg.sf_bits
        ~waterline_bits:cfg.waterline_bits ~rmse_bound:cfg.rmse_bound ~inputs
        ~valid_slots:prog.Prog.slot_count
        (transform scheme compiled.Driver.prog)

let max_abs_deviation outs_a outs_b =
  List.fold_left2
    (fun acc a b ->
      let m = ref acc in
      Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.(i)))) a;
      !m)
    0. outs_a outs_b

let run ?(transform = fun _ p -> p) cfg prog ~inputs =
  let rec per_scheme acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match run_scheme ~transform cfg s prog ~inputs with
        | Error f -> Error f
        | Ok outs -> per_scheme ((s, outs) :: acc) rest)
  in
  match per_scheme [] cfg.schemes with
  | Error f -> Error f
  | Ok results -> (
      (* metamorphic check: every pair of schemes must agree *)
      let rec pairs = function
        | [] | [ _ ] -> Ok ()
        | (sa, a) :: rest ->
            let rec against = function
              | [] -> pairs rest
              | (sb, b) :: more ->
                  let dev = max_abs_deviation a b in
                  if dev > cfg.cross_bound then
                    Error
                      {
                        check = Cross_scheme;
                        scheme = None;
                        detail =
                          Printf.sprintf "%s vs %s deviate by %.3e (bound %.3e)"
                            (Driver.scheme_name sa) (Driver.scheme_name sb) dev
                            cfg.cross_bound;
                        code = None;
                      }
                  else against more
            in
            against rest
      in
      match results with [] -> Ok () | _ -> pairs results)

(* ------------------------------------------------------------------ *)
(* Explorer gate                                                        *)
(* ------------------------------------------------------------------ *)

let gate_failure_of f =
  {
    Explore.failed_check = check_name f.check;
    failed_code = Option.map Diagnostic.code_name f.code;
    failed_detail = f.detail;
  }

let explorer_gate ?(seed = 0) ?rmse_bound ?cross_bound
    ?(transform = fun ~strategy:_ p -> p) ~sf_bits ~waterline_bits prog =
  (* The fuzz bounds are tuned for fuzz-sized circuits. Rescaling noise
     accumulates roughly as a random walk over the ops of the circuit, so
     real applications (sobel, regressions) sit legitimately above the
     fuzz floor: scale the default bounds by sqrt(#ops). Explicit bounds
     always win. *)
  let size_scale = sqrt (float_of_int (max 1 (Prog.num_ops prog))) in
  let rmse_bound =
    match rmse_bound with Some b -> b | None -> default_config.rmse_bound *. size_scale
  in
  let cross_bound =
    match cross_bound with Some b -> b | None -> default_config.cross_bound *. size_scale
  in
  let inputs = Gen.inputs_for ~seed prog in
  let valid_slots = prog.Prog.slot_count in
  (* The agreement reference: EVA's waterline codegen with no exploration,
     compiled and executed once, on demand. When the baseline itself cannot
     be built (or fails its own checks) the agreement check is skipped —
     the gate must not reject a candidate for the baseline's sins. *)
  let baseline =
    lazy
      (match Driver.compile Driver.Eva ~sf_bits ~waterline_bits prog with
      | exception _ -> None
      | compiled -> (
          match
            check_managed ~scheme:Driver.Eva ~params:compiled.Driver.params
              ~estimate:compiled.Driver.estimated_seconds ~sf_bits ~waterline_bits
              ~rmse_bound ~inputs ~valid_slots compiled.Driver.prog
          with
          | Ok outs -> Some outs
          | Error _ -> None))
  in
  fun ~strategy ~plan:_ p ->
    let p = transform ~strategy p in
    match check_managed ~sf_bits ~waterline_bits ~rmse_bound ~inputs ~valid_slots p with
    | Error f -> Error (gate_failure_of f)
    | Ok outs -> (
        match Lazy.force baseline with
        | None -> Ok ()
        | Some ref_outs ->
            let dev = max_abs_deviation outs ref_outs in
            if dev > cross_bound then
              Error
                {
                  Explore.failed_check = check_name Cross_scheme;
                  failed_code = None;
                  failed_detail =
                    Printf.sprintf "deviates from the EVA baseline by %.3e (bound %.3e)" dev
                      cross_bound;
                }
            else Ok ())
