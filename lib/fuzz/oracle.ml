module Prog = Hecate_ir.Prog
module Typing = Hecate_ir.Typing
module Printer = Hecate_ir.Printer
module Parser = Hecate_ir.Parser
module Diagnostic = Hecate_ir.Diagnostic
module Driver = Hecate.Driver
module Interp = Hecate_backend.Interp
module Accuracy = Hecate_backend.Accuracy
module Harness = Hecate_backend.Harness

type check = Compile | Validate | Typecheck | Roundtrip | Estimate | Accuracy | Cross_scheme

type failure = {
  check : check;
  scheme : Driver.scheme option;
  detail : string;
  code : Diagnostic.code option;
}

let same_class a b = a.check = b.check && a.code = b.code

let check_name = function
  | Compile -> "compile"
  | Validate -> "validate"
  | Typecheck -> "typecheck"
  | Roundtrip -> "roundtrip"
  | Estimate -> "estimate"
  | Accuracy -> "accuracy"
  | Cross_scheme -> "cross-scheme"

let check_of_name = function
  | "compile" -> Some Compile
  | "validate" -> Some Validate
  | "typecheck" -> Some Typecheck
  | "roundtrip" -> Some Roundtrip
  | "estimate" -> Some Estimate
  | "accuracy" -> Some Accuracy
  | "cross-scheme" -> Some Cross_scheme
  | _ -> None

let describe f =
  Printf.sprintf "%s[%s]%s: %s" (check_name f.check)
    (match f.scheme with Some s -> Driver.scheme_name s | None -> "all")
    (match f.code with Some c -> Printf.sprintf "{%s}" (Diagnostic.code_name c) | None -> "")
    f.detail

type config = {
  sf_bits : int;
  waterline_bits : float;
  rmse_bound : float;
  cross_bound : float;
  max_epochs : int;
  schemes : Driver.scheme list;
}

let default_config =
  {
    sf_bits = 28;
    waterline_bits = 20.;
    rmse_bound = 0x1p-7;
    cross_bound = 0x1p-6;
    max_epochs = 40;
    schemes = Driver.all_schemes;
  }

let exn_text e = Printexc.to_string e

(* One scheme: compile, then run the per-scheme checks. Returns the decrypted
   outputs for the cross-scheme comparison. *)
let run_scheme ~transform cfg scheme prog ~inputs =
  let fail ?code check detail = Error { check; scheme = Some scheme; detail; code } in
  match
    Driver.compile ~max_epochs:cfg.max_epochs scheme ~sf_bits:cfg.sf_bits
      ~waterline_bits:cfg.waterline_bits prog
  with
  | exception Diagnostic.Error d -> fail ~code:d.Diagnostic.code Compile (Diagnostic.to_string d)
  | exception e -> fail Compile (exn_text e)
  | compiled -> (
      let p = transform scheme compiled.Driver.prog in
      match Prog.validate p with
      | Error msg -> fail ~code:Diagnostic.Invalid_program Validate msg
      | Ok () -> (
          let tcfg =
            Typing.config ~sf:(float_of_int cfg.sf_bits) ~waterline:cfg.waterline_bits ()
          in
          match Typing.check tcfg p with
          | Error d -> fail ~code:d.Diagnostic.code Typecheck (Diagnostic.to_string d)
          | Ok _ -> (
              match Parser.parse (Printer.to_string p) with
              | exception e -> fail Roundtrip ("re-parse raised: " ^ exn_text e)
              | p' when not (Prog.equal p p') ->
                  fail Roundtrip "printed program re-parses to a different program"
              | _ ->
                  let est = compiled.Driver.estimated_seconds in
                  if not (Float.is_finite est && est >= 0.) then
                    fail Estimate (Printf.sprintf "estimated cost %g" est)
                  else (
                    match
                      let rotations = Interp.required_rotations p in
                      let eval =
                        Harness.cached_context ~params:compiled.Driver.params ~rotations
                      in
                      Accuracy.measure eval ~waterline_bits:cfg.waterline_bits p ~inputs
                        ~valid_slots:prog.Prog.slot_count
                    with
                    | exception e -> fail Accuracy ("execution raised: " ^ exn_text e)
                    | acc ->
                        if not (acc.Accuracy.rmse <= cfg.rmse_bound) then
                          fail Accuracy
                            (Printf.sprintf "rmse %.3e exceeds bound %.3e (max abs %.3e)"
                               acc.Accuracy.rmse cfg.rmse_bound acc.Accuracy.max_abs_error)
                        else Ok acc.Accuracy.outputs))))

let max_abs_deviation outs_a outs_b =
  List.fold_left2
    (fun acc a b ->
      let m = ref acc in
      Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.(i)))) a;
      !m)
    0. outs_a outs_b

let run ?(transform = fun _ p -> p) cfg prog ~inputs =
  let rec per_scheme acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match run_scheme ~transform cfg s prog ~inputs with
        | Error f -> Error f
        | Ok outs -> per_scheme ((s, outs) :: acc) rest)
  in
  match per_scheme [] cfg.schemes with
  | Error f -> Error f
  | Ok results -> (
      (* metamorphic check: every pair of schemes must agree *)
      let rec pairs = function
        | [] | [ _ ] -> Ok ()
        | (sa, a) :: rest ->
            let rec against = function
              | [] -> pairs rest
              | (sb, b) :: more ->
                  let dev = max_abs_deviation a b in
                  if dev > cfg.cross_bound then
                    Error
                      {
                        check = Cross_scheme;
                        scheme = None;
                        detail =
                          Printf.sprintf "%s vs %s deviate by %.3e (bound %.3e)"
                            (Driver.scheme_name sa) (Driver.scheme_name sb) dev
                            cfg.cross_bound;
                        code = None;
                      }
                  else against more
            in
            against rest
      in
      match results with [] -> Ok () | _ -> pairs results)
