(** Seeded, valid-by-construction random IR program generator.

    Programs are random SSA DAGs over the homomorphic subset of the IR
    ([add], [sub], [mul], [negate], [rotate], [const] — plain multiplies
    arise from [mul] with a constant operand), with bounded multiplicative
    depth, bounded value magnitudes and bounded slot counts so that every
    generated program compiles under all four scale-management schemes and
    executes quickly on the reduced-degree CKKS substrate.

    All randomness flows through named {!Hecate_support.Prng.split}
    sub-streams of one seed ("shape", "consts", "input:<name>"), so the
    program structure, its constants and its input data are independently
    reproducible from a single printed integer. *)

type config = {
  max_ops : int;  (** homomorphic-op budget beyond inputs/consts *)
  max_depth : int;  (** multiplicative-depth cap *)
  max_inputs : int;
  max_outputs : int;
  slot_choices : int list;  (** candidate slot counts (powers of two) *)
  magnitude_cap : float;
      (** bound on the plaintext magnitude of any generated value; operand
          choices that would exceed it are degraded to cheaper ops *)
}

val default_config : config
(** [max_ops = 24], [max_depth = 3], [max_inputs = 3], [max_outputs = 2],
    [slot_choices = \[4; 8; 16; 32\]], [magnitude_cap = 16.0]. *)

type case = {
  seed : int;
  prog : Hecate_ir.Prog.t;  (** unmanaged, passes {!Hecate_ir.Prog.validate} *)
  inputs : (string * float array) list;
      (** one full-width vector per program input, magnitudes <= 0.5 *)
}

val generate : ?config:config -> seed:int -> unit -> case
(** Deterministic in [seed] and [config]. *)

val inputs_for : seed:int -> Hecate_ir.Prog.t -> (string * float array) list
(** Re-derive the input vectors of {!generate} for an arbitrary program:
    each vector depends only on [seed], the input's {e name} and the slot
    count, so a program shrunk to a subset of its inputs replays with the
    same data the failing case saw. *)
