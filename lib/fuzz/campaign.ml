module Prog = Hecate_ir.Prog
module Printer = Hecate_ir.Printer
module Parser = Hecate_ir.Parser

type case_failure = {
  index : int;
  case_seed : int;
  failure : Oracle.failure;
  original : Prog.t;
  shrunk : Prog.t;
  repro_path : string option;
}

type report = { count : int; failures : case_failure list; elapsed_seconds : float }

let repro_text ~case_seed ~(oracle : Oracle.config) (failure : Oracle.failure) prog =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "# fuzz-repro seed=%d check=%s scheme=%s sf_bits=%d waterline=%g%s\n"
       case_seed
       (Oracle.check_name failure.Oracle.check)
       (match failure.Oracle.scheme with
       | Some s -> Hecate.Driver.scheme_name s
       | None -> "all")
       oracle.Oracle.sf_bits oracle.Oracle.waterline_bits
       (match failure.Oracle.code with
       | Some c -> " code=" ^ Hecate_ir.Diagnostic.code_name c
       | None -> ""));
  Buffer.add_string b ("# " ^ failure.Oracle.detail ^ "\n");
  Buffer.add_string b
    (Printf.sprintf
       "# replay: inputs are re-derived from the seed (docs/TESTING.md); regenerate the \
        unshrunk case with `bench/main.exe fuzz --seed %d --count 1`\n"
       case_seed);
  Buffer.add_string b (Printer.to_string prog);
  Buffer.contents b

let write_repro ~dir ~case_seed ~oracle failure prog =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir
      (Printf.sprintf "fuzz_seed%d_%s.hec" case_seed (Oracle.check_name failure.Oracle.check))
  in
  let oc = open_out path in
  output_string oc (repro_text ~case_seed ~oracle failure prog);
  close_out oc;
  path

(* "key=value" scanner for the reproducer header line. *)
let header_field line key =
  let tag = key ^ "=" in
  let rec find i =
    if i + String.length tag > String.length line then None
    else if String.sub line i (String.length tag) = tag then begin
      let start = i + String.length tag in
      let stop = ref start in
      while !stop < String.length line && line.[!stop] <> ' ' do
        incr stop
      done;
      Some (String.sub line start (!stop - start))
    end
    else find (i + 1)
  in
  find 0

let read_header path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match String.split_on_char '\n' text with
  | first :: _ when String.length first >= 12 && String.sub first 0 12 = "# fuzz-repro" ->
      (text, first)
  | _ -> invalid_arg (Printf.sprintf "Campaign.replay: %s has no '# fuzz-repro' header" path)

let recorded_class path =
  let _, header = read_header path in
  let check =
    match Option.bind (header_field header "check") Oracle.check_of_name with
    | Some c -> c
    | None ->
        invalid_arg (Printf.sprintf "Campaign.recorded_class: %s header lacks a known check=" path)
  in
  let code = Option.bind (header_field header "code") Hecate_ir.Diagnostic.code_of_name in
  (check, code)

let replay ?transform path =
  let text, header = read_header path in
  let field key =
    match header_field header key with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Campaign.replay: %s header lacks %s=" path key)
  in
  let seed = int_of_string (field "seed") in
  let oracle =
    {
      Oracle.default_config with
      Oracle.sf_bits = int_of_string (field "sf_bits");
      waterline_bits = float_of_string (field "waterline");
    }
  in
  let prog = Parser.parse text in
  Oracle.run ?transform oracle prog ~inputs:(Gen.inputs_for ~seed prog)

let run ?gen ?(oracle = Oracle.default_config) ?transform ?out_dir ?(log = ignore) ~seed
    ~count () =
  let t0 = Unix.gettimeofday () in
  let failures = ref [] in
  for index = 0 to count - 1 do
    let case_seed = seed + index in
    let case = Gen.generate ?config:gen ~seed:case_seed () in
    match Oracle.run ?transform oracle case.Gen.prog ~inputs:case.Gen.inputs with
    | Ok () -> ()
    | Error failure ->
        log
          (Printf.sprintf "case %d (seed %d, %d ops) FAILED %s" index case_seed
             (Prog.num_ops case.Gen.prog) (Oracle.describe failure));
        (* shrink while the same failure class (check + diagnostic code)
           still fails *)
        let keep candidate =
          match
            Oracle.run ?transform oracle candidate ~inputs:(Gen.inputs_for ~seed:case_seed candidate)
          with
          | Error f -> Oracle.same_class f failure
          | Ok () -> false
        in
        let shrunk = Shrink.shrink ~keep case.Gen.prog in
        log
          (Printf.sprintf "  shrunk %d -> %d ops" (Prog.num_ops case.Gen.prog)
             (Prog.num_ops shrunk));
        let repro_path =
          Option.map
            (fun dir ->
              let p = write_repro ~dir ~case_seed ~oracle failure shrunk in
              log (Printf.sprintf "  wrote %s" p);
              p)
            out_dir
        in
        failures :=
          { index; case_seed; failure; original = case.Gen.prog; shrunk; repro_path }
          :: !failures
  done;
  { count; failures = List.rev !failures; elapsed_seconds = Unix.gettimeofday () -. t0 }
