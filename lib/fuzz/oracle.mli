(** Differential oracle for the four scale-management schemes.

    One generated (unmanaged) program is compiled under every
    {!Hecate.Driver.scheme} and each compiled output must satisfy:

    - {b validate}: {!Hecate_ir.Prog.validate} holds structurally;
    - {b typecheck}: {!Hecate_ir.Typing.check} holds (constraints C1-C3);
    - {b roundtrip}: printing and re-parsing is structurally
      {!Hecate_ir.Prog.equal};
    - {b estimate}: the {!Hecate.Estimator} cost of the accepted plan is
      finite and non-negative;
    - {b accuracy}: encrypted execution ({!Hecate_backend.Interp}) agrees
      with the exact plaintext reference ({!Hecate_backend.Reference})
      within an RMS-error bound;
    - {b cross-scheme}: the four schemes' decrypted outputs agree with each
      other (metamorphic check — all schemes implement the same plaintext
      semantics).

    The [transform] hook rewrites the compiled program before checking and
    exists for fault-injection tests: flipping a scale in one scheme's
    output must be caught here and shrunk by {!Shrink}. *)

type check = Compile | Validate | Typecheck | Roundtrip | Estimate | Accuracy | Cross_scheme

type failure = {
  check : check;
  scheme : Hecate.Driver.scheme option;  (** [None] for cross-scheme disagreements *)
  detail : string;
  code : Hecate_ir.Diagnostic.code option;
      (** structured diagnostic class for compile/validate/typecheck
          failures; [None] for checks with no diagnostic (accuracy etc.) *)
}

val check_name : check -> string
val check_of_name : string -> check option

val same_class : failure -> failure -> bool
(** Same check and same diagnostic code — the identity used when shrinking
    and when asserting on replayed corpus entries, robust to changes in
    message wording. *)

val describe : failure -> string

type config = {
  sf_bits : int;
  waterline_bits : float;
  rmse_bound : float;  (** bound on accuracy-check RMS error *)
  cross_bound : float;  (** bound on pairwise cross-scheme max-abs deviation *)
  max_epochs : int;  (** exploration budget for SMSE/HECATE *)
  schemes : Hecate.Driver.scheme list;
}

val default_config : config
(** [sf_bits = 28], [waterline_bits = 20.], [rmse_bound = 2^-7],
    [cross_bound = 2^-6], [max_epochs = 40], all four schemes. *)

val run :
  ?transform:(Hecate.Driver.scheme -> Hecate_ir.Prog.t -> Hecate_ir.Prog.t) ->
  config ->
  Hecate_ir.Prog.t ->
  inputs:(string * float array) list ->
  (unit, failure) result
(** First failing check, in the order listed above (per scheme, then the
    cross-scheme comparison). Exceptions raised by compilation or execution
    are converted into failures of the corresponding check. *)

val explorer_gate :
  ?seed:int ->
  ?rmse_bound:float ->
  ?cross_bound:float ->
  ?transform:(strategy:string -> Hecate_ir.Prog.t -> Hecate_ir.Prog.t) ->
  sf_bits:int ->
  waterline_bits:float ->
  Hecate_ir.Prog.t ->
  Hecate.Explore.gate
(** An {!Hecate.Explore.gate} for [prog] (the {e unmanaged} input program):
    every exploration strategy's winning managed program is re-validated —
    {b validate}, {b typecheck}, {b roundtrip}, finite {b estimate}, and
    encrypted execution within [rmse_bound] of the plaintext reference on
    deterministic inputs derived from [seed] (default 0) via
    {!Gen.inputs_for} — and its decrypted outputs must agree with an EVA
    baseline compile of the same program within [cross_bound]. The bounds
    default to the fuzz-config bounds scaled by [sqrt (num_ops prog)]:
    rescaling noise accumulates roughly as a random walk over the circuit,
    so real applications sit legitimately above the fuzz-sized floor. The baseline is compiled and executed
    lazily, once, and the agreement check is skipped if the baseline itself
    cannot be built. [transform] rewrites a winner before checking, keyed by
    strategy name — the fault-injection hook the oracle-gated exploration
    tests use to make one strategy's output invalid. Thread-safe. *)
