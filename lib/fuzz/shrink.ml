module Prog = Hecate_ir.Prog

(* Rebuild [p] with uses of [subst]'s key rewired to its image and outputs
   replaced by [outputs], keeping only live ops. Returns None when the
   result would be invalid (empty, or an output without input provenance —
   the compiler rightly rejects plaintext-only outputs, and a shrink that
   trips over that rejection would mask the original failure). *)
let rebuild (p : Prog.t) ~outputs ~subst =
  let n = Array.length p.Prog.body in
  let map v = match subst with Some (from, to_) when v = from -> to_ | _ -> v in
  let outputs = List.map map outputs in
  if outputs = [] then None
  else begin
    let live = Array.make n false in
    let rec mark v =
      if not live.(v) then begin
        live.(v) <- true;
        Array.iter (fun a -> mark (map a)) p.Prog.body.(v).Prog.args
      end
    in
    List.iter mark outputs;
    let new_id = Array.make n (-1) in
    let count = ref 0 in
    for v = 0 to n - 1 do
      if live.(v) then begin
        new_id.(v) <- !count;
        incr count
      end
    done;
    let body =
      Array.of_list
        (List.concat_map
           (fun (o : Prog.op) ->
             if live.(o.Prog.id) then
               [
                 {
                   Prog.id = new_id.(o.Prog.id);
                   kind = o.Prog.kind;
                   args = Array.map (fun a -> new_id.(map a)) o.Prog.args;
                   ty = Hecate_ir.Types.Free;
                   prov = o.Prog.prov;
                 };
               ]
             else [])
           (Array.to_list p.Prog.body))
    in
    let inputs = List.filter_map (fun v -> if live.(v) then Some new_id.(v) else None) p.Prog.inputs in
    let candidate =
      {
        Prog.name = p.Prog.name;
        slot_count = p.Prog.slot_count;
        body;
        inputs;
        outputs = List.map (fun v -> new_id.(v)) outputs;
      }
    in
    match Prog.validate candidate with
    | Error _ -> None
    | Ok () ->
        (* every output must still be derived from an input *)
        let m = Array.length body in
        let cipher = Array.make m false in
        Array.iter
          (fun (o : Prog.op) ->
            cipher.(o.Prog.id) <-
              (match o.Prog.kind with
              | Prog.Input _ -> true
              | _ -> Array.exists (fun a -> cipher.(a)) o.Prog.args))
          body;
        if List.for_all (fun v -> cipher.(v)) candidate.Prog.outputs then Some candidate
        else None
  end

let substitute p ~value ~by =
  if value = by then None else rebuild p ~outputs:p.Prog.outputs ~subst:(Some (value, by))

let restrict_outputs p outputs = rebuild p ~outputs ~subst:None

(* All single-step reduction candidates, smallest-result-first heuristics:
   output restriction first (drops the most), then operand substitution on
   late ops (whose removal frees the longest tail). *)
let candidates (p : Prog.t) =
  let outs =
    match p.Prog.outputs with
    | [] | [ _ ] -> []
    | many -> List.filter_map (fun o -> restrict_outputs p [ o ]) many
  in
  let substs = ref [] in
  for v = Array.length p.Prog.body - 1 downto 0 do
    let o = p.Prog.body.(v) in
    Array.iter
      (fun a ->
        match substitute p ~value:v ~by:a with
        | Some c -> substs := c :: !substs
        | None -> ())
      o.Prog.args
  done;
  outs @ List.rev !substs

let shrink ?(max_rounds = 200) ~keep p =
  let rec loop rounds p =
    if rounds = 0 then p
    else
      match
        List.find_opt
          (fun c -> Prog.num_ops c < Prog.num_ops p && keep c)
          (candidates p)
      with
      | Some c -> loop (rounds - 1) c
      | None -> p
  in
  loop max_rounds p
