module Prog = Hecate_ir.Prog
module B = Prog.Builder
module Prng = Hecate_support.Prng

type config = {
  max_ops : int;
  max_depth : int;
  max_inputs : int;
  max_outputs : int;
  slot_choices : int list;
  magnitude_cap : float;
}

let default_config =
  {
    max_ops = 24;
    max_depth = 3;
    max_inputs = 3;
    max_outputs = 2;
    slot_choices = [ 4; 8; 16; 32 ];
    magnitude_cap = 16.0;
  }

type case = { seed : int; prog : Prog.t; inputs : (string * float array) list }

(* Per-value bookkeeping: multiplicative depth, a bound on the plaintext
   magnitude, and ciphertext provenance (derived from at least one input).
   Outputs must be cipher-derived or codegen rightly rejects the program. *)
type meta = { depth : int; mag : float; cipher : bool }

let input_amplitude = 0.5

let input_vector ~seed ~slot_count name =
  let g = Prng.split (Prng.create ~seed) ("input:" ^ name) in
  Array.init slot_count (fun _ -> input_amplitude *. ((2. *. Prng.float01 g) -. 1.))

let inputs_for ~seed (prog : Prog.t) =
  List.map
    (fun v ->
      match (Prog.op prog v).Prog.kind with
      | Prog.Input { name } -> (name, input_vector ~seed ~slot_count:prog.Prog.slot_count name)
      | _ -> invalid_arg "Gen.inputs_for: input list does not point at input ops")
    prog.Prog.inputs

let pick g l = List.nth l (Prng.int_below g (List.length l))

let generate ?(config = default_config) ~seed () =
  let shape = Prng.split (Prng.create ~seed) "shape" in
  let consts = Prng.split (Prng.create ~seed) "consts" in
  let slot_count = pick shape config.slot_choices in
  let b = B.create ~name:(Printf.sprintf "fuzz_%d" seed) ~slot_count () in
  let metas = ref [] (* reversed: head is the newest value *) in
  let count = ref 0 in
  let note m =
    metas := m :: !metas;
    incr count
  in
  let meta v = List.nth !metas (!count - 1 - v) in
  let n_inputs = 1 + Prng.int_below shape config.max_inputs in
  for i = 0 to n_inputs - 1 do
    ignore (B.input b (Printf.sprintf "x%d" i));
    note { depth = 0; mag = input_amplitude; cipher = true }
  done;
  let fresh_const () =
    let v =
      if Prng.int_below consts 10 < 7 then B.const_scalar b ((2. *. Prng.float01 consts) -. 1.)
      else
        B.const_vector b
          (Array.init slot_count (fun _ -> (2. *. Prng.float01 consts) -. 1.))
    in
    note { depth = 0; mag = 1.; cipher = false };
    v
  in
  (* operand selection: ciphertext operands are biased toward recent values
     so programs grow deep rather than wide *)
  let cipher_values () =
    let vs = ref [] in
    List.iteri
      (fun i m -> if m.cipher then vs := (!count - 1 - i) :: !vs)
      !metas;
    !vs
  in
  let pick_cipher () =
    let vs = cipher_values () in
    (* ascending ids: newest last *)
    let n = List.length vs in
    if Prng.int_below shape 2 = 0 then List.nth vs (n - 1 - Prng.int_below shape (min n 4))
    else List.nth vs (Prng.int_below shape n)
  in
  let pick_any () = Prng.int_below shape !count in
  let n_ops = 1 + Prng.int_below shape config.max_ops in
  for _ = 1 to n_ops do
    if Prng.int_below shape 4 = 0 then ignore (fresh_const ());
    let x = pick_cipher () in
    let mx = meta x in
    let roll = Prng.int_below shape 10 in
    let emit_binary mk =
      let y = pick_any () in
      let my = meta y in
      match mk with
      | `Mul
        when max mx.depth my.depth + 1 <= config.max_depth
             && mx.mag *. my.mag <= config.magnitude_cap ->
          ignore (B.mul b x y);
          note
            {
              depth = max mx.depth my.depth + 1;
              mag = mx.mag *. my.mag;
              cipher = mx.cipher || my.cipher;
            }
      | `Add | `Sub when mx.mag +. my.mag <= config.magnitude_cap ->
          ignore ((if mk = `Add then B.add else B.sub) b x y);
          note
            {
              depth = max mx.depth my.depth;
              mag = mx.mag +. my.mag;
              cipher = mx.cipher || my.cipher;
            }
      | _ ->
          (* constraint violated: negate is always admissible *)
          ignore (B.negate b x);
          note { mx with cipher = mx.cipher }
    in
    if roll < 3 then emit_binary `Add
    else if roll < 4 then emit_binary `Sub
    else if roll < 7 then emit_binary `Mul
    else if roll < 9 then begin
      let amount =
        let r = 1 + Prng.int_below shape (slot_count - 1) in
        if Prng.int_below shape 2 = 0 then r else -r
      in
      ignore (B.rotate b x amount);
      note mx
    end
    else begin
      ignore (B.negate b x);
      note mx
    end
  done;
  (* outputs: the newest ciphertext value, plus up to max_outputs - 1 other
     distinct ciphertext values *)
  let ciphers = cipher_values () in
  let last = List.nth ciphers (List.length ciphers - 1) in
  let outs = ref [ last ] in
  let extra = Prng.int_below shape config.max_outputs in
  for _ = 1 to extra do
    let c = pick_cipher () in
    if not (List.mem c !outs) then outs := c :: !outs
  done;
  List.iter (B.output b) (List.rev !outs);
  let prog = B.finish b in
  { seed; prog; inputs = inputs_for ~seed prog }
