(** Fuzzing campaign driver: generate, check, shrink, persist, replay.

    A campaign runs [count] independent cases from a master seed; case [i]
    uses seed [seed + i], so any failing case is reproducible in isolation
    with [--seed (seed + i) --count 1]. Failures are shrunk with {!Shrink}
    (preserving the failing check class) and written as self-describing
    [.hec] reproducers whose header comment records the case seed and
    oracle configuration; {!replay} re-runs a reproducer file from that
    header alone, which is how the checked-in corpus under [test/corpus/]
    is replayed as regression tests. *)

type case_failure = {
  index : int;
  case_seed : int;
  failure : Oracle.failure;
  original : Hecate_ir.Prog.t;
  shrunk : Hecate_ir.Prog.t;
  repro_path : string option;  (** where the reproducer was written, if requested *)
}

type report = { count : int; failures : case_failure list; elapsed_seconds : float }

val run :
  ?gen:Gen.config ->
  ?oracle:Oracle.config ->
  ?transform:(Hecate.Driver.scheme -> Hecate_ir.Prog.t -> Hecate_ir.Prog.t) ->
  ?out_dir:string ->
  ?log:(string -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  report
(** [transform] is the fault-injection hook forwarded to {!Oracle.run}
    (also during shrinking). With [out_dir], each failure's shrunk
    reproducer is written there (the directory is created if missing). *)

val repro_text : case_seed:int -> oracle:Oracle.config -> Oracle.failure -> Hecate_ir.Prog.t -> string
(** The [.hec] reproducer: metadata header + printed program. *)

val write_repro :
  dir:string -> case_seed:int -> oracle:Oracle.config -> Oracle.failure -> Hecate_ir.Prog.t -> string
(** Write {!repro_text} to [dir/fuzz_seed<seed>_<check>.hec]; returns the path. *)

val recorded_class : string -> Oracle.check * Hecate_ir.Diagnostic.code option
(** The failure class a reproducer header records: its check and, when the
    failure carried one, its structured diagnostic code. Replay assertions
    compare against this class (see {!Oracle.same_class}) rather than the
    free-form detail string, so they survive message-wording changes.
    Headers written before codes were recorded yield [None].
    @raise Invalid_argument if the header is missing or lacks [check=]. *)

val replay : ?transform:(Hecate.Driver.scheme -> Hecate_ir.Prog.t -> Hecate_ir.Prog.t) ->
  string -> (unit, Oracle.failure) result
(** [replay path] parses a reproducer file, re-derives its inputs from the
    recorded seed and re-runs the oracle under the recorded configuration.
    [Ok ()] means the historical failure no longer reproduces (the
    regression stays fixed).
    @raise Sys_error if the file cannot be read.
    @raise Invalid_argument if the header is missing or malformed. *)
