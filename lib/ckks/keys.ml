module Poly = Hecate_rns.Poly
module Chain = Hecate_rns.Chain
module Prng = Hecate_support.Prng

type switch_key = { k0 : Poly.t array; k1 : Poly.t array }

type t = {
  params : Params.t;
  secret_coeffs : int array;
  secret_eval : Poly.t;
  public0 : Poly.t;
  public1 : Poly.t;
  relin : switch_key;
  galois : (int, switch_key) Hashtbl.t;
}

let uniform_poly g chain ~level_count ~with_special =
  (* Independently uniform residues per modulus form a uniform ring element
     by CRT. Sampled directly in Eval domain (the NTT of a uniform element
     is uniform). *)
  let p = Poly.zero chain ~level_count ~with_special Poly.Eval in
  let comps = Poly.component_count p in
  let n = Chain.degree chain in
  for i = 0 to comps - 1 do
    let q = Poly.modulus_at p i in
    let dst = p.Poly.data.(i) in
    for t = 0 to n - 1 do
      Hecate_support.Buf.set dst t (Prng.uniform_mod g q)
    done
  done;
  p

let error_poly g params chain ~level_count ~with_special =
  let n = Chain.degree chain in
  let coeffs =
    Array.init n (fun _ -> Prng.centered_binomial g ~eta:params.Params.error_sigma_eta)
  in
  Poly.to_eval_inplace (Poly.of_centered_coeffs chain ~level_count ~with_special coeffs)

let ternary_coeffs g n = Array.init n (fun _ -> Prng.ternary g)

(* b = -(a * s) + e + factor_scalars ⊙ payload *)
let make_switch_key g params ~s_full_sp ~payload =
  let chain = params.Params.chain in
  let l = Chain.length chain in
  let sp = Chain.special_prime chain in
  let k0 = Array.make l s_full_sp and k1 = Array.make l s_full_sp in
  for i = 0 to l - 1 do
    let a = uniform_poly g chain ~level_count:l ~with_special:true in
    let e = error_poly g params chain ~level_count:l ~with_special:true in
    let factors =
      Array.init (l + 1) (fun j ->
          let m = if j = l then sp else Chain.prime chain j in
          Hecate_support.Modarith.mul ~q:m (sp mod m)
            (Chain.gadget_weight chain ~digit:i ~modulus_index:j))
    in
    let gadget = Poly.mul_component_scalars payload factors in
    let b = Poly.add (Poly.add (Poly.neg (Poly.mul a s_full_sp)) e) gadget in
    k0.(i) <- b;
    k1.(i) <- a
  done;
  { k0; k1 }

let secret_at t ~level_count =
  Poly.to_eval_inplace
    (Poly.of_centered_coeffs t.params.Params.chain ~level_count ~with_special:false
       t.secret_coeffs)

let generate ?(seed = 0x5EC4E7) params ~galois_elements =
  let chain = params.Params.chain in
  let l = Chain.length chain in
  let n = Chain.degree chain in
  let g = Prng.create ~seed in
  let secret_coeffs = ternary_coeffs g n in
  let s_full =
    Poly.to_eval_inplace
      (Poly.of_centered_coeffs chain ~level_count:l ~with_special:false secret_coeffs)
  in
  let s_full_sp =
    Poly.to_eval_inplace
      (Poly.of_centered_coeffs chain ~level_count:l ~with_special:true secret_coeffs)
  in
  (* public key *)
  let a = uniform_poly g chain ~level_count:l ~with_special:false in
  let e = error_poly g params chain ~level_count:l ~with_special:false in
  let public0 = Poly.add (Poly.neg (Poly.mul a s_full)) e in
  (* relinearization key encrypts P * w_i * s^2 *)
  let s_squared = Poly.mul s_full_sp s_full_sp in
  let relin = make_switch_key g params ~s_full_sp ~payload:s_squared in
  (* rotation keys encrypt P * w_i * sigma_g(s) *)
  let galois = Hashtbl.create 8 in
  List.iter
    (fun elt ->
      if not (Hashtbl.mem galois elt) then begin
        let s_rot =
          Poly.to_eval_inplace
            (Poly.automorphism
               (Poly.of_centered_coeffs chain ~level_count:l ~with_special:true secret_coeffs)
               ~galois:elt)
        in
        Hashtbl.replace galois elt (make_switch_key g params ~s_full_sp ~payload:s_rot)
      end)
    galois_elements;
  { params; secret_coeffs; secret_eval = s_full; public0; public1 = a; relin; galois }

let galois_key t elt = Hashtbl.find t.galois elt
