module Poly = Hecate_rns.Poly
module Chain = Hecate_rns.Chain
module Prng = Hecate_support.Prng
module Kernels = Hecate_support.Kernels

type ciphertext = { c0 : Poly.t; c1 : Poly.t; scale : float; level : int }
type plaintext = { poly : Poly.t; pt_scale : float; pt_level : int }
type t = { params : Params.t; encoder : Encoder.t; keys : Keys.t; enc_rng : Prng.t }

exception Scale_mismatch of string
exception Level_mismatch of string

let params t = t.params
let encoder t = t.encoder
let keys t = t.keys
let max_level t = t.params.Params.levels
let level ct = ct.level
let scale ct = ct.scale

let create ?(seed = 0xCAFE) params ~rotations =
  let encoder = Encoder.create ~n:params.Params.n in
  let galois_elements =
    List.filter_map
      (fun r ->
        let r = ((r mod (params.Params.n / 2)) + (params.Params.n / 2)) mod (params.Params.n / 2) in
        if r = 0 then None else Some (Encoder.galois_element encoder ~rotation:r))
      rotations
  in
  let keys = Keys.generate ~seed params ~galois_elements in
  { params; encoder; keys; enc_rng = Prng.create ~seed:(seed lxor 0x7E57) }

let level_count t lvl = Chain.length t.params.Params.chain - lvl

let check_level name t lvl =
  if lvl < 0 || lvl > max_level t then raise (Level_mismatch ("Eval." ^ name ^ ": bad level"))

let encode t ~level:lvl ~scale v =
  check_level "encode" t lvl;
  let p =
    Encoder.encode t.encoder t.params.Params.chain ~level_count:(level_count t lvl) ~scale v
  in
  { poly = Poly.to_eval p; pt_scale = scale; pt_level = lvl }

let encode_constant t ~level:lvl ~scale c =
  check_level "encode_constant" t lvl;
  let p =
    Encoder.encode_constant t.encoder t.params.Params.chain ~level_count:(level_count t lvl)
      ~scale c
  in
  { poly = Poly.to_eval p; pt_scale = scale; pt_level = lvl }

let ternary_poly g chain ~level_count =
  let coeffs = Array.init (Chain.degree chain) (fun _ -> Prng.ternary g) in
  Poly.to_eval_inplace (Poly.of_centered_coeffs chain ~level_count ~with_special:false coeffs)

let error_poly_eval t g ~level_count =
  let chain = t.params.Params.chain in
  let coeffs =
    Array.init (Chain.degree chain) (fun _ ->
        Prng.centered_binomial g ~eta:t.params.Params.error_sigma_eta)
  in
  Poly.to_eval_inplace (Poly.of_centered_coeffs chain ~level_count ~with_special:false coeffs)

let encrypt t pt =
  if pt.pt_level <> 0 then
    raise (Level_mismatch "Eval.encrypt: fresh ciphertexts are encrypted at level 0");
  let lc = level_count t 0 in
  let u = ternary_poly t.enc_rng t.params.Params.chain ~level_count:lc in
  let e0 = error_poly_eval t t.enc_rng ~level_count:lc in
  let e1 = error_poly_eval t t.enc_rng ~level_count:lc in
  let c0 = Poly.add (Poly.add (Poly.mul t.keys.Keys.public0 u) e0) pt.poly in
  let c1 = Poly.add (Poly.mul t.keys.Keys.public1 u) e1 in
  { c0; c1; scale = pt.pt_scale; level = 0 }

let encrypt_vector t ~scale v = encrypt t (encode t ~level:0 ~scale v)

let decrypt t ct =
  let lc = level_count t ct.level in
  let s = Keys.secret_at t.keys ~level_count:lc in
  let m = Poly.add ct.c0 (Poly.mul ct.c1 s) in
  let coeffs = Poly.crt_reconstruct_centered (Poly.to_coeff_inplace m) in
  Encoder.decode t.encoder ~scale:ct.scale coeffs

(* scales drift slightly because rescaling primes are not exactly powers of
   two; treat scales within 0.1% as equal, like EVA does. *)
let scales_compatible s1 s2 = Float.abs (s1 -. s2) /. Float.max s1 s2 < 1e-3

let check_binop name a b =
  if a.level <> b.level then
    raise (Level_mismatch (Printf.sprintf "Eval.%s: levels %d vs %d" name a.level b.level))

let add _t a b =
  check_binop "add" a b;
  if not (scales_compatible a.scale b.scale) then
    raise (Scale_mismatch (Printf.sprintf "Eval.add: scales %.3e vs %.3e" a.scale b.scale));
  { a with c0 = Poly.add a.c0 b.c0; c1 = Poly.add a.c1 b.c1 }

let sub _t a b =
  check_binop "sub" a b;
  if not (scales_compatible a.scale b.scale) then
    raise (Scale_mismatch (Printf.sprintf "Eval.sub: scales %.3e vs %.3e" a.scale b.scale));
  { a with c0 = Poly.sub a.c0 b.c0; c1 = Poly.sub a.c1 b.c1 }

let negate _t a = { a with c0 = Poly.neg a.c0; c1 = Poly.neg a.c1 }

let check_plain name ct pt =
  if ct.level <> pt.pt_level then
    raise (Level_mismatch (Printf.sprintf "Eval.%s: cipher level %d vs plain level %d" name ct.level pt.pt_level))

let add_plain _t ct pt =
  check_plain "add_plain" ct pt;
  if not (scales_compatible ct.scale pt.pt_scale) then
    raise (Scale_mismatch (Printf.sprintf "Eval.add_plain: scales %.3e vs %.3e" ct.scale pt.pt_scale));
  { ct with c0 = Poly.add ct.c0 pt.poly }

let sub_plain _t ct pt =
  check_plain "sub_plain" ct pt;
  if not (scales_compatible ct.scale pt.pt_scale) then
    raise (Scale_mismatch (Printf.sprintf "Eval.sub_plain: scales %.3e vs %.3e" ct.scale pt.pt_scale));
  { ct with c0 = Poly.sub ct.c0 pt.poly }

(* Key switching: given d in Coeff domain over lc chain primes and a key for
   secret payload s', produce (p0, p1) over the same basis with
   p0 + p1*s ≈ d*s'. *)

(* Reference implementation: allocates fresh polynomials for every digit
   (lift, NTT, level-restricted key copies, products, accumulator sums).
   Kept both as executable documentation and as the pre-optimization
   baseline the bench and equivalence tests compare against. *)
let keyswitch_reference t ~lc d (key : Keys.switch_key) =
  let chain = t.params.Params.chain in
  let acc0 = ref (Poly.zero chain ~level_count:lc ~with_special:true Poly.Eval) in
  let acc1 = ref (Poly.zero chain ~level_count:lc ~with_special:true Poly.Eval) in
  for i = 0 to lc - 1 do
    let dig = Poly.to_eval (Poly.lift_digit d ~digit:i ~with_special:true) in
    let k0 = Poly.restrict_levels key.Keys.k0.(i) ~level_count:lc in
    let k1 = Poly.restrict_levels key.Keys.k1.(i) ~level_count:lc in
    acc0 := Poly.add !acc0 (Poly.mul dig k0);
    acc1 := Poly.add !acc1 (Poly.mul dig k1)
  done;
  let p0 = Poly.mod_down_special (Poly.to_coeff !acc0) in
  let p1 = Poly.mod_down_special (Poly.to_coeff !acc1) in
  (Poly.to_eval p0, Poly.to_eval p1)

(* Fast path: one scratch digit buffer NTT'd in place and fused
   multiply-accumulate directly against the full-level key material
   (mul_add_into reads the key's matching components), so the per-digit
   loop allocates nothing. Returns the switched pair in Coeff domain —
   callers that consume it in Eval transform it themselves, and the fused
   mul+rescale path consumes it in Coeff directly, skipping those NTTs. *)
let keyswitch_fast_coeff t ~lc d (key : Keys.switch_key) =
  let chain = t.params.Params.chain in
  let acc0 = Poly.zero chain ~level_count:lc ~with_special:true Poly.Eval in
  let acc1 = Poly.zero chain ~level_count:lc ~with_special:true Poly.Eval in
  let dig = Poly.zero chain ~level_count:lc ~with_special:true Poly.Coeff in
  for i = 0 to lc - 1 do
    Poly.lift_digit_into ~dst:dig d ~digit:i;
    let dig_e = Poly.to_eval_inplace dig in
    Poly.mul_add_into ~acc:acc0 dig_e key.Keys.k0.(i);
    Poly.mul_add_into ~acc:acc1 dig_e key.Keys.k1.(i)
  done;
  let p0 = Poly.mod_down_special (Poly.to_coeff_inplace acc0) in
  let p1 = Poly.mod_down_special (Poly.to_coeff_inplace acc1) in
  (p0, p1)

let keyswitch t ~lc d (key : Keys.switch_key) =
  if Kernels.use_naive () then keyswitch_reference t ~lc d key
  else begin
    let p0, p1 = keyswitch_fast_coeff t ~lc d key in
    (Poly.to_eval_inplace p0, Poly.to_eval_inplace p1)
  end

let mul t a b =
  check_binop "mul" a b;
  let lc = level_count t a.level in
  if Kernels.use_naive () then begin
    let d0 = Poly.mul a.c0 b.c0 in
    let d1 = Poly.add (Poly.mul a.c0 b.c1) (Poly.mul a.c1 b.c0) in
    let d2 = Poly.mul a.c1 b.c1 in
    let p0, p1 = keyswitch t ~lc (Poly.to_coeff d2) t.keys.Keys.relin in
    { c0 = Poly.add d0 p0; c1 = Poly.add d1 p1; scale = a.scale *. b.scale; level = a.level }
  end
  else begin
    let d0 = Poly.mul a.c0 b.c0 in
    let d1 = Poly.mul a.c0 b.c1 in
    Poly.mul_add_into ~acc:d1 a.c1 b.c0;
    let d2 = Poly.mul a.c1 b.c1 in
    let p0, p1 = keyswitch t ~lc (Poly.to_coeff_inplace d2) t.keys.Keys.relin in
    Poly.add_into ~dst:d0 d0 p0;
    Poly.add_into ~dst:d1 d1 p1;
    { c0 = d0; c1 = d1; scale = a.scale *. b.scale; level = a.level }
  end

let mul_plain _t ct pt =
  check_plain "mul_plain" ct pt;
  {
    ct with
    c0 = Poly.mul ct.c0 pt.poly;
    c1 = Poly.mul ct.c1 pt.poly;
    scale = ct.scale *. pt.pt_scale;
  }

let rescale t ct =
  if ct.level >= max_level t then
    raise (Level_mismatch "Eval.rescale: no rescaling prime remains");
  let lc = level_count t ct.level in
  let dropped_prime = Chain.prime t.params.Params.chain (lc - 1) in
  (* to_coeff copies (the ciphertext stays owned by the caller); rescale_last
     allocates its result, so the final transform can run in place. *)
  let c0 = Poly.to_eval_inplace (Poly.rescale_last (Poly.to_coeff ct.c0)) in
  let c1 = Poly.to_eval_inplace (Poly.rescale_last (Poly.to_coeff ct.c1)) in
  { c0; c1; scale = ct.scale /. float_of_int dropped_prime; level = ct.level + 1 }

(* Fused multiply + rescale. The baseline sequence forward-transforms the
   key-switched pair (2 * lc NTTs) only for [rescale] to immediately
   inverse-transform the sums again (2 * lc more). Fusing the two ops keeps
   the key-switch output in Coeff, brings d0/d1 down instead, accumulates
   and rescales in Coeff, and pays a single forward transform of the
   (lc - 1)-component results — one full NTT round-trip saved per
   ciphertext multiplication. The inverse NTT is linear and exact, so
   accumulating before or after the transform yields the same canonical
   residues: bit-identical to [rescale t (mul t a b)], which remains the
   reference path (and the naive-kernel branch). *)
let mul_rescale t a b =
  check_binop "mul_rescale" a b;
  if a.level >= max_level t then
    raise (Level_mismatch "Eval.mul_rescale: no rescaling prime remains");
  if Kernels.use_naive () then rescale t (mul t a b)
  else begin
    let lc = level_count t a.level in
    let d0 = Poly.mul a.c0 b.c0 in
    let d1 = Poly.mul a.c0 b.c1 in
    Poly.mul_add_into ~acc:d1 a.c1 b.c0;
    let d2 = Poly.mul a.c1 b.c1 in
    let p0, p1 = keyswitch_fast_coeff t ~lc (Poly.to_coeff_inplace d2) t.keys.Keys.relin in
    let d0c = Poly.to_coeff_inplace d0 in
    Poly.add_into ~dst:d0c d0c p0;
    let d1c = Poly.to_coeff_inplace d1 in
    Poly.add_into ~dst:d1c d1c p1;
    let dropped_prime = Chain.prime t.params.Params.chain (lc - 1) in
    let c0 = Poly.to_eval_inplace (Poly.rescale_last d0c) in
    let c1 = Poly.to_eval_inplace (Poly.rescale_last d1c) in
    {
      c0;
      c1;
      scale = a.scale *. b.scale /. float_of_int dropped_prime;
      level = a.level + 1;
    }
  end

let mod_switch t ct =
  if ct.level >= max_level t then
    raise (Level_mismatch "Eval.mod_switch: no chain prime remains");
  let c0 = Poly.drop_last ct.c0 in
  let c1 = Poly.drop_last ct.c1 in
  { ct with c0; c1; level = ct.level + 1 }

let mod_switch_plain t pt =
  if pt.pt_level >= max_level t then
    raise (Level_mismatch "Eval.mod_switch_plain: no chain prime remains");
  { pt with poly = Poly.drop_last pt.poly; pt_level = pt.pt_level + 1 }

let upscale t ct ~factor =
  if factor < 1. then invalid_arg "Eval.upscale: factor must be >= 1";
  (* Round the factor so the recorded scale matches the integer constant the
     encoder actually embeds. *)
  let factor = Float.round factor in
  let pt = encode_constant t ~level:ct.level ~scale:factor 1. in
  mul_plain t ct pt

let set_scale _t ct new_scale =
  if Float.abs (new_scale -. ct.scale) /. ct.scale > 0.01 then
    raise (Scale_mismatch "Eval.set_scale: adjustment larger than 1%");
  { ct with scale = new_scale }

let rotate t ct r =
  let half = t.params.Params.n / 2 in
  let r = ((r mod half) + half) mod half in
  if r = 0 then ct
  else begin
    let g = Encoder.galois_element t.encoder ~rotation:r in
    let key = Keys.galois_key t.keys g in
    let lc = level_count t ct.level in
    let c0r = Poly.automorphism (Poly.to_coeff ct.c0) ~galois:g in
    let c1r = Poly.automorphism (Poly.to_coeff ct.c1) ~galois:g in
    let p0, p1 = keyswitch t ~lc c1r key in
    (* automorphism allocated c0r, so transform it in place and accumulate *)
    let c0e = Poly.to_eval_inplace c0r in
    Poly.add_into ~dst:c0e c0e p0;
    { ct with c0 = c0e; c1 = p1 }
  end

(* Hoisted rotation fan (Halevi–Shoup hoisting): every rotation of the same
   ciphertext key-switches an automorphism of the same [c1], and the
   expensive part of key switching — lifting each RNS digit and
   forward-transforming it over the extended basis, lc * (lc+1) NTTs — does
   not depend on the rotation amount. Digit extraction commutes with the
   automorphism (the centered lift is symmetric, so negating a residue
   negates its lift), and on Eval-domain vectors the automorphism is the
   pure slot permutation {!Poly.automorphism_eval}. So: decompose once,
   then per rotation permute the cached Eval-domain digits (O(n) copies)
   instead of re-lifting and re-transforming. The digit loop runs in the
   same order with the same accumulation as {!keyswitch}, so every output
   residue is bit-identical to the per-rotation path — [rotate] stays the
   reference oracle, and the naive-kernel branch simply calls it. *)
let rotate_many t ct rs =
  let half = t.params.Params.n / 2 in
  let norm r = ((r mod half) + half) mod half in
  if Kernels.use_naive () || List.length (List.filter (fun r -> norm r <> 0) rs) < 2 then
    List.map (rotate t ct) rs
  else begin
    let chain = t.params.Params.chain in
    let lc = level_count t ct.level in
    (* shared decomposition of c1: lift + NTT each digit once *)
    let d = Poly.to_coeff ct.c1 in
    let dig = Poly.zero chain ~level_count:lc ~with_special:true Poly.Coeff in
    let digits =
      Array.init lc (fun i ->
          Poly.lift_digit_into ~dst:dig d ~digit:i;
          let e = Poly.to_eval_inplace (Poly.copy dig) in
          e)
    in
    let rot_dig = Poly.zero chain ~level_count:lc ~with_special:true Poly.Eval in
    List.map
      (fun r ->
        let r = norm r in
        if r = 0 then ct
        else begin
          let g = Encoder.galois_element t.encoder ~rotation:r in
          let key = Keys.galois_key t.keys g in
          let acc0 = Poly.zero chain ~level_count:lc ~with_special:true Poly.Eval in
          let acc1 = Poly.zero chain ~level_count:lc ~with_special:true Poly.Eval in
          for i = 0 to lc - 1 do
            Poly.automorphism_eval_into ~dst:rot_dig digits.(i) ~galois:g;
            Poly.mul_add_into ~acc:acc0 rot_dig key.Keys.k0.(i);
            Poly.mul_add_into ~acc:acc1 rot_dig key.Keys.k1.(i)
          done;
          let p0 = Poly.to_eval_inplace (Poly.mod_down_special (Poly.to_coeff_inplace acc0)) in
          let p1 = Poly.to_eval_inplace (Poly.mod_down_special (Poly.to_coeff_inplace acc1)) in
          let c0r = Poly.automorphism_eval ct.c0 ~galois:g in
          Poly.add_into ~dst:c0r c0r p0;
          { ct with c0 = c0r; c1 = p1 }
        end)
      rs
  end
