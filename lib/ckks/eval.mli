(** RNS-CKKS evaluator: encryption, decryption and homomorphic operations.

    A ciphertext carries its scale (as an exact double) and its rescaling
    level (number of chain primes consumed); the polynomial components live
    over the first [L - level] chain primes in NTT form. Operations enforce
    the RNS-CKKS constraints: operands of binary operations must be at the
    same level, and addition operands must agree on scale (within the small
    drift that non-power-of-two primes introduce). *)

type ciphertext = private {
  c0 : Hecate_rns.Poly.t;
  c1 : Hecate_rns.Poly.t;
  scale : float;
  level : int;
}

type plaintext = private { poly : Hecate_rns.Poly.t; pt_scale : float; pt_level : int }

type t
(** Evaluator context: parameters, encoder, keys, encryption randomness. *)

exception Scale_mismatch of string
exception Level_mismatch of string

val create : ?seed:int -> Params.t -> rotations:int list -> t
(** [create params ~rotations] generates keys, including one rotation key per
    distinct slot-rotation amount in [rotations]. *)

val params : t -> Params.t
val encoder : t -> Encoder.t
val keys : t -> Keys.t
val max_level : t -> int

val encode : t -> level:int -> scale:float -> float array -> plaintext
val encode_constant : t -> level:int -> scale:float -> float -> plaintext

val encrypt : t -> plaintext -> ciphertext
val encrypt_vector : t -> scale:float -> float array -> ciphertext
(** Encrypt at level 0. *)

val decrypt : t -> ciphertext -> float array
(** Decrypt and decode to the [N/2] slot values. *)

val level : ciphertext -> int
val scale : ciphertext -> float

val add : t -> ciphertext -> ciphertext -> ciphertext
val sub : t -> ciphertext -> ciphertext -> ciphertext
val negate : t -> ciphertext -> ciphertext
val add_plain : t -> ciphertext -> plaintext -> ciphertext
val sub_plain : t -> ciphertext -> plaintext -> ciphertext

val mul : t -> ciphertext -> ciphertext -> ciphertext
(** Ciphertext product with relinearization; the result scale is the product
    of the operand scales. *)

val mul_plain : t -> ciphertext -> plaintext -> ciphertext

val rescale : t -> ciphertext -> ciphertext
(** Drop the last chain prime with exact RNS division: the scale shrinks by
    that prime (≈ [2^sf_bits]) and the level grows by one.
    @raise Level_mismatch when no rescaling prime remains. *)

val mul_rescale : t -> ciphertext -> ciphertext -> ciphertext
(** [mul_rescale t a b] is bit-identical to [rescale t (mul t a b)] but
    fuses the two: the key-switched pair is consumed in [Coeff] domain and
    the sums are rescaled before the single forward transform, saving one
    full NTT round-trip per ciphertext multiplication. Under naive kernels
    it runs the unfused reference sequence.
    @raise Level_mismatch when no rescaling prime remains. *)

val mod_switch : t -> ciphertext -> ciphertext
(** Drop the last chain prime without dividing: level + 1, scale unchanged. *)

val mod_switch_plain : t -> plaintext -> plaintext
(** [modswitch] for plaintexts: drop the last prime of the encoded
    polynomial (scale unchanged, level + 1). *)

val upscale : t -> ciphertext -> factor:float -> ciphertext
(** Multiply by the exactly-encoded constant 1 at scale [factor]: the scale
    is multiplied by [factor], the level is unchanged. *)

val set_scale : t -> ciphertext -> float -> ciphertext
(** Relabel the ciphertext's scale (SEAL's scale-adjustment idiom). The new
    scale must be within 1% of the current one; the message acquires a
    relative error of the same magnitude. Used to absorb the drift of
    near-power-of-two rescaling primes before additions. *)

val rotate : t -> ciphertext -> int -> ciphertext
(** [rotate t ct r] rotates slots left by [r] (negative [r]: right). Requires
    the matching rotation key.
    @raise Not_found if the key set lacks that rotation. *)

val rotate_many : t -> ciphertext -> int list -> ciphertext list
(** [rotate_many t ct rs] rotates [ct] by every amount in [rs]
    (result [i] corresponds to [rs]'s element [i]) with Halevi–Shoup
    hoisting: the RNS digit decomposition and its forward transforms —
    the dominant cost of rotation key switching — are computed once for
    [ct] and shared by all rotations, each of which only permutes the
    cached Eval-domain digits. Every result is bit-identical to the
    corresponding [rotate t ct r]; with naive kernels (or fewer than two
    non-trivial amounts) it simply maps {!rotate}. *)

val keyswitch :
  t ->
  lc:int ->
  Hecate_rns.Poly.t ->
  Keys.switch_key ->
  Hecate_rns.Poly.t * Hecate_rns.Poly.t
(** [keyswitch t ~lc d key]: hybrid key switching of the [Coeff]-domain
    polynomial [d] (over the first [lc] chain primes) against [key],
    returning [(p0, p1)] in [Eval] domain with [p0 + p1*s ≈ d*s'] where
    [s'] is the key's secret payload. Exposed for the kernel
    microbenchmarks; [mul] and [rotate] call it internally. *)
