module M = Hecate_support.Modarith
module Ntt = Hecate_support.Ntt
module Bigint = Hecate_support.Bigint
module Kernels = Hecate_support.Kernels
module Pool = Hecate_support.Pool
module Buf = Hecate_support.Buf

type domain = Coeff | Eval

(* Residues live in one flat unboxed [Buf.t] per polynomial ([component i]
   occupies [i*n .. (i+1)*n-1]); [data] holds O(1) per-component views into
   that allocation. The payload is outside the OCaml heap, so a polynomial
   costs the GC two small blocks regardless of ring degree — at N = 2^15 a
   boxed [int array array] representation made every major collection walk
   megabytes of residues per live ciphertext. *)
type t = {
  chain : Chain.t;
  level_count : int;
  with_special : bool;
  domain : domain;
  data : Buf.t array;
}

let component_count p = p.level_count + if p.with_special then 1 else 0

let modulus_at p i =
  if p.with_special && i = p.level_count then Chain.special_prime p.chain else Chain.prime p.chain i

let ctx_at p i =
  if p.with_special && i = p.level_count then Chain.special_ctx p.chain else Chain.ctx p.chain i

let table_at p i =
  if p.with_special && i = p.level_count then Chain.special_table p.chain else Chain.table p.chain i

(* Independent per-RNS-component loops fan out over the shared kernel pool
   when it is enabled and the ring is large enough that a component's work
   dwarfs the dispatch cost; below the threshold (or in reference-kernel
   mode) they stay serial. Either way the output is bit-identical. *)
let parallel_min_degree = 4096

let kernel_par comps degree f =
  if
    comps > 1 && degree >= parallel_min_degree
    && (not (Kernels.use_naive ()))
    && Pool.Kernel.jobs () > 1
  then Pool.Kernel.parallel_for comps f
  else
    for i = 0 to comps - 1 do
      f i
    done

let views comps n flat = Array.init comps (fun i -> Buf.sub flat (i * n) n)

let zero chain ~level_count ~with_special domain =
  if level_count < 1 || level_count > Chain.length chain then
    invalid_arg "Poly.zero: bad level count";
  let comps = level_count + if with_special then 1 else 0 in
  let n = Chain.degree chain in
  { chain; level_count; with_special; domain; data = views comps n (Buf.create (comps * n)) }

(* Like [copy] but with uninitialized (zero) payload: a destination shell. *)
let alloc_like p =
  let comps = component_count p in
  let n = Chain.degree p.chain in
  { p with data = views comps n (Buf.create (comps * n)) }

let copy p =
  let out = alloc_like p in
  Array.iteri (fun i src -> Buf.blit ~src ~dst:out.data.(i)) p.data;
  out

let check_compatible name a b =
  if
    a.chain != b.chain || a.level_count <> b.level_count || a.with_special <> b.with_special
    || a.domain <> b.domain
  then invalid_arg ("Poly." ^ name ^ ": incompatible operands")

let of_centered_coeffs chain ~level_count ~with_special coeffs =
  let n = Chain.degree chain in
  if Array.length coeffs <> n then invalid_arg "Poly.of_centered_coeffs: wrong length";
  let p = zero chain ~level_count ~with_special Coeff in
  for i = 0 to component_count p - 1 do
    let q = modulus_at p i in
    let dst = p.data.(i) in
    for t = 0 to n - 1 do
      Buf.set dst t (M.reduce ~q coeffs.(t))
    done
  done;
  p

(* ------------------------------------------------------------------ *)
(* Element-wise operations (pure and destination-buffer forms)         *)
(* ------------------------------------------------------------------ *)

let add_loop q da db dst =
  for t = 0 to Buf.length da - 1 do
    let s = Buf.unsafe_get da t + Buf.unsafe_get db t in
    Buf.unsafe_set dst t (if s >= q then s - q else s)
  done

let sub_loop q da db dst =
  for t = 0 to Buf.length da - 1 do
    let d = Buf.unsafe_get da t - Buf.unsafe_get db t in
    Buf.unsafe_set dst t (if d < 0 then d + q else d)
  done

let binop_into name loop ~dst a b =
  check_compatible name a b;
  check_compatible name dst a;
  kernel_par (component_count a) (Chain.degree a.chain) (fun i ->
      loop (modulus_at a i) a.data.(i) b.data.(i) dst.data.(i))

let add_into ~dst a b = binop_into "add_into" add_loop ~dst a b
let sub_into ~dst a b = binop_into "sub_into" sub_loop ~dst a b

let add a b =
  check_compatible "add" a b;
  let out = alloc_like a in
  kernel_par (component_count a) (Chain.degree a.chain) (fun i ->
      add_loop (modulus_at a i) a.data.(i) b.data.(i) out.data.(i));
  out

let sub a b =
  check_compatible "sub" a b;
  let out = alloc_like a in
  kernel_par (component_count a) (Chain.degree a.chain) (fun i ->
      sub_loop (modulus_at a i) a.data.(i) b.data.(i) out.data.(i));
  out

let neg a =
  let out = alloc_like a in
  kernel_par (component_count a) (Chain.degree a.chain) (fun i ->
      let q = modulus_at a i in
      let src = a.data.(i) and dst = out.data.(i) in
      for t = 0 to Buf.length src - 1 do
        let x = Buf.unsafe_get src t in
        Buf.unsafe_set dst t (if x = 0 then 0 else q - x)
      done);
  out

let mul_loop_naive q da db dst =
  for t = 0 to Buf.length da - 1 do
    Buf.set dst t (M.mul ~q (Buf.get da t) (Buf.get db t))
  done

(* Fast loops use unchecked accesses: every residue view of a polynomial
   has length [Chain.degree] by construction, and [check_compatible] has
   already matched the operands' chains. *)
let mul_loop ctx da db dst =
  for t = 0 to Buf.length da - 1 do
    Buf.unsafe_set dst t (M.mulmod ctx (Buf.unsafe_get da t) (Buf.unsafe_get db t))
  done

let check_eval name a b =
  if a.domain <> Eval || b.domain <> Eval then
    invalid_arg ("Poly." ^ name ^ ": operands must be in Eval domain")

let mul a b =
  check_eval "mul" a b;
  check_compatible "mul" a b;
  let out = alloc_like a in
  if Kernels.use_naive () then
    for i = 0 to component_count a - 1 do
      mul_loop_naive (modulus_at a i) a.data.(i) b.data.(i) out.data.(i)
    done
  else
    kernel_par (component_count a) (Chain.degree a.chain) (fun i ->
        mul_loop (ctx_at a i) a.data.(i) b.data.(i) out.data.(i));
  out

let mul_into ~dst a b =
  check_eval "mul_into" a b;
  check_compatible "mul_into" a b;
  check_compatible "mul_into" dst a;
  kernel_par (component_count a) (Chain.degree a.chain) (fun i ->
      mul_loop (ctx_at a i) a.data.(i) b.data.(i) dst.data.(i))

(* [b] may carry a deeper chain basis than [acc]/[a] (full-level key
   material): component [i < level_count] of [b] is used directly and [b]'s
   special component aligns with [a]'s. This is what lets key switching use
   the stored keys without materializing [restrict_levels] copies. *)
let mul_add_into ~acc a b =
  check_compatible "mul_add_into" acc a;
  if a.domain <> Eval || b.domain <> Eval || acc.domain <> Eval then
    invalid_arg "Poly.mul_add_into: operands must be in Eval domain";
  if b.chain != a.chain || b.with_special <> a.with_special || b.level_count < a.level_count then
    invalid_arg "Poly.mul_add_into: incompatible multiplier";
  kernel_par (component_count a) (Chain.degree a.chain) (fun i ->
      let ctx = ctx_at a i in
      let q = M.modulus ctx in
      let bi =
        if a.with_special && i = a.level_count then b.data.(b.level_count) else b.data.(i)
      in
      let da = a.data.(i) and dacc = acc.data.(i) in
      for t = 0 to Buf.length da - 1 do
        let s =
          Buf.unsafe_get dacc t
          + M.mulmod ctx (Buf.unsafe_get da t) (Buf.unsafe_get bi t)
          - q
        in
        Buf.unsafe_set dacc t (s + (s asr 62 land q))
      done)

let scalar_mul_loop p i k out =
  if Kernels.use_naive () then begin
    let q = modulus_at p i in
    let dst = out.data.(i) and src = p.data.(i) in
    for t = 0 to Buf.length src - 1 do
      Buf.set dst t (M.mul ~q (Buf.get src t) k)
    done
  end
  else begin
    let ctx = ctx_at p i in
    let dst = out.data.(i) and src = p.data.(i) in
    for t = 0 to Buf.length src - 1 do
      Buf.unsafe_set dst t (M.mulmod ctx (Buf.unsafe_get src t) k)
    done
  end

let mul_scalar a c =
  if c < 0 then invalid_arg "Poly.mul_scalar: negative scalar";
  let out = alloc_like a in
  kernel_par (component_count a) (Chain.degree a.chain) (fun i ->
      scalar_mul_loop a i (c mod modulus_at a i) out);
  out

let mul_component_scalars a ks =
  if Array.length ks <> component_count a then
    invalid_arg "Poly.mul_component_scalars: wrong scalar count";
  Array.iteri
    (fun i k ->
      if k < 0 || k >= modulus_at a i then
        invalid_arg "Poly.mul_component_scalars: scalar not reduced")
    ks;
  let out = alloc_like a in
  kernel_par (component_count a) (Chain.degree a.chain) (fun i -> scalar_mul_loop a i ks.(i) out);
  out

(* ------------------------------------------------------------------ *)
(* Domain conversions                                                  *)
(* ------------------------------------------------------------------ *)

let to_eval_inplace p =
  match p.domain with
  | Eval -> p
  | Coeff ->
      kernel_par (component_count p) (Chain.degree p.chain) (fun i ->
          Ntt.forward (table_at p i) p.data.(i));
      { p with domain = Eval }

let to_coeff_inplace p =
  match p.domain with
  | Coeff -> p
  | Eval ->
      kernel_par (component_count p) (Chain.degree p.chain) (fun i ->
          Ntt.inverse (table_at p i) p.data.(i));
      { p with domain = Coeff }

let to_eval p = match p.domain with Eval -> p | Coeff -> to_eval_inplace (copy p)
let to_coeff p = match p.domain with Coeff -> p | Eval -> to_coeff_inplace (copy p)

(* ------------------------------------------------------------------ *)
(* Structure-changing operations                                       *)
(* ------------------------------------------------------------------ *)

let automorphism p ~galois =
  if p.domain <> Coeff then invalid_arg "Poly.automorphism: operand must be in Coeff domain";
  if galois land 1 = 0 then invalid_arg "Poly.automorphism: galois element must be odd";
  let n = Chain.degree p.chain in
  let mask = (2 * n) - 1 in
  let out = zero p.chain ~level_count:p.level_count ~with_special:p.with_special Coeff in
  kernel_par (component_count p) n (fun i ->
      let q = modulus_at p i in
      let src = p.data.(i) and dst = out.data.(i) in
      for j = 0 to n - 1 do
        (* n is a power of two, so X^j -> X^(j*galois mod 2n) is a mask *)
        let k = (j * galois) land mask in
        if k < n then Buf.set dst k (M.add ~q (Buf.get dst k) (Buf.get src j))
        else Buf.set dst (k - n) (M.sub ~q (Buf.get dst (k - n)) (Buf.get src j))
      done);
  out

(* Eval-domain automorphism: on forward-transformed vectors [X -> X^g] is a
   pure slot permutation (values move between evaluation points, no sign
   fixups — those live in the Coeff-domain picture). Bit-identical to
   [to_eval (automorphism (to_coeff p) ~galois)] because the NTT is an exact
   ring isomorphism; hoisted rotation key switching depends on that to reuse
   one digit decomposition across every rotation of a ciphertext. *)
let automorphism_eval_into ~dst p ~galois =
  if p.domain <> Eval then invalid_arg "Poly.automorphism_eval: operand must be in Eval domain";
  if galois land 1 = 0 then invalid_arg "Poly.automorphism_eval: galois element must be odd";
  check_compatible "automorphism_eval" dst p;
  if dst == p then invalid_arg "Poly.automorphism_eval_into: dst must not alias the source";
  let n = Chain.degree p.chain in
  (* resolve (and cache) the permutation before fanning out over components *)
  let perm = Ntt.galois_perm (Chain.table p.chain 0) ~galois in
  kernel_par (component_count p) n (fun i ->
      let src = p.data.(i) and d = dst.data.(i) in
      for j = 0 to n - 1 do
        Buf.unsafe_set d j (Buf.unsafe_get src (Array.unsafe_get perm j))
      done)

let automorphism_eval p ~galois =
  if p.domain <> Eval then invalid_arg "Poly.automorphism_eval: operand must be in Eval domain";
  let out = alloc_like p in
  automorphism_eval_into ~dst:out p ~galois;
  out

let rescale_last p =
  if p.domain <> Coeff then invalid_arg "Poly.rescale_last: operand must be in Coeff domain";
  if p.with_special then invalid_arg "Poly.rescale_last: special component present";
  if p.level_count < 2 then invalid_arg "Poly.rescale_last: nothing to drop";
  let dropped = p.level_count - 1 in
  let q_last = Chain.prime p.chain dropped in
  let last = p.data.(dropped) in
  let out = zero p.chain ~level_count:dropped ~with_special:false Coeff in
  let n = Chain.degree p.chain in
  let naive = Kernels.use_naive () in
  kernel_par dropped n (fun i ->
      let q = Chain.prime p.chain i in
      let inv = Chain.rescale_inv p.chain ~dropped i in
      let src = p.data.(i) and dst = out.data.(i) in
      if naive then
        for t = 0 to n - 1 do
          let c = M.to_centered ~q:q_last (Buf.get last t) in
          Buf.set dst t (M.mul ~q (M.sub ~q (Buf.get src t) (M.reduce ~q c)) inv)
        done
      else begin
        let ctx = Chain.ctx p.chain i in
        for t = 0 to n - 1 do
          let c = M.to_centered ~q:q_last (Buf.unsafe_get last t) in
          Buf.unsafe_set dst t
            (M.mulmod ctx (M.sub ~q (Buf.unsafe_get src t) (M.reduce_ctx ctx c)) inv)
        done
      end);
  out

let drop_last p =
  if p.with_special then invalid_arg "Poly.drop_last: special component present";
  if p.level_count < 2 then invalid_arg "Poly.drop_last: nothing to drop";
  let out = { p with level_count = p.level_count - 1; data = [||] } in
  let out = alloc_like out in
  Array.iteri (fun i dst -> Buf.blit ~src:p.data.(i) ~dst) out.data;
  out

let mod_down_special p =
  if p.domain <> Coeff then invalid_arg "Poly.mod_down_special: operand must be in Coeff domain";
  if not p.with_special then invalid_arg "Poly.mod_down_special: no special component";
  let sp = Chain.special_prime p.chain in
  let last = p.data.(p.level_count) in
  let out = zero p.chain ~level_count:p.level_count ~with_special:false Coeff in
  let n = Chain.degree p.chain in
  let naive = Kernels.use_naive () in
  kernel_par p.level_count n (fun i ->
      let q = Chain.prime p.chain i in
      let inv = Chain.special_inv p.chain i in
      let src = p.data.(i) and dst = out.data.(i) in
      if naive then
        for t = 0 to n - 1 do
          let c = M.to_centered ~q:sp (Buf.get last t) in
          Buf.set dst t (M.mul ~q (M.sub ~q (Buf.get src t) (M.reduce ~q c)) inv)
        done
      else begin
        let ctx = Chain.ctx p.chain i in
        for t = 0 to n - 1 do
          let c = M.to_centered ~q:sp (Buf.unsafe_get last t) in
          Buf.unsafe_set dst t
            (M.mulmod ctx (M.sub ~q (Buf.unsafe_get src t) (M.reduce_ctx ctx c)) inv)
        done
      end);
  out

let lift_digit_loop ~dst p ~digit =
  let q_digit = Chain.prime p.chain digit in
  let src = p.data.(digit) in
  let n = Chain.degree p.chain in
  let naive = Kernels.use_naive () in
  kernel_par (component_count dst) n (fun i ->
      let d = dst.data.(i) in
      if naive then begin
        let q = modulus_at dst i in
        for t = 0 to n - 1 do
          Buf.set d t (M.reduce ~q (M.to_centered ~q:q_digit (Buf.get src t)))
        done
      end
      else begin
        let ctx = ctx_at dst i in
        for t = 0 to n - 1 do
          Buf.unsafe_set d t (M.reduce_ctx ctx (M.to_centered ~q:q_digit (Buf.unsafe_get src t)))
        done
      end)

let check_lift name p ~digit =
  if p.domain <> Coeff then invalid_arg ("Poly." ^ name ^ ": operand must be in Coeff domain");
  if digit < 0 || digit >= p.level_count then invalid_arg ("Poly." ^ name ^ ": bad digit index")

let lift_digit p ~digit ~with_special =
  check_lift "lift_digit" p ~digit;
  let out = zero p.chain ~level_count:p.level_count ~with_special Coeff in
  lift_digit_loop ~dst:out p ~digit;
  out

let lift_digit_into ~dst p ~digit =
  check_lift "lift_digit_into" p ~digit;
  if dst.chain != p.chain || dst.domain <> Coeff then
    invalid_arg "Poly.lift_digit_into: incompatible destination";
  lift_digit_loop ~dst p ~digit

let restrict_levels p ~level_count =
  if level_count < 1 || level_count > p.level_count then
    invalid_arg "Poly.restrict_levels: bad level count";
  if level_count = p.level_count then p
  else begin
    let out = { p with level_count; data = [||] } in
    let out = alloc_like out in
    for i = 0 to level_count - 1 do
      Buf.blit ~src:p.data.(i) ~dst:out.data.(i)
    done;
    if p.with_special then Buf.blit ~src:p.data.(p.level_count) ~dst:out.data.(level_count);
    out
  end

let crt_reconstruct_centered p =
  if p.domain <> Coeff then invalid_arg "Poly.crt_reconstruct_centered: Coeff domain required";
  if p.with_special then invalid_arg "Poly.crt_reconstruct_centered: special component present";
  let k = p.level_count in
  let n = Chain.degree p.chain in
  let q_prod = Chain.modulus_product p.chain ~upto:k in
  let out = Array.make n 0. in
  let digits = Array.make k 0 in
  let naive = Kernels.use_naive () in
  for t = 0 to n - 1 do
    (* Garner mixed-radix digits *)
    for i = 0 to k - 1 do
      let q = Chain.prime p.chain i in
      let u = ref (Buf.get p.data.(i) t) in
      if naive then
        for j = 0 to i - 1 do
          u := M.mul ~q (M.sub ~q !u (M.reduce ~q digits.(j))) (Chain.garner_inv p.chain i j)
        done
      else begin
        let ctx = Chain.ctx p.chain i in
        for j = 0 to i - 1 do
          u :=
            M.mulmod ctx
              (M.sub ~q !u (M.reduce_ctx ctx digits.(j)))
              (Chain.garner_inv p.chain i j)
        done
      end;
      digits.(i) <- !u
    done;
    (* Horner accumulation from most significant digit *)
    let big = ref (Bigint.of_int digits.(k - 1)) in
    for i = k - 2 downto 0 do
      big := Bigint.add_int (Bigint.mul_int !big (Chain.prime p.chain i)) digits.(i)
    done;
    (* centered: value > Q/2 iff 2*value > Q *)
    let doubled = Bigint.mul_int !big 2 in
    if Bigint.compare doubled q_prod > 0 then out.(t) <- -.Bigint.to_float (Bigint.sub q_prod !big)
    else out.(t) <- Bigint.to_float !big
  done;
  out

let equal a b =
  a.chain == b.chain && a.level_count = b.level_count && a.with_special = b.with_special
  && a.domain = b.domain
  && Array.for_all2 Buf.equal a.data b.data
