(** RNS modulus chains for RNS-CKKS.

    A chain holds the ciphertext primes [q_0 .. q_{L-1}] (decreasing
    significance: rescaling drops the {e last} prime first) plus one special
    prime [P] used only during key switching, together with every
    precomputation key switching and rescaling need:

    - per-prime negacyclic NTT tables;
    - the key-switching gadget weights
      [w_i = (Q_L / q_i) * ((Q_L / q_i)^{-1} mod q_i)] reduced modulo every
      modulus of the extended basis;
    - [q_l^{-1} mod q_i] for exact RNS rescaling at every level;
    - [P^{-1} mod q_i] for the mod-down after key switching;
    - Garner mixed-radix inverses for exact CRT reconstruction at decode. *)

type t

val create : n:int -> q0_bits:int -> sf_bits:int -> levels:int -> special_bits:int -> t
(** [create ~n ~q0_bits ~sf_bits ~levels ~special_bits] builds a chain for
    ring degree [n] with one [q0_bits]-bit base prime, [levels] rescaling
    primes of [sf_bits] bits each (so [L = levels + 1] chain primes) and a
    [special_bits]-bit key-switching prime. All primes are distinct and
    NTT-friendly for [n].
    @raise Invalid_argument on unattainable parameters. *)

val degree : t -> int
val length : t -> int
(** Number of ciphertext primes [L]. *)

val prime : t -> int -> int
(** [prime c i] is [q_i], [0 <= i < length c]. *)

val primes : t -> int array
(** Copy of the chain primes. *)

val special_prime : t -> int
val table : t -> int -> Hecate_support.Ntt.table
(** NTT table for chain prime [i]. *)

val special_table : t -> Hecate_support.Ntt.table

val ctx : t -> int -> Hecate_support.Modarith.ctx
(** Barrett context for chain prime [i]. *)

val special_ctx : t -> Hecate_support.Modarith.ctx
(** Barrett context for the special prime. *)

val log2_q : t -> upto:int -> float
(** [log2_q c ~upto] is [log2 (q_0 * ... * q_{upto-1})]. *)

val gadget_weight : t -> digit:int -> modulus_index:int -> int
(** [gadget_weight c ~digit:i ~modulus_index:j] is [w_i mod q_j]; pass
    [modulus_index = length c] for [w_i mod P]. *)

val rescale_inv : t -> dropped:int -> int -> int
(** [rescale_inv c ~dropped:l i] is [q_l^{-1} mod q_i] for [i < l]. *)

val special_inv : t -> int -> int
(** [special_inv c i] is [P^{-1} mod q_i]. *)

val garner_inv : t -> int -> int -> int
(** [garner_inv c j i] is [q_j^{-1} mod q_i] for [j < i], used by CRT
    reconstruction. *)

val modulus_product : t -> upto:int -> Hecate_support.Bigint.t
(** [modulus_product c ~upto] is [q_0 * ... * q_{upto-1}] exactly. *)
