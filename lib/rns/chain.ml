module M = Hecate_support.Modarith
module Primes = Hecate_support.Primes
module Ntt = Hecate_support.Ntt
module Bigint = Hecate_support.Bigint

type t = {
  n : int;
  primes : int array; (* q_0 .. q_{L-1} *)
  special : int; (* P *)
  tables : Ntt.table array;
  special_table : Ntt.table;
  ctxs : M.ctx array; (* Barrett contexts, one per chain prime *)
  special_ctx : M.ctx;
  (* w.(i).(j) = w_i mod q_j for j < L, and w.(i).(L) = w_i mod P, where
     w_i = (Q_L / q_i) * ((Q_L / q_i)^{-1} mod q_i). *)
  w : int array array;
  rescale_inv : int array array; (* rescale_inv.(l).(i) = q_l^{-1} mod q_i, i < l *)
  p_inv : int array; (* P^{-1} mod q_i *)
  garner : int array array; (* garner.(i).(j) = q_j^{-1} mod q_i, j < i *)
}

let degree c = c.n
let length c = Array.length c.primes
let prime c i = c.primes.(i)
let primes c = Array.copy c.primes
let special_prime c = c.special
let table c i = c.tables.(i)
let special_table c = c.special_table
let ctx c i = c.ctxs.(i)
let special_ctx c = c.special_ctx
let gadget_weight c ~digit ~modulus_index = c.w.(digit).(modulus_index)
let rescale_inv c ~dropped i = c.rescale_inv.(dropped).(i)
let special_inv c i = c.p_inv.(i)
let garner_inv c i j = c.garner.(i).(j)

let log2_q c ~upto =
  let acc = ref 0. in
  for i = 0 to upto - 1 do
    acc := !acc +. (log (float_of_int c.primes.(i)) /. log 2.)
  done;
  !acc

let modulus_product c ~upto =
  let acc = ref Bigint.one in
  for i = 0 to upto - 1 do
    acc := Bigint.mul_int !acc c.primes.(i)
  done;
  !acc

let create ~n ~q0_bits ~sf_bits ~levels ~special_bits =
  if levels < 0 then invalid_arg "Chain.create: negative level count";
  let q0 =
    match Primes.ntt_primes ~bits:q0_bits ~n ~count:1 with
    | [ p ] -> p
    | _ -> assert false
  in
  let rescale_primes =
    if levels = 0 then []
    else Primes.ntt_primes_avoiding ~bits:sf_bits ~n ~count:levels ~avoid:[ q0 ]
  in
  let primes = Array.of_list (q0 :: rescale_primes) in
  let special =
    match
      Primes.ntt_primes_avoiding ~bits:special_bits ~n ~count:1 ~avoid:(Array.to_list primes)
    with
    | [ p ] -> p
    | _ -> assert false
  in
  let l = Array.length primes in
  let tables = Array.map (fun p -> Ntt.make_table ~p ~n) primes in
  let special_table = Ntt.make_table ~p:special ~n in
  (* Gadget weights: products of the other primes, folded with the inverse of
     that product modulo q_i, all reduced per modulus. *)
  let w =
    Array.init l (fun i ->
        let q_i = primes.(i) in
        (* (Q_L / q_i) mod m for each modulus m, and mod q_i for the inverse *)
        let qhat_mod m =
          let acc = ref 1 in
          for k = 0 to l - 1 do
            if k <> i then acc := M.mul ~q:m !acc (primes.(k) mod m)
          done;
          !acc
        in
        let inv_at_qi = M.inv ~q:q_i (qhat_mod q_i) in
        Array.init (l + 1) (fun j ->
            let m = if j = l then special else primes.(j) in
            M.mul ~q:m (qhat_mod m) (inv_at_qi mod m)))
  in
  let rescale_inv =
    Array.init l (fun dropped ->
        Array.init dropped (fun i -> M.inv ~q:primes.(i) (primes.(dropped) mod primes.(i))))
  in
  let p_inv = Array.map (fun q -> M.inv ~q (special mod q)) primes in
  let garner =
    Array.init l (fun i -> Array.init i (fun j -> M.inv ~q:primes.(i) (primes.(j) mod primes.(i))))
  in
  {
    n;
    primes;
    special;
    tables;
    special_table;
    ctxs = Array.map (fun q -> M.ctx ~q) primes;
    special_ctx = M.ctx ~q:special;
    w;
    rescale_inv;
    p_inv;
    garner;
  }
