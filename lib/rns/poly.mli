(** Polynomials of [Z_Q\[X\]/(X^n + 1)] in RNS (double-CRT) representation.

    A polynomial carries one residue vector per active modulus: the first
    [level_count] chain primes, plus optionally the special prime. Residues
    are stored either in coefficient form ([Coeff]) or NTT/evaluation form
    ([Eval]); operations check that operands agree on basis and domain. *)

type domain = Coeff | Eval

type t = private {
  chain : Chain.t;
  level_count : int; (** number of chain primes present, [1 <= level_count <= L] *)
  with_special : bool;
  domain : domain;
  data : Hecate_support.Buf.t array;
      (** [data.(i)] are the residues modulo chain prime [i]; if
          [with_special] then the final entry holds the special-prime
          residues. Components are O(1) views into one flat unboxed
          allocation (see {!Hecate_support.Buf}), so the GC never scans
          coefficient payloads. *)
}

val zero : Chain.t -> level_count:int -> with_special:bool -> domain -> t
val copy : t -> t

val component_count : t -> int
(** [level_count + (1 if with_special)]. *)

val modulus_at : t -> int -> int
(** Modulus of component [i] (the special prime for the last component when
    present). *)

val of_centered_coeffs : Chain.t -> level_count:int -> with_special:bool -> int array -> t
(** Build a [Coeff]-domain polynomial from centered integer coefficients
    (each in [(-2^62, 2^62)]), reducing modulo every active modulus. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val mul : t -> t -> t
(** Point-wise product; both operands must be in [Eval] domain. *)

(** {2 Destination-buffer forms}

    The [_into] variants write into an existing polynomial instead of
    allocating a result, eliminating the per-operation allocation churn in
    hot paths (key switching accumulates into two buffers across all
    digits). The destination must share the operands' basis and domain.
    All of them are element-wise, so the destination may alias either
    operand. *)

val add_into : dst:t -> t -> t -> unit
(** [add_into ~dst a b] sets [dst <- a + b]. *)

val sub_into : dst:t -> t -> t -> unit
(** [sub_into ~dst a b] sets [dst <- a - b]. *)

val mul_into : dst:t -> t -> t -> unit
(** [mul_into ~dst a b] sets [dst <- a * b] point-wise; all three must be
    in [Eval] domain. *)

val mul_add_into : acc:t -> t -> t -> unit
(** [mul_add_into ~acc a b] sets [acc <- acc + a * b] point-wise ([Eval]
    domain). The multiplier [b] may carry a deeper basis than [acc] and [a]
    ([b.level_count >= a.level_count], same chain and special flag): chain
    component [i] of [b] is read directly and [b]'s special component is
    used for [a]'s special slot. This lets full-level key material be
    consumed at a reduced ciphertext level without [restrict_levels]
    copies. *)

val lift_digit_into : dst:t -> t -> digit:int -> unit
(** [lift_digit_into ~dst p ~digit] is {!lift_digit} writing into the
    existing [Coeff]-domain polynomial [dst] (same chain as [p]; any
    [level_count] / [with_special]). *)

val mul_scalar : t -> int -> t
(** Multiply every residue by a non-negative integer constant (reduced per
    modulus). Domain-agnostic. *)

val mul_component_scalars : t -> int array -> t
(** [mul_component_scalars p ks] multiplies component [i] by [ks.(i)], where
    each [ks.(i)] is already reduced modulo that component's modulus. Used
    for gadget factors such as [P * w_i] whose integer value exceeds the
    native range. [Array.length ks] must equal [component_count p]. *)

val to_eval : t -> t
(** NTT-transform a [Coeff] polynomial (identity on [Eval]). Allocates a
    fresh polynomial; the argument is unchanged. *)

val to_coeff : t -> t
(** Inverse-NTT an [Eval] polynomial (identity on [Coeff]). Allocates a
    fresh polynomial; the argument is unchanged. *)

val to_eval_inplace : t -> t
(** Destructive {!to_eval}: transforms the residue arrays in place and
    returns a shell sharing them with the updated [domain]. The argument
    must not be used afterwards (its [domain] field is stale). Intended for
    freshly-built intermediates whose coefficient form is never needed
    again. *)

val to_coeff_inplace : t -> t
(** Destructive {!to_coeff}; same ownership contract as
    {!to_eval_inplace}. *)

val automorphism : t -> galois:int -> t
(** [automorphism p ~galois:g] applies [X -> X^g] ([g] odd). Operand must be
    in [Coeff] domain. *)

val automorphism_eval : t -> galois:int -> t
(** [automorphism_eval p ~galois:g] applies [X -> X^g] directly to an
    [Eval]-domain polynomial as a slot permutation — bit-identical to
    [to_eval (automorphism (to_coeff p) ~galois:g)] without the two NTT
    round-trips. Hoisted rotation key switching uses this to rotate a
    shared digit decomposition once per rotation instead of re-decomposing
    (see {!Hecate_support.Ntt.galois_perm}). *)

val automorphism_eval_into : dst:t -> t -> galois:int -> unit
(** Destination-buffer form of {!automorphism_eval}. [dst] must not alias
    the source (the permutation is not applied in place). *)

val rescale_last : t -> t
(** Exact RNS rescale: divide by the last chain prime with centered rounding
    and drop it. Requires [Coeff] domain, no special component, and
    [level_count >= 2]. *)

val drop_last : t -> t
(** Drop the last chain prime without dividing (modswitch). Domain-agnostic.
    Requires no special component and [level_count >= 2]. *)

val mod_down_special : t -> t
(** Divide by the special prime with centered rounding and drop it (the
    tail of key switching). Requires [Coeff] domain and [with_special]. *)

val lift_digit : t -> digit:int -> with_special:bool -> t
(** [lift_digit p ~digit:i ~with_special] extracts the RNS digit [i] (the
    residues modulo [q_i]), lifts each coefficient to its centered
    representative, and re-reduces modulo every modulus of [p]'s chain-prime
    basis (optionally extended by the special prime). Requires [Coeff]
    domain. The result is in [Coeff] domain. *)

val restrict_levels : t -> level_count:int -> t
(** Keep only the first [level_count] chain components (and the special
    component when present). Used to evaluate full-basis key material at a
    reduced ciphertext level. Domain-agnostic. *)

val crt_reconstruct_centered : t -> float array
(** Exact CRT (Garner) reconstruction of each coefficient to its centered
    integer value, returned as nearest doubles. Requires [Coeff] domain and
    no special component. *)

val equal : t -> t -> bool
(** Structural equality of basis, domain and residues. *)
