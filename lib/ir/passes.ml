(* Rebuild helper: keep ops selected by [keep], remapping operand ids.
   Assumes every kept op only references kept ops. *)
let rebuild (p : Prog.t) ~keep =
  let n = Prog.num_ops p in
  let remap = Array.make n (-1) in
  let ops = ref [] in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      let o = Prog.op p i in
      let args = Array.map (fun a -> remap.(a)) o.Prog.args in
      ops := { o with Prog.id = !count; args } :: !ops;
      remap.(i) <- !count;
      incr count
    end
  done;
  {
    p with
    Prog.body = Array.of_list (List.rev !ops);
    inputs = List.map (fun v -> remap.(v)) p.Prog.inputs;
    outputs = List.map (fun v -> remap.(v)) p.Prog.outputs;
  }

let dce (p : Prog.t) =
  let n = Prog.num_ops p in
  let live = Array.make n false in
  let rec mark v =
    if not live.(v) then begin
      live.(v) <- true;
      Array.iter mark (Prog.op p v).Prog.args
    end
  in
  List.iter mark p.Prog.outputs;
  (* inputs are part of the signature *)
  List.iter (fun v -> live.(v) <- true) p.Prog.inputs;
  rebuild p ~keep:live

(* Keys for value numbering. Constants compare by contents. *)
let cse (p : Prog.t) =
  let n = Prog.num_ops p in
  let canon = Array.make n (-1) in
  let table = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let o = Prog.op p i in
    let key = (o.Prog.kind, Array.map (fun a -> canon.(a)) o.Prog.args) in
    match o.Prog.kind with
    | Prog.Input _ -> canon.(i) <- i (* never merge distinct inputs *)
    | _ -> (
        match Hashtbl.find_opt table key with
        | Some j -> canon.(i) <- j
        | None ->
            Hashtbl.replace table key i;
            canon.(i) <- i)
  done;
  if Array.for_all2 (fun c i -> c = i) canon (Array.init n Fun.id) then p
  else begin
    (* Redirect every use to the canonical op, then drop duplicates. *)
    let redirected =
      {
        p with
        Prog.body =
          Array.map
            (fun (o : Prog.op) -> { o with Prog.args = Array.map (fun a -> canon.(a)) o.Prog.args })
            p.Prog.body;
        outputs = List.map (fun v -> canon.(v)) p.Prog.outputs;
      }
    in
    dce redirected
  end

let fold_values slot_count (kind : Prog.kind) (args : Prog.const_value list) =
  let to_vec = function
    | Prog.Scalar x -> Array.make slot_count x
    | Prog.Vector v ->
        let out = Array.make slot_count 0. in
        Array.blit v 0 out 0 (min slot_count (Array.length v));
        out
  in
  match (kind, args) with
  | Prog.Add, [ Prog.Scalar a; Prog.Scalar b ] -> Some (Prog.Scalar (a +. b))
  | Prog.Sub, [ Prog.Scalar a; Prog.Scalar b ] -> Some (Prog.Scalar (a -. b))
  | Prog.Mul, [ Prog.Scalar a; Prog.Scalar b ] -> Some (Prog.Scalar (a *. b))
  | Prog.Negate, [ Prog.Scalar a ] -> Some (Prog.Scalar (-.a))
  | Prog.Rotate _, [ (Prog.Scalar _ as s) ] -> Some s
  | Prog.Add, [ a; b ] ->
      let va = to_vec a and vb = to_vec b in
      Some (Prog.Vector (Array.init slot_count (fun i -> va.(i) +. vb.(i))))
  | Prog.Sub, [ a; b ] ->
      let va = to_vec a and vb = to_vec b in
      Some (Prog.Vector (Array.init slot_count (fun i -> va.(i) -. vb.(i))))
  | Prog.Mul, [ a; b ] ->
      let va = to_vec a and vb = to_vec b in
      Some (Prog.Vector (Array.init slot_count (fun i -> va.(i) *. vb.(i))))
  | Prog.Negate, [ a ] ->
      let va = to_vec a in
      Some (Prog.Vector (Array.map (fun x -> -.x) va))
  | Prog.Rotate { amount }, [ a ] ->
      let va = to_vec a in
      let r = ((amount mod slot_count) + slot_count) mod slot_count in
      Some (Prog.Vector (Array.init slot_count (fun i -> va.((i + r) mod slot_count))))
  | _ -> None

let constant_fold (p : Prog.t) =
  let n = Prog.num_ops p in
  let const_of = Array.make n None in
  let body =
    Array.map
      (fun (o : Prog.op) ->
        match o.Prog.kind with
        | Prog.Const { value } ->
            const_of.(o.Prog.id) <- Some value;
            o
        | Prog.Add | Prog.Sub | Prog.Mul | Prog.Negate | Prog.Rotate _ -> (
            let arg_consts = Array.map (fun a -> const_of.(a)) o.Prog.args in
            if Array.for_all Option.is_some arg_consts then
              match
                fold_values p.Prog.slot_count o.Prog.kind
                  (Array.to_list (Array.map Option.get arg_consts))
              with
              | Some value ->
                  const_of.(o.Prog.id) <- Some value;
                  { o with Prog.kind = Prog.Const { value }; args = [||] }
              | None -> o
            else o)
        | _ -> o)
      p.Prog.body
  in
  dce { p with Prog.body }

let fold_rotations_once (p : Prog.t) =
  let n = Prog.num_ops p in
  let uses = Prog.use_counts p in
  let norm amount = ((amount mod p.Prog.slot_count) + p.Prog.slot_count) mod p.Prog.slot_count in
  (* forward pass: each rotate looks through a single-use rotate operand *)
  let replaced = Array.make n (-1) in
  let body =
    Array.map
      (fun (o : Prog.op) ->
        let args = o.Prog.args in
        match o.Prog.kind with
        | Prog.Rotate { amount } -> (
            let src = args.(0) in
            let combined, root =
              match (Prog.op p src).Prog.kind with
              | Prog.Rotate { amount = inner } when uses.(src) = 1 ->
                  (norm (amount + inner), (Prog.op p src).Prog.args.(0))
              | _ -> (norm amount, src)
            in
            if combined = 0 then begin
              replaced.(o.Prog.id) <- root;
              (* keep a placeholder op; DCE removes it after redirection *)
              { o with Prog.kind = Prog.Rotate { amount = 0 }; args = [| root |] }
            end
            else { o with Prog.kind = Prog.Rotate { amount = combined }; args = [| root |] })
        | _ -> o)
      p.Prog.body
  in
  (* redirect uses of zero-rotations to their roots *)
  let rec resolve v = if replaced.(v) >= 0 then resolve replaced.(v) else v in
  let redirected =
    {
      p with
      Prog.body =
        Array.map
          (fun (o : Prog.op) -> { o with Prog.args = Array.map resolve o.Prog.args })
          body;
      outputs = List.map resolve p.Prog.outputs;
    }
  in
  dce redirected

(* chains of three or more rotations fold one pair per pass *)
let fold_rotations p =
  let rec fix p =
    let p' = fold_rotations_once p in
    if Prog.num_ops p' < Prog.num_ops p then fix p' else p'
  in
  fix p

(* [mul (mul x c1) c2] => [mul x (c1*c2)] for constant operands c1, c2.
   Detection runs over the original program while emission maps already-
   rewritten operands, so a chain shortens by one link per application;
   the enclosing fixpoint flattens longer chains. Inner multiplies with
   other remaining uses keep them; dce drops the rest. *)
let fold_plain_muls (p : Prog.t) =
  let n = Prog.num_ops p in
  let const_of v =
    match (Prog.op p v).Prog.kind with
    | Prog.Const { value } -> Some value
    | _ -> None
  in
  (* a Mul split into (non-const operand, const operand value) when exactly
     one operand is a direct constant *)
  let split v =
    match (Prog.op p v).Prog.kind with
    | Prog.Mul -> (
        let args = (Prog.op p v).Prog.args in
        match (const_of args.(0), const_of args.(1)) with
        | None, Some c -> Some (args.(0), c)
        | Some c, None -> Some (args.(1), c)
        | _ -> None)
    | _ -> None
  in
  let fusable = Array.make n None in
  let any = ref false in
  for i = 0 to n - 1 do
    match split i with
    | Some (inner, c2) -> (
        match split inner with
        | Some (x, c1) -> (
            match fold_values p.Prog.slot_count Prog.Mul [ c1; c2 ] with
            | Some folded ->
                fusable.(i) <- Some (x, folded);
                any := true
            | None -> ())
        | None -> ())
    | None -> ()
  done;
  if not !any then p
  else begin
    let rw = Prog.Rewriter.create p in
    for i = 0 to n - 1 do
      let o = Prog.op p i in
      let mapped = Array.map (Prog.Rewriter.mapped rw) o.Prog.args in
      let id =
        match fusable.(i) with
        | Some (x, folded) ->
            let c =
              Prog.Rewriter.emit rw (Prog.Const { value = folded }) [||] Types.Free
            in
            Prog.Rewriter.emit ?prov:o.Prog.prov rw Prog.Mul
              [| Prog.Rewriter.mapped rw x; c |]
              Types.Free
        | None -> Prog.Rewriter.emit ?prov:o.Prog.prov rw o.Prog.kind mapped o.Prog.ty
      in
      Prog.Rewriter.set_mapped rw ~old_value:o.Prog.id id
    done;
    dce (Prog.Rewriter.finish rw)
  end

let early_modswitch_once (p : Prog.t) =
  let n = Prog.num_ops p in
  let uses = Prog.use_counts p in
  (* absorbed.(v): number of modswitch layers to fold into the op defining v *)
  let absorbed = Array.make n 0 in
  let elided = Array.make n false in
  let absorbs kind =
    match kind with
    | Prog.Add | Prog.Sub | Prog.Mul | Prog.Negate | Prog.Rotate _ | Prog.Rescale | Prog.Upscale _
    | Prog.Downscale _ | Prog.Encode _ ->
        true
    | Prog.Input _ | Prog.Const _ | Prog.Modswitch -> false
  in
  for i = n - 1 downto 0 do
    let o = Prog.op p i in
    match o.Prog.kind with
    | Prog.Modswitch ->
        let x = o.Prog.args.(0) in
        let def = Prog.op p x in
        if uses.(x) = 1 && absorbs def.Prog.kind then begin
          absorbed.(x) <- absorbed.(x) + 1 + absorbed.(i);
          elided.(i) <- true
        end
    | _ -> ()
  done;
  if Array.for_all not elided then p
  else begin
    let remap = Array.make n (-1) in
    let ops = ref [] in
    let count = ref 0 in
    let emit kind args =
      let id = !count in
      ops := { Prog.id; kind; args; ty = Types.Free; prov = None } :: !ops;
      incr count;
      id
    in
    (* Share the wrapper chains: wrapping [mul %x, %x] must produce ONE
       [modswitch %x] feeding both operands, not two. With distinct copies
       the base value gains a second use, the copies stop being absorbable,
       and migration stalls until a later cse merges them — which is what
       made convergence take one fixpoint iteration per dataflow step. *)
    let wrap_memo = Hashtbl.create 16 in
    let rec wrap v k =
      if k = 0 then v
      else
        match Hashtbl.find_opt wrap_memo (v, k) with
        | Some id -> id
        | None ->
            let id = emit Prog.Modswitch [| wrap v (k - 1) |] in
            Hashtbl.add wrap_memo (v, k) id;
            id
    in
    for i = 0 to n - 1 do
      let o = Prog.op p i in
      if elided.(i) then remap.(i) <- remap.(o.Prog.args.(0))
      else begin
        let m = absorbed.(i) in
        let kind =
          match o.Prog.kind with
          | Prog.Encode { scale; level } when m > 0 -> Prog.Encode { scale; level = level + m }
          | k -> k
        in
        let args =
          Array.map
            (fun a ->
              let base = remap.(a) in
              match o.Prog.kind with
              | Prog.Encode _ -> base (* absorbed into the level attribute *)
              | _ -> wrap base m)
            o.Prog.args
        in
        remap.(i) <- emit kind args
      end
    done;
    let out =
      {
        p with
        Prog.body = Array.of_list (List.rev !ops);
        inputs = List.map (fun v -> remap.(v)) p.Prog.inputs;
        outputs = List.map (fun v -> remap.(v)) p.Prog.outputs;
      }
    in
    match Prog.validate out with
    | Ok () -> out
    | Error msg -> invalid_arg ("Passes.early_modswitch: " ^ msg)
  end

(* One [early_modswitch_once] moves each modswitch one def earlier: the
   wrappers it emits around an absorbing op's operands only become
   absorbable themselves on the next sweep. Iterating here makes the pass
   transitive (and idempotent) as documented, instead of leaning on the
   enclosing fixpoint pipeline for the propagation — on deep programs
   (LeNet's conv chains) the per-iteration step used to exceed the pass
   manager's 64-iteration fixpoint budget and crash the compile. Each sweep
   strictly moves some modswitch earlier and never moves one later, so the
   number of sweeps is bounded by the program's dataflow depth; [num_ops]
   is a safe cap that can only be hit by a genuine non-termination bug. *)
let early_modswitch (p : Prog.t) =
  let rec fix p budget =
    if budget = 0 then p
    else
      let p' = early_modswitch_once p in
      if p' == p then p else fix p' (budget - 1)
  in
  fix p (Prog.num_ops p + 1)
