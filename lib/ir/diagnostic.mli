(** Structured compiler diagnostics.

    Every failure surfaced by the typing rules, the frontend elaborator, or
    the driver is a {!t}: a machine-readable error code, a human message, and
    whatever is known about the offending operation — its id, kind, operand
    types, and surface provenance chain — plus a suggested fix.

    {!to_string} reproduces the exact legacy error strings that
    {!Typing.check} used to return, so string-matching callers (the pass
    manager, the fuzz oracle, existing tests) keep working unchanged. *)

type code =
  | Parse_error  (** surface text does not parse *)
  | Invalid_program  (** structural {!Prog.validate} failure *)
  | Operand_kind  (** operand is free/plain/cipher where another kind is required *)
  | Scale_overflow  (** C1: scale exceeds the modulus remaining at the level *)
  | Below_waterline  (** C2: a rescale/downscale/encode lands below the waterline *)
  | Level_mismatch  (** C3: binary operation with unequal operand levels *)
  | Scale_mismatch  (** C3: add/sub with unequal operand scales *)
  | Level_exceeded  (** level grew past [max_level] *)
  | Bad_upscale  (** upscale target below the current scale *)
  | Bad_downscale  (** downscale attribute disagrees with the configuration *)
  | Redundant_op  (** a cheaper scale-management op applies (use modswitch/rescale) *)
  | Output_not_cipher  (** program output is not a ciphertext *)
  | Arity  (** wrong operand count for the kind *)
  | Precondition  (** surface-combinator precondition violated (DSL misuse) *)
  | Already_managed  (** program already contains scale-management operations *)
  | Oracle_rejected
      (** every exploration strategy's winning plan failed the differential
          oracle gate (validate/typecheck/roundtrip/accuracy/agreement) *)
  | Internal  (** a pass or the driver broke an invariant *)

val code_name : code -> string
(** Stable kebab-case name, e.g. [Scale_overflow -> "scale-overflow"].
    These names are the contract for [--error-format json] and for fuzz
    reproducer headers; see docs/DIAGNOSTICS.md. *)

val code_of_name : string -> code option

type t = {
  code : code;
  message : string;  (** bare message, no ["op %d: "] prefix *)
  op : Prog.value option;  (** offending operation, when known *)
  op_kind : string option;  (** {!Prog.kind_name} of the offending op *)
  operand_types : Types.t list;  (** types of the offending op's operands *)
  provenance : Prog.provenance option;  (** surface chain of the offending op *)
  hint : string option;  (** suggested fix *)
}

val v :
  ?op:Prog.value ->
  ?op_kind:string ->
  ?operand_types:Types.t list ->
  ?provenance:Prog.provenance ->
  ?hint:string ->
  code:code ->
  string ->
  t

val errf :
  ?op:Prog.value ->
  ?op_kind:string ->
  ?operand_types:Types.t list ->
  ?provenance:Prog.provenance ->
  ?hint:string ->
  code:code ->
  ('a, unit, string, ('b, t) result) format4 ->
  'a
(** [errf ~code fmt ...] builds [Error (v ~code msg)] from a format string. *)

val at : Prog.op -> t -> t
(** Attach op-level context (id, kind, provenance) from a concrete op,
    keeping any fields already set. *)

val to_string : t -> string
(** Legacy one-line rendering: ["op %d: %s"] when the op is known, the bare
    message otherwise — byte-identical to the strings the typer returned
    before diagnostics were structured. *)

val pp : Format.formatter -> t -> unit
(** Pretty multi-line rendering:
    {v
error[scale-mismatch]: add: operand scales 2^80.00 and 2^40.00 differ (C3)
  --> op %12 (add) applied to cipher<80,0>, cipher<40,0>
  from: matvec 4x4 > add
  hint: rescale or upscale one operand so both scales match
    v} *)

val to_json : t -> string
(** One-line JSON object (hand-rolled; stable field order):
    [{"code":..,"message":..,"op":..,"op_kind":..,"operand_types":[..],
      "provenance":[..],"hint":..}]. Unknown fields are [null]. *)

exception Error of t
(** Raising counterpart for code paths that cannot return [result].
    Registered with {!Printexc} to render via {!to_string}. *)

val error : t -> 'a
(** [error d] raises [Error d]. *)
