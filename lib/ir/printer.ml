let pp_const fmt = function
  | Prog.Scalar x -> Format.fprintf fmt "%h" x
  | Prog.Vector v ->
      Format.fprintf fmt "[";
      Array.iteri (fun i x -> Format.fprintf fmt "%s%h" (if i = 0 then "" else ", ") x) v;
      Format.fprintf fmt "]"

let pp_op ?(provenance = false) fmt (o : Prog.op) =
  let arg i = Format.asprintf "%%%d" o.args.(i) in
  (match o.kind with
  | Prog.Input { name } -> Format.fprintf fmt "%%%d = input \"%s\"" o.id name
  | Prog.Const { value } -> Format.fprintf fmt "%%%d = const %a" o.id pp_const value
  | Prog.Encode { scale; level } ->
      Format.fprintf fmt "%%%d = encode %s, scale=%h, level=%d" o.id (arg 0) scale level
  | Prog.Add -> Format.fprintf fmt "%%%d = add %s, %s" o.id (arg 0) (arg 1)
  | Prog.Sub -> Format.fprintf fmt "%%%d = sub %s, %s" o.id (arg 0) (arg 1)
  | Prog.Mul -> Format.fprintf fmt "%%%d = mul %s, %s" o.id (arg 0) (arg 1)
  | Prog.Negate -> Format.fprintf fmt "%%%d = negate %s" o.id (arg 0)
  | Prog.Rotate { amount } -> Format.fprintf fmt "%%%d = rotate %s, %d" o.id (arg 0) amount
  | Prog.Rescale -> Format.fprintf fmt "%%%d = rescale %s" o.id (arg 0)
  | Prog.Modswitch -> Format.fprintf fmt "%%%d = modswitch %s" o.id (arg 0)
  | Prog.Upscale { target_scale } ->
      Format.fprintf fmt "%%%d = upscale %s, %h" o.id (arg 0) target_scale
  | Prog.Downscale { waterline } ->
      Format.fprintf fmt "%%%d = downscale %s, %h" o.id (arg 0) waterline);
  (match o.ty with
  | Types.Free -> ()
  | ty -> Format.fprintf fmt " : %a" Types.pp ty);
  match o.prov with
  | Some p when provenance ->
      Format.fprintf fmt "  # !from %s" (Prog.provenance_to_string p)
  | _ -> ()

let pp ?(provenance = false) fmt (p : Prog.t) =
  Format.fprintf fmt "func %s(" p.name;
  List.iteri
    (fun i v ->
      match (Prog.op p v).kind with
      | Prog.Input { name } ->
          Format.fprintf fmt "%s%%%d: cipher \"%s\"" (if i = 0 then "" else ", ") v name
      | _ -> assert false)
    p.inputs;
  Format.fprintf fmt ") slots=%d {@\n" p.slot_count;
  Prog.iter
    (fun o ->
      match o.kind with
      | Prog.Input _ -> ()
      | _ -> Format.fprintf fmt "  %a@\n" (pp_op ~provenance) o)
    p;
  Format.fprintf fmt "  return %s@\n}@\n"
    (String.concat ", " (List.map (Printf.sprintf "%%%d") p.outputs))

let to_string ?(provenance = false) p = Format.asprintf "%a" (pp ~provenance) p
