type config = { sf : float; waterline : float; max_level : int option; max_log_q : float }

let config ?max_level ?(max_log_q = infinity) ~sf ~waterline () =
  if sf <= 0. then invalid_arg "Typing.config: sf must be positive";
  if waterline <= 0. then invalid_arg "Typing.config: waterline must be positive";
  { sf; waterline; max_level; max_log_q }

let eps = 1e-6

(* Remaining log2 modulus after [level] primes have been dropped. The primes
   dropped first are rescaling primes of sf bits each. *)
let remaining_log_q cfg level = cfg.max_log_q -. (float_of_int level *. cfg.sf)

let errf = Diagnostic.errf

let scaled_pair name a b =
  match (Types.scaled_of a, Types.scaled_of b) with
  | Some x, Some y -> Ok (x, y)
  | _ ->
      errf ~code:Diagnostic.Operand_kind
        ~hint:"wrap the free operand in an encode at the consumer's scale and level" "%s%s" name
        ": operands must be scaled (encode free operands first)"

let cipherness a b =
  if Types.is_cipher a || Types.is_cipher b then fun s -> Types.Cipher s else fun s -> Types.Plain s

let check_level_bound cfg name level =
  match cfg.max_level with
  | Some m when level > m ->
      errf ~code:Diagnostic.Level_exceeded
        ~hint:"the program consumes more rescaling primes than the parameter set provides; raise max_level or shorten the multiplication chain"
        "%s: level %d exceeds maximum %d" name level m
  | Some _ | None -> Ok ()

let check_c1 cfg name (s : Types.scaled) =
  if s.scale > remaining_log_q cfg s.level +. eps then
    errf ~code:Diagnostic.Scale_overflow
      ~hint:"insert a rescale on an operand so the scale drops before this point"
      "%s: scale 2^%.2f overflows the 2^%.2f modulus remaining at level %d (C1)" name s.scale
      (remaining_log_q cfg s.level) s.level
  else Ok ()

let ( let* ) = Result.bind

let scaled_result cfg name mk (s : Types.scaled) =
  let* () = check_level_bound cfg name s.level in
  let* () = check_c1 cfg name s in
  Ok (mk s)

let infer cfg kind (args : Types.t array) =
  match (kind, args) with
  | Prog.Input _, [||] -> Ok (Types.Cipher { scale = cfg.waterline; level = 0 })
  | Prog.Const _, [||] -> Ok Types.Free
  | Prog.Encode { scale; level }, [| Types.Free |] ->
      if scale +. eps < cfg.waterline then
        errf ~code:Diagnostic.Below_waterline
          ~hint:"encode at the waterline scale or above" "encode: scale 2^%.2f below the waterline 2^%.2f (C2)"
          scale cfg.waterline
      else scaled_result cfg "encode" (fun s -> Types.Plain s) { scale; level }
  | Prog.Encode _, [| _ |] ->
      errf ~code:Diagnostic.Operand_kind ~hint:"encode applies to const/free values only"
        "encode: operand must be free"
  | Prog.Add, [| a; b |] | Prog.Sub, [| a; b |] ->
      let name = Prog.kind_name kind in
      let* x, y = scaled_pair name a b in
      if x.level <> y.level then
        errf ~code:Diagnostic.Level_mismatch
          ~hint:"insert modswitch on the shallower operand to equalize levels"
          "%s: operand levels %d and %d differ (C3)" name x.level y.level
      else if not (Types.scale_close x.scale y.scale) then
        errf ~code:Diagnostic.Scale_mismatch
          ~hint:"rescale or upscale one operand so both scales match"
          "%s: operand scales 2^%.2f and 2^%.2f differ (C3)" name x.scale y.scale
      else scaled_result cfg name (cipherness a b) x
  | Prog.Mul, [| a; b |] ->
      let* x, y = scaled_pair "mul" a b in
      if x.level <> y.level then
        errf ~code:Diagnostic.Level_mismatch
          ~hint:"insert modswitch on the shallower operand to equalize levels"
          "mul: operand levels %d and %d differ (C3)" x.level y.level
      else
        scaled_result cfg "mul" (cipherness a b) { scale = x.scale +. y.scale; level = x.level }
  | Prog.Negate, [| a |] | (Prog.Rotate _, [| a |]) -> (
      match Types.scaled_of a with
      | None ->
          errf ~code:Diagnostic.Operand_kind
            ~hint:"wrap the free operand in an encode at the consumer's scale and level" "%s%s"
            (Prog.kind_name kind) ": operand must be scaled"
      | Some s ->
          scaled_result cfg (Prog.kind_name kind)
            (fun s -> if Types.is_cipher a then Types.Cipher s else Types.Plain s)
            s)
  | Prog.Rescale, [| a |] -> (
      match a with
      | Types.Cipher s ->
          let scale = s.scale -. cfg.sf in
          if scale +. eps < cfg.waterline then
            errf ~code:Diagnostic.Below_waterline
              ~hint:"use downscale (which lands exactly on the waterline) instead of rescale here"
              "rescale: result scale 2^%.2f below the waterline 2^%.2f (C2)" scale cfg.waterline
          else scaled_result cfg "rescale" (fun s -> Types.Cipher s) { scale; level = s.level + 1 }
      | Types.Free | Types.Plain _ ->
          errf ~code:Diagnostic.Operand_kind ~hint:"rescale applies to ciphertexts only"
            "rescale: operand must be a ciphertext")
  | Prog.Modswitch, [| a |] -> (
      match Types.scaled_of a with
      | None ->
          errf ~code:Diagnostic.Operand_kind
            ~hint:"wrap the free operand in an encode at the consumer's scale and level"
            "modswitch: operand must be scaled"
      | Some s ->
          scaled_result cfg "modswitch"
            (fun s -> if Types.is_cipher a then Types.Cipher s else Types.Plain s)
            { s with level = s.level + 1 })
  | Prog.Upscale { target_scale }, [| a |] -> (
      match Types.scaled_of a with
      | None ->
          errf ~code:Diagnostic.Operand_kind
            ~hint:"wrap the free operand in an encode at the consumer's scale and level"
            "upscale: operand must be scaled"
      | Some s ->
          if target_scale +. eps < s.scale then
            errf ~code:Diagnostic.Bad_upscale ~hint:"upscale can only raise a scale; use rescale to lower it"
              "upscale: target 2^%.2f below current scale 2^%.2f" target_scale s.scale
          else
            scaled_result cfg "upscale"
              (fun s -> if Types.is_cipher a then Types.Cipher s else Types.Plain s)
              { s with scale = target_scale })
  | Prog.Downscale { waterline }, [| a |] -> (
      match a with
      | Types.Cipher s ->
          if not (Types.scale_close waterline cfg.waterline) then
            errf ~code:Diagnostic.Bad_downscale
              ~hint:"re-emit the downscale with the configured waterline attribute"
              "downscale: attribute disagrees with the configured waterline"
          else if s.scale <= cfg.waterline +. eps then
            errf ~code:Diagnostic.Redundant_op ~hint:"replace this downscale with a modswitch"
              "downscale: scale 2^%.2f is already at the waterline (use modswitch)" s.scale
          else if s.scale -. cfg.sf +. eps >= cfg.waterline then
            errf ~code:Diagnostic.Redundant_op ~hint:"replace this downscale with a rescale"
              "downscale: rescale is applicable at scale 2^%.2f (use rescale)" s.scale
          else
            (* peak scale during the upscale-to-(sf + waterline) implementation
               counts toward C1 at the operand's level *)
            let* () = check_c1 cfg "downscale (peak)" { s with scale = cfg.sf +. cfg.waterline } in
            scaled_result cfg "downscale"
              (fun s -> Types.Cipher s)
              { scale = cfg.waterline; level = s.level + 1 }
      | Types.Free | Types.Plain _ ->
          errf ~code:Diagnostic.Operand_kind ~hint:"downscale applies to ciphertexts only"
            "downscale: operand must be a ciphertext")
  | _ ->
      errf ~code:Diagnostic.Arity "%s%s" (Prog.kind_name kind) ": wrong operand count"

let check cfg (p : Prog.t) =
  let n = Prog.num_ops p in
  let tys = Array.make n Types.Free in
  let rec walk i =
    if i >= n then Ok ()
    else
      let o = Prog.op p i in
      let arg_tys = Array.map (fun a -> tys.(a)) o.Prog.args in
      match infer cfg o.Prog.kind arg_tys with
      | Error d ->
          Error (Diagnostic.at o { d with Diagnostic.operand_types = Array.to_list arg_tys })
      | Ok ty ->
          tys.(i) <- ty;
          o.Prog.ty <- ty;
          walk (i + 1)
  in
  let* () = walk 0 in
  let* () =
    List.fold_left
      (fun acc v ->
        let* () = acc in
        if Types.is_cipher tys.(v) then Ok ()
        else
          Error
            (Diagnostic.at (Prog.op p v)
               (Diagnostic.v ~code:Diagnostic.Output_not_cipher
                  ~hint:"every returned value must be a ciphertext; check the output list"
                  (Printf.sprintf "output %d is not a ciphertext" v))))
      (Ok ()) p.Prog.outputs
  in
  Ok tys

let check_exn cfg p =
  match check cfg p with
  | Ok tys -> tys
  | Error d -> invalid_arg ("Typing.check: " ^ Diagnostic.to_string d)
