(** Textual form of HECATE IR programs.

    Example:
    {v
    func main(%0: cipher, %1: cipher) slots=4096 {
      %2 = mul %0, %1 : cipher<40,0>
      %3 = rescale %2 : cipher<20,1>
      return %3
    }
    v}

    Type annotations are printed when known; {!Parser.parse} accepts and
    ignores them (types are recomputed by the checker).

    With [~provenance:true], each op with recorded provenance gets a
    trailing [# !from matvec 4x4 > mul] comment; {!Parser.parse} reads these
    back onto the op, so provenance round-trips. The default is off, keeping
    output byte-identical to the pre-provenance printer (golden pins, fuzz
    reproducers). *)

val pp : ?provenance:bool -> Format.formatter -> Prog.t -> unit
val to_string : ?provenance:bool -> Prog.t -> string
