exception Parse_error of { line : int; message : string }

type token =
  | Ident of string
  | Value of int (* %N *)
  | Number of float
  | Int of int
  | Str of string
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Equals
  | Colon
  | Lt
  | Gt
  | Eof

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable pending_prov : string option;
      (* payload of the last "# !from ..." comment crossed, awaiting
         attachment to the op whose line it trailed *)
}

let error lx msg = raise (Parse_error { line = lx.line; message = msg })

let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'

let is_number_char c =
  is_digit c || c = '.' || c = '-' || c = '+' || c = 'x' || c = 'p' || c = 'e' || c = 'E'
  || (c >= 'a' && c <= 'f')
  || (c >= 'A' && c <= 'F')

let rec skip_ws lx =
  if lx.pos < String.length lx.src then
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
        lx.pos <- lx.pos + 1;
        skip_ws lx
    | '\n' ->
        lx.pos <- lx.pos + 1;
        lx.line <- lx.line + 1;
        skip_ws lx
    | '#' ->
        (* comment to end of line; "# !from ..." carries provenance *)
        let start = lx.pos + 1 in
        while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        let comment = String.trim (String.sub lx.src start (lx.pos - start)) in
        let tag = "!from " in
        if String.length comment > String.length tag
           && String.sub comment 0 (String.length tag) = tag
        then
          lx.pending_prov <-
            Some (String.sub comment (String.length tag) (String.length comment - String.length tag));
        skip_ws lx
    | _ -> ()

let lex_while lx pred =
  let start = lx.pos in
  while lx.pos < String.length lx.src && pred lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done;
  String.sub lx.src start (lx.pos - start)

let next_token lx =
  skip_ws lx;
  if lx.pos >= String.length lx.src then Eof
  else
    let c = lx.src.[lx.pos] in
    match c with
    | '(' -> lx.pos <- lx.pos + 1; Lparen
    | ')' -> lx.pos <- lx.pos + 1; Rparen
    | '{' -> lx.pos <- lx.pos + 1; Lbrace
    | '}' -> lx.pos <- lx.pos + 1; Rbrace
    | '[' -> lx.pos <- lx.pos + 1; Lbracket
    | ']' -> lx.pos <- lx.pos + 1; Rbracket
    | ',' -> lx.pos <- lx.pos + 1; Comma
    | '=' -> lx.pos <- lx.pos + 1; Equals
    | ':' -> lx.pos <- lx.pos + 1; Colon
    | '<' -> lx.pos <- lx.pos + 1; Lt
    | '>' -> lx.pos <- lx.pos + 1; Gt
    | '%' ->
        lx.pos <- lx.pos + 1;
        let digits = lex_while lx is_digit in
        if digits = "" then error lx "expected value id after '%'" else Value (int_of_string digits)
    | '"' ->
        lx.pos <- lx.pos + 1;
        let s = lex_while lx (fun c -> c <> '"') in
        if lx.pos >= String.length lx.src then error lx "unterminated string";
        lx.pos <- lx.pos + 1;
        Str s
    | c when is_digit c || c = '-' || c = '+' ->
        let s = lex_while lx is_number_char in
        (match int_of_string_opt s with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt s with
            | Some f -> Number f
            | None -> error lx (Printf.sprintf "bad number %S" s)))
    | c when is_ident_char c -> Ident (lex_while lx is_ident_char)
    | c -> error lx (Printf.sprintf "unexpected character %C" c)

type parser_state = { lx : lexer; mutable tok : token }

let advance st = st.tok <- next_token st.lx

let expect st tok msg =
  if st.tok = tok then advance st else error st.lx msg

let expect_ident st name =
  match st.tok with
  | Ident s when s = name -> advance st
  | _ -> error st.lx (Printf.sprintf "expected %S" name)

let parse_ident st =
  match st.tok with
  | Ident s -> advance st; s
  | _ -> error st.lx "expected identifier"

let parse_int st =
  match st.tok with
  | Int i -> advance st; i
  | _ -> error st.lx "expected integer"

let parse_float st =
  match st.tok with
  | Int i -> advance st; float_of_int i
  | Number f -> advance st; f
  | _ -> error st.lx "expected number"

let parse_value st =
  match st.tok with
  | Value v -> advance st; v
  | _ -> error st.lx "expected value reference"

(* Consume and discard a printed type annotation: ": free" or
   ": cipher<20,1>". *)
let skip_type_annotation st =
  if st.tok = Colon then begin
    advance st;
    ignore (parse_ident st);
    if st.tok = Lt then begin
      while st.tok <> Gt && st.tok <> Eof do
        advance st
      done;
      expect st Gt "expected '>' closing type annotation"
    end
  end

let parse_key_eq_number st key =
  expect_ident st key;
  expect st Equals (Printf.sprintf "expected '=' after %s" key)

let parse prog_text =
  let lx = { src = prog_text; pos = 0; line = 1; pending_prov = None } in
  let st = { lx; tok = Eof } in
  advance st;
  expect_ident st "func";
  let name = parse_ident st in
  expect st Lparen "expected '('";
  (* inputs: %N: cipher "name" *)
  let inputs = ref [] in
  let rec parse_inputs () =
    match st.tok with
    | Rparen -> advance st
    | Value v ->
        advance st;
        expect st Colon "expected ':' in argument";
        expect_ident st "cipher";
        let arg_name = match st.tok with Str s -> advance st; s | _ -> Printf.sprintf "arg%d" v in
        inputs := (v, arg_name) :: !inputs;
        (match st.tok with Comma -> advance st; parse_inputs () | _ -> parse_inputs ())
    | _ -> error lx "malformed argument list"
  in
  parse_inputs ();
  parse_key_eq_number st "slots";
  let slot_count = parse_int st in
  expect st Lbrace "expected '{'";
  (* any provenance comment crossed so far trailed the header, not an op *)
  lx.pending_prov <- None;
  (* body *)
  let remap = Hashtbl.create 64 in
  let ops = ref [] in
  let count = ref 0 in
  let emit old_id kind args =
    let id = !count in
    incr count;
    Hashtbl.replace remap old_id id;
    ops := { Prog.id; kind; args; ty = Types.Free; prov = None } :: !ops
  in
  let lookup v =
    match Hashtbl.find_opt remap v with
    | Some id -> id
    | None -> error lx (Printf.sprintf "use of undefined value %%%d" v)
  in
  List.iter
    (fun (old_id, arg_name) -> emit old_id (Prog.Input { name = arg_name }) [||])
    (List.rev !inputs);
  let outputs = ref [] in
  let rec parse_body () =
    match st.tok with
    | Rbrace -> advance st
    | Ident "return" ->
        advance st;
        let rec collect () =
          outputs := lookup (parse_value st) :: !outputs;
          match st.tok with
          | Comma -> advance st; collect ()
          | _ -> ()
        in
        collect ();
        parse_body ()
    | Value old_id ->
        advance st;
        expect st Equals "expected '='";
        let opname = parse_ident st in
        (match opname with
        | "input" ->
            let n = (match st.tok with Str s -> advance st; s | _ -> error lx "expected name") in
            emit old_id (Prog.Input { name = n }) [||]
        | "const" -> (
            match st.tok with
            | Lbracket ->
                advance st;
                let vals = ref [] in
                let rec elems () =
                  match st.tok with
                  | Rbracket -> advance st
                  | _ ->
                      vals := parse_float st :: !vals;
                      (match st.tok with Comma -> advance st | _ -> ());
                      elems ()
                in
                elems ();
                emit old_id (Prog.Const { value = Prog.Vector (Array.of_list (List.rev !vals)) }) [||]
            | _ -> emit old_id (Prog.Const { value = Prog.Scalar (parse_float st) }) [||])
        | "encode" ->
            let a = lookup (parse_value st) in
            expect st Comma "expected ','";
            parse_key_eq_number st "scale";
            let scale = parse_float st in
            expect st Comma "expected ','";
            parse_key_eq_number st "level";
            let level = parse_int st in
            emit old_id (Prog.Encode { scale; level }) [| a |]
        | "add" | "sub" | "mul" ->
            let a = lookup (parse_value st) in
            expect st Comma "expected ','";
            let b = lookup (parse_value st) in
            let kind =
              match opname with "add" -> Prog.Add | "sub" -> Prog.Sub | _ -> Prog.Mul
            in
            emit old_id kind [| a; b |]
        | "negate" -> emit old_id Prog.Negate [| lookup (parse_value st) |]
        | "rotate" ->
            let a = lookup (parse_value st) in
            expect st Comma "expected ','";
            let amount = parse_int st in
            emit old_id (Prog.Rotate { amount }) [| a |]
        | "rescale" -> emit old_id Prog.Rescale [| lookup (parse_value st) |]
        | "modswitch" -> emit old_id Prog.Modswitch [| lookup (parse_value st) |]
        | "upscale" ->
            let a = lookup (parse_value st) in
            expect st Comma "expected ','";
            emit old_id (Prog.Upscale { target_scale = parse_float st }) [| a |]
        | "downscale" ->
            let a = lookup (parse_value st) in
            expect st Comma "expected ','";
            emit old_id (Prog.Downscale { waterline = parse_float st }) [| a |]
        | other -> error lx (Printf.sprintf "unknown operation %S" other));
        skip_type_annotation st;
        (* the lookahead that ended this op's line consumed its trailing
           comment, if any; attach it to the op just emitted *)
        (match (lx.pending_prov, !ops) with
        | Some s, o :: _ -> o.Prog.prov <- Prog.provenance_of_string s
        | _ -> ());
        lx.pending_prov <- None;
        parse_body ()
    | Eof -> error lx "unexpected end of input (missing '}')"
    | _ -> error lx "unexpected token in body"
  in
  parse_body ();
  let input_ids =
    List.rev_map (fun (old_id, _) -> Hashtbl.find remap old_id) !inputs
  in
  let p =
    {
      Prog.name;
      slot_count;
      body = Array.of_list (List.rev !ops);
      inputs = input_ids;
      outputs = List.rev !outputs;
    }
  in
  match Prog.validate p with
  | Ok () -> p
  | Error msg -> error lx ("invalid program: " ^ msg)

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse content
