(** MLIR-style pass management for HECATE IR.

    The registry names every [Prog.t -> Prog.t] rewrite; pipelines compose
    registered passes with sequencing and a [fixpoint(...)] combinator; a
    textual spec syntax round-trips through {!parse}/{!to_string}; and an
    instrumentation layer records per-pass wall time and op-count deltas,
    optionally dumps IR after named passes, and re-verifies the program
    between passes — structurally ({!Prog.validate}) and, on request,
    against the scale type system ({!Typing.check}) — naming the offending
    pass when a check fails.

    Spec grammar (whitespace-insensitive):
    {v
      pipeline ::= item ("," item)*
      item     ::= pass-name | "fixpoint" "(" pipeline ")"
    v}
    e.g. ["cse,constant-fold,fixpoint(fold-rotations,dce)"]. Pass names are
    resolved against the registry at parse time; unknown names are rejected
    with the list of registered passes.

    The built-in passes of {!Passes} are pre-registered under kebab-case
    names: [cse], [dce], [constant-fold], [fold-rotations],
    [early-modswitch]. *)

type pass = {
  name : string;
  description : string;
  run : Prog.t -> Prog.t;
}

exception Pass_failed of { pass : string; reason : string }
(** Raised when a pass (or a verifier running after it) fails; [pass] names
    the offending pass. *)

val register : ?description:string -> string -> (Prog.t -> Prog.t) -> unit
(** [register name run] adds a pass to the global registry.
    @raise Invalid_argument if [name] is already registered or is not a
    valid spec identifier (lowercase alphanumerics and dashes). *)

val find : string -> pass option
val registered : unit -> pass list
(** All registered passes, sorted by name. *)

(** {1 Pipelines} *)

type pipeline =
  | Pass of string  (** a registered pass, by name *)
  | Seq of pipeline list
  | Fixpoint of pipeline
      (** repeat the body until the program stops changing
          (structurally, per {!Prog.equal}); bounded at 64 iterations *)

val parse : string -> (pipeline, string) result
val parse_exn : string -> pipeline
(** @raise Invalid_argument on a malformed spec or unknown pass name. *)

val to_string : pipeline -> string
(** Canonical spec text; [parse] of the result yields an equivalent
    pipeline. *)

(** {1 Instrumentation} *)

type timing = {
  pass : string;
  runs : int;  (** number of executions (fixpoints re-run their body) *)
  seconds : float;  (** total wall time across runs *)
  ops_delta : int;  (** net op-count change across runs (negative = shrank) *)
}

type stats
(** Mutable, domain-safe accumulator of per-pass timings: the explorer
    finalizes candidate plans from worker domains, all charging the same
    accumulator. *)

val create_stats : unit -> stats
val timings : stats -> timing list
(** Snapshot, sorted by descending total wall time. *)

val pp_timings : Format.formatter -> timing list -> unit
(** Render as the [--timing] table: name, runs, seconds, op delta. *)

type dump_selector = No_dump | Dump_all | Dump_passes of string list

type instrumentation = {
  verify : bool;  (** run {!Prog.validate} after every pass *)
  typecheck : Typing.config option;
      (** also run {!Typing.check} after every pass (only meaningful on
          scale-managed programs, i.e. during finalization) *)
  dump_after : dump_selector;
  dump : pass:string -> Prog.t -> unit;  (** sink for [dump_after] *)
}

val instrumentation :
  ?verify:bool ->
  ?typecheck:Typing.config ->
  ?dump_after:dump_selector ->
  ?dump:(pass:string -> Prog.t -> unit) ->
  unit ->
  instrumentation
(** Defaults: [verify] true, no typecheck, no dumps, [dump] prints the IR
    to stdout under an [; IR after <pass>] header. *)

(** {1 Running} *)

val run : ?instr:instrumentation -> ?stats:stats -> pipeline -> Prog.t -> Prog.t
(** Execute a pipeline. Without [instr], passes run bare (no verification,
    no dumps); with it, every pass execution is timed into [stats] (when
    given) and followed by the configured verifiers.
    @raise Pass_failed naming the offending pass when a pass raises or a
    verifier rejects its output, and on unknown pass names or a diverging
    [Fixpoint]. *)

(** {1 Standard pipelines} *)

val cleanup : pipeline
(** The frontend cleanup pipeline applied before scale management:
    ["cse,constant-fold,fixpoint(fold-rotations,dce)"]. *)

val finalize : early_modswitch:bool -> pipeline
(** The post-codegen finalization pipeline, run to fixpoint:
    ["fixpoint(cse,early-modswitch,cse,constant-fold,dce)"] (without the
    [early-modswitch] element when disabled). *)

val default_pipeline : Prog.t -> Prog.t
(** [run cleanup] with no instrumentation — the replacement for the old
    [Passes.default_pipeline]. *)
