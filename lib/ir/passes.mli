(** Generic IR cleanup passes.

    All passes preserve program semantics and return a fresh program (the
    input is never mutated structurally). Types are not recomputed; run
    {!Typing.check} afterwards if needed.

    These are the raw rewrite functions. They are registered with
    {!Pass_manager} under kebab-case names ([cse], [dce], [constant-fold],
    [fold-rotations], [early-modswitch]); compose them through pipelines
    there — e.g. the standard cleanup pipeline
    ["cse,constant-fold,fixpoint(fold-rotations,dce)"] is
    {!Pass_manager.cleanup} (formerly [default_pipeline] here, whose doc
    had drifted: it claimed "cse, constant_fold, dce" but also ran
    [fold_rotations]). *)

val dce : Prog.t -> Prog.t
(** Remove operations whose value never reaches an output. Input ops are
    kept (they are part of the signature). *)

val cse : Prog.t -> Prog.t
(** Common-subexpression elimination by forward value numbering: operations
    with identical kind and (already-numbered) operands collapse. *)

val constant_fold : Prog.t -> Prog.t
(** Fold homomorphic operations whose operands are all constants, evaluating
    element-wise over the slot vector. *)

val fold_rotations : Prog.t -> Prog.t
(** Collapse chained rotations: [rotate (rotate x a) b] with a single use
    becomes [rotate x (a+b)] (dropping it entirely when the combined amount
    is a multiple of the slot count), and [rotate x 0] becomes [x]. Each
    rotation costs a key switch, so chains are worth one pass. *)

val fold_plain_muls : Prog.t -> Prog.t
(** Fuse nested multiplications by constants: [mul (mul x c1) c2] with
    [c1], [c2] constant operands becomes [mul x (c1 * c2)] with the product
    folded element-wise at compile time. The batching lowering emits exactly
    this shape — a coefficient multiply wrapped by a slot mask — and each
    fusion saves one ciphertext-plaintext multiply and one level of
    multiplicative depth. Operates on unmanaged IR (constants as direct
    operands); each application shortens a chain by one link, so run it
    under [fixpoint] to flatten longer chains. *)

val early_modswitch : Prog.t -> Prog.t
(** EVA's early-modswitch optimization: a [modswitch] applied to the single
    use of an eligible operation is absorbed into that operation's operands
    (or its attribute, for [encode]), so the operation itself executes at
    the higher — cheaper — level. Applied transitively: the backward
    absorption sweep is iterated internally until no modswitch can move
    (each sweep pushes a modswitch one definition earlier; the iteration
    count is bounded by the program's dataflow depth), so the result is
    idempotent and an enclosing [fixpoint] converges in O(1) iterations
    regardless of program depth. *)
