(** Typing rules for scale-managed HECATE IR (paper §IV-B, Eq. 1-6).

    The checker enforces the RNS-CKKS constraints:
    - C1: every scale stays below the modulus remaining at its level
      (checked when [max_log_q] is supplied);
    - C2: rescaling and downscaling never push a ciphertext scale below the
      waterline;
    - C3: binary operations require equal operand levels, and additions
      equal operand scales.

    Scales are in log2. *)

type config = {
  sf : float; (** log2 of the rescaling factor [S_f] (the rescale prime size) *)
  waterline : float; (** log2 of the waterline [S_w] *)
  max_level : int option; (** number of rescaling primes available, if fixed *)
  max_log_q : float; (** total log2 ciphertext modulus for C1; [infinity] to skip *)
}

val config : ?max_level:int -> ?max_log_q:float -> sf:float -> waterline:float -> unit -> config

val infer : config -> Prog.kind -> Types.t array -> (Types.t, Diagnostic.t) result
(** Result type of one operation from its operand types. Error diagnostics
    carry a {!Diagnostic.code} and a suggested fix but no op id (the rule
    does not know which op it is typing) — {!check} fills that in. *)

val check : config -> Prog.t -> (Types.t array, Diagnostic.t) result
(** Type the whole program (storing types on the ops as a side effect) and
    verify every constraint, including that outputs are ciphertexts. Returns
    the type of every value. Error diagnostics name the offending op, its
    operand types, and its surface provenance; [Diagnostic.to_string]
    reproduces the pre-structured error strings exactly. *)

val check_exn : config -> Prog.t -> Types.t array
(** @raise Invalid_argument with the legacy verifier message
    ([Diagnostic.to_string] of the diagnostic) on failure. *)
