(** HECATE IR programs (paper §IV-A, Fig. 4).

    A program is a single function over packed vectors: an SSA DAG of
    operations in topological order. Each operation defines exactly one
    value, identified by its index-independent integer id. Homomorphic
    operations ([add], [sub], [mul], [negate], [rotate], [const]) mirror the
    plaintext semantics; opaque operations ([rescale], [modswitch],
    [upscale], [downscale], [encode]) only manage scale and level. *)

type value = int
(** Id of the operation defining the value. *)

type const_value = Scalar of float | Vector of float array

type kind =
  | Input of { name : string }
  | Const of { value : const_value }
  | Encode of { scale : float; level : int }
      (** Encode a free operand as a plaintext at the given scale/level. *)
  | Add
  | Sub
  | Mul
  | Negate
  | Rotate of { amount : int } (** positive amounts rotate slots left *)
  | Rescale
  | Modswitch
  | Upscale of { target_scale : float } (** absolute target scale, log2 *)
  | Downscale of { waterline : float }

type provenance = { label : string; context : string list }
(** Where an operation came from in the surface program: [label] names the
    surface construct that emitted it (e.g. ["mul"], ["rescale (inferred)"]),
    [context] is the enclosing combinator chain, outermost first (e.g.
    [["matvec 4x4"]]). Metadata only — ignored by {!equal} and every pass. *)

val provenance_to_string : provenance -> string
(** [context] then [label], joined with [" > "]. *)

val provenance_of_string : string -> provenance option
(** Inverse of {!provenance_to_string}; [None] on an all-blank string. *)

type op = {
  id : value;
  kind : kind;
  args : value array;
  mutable ty : Types.t;
  mutable prov : provenance option;
}

type t = {
  name : string;
  slot_count : int;
  body : op array; (** topological order; [body.(i).id = i] *)
  inputs : value list;
  outputs : value list;
}

val op : t -> value -> op
(** @raise Invalid_argument on out-of-range ids. *)

val num_ops : t -> int
val iter : (op -> unit) -> t -> unit
val validate : t -> (unit, string) result
(** Structural well-formedness: ids are dense and match indices, operands
    precede uses (topological order), arities are correct, inputs/outputs
    are in range, and the input list names every [input] op exactly once. *)

val equal : t -> t -> bool
(** Structural equality: same name, slot count, operations (id, kind,
    operands), inputs and outputs. Types ([ty]) are ignored — they are
    mutable annotations recomputed by {!Typing.check}. Used by the pass
    manager's fixpoint combinator to detect convergence. *)

val use_counts : t -> int array
(** Number of uses of each value (outputs count as one use each). *)

val users : t -> value list array
(** For each value, ids of the operations that consume it (in order). *)

val is_homomorphic : kind -> bool
(** True for operations with a plaintext counterpart; false for the opaque
    scale-management operations. *)

val kind_name : kind -> string

val canonicalize : t -> t
(** Alpha-normal form: ops renumbered in a deterministic DFS post-order
    from the outputs (operands left-to-right), derived ops unreachable
    from the outputs dropped, the function name and input names replaced
    by positional placeholders ([$0], [$1], ...), provenance and type
    annotations stripped. Declared-but-unused inputs are kept (they shape
    the calling convention). Two programs that differ only in op order,
    dead derived code, naming or metadata canonicalize to {!equal}
    programs. The result is a valid program ({!validate} holds). *)

val canonical_ids : t -> int array
(** The numbering {!canonicalize} assigns: element [v] is the canonical id
    of op [v], or [-1] for derived ops unreachable from the outputs. Two
    alpha-equivalent programs map corresponding ops to equal canonical
    ids — the property the plan cache uses to transport exploration plans
    between structurally matching programs. *)

val fingerprint : t -> string
(** Content hash (hex digest) of {!canonicalize}d structure — the key the
    plan cache addresses compiled artifacts by. Stable across
    print/parse round-trips (with or without provenance or type
    annotations) and across alpha-renaming; floats are hashed by their
    exact binary representation. *)

val structural_digest : t -> string
(** Hash of the canonical {e kind skeleton} only: op kinds and the operand
    graph, with constants, rotation amounts and scales elided. Strictly
    coarser than {!fingerprint} (equal fingerprints imply equal digests) —
    the "structurally similar" bucket warm-started exploration draws plan
    seeds from, since colliding programs have isomorphic SMU graphs. *)

(** Mutable builder for constructing programs. *)
module Builder : sig
  type prog = t
  type t

  val create : ?name:string -> slot_count:int -> unit -> t

  val enter_scope : t -> string -> unit
  (** Push a provenance scope label: every op emitted until the matching
      {!leave_scope} records it. The innermost open scope becomes the op's
      provenance [label]; outer scopes form its [context]. With no open
      scope, ops carry no provenance. *)

  val leave_scope : t -> unit
  (** @raise Invalid_argument if no scope is open. *)

  val in_scope : t -> string -> (unit -> 'a) -> 'a
  (** [in_scope b label f] runs [f] inside the scope, closing it even if
      [f] raises. *)

  val current_prov : t -> provenance option
  (** The provenance an op emitted right now would carry ([None] outside
      any scope) — lets surface layers stamp diagnostics with the chain. *)

  val input : t -> string -> value
  val const_scalar : t -> float -> value
  val const_vector : t -> float array -> value
  val add : t -> value -> value -> value
  val sub : t -> value -> value -> value
  val mul : t -> value -> value -> value
  val negate : t -> value -> value
  val rotate : t -> value -> int -> value
  val output : t -> value -> unit
  val finish : t -> prog
  (** @raise Invalid_argument if the program fails {!validate}. *)
end

module Rewriter : sig
  (** Incremental program rewriting: walk an existing program op by op while
      emitting a new one, with the freedom to insert extra operations around
      any use. *)

  type prog = t
  type t

  val create : prog -> t
  val emit : ?prov:provenance -> t -> kind -> value array -> Types.t -> value
  (** Append a new op with explicit type (and optional provenance); returns
      its id in the new program. *)

  val mapped : t -> value -> value
  (** New id standing for an old value. @raise Not_found before it is set. *)

  val set_mapped : t -> old_value:value -> value -> unit
  val ty : t -> value -> Types.t
  (** Type of a value of the {e new} program. *)

  val finish : t -> prog
  (** Rebuilds with the original outputs (remapped).
      @raise Invalid_argument if validation fails. *)
end
