type code =
  | Parse_error
  | Invalid_program
  | Operand_kind
  | Scale_overflow
  | Below_waterline
  | Level_mismatch
  | Scale_mismatch
  | Level_exceeded
  | Bad_upscale
  | Bad_downscale
  | Redundant_op
  | Output_not_cipher
  | Arity
  | Precondition
  | Already_managed
  | Oracle_rejected
  | Internal

let all_codes =
  [
    Parse_error;
    Invalid_program;
    Operand_kind;
    Scale_overflow;
    Below_waterline;
    Level_mismatch;
    Scale_mismatch;
    Level_exceeded;
    Bad_upscale;
    Bad_downscale;
    Redundant_op;
    Output_not_cipher;
    Arity;
    Precondition;
    Already_managed;
    Oracle_rejected;
    Internal;
  ]

let code_name = function
  | Parse_error -> "parse-error"
  | Invalid_program -> "invalid-program"
  | Operand_kind -> "operand-kind"
  | Scale_overflow -> "scale-overflow"
  | Below_waterline -> "below-waterline"
  | Level_mismatch -> "level-mismatch"
  | Scale_mismatch -> "scale-mismatch"
  | Level_exceeded -> "level-exceeded"
  | Bad_upscale -> "bad-upscale"
  | Bad_downscale -> "bad-downscale"
  | Redundant_op -> "redundant-op"
  | Output_not_cipher -> "output-not-cipher"
  | Arity -> "arity"
  | Precondition -> "precondition"
  | Already_managed -> "already-managed"
  | Oracle_rejected -> "oracle-rejected"
  | Internal -> "internal"

let code_of_name s = List.find_opt (fun c -> code_name c = s) all_codes

type t = {
  code : code;
  message : string;
  op : Prog.value option;
  op_kind : string option;
  operand_types : Types.t list;
  provenance : Prog.provenance option;
  hint : string option;
}

let v ?op ?op_kind ?(operand_types = []) ?provenance ?hint ~code message =
  { code; message; op; op_kind; operand_types; provenance; hint }

let errf ?op ?op_kind ?operand_types ?provenance ?hint ~code fmt =
  Printf.ksprintf
    (fun message -> Error (v ?op ?op_kind ?operand_types ?provenance ?hint ~code message))
    fmt

let at (o : Prog.op) d =
  {
    d with
    op = (match d.op with Some _ as v -> v | None -> Some o.Prog.id);
    op_kind = (match d.op_kind with Some _ as v -> v | None -> Some (Prog.kind_name o.Prog.kind));
    provenance = (match d.provenance with Some _ as v -> v | None -> o.Prog.prov);
  }

(* Byte-compatible with the pre-structured checker: "op %d: <message>",
   except diagnostics whose message already locates itself. *)
let to_string d =
  match (d.op, d.code) with
  | Some _, (Output_not_cipher | Parse_error) | None, _ -> d.message
  | Some i, _ -> Printf.sprintf "op %d: %s" i d.message

let pp fmt d =
  Format.fprintf fmt "error[%s]: %s" (code_name d.code) d.message;
  (match d.op with
  | Some i ->
      Format.fprintf fmt "@\n  --> op %%%d" i;
      (match d.op_kind with Some k -> Format.fprintf fmt " (%s)" k | None -> ());
      (match d.operand_types with
      | [] -> ()
      | tys ->
          Format.fprintf fmt " applied to %s"
            (String.concat ", " (List.map (Format.asprintf "%a" Types.pp) tys)))
  | None -> ());
  (match d.provenance with
  | Some p -> Format.fprintf fmt "@\n  from: %s" (Prog.provenance_to_string p)
  | None -> ());
  match d.hint with Some h -> Format.fprintf fmt "@\n  hint: %s" h | None -> ()

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let opt f = function Some x -> f x | None -> "null" in
  let fields =
    [
      ("code", str (code_name d.code));
      ("message", str d.message);
      ("op", opt string_of_int d.op);
      ("op_kind", opt str d.op_kind);
      ( "operand_types",
        Printf.sprintf "[%s]"
          (String.concat ","
             (List.map (fun ty -> str (Format.asprintf "%a" Types.pp ty)) d.operand_types)) );
      ( "provenance",
        opt
          (fun (p : Prog.provenance) ->
            Printf.sprintf "[%s]"
              (String.concat "," (List.map str (p.Prog.context @ [ p.Prog.label ]))))
          d.provenance );
      ("hint", opt str d.hint);
    ]
  in
  Printf.sprintf "{%s}" (String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields))

exception Error of t

let error d = raise (Error d)

let () =
  Printexc.register_printer (function
    | Error d -> Some (Printf.sprintf "Diagnostic.Error(%s: %s)" (code_name d.code) (to_string d))
    | _ -> None)
