type pass = {
  name : string;
  description : string;
  run : Prog.t -> Prog.t;
}

exception Pass_failed of { pass : string; reason : string }

let () =
  Printexc.register_printer (function
    | Pass_failed { pass; reason } ->
        Some (Printf.sprintf "Pass_failed(pass %S: %s)" pass reason)
    | _ -> None)

let failed pass fmt = Printf.ksprintf (fun reason -> raise (Pass_failed { pass; reason })) fmt

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, pass) Hashtbl.t = Hashtbl.create 16

let valid_name s =
  s <> ""
  && String.for_all (function 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false) s
  && s <> "fixpoint"

let register ?(description = "") name run =
  if not (valid_name name) then
    invalid_arg
      (Printf.sprintf
         "Pass_manager.register: %S is not a valid pass name (lowercase alphanumerics and \
          dashes, not \"fixpoint\")"
         name);
  if Hashtbl.mem registry name then
    invalid_arg (Printf.sprintf "Pass_manager.register: pass %S is already registered" name);
  Hashtbl.replace registry name { name; description; run }

let find name = Hashtbl.find_opt registry name

let registered () =
  Hashtbl.fold (fun _ p acc -> p :: acc) registry []
  |> List.sort (fun a b -> compare a.name b.name)

let known_names () = String.concat ", " (List.map (fun p -> p.name) (registered ()))

(* built-in passes *)
let () =
  register "cse" ~description:"common-subexpression elimination by value numbering" Passes.cse;
  register "dce" ~description:"remove operations that never reach an output" Passes.dce;
  register "constant-fold"
    ~description:"evaluate homomorphic operations over all-constant operands" Passes.constant_fold;
  register "fold-rotations"
    ~description:"combine single-use rotation chains; drop full-circle rotations"
    Passes.fold_rotations;
  register "early-modswitch"
    ~description:"absorb a single-use modswitch into its producing operation (EVA)"
    Passes.early_modswitch;
  register "fold-plain-muls"
    ~description:"fuse nested multiplications by constants (batching mask/coefficient chains)"
    Passes.fold_plain_muls

(* ------------------------------------------------------------------ *)
(* Pipeline AST, spec parser and printer                               *)
(* ------------------------------------------------------------------ *)

type pipeline =
  | Pass of string
  | Seq of pipeline list
  | Fixpoint of pipeline

let rec to_string = function
  | Pass name -> name
  | Seq items -> String.concat "," (List.map to_string items)
  | Fixpoint body -> "fixpoint(" ^ to_string body ^ ")"

(* Hand-rolled recursive-descent over a char cursor; the grammar is one
   production deep so no tokenizer is warranted. *)
let parse spec =
  let n = String.length spec in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun s -> raise (Failure s)) fmt in
  let skip_ws () =
    while !pos < n && (spec.[!pos] = ' ' || spec.[!pos] = '\t' || spec.[!pos] = '\n') do
      incr pos
    done
  in
  let ident () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n && (match spec.[!pos] with 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false)
    do
      incr pos
    done;
    if !pos = start then
      error "expected a pass name at position %d%s" start
        (if start < n then Printf.sprintf " (found %C)" spec.[start] else " (end of spec)");
    String.sub spec start (!pos - start)
  in
  let rec pipeline () =
    let first = item () in
    let rec more acc =
      skip_ws ();
      if !pos < n && spec.[!pos] = ',' then begin
        incr pos;
        more (item () :: acc)
      end
      else List.rev acc
    in
    match more [ first ] with [ single ] -> single | items -> Seq items
  and item () =
    let name = ident () in
    skip_ws ();
    if name = "fixpoint" then begin
      if !pos >= n || spec.[!pos] <> '(' then error "expected '(' after fixpoint";
      incr pos;
      let body = pipeline () in
      skip_ws ();
      if !pos >= n || spec.[!pos] <> ')' then error "unclosed fixpoint(...)";
      incr pos;
      Fixpoint body
    end
    else if find name = None then
      error "unknown pass %S (known passes: %s)" name (known_names ())
    else Pass name
  in
  match
    let p = pipeline () in
    skip_ws ();
    if !pos < n then error "trailing input at position %d (%C)" !pos spec.[!pos];
    p
  with
  | p -> Ok p
  | exception Failure msg -> Error (Printf.sprintf "invalid pipeline spec %S: %s" spec msg)

let parse_exn spec =
  match parse spec with Ok p -> p | Error msg -> invalid_arg ("Pass_manager.parse: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type timing = { pass : string; runs : int; seconds : float; ops_delta : int }

type stats = {
  mutex : Mutex.t;
  table : (string, timing) Hashtbl.t;
}

let create_stats () = { mutex = Mutex.create (); table = Hashtbl.create 16 }

let charge stats ~pass ~seconds ~ops_delta =
  Mutex.lock stats.mutex;
  let t =
    match Hashtbl.find_opt stats.table pass with
    | Some t ->
        { t with runs = t.runs + 1; seconds = t.seconds +. seconds;
          ops_delta = t.ops_delta + ops_delta }
    | None -> { pass; runs = 1; seconds; ops_delta }
  in
  Hashtbl.replace stats.table pass t;
  Mutex.unlock stats.mutex

let timings stats =
  Mutex.lock stats.mutex;
  let l = Hashtbl.fold (fun _ t acc -> t :: acc) stats.table [] in
  Mutex.unlock stats.mutex;
  List.sort (fun a b -> compare (b.seconds, a.pass) (a.seconds, b.pass)) l

let pp_timings fmt ts =
  Format.fprintf fmt ";   %-18s %5s %11s %7s@\n" "pass" "runs" "seconds" "ops";
  List.iter
    (fun t ->
      Format.fprintf fmt ";   %-18s %5d %10.6fs %+7d@\n" t.pass t.runs t.seconds t.ops_delta)
    ts

type dump_selector = No_dump | Dump_all | Dump_passes of string list

type instrumentation = {
  verify : bool;
  typecheck : Typing.config option;
  dump_after : dump_selector;
  dump : pass:string -> Prog.t -> unit;
}

let default_dump ~pass p =
  Printf.printf "; IR after %s (%d ops)\n%s" pass (Prog.num_ops p) (Printer.to_string p)

let instrumentation ?(verify = true) ?typecheck ?(dump_after = No_dump) ?(dump = default_dump)
    () =
  { verify; typecheck; dump_after; dump }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let max_fixpoint_iterations = 64

let check_after instr name p =
  if instr.verify then begin
    match Prog.validate p with
    | Ok () -> ()
    | Error msg -> failed name "produced a structurally invalid program: %s" msg
  end;
  (match instr.typecheck with
  | None -> ()
  | Some cfg -> (
      match Typing.check cfg p with
      | Ok _ -> ()
      | Error d -> failed name "produced an ill-typed program: %s" (Diagnostic.to_string d)));
  match instr.dump_after with
  | No_dump -> ()
  | Dump_all -> instr.dump ~pass:name p
  | Dump_passes names -> if List.mem name names then instr.dump ~pass:name p

let run_pass ?instr ?stats { name; run; _ } p =
  let before = Prog.num_ops p in
  let t0 = Unix.gettimeofday () in
  let p' =
    try run p with
    | Pass_failed _ as e -> raise e
    | exn -> failed name "raised %s" (Printexc.to_string exn)
  in
  let seconds = Unix.gettimeofday () -. t0 in
  Option.iter (fun s -> charge s ~pass:name ~seconds ~ops_delta:(Prog.num_ops p' - before)) stats;
  Option.iter (fun i -> check_after i name p') instr;
  p'

let run ?instr ?stats pipeline p =
  let rec go pl p =
    match pl with
    | Pass name -> (
        match find name with
        | Some pass -> run_pass ?instr ?stats pass p
        | None -> failed name "unknown pass (known passes: %s)" (known_names ()))
    | Seq items -> List.fold_left (fun p item -> go item p) p items
    | Fixpoint body ->
        let rec iterate p k =
          if k = 0 then
            failed (to_string pl) "did not converge within %d iterations" max_fixpoint_iterations
          else
            let p' = go body p in
            if Prog.equal p p' then p' else iterate p' (k - 1)
        in
        iterate p max_fixpoint_iterations
  in
  go pipeline p

(* ------------------------------------------------------------------ *)
(* Standard pipelines                                                  *)
(* ------------------------------------------------------------------ *)

let cleanup = parse_exn "cse,constant-fold,fixpoint(fold-rotations,dce)"

let finalize ~early_modswitch =
  if early_modswitch then parse_exn "fixpoint(cse,early-modswitch,cse,constant-fold,dce)"
  else parse_exn "fixpoint(cse,constant-fold,dce)"

let default_pipeline p = run cleanup p
