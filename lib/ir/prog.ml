type value = int
type const_value = Scalar of float | Vector of float array

type kind =
  | Input of { name : string }
  | Const of { value : const_value }
  | Encode of { scale : float; level : int }
  | Add
  | Sub
  | Mul
  | Negate
  | Rotate of { amount : int }
  | Rescale
  | Modswitch
  | Upscale of { target_scale : float }
  | Downscale of { waterline : float }

type provenance = { label : string; context : string list }

let provenance_to_string { label; context } = String.concat " > " (context @ [ label ])

let provenance_of_string s =
  let parts =
    String.split_on_char '>' s
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match List.rev parts with
  | [] -> None
  | label :: rev_context -> Some { label; context = List.rev rev_context }

type op = {
  id : value;
  kind : kind;
  args : value array;
  mutable ty : Types.t;
  mutable prov : provenance option;
}

type t = {
  name : string;
  slot_count : int;
  body : op array;
  inputs : value list;
  outputs : value list;
}

let op p v =
  if v < 0 || v >= Array.length p.body then invalid_arg "Prog.op: value id out of range";
  p.body.(v)

let num_ops p = Array.length p.body
let iter f p = Array.iter f p.body

let arity = function
  | Input _ | Const _ -> 0
  | Encode _ | Negate | Rotate _ | Rescale | Modswitch | Upscale _ | Downscale _ -> 1
  | Add | Sub | Mul -> 2

let kind_name = function
  | Input _ -> "input"
  | Const _ -> "const"
  | Encode _ -> "encode"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Negate -> "negate"
  | Rotate _ -> "rotate"
  | Rescale -> "rescale"
  | Modswitch -> "modswitch"
  | Upscale _ -> "upscale"
  | Downscale _ -> "downscale"

let is_homomorphic = function
  | Input _ | Const _ | Add | Sub | Mul | Negate | Rotate _ -> true
  | Encode _ | Rescale | Modswitch | Upscale _ | Downscale _ -> false

let validate p =
  let n = Array.length p.body in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check i =
    if i >= n then Ok ()
    else
      let o = p.body.(i) in
      if o.id <> i then err "op at index %d has id %d" i o.id
      else if Array.length o.args <> arity o.kind then
        err "op %d (%s): expected %d operands, got %d" i (kind_name o.kind) (arity o.kind)
          (Array.length o.args)
      else if Array.exists (fun a -> a < 0 || a >= i) o.args then
        err "op %d (%s): operand does not precede use" i (kind_name o.kind)
      else check (i + 1)
  in
  match check 0 with
  | Error _ as e -> e
  | Ok () ->
      if List.exists (fun v -> v < 0 || v >= n) p.outputs then Error "output id out of range"
      else if p.outputs = [] then Error "program has no outputs"
      else if
        List.exists
          (fun v -> v < 0 || v >= n || (match p.body.(v).kind with Input _ -> false | _ -> true))
          p.inputs
      then Error "input list does not point at input ops"
      else if List.length (List.sort_uniq compare p.inputs) <> List.length p.inputs then
        Error "input list contains duplicates"
      else begin
        let declared = Array.make n false in
        List.iter (fun v -> declared.(v) <- true) p.inputs;
        let missing = ref None in
        Array.iteri
          (fun i o ->
            match o.kind with
            | Input _ when not declared.(i) && !missing = None -> missing := Some i
            | _ -> ())
          p.body;
        match !missing with
        | Some i -> err "input op %d is not in the input list" i
        | None -> Ok ()
      end

let equal_op (a : op) (b : op) = a.id = b.id && a.kind = b.kind && a.args = b.args

let equal a b =
  a.name = b.name && a.slot_count = b.slot_count
  && Array.length a.body = Array.length b.body
  && Array.for_all2 equal_op a.body b.body
  && a.inputs = b.inputs && a.outputs = b.outputs

let use_counts p =
  let counts = Array.make (Array.length p.body) 0 in
  iter (fun o -> Array.iter (fun a -> counts.(a) <- counts.(a) + 1) o.args) p;
  List.iter (fun v -> counts.(v) <- counts.(v) + 1) p.outputs;
  counts

let users p =
  let u = Array.make (Array.length p.body) [] in
  iter (fun o -> Array.iter (fun a -> u.(a) <- o.id :: u.(a)) o.args) p;
  Array.map List.rev u

(* ------------------------------------------------------------------ *)
(* Canonicalization and fingerprinting                                 *)
(* ------------------------------------------------------------------ *)

(* The canonical form of a program is what the content-addressed plan
   cache keys on: two programs that differ only in details that cannot
   change what the compiler produces must canonicalize identically.
   Normalized away:
     - op ordering: ops are renumbered in a deterministic DFS post-order
       from the outputs (operands visited left-to-right), so any
       topological permutation of the same DAG collides;
     - dead code: ops unreachable from the outputs are dropped (declared
       inputs are kept — they shape the calling convention — but dead
       derived computation cannot affect the artifact);
     - names: the function name and input names are replaced by
       positional placeholders ($0, $1, ... in canonical input order);
     - metadata: provenance and type annotations are stripped (types are
       recomputed by the checker from the structure alone). *)
let canonical_numbering p =
  let n = Array.length p.body in
  let order = Array.make n (-1) in
  let seq = ref [] in
  let next = ref 0 in
  let rec visit v =
    if order.(v) < 0 then begin
      Array.iter visit p.body.(v).args;
      order.(v) <- !next;
      incr next;
      seq := v :: !seq
    end
  in
  List.iter visit p.outputs;
  (* dead declared inputs still exist in the signature: keep them, after
     everything reachable, in declaration order *)
  List.iter visit p.inputs;
  (order, List.rev !seq)

let canonical_ids p = fst (canonical_numbering p)

let canonicalize p =
  let order, canonical_order = canonical_numbering p in
  let new_inputs =
    List.filter_map
      (fun v -> match p.body.(v).kind with Input _ -> Some order.(v) | _ -> None)
      canonical_order
  in
  let input_position = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace input_position v i) new_inputs;
  let body =
    Array.of_list
      (List.map
         (fun v ->
           let o = p.body.(v) in
           let id = order.(v) in
           let kind =
             match o.kind with
             | Input _ -> Input { name = "$" ^ string_of_int (Hashtbl.find input_position id) }
             | k -> k
           in
           { id; kind; args = Array.map (fun a -> order.(a)) o.args; ty = Types.Free; prov = None })
         canonical_order)
  in
  {
    name = "$canon";
    slot_count = p.slot_count;
    body;
    inputs = new_inputs;
    outputs = List.map (fun v -> order.(v)) p.outputs;
  }

(* Byte-serialize a canonical program for hashing. Floats are rendered
   with %h (exact binary representation), so the fingerprint never
   depends on decimal rounding. *)
let serialize_canonical buf p =
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "hecate-ir-v1;slots=%d;ops=%d;" p.slot_count (Array.length p.body);
  Array.iter
    (fun o ->
      (match o.kind with
      | Input { name } -> addf "in(%s)" name
      | Const { value = Scalar x } -> addf "cs(%h)" x
      | Const { value = Vector v } ->
          Buffer.add_string buf "cv(";
          Array.iter (fun x -> addf "%h," x) v;
          Buffer.add_char buf ')'
      | Encode { scale; level } -> addf "enc(%h,%d)" scale level
      | Add -> Buffer.add_string buf "add"
      | Sub -> Buffer.add_string buf "sub"
      | Mul -> Buffer.add_string buf "mul"
      | Negate -> Buffer.add_string buf "neg"
      | Rotate { amount } -> addf "rot(%d)" amount
      | Rescale -> Buffer.add_string buf "rs"
      | Modswitch -> Buffer.add_string buf "ms"
      | Upscale { target_scale } -> addf "up(%h)" target_scale
      | Downscale { waterline } -> addf "down(%h)" waterline);
      Buffer.add_char buf '[';
      Array.iter (fun a -> addf "%d," a) o.args;
      Buffer.add_string buf "];")
    p.body;
  addf "out=";
  List.iter (fun v -> addf "%d," v) p.outputs

let fingerprint p =
  let buf = Buffer.create 1024 in
  serialize_canonical buf (canonicalize p);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* A coarser hash than [fingerprint]: the canonical kind-skeleton with
   every attribute (constants, rotation amounts, scales) elided. Programs
   that differ only in such attributes collide here, which is exactly the
   "structurally similar" bucket the plan corpus warm-starts from — their
   SMU graphs are isomorphic, so a good plan for one is a credible seed
   for the other. *)
let structural_digest p =
  let c = canonicalize p in
  let buf = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "hecate-skel-v1;slots=%d;ops=%d;" c.slot_count (Array.length c.body);
  Array.iter
    (fun o ->
      let tag =
        match o.kind with
        | Input _ -> "in"
        | Const _ -> "c"
        | Encode _ -> "enc"
        | Add -> "add"
        | Sub -> "sub"
        | Mul -> "mul"
        | Negate -> "neg"
        | Rotate _ -> "rot"
        | Rescale -> "rs"
        | Modswitch -> "ms"
        | Upscale _ -> "up"
        | Downscale _ -> "down"
      in
      Buffer.add_string buf tag;
      Buffer.add_char buf '[';
      Array.iter (fun a -> addf "%d," a) o.args;
      Buffer.add_string buf "];")
    c.body;
  addf "out=";
  List.iter (fun v -> addf "%d," v) c.outputs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

module Builder = struct
  type prog = t

  type t = {
    name : string;
    slot_count : int;
    mutable ops : op list; (* reversed *)
    mutable count : int;
    mutable inputs : value list; (* reversed *)
    mutable outputs : value list; (* reversed *)
    mutable scope : string list; (* innermost label first *)
  }

  let create ?(name = "main") ~slot_count () =
    { name; slot_count; ops = []; count = 0; inputs = []; outputs = []; scope = [] }

  let enter_scope b label = b.scope <- label :: b.scope

  let leave_scope b =
    match b.scope with
    | [] -> invalid_arg "Prog.Builder.leave_scope: no scope to leave"
    | _ :: rest -> b.scope <- rest

  let in_scope b label f =
    enter_scope b label;
    Fun.protect ~finally:(fun () -> leave_scope b) f

  let current_prov b =
    match b.scope with
    | [] -> None
    | label :: rest -> Some { label; context = List.rev rest }

  let emit b kind args =
    let id = b.count in
    b.ops <- { id; kind; args; ty = Types.Free; prov = current_prov b } :: b.ops;
    b.count <- id + 1;
    id

  let input b name =
    let id = emit b (Input { name }) [||] in
    b.inputs <- id :: b.inputs;
    id

  let const_scalar b x = emit b (Const { value = Scalar x }) [||]
  let const_vector b v = emit b (Const { value = Vector (Array.copy v) }) [||]
  let add b x y = emit b Add [| x; y |]
  let sub b x y = emit b Sub [| x; y |]
  let mul b x y = emit b Mul [| x; y |]
  let negate b x = emit b Negate [| x |]
  let rotate b x amount = emit b (Rotate { amount }) [| x |]
  let output b v = b.outputs <- v :: b.outputs

  let finish b =
    let p =
      {
        name = b.name;
        slot_count = b.slot_count;
        body = Array.of_list (List.rev b.ops);
        inputs = List.rev b.inputs;
        outputs = List.rev b.outputs;
      }
    in
    match validate p with
    | Ok () -> p
    | Error msg -> invalid_arg ("Prog.Builder.finish: " ^ msg)
end

module Rewriter = struct
  type prog = t

  type t = {
    src : prog;
    mutable ops : op list; (* reversed *)
    mutable count : int;
    mapping : (value, value) Hashtbl.t;
    tys : (value, Types.t) Hashtbl.t;
    mutable new_inputs : value list; (* reversed *)
  }

  let create src =
    {
      src;
      ops = [];
      count = 0;
      mapping = Hashtbl.create 64;
      tys = Hashtbl.create 64;
      new_inputs = [];
    }

  let emit ?prov r kind args ty =
    let id = r.count in
    r.ops <- { id; kind; args; ty; prov } :: r.ops;
    r.count <- id + 1;
    Hashtbl.replace r.tys id ty;
    (match kind with Input _ -> r.new_inputs <- id :: r.new_inputs | _ -> ());
    id

  let mapped r v = Hashtbl.find r.mapping v
  let set_mapped r ~old_value v = Hashtbl.replace r.mapping old_value v

  let ty r v =
    match Hashtbl.find_opt r.tys v with
    | Some t -> t
    | None -> invalid_arg "Prog.Rewriter.ty: unknown value"

  let finish r =
    let p =
      {
        name = r.src.name;
        slot_count = r.src.slot_count;
        body = Array.of_list (List.rev r.ops);
        inputs = List.rev r.new_inputs;
        outputs = List.map (mapped r) r.src.outputs;
      }
    in
    match validate p with
    | Ok () -> p
    | Error msg -> invalid_arg ("Prog.Rewriter.finish: " ^ msg)
end
