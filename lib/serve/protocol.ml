(* Wire schema of the hecated job protocol: one JSON value per line in
   both directions. This module owns the translation between OCaml values
   and lines; the server and client never touch Json.t directly. *)

module Json = Hecate_support.Json
module Driver = Hecate.Driver
module Paramselect = Hecate.Paramselect
module Plancache = Hecate.Plancache
module Explore = Hecate.Explore

type submit = {
  program : string;
  scheme : Driver.scheme;
  sf_bits : int;
  waterline_bits : float;
  max_epochs : int;
  budget_seconds : float option;
  strategy : string option;
  stream : bool;
}

type request =
  | Submit of submit
  | Status of int
  | Cancel of int
  | Stats
  | Shutdown

let scheme_of_string s =
  match String.lowercase_ascii s with
  | "eva" -> Some Driver.Eva
  | "pars" -> Some Driver.Pars
  | "smse" -> Some Driver.Smse
  | "hecate" -> Some Driver.Hecate
  | _ -> None

let parse_request line =
  match Json.parse line with
  | exception Json.Parse_error msg -> Error (Printf.sprintf "malformed request: %s" msg)
  | json -> (
      let str k = Json.to_string (Json.member k json) in
      let flt k = Json.to_float (Json.member k json) in
      let int k = Json.to_int (Json.member k json) in
      let job () =
        match int "job" with
        | Some id -> Ok id
        | None -> Error "missing integer field \"job\""
      in
      match str "op" with
      | None -> Error "missing string field \"op\""
      | Some "submit" -> (
          match str "program" with
          | None -> Error "submit: missing string field \"program\""
          | Some program -> (
              let scheme_field = Option.value ~default:"hecate" (str "scheme") in
              match scheme_of_string scheme_field with
              | None ->
                  Error
                    (Printf.sprintf
                       "submit: unknown scheme %S (expected eva, pars, smse or hecate)"
                       scheme_field)
              | Some scheme -> (
                  match str "strategy" with
                  | Some s when not (Explore.known_strategy s) ->
                      Error
                        (Printf.sprintf
                           "submit: unknown exploration strategy %S (expected %s or %s)" s
                           (String.concat ", " (Explore.strategy_names ()))
                           Explore.portfolio_name)
                  | strategy ->
                      Ok
                        (Submit
                           {
                             program;
                             scheme;
                             sf_bits = Option.value ~default:28 (int "sf_bits");
                             waterline_bits =
                               Option.value ~default:20. (flt "waterline_bits");
                             max_epochs = Option.value ~default:100 (int "max_epochs");
                             budget_seconds = flt "budget_seconds";
                             strategy;
                             stream =
                               Option.value ~default:false
                                 (Json.to_bool (Json.member "stream" json));
                           }))))
      | Some "status" -> Result.map (fun id -> Status id) (job ())
      | Some "cancel" -> Result.map (fun id -> Cancel id) (job ())
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some op -> Error (Printf.sprintf "unknown op %S" op))

let render_submit (s : submit) =
  Json.render
    (Json.Obj
       ([
          ("op", Json.Str "submit");
          ("program", Json.Str s.program);
          ("scheme", Json.Str (String.lowercase_ascii (Driver.scheme_name s.scheme)));
          ("sf_bits", Json.int s.sf_bits);
          ("waterline_bits", Json.Num s.waterline_bits);
          ("max_epochs", Json.int s.max_epochs);
          ("stream", Json.Bool s.stream);
        ]
       @ (match s.budget_seconds with
         | None -> []
         | Some b -> [ ("budget_seconds", Json.Num b) ])
       @ match s.strategy with
         | None -> []
         | Some st -> [ ("strategy", Json.Str st) ]))

let render_request = function
  | Submit s -> render_submit s
  | Status id -> Json.render (Json.Obj [ ("op", Json.Str "status"); ("job", Json.int id) ])
  | Cancel id -> Json.render (Json.Obj [ ("op", Json.Str "cancel"); ("job", Json.int id) ])
  | Stats -> Json.render (Json.Obj [ ("op", Json.Str "stats") ])
  | Shutdown -> Json.render (Json.Obj [ ("op", Json.Str "shutdown") ])

(* ------------------------------------------------------------------ *)
(* Server -> client events                                              *)
(* ------------------------------------------------------------------ *)

let event name fields = Json.render (Json.Obj (("event", Json.Str name) :: fields))
let accepted ~job = event "accepted" [ ("job", Json.int job) ]

let progress ~job ~strategy (t : Explore.epoch_trace) =
  event "progress"
    [
      ("job", Json.int job);
      ("strategy", Json.Str strategy);
      ("epoch", Json.int t.Explore.epoch);
      ("candidates", Json.int t.Explore.candidates);
      ("cache_hits", Json.int t.Explore.cache_hits);
      ("best_cost", Json.Num t.Explore.best_cost);
      ("elapsed_seconds", Json.Num t.Explore.elapsed_seconds);
    ]

let params_json (p : Paramselect.t) =
  Json.Obj
    [
      ("q0_bits", Json.int p.Paramselect.q0_bits);
      ("sf_bits", Json.int p.Paramselect.sf_bits);
      ("chain_levels", Json.int p.Paramselect.chain_levels);
      ("log_q", Json.Num p.Paramselect.log_q);
      ("secure_n", Json.int p.Paramselect.secure_n);
      ("slot_count", Json.int p.Paramselect.slot_count);
    ]

let done_ ~job ~origin ~wall_seconds (e : Plancache.entry) =
  event "done"
    [
      ("job", Json.int job);
      ("origin", Json.Str (Plancache.origin_name origin));
      ("fingerprint", Json.Str e.Plancache.fingerprint);
      ("wall_seconds", Json.Num wall_seconds);
      ("compile_seconds", Json.Num e.Plancache.compile_seconds);
      ("estimated_seconds", Json.Num e.Plancache.estimated_seconds);
      ("explore_epochs", Json.int e.Plancache.explore_epochs);
      ("explore_plans", Json.int e.Plancache.explore_plans);
      ("strategy", Json.Str e.Plancache.strategy);
      ("winner_strategy", Json.Str e.Plancache.winner_strategy);
      ("params", params_json e.Plancache.params);
      ("artifact", Json.Str e.Plancache.artifact);
    ]

let error ?job message =
  event "error"
    ((match job with None -> [] | Some id -> [ ("job", Json.int id) ])
    @ [ ("message", Json.Str message) ])

let cancelled ~job = event "cancelled" [ ("job", Json.int job) ]

let status ~job ~state = event "status" [ ("job", Json.int job); ("state", Json.Str state) ]

let stats ~jobs ~cache:(c : Plancache.stats_snapshot) =
  event "stats"
    [
      ("jobs", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) jobs));
      ( "cache",
        Json.Obj
          [
            ("hits_memory", Json.int c.Plancache.s_hits_memory);
            ("hits_disk", Json.int c.Plancache.s_hits_disk);
            ("misses", Json.int c.Plancache.s_misses);
            ("joins", Json.int c.Plancache.s_joins);
            ("evictions", Json.int c.Plancache.s_evictions);
            ("entries", Json.int c.Plancache.s_entries);
          ] );
    ]

let bye = event "bye" []

(* ------------------------------------------------------------------ *)
(* Client-side event decoding                                           *)
(* ------------------------------------------------------------------ *)

type job_result = {
  job : int;
  origin : string;
  fingerprint : string;
  artifact : string;
  wall_seconds : float;  (** server-side wall clock of this request *)
  compile_seconds : float;  (** wall clock of the cold compile that produced the entry *)
  estimated_seconds : float;
  explore_epochs : int;
  winner_strategy : string;
  secure_n : int;
}

type event =
  | Accepted of int
  | Progress of { job : int; strategy : string; epoch : int; best_cost : float }
  | Done of job_result
  | Cancelled of int
  | Error of { job : int option; message : string }
  | Status of { job : int; state : string }
  | Stats of Json.t
  | Bye

let parse_event line =
  match Json.parse line with
  | exception Json.Parse_error msg -> Result.Error (Printf.sprintf "malformed event: %s" msg)
  | json -> (
      let str k = Json.to_string (Json.member k json) in
      let flt k d = Option.value ~default:d (Json.to_float (Json.member k json)) in
      let int k d = Option.value ~default:d (Json.to_int (Json.member k json)) in
      match str "event" with
      | None -> Result.Error "missing string field \"event\""
      | Some "accepted" -> Result.Ok (Accepted (int "job" (-1)))
      | Some "progress" ->
          Result.Ok
            (Progress
               {
                 job = int "job" (-1);
                 strategy = Option.value ~default:"" (str "strategy");
                 epoch = int "epoch" 0;
                 best_cost = flt "best_cost" nan;
               })
      | Some "done" ->
          Result.Ok
            (Done
               {
                 job = int "job" (-1);
                 origin = Option.value ~default:"?" (str "origin");
                 fingerprint = Option.value ~default:"" (str "fingerprint");
                 artifact = Option.value ~default:"" (str "artifact");
                 wall_seconds = flt "wall_seconds" nan;
                 compile_seconds = flt "compile_seconds" nan;
                 estimated_seconds = flt "estimated_seconds" nan;
                 explore_epochs = int "explore_epochs" 0;
                 winner_strategy = Option.value ~default:"" (str "winner_strategy");
                 secure_n =
                   Option.value ~default:0
                     (Json.to_int (Json.member "secure_n" (Json.member "params" json)));
               })
      | Some "cancelled" -> Result.Ok (Cancelled (int "job" (-1)))
      | Some "error" ->
          Result.Ok
            (Error
               {
                 job = Json.to_int (Json.member "job" json);
                 message = Option.value ~default:"unknown error" (str "message");
               })
      | Some "status" ->
          Result.Ok
            (Status { job = int "job" (-1); state = Option.value ~default:"?" (str "state") })
      | Some "stats" -> Result.Ok (Stats json)
      | Some "bye" -> Result.Ok Bye
      | Some ev -> Result.Error (Printf.sprintf "unknown event %S" ev))
