(** Wire schema of the [hecated] job protocol.

    Framing is newline-delimited JSON: one value per line in each
    direction, over a Unix-domain stream socket (or stdin/stdout with
    [--stdio]). Requests carry an ["op"] field; server events carry an
    ["event"] field. {!Hecate_support.Json.render} guarantees a rendered
    value contains no raw newline, so lines are the only framing needed.

    Requests:
    - [{"op":"submit","program":TEXT,"scheme":"hecate","sf_bits":28,
        "waterline_bits":20,"max_epochs":100,"budget_seconds":S?,
        "strategy":"portfolio"?,"stream":false}] — everything but
      ["program"] is optional;
    - [{"op":"status","job":N}], [{"op":"cancel","job":N}],
      [{"op":"stats"}], [{"op":"shutdown"}].

    Events: [accepted], [progress] (per exploration epoch, only with
    ["stream":true]), [done] (origin, artifact, params, timings),
    [cancelled], [error], [status], [stats], [bye]. See docs/SERVING.md
    for the full field tables. *)

type submit = {
  program : string;  (** textual .hec program *)
  scheme : Hecate.Driver.scheme;
  sf_bits : int;
  waterline_bits : float;
  max_epochs : int;
  budget_seconds : float option;
      (** exploration wall-clock budget; truncated results are returned
          but not cached (see {!Hecate.Plancache.compile}) *)
  strategy : string option;
      (** exploration strategy name or ["portfolio"]; [None] means the
          server default ({!Hecate.Explore.default_strategy}). Unknown
          names are rejected at parse time. *)
  stream : bool;  (** send a [progress] event per exploration epoch *)
}

type request =
  | Submit of submit
  | Status of int
  | Cancel of int
  | Stats
  | Shutdown

val scheme_of_string : string -> Hecate.Driver.scheme option

val parse_request : string -> (request, string) result
(** Decode one request line. The error string is safe to echo back to the
    client in an [error] event. *)

val render_request : request -> string
(** One line, no trailing newline. [parse_request (render_request r)]
    succeeds for every [r]. *)

(** {1 Server-side event rendering} — each returns one line. *)

val accepted : job:int -> string

val progress : job:int -> strategy:string -> Hecate.Explore.epoch_trace -> string
(** One exploration epoch of one racing strategy ([strategy] is the
    epoch's owner, not necessarily the eventual winner). *)

val done_ :
  job:int -> origin:Hecate.Plancache.origin -> wall_seconds:float ->
  Hecate.Plancache.entry -> string
(** [wall_seconds] is the server-side wall clock of {e this} request —
    near zero on a cache hit — as opposed to the entry's
    [compile_seconds], which is the cost of the cold compile whenever it
    happened. *)

val error : ?job:int -> string -> string
val cancelled : job:int -> string
val status : job:int -> state:string -> string
val stats : jobs:(string * int) list -> cache:Hecate.Plancache.stats_snapshot -> string
val bye : string

(** {1 Client-side event decoding} *)

type job_result = {
  job : int;
  origin : string;
  fingerprint : string;
  artifact : string;
  wall_seconds : float;  (** server-side wall clock of this request *)
  compile_seconds : float;  (** wall clock of the cold compile that produced the entry *)
  estimated_seconds : float;
  explore_epochs : int;
  winner_strategy : string;  (** the strategy that produced the plan; [""] from old servers *)
  secure_n : int;
}

type event =
  | Accepted of int
  | Progress of { job : int; strategy : string; epoch : int; best_cost : float }
  | Done of job_result
  | Cancelled of int
  | Error of { job : int option; message : string }
  | Status of { job : int; state : string }
  | Stats of Hecate_support.Json.t
  | Bye

val parse_event : string -> (event, string) result
