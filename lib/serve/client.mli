(** Blocking client for the [hecated] Unix-socket protocol. *)

type outcome = {
  result : Protocol.job_result;
  client_seconds : float;
      (** end-to-end wall clock seen by the client, including socket I/O;
          compare with [result.wall_seconds], the server-side figure *)
  progress_events : int;
}

val compile :
  socket:string ->
  ?on_progress:(strategy:string -> epoch:int -> best_cost:float -> unit) ->
  Protocol.submit ->
  (outcome, string) result
(** Submit one program and block until it finishes. Every failure mode —
    connection refused, server-side diagnostic, cancellation — comes
    back as [Error message]. *)

val stats : socket:string -> (Hecate_support.Json.t, string) result
val shutdown : socket:string -> (unit, string) result
