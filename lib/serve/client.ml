(* Thin blocking client for the hecated protocol, used by
   `hecatec compile --remote` and the serve bench. *)

type outcome = {
  result : Protocol.job_result;
  client_seconds : float;  (* round-trip wall clock, including socket I/O *)
  progress_events : int;
}

let with_connection socket_path f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s (is hecated running?)" socket_path
           (Unix.error_message err))
  | () ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let r = try f ic oc with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      r

let send_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let compile ~socket:socket_path ?on_progress (submit : Protocol.submit) =
  with_connection socket_path @@ fun ic oc ->
  let t0 = Unix.gettimeofday () in
  send_line oc (Protocol.render_request (Protocol.Submit submit));
  let progress_events = ref 0 in
  let rec wait () =
    match input_line ic with
    | exception End_of_file -> Error "connection closed before the job finished"
    | line -> (
        match Protocol.parse_event line with
        | Error msg -> Error msg
        | Ok (Protocol.Accepted _) -> wait ()
        | Ok (Protocol.Progress { strategy; epoch; best_cost; _ }) ->
            incr progress_events;
            Option.iter (fun f -> f ~strategy ~epoch ~best_cost) on_progress;
            wait ()
        | Ok (Protocol.Done result) ->
            Ok
              {
                result;
                client_seconds = Unix.gettimeofday () -. t0;
                progress_events = !progress_events;
              }
        | Ok (Protocol.Cancelled id) -> Error (Printf.sprintf "job %d was cancelled" id)
        | Ok (Protocol.Error { message; _ }) -> Error message
        | Ok (Protocol.Status _ | Protocol.Stats _ | Protocol.Bye) -> wait ())
  in
  wait ()

let stats ~socket:socket_path =
  with_connection socket_path @@ fun ic oc ->
  send_line oc (Protocol.render_request Protocol.Stats);
  match input_line ic with
  | exception End_of_file -> Error "connection closed"
  | line -> (
      match Protocol.parse_event line with
      | Ok (Protocol.Stats json) -> Ok json
      | Ok _ -> Error "unexpected reply to stats"
      | Error msg -> Error msg)

let shutdown ~socket:socket_path =
  with_connection socket_path @@ fun ic oc ->
  send_line oc (Protocol.render_request Protocol.Shutdown);
  (* wait for the bye (or EOF) so the caller knows the request landed *)
  (match input_line ic with _ -> () | exception End_of_file -> ());
  Ok ()
