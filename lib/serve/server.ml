(* The hecated job server: accepts newline-delimited JSON requests over a
   Unix-domain socket (or stdin/stdout), schedules compilations fairly
   across clients, and answers through the content-addressed plan cache.

   Concurrency structure:
   - one systhread per connection, reading request lines;
   - [workers] systhreads draining the job queues. Each compile may
     additionally fan out across worker *domains* via the exploration
     pool ([pool_size]) — threads give cheap blocking I/O concurrency,
     domains give the compute parallelism.
   - fair admission: every client (connection) has its own FIFO; a
     round-robin ready list picks the next client, so one client
     submitting 100 jobs cannot starve another submitting 1.

   Cancellation is cooperative and "anytime": cancelling a queued job
   drops it; cancelling a running job stops the exploration at the next
   epoch boundary and returns the best plan found so far (which the
   cache then treats as transient — see Plancache.compile). Shutdown
   (SIGTERM or the [shutdown] op) stops admission, lets the queues
   drain, and joins the workers. *)

module Prog = Hecate_ir.Prog
module Parser = Hecate_ir.Parser
module Diagnostic = Hecate_ir.Diagnostic
module Plancache = Hecate.Plancache
module Explore = Hecate.Explore
module Oracle = Hecate_fuzz.Oracle

type job_state = Queued | Running | Done | Failed | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

type job = {
  id : int;
  client : int;
  submit : Protocol.submit;
  prog : Prog.t;
  cancel : bool Atomic.t;
  mutable state : job_state;  (* guarded by the server mutex *)
  send : string -> unit;  (* best-effort line to the owning connection *)
}

type t = {
  cache : Plancache.t;
  pool_size : int option;
  oracle : bool;  (* gate every exploration winner through the differential oracle *)
  verbose : bool;
  mutex : Mutex.t;
  work : Condition.t;
  queues : (int, job Queue.t) Hashtbl.t;  (* client id -> its FIFO *)
  ready : int Queue.t;  (* round-robin over clients with work *)
  jobs : (int, job) Hashtbl.t;
  stopping : bool Atomic.t;
  mutable next_job : int;
  mutable next_client : int;
  mutable workers : Thread.t list;
  mutable listen_fd : Unix.file_descr option;
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable cancelled : int;
}

let log t fmt =
  if t.verbose then Printf.eprintf ("hecated: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* ------------------------------------------------------------------ *)
(* Job execution                                                        *)
(* ------------------------------------------------------------------ *)

let run_job t job =
  let finish state =
    Mutex.lock t.mutex;
    job.state <- state;
    (match state with
    | Done -> t.completed <- t.completed + 1
    | Failed -> t.failed <- t.failed + 1
    | Cancelled -> t.cancelled <- t.cancelled + 1
    | Queued | Running -> ());
    Mutex.unlock t.mutex
  in
  if Atomic.get job.cancel then begin
    finish Cancelled;
    job.send (Protocol.cancelled ~job:job.id)
  end
  else begin
    Mutex.lock t.mutex;
    job.state <- Running;
    Mutex.unlock t.mutex;
    let s = job.submit in
    let t0 = Unix.gettimeofday () in
    let on_epoch =
      if s.Protocol.stream then
        Some (fun ~strategy tr -> job.send (Protocol.progress ~job:job.id ~strategy tr))
      else None
    in
    let gate =
      if t.oracle then
        Some
          (Oracle.explorer_gate ~sf_bits:s.Protocol.sf_bits
             ~waterline_bits:s.Protocol.waterline_bits job.prog)
      else None
    in
    match
      Plancache.compile t.cache ?pool_size:t.pool_size
        ~should_stop:(fun () -> Atomic.get job.cancel || Atomic.get t.stopping)
        ?on_epoch ?strategy:s.Protocol.strategy ?gate
        ?budget_seconds:s.Protocol.budget_seconds ~scheme:s.Protocol.scheme
        ~sf_bits:s.Protocol.sf_bits ~waterline_bits:s.Protocol.waterline_bits
        ~max_epochs:s.Protocol.max_epochs job.prog
    with
    | entry, origin ->
        let wall = Unix.gettimeofday () -. t0 in
        finish Done;
        log t "job %d done (%s, %.4f s)" job.id (Plancache.origin_name origin) wall;
        job.send (Protocol.done_ ~job:job.id ~origin ~wall_seconds:wall entry)
    | exception Explore.Cancelled ->
        finish Cancelled;
        job.send (Protocol.cancelled ~job:job.id)
    | exception Diagnostic.Error d ->
        finish Failed;
        job.send (Protocol.error ~job:job.id (Format.asprintf "%a" Diagnostic.pp d))
    | exception Invalid_argument msg ->
        finish Failed;
        job.send (Protocol.error ~job:job.id msg)
  end

let worker_loop t =
  let rec next () =
    Mutex.lock t.mutex;
    let rec wait () =
      if Queue.is_empty t.ready then
        if Atomic.get t.stopping then begin
          Mutex.unlock t.mutex;
          None
        end
        else begin
          Condition.wait t.work t.mutex;
          wait ()
        end
      else begin
        let client = Queue.pop t.ready in
        (* invariant: a client is in [ready] iff its queue is non-empty *)
        let q = Hashtbl.find t.queues client in
        let job = Queue.pop q in
        if not (Queue.is_empty q) then Queue.push client t.ready;
        Mutex.unlock t.mutex;
        Some job
      end
    in
    match wait () with
    | None -> ()
    | Some job ->
        run_job t job;
        next ()
  in
  next ()

(* ------------------------------------------------------------------ *)
(* Construction / shutdown                                              *)
(* ------------------------------------------------------------------ *)

let create ?pool_size ?(workers = 2) ?(oracle = false) ?(verbose = false) cache =
  if workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  let t =
    {
      cache;
      pool_size;
      oracle;
      verbose;
      mutex = Mutex.create ();
      work = Condition.create ();
      queues = Hashtbl.create 7;
      ready = Queue.create ();
      jobs = Hashtbl.create 64;
      stopping = Atomic.make false;
      next_job = 1;
      next_client = 1;
      workers = [];
      listen_fd = None;
      submitted = 0;
      completed = 0;
      failed = 0;
      cancelled = 0;
    }
  in
  t.workers <- List.init workers (fun _ -> Thread.create worker_loop t);
  t

let request_shutdown t =
  if not (Atomic.exchange t.stopping true) then begin
    Mutex.lock t.mutex;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* unblock the accept loop, if one is running *)
    match t.listen_fd with
    | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ()
  end

let drain t =
  request_shutdown t;
  List.iter Thread.join t.workers;
  t.workers <- []

(* ------------------------------------------------------------------ *)
(* Request handling                                                     *)
(* ------------------------------------------------------------------ *)

let submit t ~client ~send (s : Protocol.submit) =
  match Parser.parse s.Protocol.program with
  | exception Parser.Parse_error { line; message } ->
      send (Protocol.error (Printf.sprintf "parse error at line %d: %s" line message))
  | prog ->
      Mutex.lock t.mutex;
      if Atomic.get t.stopping then begin
        Mutex.unlock t.mutex;
        send (Protocol.error "server is shutting down; submission rejected")
      end
      else begin
        let id = t.next_job in
        t.next_job <- id + 1;
        t.submitted <- t.submitted + 1;
        let job =
          { id; client; submit = s; prog; cancel = Atomic.make false; state = Queued; send }
        in
        Hashtbl.replace t.jobs id job;
        let q =
          match Hashtbl.find_opt t.queues client with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.replace t.queues client q;
              q
        in
        let was_empty = Queue.is_empty q in
        Queue.push job q;
        if was_empty then Queue.push client t.ready;
        Condition.signal t.work;
        Mutex.unlock t.mutex;
        log t "job %d accepted from client %d (%s, %d ops)" id client
          (Hecate.Driver.scheme_name s.Protocol.scheme)
          (Prog.num_ops prog);
        send (Protocol.accepted ~job:id)
      end

let job_counts t =
  (* under t.mutex *)
  let queued = ref 0 and running = ref 0 in
  Hashtbl.iter
    (fun _ j ->
      match j.state with
      | Queued -> incr queued
      | Running -> incr running
      | Done | Failed | Cancelled -> ())
    t.jobs;
  [
    ("submitted", t.submitted);
    ("queued", !queued);
    ("running", !running);
    ("completed", t.completed);
    ("failed", t.failed);
    ("cancelled", t.cancelled);
  ]

(* Returns [false] when the connection should close (shutdown). *)
let handle_line t ~client ~send line =
  match Protocol.parse_request line with
  | Error msg ->
      send (Protocol.error msg);
      true
  | Ok (Protocol.Submit s) ->
      submit t ~client ~send s;
      true
  | Ok (Protocol.Status id) ->
      Mutex.lock t.mutex;
      let state = Option.map (fun j -> j.state) (Hashtbl.find_opt t.jobs id) in
      Mutex.unlock t.mutex;
      (match state with
      | None -> send (Protocol.error ~job:id (Printf.sprintf "unknown job %d" id))
      | Some st -> send (Protocol.status ~job:id ~state:(state_name st)));
      true
  | Ok (Protocol.Cancel id) ->
      Mutex.lock t.mutex;
      let job = Hashtbl.find_opt t.jobs id in
      Mutex.unlock t.mutex;
      (match job with
      | None -> send (Protocol.error ~job:id (Printf.sprintf "unknown job %d" id))
      | Some j ->
          Atomic.set j.cancel true;
          send (Protocol.status ~job:id ~state:"cancelling"));
      true
  | Ok Protocol.Stats ->
      Mutex.lock t.mutex;
      let jobs = job_counts t in
      Mutex.unlock t.mutex;
      send (Protocol.stats ~jobs ~cache:(Plancache.snapshot t.cache));
      true
  | Ok Protocol.Shutdown ->
      send Protocol.bye;
      request_shutdown t;
      false

(* On disconnect, flag the client's still-queued jobs as cancelled so the
   workers skip them instead of compiling for nobody. *)
let forget_client t client =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.queues client with
  | None -> ()
  | Some q -> Queue.iter (fun j -> Atomic.set j.cancel true) q);
  Mutex.unlock t.mutex

let fresh_client t =
  Mutex.lock t.mutex;
  let id = t.next_client in
  t.next_client <- id + 1;
  Mutex.unlock t.mutex;
  id

(* ------------------------------------------------------------------ *)
(* Transports                                                           *)
(* ------------------------------------------------------------------ *)

let line_sender oc =
  let m = Mutex.create () in
  fun line ->
    Mutex.lock m;
    (try
       output_string oc line;
       output_char oc '\n';
       flush oc
     with Sys_error _ | Sys_blocked_io -> ());
    Mutex.unlock m

let session t ~ic ~send =
  let client = fresh_client t in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
        let keep = try handle_line t ~client ~send line with _ -> true in
        if keep && not (Atomic.get t.stopping) then loop ()
  in
  loop ();
  forget_client t client

let serve_stdio t =
  session t ~ic:stdin ~send:(line_sender stdout);
  drain t

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let send = line_sender (Unix.out_channel_of_descr fd) in
  session t ~ic ~send;
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve t ~socket_path =
  (match Unix.lstat socket_path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink socket_path
  | _ -> invalid_arg (Printf.sprintf "Server.serve: %s exists and is not a socket" socket_path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket_path);
  Unix.listen fd 64;
  t.listen_fd <- Some fd;
  (* A client that disconnects mid-reply must not kill the daemon. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  (try ignore (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_shutdown t)))
   with Invalid_argument _ -> ());
  log t "listening on %s" socket_path;
  let rec accept_loop () =
    match Unix.accept fd with
    | conn, _ ->
        ignore (Thread.create (fun () -> handle_connection t conn) ());
        if not (Atomic.get t.stopping) then accept_loop ()
    | exception Unix.Unix_error ((Unix.EINVAL | Unix.EBADF | Unix.ECONNABORTED), _, _) ->
        if not (Atomic.get t.stopping) then accept_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if not (Atomic.get t.stopping) then accept_loop ()
  in
  accept_loop ();
  log t "draining";
  drain t;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ())

let stats_line t =
  Mutex.lock t.mutex;
  let jobs = job_counts t in
  Mutex.unlock t.mutex;
  Protocol.stats ~jobs ~cache:(Plancache.snapshot t.cache)
