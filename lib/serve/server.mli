(** The [hecated] job server.

    Schedules compilation jobs from many clients onto a bounded set of
    worker threads, answering through a shared
    {!Hecate.Plancache.t} — so concurrent submissions of
    alpha-equivalent programs collapse into one exploration
    (single-flight) and repeat submissions are warm cache hits.

    Fairness: each connection has its own FIFO; workers take jobs
    round-robin across connections, so a client that submits a large
    batch cannot starve an interactive one.

    Cancellation is cooperative and "anytime": a queued job is dropped;
    a running job stops at the next exploration epoch and returns its
    best-so-far plan, which the cache treats as transient (never
    stored). Shutdown — SIGTERM, the [shutdown] op, or client EOF in
    [--stdio] mode — stops admission, drains the queues and joins the
    workers before returning. *)

type t

val create :
  ?pool_size:int -> ?workers:int -> ?oracle:bool -> ?verbose:bool -> Hecate.Plancache.t -> t
(** [create cache] starts [workers] (default 2) job threads immediately.
    [pool_size] is forwarded to each compile's exploration pool (worker
    {e domains} per job — threads give I/O concurrency, domains give
    compute parallelism). [oracle] (default false) re-validates every
    exploration winner through {!Hecate_fuzz.Oracle.explorer_gate} before
    it is returned or cached; rejected plans surface as [error] events
    with diagnostic code [oracle-rejected].
    @raise Invalid_argument if [workers < 1]. *)

val serve : t -> socket_path:string -> unit
(** Bind a Unix-domain stream socket at [socket_path] (replacing a stale
    socket file; refusing to clobber a non-socket), accept connections
    until shutdown is requested, then drain and remove the socket file.
    Installs handlers: SIGTERM requests shutdown, SIGPIPE is ignored.
    @raise Invalid_argument if [socket_path] exists and is not a socket.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val serve_stdio : t -> unit
(** Run one protocol session over stdin/stdout (for tests and piping),
    then drain. Returns on client EOF or the [shutdown] op. *)

val request_shutdown : t -> unit
(** Asynchronously request shutdown: stop admitting jobs, wake idle
    workers, unblock the accept loop. Idempotent; safe from a signal
    handler. Running jobs finish as truncated "anytime" results. *)

val drain : t -> unit
(** {!request_shutdown} and join the worker threads (waits for queued
    and running jobs to settle). Idempotent. *)

val stats_line : t -> string
(** The [stats] event line for the current job and cache counters. *)
