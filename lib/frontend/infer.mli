(** Staged scale/level inference over surface programs (ROADMAP item 3).

    The typing rules (paper §IV-B, C1–C3) are a post-hoc checker; [Infer]
    inverts them into elaboration: a forward abstract interpretation of
    (scale, level) under a {!Hecate_ir.Typing.config} that inserts
    [rescale]/[modswitch]/[upscale]/[encode] operations at the waterline
    discipline (EVA semantics — rescale eagerly while the result stays at or
    above the waterline, modswitch to level-match, upscale to scale-match
    additive operands), so DSL programs need no manual scale management.

    Programs that already contain scale-management operations are accepted
    unchanged — they are only checked, never re-elaborated — so explicitly
    managed IR keeps its hand placement.

    Every inserted operation carries provenance derived from the consumer
    it was inserted for (label ["rescale (inferred)"] etc., context the
    consumer's surface chain); re-emitted surface operations keep their own
    provenance. Failures are structured {!Hecate_ir.Diagnostic.t} values
    naming the offending surface construct. *)

val managed : Hecate_ir.Prog.t -> bool
(** Does the program already contain any scale-management operation
    ([encode]/[rescale]/[modswitch]/[upscale]/[downscale])? *)

val infer :
  Hecate_ir.Typing.config ->
  Hecate_ir.Prog.t ->
  (Hecate_ir.Prog.t, Hecate_ir.Diagnostic.t) result
(** Elaborate (or, for managed programs, just check) under the config.
    [Ok p] is fully typed: {!Hecate_ir.Typing.check} has passed on it and
    every op carries its type annotation. The result still benefits from
    {!Hecate_ir.Pass_manager.finalize} (early-modswitch hoisting, CSE) —
    elaboration places operations exactly where the waterline discipline
    demands, matching {!Hecate.Driver}'s EVA code generation. *)

val infer_exn : Hecate_ir.Typing.config -> Hecate_ir.Prog.t -> Hecate_ir.Prog.t
(** @raise Hecate_ir.Diagnostic.Error on failure. *)
