module Prog = Hecate_ir.Prog
module Types = Hecate_ir.Types
module Typing = Hecate_ir.Typing
module Diagnostic = Hecate_ir.Diagnostic
module R = Hecate_ir.Prog.Rewriter

let eps = 1e-6

let managed (p : Prog.t) =
  Array.exists
    (fun (o : Prog.op) ->
      match o.Prog.kind with
      | Prog.Encode _ | Prog.Rescale | Prog.Modswitch | Prog.Upscale _ | Prog.Downscale _ -> true
      | _ -> false)
    p.Prog.body

(* Provenance for an operation inserted on behalf of surface op [o]: the
   op's own chain, extended with an "(inferred)" marker, so diagnostics and
   provenance-printed IR distinguish user ops from inferred management. *)
let inferred_prov (o : Prog.op) name =
  match o.Prog.prov with
  | None -> None
  | Some pr ->
      Some { Prog.label = name ^ " (inferred)"; context = pr.Prog.context @ [ pr.Prog.label ] }

(* The abstract domain is exactly the type annotation the Rewriter tracks:
   (scale, level) plus plain/cipher-ness. These helpers mirror
   Hecate.Codegen's — the elaborated placement must coincide with the
   driver's EVA code generation so both roads lead to the same finalized
   program. *)

let scale_of r v = Types.scale_exn (R.ty r v)
let level_of r v = Types.level_exn (R.ty r v)
let is_cipher r v = Types.is_cipher (R.ty r v)
let is_free r v = R.ty r v = Types.Free

let retag r v (s : Types.scaled) =
  if is_cipher r v then Types.Cipher s else Types.Plain s

let emit_rescale ?prov r (cfg : Typing.config) v =
  let s = scale_of r v and k = level_of r v in
  R.emit ?prov r Prog.Rescale [| v |] (Types.Cipher { scale = s -. cfg.sf; level = k + 1 })

let emit_modswitch ?prov r v =
  let s = scale_of r v and k = level_of r v in
  R.emit ?prov r Prog.Modswitch [| v |] (retag r v { scale = s; level = k + 1 })

let emit_upscale ?prov r v target =
  let k = level_of r v in
  R.emit ?prov r
    (Prog.Upscale { target_scale = target })
    [| v |]
    (retag r v { scale = target; level = k })

let encode_free ?prov r (cfg : Typing.config) v ~scale ~level =
  let scale = Float.max scale cfg.waterline in
  R.emit ?prov r (Prog.Encode { scale; level }) [| v |] (Types.Plain { scale; level })

let rescale_applicable (cfg : Typing.config) s = s -. cfg.sf >= cfg.waterline -. eps

(* Waterline rescale analysis: drop a ciphertext's scale by the rescaling
   factor as long as the result stays at or above the waterline. *)
let rescale_while ?prov r cfg v =
  let rec go v =
    if is_cipher r v && rescale_applicable cfg (scale_of r v) then go (emit_rescale ?prov r cfg v)
    else v
  in
  go v

(* Level match, EVA flavor: modswitch only. *)
let raise_level ?prov r v ~target =
  let rec go v = if level_of r v >= target then v else go (emit_modswitch ?prov r v) in
  go v

(* Scale match for additive operations. *)
let scale_match ?prov r a b =
  let sa = scale_of r a and sb = scale_of r b in
  if Types.scale_close sa sb then (a, b)
  else if sa < sb then (emit_upscale ?prov r a sb, b)
  else (a, emit_upscale ?prov r b sa)

let result_ty r ~is_mul a b =
  let sa = scale_of r a and ka = level_of r a in
  let sb = scale_of r b in
  let s : Types.scaled =
    if is_mul then { scale = sa +. sb; level = ka } else { scale = sa; level = ka }
  in
  if is_cipher r a || is_cipher r b then Types.Cipher s else Types.Plain s

let elaborate (cfg : Typing.config) (p : Prog.t) =
  let r = R.create p in
  Prog.iter
    (fun (o : Prog.op) ->
      let prov name = inferred_prov o name in
      let new_id =
        match o.Prog.kind with
        | Prog.Input { name } ->
            R.emit ?prov:o.Prog.prov r (Prog.Input { name }) [||]
              (Types.Cipher { scale = cfg.waterline; level = 0 })
        | Prog.Const { value } -> R.emit ?prov:o.Prog.prov r (Prog.Const { value }) [||] Types.Free
        | Prog.Negate | Prog.Rotate _ ->
            let a = R.mapped r o.Prog.args.(0) in
            let a =
              if is_free r a then
                encode_free ?prov:(prov "encode") r cfg a ~scale:cfg.waterline ~level:0
              else a
            in
            R.emit ?prov:o.Prog.prov r o.Prog.kind [| a |]
              (retag r a { scale = scale_of r a; level = level_of r a })
        | Prog.Add | Prog.Sub | Prog.Mul -> (
            let is_mul = o.Prog.kind = Prog.Mul in
            let a = R.mapped r o.Prog.args.(0) in
            let b = R.mapped r o.Prog.args.(1) in
            match (is_free r a, is_free r b) with
            | true, true ->
                let a = encode_free ?prov:(prov "encode") r cfg a ~scale:cfg.waterline ~level:0 in
                let b = encode_free ?prov:(prov "encode") r cfg b ~scale:cfg.waterline ~level:0 in
                R.emit ?prov:o.Prog.prov r o.Prog.kind [| a; b |] (result_ty r ~is_mul a b)
            | _ ->
                (* normalize ciphers: waterline rescaling *)
                let norm v =
                  if is_free r v then v else rescale_while ?prov:(prov "rescale") r cfg v
                in
                let a = norm a and b = norm b in
                (* level match the scaled operands by modswitch *)
                let target =
                  max
                    (if is_free r a then 0 else level_of r a)
                    (if is_free r b then 0 else level_of r b)
                in
                let lift v =
                  if is_free r v then v
                  else raise_level ?prov:(prov "modswitch") r v ~target
                in
                let a = lift a and b = lift b in
                (* encode free operands at the sibling's level; additive ops
                   need the sibling's scale, multiplicative the waterline *)
                let encode_at sibling v =
                  if is_free r v then
                    encode_free ?prov:(prov "encode") r cfg v
                      ~scale:(if is_mul then cfg.waterline else scale_of r sibling)
                      ~level:(level_of r sibling)
                  else v
                in
                let a = encode_at b a and b = encode_at a b in
                let a, b =
                  if is_mul then (a, b) else scale_match ?prov:(prov "upscale") r a b
                in
                let res = R.emit ?prov:o.Prog.prov r o.Prog.kind [| a; b |] (result_ty r ~is_mul a b) in
                (* reactive rescaling of multiplication results *)
                if is_mul then rescale_while ?prov:(prov "rescale") r cfg res else res)
        | Prog.Encode _ | Prog.Rescale | Prog.Modswitch | Prog.Upscale _ | Prog.Downscale _ ->
            (* unreachable: [infer] dispatches managed programs to the
               checker without elaborating *)
            assert false
      in
      R.set_mapped r ~old_value:o.Prog.id new_id)
    p;
  R.finish r

let infer cfg (p : Prog.t) =
  match Prog.validate p with
  | Error msg ->
      Error
        (Diagnostic.v ~code:Diagnostic.Invalid_program
           ~hint:"the program is structurally malformed; this is a frontend bug, not a typing error"
           msg)
  | Ok () -> (
      let candidate = if managed p then p else elaborate cfg p in
      match Typing.check cfg candidate with
      | Ok _ -> Ok candidate
      | Error d -> Error d)

let infer_exn cfg p =
  match infer cfg p with Ok p -> p | Error d -> Diagnostic.error d
