(** Embedded vector-program DSL (the role of the paper's Python frontend).

    Programs compute over packed slot vectors. Expressions are plain value
    ids in an underlying {!Hecate_ir.Prog.Builder}; all combinators are pure
    wrappers that emit operations. Higher-level helpers implement the
    packing idioms the benchmarks need: rotation-tree reductions,
    replication, masking, baby-step/giant-step matrix-vector products and
    2-D convolution taps.

    Every combinator records a provenance label on the operations it emits
    (see {!Hecate_ir.Prog.provenance}), nesting through helper internals, so
    type errors in elaborated programs point back at the surface construct
    ("from: matvec 4x4 > add_many > add"). Combinator preconditions raise
    {!Hecate_ir.Diagnostic.Error} with code [Precondition] carrying that
    same chain. *)

type t
type expr = Hecate_ir.Prog.value

val create : ?name:string -> slot_count:int -> unit -> t
(** @raise Invalid_argument unless the slot count is a positive power of
    two (a configuration error, not a surface-program diagnostic). *)

val slot_count : t -> int

val with_label : t -> string -> (unit -> 'a) -> 'a
(** [with_label d label f] runs [f] with [label] pushed on the provenance
    scope: user-defined combinators appear in diagnostic chains exactly like
    the built-in ones. *)

val input : t -> string -> expr
val const_vector : t -> float array -> expr
val const_scalar : t -> float -> expr

val add : t -> expr -> expr -> expr
val sub : t -> expr -> expr -> expr
val mul : t -> expr -> expr -> expr
val neg : t -> expr -> expr
val rotate : t -> expr -> int -> expr
(** Positive amounts rotate slots left: slot [i] of the result is slot
    [i + amount] of the operand. *)

val square : t -> expr -> expr
val scale_by : t -> expr -> float -> expr
(** Multiply by a scalar constant. *)

val add_many : t -> expr list -> expr
(** Balanced addition tree.
    @raise Hecate_ir.Diagnostic.Error ([Precondition]) on the empty list. *)

val output : t -> expr -> unit
val finish : t -> Hecate_ir.Prog.t

(** {2 Packing helpers} *)

val replicate : t -> expr -> width:int -> expr
(** [replicate d x ~width] assumes [x] occupies slots [0..width) (zero
    elsewhere, [width] a power of two dividing the slot count) and copies it
    into every width-aligned block by rotation doubling. *)

val reduce_sum : t -> expr -> width:int -> expr
(** [reduce_sum d x ~width] is the rotation-tree windowed sum: slot [i] of
    the result holds [x_i + x_(i+1) + ... + x_(i+width-1)] (wrapping),
    computed in log2 [width] rotate-and-add steps ([width] a power of two).
    With [width = slot_count] every slot holds the total sum. *)

val mask : t -> expr -> (int -> bool) -> expr
(** Multiply by the 0/1 plaintext vector selecting the slots where the
    predicate holds. *)

val matvec : t -> rows:int -> cols:int -> (int -> int -> float) -> expr -> expr
(** [matvec d ~rows ~cols w x] computes the dense product [y_j = sum_i
    w j i * x_i] with the baby-step/giant-step diagonal method. [x] must
    occupy slots [0..cols); the result occupies slots [0..rows). Uses
    [O(sqrt dim)] rotations and [dim] plaintext multiplies, where [dim] is
    the padded power-of-two dimension. *)

val conv2d :
  t ->
  image:expr ->
  img_width:int ->
  stride:int ->
  taps:(int * int * float) list ->
  expr
(** [conv2d d ~image ~img_width ~stride ~taps] applies a stencil: each tap
    [(dy, dx, w)] contributes [w * rotate(image, (dy*img_width + dx) *
    stride)]. Row-major packed images; wrap-around at image boundaries (the
    usual packed-FHE convention — callers mask the valid region if needed). *)

val avg_pool2x2 : t -> expr -> img_width:int -> stride:int -> expr
(** Average over the 2x2 stencil at the given dilation; the result is valid
    on the sub-grid of doubled stride. *)
