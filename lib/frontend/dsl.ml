module B = Hecate_ir.Prog.Builder
module Diagnostic = Hecate_ir.Diagnostic

type t = { b : B.t; slots : int }
type expr = Hecate_ir.Prog.value

(* Combinator preconditions are user errors in the surface program: raise a
   structured diagnostic stamped with the provenance chain of the open
   scopes, so the renderer can say which surface construct was misused. *)
let precondition d ~hint fmt =
  Printf.ksprintf
    (fun message ->
      Diagnostic.error
        (Diagnostic.v ~code:Diagnostic.Precondition
           ?provenance:(B.current_prov d.b) ~hint message))
    fmt

let create ?(name = "main") ~slot_count () =
  if slot_count <= 0 || slot_count land (slot_count - 1) <> 0 then
    invalid_arg "Dsl.create: slot count must be a positive power of two";
  { b = B.create ~name ~slot_count (); slots = slot_count }

let slot_count d = d.slots
let with_label d label f = B.in_scope d.b label f
let input d name = B.input d.b name
let const_vector d v = B.const_vector d.b v
let const_scalar d x = B.const_scalar d.b x
let add d a b = B.in_scope d.b "add" (fun () -> B.add d.b a b)
let sub d a b = B.in_scope d.b "sub" (fun () -> B.sub d.b a b)
let mul d a b = B.in_scope d.b "mul" (fun () -> B.mul d.b a b)
let neg d a = B.in_scope d.b "neg" (fun () -> B.negate d.b a)

let rotate d a amount =
  let r = ((amount mod d.slots) + d.slots) mod d.slots in
  if r = 0 then a else B.in_scope d.b "rotate" (fun () -> B.rotate d.b a r)

let square d a = B.in_scope d.b "square" (fun () -> mul d a a)

let scale_by d a c =
  if c = 1. then a else B.in_scope d.b "scale_by" (fun () -> mul d a (const_scalar d c))

let add_many d xs =
  B.in_scope d.b "add_many" (fun () ->
      match xs with
      | [] ->
          precondition d ~hint:"pass at least one term to sum" "Dsl.add_many: empty list"
      | first :: rest ->
          (* balanced tree keeps multiplicative depth irrelevant but shortens
             dependence chains for readability of the generated IR *)
          let rec level = function
            | [] -> []
            | [ x ] -> [ x ]
            | x :: y :: tl -> add d x y :: level tl
          in
          let rec go = function [ x ] -> x | xs -> go (level xs) in
          go (first :: rest))

let output d v = B.output d.b v
let finish d = B.finish d.b

let is_pow2 n = n > 0 && n land (n - 1) = 0

let replicate d x ~width =
  B.in_scope d.b (Printf.sprintf "replicate w%d" width) (fun () ->
      if not (is_pow2 width) || width > d.slots then
        precondition d
          ~hint:
            (Printf.sprintf "width must be a power of two no larger than the %d slots" d.slots)
          "Dsl.replicate: bad width";
      let rec go x w =
        if w >= d.slots then x
        else
          (* copy the populated prefix one block to the right: rotating right
             by w moves slots [0..w) to [w..2w) *)
          go (add d x (rotate d x (-w))) (2 * w)
      in
      go x width)

let reduce_sum d x ~width =
  B.in_scope d.b (Printf.sprintf "reduce_sum w%d" width) (fun () ->
      if not (is_pow2 width) || width > d.slots then
        precondition d
          ~hint:
            (Printf.sprintf "width must be a power of two no larger than the %d slots" d.slots)
          "Dsl.reduce_sum: bad width";
      let rec go x step = if step >= width then x else go (add d x (rotate d x step)) (2 * step) in
      go x 1)

let mask d x pred =
  B.in_scope d.b "mask" (fun () ->
      let m = Array.init d.slots (fun i -> if pred i then 1. else 0.) in
      mul d x (const_vector d m))

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let matvec d ~rows ~cols w x =
  B.in_scope d.b (Printf.sprintf "matvec %dx%d" rows cols) (fun () ->
      if rows <= 0 || cols <= 0 then
        precondition d ~hint:"rows and cols must both be positive" "Dsl.matvec: empty matrix";
      let dim = next_pow2 (max rows cols) in
      if dim > d.slots then
        precondition d
          ~hint:
            (Printf.sprintf
               "the padded dimension %d exceeds the %d slots; use more slots or a smaller matrix"
               dim d.slots)
          "Dsl.matvec: matrix exceeds slot count";
      (* replicate x so every length-dim window contains a copy *)
      let x = replicate d x ~width:dim in
      (* generalized diagonals of the zero-padded dim x dim matrix, replicated
         across the slot vector *)
      let diag k =
        Array.init d.slots (fun s ->
            let j = s mod dim in
            let i = (j + k) mod dim in
            if j < rows && i < cols then w j i else 0.)
      in
      (* baby-step giant-step: k = g*n1 + b *)
      let n1 = next_pow2 (int_of_float (Float.ceil (sqrt (float_of_int dim)))) in
      let n2 = (dim + n1 - 1) / n1 in
      let baby = Array.init n1 (fun b -> rotate d x b) in
      let giants =
        List.init n2 (fun g ->
            let terms =
              List.init n1 (fun bi ->
                  let k = (g * n1) + bi in
                  if k >= dim then None
                  else
                    let dg = diag k in
                    if Array.for_all (fun v -> v = 0.) dg then None
                    else
                      (* pre-rotate the diagonal right by g*n1 so the final left
                         giant rotation realigns it: D[s] = diag[s - g*n1] *)
                      let rotated_diag =
                        Array.init d.slots (fun s ->
                            dg.(((s - (g * n1)) mod d.slots + d.slots) mod d.slots))
                      in
                      Some (mul d baby.(bi) (const_vector d rotated_diag)))
              |> List.filter_map Fun.id
            in
            match terms with
            | [] -> None
            | _ -> Some (rotate d (add_many d terms) (g * n1)))
        |> List.filter_map Fun.id
      in
      match giants with
      | [] ->
          precondition d ~hint:"an all-zero matrix has no ciphertext product" "Dsl.matvec: zero matrix"
      | _ -> add_many d giants)

let conv2d d ~image ~img_width ~stride ~taps =
  B.in_scope d.b "conv2d" (fun () ->
      match taps with
      | [] -> precondition d ~hint:"supply at least one stencil tap" "Dsl.conv2d: no taps"
      | _ ->
          let terms =
            List.filter_map
              (fun (dy, dx, w) ->
                if w = 0. then None
                else
                  let shifted = rotate d image (((dy * img_width) + dx) * stride) in
                  Some (if w = 1. then shifted else scale_by d shifted w))
              taps
          in
          (match terms with
          | [] ->
              precondition d ~hint:"at least one tap weight must be non-zero"
                "Dsl.conv2d: all-zero taps"
          | _ -> add_many d terms))

let avg_pool2x2 d x ~img_width ~stride =
  B.in_scope d.b "avg_pool2x2" (fun () ->
      let sum =
        add_many d
          [
            x;
            rotate d x stride;
            rotate d x (img_width * stride);
            rotate d x ((img_width + 1) * stride);
          ]
      in
      scale_by d sum 0.25)
