module Prog = Hecate_ir.Prog
module Diagnostic = Hecate_ir.Diagnostic
module IntSet = Set.Make (Int)

type spec = Auto | Fixed of Layout.kind | Naive

let spec_to_string = function
  | Auto -> "auto"
  | Naive -> "naive"
  | Fixed k -> Layout.kind_to_string k

let spec_of_string = function
  | "auto" -> Some Auto
  | "naive" -> Some Naive
  | s -> Option.map (fun k -> Fixed k) (Layout.kind_of_string s)

type lowered = {
  prog : Prog.t;
  source : Surface.t;
  assignment : Layout.assignment;
  rotations : int;
  ops : int;
  slot_count : int;
}

let pipeline = "cse,constant-fold,fixpoint(fold-plain-muls,fold-rotations,dce)"

let count_rotations (p : Prog.t) =
  let n = ref 0 in
  Prog.iter (fun o -> match o.Prog.kind with Prog.Rotate _ -> incr n | _ -> ()) p;
  !n

let max_instances = 65536

let err ?prov fmt =
  Printf.ksprintf
    (fun message ->
      Error
        (Diagnostic.v ?provenance:prov ~code:Diagnostic.Precondition
           ~hint:
             "batching executes each store/accumulate statement as one vector step; \
              restructure the loops so no element is read by a statement that runs \
              before its writer (docs/BATCHING.md)"
           message))
    fmt

(* pretty element reference for diagnostics: row-major flat -> a[i, j] *)
let elem_str (d : Surface.array_decl) flat =
  let rec unflatten rev_dims flat acc =
    match rev_dims with
    | [] -> acc
    | dim :: rest -> unflatten rest (flat / dim) ((flat mod dim) :: acc)
  in
  let idx = unflatten (List.rev d.Surface.dims) flat [] in
  Printf.sprintf "%s[%s]" d.Surface.name (String.concat ", " (List.map string_of_int idx))

let next_pow2 k =
  let rec go p = if p >= k then p else go (p * 2) in
  go 1

(* ------------------------------------------------------------------ *)
(* Analysis: unroll, inline lets, record the exact scalar event order  *)
(* ------------------------------------------------------------------ *)

type eexpr =
  | ELoad of { arr : string; elem : int; at : int }
      (** [at]: scalar event sequence at which this load was evaluated —
          for [let]-inlined loads that is the binding's position, earlier
          than the consuming site's. *)
  | ECoef of float
  | ENeg of eexpr
  | EBin of Surface.binop * eexpr * eexpr

type inst = { elem : int; iexpr : eexpr; iseq : int }

type site_info = {
  s_accum : bool;
  s_arr : string;
  s_prov : Prog.provenance option;
  mutable s_insts : inst list;
}

type analysis = { a_surface : Surface.t; a_slots : int; a_sites : site_info array }

type astmt =
  | AFor of string * int * int * astmt list
  | ALet of string * Surface.expr
  | ASite of int * Surface.site

type read_ev = { r_arr : string; r_elem : int; r_seq : int; r_early : int; r_site : int }
type write_ev = { w_arr : string; w_elem : int; w_seq : int; w_site : int }

exception Stop of Diagnostic.t

let annotate (p : Surface.t) =
  let sites = ref [] in
  let count = ref 0 in
  let rec stmt = function
    | Surface.For { var; lo; hi; body } -> AFor (var, lo, hi, List.map stmt body)
    | Surface.Let { name; expr } -> ALet (name, expr)
    | (Surface.Store s | Surface.Accum s) as st ->
        let accum = match st with Surface.Accum _ -> true | _ -> false in
        let id = !count in
        incr count;
        sites :=
          { s_accum = accum; s_arr = s.Surface.arr; s_prov = s.Surface.prov; s_insts = [] }
          :: !sites;
        ASite (id, s)
  in
  let body = List.map stmt p.Surface.body in
  (body, Array.of_list (List.rev !sites))

let legality (p : Surface.t) (sites : site_info array) reads writes =
  let decl arr = Option.get (Surface.array_decl p arr) in
  let prov site = sites.(site).s_prov in
  (* write-write: chronological site order must be non-decreasing per element *)
  let last_site = Hashtbl.create 64 in
  let ww =
    List.fold_left
      (fun acc w ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            let key = (w.w_arr, w.w_elem) in
            let prev = Option.value ~default:(-1) (Hashtbl.find_opt last_site key) in
            if w.w_site < prev then
              err ?prov:(prov w.w_site)
                "loop-carried dependence: %s is written by interleaved statements; \
                 batching would reorder the writes"
                (elem_str (decl w.w_arr) w.w_elem)
            else begin
              Hashtbl.replace last_site key (max prev w.w_site);
              Ok ()
            end)
      (Ok ()) writes
  in
  match ww with
  | Error _ as e -> e
  | Ok () ->
      let wtbl = Hashtbl.create 64 in
      List.iter (fun w -> Hashtbl.add wtbl (w.w_arr, w.w_elem) w) writes;
      List.fold_left
        (fun acc r ->
          match acc with
          | Error _ -> acc
          | Ok () ->
              List.fold_left
                (fun acc w ->
                  match acc with
                  | Error _ -> acc
                  | Ok () ->
                      if w.w_seq < r.r_seq <> (w.w_site < r.r_site) then
                        err ?prov:(prov r.r_site)
                          "loop-carried dependence on %s: the scalar iteration order \
                           interleaves this read with writes from another statement"
                          (elem_str (decl r.r_arr) r.r_elem)
                      else if r.r_early < w.w_seq && w.w_seq < r.r_seq then
                        err ?prov:(prov r.r_site)
                          "stale binding: a let captures %s before a later write; \
                           batching would observe the updated value"
                          (elem_str (decl r.r_arr) r.r_elem)
                      else Ok ())
                (Ok ())
                (Hashtbl.find_all wtbl (r.r_arr, r.r_elem)))
        (Ok ()) reads

let analyze ?slot_count (p : Surface.t) =
  match Surface.validate p with
  | Error d -> Error d
  | Ok () -> (
      let cipher_sizes =
        List.filter_map
          (fun (d : Surface.array_decl) ->
            match d.Surface.kind with
            | Surface.Plain _ -> None
            | _ -> Some (Surface.array_size d))
          p.Surface.arrays
      in
      let need = next_pow2 (List.fold_left max 1 cipher_sizes) in
      match
        match slot_count with
        | None -> Ok need
        | Some n ->
            if n < need then
              err "slot count %d cannot hold the largest array (%d slots needed)" n need
            else if n land (n - 1) <> 0 || n <= 0 then
              err "slot count %d is not a power of two" n
            else Ok n
      with
      | Error d -> Error d
      | Ok slots -> (
          let body, sites = annotate p in
          let decl arr = Option.get (Surface.array_decl p arr) in
          let seq = ref 0 in
          let next () =
            incr seq;
            !seq
          in
          let reads = ref [] in
          let writes = ref [] in
          let total = ref 0 in
          let flat_of env (d : Surface.array_decl) idx =
            let eval (a : Surface.affine) =
              List.fold_left
                (fun acc (v, c) -> acc + (c * List.assoc v env))
                a.Surface.const a.Surface.terms
            in
            List.fold_left2 (fun acc a dim -> (acc * dim) + eval a) 0 idx d.Surface.dims
          in
          let rec resolve env lets (e : Surface.expr) =
            match e with
            | Surface.Lit x -> ECoef x
            | Surface.Ref r -> List.assoc r lets
            | Surface.Neg e -> ENeg (resolve env lets e)
            | Surface.Bin (op, a, b) ->
                let ra = resolve env lets a in
                let rb = resolve env lets b in
                EBin (op, ra, rb)
            | Surface.Load { arr; idx } ->
                let elem = flat_of env (decl arr) idx in
                ELoad { arr; elem; at = next () }
          in
          let rec collect_reads site rseq = function
            | ELoad { arr; elem; at } -> (
                match (decl arr).Surface.kind with
                | Surface.Local ->
                    reads :=
                      { r_arr = arr; r_elem = elem; r_seq = rseq; r_early = at; r_site = site }
                      :: !reads
                | _ -> ())
            | ECoef _ -> ()
            | ENeg e -> collect_reads site rseq e
            | EBin (_, a, b) ->
                collect_reads site rseq a;
                collect_reads site rseq b
          in
          let rec run env lets = function
            | [] -> ()
            | AFor (var, lo, hi, body) :: rest ->
                for iv = lo to hi do
                  run ((var, iv) :: env) lets body
                done;
                run env lets rest
            | ALet (name, expr) :: rest ->
                let r = resolve env lets expr in
                run env ((name, r) :: lets) rest
            | ASite (id, s) :: rest ->
                incr total;
                if !total > max_instances then
                  raise
                    (Stop
                       (Diagnostic.v ~code:Diagnostic.Precondition
                          ~hint:"shrink the loop bounds or split the program"
                          (Printf.sprintf
                             "loop nest unrolls past the %d-instance batching limit"
                             max_instances)));
                let elem = flat_of env (decl s.Surface.arr) s.Surface.idx in
                let iexpr = resolve env lets s.Surface.expr in
                let iseq = next () in
                collect_reads id iseq iexpr;
                writes :=
                  { w_arr = s.Surface.arr; w_elem = elem; w_seq = iseq; w_site = id } :: !writes;
                sites.(id).s_insts <- { elem; iexpr; iseq } :: sites.(id).s_insts;
                run env lets rest
          in
          match run [] [] body with
          | () ->
              Array.iter (fun s -> s.s_insts <- List.rev s.s_insts) sites;
              let reads = List.rev !reads in
              let writes = List.rev !writes in
              Result.map
                (fun () -> { a_surface = p; a_slots = slots; a_sites = sites })
                (legality p sites reads writes)
          | exception Stop d -> Error d))

(* ------------------------------------------------------------------ *)
(* Vectorization                                                       *)
(* ------------------------------------------------------------------ *)

(* Per-instance template over rotated array state and static coefficients.
   Every instance of a site yields the same shape — staticness is
   structural (literals, Plain loads, never-written locals) — so templates
   align leaf-for-leaf across a partition. *)
type vexpr =
  | VCipher of string * int  (* array state rotated left by the amount *)
  | VCoef of float
  | VNeg of vexpr
  | VBin of Surface.binop * vexpr * vexpr

type contrib = { cv : Prog.value; csup : IntSet.t }
(* an emitted value together with its exact support (slots possibly
   nonzero); the absence of a contribution stands for the zero vector *)

let with_prov bld prov f =
  match prov with
  | None -> f ()
  | Some { Prog.label; context } ->
      let rec go = function
        | [] -> Prog.Builder.in_scope bld label f
        | c :: rest -> Prog.Builder.in_scope bld c (fun () -> go rest)
      in
      go context

let emit (a : analysis) (assignment : Layout.assignment) ~naive =
  let p = a.a_surface in
  let n = a.a_slots in
  let bld = Prog.Builder.create ~name:p.Surface.name ~slot_count:n () in
  let decl arr = Option.get (Surface.array_decl p arr) in
  let layout_of arr = Option.value ~default:Layout.Row (List.assoc_opt arr assignment) in
  let states : (string, Prog.value option * IntSet.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (d : Surface.array_decl) ->
      match d.Surface.kind with
      | Surface.Input ->
          let v = Prog.Builder.input bld d.Surface.name in
          let sup = ref IntSet.empty in
          for f = 0 to Surface.array_size d - 1 do
            sup := IntSet.add (Layout.slot_of_flat (layout_of d.Surface.name) ~dims:d.Surface.dims f) !sup
          done;
          Hashtbl.replace states d.Surface.name (Some v, !sup)
      | Surface.Local -> Hashtbl.replace states d.Surface.name (None, IntSet.empty)
      | Surface.Plain _ -> ())
    p.Surface.arrays;
  let rotations = ref 0 in
  let rot_memo : (Prog.value * int, Prog.value) Hashtbl.t = Hashtbl.create 32 in
  let rotate v r =
    if r = 0 then v
    else
      match Hashtbl.find_opt rot_memo (v, r) with
      | Some v' -> v'
      | None ->
          let v' = Prog.Builder.rotate bld v r in
          incr rotations;
          Hashtbl.replace rot_memo (v, r) v';
          v'
  in
  let shift_support sup r =
    if r = 0 then sup else IntSet.map (fun s -> (((s - r) mod n) + n) mod n) sup
  in
  let apply op x y =
    match op with
    | Surface.Add -> x +. y
    | Surface.Sub -> x -. y
    | Surface.Mul -> x *. y
  in
  let rec to_vexpr sigma = function
    | ELoad { arr; elem; _ } -> (
        let d = decl arr in
        match d.Surface.kind with
        | Surface.Plain data -> VCoef data.(elem)
        | _ -> (
            match Hashtbl.find states arr with
            | None, _ -> VCoef 0.
            | Some _, _ ->
                let s = Layout.slot_of_flat (layout_of arr) ~dims:d.Surface.dims elem in
                VCipher (arr, (((s - sigma) mod n) + n) mod n)))
    | ECoef x -> VCoef x
    | ENeg e -> ( match to_vexpr sigma e with VCoef x -> VCoef (-.x) | t -> VNeg t)
    | EBin (op, x, y) -> (
        match (to_vexpr sigma x, to_vexpr sigma y) with
        | VCoef vx, VCoef vy -> VCoef (apply op vx vy)
        | tx, ty -> VBin (op, tx, ty))
  in
  let rec rot_key acc = function
    | VCipher (_, r) -> r :: acc
    | VCoef _ -> acc
    | VNeg t -> rot_key acc t
    | VBin (_, x, y) -> rot_key (rot_key acc x) y
  in
  (* emit one sub-partition: [trees] leaf-aligned, [sigmas] distinct *)
  let rec emit_tree trees sigmas =
    match trees with
    | [] -> assert false
    | VCipher (arr, r) :: _ -> (
        match Hashtbl.find states arr with
        | Some v, sup -> Some { cv = rotate v r; csup = shift_support sup r }
        | None, _ -> assert false)
    | VCoef _ :: _ ->
        let vec = Array.make n 0. in
        let sup = ref IntSet.empty in
        List.iter2
          (fun t s ->
            match t with
            | VCoef x ->
                if x <> 0. then begin
                  vec.(s) <- x;
                  sup := IntSet.add s !sup
                end
            | _ -> assert false)
          trees sigmas;
        if IntSet.is_empty !sup then None
        else Some { cv = Prog.Builder.const_vector bld vec; csup = !sup }
    | VNeg _ :: _ -> (
        let subs = List.map (function VNeg t -> t | _ -> assert false) trees in
        match emit_tree subs sigmas with
        | None -> None
        | Some c -> Some { cv = Prog.Builder.negate bld c.cv; csup = c.csup })
    | VBin (op, _, _) :: _ -> (
        let ls = List.map (function VBin (_, x, _) -> x | _ -> assert false) trees in
        let rs = List.map (function VBin (_, _, y) -> y | _ -> assert false) trees in
        let cl = emit_tree ls sigmas in
        match (op, cl) with
        | Surface.Mul, None -> None (* short-circuit: skip the other factor's ops *)
        | _ -> (
        let cr = emit_tree rs sigmas in
        match (op, cl, cr) with
        | _, None, None -> None
        | Surface.Mul, None, _ | Surface.Mul, _, None -> None
        | (Surface.Add | Surface.Sub), Some c, None -> Some c
        | Surface.Add, None, Some c -> Some c
        | Surface.Sub, None, Some c -> Some { cv = Prog.Builder.negate bld c.cv; csup = c.csup }
        | Surface.Add, Some x, Some y ->
            Some { cv = Prog.Builder.add bld x.cv y.cv; csup = IntSet.union x.csup y.csup }
        | Surface.Sub, Some x, Some y ->
            Some { cv = Prog.Builder.sub bld x.cv y.cv; csup = IntSet.union x.csup y.csup }
        | Surface.Mul, Some x, Some y ->
            let sup = IntSet.inter x.csup y.csup in
            if IntSet.is_empty sup then None
            else Some { cv = Prog.Builder.mul bld x.cv y.cv; csup = sup }))
  in
  let rec add_all = function
    | [] -> None
    | [ c ] -> Some c
    | cs ->
        let rec pair = function
          | x :: y :: rest ->
              { cv = Prog.Builder.add bld x.cv y.cv; csup = IntSet.union x.csup y.csup }
              :: pair rest
          | tail -> tail
        in
        add_all (pair cs)
  in
  let uniq = ref 0 in
  let process_site (s : site_info) =
    let d = decl s.s_arr in
    let kind = layout_of s.s_arr in
    let insts =
      if s.s_accum then s.s_insts
      else begin
        (* scalar store semantics: the last write to an element wins *)
        let last = Hashtbl.create 16 in
        List.iter (fun i -> Hashtbl.replace last i.elem i.iseq) s.s_insts;
        List.filter (fun i -> Hashtbl.find last i.elem = i.iseq) s.s_insts
      end
    in
    if insts <> [] then begin
      let items =
        List.map
          (fun i ->
            let sigma = Layout.slot_of_flat kind ~dims:d.Surface.dims i.elem in
            (sigma, to_vexpr sigma i.iexpr))
          insts
      in
      (* group instances by rotation tuple, insertion-ordered *)
      let groups = ref [] in
      let gtbl = Hashtbl.create 16 in
      List.iter
        (fun (sigma, t) ->
          let key =
            if naive then begin
              incr uniq;
              [ - !uniq ]
            end
            else rot_key [] t
          in
          match Hashtbl.find_opt gtbl key with
          | Some cell -> cell := (sigma, t) :: !cell
          | None ->
              let cell = ref [ (sigma, t) ] in
              Hashtbl.replace gtbl key cell;
              groups := cell :: !groups)
        items;
      let groups = List.rev_map (fun c -> List.rev !c) !groups in
      (* refine so target slots are distinct within a partition (first fit) *)
      let subparts =
        List.concat_map
          (fun grp ->
            let parts = ref [] in
            List.iter
              (fun (sigma, t) ->
                let rec place = function
                  | [] -> parts := !parts @ [ (ref (IntSet.singleton sigma), ref [ (sigma, t) ]) ]
                  | (sigs, its) :: rest ->
                      if IntSet.mem sigma !sigs then place rest
                      else begin
                        sigs := IntSet.add sigma !sigs;
                        its := (sigma, t) :: !its
                      end
                in
                place !parts)
              grp;
            List.map (fun (_, its) -> List.rev !its) !parts)
          groups
      in
      let contribs =
        List.filter_map
          (fun part ->
            let sigmas = List.map fst part in
            let trees = List.map snd part in
            let targets = IntSet.of_list sigmas in
            match emit_tree trees sigmas with
            | None -> None
            | Some c ->
                if IntSet.subset c.csup targets then Some c
                else begin
                  let m = Array.make n 0. in
                  IntSet.iter (fun s -> m.(s) <- 1.) targets;
                  Some
                    {
                      cv = Prog.Builder.mul bld c.cv (Prog.Builder.const_vector bld m);
                      csup = IntSet.inter c.csup targets;
                    }
                end)
          subparts
      in
      let sum = add_all contribs in
      let old_v, old_sup = Hashtbl.find states s.s_arr in
      let new_state =
        if s.s_accum then
          match (old_v, sum) with
          | old, None -> (old, old_sup)
          | None, Some c -> (Some c.cv, c.csup)
          | Some v, Some c -> (Some (Prog.Builder.add bld v c.cv), IntSet.union old_sup c.csup)
        else begin
          let all_targets = IntSet.of_list (List.map fst items) in
          let old' =
            match old_v with
            | None -> None
            | Some v ->
                if IntSet.subset old_sup all_targets then None (* fully overwritten *)
                else if IntSet.is_empty (IntSet.inter old_sup all_targets) then
                  Some { cv = v; csup = old_sup }
                else begin
                  let m = Array.make n 1. in
                  IntSet.iter (fun s -> m.(s) <- 0.) all_targets;
                  Some
                    {
                      cv = Prog.Builder.mul bld v (Prog.Builder.const_vector bld m);
                      csup = IntSet.diff old_sup all_targets;
                    }
                end
          in
          match (old', sum) with
          | None, None -> (None, IntSet.empty)
          | Some c, None | None, Some c -> (Some c.cv, c.csup)
          | Some o, Some c ->
              (Some (Prog.Builder.add bld o.cv c.cv), IntSet.union o.csup c.csup)
        end
      in
      Hashtbl.replace states s.s_arr new_state
    end
  in
  Array.iter (fun s -> with_prov bld s.s_prov (fun () -> process_site s)) a.a_sites;
  match
    List.find_opt (fun o -> fst (Hashtbl.find states o) = None) p.Surface.outputs
  with
  | Some o -> err "output array %S is never written" o
  | None ->
      List.iter
        (fun o -> Prog.Builder.output bld (Option.get (fst (Hashtbl.find states o))))
        p.Surface.outputs;
      let prog = Prog.Builder.finish bld in
      Ok
        {
          prog;
          source = p;
          assignment;
          rotations = !rotations;
          ops = Prog.num_ops prog;
          slot_count = n;
        }

(* ------------------------------------------------------------------ *)
(* Layout choice                                                       *)
(* ------------------------------------------------------------------ *)

let cipher_arrays (p : Surface.t) =
  List.filter
    (fun (d : Surface.array_decl) ->
      match d.Surface.kind with Surface.Plain _ -> false | _ -> true)
    p.Surface.arrays

let fixed_assignment (p : Surface.t) k =
  List.map
    (fun (d : Surface.array_decl) ->
      (d.Surface.name, if List.mem k (Layout.candidates d) then k else Layout.Row))
    (cipher_arrays p)

let score a asg =
  match emit a asg ~naive:false with
  | Ok r -> (r.rotations, r.ops)
  | Error _ -> (max_int, max_int)

let choose_auto (a : analysis) =
  let cands =
    List.map
      (fun (d : Surface.array_decl) -> (d.Surface.name, Layout.candidates d))
      (cipher_arrays a.a_surface)
  in
  let combos = List.fold_left (fun acc (_, ks) -> acc * List.length ks) 1 cands in
  if combos <= 81 then begin
    (* exhaustive, first strictly-better combination wins ties *)
    let best = ref None in
    let rec go acc = function
      | [] ->
          let asg = List.rev acc in
          let sc = score a asg in
          (match !best with
          | Some (bsc, _) when bsc <= sc -> ()
          | _ -> best := Some (sc, asg))
      | (name, ks) :: rest -> List.iter (fun k -> go ((name, k) :: acc) rest) ks
    in
    go [] cands;
    match !best with Some (_, asg) -> asg | None -> []
  end
  else begin
    (* coordinate descent from all-row, two sweeps *)
    let best = ref (List.map (fun (name, ks) -> (name, List.hd ks)) cands) in
    let bscore = ref (score a !best) in
    for _sweep = 1 to 2 do
      List.iter
        (fun (name, ks) ->
          List.iter
            (fun k ->
              let asg =
                List.map (fun (n', k') -> if n' = name then (n', k) else (n', k')) !best
              in
              let sc = score a asg in
              if sc < !bscore then begin
                best := asg;
                bscore := sc
              end)
            ks)
        cands
    done;
    !best
  end

let lower ?slot_count ~spec p =
  match analyze ?slot_count p with
  | Error d -> Error d
  | Ok a -> (
      match spec with
      | Naive -> emit a (fixed_assignment p Layout.Row) ~naive:true
      | Fixed k -> emit a (fixed_assignment p k) ~naive:false
      | Auto -> emit a (choose_auto a) ~naive:false)

(* ------------------------------------------------------------------ *)
(* Runtime packing helpers                                             *)
(* ------------------------------------------------------------------ *)

let pack_input (l : lowered) name data =
  match Surface.array_decl l.source name with
  | Some ({ Surface.kind = Surface.Input; dims; _ } as d) ->
      let kind = Option.value ~default:Layout.Row (List.assoc_opt name l.assignment) in
      let out = Array.make l.slot_count 0. in
      for f = 0 to Surface.array_size d - 1 do
        out.(Layout.slot_of_flat kind ~dims f) <-
          (if f < Array.length data then data.(f) else 0.)
      done;
      out
  | _ -> invalid_arg (Printf.sprintf "Lower.pack_input: %S is not an input array" name)

let decode_output (l : lowered) name packed =
  if not (List.mem name l.source.Surface.outputs) then
    invalid_arg (Printf.sprintf "Lower.decode_output: %S is not an output array" name);
  match Surface.array_decl l.source name with
  | Some ({ Surface.dims; _ } as d) ->
      let kind = Option.value ~default:Layout.Row (List.assoc_opt name l.assignment) in
      Array.init (Surface.array_size d) (fun f -> packed.(Layout.slot_of_flat kind ~dims f))
  | None -> assert false
