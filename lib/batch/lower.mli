(** Rotation-network lowering: scalar loop programs to packed vector IR.

    The compilation scheme (HECO-style, PAPERS.md):

    + {b Unroll.} Loop trip counts are compile-time, so the program unrolls
      into a finite set of {e instances} per syntactic store/accumulate
      {e site}, each with concrete element indices. [let] bindings inline.
    + {b Legality.} An exact scalar simulation checks that executing the
      sites one after another (each site's instances batched into vector
      operations) preserves the scalar iteration-order semantics: any
      loop-carried dependence that batching would reorder is rejected with
      a [Precondition] diagnostic naming the array element.
    + {b Vectorize.} Per site, every instance resolves to a template over
      rotated array states and per-instance static coefficients. Instances
      partition by their tuple of rotation amounts — one rotation per
      partition per loaded array, not one per instance — refined so target
      slots stay distinct. Each partition emits: shared [rotate]s (memoized
      program-wide, so repeated amounts cost one op and
      [Eval.rotate_many] hoisting sees one fan), one plaintext coefficient
      vector per static leaf, the combining arithmetic, and a 0/1 mask only
      when the contribution is not provably zero outside its target slots
      (supports are tracked exactly).
    + {b Update.} Accumulations add contributions into the array's packed
      state; stores overwrite via a complement mask, elided when the old
      support is disjoint from (or contained in) the written slots.

    The emitted {!Hecate_ir.Prog.t} is unmanaged — run {!pipeline} to clean
    it up, then any of the four scale-management schemes or
    {!Hecate_frontend.Infer} exactly as for hand-written vector programs. *)

type spec =
  | Auto  (** per-array layouts chosen by the rotation-count cost model *)
  | Fixed of Layout.kind  (** one layout for every array (2-D; 1-D is row) *)
  | Naive
      (** one-slot lowering: every scalar instance is its own partition —
          the baseline the batched lowering is benchmarked against *)

val spec_to_string : spec -> string

val spec_of_string : string -> spec option
(** ["auto" | "row" | "col" | "diag" | "naive"]. *)

type lowered = {
  prog : Hecate_ir.Prog.t;  (** unmanaged vector IR *)
  source : Surface.t;
  assignment : Layout.assignment;
  rotations : int;  (** distinct rotation ops emitted (pre-cleanup) *)
  ops : int;  (** total ops emitted (pre-cleanup) *)
  slot_count : int;
}

val lower : ?slot_count:int -> spec:spec -> Surface.t -> (lowered, Hecate_ir.Diagnostic.t) result
(** [slot_count] defaults to the smallest power of two holding every
    ciphertext-carrying array; an explicit value must be a power of two at
    least that large. Fails with [Precondition] on validation errors,
    loop-carried dependences, never-written outputs, or loop nests that
    unroll past 65536 instances. *)

val pipeline : string
(** Recommended cleanup pipeline spec for lowered programs:
    {!Hecate_ir.Pass_manager.cleanup} plus [fold-plain-muls] (mask and
    coefficient plaintext multiplies fuse, recovering multiplicative
    depth). *)

val count_rotations : Hecate_ir.Prog.t -> int
(** Number of [Rotate] ops — the cost-model objective, reported by
    [hecatec batch] and the bench. *)

val pack_input : lowered -> string -> float array -> float array
(** Pack a logical input array (row-major; missing trailing elements zero)
    into a [slot_count]-slot vector per the chosen layout, zero elsewhere —
    the packing convention the emitted program assumes.
    @raise Invalid_argument if the name is not an [Input] array. *)

val decode_output : lowered -> string -> float array -> float array
(** Extract the logical row-major array of an output from a packed slot
    vector. @raise Invalid_argument if the name is not an output. *)
