(** Scalar surface IR for the SIMD batching frontend (ROADMAP item 1).

    HECATE's vector IR ({!Hecate_ir.Prog}) computes over packed slot
    vectors with explicit rotations; writing it by hand means choosing a
    slot layout and a rotation network up front. This module is the other
    entry point: ordinary scalar loop programs over arrays — the workload
    class HECO and Porcupine open — that {!Lower} compiles into packed
    vector IR by choosing layouts ({!Layout}) and minimizing the rotation
    network.

    A program is a sequence of statements over declared arrays:
    - [input] arrays arrive encrypted (one packed ciphertext each);
    - [plain] arrays are compile-time constants (weights, masks) and fold
      into plaintext coefficient vectors during lowering;
    - [local] arrays are zero-initialized scratch/output storage.

    Statements are counted [for] loops (inclusive bounds, compile-time
    trip counts), scalar [let] bindings, element stores ([a\[i\] = e]) and
    accumulations ([a\[i\] += e]). Array indices are affine in the
    enclosing loop variables — the shape {!Lower} exploits to turn whole
    iteration domains into single rotations.

    Semantics (shared by {!execute} and the lowering):
    - arrays are zero-initialized; reading a never-written element gives 0;
    - [Store] overwrites, [Accum] adds;
    - loops with [lo > hi] have zero iterations. *)

type affine = { terms : (string * int) list; const : int }
(** [sum_i coeff_i * var_i + const] over enclosing loop variables. *)

val affine_const : int -> affine
val affine_var : ?coeff:int -> string -> affine
val affine_add : affine -> affine -> affine
val affine_to_string : affine -> string

type binop = Add | Sub | Mul

type expr =
  | Load of { arr : string; idx : affine list }
  | Lit of float
  | Ref of string  (** a [Let]-bound scalar *)
  | Neg of expr
  | Bin of binop * expr * expr

type stmt =
  | For of { var : string; lo : int; hi : int; body : stmt list }
      (** [for var = lo to hi] — inclusive, like OCaml's [for]. *)
  | Let of { name : string; expr : expr }
      (** scalar binding, visible to later statements of the same block *)
  | Store of site
  | Accum of site

and site = {
  arr : string;
  idx : affine list;
  expr : expr;
  prov : Hecate_ir.Prog.provenance option;
      (** surface provenance stamped onto every vector op this site emits *)
}

type array_kind =
  | Input  (** encrypted: becomes a packed ciphertext input *)
  | Plain of float array  (** compile-time constants, row-major *)
  | Local  (** zero-initialized derived storage *)

type array_decl = { name : string; dims : int list; kind : array_kind }

type t = {
  name : string;
  arrays : array_decl list;
  outputs : string list;  (** names of arrays whose final value is returned *)
  body : stmt list;
}

val array_decl : t -> string -> array_decl option
val array_size : array_decl -> int
(** Product of the dimensions. *)

val validate : t -> (unit, Hecate_ir.Diagnostic.t) result
(** Static well-formedness: array names are unique and declared before
    use, indices match the array rank, affine terms reference enclosing
    loop variables only, [plain] data lengths match the declared size,
    outputs name non-[Plain] arrays, loop variables shadow nothing, and
    [Ref]s resolve to earlier [Let]s of the same block. Diagnostics use
    code [Precondition] and carry the site's provenance when present. *)

val execute : t -> inputs:(string * float array) list -> (string * float array) list
(** Exact scalar reference execution. Returns the output arrays in
    declaration order. Missing trailing input elements are zero; extra
    elements are ignored.
    @raise Invalid_argument on a missing input name or a failed
    {!validate}. *)

val to_string : t -> string
(** Textual form, re-read by {!parse}. *)

val parse : string -> t
(** Parse the textual form (see docs/BATCHING.md for the grammar).
    @raise Hecate_ir.Parser.Parse_error on malformed input. *)

val parse_file : string -> t
(** @raise Sys_error if the file cannot be read. *)
