module Diagnostic = Hecate_ir.Diagnostic
module Prog = Hecate_ir.Prog

type expr = Surface.expr
type idx = Surface.affine

type t = {
  name : string;
  mutable arrays : Surface.array_decl list; (* reversed *)
  mutable outputs : string list; (* reversed *)
  mutable blocks : Surface.stmt list list; (* innermost first, each reversed *)
  mutable scopes : string list; (* innermost first *)
}

let create ?(name = "batch") () =
  { name; arrays = []; outputs = []; blocks = [ [] ]; scopes = [] }

let declare b name dims kind =
  b.arrays <- { Surface.name; dims; kind } :: b.arrays;
  name

let input b name dims = declare b name dims Surface.Input
let plain b name dims data = declare b name dims (Surface.Plain data)
let local b name dims = declare b name dims Surface.Local

let output_array b name dims =
  b.outputs <- name :: b.outputs;
  declare b name dims Surface.Local

let i v = Surface.affine_var v
let c k = Surface.affine_const k
let ( *$ ) k a =
  Surface.{ terms = List.map (fun (v, co) -> (v, k * co)) a.terms; const = k * a.const }

let ( +$ ) = Surface.affine_add

let ( -$ ) a b =
  Surface.affine_add a
    Surface.{ terms = List.map (fun (v, co) -> (v, -co)) b.terms; const = -b.const }

let load arr idx = Surface.Load { arr; idx }
let lit x = Surface.Lit x
let add a b = Surface.Bin (Surface.Add, a, b)
let sub a b = Surface.Bin (Surface.Sub, a, b)
let mul a b = Surface.Bin (Surface.Mul, a, b)
let neg e = Surface.Neg e

let push_stmt b s =
  match b.blocks with
  | top :: rest -> b.blocks <- (s :: top) :: rest
  | [] -> assert false

let for_ b var ~lo ~hi body =
  b.blocks <- [] :: b.blocks;
  body (i var);
  match b.blocks with
  | top :: rest ->
      b.blocks <- rest;
      push_stmt b (Surface.For { var; lo; hi; body = List.rev top })
  | [] -> assert false

let let_ b name expr =
  push_stmt b (Surface.Let { name; expr });
  Surface.Ref name

let prov_of b default =
  match b.scopes with
  | [] -> Some { Prog.label = default; context = [] }
  | label :: outer -> Some { Prog.label; context = List.rev outer }

let store b arr idx expr =
  push_stmt b (Surface.Store { arr; idx; expr; prov = prov_of b ("store " ^ arr) })

let accum b arr idx expr =
  push_stmt b (Surface.Accum { arr; idx; expr; prov = prov_of b ("accum " ^ arr) })

let with_label b label f =
  b.scopes <- label :: b.scopes;
  Fun.protect ~finally:(fun () -> b.scopes <- List.tl b.scopes) f

let finish b =
  let body =
    match b.blocks with
    | [ top ] -> List.rev top
    | _ -> invalid_arg "Batch_dsl.finish: unbalanced blocks"
  in
  let p =
    {
      Surface.name = b.name;
      arrays = List.rev b.arrays;
      outputs = List.rev b.outputs;
      body;
    }
  in
  match Surface.validate p with Ok () -> p | Error d -> Diagnostic.error d
