(** Slot layouts: mapping array elements to ciphertext slots.

    Every array of a surface program is packed into one ciphertext (or one
    plaintext coefficient vector); a layout is the injective map from the
    array's logical multi-index to a slot in [0, size). The choice decides
    which rotation amounts the lowering needs:

    - {!Row}: row-major flattening — the natural layout for 1-D arrays and
      stencil access ([a\[i+di, j+dj\]] is one rotation per tap).
    - {!Col}: column-major flattening of 2-D arrays — pairs column accesses
      with row-major partners.
    - {!Diag}: the Halevi–Shoup diagonal order for 2-D arrays: element
      [(i, j)] of an [r x c] matrix goes to slot [((j - i) mod c) * r + i],
      so the whole generalized diagonal [j - i = d] is contiguous and a
      matrix–vector product needs one rotation per nonzero diagonal instead
      of one per element.

    For non-2-D arrays {!Col} and {!Diag} degenerate to {!Row}. *)

type kind = Row | Col | Diag

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val candidates : Surface.array_decl -> kind list
(** Layout kinds worth trying for this array: [[Row]] unless the array is
    2-D, then [[Row; Col; Diag]]. *)

val slot : kind -> dims:int list -> int list -> int
(** Slot of a logical multi-index (a bijection on [0, size)).
    @raise Invalid_argument on a rank mismatch. *)

val slot_of_flat : kind -> dims:int list -> int -> int
(** Slot of a row-major flat element index — {!slot} after un-flattening. *)

type assignment = (string * kind) list
(** Chosen layout per ciphertext-carrying array ([Input] and [Local]), in
    declaration order. [Plain] arrays take no layout — their values fold
    into plaintext coefficient vectors at the consuming sites' slots. *)

val assignment_to_string : assignment -> string
(** [name:kind] pairs joined with [", "] — for [hecatec batch] reports and
    bench metadata. *)
