module Diagnostic = Hecate_ir.Diagnostic
module Prog = Hecate_ir.Prog

type affine = { terms : (string * int) list; const : int }

let affine_norm { terms; const } =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (v, c) ->
      Hashtbl.replace tbl v (c + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    terms;
  let terms =
    Hashtbl.fold (fun v c acc -> if c = 0 then acc else (v, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { terms; const }

let affine_const const = { terms = []; const }
let affine_var ?(coeff = 1) v = affine_norm { terms = [ (v, coeff) ]; const = 0 }

let affine_add a b =
  affine_norm { terms = a.terms @ b.terms; const = a.const + b.const }

let affine_to_string { terms; const } =
  let term (v, c) =
    if c = 1 then v else if c = -1 then "-" ^ v else Printf.sprintf "%d*%s" c v
  in
  match terms with
  | [] -> string_of_int const
  | t0 :: rest ->
      let buf = Buffer.create 16 in
      Buffer.add_string buf (term t0);
      List.iter
        (fun (v, c) ->
          if c < 0 then Buffer.add_string buf (Printf.sprintf "-%s" (term (v, -c)))
          else Buffer.add_string buf (Printf.sprintf "+%s" (term (v, c))))
        rest;
      if const > 0 then Buffer.add_string buf (Printf.sprintf "+%d" const)
      else if const < 0 then Buffer.add_string buf (string_of_int const);
      Buffer.contents buf

type binop = Add | Sub | Mul

type expr =
  | Load of { arr : string; idx : affine list }
  | Lit of float
  | Ref of string
  | Neg of expr
  | Bin of binop * expr * expr

type stmt =
  | For of { var : string; lo : int; hi : int; body : stmt list }
  | Let of { name : string; expr : expr }
  | Store of site
  | Accum of site

and site = {
  arr : string;
  idx : affine list;
  expr : expr;
  prov : Prog.provenance option;
}

type array_kind = Input | Plain of float array | Local

type array_decl = { name : string; dims : int list; kind : array_kind }

type t = {
  name : string;
  arrays : array_decl list;
  outputs : string list;
  body : stmt list;
}

let array_decl p name = List.find_opt (fun (a : array_decl) -> a.name = name) p.arrays
let array_size a = List.fold_left ( * ) 1 a.dims

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let err ?prov fmt =
  Printf.ksprintf
    (fun message ->
      Error
        (Diagnostic.v ?provenance:prov ~code:Diagnostic.Precondition
           ~hint:"see docs/BATCHING.md for the supported scalar-program shape" message))
    fmt

(* min/max of an affine form over loop-variable ranges *)
let affine_range bounds a =
  List.fold_left
    (fun (lo, hi) (v, c) ->
      match List.assoc_opt v bounds with
      | None -> (lo, hi) (* caught separately as an unbound variable *)
      | Some (vlo, vhi) ->
          if c >= 0 then (lo + (c * vlo), hi + (c * vhi)) else (lo + (c * vhi), hi + (c * vlo)))
    (a.const, a.const) a.terms

let validate (p : t) =
  let ( let* ) = Result.bind in
  let* () = if p.name = "" then err "program has no name" else Ok () in
  let* () =
    let seen = Hashtbl.create 8 in
    List.fold_left
      (fun acc (a : array_decl) ->
        let* () = acc in
        let* () =
          if Hashtbl.mem seen a.name then err "array %S declared twice" a.name else Ok ()
        in
        Hashtbl.replace seen a.name ();
        let* () =
          if a.dims = [] || List.exists (fun d -> d <= 0) a.dims then
            err "array %S: dimensions must be positive" a.name
          else Ok ()
        in
        match a.kind with
        | Plain data when Array.length data <> array_size a ->
            err "plain array %S: %d elements declared, %d provided" a.name (array_size a)
              (Array.length data)
        | _ -> Ok ())
      (Ok ()) p.arrays
  in
  let* () =
    List.fold_left
      (fun acc out ->
        let* () = acc in
        match array_decl p out with
        | None -> err "output %S is not a declared array" out
        | Some { kind = Plain _; _ } -> err "output %S is a plain (constant) array" out
        | Some { kind = Input; _ } -> err "output %S is an encrypted input" out
        | Some { kind = Local; _ } -> Ok ())
      (Ok ()) p.outputs
  in
  let* () = if p.outputs = [] then err "program has no outputs" else Ok () in
  (* body: scoping and static bounds *)
  let check_idx ~prov ~what bounds arr idx =
    let* decl =
      match array_decl p arr with
      | Some d -> Ok d
      | None -> err ?prov "%s: array %S is not declared" what arr
    in
    let* () =
      if List.length idx <> List.length decl.dims then
        err ?prov "%s: array %S has rank %d, %d indices given" what arr
          (List.length decl.dims) (List.length idx)
      else Ok ()
    in
    List.fold_left2
      (fun acc a dim ->
        let* () = acc in
        let* () =
          List.fold_left
            (fun acc (v, _) ->
              let* () = acc in
              if List.mem_assoc v bounds then Ok ()
              else err ?prov "%s: index uses %S outside any enclosing loop" what v)
            (Ok ()) a.terms
        in
        let lo, hi = affine_range bounds a in
        if lo < 0 || hi >= dim then
          err ?prov "%s: index %s ranges over [%d,%d] outside %S's dimension %d" what
            (affine_to_string a) lo hi arr dim
        else Ok ())
      (Ok ()) idx decl.dims
  in
  let rec check_expr ~prov bounds lets = function
    | Lit _ -> Ok ()
    | Ref r ->
        if List.mem r lets then Ok ()
        else err ?prov "reference to unbound scalar %S" r
    | Load { arr; idx } -> check_idx ~prov ~what:("load of " ^ arr) bounds arr idx
    | Neg e -> check_expr ~prov bounds lets e
    | Bin (_, a, b) ->
        let* () = check_expr ~prov bounds lets a in
        check_expr ~prov bounds lets b
  in
  let rec check_block bounds lets = function
    | [] -> Ok ()
    | For { var; lo; hi; body } :: rest ->
        let* () =
          if List.mem_assoc var bounds then
            err "loop variable %S shadows an enclosing loop" var
          else Ok ()
        in
        let* () =
          if lo > hi then Ok () (* zero iterations, nothing to check inside *)
          else check_block ((var, (lo, hi)) :: bounds) lets body
        in
        check_block bounds lets rest
    | Let { name; expr } :: rest ->
        let* () = check_expr ~prov:None bounds lets expr in
        check_block bounds (name :: lets) rest
    | Store s :: rest | Accum s :: rest ->
        let* decl =
          match array_decl p s.arr with
          | Some d -> Ok d
          | None -> err ?prov:s.prov "write to undeclared array %S" s.arr
        in
        let* () =
          match decl.kind with
          | Plain _ -> err ?prov:s.prov "write to plain (constant) array %S" s.arr
          | Input -> err ?prov:s.prov "write to encrypted input array %S" s.arr
          | Local -> Ok ()
        in
        let* () = check_idx ~prov:s.prov ~what:("write to " ^ s.arr) bounds s.arr s.idx in
        let* () = check_expr ~prov:s.prov bounds lets s.expr in
        check_block bounds lets rest
  in
  check_block [] [] p.body

(* ------------------------------------------------------------------ *)
(* Reference interpreter                                               *)
(* ------------------------------------------------------------------ *)

let flat_index decl idx_values =
  List.fold_left2 (fun acc i d -> (acc * d) + i) 0 idx_values decl.dims

let execute (p : t) ~inputs =
  (match validate p with
  | Ok () -> ()
  | Error d -> invalid_arg ("Surface.execute: " ^ Diagnostic.to_string d));
  let storage = Hashtbl.create 8 in
  List.iter
    (fun (a : array_decl) ->
      let data =
        match a.kind with
        | Plain data -> Array.copy data
        | Local -> Array.make (array_size a) 0.
        | Input -> (
            match List.assoc_opt a.name inputs with
            | None -> invalid_arg (Printf.sprintf "Surface.execute: missing input %S" a.name)
            | Some given ->
                let out = Array.make (array_size a) 0. in
                Array.blit given 0 out 0 (min (Array.length given) (Array.length out));
                out)
      in
      Hashtbl.replace storage a.name data)
    p.arrays;
  let eval_affine env a =
    List.fold_left (fun acc (v, c) -> acc + (c * List.assoc v env)) a.const a.terms
  in
  let slot env arr idx =
    let decl = Option.get (array_decl p arr) in
    flat_index decl (List.map (eval_affine env) idx)
  in
  let rec eval_expr env lets = function
    | Lit x -> x
    | Ref r -> List.assoc r lets
    | Neg e -> -.eval_expr env lets e
    | Bin (op, a, b) -> (
        let va = eval_expr env lets a and vb = eval_expr env lets b in
        match op with Add -> va +. vb | Sub -> va -. vb | Mul -> va *. vb)
    | Load { arr; idx } -> (Hashtbl.find storage arr).(slot env arr idx)
  in
  let rec run env lets = function
    | [] -> ()
    | For { var; lo; hi; body } :: rest ->
        for i = lo to hi do
          run ((var, i) :: env) lets body
        done;
        run env lets rest
    | Let { name; expr } :: rest -> run env ((name, eval_expr env lets expr) :: lets) rest
    | Store s :: rest ->
        (Hashtbl.find storage s.arr).(slot env s.arr s.idx) <- eval_expr env lets s.expr;
        run env lets rest
    | Accum s :: rest ->
        let data = Hashtbl.find storage s.arr in
        let i = slot env s.arr s.idx in
        data.(i) <- data.(i) +. eval_expr env lets s.expr;
        run env lets rest
  in
  run [] [] p.body;
  List.map (fun out -> (out, Hashtbl.find storage out)) p.outputs

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

(* shortest float literal that round-trips *)
let float_lit x =
  let short = Printf.sprintf "%.12g" x in
  if float_of_string short = x then short else Printf.sprintf "%.17g" x

let rec expr_to_buf buf ~prec e =
  let paren p body =
    if p < prec then begin
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')'
    end
    else body ()
  in
  match e with
  | Lit x ->
      if x < 0. then paren 0 (fun () -> Buffer.add_string buf (float_lit x))
      else Buffer.add_string buf (float_lit x)
  | Ref r -> Buffer.add_string buf r
  | Load { arr; idx } ->
      Buffer.add_string buf arr;
      Buffer.add_char buf '[';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (affine_to_string a))
        idx;
      Buffer.add_char buf ']'
  | Neg e ->
      paren 2
        (fun () ->
          Buffer.add_char buf '-';
          expr_to_buf buf ~prec:3 e)
  | Bin (op, a, b) ->
      let p, s = match op with Add -> (1, " + ") | Sub -> (1, " - ") | Mul -> (2, " * ") in
      paren p (fun () ->
          expr_to_buf buf ~prec:p a;
          Buffer.add_string buf s;
          (* left-associative: the right operand needs one level more *)
          expr_to_buf buf ~prec:(p + 1) b)

let expr_to_string e =
  let buf = Buffer.create 32 in
  expr_to_buf buf ~prec:0 e;
  Buffer.contents buf

let to_string (p : t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "batch %s {\n" p.name);
  List.iter
    (fun (a : array_decl) ->
      let dims = String.concat ", " (List.map string_of_int a.dims) in
      match a.kind with
      | Input -> Buffer.add_string buf (Printf.sprintf "  input %s[%s];\n" a.name dims)
      | Local ->
          if List.mem a.name p.outputs then
            Buffer.add_string buf (Printf.sprintf "  output %s[%s];\n" a.name dims)
          else Buffer.add_string buf (Printf.sprintf "  local %s[%s];\n" a.name dims)
      | Plain data ->
          Buffer.add_string buf (Printf.sprintf "  plain %s[%s] = [" a.name dims);
          Array.iteri
            (fun i x ->
              if i > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf (float_lit x))
            data;
          Buffer.add_string buf "];\n")
    p.arrays;
  let rec stmt indent s =
    let pad = String.make indent ' ' in
    match s with
    | For { var; lo; hi; body } ->
        Buffer.add_string buf (Printf.sprintf "%sfor %s = %d to %d {\n" pad var lo hi);
        List.iter (stmt (indent + 2)) body;
        Buffer.add_string buf (pad ^ "}\n")
    | Let { name; expr } ->
        Buffer.add_string buf (Printf.sprintf "%slet %s = %s;\n" pad name (expr_to_string expr))
    | Store { arr; idx; expr; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s[%s] = %s;\n" pad arr
             (String.concat ", " (List.map affine_to_string idx))
             (expr_to_string expr))
    | Accum { arr; idx; expr; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s[%s] += %s;\n" pad arr
             (String.concat ", " (List.map affine_to_string idx))
             (expr_to_string expr))
  in
  List.iter (stmt 2) p.body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_stop of int * string
(* internal; re-raised as Hecate_ir.Parser.Parse_error *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Sym of char  (* one of { } [ ] ( ) , ; = + - * *)
  | Plus_eq

type lexed = { tok : token; line : int }

let lex src =
  let toks = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    (match c with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '#' -> while !i < n && src.[!i] <> '\n' do incr i done
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !i in
        while
          !i < n
          && match src.[!i] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
        do
          incr i
        done;
        toks := { tok = Ident (String.sub src start (!i - start)); line = !line } :: !toks
    | '0' .. '9' | '.' ->
        let start = !i in
        let is_float = ref (c = '.') in
        while
          !i < n
          &&
          match src.[!i] with
          | '0' .. '9' -> true
          | '.' | 'e' | 'E' ->
              is_float := true;
              true
          | '+' | '-' when !i > start && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E') -> true
          | _ -> false
        do
          incr i
        done;
        let text = String.sub src start (!i - start) in
        let tok =
          if !is_float then
            match float_of_string_opt text with
            | Some f -> Float f
            | None -> raise (Parse_stop (!line, Printf.sprintf "bad number %S" text))
          else
            match int_of_string_opt text with
            | Some k -> Int k
            | None -> raise (Parse_stop (!line, Printf.sprintf "bad number %S" text))
        in
        toks := { tok; line = !line } :: !toks
    | '+' when peek 1 = Some '=' ->
        toks := { tok = Plus_eq; line = !line } :: !toks;
        i := !i + 2
    | '{' | '}' | '[' | ']' | '(' | ')' | ',' | ';' | '=' | '+' | '-' | '*' ->
        toks := { tok = Sym c; line = !line } :: !toks;
        incr i
    | c -> raise (Parse_stop (!line, Printf.sprintf "unexpected character %C" c)));
  done;
  List.rev !toks

type state = { mutable rest : lexed list; mutable last_line : int }

let tok_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int k -> Printf.sprintf "integer %d" k
  | Float f -> Printf.sprintf "number %s" (float_lit f)
  | Sym c -> Printf.sprintf "%C" c
  | Plus_eq -> "\"+=\""

let next st =
  match st.rest with
  | [] -> raise (Parse_stop (st.last_line, "unexpected end of input"))
  | { tok; line } :: rest ->
      st.rest <- rest;
      st.last_line <- line;
      tok

let peek st = match st.rest with [] -> None | { tok; _ } :: _ -> Some tok

let expect st want =
  let got = next st in
  if got <> want then
    raise (Parse_stop (st.last_line, Printf.sprintf "expected %s, got %s" (tok_name want) (tok_name got)))

let expect_ident st =
  match next st with
  | Ident s -> s
  | got -> raise (Parse_stop (st.last_line, "expected an identifier, got " ^ tok_name got))

let expect_int st =
  match next st with
  | Int k -> k
  | Sym '-' -> (
      match next st with
      | Int k -> -k
      | got -> raise (Parse_stop (st.last_line, "expected an integer, got " ^ tok_name got)))
  | got -> raise (Parse_stop (st.last_line, "expected an integer, got " ^ tok_name got))

let parse_dims st =
  expect st (Sym '[');
  let rec go acc =
    let d = expect_int st in
    match next st with
    | Sym ',' -> go (d :: acc)
    | Sym ']' -> List.rev (d :: acc)
    | got -> raise (Parse_stop (st.last_line, "expected ',' or ']', got " ^ tok_name got))
  in
  go []

(* affine index: [-] term (('+'|'-') term)* with term = int | ident | int*ident | ident*int *)
let parse_affine st =
  let term neg =
    let s = if neg then -1 else 1 in
    match next st with
    | Int k -> (
        match peek st with
        | Some (Sym '*') ->
            expect st (Sym '*');
            let v = expect_ident st in
            affine_var ~coeff:(s * k) v
        | _ -> affine_const (s * k))
    | Ident v -> (
        match peek st with
        | Some (Sym '*') ->
            expect st (Sym '*');
            let k = expect_int st in
            affine_var ~coeff:(s * k) v
        | _ -> affine_var ~coeff:s v)
    | got ->
        raise
          (Parse_stop
             (st.last_line, "expected an affine index term, got " ^ tok_name got))
  in
  let first = match peek st with
    | Some (Sym '-') ->
        ignore (next st);
        term true
    | _ -> term false
  in
  let rec go acc =
    match peek st with
    | Some (Sym '+') ->
        ignore (next st);
        go (affine_add acc (term false))
    | Some (Sym '-') ->
        ignore (next st);
        go (affine_add acc (term true))
    | _ -> acc
  in
  go first

let parse_index_list st =
  expect st (Sym '[');
  let rec go acc =
    let a = parse_affine st in
    match next st with
    | Sym ',' -> go (a :: acc)
    | Sym ']' -> List.rev (a :: acc)
    | got -> raise (Parse_stop (st.last_line, "expected ',' or ']', got " ^ tok_name got))
  in
  go []

let rec parse_expr st = parse_sum st

and parse_sum st =
  let rec go acc =
    match peek st with
    | Some (Sym '+') ->
        ignore (next st);
        go (Bin (Add, acc, parse_product st))
    | Some (Sym '-') ->
        ignore (next st);
        go (Bin (Sub, acc, parse_product st))
    | _ -> acc
  in
  go (parse_product st)

and parse_product st =
  let rec go acc =
    match peek st with
    | Some (Sym '*') ->
        ignore (next st);
        go (Bin (Mul, acc, parse_atom st))
    | _ -> acc
  in
  go (parse_atom st)

and parse_atom st =
  match next st with
  | Sym '-' -> Neg (parse_atom st)
  | Sym '(' ->
      let e = parse_expr st in
      expect st (Sym ')');
      e
  | Float f -> Lit f
  | Int k -> Lit (float_of_int k)
  | Ident name -> (
      match peek st with
      | Some (Sym '[') -> Load { arr = name; idx = parse_index_list st }
      | _ -> Ref name)
  | got -> raise (Parse_stop (st.last_line, "expected an expression, got " ^ tok_name got))

let parse_plain_data st =
  expect st (Sym '=');
  expect st (Sym '[');
  let value () =
    match next st with
    | Float f -> f
    | Int k -> float_of_int k
    | Sym '-' -> (
        match next st with
        | Float f -> -.f
        | Int k -> float_of_int (-k)
        | got -> raise (Parse_stop (st.last_line, "expected a number, got " ^ tok_name got)))
    | got -> raise (Parse_stop (st.last_line, "expected a number, got " ^ tok_name got))
  in
  match peek st with
  | Some (Sym ']') ->
      ignore (next st);
      [||]
  | _ ->
      let rec go acc =
        let v = value () in
        match next st with
        | Sym ',' -> go (v :: acc)
        | Sym ']' -> Array.of_list (List.rev (v :: acc))
        | got -> raise (Parse_stop (st.last_line, "expected ',' or ']', got " ^ tok_name got))
      in
      go []

let rec parse_block st =
  let rec go acc =
    match peek st with
    | Some (Sym '}') ->
        ignore (next st);
        List.rev acc
    | Some _ -> go (parse_stmt st :: acc)
    | None -> raise (Parse_stop (st.last_line, "unexpected end of input inside a block"))
  in
  go []

and parse_stmt st =
  match next st with
  | Ident "for" ->
      let var = expect_ident st in
      expect st (Sym '=');
      let lo = expect_int st in
      (match next st with
      | Ident "to" -> ()
      | got -> raise (Parse_stop (st.last_line, "expected \"to\", got " ^ tok_name got)));
      let hi = expect_int st in
      expect st (Sym '{');
      let body = parse_block st in
      For { var; lo; hi; body }
  | Ident "let" ->
      let name = expect_ident st in
      expect st (Sym '=');
      let expr = parse_expr st in
      expect st (Sym ';');
      Let { name; expr }
  | Ident arr ->
      let idx = parse_index_list st in
      let accum =
        match next st with
        | Sym '=' -> false
        | Plus_eq -> true
        | got ->
            raise (Parse_stop (st.last_line, "expected '=' or \"+=\", got " ^ tok_name got))
      in
      let expr = parse_expr st in
      expect st (Sym ';');
      let prov =
        Some { Prog.label = (if accum then "accum " else "store ") ^ arr; context = [] }
      in
      if accum then Accum { arr; idx; expr; prov } else Store { arr; idx; expr; prov }
  | got -> raise (Parse_stop (st.last_line, "expected a statement, got " ^ tok_name got))

let parse src =
  try
    let st = { rest = lex src; last_line = 1 } in
    (match next st with
    | Ident "batch" -> ()
    | got -> raise (Parse_stop (st.last_line, "expected \"batch\", got " ^ tok_name got)));
    let name = expect_ident st in
    expect st (Sym '{');
    let arrays = ref [] in
    let outputs = ref [] in
    let rec decls () =
      match peek st with
      | Some (Ident (("input" | "plain" | "local" | "output") as kw)) ->
          ignore (next st);
          let name = expect_ident st in
          let dims = parse_dims st in
          let kind =
            match kw with
            | "input" -> Input
            | "plain" -> Plain (parse_plain_data st)
            | _ -> Local
          in
          if kw = "output" then outputs := name :: !outputs;
          expect st (Sym ';');
          arrays := { name; dims; kind } :: !arrays;
          decls ()
      | _ -> ()
    in
    decls ();
    let body = parse_block st in
    if st.rest <> [] then
      raise (Parse_stop (st.last_line, "trailing input after the closing '}'"));
    {
      name;
      arrays = List.rev !arrays;
      outputs = List.rev !outputs;
      body;
    }
  with Parse_stop (line, message) -> raise (Hecate_ir.Parser.Parse_error { line; message })

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
