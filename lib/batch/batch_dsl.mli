(** Embedded builder for scalar surface programs ({!Surface.t}).

    The scalar counterpart of {!Hecate_frontend.Dsl}: apps construct loop
    programs programmatically instead of parsing text, with provenance
    labels stamped onto every store/accumulate site so diagnostics from
    lowering and scale management point back at the surface construct.

    Statements are emitted into the innermost open block; {!for_} opens a
    block for the loop body and hands the callback the loop variable as an
    affine index. {!finish} validates and returns the program. *)

type t
type expr = Surface.expr
type idx = Surface.affine

val create : ?name:string -> unit -> t

(** {2 Array declarations} — names are returned for convenience. *)

val input : t -> string -> int list -> string
(** Encrypted input array. *)

val plain : t -> string -> int list -> float array -> string
(** Compile-time constant array, row-major data. *)

val local : t -> string -> int list -> string
(** Zero-initialized scratch array. *)

val output_array : t -> string -> int list -> string
(** Zero-initialized array whose final value is a program output. *)

(** {2 Index arithmetic} *)

val i : string -> idx
(** The loop variable as an index. *)

val c : int -> idx
val ( *$ ) : int -> idx -> idx
(** [k *$ i] scales an index. *)

val ( +$ ) : idx -> idx -> idx
val ( -$ ) : idx -> idx -> idx

(** {2 Expressions} *)

val load : string -> idx list -> expr
val lit : float -> expr
val add : expr -> expr -> expr
val sub : expr -> expr -> expr
val mul : expr -> expr -> expr
val neg : expr -> expr

(** {2 Statements} *)

val for_ : t -> string -> lo:int -> hi:int -> (idx -> unit) -> unit
(** Counted loop, inclusive bounds; the body callback emits statements. *)

val let_ : t -> string -> expr -> expr
(** Scalar binding; returns the reference expression. *)

val store : t -> string -> idx list -> expr -> unit
(** [a\[idx\] = e]. *)

val accum : t -> string -> idx list -> expr -> unit
(** [a\[idx\] += e]. *)

val with_label : t -> string -> (unit -> 'a) -> 'a
(** Provenance scope: sites emitted inside carry the label chain, exactly
    like {!Hecate_ir.Prog.Builder.in_scope}. *)

val finish : t -> Surface.t
(** @raise Hecate_ir.Diagnostic.Error ([Precondition]) if the assembled
    program fails {!Surface.validate}. *)
