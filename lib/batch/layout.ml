type kind = Row | Col | Diag

let kind_to_string = function Row -> "row" | Col -> "col" | Diag -> "diag"

let kind_of_string = function
  | "row" -> Some Row
  | "col" -> Some Col
  | "diag" -> Some Diag
  | _ -> None

let candidates (a : Surface.array_decl) =
  match a.dims with [ _; _ ] -> [ Row; Col; Diag ] | _ -> [ Row ]

let row_major ~dims idx = List.fold_left2 (fun acc i d -> (acc * d) + i) 0 idx dims

let slot kind ~dims idx =
  if List.length idx <> List.length dims then
    invalid_arg "Layout.slot: rank mismatch";
  match (kind, dims, idx) with
  | Col, [ r; _c ], [ i; j ] -> (j * r) + i
  | Diag, [ r; c ], [ i; j ] -> ((((j - i) mod c) + c) mod c * r) + i
  | _ -> row_major ~dims idx

let slot_of_flat kind ~dims flat =
  let rec unflatten rev_dims flat acc =
    match rev_dims with
    | [] -> acc
    | d :: rest -> unflatten rest (flat / d) ((flat mod d) :: acc)
  in
  slot kind ~dims (unflatten (List.rev dims) flat [])

type assignment = (string * kind) list

let assignment_to_string a =
  String.concat ", " (List.map (fun (n, k) -> n ^ ":" ^ kind_to_string k) a)
