module Prng = Hecate_support.Prng
module Surface = Hecate_batch.Surface
open Hecate_batch.Batch_dsl

type t = {
  name : string;
  surface : Surface.t;
  inputs : (string * float array) list;
}

let random_vector g k ~lo ~hi = Array.init k (fun _ -> lo +. ((hi -. lo) *. Prng.float01 g))

let matvec ?(rows = 8) ?(cols = 8) () =
  let b = create ~name:(Printf.sprintf "batch_matvec_%dx%d" rows cols) () in
  let w = input b "w" [ rows; cols ] in
  let x = input b "x" [ cols ] in
  let y = output_array b "y" [ rows ] in
  with_label b (Printf.sprintf "matvec %dx%d" rows cols) (fun () ->
      for_ b "j" ~lo:0 ~hi:(rows - 1) (fun j ->
          for_ b "i" ~lo:0 ~hi:(cols - 1) (fun i ->
              accum b y [ j ] (mul (load w [ j; i ]) (load x [ i ])))));
  let g = Prng.create ~seed:0xBA7C1 in
  {
    name = "batch-matvec";
    surface = finish b;
    inputs =
      [
        ("w", random_vector g (rows * cols) ~lo:(-1.) ~hi:1.);
        ("x", random_vector g cols ~lo:(-1.) ~hi:1.);
      ];
  }

let conv2d ?(size = 8) () =
  let b = create ~name:(Printf.sprintf "batch_conv2d_%dx%d" size size) () in
  let img = input b "img" [ size; size ] in
  (* sharpen-like 3x3 kernel *)
  let k =
    plain b "k" [ 3; 3 ] [| 0.0625; 0.125; 0.0625; 0.125; 0.25; 0.125; 0.0625; 0.125; 0.0625 |]
  in
  let out = output_array b "out" [ size; size ] in
  with_label b (Printf.sprintf "conv2d %dx%d" size size) (fun () ->
      for_ b "i" ~lo:1 ~hi:(size - 2) (fun i ->
          for_ b "j" ~lo:1 ~hi:(size - 2) (fun j ->
              for_ b "di" ~lo:0 ~hi:2 (fun di ->
                  for_ b "dj" ~lo:0 ~hi:2 (fun dj ->
                      accum b out [ i; j ]
                        (mul (load k [ di; dj ]) (load img [ i +$ di -$ c 1; j +$ dj -$ c 1 ])))))));
  let g = Prng.create ~seed:0xC0217 in
  {
    name = "batch-conv2d";
    surface = finish b;
    inputs = [ ("img", random_vector g (size * size) ~lo:0. ~hi:1.) ];
  }

let group_by ?(rows = 16) ?(groups = 4) () =
  let b = create ~name:(Printf.sprintf "batch_group_by_%dx%d" rows groups) () in
  let v = input b "v" [ rows ] in
  (* deterministic group membership: row i belongs to group (i * 7 + 3) mod groups *)
  let sel_data = Array.make (groups * rows) 0. in
  for i = 0 to rows - 1 do
    sel_data.((((i * 7) + 3) mod groups * rows) + i) <- 1.
  done;
  let sel = plain b "sel" [ groups; rows ] sel_data in
  let agg = output_array b "agg" [ groups ] in
  with_label b (Printf.sprintf "group_by %d->%d" rows groups) (fun () ->
      for_ b "k" ~lo:0 ~hi:(groups - 1) (fun k ->
          for_ b "i" ~lo:0 ~hi:(rows - 1) (fun i ->
              accum b agg [ k ] (mul (load sel [ k; i ]) (load v [ i ])))));
  let g = Prng.create ~seed:0x96B1 in
  {
    name = "batch-group-by";
    surface = finish b;
    inputs = [ ("v", random_vector g rows ~lo:(-1.) ~hi:1.) ];
  }

let suite () = [ matvec (); conv2d (); group_by () ]

let reference app = Surface.execute app.surface ~inputs:app.inputs
