(** Scalar-program workloads for the SIMD batching frontend (ROADMAP item
    1): the loop programs HECO and Porcupine open, with deterministic
    synthetic data, lowered to vector IR by {!Hecate_batch.Lower} and
    cross-checked against {!Hecate_batch.Surface.execute}. *)

type t = {
  name : string;
  surface : Hecate_batch.Surface.t;
  inputs : (string * float array) list;
      (** logical row-major input arrays — pack with
          {!Hecate_batch.Lower.pack_input} before encryption *)
}

val matvec : ?rows:int -> ?cols:int -> unit -> t
(** Encrypted matrix times encrypted vector, [y_j = sum_i w j i * x_i]
    (default 8x8) — the workload where the diagonal layout's one rotation
    per generalized diagonal beats row-major's one per element. *)

val conv2d : ?size:int -> unit -> t
(** 3x3 plaintext stencil over an encrypted [size x size] image (default
    8), interior only: row-major layout needs one rotation per tap. *)

val group_by : ?rows:int -> ?groups:int -> unit -> t
(** Database-style aggregation (default 16 rows, 4 groups): a plaintext
    0/1 selector matrix folds into masked coefficient vectors,
    [agg_k = sum_i sel k i * v_i]. *)

val suite : unit -> t list
(** The three workloads at default sizes. *)

val reference : t -> (string * float array) list
(** Exact scalar reference outputs for the app's own inputs. *)
