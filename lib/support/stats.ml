let check_nonempty name a = if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty input")

let mean a =
  check_nonempty "mean" a;
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let variance a =
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a /. float_of_int (Array.length a)

let rmse a b =
  if Array.length a <> Array.length b then invalid_arg "Stats.rmse: length mismatch";
  check_nonempty "rmse" a;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int (Array.length a))

let max_abs_diff a b =
  if Array.length a <> Array.length b then invalid_arg "Stats.max_abs_diff: length mismatch";
  let m = ref 0. in
  for i = 0 to Array.length a - 1 do
    m := Float.max !m (Float.abs (a.(i) -. b.(i)))
  done;
  !m

let geomean a =
  check_nonempty "geomean" a;
  let acc = Array.fold_left (fun acc x ->
      if x <= 0. then invalid_arg "Stats.geomean: non-positive value";
      acc +. log x) 0. a
  in
  exp (acc /. float_of_int (Array.length a))

let relative_error ~actual ~estimate = Float.abs (estimate -. actual) /. actual

let median a =
  check_nonempty "median" a;
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  if n land 1 = 1 then s.(n / 2) else 0.5 *. (s.((n / 2) - 1) +. s.(n / 2))

(* The stdlib exposes no raw monotonic clock; clamp the wall clock to be
   non-decreasing (across domains) so a backwards NTP step can never yield a
   negative duration. Jitter robustness comes from median-of-reps on top. *)
let last_now = Atomic.make 0.

let monotonic_now_s () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let last = Atomic.get last_now in
    if t <= last then last
    else if Atomic.compare_and_set last_now last t then t
    else clamp ()
  in
  clamp ()

let time_median ?(warmup = 1) ?(min_sample_s = 0.) ~reps f =
  if reps < 1 then invalid_arg "Stats.time_median: reps must be >= 1";
  if warmup < 0 then invalid_arg "Stats.time_median: negative warmup";
  for _ = 1 to warmup do
    f ()
  done;
  (* Batch enough calls per sample that one sample is measurable. *)
  let batch =
    if min_sample_s <= 0. then 1
    else begin
      let t0 = monotonic_now_s () in
      f ();
      let once = monotonic_now_s () -. t0 in
      if once >= min_sample_s then 1
      else max 1 (int_of_float (ceil (min_sample_s /. Float.max once 1e-9)))
    end
  in
  let sample () =
    let t0 = monotonic_now_s () in
    for _ = 1 to batch do
      f ()
    done;
    (monotonic_now_s () -. t0) /. float_of_int batch
  in
  median (Array.init reps (fun _ -> sample ()))

let percentile xs p =
  check_nonempty "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))
