(** Minimal JSON reading and writing for the in-tree consumers: the bench
    regression gate (BENCH_*.json artifacts), the plan cache's on-disk
    entries, and the [hecated] newline-delimited job protocol.

    Numbers are floats; [render] emits a single line (no embedded
    newlines), so rendered values can be framed by newline-delimited
    transports as-is. Non-finite numbers render as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input (with the offending offset). *)

val member : string -> t -> t
(** Field of an object; [Null] when absent or not an object. *)

val to_list : t -> t list
val to_float : t -> float option
val to_int : t -> int option
val to_string : t -> string option
val to_bool : t -> bool option

val render : t -> string
(** Compact single-line rendering; [parse (render v)] is [v] up to float
    formatting. *)

val int : int -> t
(** [Num] of an integer. *)
