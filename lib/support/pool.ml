(* Shutdown is a three-state machine so that it is safe to call from
   several threads/domains at once: the first caller moves the pool to
   [Closing], drains the queue (workers finish every task submitted
   before the shutdown) and joins the worker domains; concurrent callers
   block on [settled] until the first one reaches [Closed]. The daemon
   relies on this to drain cleanly on SIGTERM while request threads may
   still be racing their own cleanup. *)
type state = Running | Closing | Closed

type t = {
  mutable domains : unit Domain.t array;
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  wakeup : Condition.t; (* signalled on push and on shutdown *)
  settled : Condition.t; (* broadcast when state reaches Closed *)
  mutable state : state;
}

let default_size () = max 1 (Domain.recommended_domain_count () - 1)
let size t = t.size

let rec worker t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && t.state = Running do
    Condition.wait t.wakeup t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closing and drained *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    (* Tasks are expected to capture their own exceptions ([map_array]
       does); a stray one must not kill the worker. *)
    (try task () with _ -> ());
    worker t
  end

let create ?size () =
  let n = match size with Some s -> max 1 s | None -> default_size () in
  let t =
    {
      domains = [||];
      size = n;
      queue = Queue.create ();
      mutex = Mutex.create ();
      wakeup = Condition.create ();
      settled = Condition.create ();
      state = Running;
    }
  in
  t.domains <- Array.init n (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t task =
  Mutex.lock t.mutex;
  if t.state <> Running then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.signal t.wakeup;
  Mutex.unlock t.mutex

let map_array t ~f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let remaining = ref n in
    let finished = Mutex.create () and all_done = Condition.create () in
    Array.iteri
      (fun i x ->
        submit t (fun () ->
            let r =
              try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            Mutex.lock finished;
            results.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.signal all_done;
            Mutex.unlock finished))
      arr;
    Mutex.lock finished;
    while !remaining > 0 do
      Condition.wait all_done finished
    done;
    Mutex.unlock finished;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let shutdown t =
  Mutex.lock t.mutex;
  match t.state with
  | Closed -> Mutex.unlock t.mutex
  | Closing ->
      (* Another caller is already draining and joining; wait until it is
         actually done so that "shutdown returned" always means "workers
         joined", whoever called it. *)
      while t.state <> Closed do
        Condition.wait t.settled t.mutex
      done;
      Mutex.unlock t.mutex
  | Running ->
      t.state <- Closing;
      Condition.broadcast t.wakeup;
      let domains = t.domains in
      t.domains <- [||];
      Mutex.unlock t.mutex;
      Array.iter Domain.join domains;
      Mutex.lock t.mutex;
      t.state <- Closed;
      Condition.broadcast t.settled;
      Mutex.unlock t.mutex

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Shared kernel pool                                                  *)
(* ------------------------------------------------------------------ *)

module Kernel = struct
  (* Parsed once: a malformed HECATE_KERNEL_JOBS used to be silently
     ignored, which meant "HECATE_KERNEL_JOBS=eight" benchmarked the
     serial kernels while the user believed they were parallel. Warn on
     stderr (once) and fall back to serial. *)
  let env_jobs =
    let parsed =
      lazy
        (match Sys.getenv_opt "HECATE_KERNEL_JOBS" with
        | None | Some "" -> None
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some j when j >= 1 -> Some j
            | Some j ->
                Printf.eprintf
                  "hecate: warning: HECATE_KERNEL_JOBS=%d is out of range (must be >= 1); \
                   running serial\n%!"
                  j;
                None
            | None ->
                Printf.eprintf
                  "hecate: warning: HECATE_KERNEL_JOBS=%S is not an integer; running serial\n%!"
                  s;
                None))
    in
    fun () -> Lazy.force parsed

  let requested : int option Atomic.t = Atomic.make None

  let jobs () =
    match Atomic.get requested with
    | Some j -> j
    | None -> ( match env_jobs () with Some j -> j | None -> 1)

  (* The pool is spawned lazily on the first parallel iteration and resized
     when the job count changes; [lock] serializes (re)configuration, not
     task submission. *)
  let lock = Mutex.create ()
  let pool : t option ref = ref None
  let at_exit_registered = ref false

  let set_jobs j =
    let j = max 1 j in
    Mutex.lock lock;
    Atomic.set requested (Some j);
    (match !pool with
    | Some p when size p <> j ->
        pool := None;
        Mutex.unlock lock;
        shutdown p;
        Mutex.lock lock
    | _ -> ());
    Mutex.unlock lock

  let get_pool () =
    Mutex.lock lock;
    let p =
      match !pool with
      | Some p when size p = jobs () -> p
      | other ->
          (match other with Some stale -> shutdown stale | None -> ());
          let p = create ~size:(jobs ()) () in
          pool := Some p;
          if not !at_exit_registered then begin
            at_exit_registered := true;
            Stdlib.at_exit (fun () ->
                Mutex.lock lock;
                let p = !pool in
                pool := None;
                Mutex.unlock lock;
                Option.iter shutdown p)
          end;
          p
    in
    Mutex.unlock lock;
    p

  let parallel_for count f =
    if count <= 0 then ()
    else if count = 1 || jobs () <= 1 then
      for i = 0 to count - 1 do
        f i
      done
    else ignore (map_array (get_pool ()) ~f (Array.init count Fun.id))
end
