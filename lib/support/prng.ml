type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

(* FNV-1a over the stream name, folded into the parent state via splitmix64
   expansion. Reads the parent state without advancing it, so sibling
   sub-streams are order-independent and re-derivable at any time. *)
let split g name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    name;
  let st = ref (Int64.logxor !h g.s0) in
  let s0 = splitmix64 st in
  st := Int64.logxor !st g.s1;
  let s1 = splitmix64 st in
  st := Int64.logxor !st g.s2;
  let s2 = splitmix64 st in
  st := Int64.logxor !st g.s3;
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

(* Non-negative 62-bit int from the top bits of the raw output. *)
let bits62 g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int_below g n =
  if n <= 0 then invalid_arg "Prng.int_below: bound must be positive";
  (* Rejection sampling on 62-bit outputs to avoid modulo bias. *)
  let limit = 0x3FFF_FFFF_FFFF_FFFF / n * n in
  let rec draw () =
    let r = bits62 g in
    if r < limit then r mod n else draw ()
  in
  draw ()

let uniform_mod g q = int_below g q

let float01 g = float_of_int (bits62 g) *. 0x1p-62

let ternary g = int_below g 3 - 1

let centered_binomial g ~eta =
  let rec popcount_bits acc bits k =
    if k = 0 then acc
    else popcount_bits (acc + Int64.to_int (Int64.logand bits 1L)) (Int64.shift_right_logical bits 1) (k - 1)
  in
  let rec draw acc remaining =
    if remaining = 0 then acc
    else
      let take = min remaining 32 in
      let a = popcount_bits 0 (bits64 g) take in
      let b = popcount_bits 0 (bits64 g) take in
      draw (acc + a - b) (remaining - take)
  in
  draw 0 eta

let gaussian g ~sigma =
  let rec nonzero () =
    let u = float01 g in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float01 g in
  sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int_below g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
