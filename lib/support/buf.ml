(* Unboxed residue storage: a Bigarray of native ints. The payload lives
   outside the OCaml heap, so the GC neither scans nor moves it — at ring
   degrees 2^15/2^16 a single polynomial carries megabytes of residues, and
   keeping them out of the major heap is what makes the evaluator hot paths
   allocation-pressure-free. Accessors are re-declared [external]s at the
   concrete type so ocamlopt compiles them to the specialized one-load
   bigarray primitives (no polymorphic dispatch, no boxing). *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external get : t -> int -> int = "%caml_ba_ref_1"
external set : t -> int -> int -> unit = "%caml_ba_set_1"
external unsafe_get : t -> int -> int = "%caml_ba_unsafe_ref_1"
external unsafe_set : t -> int -> int -> unit = "%caml_ba_unsafe_set_1"
external length : t -> int = "%caml_ba_dim_1"

let create n =
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill b 0;
  b

let fill (b : t) v = Bigarray.Array1.fill b v

let sub (b : t) pos len : t = Bigarray.Array1.sub b pos len

let blit ~(src : t) ~(dst : t) = Bigarray.Array1.blit src dst

let copy (b : t) =
  let c = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (length b) in
  Bigarray.Array1.blit b c;
  c

let of_array a =
  let n = Array.length a in
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  for i = 0 to n - 1 do
    unsafe_set b i (Array.unsafe_get a i)
  done;
  b

let to_array (b : t) = Array.init (length b) (fun i -> unsafe_get b i)

let init n f =
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  for i = 0 to n - 1 do
    unsafe_set b i (f i)
  done;
  b

let equal (a : t) (b : t) =
  length a = length b
  &&
  let rec go i = i >= length a || (unsafe_get a i = unsafe_get b i && go (i + 1)) in
  go 0
