(** Negacyclic number-theoretic transform modulo an NTT-friendly prime.

    A table caches the powers of a primitive [2n]-th root of unity [ψ] in
    bit-reversed order (Longa–Naehrig layout), together with their Shoup
    precomputations ([floor(w * 2^31 / p)]) and a Barrett context for the
    prime. Point-wise multiplication of two forward-transformed vectors
    followed by {!inverse} computes the product in [Z_p\[X\]/(X^n + 1)].

    Residue vectors are {!Buf.t} — unboxed Bigarray storage the GC never
    scans (see buf.mli); transforms mutate them in place.

    The default {!forward}/{!inverse} butterflies use Shoup multiplication
    and contain no division instruction; the [*_naive] entry points are the
    division-based reference used for validation and the [bench kernels]
    before/after comparison. Both produce bit-identical canonical output.
    When {!Kernels.use_naive} is set, {!forward}/{!inverse} dispatch to the
    reference path. *)

type table
(** Precomputed twiddle factors for one (prime, degree) pair. *)

val make_table : p:int -> n:int -> table
(** [make_table ~p ~n] builds tables for degree [n] (a power of two) and
    prime [p ≡ 1 (mod 2n)]. *)

val prime : table -> int
val degree : table -> int

val barrett : table -> Modarith.ctx
(** Barrett context for the table's prime. *)

val forward : table -> Buf.t -> unit
(** In-place forward negacyclic NTT. Input and output are canonical residues.
    The output ordering is an internal (bit-reversed) one; it is consistent
    between {!forward} and {!inverse} and suitable for point-wise products. *)

val inverse : table -> Buf.t -> unit
(** In-place inverse transform; [inverse t (forward t a) = a]. *)

val forward_naive : table -> Buf.t -> unit
(** Division-based reference forward transform (bit-identical to
    {!forward}). *)

val inverse_naive : table -> Buf.t -> unit
(** Division-based reference inverse transform (bit-identical to
    {!inverse}). *)

val pointwise_mul : table -> Buf.t -> Buf.t -> Buf.t -> unit
(** [pointwise_mul t dst a b] sets [dst.(i) <- a.(i) * b.(i) mod p]. [dst]
    may alias [a] or [b]. *)

val negacyclic_mul : table -> Buf.t -> Buf.t -> Buf.t
(** Reference entry point: full negacyclic polynomial product of two
    coefficient vectors (allocates; transforms copies). *)

val galois_perm : table -> galois:int -> int array
(** [galois_perm t ~galois:g] is the slot permutation the automorphism
    [X -> X^g] ([g] odd) induces on forward-transformed vectors:
    [out.(j) = in.(perm.(j))] applied point-wise equals transforming
    [f(X^g)] directly. The permutation depends only on the ring degree and
    [g] (not the prime), and is cached process-wide; safe to call from
    multiple domains. Hoisted rotation key switching uses it to rotate
    already-decomposed digits without leaving the Eval domain. *)
