(** Fixed-size worker pool on OCaml 5 domains.

    A pool owns [size] worker domains that drain a shared task queue
    (protected by a [Mutex.t]/[Condition.t] pair — no external
    dependencies). It exists for the compiler's embarrassingly parallel
    hot paths, first of all SMSE neighbourhood evaluation in
    {!Hecate.Explore}: each task is an independent closure with no shared
    mutable state, so work distribution is the only coordination needed.

    Pools are cheap enough to create per search (domain spawn is tens of
    microseconds) but must be {!shutdown} — or wrapped in {!with_pool} —
    to join the worker domains. Tasks must not themselves block on the
    same pool: a task that calls {!map_array} on its own pool can
    deadlock once every worker is busy. *)

type t

val default_size : unit -> int
(** [Domain.recommended_domain_count () - 1] (one slot is left for the
    submitting domain), clamped to at least 1. *)

val create : ?size:int -> unit -> t
(** Spawn a pool of [size] workers (default {!default_size}; values below
    1 are clamped to 1). *)

val size : t -> int
(** Number of worker domains. *)

val map_array : t -> f:('a -> 'b) -> 'a array -> 'b array
(** [map_array t ~f arr] evaluates [f] over every element on the pool and
    blocks until all results are in, preserving order. If any task
    raises, one of the raised exceptions is re-raised (with its
    backtrace) in the calling domain after every task has finished —
    the pool itself stays usable. *)

val shutdown : t -> unit
(** Finish the queued tasks, then join every worker domain. Idempotent;
    submitting to a shut-down pool raises [Invalid_argument]. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] over a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)
