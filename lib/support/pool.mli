(** Fixed-size worker pool on OCaml 5 domains.

    A pool owns [size] worker domains that drain a shared task queue
    (protected by a [Mutex.t]/[Condition.t] pair — no external
    dependencies). It exists for the compiler's embarrassingly parallel
    hot paths, first of all SMSE neighbourhood evaluation in
    {!Hecate.Explore}: each task is an independent closure with no shared
    mutable state, so work distribution is the only coordination needed.

    Pools are cheap enough to create per search (domain spawn is tens of
    microseconds) but must be {!shutdown} — or wrapped in {!with_pool} —
    to join the worker domains. Tasks must not themselves block on the
    same pool: a task that calls {!map_array} on its own pool can
    deadlock once every worker is busy. *)

type t

val default_size : unit -> int
(** [Domain.recommended_domain_count () - 1] (one slot is left for the
    submitting domain), clamped to at least 1. *)

val create : ?size:int -> unit -> t
(** Spawn a pool of [size] workers (default {!default_size}; values below
    1 are clamped to 1). *)

val size : t -> int
(** Number of worker domains. *)

val map_array : t -> f:('a -> 'b) -> 'a array -> 'b array
(** [map_array t ~f arr] evaluates [f] over every element on the pool and
    blocks until all results are in, preserving order. If any task
    raises, one of the raised exceptions is re-raised (with its
    backtrace) in the calling domain after every task has finished —
    the pool itself stays usable. *)

val shutdown : t -> unit
(** Finish the queued tasks, then join every worker domain. Idempotent
    and safe to call concurrently from several threads or domains: every
    caller blocks until the workers are actually joined, whichever call
    does the joining. Work submitted before the shutdown is guaranteed to
    run; submitting to a shut-down pool raises [Invalid_argument]. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] over a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)

(** Process-wide worker pool for the RNS kernel hot loops.

    {!Hecate_rns.Poly} fans its independent per-RNS-component loops (one
    NTT or residue loop per modulus) out over this pool when more than one
    job is configured. The job count comes from {!Kernel.set_jobs} when
    called, else from the [HECATE_KERNEL_JOBS] environment variable, else
    defaults to 1 (serial) — parallel kernels are strictly opt-in so that
    nested parallelism with exploration pools never oversubscribes by
    surprise. Results are bit-identical for every job count.

    The pool is spawned lazily on first use, resized on {!Kernel.set_jobs},
    and joined via [at_exit]. Tasks must not themselves call
    {!Kernel.parallel_for}. *)
module Kernel : sig
  val jobs : unit -> int
  (** Effective job count: [set_jobs] override, else [HECATE_KERNEL_JOBS],
      else 1. *)

  val set_jobs : int -> unit
  (** Set the job count (clamped to at least 1; 1 means serial). Resizes
      the shared pool on next use. Do not call concurrently with kernel
      work on other domains. *)

  val parallel_for : int -> (int -> unit) -> unit
  (** [parallel_for count f] runs [f 0 .. f (count-1)], on the shared pool
      when [jobs () > 1] and [count > 1], serially otherwise. Blocks until
      every iteration finished; exceptions propagate after all complete. *)
end
