(** Whole-file I/O helpers for the bench harness's committed artifacts. *)

val write_atomic : path:string -> string -> unit
(** [write_atomic ~path contents] writes [contents] to [path] via a
    temporary file in the same directory and an atomic rename, so an
    interrupted run can never leave a truncated file at [path]. The
    temporary file is removed on failure. *)

val read_file : path:string -> string
(** Read a whole file into a string. *)
