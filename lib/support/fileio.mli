(** Whole-file I/O helpers: the bench harness's committed artifacts and the
    plan cache's on-disk entries. *)

val write_atomic : path:string -> string -> unit
(** [write_atomic ~path contents] writes [contents] to [path] via a
    temporary file in the same directory and an atomic rename. The
    temporary file is fsynced before the rename and the containing
    directory after it (best-effort), so neither an interrupted run nor a
    crash right after the call can leave a truncated or empty file at
    [path]: readers observe either the old contents or the complete new
    contents. The temporary file is removed on failure. *)

val read_file : path:string -> string
(** Read a whole file into a string. *)
