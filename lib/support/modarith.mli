(** Modular arithmetic over word-sized odd prime moduli.

    All moduli handled by this module are at most 31 bits wide so that the
    product of two residues fits in OCaml's 63-bit native [int] without
    overflow. Residues are kept in canonical form, i.e. in [\[0, q)].

    Besides the naive operations, the module provides two division-free
    multiplication kernels used by the RNS hot loops (see
    docs/PERFORMANCE.md for the derivations and invariants):

    - {e Barrett}: a per-modulus {!ctx} precomputes [mu = floor(2^60/q)]
      and two shifts; {!mulmod} then needs only multiplications, shifts and
      a short subtraction loop.
    - {e Shoup}: when one operand [w] is fixed (NTT twiddles, [n^-1]), the
      precomputed [w' = floor(w * 2^31 / q)] lets {!mulmod_shoup} reduce
      with a single estimated-quotient multiply. *)

val max_modulus_bits : int
(** Largest supported modulus width in bits (31). *)

val add : q:int -> int -> int -> int
(** [add ~q a b] is [(a + b) mod q] for canonical [a], [b]. *)

val sub : q:int -> int -> int -> int
(** [sub ~q a b] is [(a - b) mod q], canonical. *)

val neg : q:int -> int -> int
(** [neg ~q a] is [(-a) mod q], canonical. *)

val mul : q:int -> int -> int -> int
(** [mul ~q a b] is [(a * b) mod q] by hardware division. Requires
    [q < 2^31]. The reference against which {!mulmod} is validated. *)

type ctx
(** Barrett reduction context for one modulus. *)

val ctx : q:int -> ctx
(** [ctx ~q] precomputes the Barrett constants for [q], [2 <= q < 2^31]. *)

val modulus : ctx -> int
(** The modulus the context was built for. *)

val mulmod : ctx -> int -> int -> int
(** [mulmod c a b] is [(a * b) mod modulus c] for canonical [a], [b],
    computed without a division instruction. Agrees exactly with {!mul}. *)

val reduce_ctx : ctx -> int -> int
(** [reduce_ctx c z] is [reduce ~q:(modulus c) z] via Barrett, for any [z]
    with [|z| < min (2 * q^2) 2^62] (the quotient-estimate multiply
    overflows beyond that). Every caller reduces either residue products
    ([< q^2]) or centered single-modulus values ([< 2^31]), both well
    inside the domain. *)

val shoup : q:int -> int -> int
(** [shoup ~q w] is the Shoup precomputation [floor(w * 2^31 / q)] for a
    canonical [w]. @raise Invalid_argument if [w] is not in [\[0, q)]. *)

val mulmod_shoup : q:int -> int -> int -> int -> int
(** [mulmod_shoup ~q a w w'] is [(a * w) mod q] given [w' = shoup ~q w].
    Requires canonical [a] and [q < 2^31]; agrees exactly with {!mul}. *)

val pow : q:int -> int -> int -> int
(** [pow ~q b e] is [b^e mod q] by square-and-multiply. [e >= 0]. [b] may
    be any native integer (negative bases are normalized first). *)

val inv : q:int -> int -> int
(** [inv ~q a] is the multiplicative inverse of [a] modulo the prime [q].
    @raise Invalid_argument if [a = 0 mod q]. *)

val reduce : q:int -> int -> int
(** [reduce ~q a] maps any native integer (possibly negative) to canonical
    form in [\[0, q)]. *)

val to_centered : q:int -> int -> int
(** [to_centered ~q a] maps a canonical residue to the centered representative
    in [(-q/2, q/2\]]. *)

val of_centered : q:int -> int -> int
(** Inverse of {!to_centered}; same as [reduce]. *)
