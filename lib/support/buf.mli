(** Unboxed residue storage for the RNS kernels.

    A [Buf.t] is a one-dimensional Bigarray of native [int]s. Its payload is
    allocated outside the OCaml heap, so the GC neither scans nor relocates
    it; at large ring degrees (N = 2^15/2^16) this removes the residue
    arrays — by far the largest live data — from every major collection.

    {!get}/{!set}/{!unsafe_get}/{!unsafe_set} are re-declared compiler
    primitives at the concrete element type, so they compile to single
    loads/stores exactly like [Array.unsafe_get] on an [int array].
    {!sub} returns an O(1) view sharing storage with its parent — the
    polynomial layer stores one flat allocation per polynomial and hands
    out per-RNS-component views. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external get : t -> int -> int = "%caml_ba_ref_1"
external set : t -> int -> int -> unit = "%caml_ba_set_1"
external unsafe_get : t -> int -> int = "%caml_ba_unsafe_ref_1"
external unsafe_set : t -> int -> int -> unit = "%caml_ba_unsafe_set_1"
external length : t -> int = "%caml_ba_dim_1"

val create : int -> t
(** [create n] is a zero-filled buffer of length [n]. *)

val fill : t -> int -> unit

val sub : t -> int -> int -> t
(** [sub b pos len] is an O(1) view of [b.(pos .. pos+len-1)] {e sharing}
    storage with [b]: writes through either alias are visible in both. *)

val blit : src:t -> dst:t -> unit
(** Copy [src] into [dst] (same length required). *)

val copy : t -> t

val of_array : int array -> t
val to_array : t -> int array
val init : int -> (int -> int) -> t

val equal : t -> t -> bool
(** Element-wise equality (and equal length). *)
