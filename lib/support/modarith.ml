let max_modulus_bits = 31

let add ~q a b =
  let s = a + b in
  if s >= q then s - q else s

let sub ~q a b =
  let d = a - b in
  if d < 0 then d + q else d

let neg ~q a = if a = 0 then 0 else q - a

let mul ~q a b = a * b mod q

(* ------------------------------------------------------------------ *)
(* Barrett reduction                                                   *)
(* ------------------------------------------------------------------ *)

(* For q < 2^b (b minimal, so q >= 2^(b-1)) and z = a*b < q^2 < 2^(2b), the
   quotient floor(z/q) is approximated as

     qe = ((z >> (b-1)) * mu) >> (61-b),   mu = floor(2^60 / q)

   Every intermediate fits the 63-bit native int: z >> (b-1) < 2^(b+1) and
   mu <= 2^(61-b), so their product is < 2^62. The two floors and the
   truncated mu underestimate the quotient by at most z/2^60 + 2^(b-1)/q + 2
   < 7 (the worst case is b = 31, where z/2^60 < 4), so the remainder
   z - qe*q lands in [0, 8q) and three conditional subtractions (4q, 2q, q
   — precomputed so the kernel is straight-line and inlinable, with no
   allocation) canonicalize it. No division instruction anywhere.

   Conditional subtraction is branchless: for r in [0, 2m), [r - m] is in
   (-m, m), so adding back [m land (sign mask)] selects r or r - m without
   a data-dependent branch (which would mispredict half the time on random
   residues). *)

let[@inline] csub r m =
  let d = r - m in
  d + (d asr 62 land m)
type ctx = { q : int; shift1 : int; shift2 : int; mu : int; q2 : int; q4 : int }

let ctx ~q =
  if q < 2 || q >= 1 lsl max_modulus_bits then
    invalid_arg "Modarith.ctx: modulus out of range";
  let bits =
    let rec go b = if 1 lsl b > q then b else go (b + 1) in
    go 1
  in
  { q; shift1 = bits - 1; shift2 = 61 - bits; mu = (1 lsl 60) / q; q2 = 2 * q; q4 = 4 * q }

let modulus c = c.q

let[@inline] reduce_nonneg c z =
  let qe = ((z lsr c.shift1) * c.mu) lsr c.shift2 in
  let r = z - (qe * c.q) in
  csub (csub (csub r c.q4) c.q2) c.q

let[@inline] mulmod c a b = reduce_nonneg c (a * b)

let reduce_ctx c z =
  if z >= 0 then reduce_nonneg c z
  else
    let r = reduce_nonneg c (-z) in
    if r = 0 then 0 else c.q - r

(* ------------------------------------------------------------------ *)
(* Shoup multiplication (one operand fixed)                            *)
(* ------------------------------------------------------------------ *)

(* With beta = 2^31 and w' = floor(w * beta / q) precomputed for a fixed
   multiplicand w < q, the product of any canonical a < beta with w is

     r = a*w - (floor(a*w' / beta)) * q   in [0, 2q)

   (standard Shoup bound: the estimated quotient is off by at most one).
   Both a*w and a*w' are < 2^62, and w * beta < 2^62 at precompute time. *)
let shoup ~q w =
  if w < 0 || w >= q then invalid_arg "Modarith.shoup: operand not reduced";
  w lsl 31 / q

let[@inline] mulmod_shoup ~q a w w_shoup =
  let r = (a * w) - (((a * w_shoup) lsr 31) * q) in
  csub r q

let pow ~q b e =
  assert (e >= 0);
  let rec loop acc b e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul ~q acc b else acc in
      loop acc (mul ~q b b) (e lsr 1)
  in
  (* b mod q is negative for negative b in OCaml; normalize first. *)
  let b = b mod q in
  let b = if b < 0 then b + q else b in
  loop 1 b e

let inv ~q a =
  let a = a mod q in
  if a = 0 then invalid_arg "Modarith.inv: zero has no inverse";
  (* Fermat: q is prime. *)
  pow ~q a (q - 2)

let reduce ~q a =
  let r = a mod q in
  if r < 0 then r + q else r

let to_centered ~q a = if a > q / 2 then a - q else a

let of_centered ~q a = reduce ~q a
