(** Small statistics helpers used by the accuracy and estimator harnesses. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Population variance. *)

val rmse : float array -> float array -> float
(** Root-mean-square error between two equal-length vectors. *)

val max_abs_diff : float array -> float array -> float
(** Largest absolute element-wise difference. *)

val geomean : float array -> float
(** Geometric mean of positive values. *)

val relative_error : actual:float -> estimate:float -> float
(** [|estimate - actual| / actual]. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank on a sorted copy. *)

val median : float array -> float
(** Median on a sorted copy (mean of the middle pair for even lengths).
    @raise Invalid_argument on empty input. *)

val monotonic_now_s : unit -> float
(** Wall-clock seconds, clamped process-wide to be non-decreasing so that
    durations can never come out negative under clock steps. *)

val time_median : ?warmup:int -> ?min_sample_s:float -> reps:int -> (unit -> unit) -> float
(** [time_median ~reps f] is the median over [reps] timed samples of [f],
    after [warmup] untimed calls (default 1), using {!monotonic_now_s}.
    When [min_sample_s] is positive, each sample batches enough calls that
    it spans at least that long (the per-call time is returned), making
    sub-microsecond operations measurable. Median-of-reps is robust to
    timer jitter where the mean is not. *)
