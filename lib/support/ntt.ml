type table = {
  p : int;
  n : int;
  ctx : Modarith.ctx;
  psi_rev : int array; (* psi^bitrev(i), i = 0..n-1 *)
  psi_rev_shoup : int array; (* floor(psi_rev * 2^31 / p) *)
  psi_inv_rev : int array; (* psi^{-bitrev(i)} *)
  psi_inv_rev_shoup : int array;
  n_inv : int;
  n_inv_shoup : int;
}

let prime t = t.p
let degree t = t.n
let barrett t = t.ctx

let bitrev i bits =
  let r = ref 0 and x = ref i in
  for _ = 1 to bits do
    r := (!r lsl 1) lor (!x land 1);
    x := !x lsr 1
  done;
  !r

let make_table ~p ~n =
  if n land (n - 1) <> 0 || n <= 0 then invalid_arg "Ntt.make_table: n must be a power of two";
  let bits =
    let rec log2 acc v = if v = 1 then acc else log2 (acc + 1) (v lsr 1) in
    log2 0 n
  in
  let psi = Primes.primitive_root_2n ~p ~n in
  let psi_inv = Modarith.inv ~q:p psi in
  let pow_table root =
    let a = Array.make n 1 in
    for i = 1 to n - 1 do
      a.(i) <- Modarith.mul ~q:p a.(i - 1) root
    done;
    let rev = Array.make n 0 in
    for i = 0 to n - 1 do
      rev.(i) <- a.(bitrev i bits)
    done;
    rev
  in
  let psi_rev = pow_table psi and psi_inv_rev = pow_table psi_inv in
  let n_inv = Modarith.inv ~q:p n in
  {
    p;
    n;
    ctx = Modarith.ctx ~q:p;
    psi_rev;
    psi_rev_shoup = Array.map (Modarith.shoup ~q:p) psi_rev;
    psi_inv_rev;
    psi_inv_rev_shoup = Array.map (Modarith.shoup ~q:p) psi_inv_rev;
    n_inv;
    n_inv_shoup = Modarith.shoup ~q:p n_inv;
  }

(* Longa–Naehrig iterative negacyclic NTT (CT butterflies, decimation in
   time), with the psi powers folded into the twiddles so no pre/post scaling
   by psi^i is needed. The [*_naive] variants reduce with hardware division
   and are kept as the validation/benchmark reference; the default paths use
   Shoup twiddle multiplication, whose estimated quotient leaves the product
   in [0, 2p) (see docs/PERFORMANCE.md) — one conditional subtraction
   canonicalizes, so the butterflies contain no division instruction. *)

let check_length name t a =
  if Array.length a <> t.n then invalid_arg ("Ntt." ^ name ^ ": wrong length")

let forward_naive t a =
  let p = t.p and n = t.n in
  check_length "forward" t a;
  let tlen = ref n and m = ref 1 in
  while !m < n do
    tlen := !tlen / 2;
    for i = 0 to !m - 1 do
      let j1 = 2 * i * !tlen in
      let j2 = j1 + !tlen - 1 in
      let s = t.psi_rev.(!m + i) in
      for j = j1 to j2 do
        let u = a.(j) in
        let v = Modarith.mul ~q:p a.(j + !tlen) s in
        a.(j) <- Modarith.add ~q:p u v;
        a.(j + !tlen) <- Modarith.sub ~q:p u v
      done
    done;
    m := !m * 2
  done

let inverse_naive t a =
  let p = t.p and n = t.n in
  check_length "inverse" t a;
  let tlen = ref 1 and m = ref n in
  while !m > 1 do
    let j1 = ref 0 in
    let h = !m / 2 in
    for i = 0 to h - 1 do
      let j2 = !j1 + !tlen - 1 in
      let s = t.psi_inv_rev.(h + i) in
      for j = !j1 to j2 do
        let u = a.(j) in
        let v = a.(j + !tlen) in
        a.(j) <- Modarith.add ~q:p u v;
        a.(j + !tlen) <- Modarith.mul ~q:p (Modarith.sub ~q:p u v) s
      done;
      j1 := !j1 + (2 * !tlen)
    done;
    tlen := !tlen * 2;
    m := h
  done;
  for i = 0 to n - 1 do
    a.(i) <- Modarith.mul ~q:p a.(i) t.n_inv
  done

(* The fast paths use unchecked array accesses: every index is bounded by
   the loop structure once [check_length] has validated the input, and the
   butterflies are branch-light enough that bounds checks would dominate. *)
let forward_fast t a =
  let p = t.p and n = t.n in
  check_length "forward" t a;
  let psi = t.psi_rev and psi' = t.psi_rev_shoup in
  let tlen = ref n and m = ref 1 in
  while !m < n do
    tlen := !tlen / 2;
    for i = 0 to !m - 1 do
      let j1 = 2 * i * !tlen in
      let j2 = j1 + !tlen - 1 in
      let s = Array.unsafe_get psi (!m + i) and s' = Array.unsafe_get psi' (!m + i) in
      for j = j1 to j2 do
        let u = Array.unsafe_get a j in
        let x = Array.unsafe_get a (j + !tlen) in
        (* branchless conditional add/subtract, as in Modarith.csub *)
        let v = (x * s) - (((x * s') lsr 31) * p) in
        let v = v - p in
        let v = v + (v asr 62 land p) in
        let su = u + v - p in
        Array.unsafe_set a j (su + (su asr 62 land p));
        let d = u - v in
        Array.unsafe_set a (j + !tlen) (d + (d asr 62 land p))
      done
    done;
    m := !m * 2
  done

let inverse_fast t a =
  let p = t.p and n = t.n in
  check_length "inverse" t a;
  let psi = t.psi_inv_rev and psi' = t.psi_inv_rev_shoup in
  let tlen = ref 1 and m = ref n in
  while !m > 1 do
    let j1 = ref 0 in
    let h = !m / 2 in
    for i = 0 to h - 1 do
      let j2 = !j1 + !tlen - 1 in
      let s = Array.unsafe_get psi (h + i) and s' = Array.unsafe_get psi' (h + i) in
      for j = !j1 to j2 do
        let u = Array.unsafe_get a j in
        let v = Array.unsafe_get a (j + !tlen) in
        let su = u + v - p in
        Array.unsafe_set a j (su + (su asr 62 land p));
        let d = u - v in
        let d = d + (d asr 62 land p) in
        let w = (d * s) - (((d * s') lsr 31) * p) in
        let w = w - p in
        Array.unsafe_set a (j + !tlen) (w + (w asr 62 land p))
      done;
      j1 := !j1 + (2 * !tlen)
    done;
    tlen := !tlen * 2;
    m := h
  done;
  let ni = t.n_inv and ni' = t.n_inv_shoup in
  for i = 0 to n - 1 do
    let x = Array.unsafe_get a i in
    let w = (x * ni) - (((x * ni') lsr 31) * p) in
    let w = w - p in
    Array.unsafe_set a i (w + (w asr 62 land p))
  done

let forward t a = if Kernels.use_naive () then forward_naive t a else forward_fast t a
let inverse t a = if Kernels.use_naive () then inverse_naive t a else inverse_fast t a

let pointwise_mul t dst a b =
  if Kernels.use_naive () then begin
    let p = t.p in
    for i = 0 to t.n - 1 do
      dst.(i) <- Modarith.mul ~q:p a.(i) b.(i)
    done
  end
  else begin
    let ctx = t.ctx in
    for i = 0 to t.n - 1 do
      dst.(i) <- Modarith.mulmod ctx a.(i) b.(i)
    done
  end

let negacyclic_mul t a b =
  let fa = Array.copy a and fb = Array.copy b in
  forward t fa;
  forward t fb;
  let dst = Array.make t.n 0 in
  pointwise_mul t dst fa fb;
  inverse t dst;
  dst
