type table = {
  p : int;
  n : int;
  ctx : Modarith.ctx;
  psi_rev : int array; (* psi^bitrev(i), i = 0..n-1 *)
  psi_rev_shoup : int array; (* floor(psi_rev * 2^31 / p) *)
  psi_inv_rev : int array; (* psi^{-bitrev(i)} *)
  psi_inv_rev_shoup : int array;
  n_inv : int;
  n_inv_shoup : int;
}

let prime t = t.p
let degree t = t.n
let barrett t = t.ctx

let bitrev i bits =
  let r = ref 0 and x = ref i in
  for _ = 1 to bits do
    r := (!r lsl 1) lor (!x land 1);
    x := !x lsr 1
  done;
  !r

let make_table ~p ~n =
  if n land (n - 1) <> 0 || n <= 0 then invalid_arg "Ntt.make_table: n must be a power of two";
  let bits =
    let rec log2 acc v = if v = 1 then acc else log2 (acc + 1) (v lsr 1) in
    log2 0 n
  in
  let psi = Primes.primitive_root_2n ~p ~n in
  let psi_inv = Modarith.inv ~q:p psi in
  let pow_table root =
    let a = Array.make n 1 in
    for i = 1 to n - 1 do
      a.(i) <- Modarith.mul ~q:p a.(i - 1) root
    done;
    let rev = Array.make n 0 in
    for i = 0 to n - 1 do
      rev.(i) <- a.(bitrev i bits)
    done;
    rev
  in
  let psi_rev = pow_table psi and psi_inv_rev = pow_table psi_inv in
  let n_inv = Modarith.inv ~q:p n in
  {
    p;
    n;
    ctx = Modarith.ctx ~q:p;
    psi_rev;
    psi_rev_shoup = Array.map (Modarith.shoup ~q:p) psi_rev;
    psi_inv_rev;
    psi_inv_rev_shoup = Array.map (Modarith.shoup ~q:p) psi_inv_rev;
    n_inv;
    n_inv_shoup = Modarith.shoup ~q:p n_inv;
  }

(* Longa–Naehrig iterative negacyclic NTT (CT butterflies, decimation in
   time), with the psi powers folded into the twiddles so no pre/post scaling
   by psi^i is needed. The [*_naive] variants reduce with hardware division
   and are kept as the validation/benchmark reference; the default paths use
   Shoup twiddle multiplication, whose estimated quotient leaves the product
   in [0, 2p) (see docs/PERFORMANCE.md) — one conditional subtraction
   canonicalizes, so the butterflies contain no division instruction.

   Residue vectors are [Buf.t] (unboxed Bigarray storage, see buf.mli):
   the GC never scans the coefficient payload, and [Buf.unsafe_get]/
   [Buf.unsafe_set] compile to the same single loads/stores as unsafe
   [int array] accesses. *)

let check_length name t a =
  if Buf.length a <> t.n then invalid_arg ("Ntt." ^ name ^ ": wrong length")

let forward_naive t a =
  let p = t.p and n = t.n in
  check_length "forward" t a;
  let tlen = ref n and m = ref 1 in
  while !m < n do
    tlen := !tlen / 2;
    for i = 0 to !m - 1 do
      let j1 = 2 * i * !tlen in
      let j2 = j1 + !tlen - 1 in
      let s = t.psi_rev.(!m + i) in
      for j = j1 to j2 do
        let u = Buf.get a j in
        let v = Modarith.mul ~q:p (Buf.get a (j + !tlen)) s in
        Buf.set a j (Modarith.add ~q:p u v);
        Buf.set a (j + !tlen) (Modarith.sub ~q:p u v)
      done
    done;
    m := !m * 2
  done

let inverse_naive t a =
  let p = t.p and n = t.n in
  check_length "inverse" t a;
  let tlen = ref 1 and m = ref n in
  while !m > 1 do
    let j1 = ref 0 in
    let h = !m / 2 in
    for i = 0 to h - 1 do
      let j2 = !j1 + !tlen - 1 in
      let s = t.psi_inv_rev.(h + i) in
      for j = !j1 to j2 do
        let u = Buf.get a j in
        let v = Buf.get a (j + !tlen) in
        Buf.set a j (Modarith.add ~q:p u v);
        Buf.set a (j + !tlen) (Modarith.mul ~q:p (Modarith.sub ~q:p u v) s)
      done;
      j1 := !j1 + (2 * !tlen)
    done;
    tlen := !tlen * 2;
    m := h
  done;
  for i = 0 to n - 1 do
    Buf.set a i (Modarith.mul ~q:p (Buf.get a i) t.n_inv)
  done

(* The fast paths use unchecked accesses: every index is bounded by the loop
   structure once [check_length] has validated the input, and the
   butterflies are branch-light enough that bounds checks would dominate. *)
let forward_fast t a =
  let p = t.p and n = t.n in
  check_length "forward" t a;
  let psi = t.psi_rev and psi' = t.psi_rev_shoup in
  let tlen = ref n and m = ref 1 in
  while !m < n do
    tlen := !tlen / 2;
    for i = 0 to !m - 1 do
      let j1 = 2 * i * !tlen in
      let j2 = j1 + !tlen - 1 in
      let s = Array.unsafe_get psi (!m + i) and s' = Array.unsafe_get psi' (!m + i) in
      for j = j1 to j2 do
        let u = Buf.unsafe_get a j in
        let x = Buf.unsafe_get a (j + !tlen) in
        (* branchless conditional add/subtract, as in Modarith.csub *)
        let v = (x * s) - (((x * s') lsr 31) * p) in
        let v = v - p in
        let v = v + (v asr 62 land p) in
        let su = u + v - p in
        Buf.unsafe_set a j (su + (su asr 62 land p));
        let d = u - v in
        Buf.unsafe_set a (j + !tlen) (d + (d asr 62 land p))
      done
    done;
    m := !m * 2
  done

let inverse_fast t a =
  let p = t.p and n = t.n in
  check_length "inverse" t a;
  let psi = t.psi_inv_rev and psi' = t.psi_inv_rev_shoup in
  let tlen = ref 1 and m = ref n in
  while !m > 1 do
    let j1 = ref 0 in
    let h = !m / 2 in
    for i = 0 to h - 1 do
      let j2 = !j1 + !tlen - 1 in
      let s = Array.unsafe_get psi (h + i) and s' = Array.unsafe_get psi' (h + i) in
      for j = !j1 to j2 do
        let u = Buf.unsafe_get a j in
        let v = Buf.unsafe_get a (j + !tlen) in
        let su = u + v - p in
        Buf.unsafe_set a j (su + (su asr 62 land p));
        let d = u - v in
        let d = d + (d asr 62 land p) in
        let w = (d * s) - (((d * s') lsr 31) * p) in
        let w = w - p in
        Buf.unsafe_set a (j + !tlen) (w + (w asr 62 land p))
      done;
      j1 := !j1 + (2 * !tlen)
    done;
    tlen := !tlen * 2;
    m := h
  done;
  let ni = t.n_inv and ni' = t.n_inv_shoup in
  for i = 0 to n - 1 do
    let x = Buf.unsafe_get a i in
    let w = (x * ni) - (((x * ni') lsr 31) * p) in
    let w = w - p in
    Buf.unsafe_set a i (w + (w asr 62 land p))
  done

let forward t a = if Kernels.use_naive () then forward_naive t a else forward_fast t a
let inverse t a = if Kernels.use_naive () then inverse_naive t a else inverse_fast t a

let pointwise_mul t dst a b =
  if Kernels.use_naive () then begin
    let p = t.p in
    for i = 0 to t.n - 1 do
      Buf.set dst i (Modarith.mul ~q:p (Buf.get a i) (Buf.get b i))
    done
  end
  else begin
    let ctx = t.ctx in
    for i = 0 to t.n - 1 do
      Buf.unsafe_set dst i (Modarith.mulmod ctx (Buf.unsafe_get a i) (Buf.unsafe_get b i))
    done
  end

let negacyclic_mul t a b =
  let fa = Buf.copy a and fb = Buf.copy b in
  forward t fa;
  forward t fb;
  let dst = Buf.create t.n in
  pointwise_mul t dst fa fb;
  inverse t dst;
  dst

(* ------------------------------------------------------------------ *)
(* Evaluation-domain Galois permutations                               *)
(* ------------------------------------------------------------------ *)

(* [forward] evaluates the input polynomial at the odd powers of psi in a
   fixed (bit-reversal-derived) order: slot [j] holds [f(psi^{e(j)})] where
   the exponent map [e] depends only on the transform structure, not on the
   prime or the particular psi. The automorphism [X -> X^g] therefore acts
   on Eval-domain vectors as the pure permutation
   [out.(j) = in.(index_of_exponent (g * e(j) mod 2n))], identical for every
   RNS component of a given degree.

   [e] is recovered empirically rather than derived from the butterfly
   layout: transforming the monomial X yields the evaluation points
   [psi^{e(j)}] themselves, and a discrete-log table over the powers of psi
   turns them back into exponents. This keeps the permutation correct by
   construction if the transform ordering ever changes. *)

let exp_cache : (int, int array) Hashtbl.t = Hashtbl.create 4
let perm_cache : (int * int, int array) Hashtbl.t = Hashtbl.create 8
let galois_lock = Mutex.create ()

let slot_exponents t =
  match Hashtbl.find_opt exp_cache t.n with
  | Some e -> e
  | None ->
      let n = t.n and p = t.p in
      let two_n = 2 * n in
      (* psi = psi^bitrev(n/2 .. ) : bitrev maps n/2 back to 1 *)
      let psi = if n = 1 then 1 else t.psi_rev.(n / 2) in
      let dlog = Hashtbl.create (2 * two_n) in
      let pow = ref 1 in
      for k = 0 to two_n - 1 do
        Hashtbl.replace dlog !pow k;
        pow := Modarith.mul ~q:p !pow psi
      done;
      let x = Buf.create n in
      if n > 1 then Buf.set x 1 1 else Buf.set x 0 1;
      forward_naive t x;
      let e =
        Array.init n (fun j ->
            match Hashtbl.find_opt dlog (Buf.get x j) with
            | Some k -> k
            | None -> invalid_arg "Ntt.slot_exponents: transform point is not a power of psi")
      in
      Hashtbl.replace exp_cache t.n e;
      e

let galois_perm t ~galois =
  if galois land 1 = 0 then invalid_arg "Ntt.galois_perm: galois element must be odd";
  let two_n = 2 * t.n in
  let g = ((galois mod two_n) + two_n) mod two_n in
  Mutex.lock galois_lock;
  let perm =
    match Hashtbl.find_opt perm_cache (t.n, g) with
    | Some p -> p
    | None ->
        let e = slot_exponents t in
        let idx_of_exp = Array.make two_n (-1) in
        Array.iteri (fun j ej -> idx_of_exp.(ej) <- j) e;
        let perm =
          Array.init t.n (fun j ->
              let k = idx_of_exp.(e.(j) * g mod two_n) in
              if k < 0 then invalid_arg "Ntt.galois_perm: exponent set not closed under galois";
              k)
        in
        Hashtbl.replace perm_cache (t.n, g) perm;
        perm
  in
  Mutex.unlock galois_lock;
  perm
