(* Runtime selection between the fast arithmetic kernels (Barrett/Shoup,
   allocation-free, optionally domain-parallel) and the division-based
   reference kernels the fast paths are validated against. *)

(* Recognize explicit on/off spellings; anything else still selects the
   reference kernels (the historical "any non-empty value" contract) but
   says so on stderr — a typo like HECATE_NAIVE_KERNELS=fals silently
   flipping the process onto the slow validated path is exactly the kind
   of benchmark-invalidating mistake that should be loud. *)
let parse_env_flag () =
  match Sys.getenv_opt "HECATE_NAIVE_KERNELS" with
  | None | Some "" -> false
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "0" | "false" | "no" | "off" -> false
      | "1" | "true" | "yes" | "on" -> true
      | _ ->
          Printf.eprintf
            "hecate: warning: HECATE_NAIVE_KERNELS=%S is not a recognized value \
             (use 1/true/yes/on or 0/false/no/off); enabling reference kernels\n%!"
            s;
          true)

let naive = Atomic.make (parse_env_flag ())

let use_naive () = Atomic.get naive
let set_naive b = Atomic.set naive b

let with_naive b f =
  let prev = Atomic.get naive in
  Atomic.set naive b;
  Fun.protect ~finally:(fun () -> Atomic.set naive prev) f
