(* Runtime selection between the fast arithmetic kernels (Barrett/Shoup,
   allocation-free, optionally domain-parallel) and the division-based
   reference kernels the fast paths are validated against. *)

let naive =
  Atomic.make
    (match Sys.getenv_opt "HECATE_NAIVE_KERNELS" with
    | Some ("" | "0") | None -> false
    | Some _ -> true)

let use_naive () = Atomic.get naive
let set_naive b = Atomic.set naive b

let with_naive b f =
  let prev = Atomic.get naive in
  Atomic.set naive b;
  Fun.protect ~finally:(fun () -> Atomic.set naive prev) f
