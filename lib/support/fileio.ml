(* Atomic whole-file writes. The bench harness used to stream JSON straight
   into its destination with [open_out]: an interrupted run (Ctrl-C mid
   write, crash, full disk) left a truncated artifact in place, and because
   the BENCH_*.json files are committed, a torn write could silently become
   the repository baseline. Writing to a temporary sibling and renaming is
   atomic on POSIX filesystems: readers (and git) see either the old
   contents or the complete new contents, never a prefix.

   Rename alone is not crash-safe, though: if the data blocks of the
   temporary file have not reached the disk when the rename is journalled,
   a power cut can leave a zero-length "committed" file at [path]. Since
   the plan cache now persists compiled artifacts through this function,
   we fsync the temporary file before the rename, and the containing
   directory after it (so the rename itself is durable). Directory fsync
   is best-effort — some filesystems refuse it — but the file fsync is
   mandatory: a failure there aborts the write. *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let write_atomic ~path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  match
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let bytes = Bytes.unsafe_of_string contents in
        let len = Bytes.length bytes in
        let written = ref 0 in
        while !written < len do
          written := !written + Unix.write fd bytes !written (len - !written)
        done;
        Unix.fsync fd);
    Sys.rename tmp path;
    fsync_dir dir
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let read_file ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
