(* Atomic whole-file writes. The bench harness used to stream JSON straight
   into its destination with [open_out]: an interrupted run (Ctrl-C mid
   write, crash, full disk) left a truncated artifact in place, and because
   the BENCH_*.json files are committed, a torn write could silently become
   the repository baseline. Writing to a temporary sibling and renaming is
   atomic on POSIX filesystems: readers (and git) see either the old
   contents or the complete new contents, never a prefix. *)

let write_atomic ~path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let read_file ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
