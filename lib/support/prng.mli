(** Deterministic pseudo-random number generation (xoshiro256 "starstar").

    Every random choice in the repository flows through an explicit generator
    state so that key generation, encryption and synthetic workloads are
    reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] initialises a generator from a 63-bit seed via splitmix64
    expansion. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> string -> t
(** [split g name] derives a named sub-stream: a fresh generator whose state
    is a hash of [g]'s {e current} state and [name]. The parent state is
    read, not advanced, so sibling sub-streams are independent of the order
    they are derived in and [split g name] is reproducible for as long as
    [g] has not been advanced. Distinct names yield decorrelated streams.
    Used by the fuzzer to make program-shape, constant and input draws
    independently reproducible from one printed seed. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int_below : t -> int -> int
(** [int_below g n] is uniform in [\[0, n)]. Requires [0 < n]. Rejection
    sampling; unbiased. *)

val uniform_mod : t -> int -> int
(** [uniform_mod g q] is a uniform canonical residue modulo [q]. *)

val float01 : t -> float
(** Uniform float in [\[0, 1)]. *)

val ternary : t -> int
(** Uniform in [{-1, 0, 1}] — the CKKS secret-key distribution. *)

val centered_binomial : t -> eta:int -> int
(** Centered binomial sample with parameter [eta]: the difference of two
    [eta]-bit popcounts, in [\[-eta, eta\]]. Approximates a discrete Gaussian
    of standard deviation [sqrt (eta / 2)]; [eta = 21] gives the usual
    sigma ≈ 3.2 RLWE error. *)

val gaussian : t -> sigma:float -> float
(** Box–Muller Gaussian with standard deviation [sigma]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
