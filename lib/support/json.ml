(* Just enough JSON for the in-tree consumers: the bench regression gate
   reading BENCH_*.json artifacts back, the plan cache's on-disk entries,
   and the hecated newline-delimited job protocol. Recursive descent over a
   string; numbers are floats, escapes cover what our own writer emits
   (plus \uXXXX for robustness). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
              in
              (* ASCII passthrough; anything wider is replaced — our own
                 artifacts never emit non-ASCII *)
              Buffer.add_char b (if code < 128 then Char.chr code else '?');
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (key, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members_loop ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Obj kvs -> ( match List.assoc_opt name kvs with Some v -> v | None -> Null)
  | _ -> Null

let to_list = function Arr l -> l | _ -> []
let to_float = function Num f -> Some f | _ -> None
let to_int = function Num f -> Some (int_of_float f) | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Numbers render as the shortest float representation that round-trips;
   integral values drop the trailing ".". The output is a single line, so
   rendered values can travel over the newline-delimited protocol as-is. *)
let render_number buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec render_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
      if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
        Buffer.add_string buf "null"
      else render_number buf f
  | Str s -> escape_to buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          render_to buf v)
        items;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          render_to buf v)
        kvs;
      Buffer.add_char buf '}'

let render v =
  let buf = Buffer.create 256 in
  render_to buf v;
  Buffer.contents buf

let int i = Num (float_of_int i)
