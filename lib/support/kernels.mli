(** Runtime kernel selection.

    The RNS hot loops ship in two flavours: the {e fast} kernels
    (Barrett/Shoup modular arithmetic, allocation-free polynomial ops,
    optionally domain-parallel component loops) and the {e reference}
    kernels (hardware division, copy-per-operation) they are validated
    against. Both produce bit-identical results; the reference path exists
    for property tests and for the [bench kernels] before/after comparison.

    The initial mode is fast unless the [HECATE_NAIVE_KERNELS] environment
    variable asks for the reference kernels: [1]/[true]/[yes]/[on] enable
    them, [0]/[false]/[no]/[off] (or unset/empty) keep the fast kernels,
    and any other value enables them {e with a warning on stderr}. *)

val use_naive : unit -> bool
(** True when the reference (division-based) kernels are selected. *)

val set_naive : bool -> unit
(** Select the reference ([true]) or fast ([false]) kernels process-wide. *)

val with_naive : bool -> (unit -> 'a) -> 'a
(** [with_naive b f] runs [f] with the mode forced to [b], restoring the
    previous mode afterwards (also on exceptions). Not safe to race with
    kernel work on other domains. *)
