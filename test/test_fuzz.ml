(* Fuzzer self-tests: generator determinism/validity, oracle smoke run,
   fault injection caught and shrunk (with the reproducer header recording
   the structured failure class), checked-in corpus replay, and the
   frontend-inference property (Infer output always typechecks and matches
   EVA code generation). *)

module Prog = Hecate_ir.Prog
module Typing = Hecate_ir.Typing
module Diagnostic = Hecate_ir.Diagnostic
module Driver = Hecate.Driver
module Codegen = Hecate.Codegen
module Infer = Hecate_frontend.Infer
module Gen = Hecate_fuzz.Gen
module Oracle = Hecate_fuzz.Oracle
module Shrink = Hecate_fuzz.Shrink
module Campaign = Hecate_fuzz.Campaign

let test_generate_deterministic () =
  let a = Gen.generate ~seed:7 () and b = Gen.generate ~seed:7 () in
  Alcotest.(check bool) "same program" true (Prog.equal a.Gen.prog b.Gen.prog);
  Alcotest.(check bool) "same inputs" true (a.Gen.inputs = b.Gen.inputs)

let test_generate_seeds_differ () =
  let a = Gen.generate ~seed:1 () and b = Gen.generate ~seed:2 () in
  Alcotest.(check bool) "different programs" false (Prog.equal a.Gen.prog b.Gen.prog)

let test_generate_valid () =
  for seed = 0 to 63 do
    let case = Gen.generate ~seed () in
    (match Prog.validate case.Gen.prog with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d generates an invalid program: %s" seed msg);
    List.iter
      (fun (name, v) ->
        if Array.length v <> case.Gen.prog.Prog.slot_count then
          Alcotest.failf "seed %d input %s is not full-width" seed name)
      case.Gen.inputs
  done

let test_inputs_rederivable () =
  let case = Gen.generate ~seed:11 () in
  Alcotest.(check bool) "inputs_for matches generate" true
    (Gen.inputs_for ~seed:11 case.Gen.prog = case.Gen.inputs)

let test_smoke_campaign () =
  let report = Campaign.run ~seed:42 ~count:30 () in
  match report.Campaign.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "case %d (seed %d): %s" f.Campaign.index f.Campaign.case_seed
        (Oracle.describe f.Campaign.failure)

let test_shrink_reaches_minimum () =
  (* With a predicate that accepts any structurally valid program, shrinking
     must reach a fixpoint that is still valid and no larger. *)
  let p = (Gen.generate ~seed:3 ()).Gen.prog in
  let s = Shrink.shrink ~keep:(fun q -> Prog.validate q = Ok ()) p in
  Alcotest.(check bool) "still valid" true (Prog.validate s = Ok ());
  Alcotest.(check bool) "not larger" true (Prog.num_ops s <= Prog.num_ops p);
  Alcotest.(check int) "single output" 1 (List.length s.Prog.outputs)

(* Fault injection: delete the first [rescale] from EVA's compiled output.
   The oracle must flag the program (typecheck constraint C1/C2, or the
   accuracy/cross-scheme comparison for shallow programs) and the shrinker
   must cut the witness down to a handful of ops. *)
let drop_first_rescale p =
  let found = ref None in
  Prog.iter
    (fun (o : Prog.op) -> if !found = None && o.Prog.kind = Prog.Rescale then found := Some o)
    p;
  match !found with
  | None -> p
  | Some o -> (
      match Shrink.substitute p ~value:o.Prog.id ~by:o.Prog.args.(0) with
      | Some p' -> p'
      | None -> p)

let inject scheme p = if scheme = Driver.Eva then drop_first_rescale p else p

let test_injected_bug_caught_and_shrunk () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "hecate_fuzz_repro_test" in
  let report = Campaign.run ~transform:inject ~seed:42 ~count:10 ~out_dir:dir () in
  (match report.Campaign.failures with
  | [] -> Alcotest.fail "injected rescale deletion was not caught by any oracle check"
  | _ -> ());
  List.iter
    (fun (f : Campaign.case_failure) ->
      if Prog.num_ops f.Campaign.shrunk > 10 then
        Alcotest.failf "case %d shrunk only to %d ops (> 10): %s" f.Campaign.index
          (Prog.num_ops f.Campaign.shrunk)
          (Oracle.describe f.Campaign.failure);
      (* the reproducer header records the structured failure class, and a
         replay reproduces exactly that class, not just any failure *)
      match f.Campaign.repro_path with
      | None -> Alcotest.fail "reproducer was not written despite out_dir"
      | Some path ->
          let check, code = Campaign.recorded_class path in
          Alcotest.(check bool) "header check matches" true
            (check = f.Campaign.failure.Oracle.check);
          Alcotest.(check bool) "header code matches" true
            (code = f.Campaign.failure.Oracle.code);
          (match Campaign.replay ~transform:inject path with
          | Ok () -> Alcotest.failf "%s: reproducer no longer fails under replay" path
          | Error replayed ->
              Alcotest.(check bool) "replay failure class matches the header" true
                (Oracle.same_class replayed f.Campaign.failure)))
    report.Campaign.failures

(* ------------------------------------------------------------------ *)
(* Frontend inference property (ISSUE 7): on any generated surface      *)
(* program, Infer's elaboration typechecks and coincides with EVA       *)
(* code generation; already-managed programs are accepted unchanged.    *)
(* ------------------------------------------------------------------ *)

let prop_infer_always_typechecks =
  QCheck.Test.make ~name:"Infer output always passes Typing.check" ~count:64
    QCheck.(int_bound 100_000)
    (fun seed ->
      let prog = (Gen.generate ~seed ()).Gen.prog in
      let cfg = Typing.config ~sf:28. ~waterline:20. () in
      match Infer.infer cfg prog with
      | Error d ->
          QCheck.Test.fail_reportf "seed %d: infer failed: %s" seed (Diagnostic.to_string d)
      | Ok q -> (
          match Typing.check cfg q with
          | Error d ->
              QCheck.Test.fail_reportf "seed %d: inferred program ill-typed: %s" seed
                (Diagnostic.to_string d)
          | Ok _ ->
              (* the elaborated placement is exactly EVA's *)
              Prog.equal q (Codegen.waterline cfg prog)
              (* and a second pass is the identity: managed programs pass
                 through untouched, and fully-normalized unmanaged ones
                 (shallow programs needing no management) re-elaborate to
                 themselves *)
              && (match Infer.infer cfg q with
                 | Ok q' -> Prog.equal q' q
                 | Error _ -> false)))

let corpus_dir = "corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".hec")
  |> List.sort compare

let test_corpus_nonempty () =
  Alcotest.(check bool) "at least one reproducer checked in" true (corpus_files () <> [])

let test_corpus_replays () =
  List.iter
    (fun f ->
      match Campaign.replay (Filename.concat corpus_dir f) with
      | Ok () -> ()
      | Error failure ->
          Alcotest.failf "%s regressed: %s" f (Oracle.describe failure))
    (corpus_files ())

let () =
  Alcotest.run "hecate_fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic in seed" `Quick test_generate_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_generate_seeds_differ;
          Alcotest.test_case "valid by construction" `Quick test_generate_valid;
          Alcotest.test_case "inputs re-derivable" `Quick test_inputs_rederivable;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "smoke campaign clean" `Slow test_smoke_campaign;
          Alcotest.test_case "injected bug caught and shrunk" `Slow
            test_injected_bug_caught_and_shrunk;
        ] );
      ("shrinker", [ Alcotest.test_case "reaches minimum" `Quick test_shrink_reaches_minimum ]);
      ("infer", [ QCheck_alcotest.to_alcotest prop_infer_always_typechecks ]);
      ( "corpus",
        [
          Alcotest.test_case "non-empty" `Quick test_corpus_nonempty;
          Alcotest.test_case "replays clean" `Slow test_corpus_replays;
        ] );
    ]
