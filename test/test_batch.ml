(* Tests for the SIMD batching frontend (lib/batch): scalar surface IR
   semantics, layout assignment, rotation-network lowering against the
   exact scalar reference, golden pins for the packed workloads under
   every scheme, and plan-cache addressing of batched programs. *)

module Surface = Hecate_batch.Surface
module Batch_dsl = Hecate_batch.Batch_dsl
module Layout = Hecate_batch.Layout
module Lower = Hecate_batch.Lower
module Batch_apps = Hecate_apps.Batch_apps
module Prog = Hecate_ir.Prog
module Printer = Hecate_ir.Printer
module Pass_manager = Hecate_ir.Pass_manager
module Diagnostic = Hecate_ir.Diagnostic
module Typing = Hecate_ir.Typing
module Infer = Hecate_frontend.Infer
module Driver = Hecate.Driver
module Plancache = Hecate.Plancache
module Reference = Hecate_backend.Reference
module Interp = Hecate_backend.Interp
module Prng = Hecate_support.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let close = Alcotest.float 1e-9

let lower_exn ?slot_count spec surface =
  match Lower.lower ?slot_count ~spec surface with
  | Ok l -> l
  | Error d -> Alcotest.failf "lowering failed: %s" (Diagnostic.to_string d)

let cleanup prog = Pass_manager.run (Pass_manager.parse_exn Lower.pipeline) prog

(* Lower under [spec], clean with the batching pipeline, execute the vector
   program on the plaintext reference backend with packed inputs, decode the
   outputs, and return the RMSE against exact scalar execution. *)
let lowering_rmse ?slot_count spec surface inputs =
  let l = lower_exn ?slot_count spec surface in
  let packed = List.map (fun (n, d) -> (n, Lower.pack_input l n d)) inputs in
  let outs = Reference.execute (cleanup l.Lower.prog) ~inputs:packed in
  let refs = Surface.execute surface ~inputs in
  let err2 = ref 0. and count = ref 0 in
  List.iter2
    (fun (name, expect) packed_out ->
      let got = Lower.decode_output l name packed_out in
      check Alcotest.int (name ^ " length") (Array.length expect) (Array.length got);
      Array.iteri
        (fun i x ->
          let e = got.(i) -. x in
          err2 := !err2 +. (e *. e);
          incr count)
        expect)
    refs outs;
  sqrt (!err2 /. float_of_int (max 1 !count))

let all_specs =
  [ Lower.Naive; Lower.Fixed Layout.Row; Lower.Fixed Layout.Col; Lower.Fixed Layout.Diag;
    Lower.Auto ]

(* ------------------------------------------------------------------ *)
(* Surface IR: semantics, printing, parsing, validation                 *)
(* ------------------------------------------------------------------ *)

let test_surface_execute_semantics () =
  (* stores overwrite, accumulates add, lets bind, unwritten elements are 0 *)
  let b = Batch_dsl.create ~name:"sem" () in
  let x = Batch_dsl.input b "x" [ 4 ] in
  let y = Batch_dsl.output_array b "y" [ 4 ] in
  Batch_dsl.(
    for_ b "i" ~lo:0 ~hi:2 (fun i ->
        let t = let_ b "t" (add (load x [ i ]) (lit 1.)) in
        store b y [ i ] (mul t (lit 2.));
        accum b y [ i ] (neg (load x [ i ]))));
  let s = Batch_dsl.finish b in
  let out = Surface.execute s ~inputs:[ ("x", [| 1.; 2.; 3.; 4. |]) ] in
  let y_out = List.assoc "y" out in
  (* y[i] = 2(x[i]+1) - x[i] = x[i] + 2 for i < 3; y[3] never written *)
  check close "y0" 3. y_out.(0);
  check close "y1" 4. y_out.(1);
  check close "y2" 5. y_out.(2);
  check close "y3 unwritten" 0. y_out.(3)

let test_surface_print_parse_roundtrip () =
  List.iter
    (fun (app : Batch_apps.t) ->
      let text = Surface.to_string app.Batch_apps.surface in
      let reparsed = Surface.parse text in
      check Alcotest.string (app.Batch_apps.name ^ " fixpoint") text
        (Surface.to_string reparsed);
      (* and the reparsed program computes the same outputs *)
      List.iter2
        (fun (n1, (a : float array)) (n2, b) ->
          check Alcotest.string "output name" n1 n2;
          Array.iteri (fun i x -> check close (n1 ^ " elem") x b.(i)) a)
        (Surface.execute app.Batch_apps.surface ~inputs:app.Batch_apps.inputs)
        (Surface.execute reparsed ~inputs:app.Batch_apps.inputs))
    (Batch_apps.suite ())

let expect_invalid name build =
  let b = Batch_dsl.create ~name () in
  match build b with
  | exception Diagnostic.Error d ->
      check
        (Alcotest.testable (Fmt.of_to_string Diagnostic.code_name) ( = ))
        (name ^ " code") Diagnostic.Precondition d.Diagnostic.code
  | _ -> Alcotest.failf "%s: expected a Precondition diagnostic" name

let test_surface_validation () =
  expect_invalid "unknown array" (fun b ->
      let _ = Batch_dsl.input b "x" [ 4 ] in
      let y = Batch_dsl.output_array b "y" [ 4 ] in
      Batch_dsl.(store b y [ c 0 ] (load "nope" [ c 0 ]));
      Batch_dsl.finish b);
  expect_invalid "rank mismatch" (fun b ->
      let x = Batch_dsl.input b "x" [ 2; 2 ] in
      let y = Batch_dsl.output_array b "y" [ 4 ] in
      Batch_dsl.(store b y [ c 0 ] (load x [ c 0 ]));
      Batch_dsl.finish b);
  expect_invalid "out of bounds" (fun b ->
      let x = Batch_dsl.input b "x" [ 4 ] in
      let y = Batch_dsl.output_array b "y" [ 4 ] in
      Batch_dsl.(
        for_ b "i" ~lo:0 ~hi:3 (fun i -> store b y [ i ] (load x [ i +$ c 1 ])));
      Batch_dsl.finish b);
  expect_invalid "unbound loop variable" (fun b ->
      let x = Batch_dsl.input b "x" [ 4 ] in
      let y = Batch_dsl.output_array b "y" [ 4 ] in
      Batch_dsl.(store b y [ i "k" ] (load x [ c 0 ]));
      Batch_dsl.finish b)

let test_surface_parse_error_line () =
  (* parsing is syntax-only; the undeclared store target is caught by the
     separate validation stage, with a Precondition diagnostic *)
  let p = Surface.parse "batch p {\n  input x[4];\n  y[0] = x[0];\n}" in
  match Surface.validate p with
  | Ok () -> Alcotest.fail "expected validation to reject the undeclared store target"
  | Error d ->
      check
        (Alcotest.testable (Fmt.of_to_string Diagnostic.code_name) ( = ))
        "code" Diagnostic.Precondition d.Diagnostic.code

let test_surface_parse_rejects_garbage () =
  match Surface.parse "batch p {\n  input x[4;\n}" with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Hecate_ir.Parser.Parse_error { line; _ } ->
      check Alcotest.int "error on the malformed line" 2 line

(* ------------------------------------------------------------------ *)
(* Layout math                                                          *)
(* ------------------------------------------------------------------ *)

let test_layout_slots () =
  check Alcotest.int "row" ((1 * 4) + 2) (Layout.slot Layout.Row ~dims:[ 3; 4 ] [ 1; 2 ]);
  (* column-major: slot = j * rows + i *)
  check Alcotest.int "col" ((2 * 3) + 1) (Layout.slot Layout.Col ~dims:[ 3; 4 ] [ 1; 2 ]);
  (* Halevi-Shoup diagonal: slot = ((j - i) mod cols) * rows + i *)
  check Alcotest.int "diag" ((((2 - 1) mod 4) * 3) + 1) (Layout.slot Layout.Diag ~dims:[ 3; 4 ] [ 1; 2 ]);
  check Alcotest.int "diag wraps" ((((0 - 2 + 4) mod 4) * 3) + 2)
    (Layout.slot Layout.Diag ~dims:[ 3; 4 ] [ 2; 0 ])

let test_layout_bijective () =
  (* every 2D layout is a permutation of the r*c slots *)
  List.iter
    (fun kind ->
      List.iter
        (fun (r, c) ->
          let seen = Hashtbl.create 16 in
          for i = 0 to r - 1 do
            for j = 0 to c - 1 do
              let s = Layout.slot kind ~dims:[ r; c ] [ i; j ] in
              check Alcotest.bool "slot in range" true (s >= 0 && s < r * c);
              if Hashtbl.mem seen s then
                Alcotest.failf "%s %dx%d: slot %d hit twice" (Layout.kind_to_string kind) r c s;
              Hashtbl.add seen s ()
            done
          done)
        [ (4, 4); (3, 5); (1, 7) ])
    [ Layout.Row; Layout.Col; Layout.Diag ]

(* ------------------------------------------------------------------ *)
(* Lowering correctness                                                 *)
(* ------------------------------------------------------------------ *)

let test_apps_all_layouts_match_reference () =
  List.iter
    (fun (app : Batch_apps.t) ->
      List.iter
        (fun spec ->
          let rmse = lowering_rmse spec app.Batch_apps.surface app.Batch_apps.inputs in
          check Alcotest.bool
            (Printf.sprintf "%s/%s rmse %.3e" app.Batch_apps.name (Lower.spec_to_string spec)
               rmse)
            true (rmse < 1e-9))
        all_specs)
    (Batch_apps.suite ())

let test_matvec_diag_beats_naive_rotations () =
  (* acceptance bar: the auto layout emits at least 2x fewer rotations than
     the one-slot naive lowering on matvec *)
  let app = Batch_apps.matvec () in
  let naive = lower_exn Lower.Naive app.Batch_apps.surface in
  let auto = lower_exn Lower.Auto app.Batch_apps.surface in
  check Alcotest.bool
    (Printf.sprintf "auto %d <= naive %d / 2" auto.Lower.rotations naive.Lower.rotations)
    true
    (2 * auto.Lower.rotations <= naive.Lower.rotations);
  (* and auto picked the diagonal layout for the matrix *)
  check Alcotest.bool "w packed diagonally" true
    (List.assoc_opt "w" auto.Lower.assignment = Some Layout.Diag)

let test_rotation_count_matches_ir () =
  (* the [rotations] statistic is the count of distinct rotate ops in the
     emitted program, which is what rotation-key provisioning pays for *)
  List.iter
    (fun (app : Batch_apps.t) ->
      let l = lower_exn Lower.Auto app.Batch_apps.surface in
      check Alcotest.int
        (app.Batch_apps.name ^ " rotation stat")
        (Lower.count_rotations l.Lower.prog)
        l.Lower.rotations)
    (Batch_apps.suite ())

let test_loop_carried_dependency_rejected () =
  (* a recurrence cannot be batched: every iteration reads the previous
     iteration's write of the same site *)
  let b = Batch_dsl.create ~name:"scan" () in
  let x = Batch_dsl.input b "x" [ 8 ] in
  let y = Batch_dsl.output_array b "y" [ 8 ] in
  Batch_dsl.(
    store b y [ c 0 ] (load x [ c 0 ]);
    for_ b "i" ~lo:1 ~hi:7 (fun i ->
        store b y [ i ] (add (load y [ i -$ c 1 ]) (load x [ i ]))));
  let s = Batch_dsl.finish b in
  (* the scalar semantics are fine... *)
  let out = Surface.execute s ~inputs:[ ("x", Array.make 8 1.) ] in
  check close "prefix sum" 8. (List.assoc "y" out).(7);
  (* ...but lowering must reject it with a diagnostic, not a wrong answer *)
  match Lower.lower ~spec:Lower.Auto s with
  | Ok _ -> Alcotest.fail "expected the loop-carried dependency to be rejected"
  | Error d ->
      check
        (Alcotest.testable (Fmt.of_to_string Diagnostic.code_name) ( = ))
        "code" Diagnostic.Precondition d.Diagnostic.code

let test_read_after_full_write_is_legal () =
  (* two statements: fill z, then consume it — legal because every write
     precedes every read both in time and in statement order *)
  let b = Batch_dsl.create ~name:"staged" () in
  let x = Batch_dsl.input b "x" [ 8 ] in
  let z = Batch_dsl.local b "z" [ 8 ] in
  let y = Batch_dsl.output_array b "y" [ 8 ] in
  Batch_dsl.(
    for_ b "i" ~lo:0 ~hi:7 (fun i -> store b z [ i ] (mul (load x [ i ]) (load x [ i ])));
    for_ b "i" ~lo:0 ~hi:7 (fun i -> store b y [ i ] (add (load z [ i ]) (lit 1.))));
  let s = Batch_dsl.finish b in
  let g = Prng.create ~seed:7 in
  let inputs = [ ("x", Array.init 8 (fun _ -> Prng.float01 g)) ] in
  let rmse = lowering_rmse Lower.Auto s inputs in
  check Alcotest.bool "staged rmse" true (rmse < 1e-12)

(* Random loop programs: four parametric shapes x five layout specs, all
   must agree with exact scalar execution after lowering and cleanup. *)
let prop_random_loops_match_reference =
  QCheck.Test.make ~name:"lowered vector IR = scalar reference" ~count:40
    QCheck.(quad (int_range 0 3) (int_range 1 5) (int_range 1 5) (int_range 0 4))
    (fun (template, p, q, spec_idx) ->
      let spec = List.nth all_specs spec_idx in
      let seed = 0x5EED + template + (31 * p) + (997 * q) + (7919 * spec_idx) in
      let g = Prng.create ~seed in
      let rand k = Array.init k (fun _ -> Prng.float01 g -. 0.5) in
      let surface, inputs =
        match template with
        | 0 ->
            let app = Batch_apps.matvec ~rows:p ~cols:q () in
            (app.Batch_apps.surface, app.Batch_apps.inputs)
        | 1 ->
            (* elementwise with a shifted read, staged through a local *)
            let n = p + q + 2 in
            let s = q mod n in
            let b = Batch_dsl.create ~name:"shift" () in
            let a = Batch_dsl.input b "a" [ n ] in
            let z = Batch_dsl.local b "z" [ n ] in
            let y = Batch_dsl.output_array b "y" [ n ] in
            Batch_dsl.(
              for_ b "i" ~lo:0 ~hi:(n - 1 - s) (fun i ->
                  store b z [ i ] (mul (load a [ i +$ c s ]) (load a [ i ])));
              for_ b "i" ~lo:0 ~hi:(n - 1) (fun i ->
                  store b y [ i ] (sub (load z [ i ]) (load a [ i ]))));
            (Batch_dsl.finish b, [ ("a", rand n) ])
        | 2 ->
            (* 1D convolution with plaintext taps *)
            let n = p + 4 in
            let k = 1 + (q mod 3) in
            let taps = Array.init k (fun d -> 0.25 +. (0.5 *. float_of_int d)) in
            let b = Batch_dsl.create ~name:"conv1d" () in
            let x = Batch_dsl.input b "x" [ n ] in
            let kk = Batch_dsl.plain b "k" [ k ] taps in
            let y = Batch_dsl.output_array b "y" [ n ] in
            Batch_dsl.(
              for_ b "i" ~lo:0 ~hi:(n - k) (fun i ->
                  for_ b "d" ~lo:0 ~hi:(k - 1) (fun d ->
                      accum b y [ i ] (mul (load kk [ d ]) (load x [ i +$ d ])))));
            (Batch_dsl.finish b, [ ("x", rand n) ])
        | _ ->
            let app = Batch_apps.group_by ~rows:(4 * p) ~groups:(1 + (q mod 3)) () in
            (app.Batch_apps.surface, app.Batch_apps.inputs)
      in
      let rmse = lowering_rmse spec surface inputs in
      if rmse >= 1e-9 then
        QCheck.Test.fail_reportf "template %d p=%d q=%d %s: rmse %.3e" template p q
          (Lower.spec_to_string spec) rmse;
      true)

(* ------------------------------------------------------------------ *)
(* Scale management over batched programs                               *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let golden_key (app : Batch_apps.t) =
  String.map (fun c -> if c = '-' then '_' else c)
    (Astring.String.with_range ~first:6 app.Batch_apps.name)

let compile_batched scheme (l : Lower.lowered) =
  Driver.compile ~passes:(Pass_manager.parse_exn Lower.pipeline) scheme ~sf_bits:28
    ~waterline_bits:20. l.Lower.prog

let test_golden_all_schemes () =
  (* byte-for-byte pins of the managed IR for every app x scheme: scale
     management over batched programs must stay deterministic *)
  List.iter
    (fun (app : Batch_apps.t) ->
      let l = lower_exn Lower.Auto app.Batch_apps.surface in
      List.iter
        (fun scheme ->
          let path =
            Printf.sprintf "golden/batch_%s_%s.ir" (golden_key app)
              (String.lowercase_ascii (Driver.scheme_name scheme))
          in
          let c = compile_batched scheme l in
          check Alcotest.string path (read_file path) (Printer.to_string c.Driver.prog))
        Driver.all_schemes)
    (Batch_apps.suite ())

let test_encrypted_end_to_end () =
  (* full path: lower, scale-manage under HECATE, encrypt packed inputs,
     execute on the CKKS backend, decode, compare to scalar reference *)
  List.iter
    (fun (app : Batch_apps.t) ->
      let l = lower_exn Lower.Auto app.Batch_apps.surface in
      let c = compile_batched Driver.Hecate l in
      let packed =
        List.map (fun (n, d) -> (n, Lower.pack_input l n d)) app.Batch_apps.inputs
      in
      let eval =
        Interp.context ~params:c.Driver.params
          ~rotations:(Interp.required_rotations c.Driver.prog) ()
      in
      let rep = Interp.execute eval ~waterline_bits:20. c.Driver.prog ~inputs:packed in
      let refs = Surface.execute app.Batch_apps.surface ~inputs:app.Batch_apps.inputs in
      let err2 = ref 0. and count = ref 0 in
      List.iter2
        (fun (name, expect) packed_out ->
          let got = Lower.decode_output l name packed_out in
          Array.iteri
            (fun i x ->
              let e = got.(i) -. x in
              err2 := !err2 +. (e *. e);
              incr count)
            expect)
        refs rep.Interp.outputs;
      let rmse = sqrt (!err2 /. float_of_int (max 1 !count)) in
      check Alcotest.bool
        (Printf.sprintf "%s encrypted rmse %.3e" app.Batch_apps.name rmse)
        true (rmse < 1e-2))
    (Batch_apps.suite ())

let test_infer_agrees_with_eva_codegen () =
  (* frontend scale inference over the cleaned batched program coincides
     with the driver's EVA placement, exactly as for hand-written IR *)
  let infer_cfg = Typing.config ~sf:28. ~waterline:20. () in
  List.iter
    (fun (app : Batch_apps.t) ->
      let l = lower_exn Lower.Auto app.Batch_apps.surface in
      let cleaned = cleanup l.Lower.prog in
      let inferred = Infer.infer_exn infer_cfg cleaned in
      let finalized = fst (Driver.finalize ~cfg:infer_cfg inferred) in
      let eva = compile_batched Driver.Eva l in
      if not (Prog.equal finalized eva.Driver.prog) then
        Alcotest.failf "%s: inferred placement differs from EVA codegen"
          app.Batch_apps.name)
    (Batch_apps.suite ())

(* ------------------------------------------------------------------ *)
(* Fingerprints and the plan cache                                      *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_stable_and_layout_sensitive () =
  let fp spec =
    Prog.fingerprint (lower_exn spec (Batch_apps.matvec ()).Batch_apps.surface).Lower.prog
  in
  (* rebuilding the same surface program lowers to the same fingerprint *)
  check Alcotest.string "stable across builds" (fp Lower.Auto) (fp Lower.Auto);
  (* a different rotation network is a different cache identity *)
  check Alcotest.bool "naive differs from auto" true (fp Lower.Naive <> fp Lower.Auto)

let test_plancache_addresses_batched_programs () =
  (* the daemon's content-addressed cache answers repeat compiles of a
     batched program warm, with a byte-identical artifact *)
  let cache = Plancache.create () in
  let l = lower_exn Lower.Auto (Batch_apps.matvec ()).Batch_apps.surface in
  let prog = cleanup l.Lower.prog in
  let compile () =
    Plancache.compile cache ~scheme:Driver.Hecate ~sf_bits:28 ~waterline_bits:20. prog
  in
  let cold, o1 = compile () in
  let warm, o2 = compile () in
  check Alcotest.string "cold is computed" "cold" (Plancache.origin_name o1);
  check Alcotest.string "warm is a memory hit" "memory" (Plancache.origin_name o2);
  check Alcotest.string "artifact byte-identical" cold.Plancache.artifact
    warm.Plancache.artifact;
  check Alcotest.string "keyed by the program fingerprint" (Prog.fingerprint prog)
    cold.Plancache.fingerprint

let () =
  Alcotest.run "hecate_batch"
    [
      ( "surface",
        [
          Alcotest.test_case "execute semantics" `Quick test_surface_execute_semantics;
          Alcotest.test_case "print/parse round trip" `Quick test_surface_print_parse_roundtrip;
          Alcotest.test_case "validation diagnostics" `Quick test_surface_validation;
          Alcotest.test_case "undeclared target" `Quick test_surface_parse_error_line;
          Alcotest.test_case "parse error line" `Quick test_surface_parse_rejects_garbage;
        ] );
      ( "layout",
        [
          Alcotest.test_case "slot formulas" `Quick test_layout_slots;
          Alcotest.test_case "layouts are bijections" `Quick test_layout_bijective;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "apps x layouts = reference" `Quick
            test_apps_all_layouts_match_reference;
          Alcotest.test_case "diag halves matvec rotations" `Quick
            test_matvec_diag_beats_naive_rotations;
          Alcotest.test_case "rotation stat = IR count" `Quick test_rotation_count_matches_ir;
          Alcotest.test_case "loop-carried dependency rejected" `Quick
            test_loop_carried_dependency_rejected;
          Alcotest.test_case "staged read is legal" `Quick test_read_after_full_write_is_legal;
          qtest prop_random_loops_match_reference;
        ] );
      ( "schemes",
        [
          Alcotest.test_case "golden IR all schemes" `Quick test_golden_all_schemes;
          Alcotest.test_case "encrypted end to end" `Quick test_encrypted_end_to_end;
          Alcotest.test_case "inference = EVA codegen" `Quick test_infer_agrees_with_eva_codegen;
        ] );
      ( "caching",
        [
          Alcotest.test_case "fingerprint identity" `Quick
            test_fingerprint_stable_and_layout_sensitive;
          Alcotest.test_case "plan cache warm hit" `Quick
            test_plancache_addresses_batched_programs;
        ] );
    ]
