(* Unit and property tests for the hecate_support library. *)

module M = Hecate_support.Modarith
module P = Hecate_support.Prng
module F = Hecate_support.Fft
module Pr = Hecate_support.Primes
module N = Hecate_support.Ntt
module S = Hecate_support.Stats
module B = Hecate_support.Buf

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Modular arithmetic                                                  *)
(* ------------------------------------------------------------------ *)

let q31 = 2147483647 (* Mersenne prime 2^31 - 1 *)
let q_small = 97

let test_mod_basic () =
  check Alcotest.int "add wraps" 1 (M.add ~q:q_small 50 48);
  check Alcotest.int "sub wraps" 96 (M.sub ~q:q_small 0 1);
  check Alcotest.int "neg zero" 0 (M.neg ~q:q_small 0);
  check Alcotest.int "neg" 96 (M.neg ~q:q_small 1);
  check Alcotest.int "mul" (50 * 48 mod 97) (M.mul ~q:q_small 50 48);
  check Alcotest.int "pow base case" 1 (M.pow ~q:q_small 13 0);
  check Alcotest.int "pow fermat" 1 (M.pow ~q:q_small 13 (q_small - 1));
  check Alcotest.int "reduce negative" (q_small - 3) (M.reduce ~q:q_small (-3));
  check Alcotest.int "centered high" (-1) (M.to_centered ~q:q_small (q_small - 1));
  check Alcotest.int "centered low" 5 (M.to_centered ~q:q_small 5)

let test_mod_inverse () =
  for a = 1 to 96 do
    let ia = M.inv ~q:q_small a in
    check Alcotest.int (Printf.sprintf "inv %d" a) 1 (M.mul ~q:q_small a ia)
  done;
  Alcotest.check_raises "inv 0 raises"
    (Invalid_argument "Modarith.inv: zero has no inverse") (fun () ->
      ignore (M.inv ~q:q_small 0))

let prop_mul_assoc =
  QCheck.Test.make ~name:"modmul associative at 31 bits" ~count:500
    QCheck.(triple (int_bound (q31 - 1)) (int_bound (q31 - 1)) (int_bound (q31 - 1)))
    (fun (a, b, c) ->
      M.mul ~q:q31 (M.mul ~q:q31 a b) c = M.mul ~q:q31 a (M.mul ~q:q31 b c))

let prop_centered_roundtrip =
  QCheck.Test.make ~name:"centered <-> canonical roundtrip" ~count:500
    QCheck.(int_bound (q31 - 1))
    (fun a -> M.of_centered ~q:q31 (M.to_centered ~q:q31 a) = a)

(* Barrett and Shoup kernels must agree bit-for-bit with the division-based
   reference, across prime widths and including the boundary residues. *)

let barrett_test_primes () =
  (* several widths, including the 31-bit extreme the special prime can hit *)
  List.concat_map
    (fun bits -> Pr.ntt_primes ~bits ~n:1024 ~count:2)
    [ 28; 29; 30; 31 ]
  @ [ q31; q_small ]

let boundary_residues q = [ 0; 1; q - 2; q - 1 ]

let test_barrett_vs_naive () =
  let g = P.create ~seed:0xBA22E77 in
  List.iter
    (fun q ->
      let c = M.ctx ~q in
      check Alcotest.int "modulus" q (M.modulus c);
      let pairs =
        List.concat_map (fun a -> List.map (fun b -> (a, b)) (boundary_residues q))
          (boundary_residues q)
        @ List.init 200 (fun _ -> (P.uniform_mod g q, P.uniform_mod g q))
      in
      List.iter
        (fun (a, b) ->
          check Alcotest.int
            (Printf.sprintf "mulmod q=%d %d*%d" q a b)
            (M.mul ~q a b) (M.mulmod c a b))
        pairs)
    (barrett_test_primes ())

let test_barrett_reduce_ctx () =
  let g = P.create ~seed:0xC0FFEE in
  List.iter
    (fun q ->
      let c = M.ctx ~q in
      (* domain: |z| < min (2 q^2) 2^62 *)
      let zmax = min ((2 * q * q) - 1) ((1 lsl 62) - 1) in
      let zs =
        [ 0; 1; q - 1; q; q + 1; (q * q) - 1; -1; -q; zmax; -zmax ]
        @ List.init 200 (fun _ ->
              (* random value below q^2 + q, signed *)
              let z = (P.uniform_mod g q * P.uniform_mod g q) + P.uniform_mod g q in
              if P.uniform_mod g 2 = 0 then -z else z)
      in
      List.iter
        (fun z ->
          check Alcotest.int (Printf.sprintf "reduce_ctx q=%d z=%d" q z) (M.reduce ~q z)
            (M.reduce_ctx c z))
        zs)
    (barrett_test_primes ())

let test_shoup_vs_naive () =
  let g = P.create ~seed:0x540FF in
  List.iter
    (fun q ->
      let ws = boundary_residues q @ List.init 50 (fun _ -> P.uniform_mod g q) in
      List.iter
        (fun w ->
          let w' = M.shoup ~q w in
          List.iter
            (fun a ->
              check Alcotest.int
                (Printf.sprintf "shoup q=%d a=%d w=%d" q a w)
                (M.mul ~q a w)
                (M.mulmod_shoup ~q a w w'))
            (boundary_residues q @ List.init 20 (fun _ -> P.uniform_mod g q)))
        ws)
    (barrett_test_primes ())

let test_pow_negative_base () =
  (* regression: [b mod q] is negative for negative [b] in OCaml; pow must
     normalize before squaring *)
  check Alcotest.int "(-2)^3 mod 97" (M.reduce ~q:q_small ((-2) * (-2) * -2))
    (M.pow ~q:q_small (-2) 3);
  check Alcotest.int "(-1)^2" 1 (M.pow ~q:q_small (-1) 2);
  check Alcotest.int "(-1)^3" (q_small - 1) (M.pow ~q:q_small (-1) 3);
  check Alcotest.int "negative base vs normalized base" (M.pow ~q:q31 (q31 - 5) 12345)
    (M.pow ~q:q31 (-5) 12345)

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let g1 = P.create ~seed:42 and g2 = P.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (P.bits64 g1) (P.bits64 g2)
  done

let test_prng_seeds_differ () =
  let g1 = P.create ~seed:1 and g2 = P.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if P.bits64 g1 = P.bits64 g2 then incr same
  done;
  check Alcotest.bool "different streams" true (!same < 4)

let test_prng_copy () =
  let g = P.create ~seed:7 in
  ignore (P.bits64 g);
  let g' = P.copy g in
  check Alcotest.int64 "copy continues identically" (P.bits64 g) (P.bits64 g')

let test_split_deterministic () =
  (* same parent seed + same name => identical sub-stream *)
  let g1 = P.create ~seed:99 and g2 = P.create ~seed:99 in
  let a = P.split g1 "shape" and b = P.split g2 "shape" in
  for _ = 1 to 50 do
    check Alcotest.int64 "same sub-stream" (P.bits64 a) (P.bits64 b)
  done

let test_split_names_differ () =
  let g = P.create ~seed:99 in
  let a = P.split g "shape" and b = P.split g "consts" in
  let same = ref 0 in
  for _ = 1 to 64 do
    if P.bits64 a = P.bits64 b then incr same
  done;
  check Alcotest.bool "decorrelated names" true (!same < 4)

let test_split_independent () =
  (* drawing from one sub-stream must not perturb a sibling or the parent *)
  let g = P.create ~seed:7 in
  let a = P.split g "a" in
  let parent_probe = P.bits64 (P.copy g) in
  for _ = 1 to 100 do
    ignore (P.bits64 a)
  done;
  check Alcotest.int64 "parent unmoved by split+draws" parent_probe (P.bits64 (P.copy g));
  (* sibling derived after draining [a] equals sibling derived before *)
  let b_late = P.split g "b" in
  let g' = P.create ~seed:7 in
  let b_early = P.split g' "b" in
  for _ = 1 to 50 do
    check Alcotest.int64 "sibling independent of drain order" (P.bits64 b_early)
      (P.bits64 b_late)
  done

let test_split_tracks_parent_state () =
  (* advancing the parent changes what split derives — sub-streams are keyed
     on the parent's current state, not its seed *)
  let g = P.create ~seed:7 in
  let before = P.split g "s" in
  ignore (P.bits64 g);
  let after = P.split g "s" in
  check Alcotest.bool "state-dependent derivation" false (P.bits64 before = P.bits64 after)

let test_int_below_range () =
  let g = P.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = P.int_below g 17 in
    check Alcotest.bool "in range" true (x >= 0 && x < 17)
  done

let test_int_below_uniformish () =
  let g = P.create ~seed:11 in
  let counts = Array.make 8 0 in
  let n = 8000 in
  for _ = 1 to n do
    let x = P.int_below g 8 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      check Alcotest.bool (Printf.sprintf "bucket %d near uniform" i) true
        (abs (c - (n / 8)) < n / 8 / 2))
    counts

let test_ternary_support () =
  let g = P.create ~seed:5 in
  let seen = Hashtbl.create 3 in
  for _ = 1 to 300 do
    let t = P.ternary g in
    check Alcotest.bool "ternary in {-1,0,1}" true (t >= -1 && t <= 1);
    Hashtbl.replace seen t ()
  done;
  check Alcotest.int "all three values occur" 3 (Hashtbl.length seen)

let test_centered_binomial_moments () =
  let g = P.create ~seed:13 in
  let eta = 21 in
  let n = 20000 in
  let samples = Array.init n (fun _ -> float_of_int (P.centered_binomial g ~eta)) in
  let m = S.mean samples and v = S.variance samples in
  check Alcotest.bool "mean near 0" true (Float.abs m < 0.1);
  (* variance of centered binomial with parameter eta is eta/2 = 10.5 *)
  check Alcotest.bool "variance near eta/2" true (Float.abs (v -. 10.5) < 1.0)

let test_gaussian_moments () =
  let g = P.create ~seed:17 in
  let n = 20000 in
  let samples = Array.init n (fun _ -> P.gaussian g ~sigma:3.2) in
  check Alcotest.bool "mean near 0" true (Float.abs (S.mean samples) < 0.1);
  check Alcotest.bool "sigma near 3.2" true (Float.abs (sqrt (S.variance samples) -. 3.2) < 0.15)

let test_shuffle_permutation () =
  let g = P.create ~seed:19 in
  let a = Array.init 50 Fun.id in
  P.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* FFT                                                                 *)
(* ------------------------------------------------------------------ *)

let test_fft_roundtrip () =
  let g = P.create ~seed:23 in
  let n = 256 in
  let buf = F.make_buffer n in
  let orig_re = Array.init n (fun _ -> P.float01 g -. 0.5) in
  let orig_im = Array.init n (fun _ -> P.float01 g -. 0.5) in
  Array.blit orig_re 0 buf.F.re 0 n;
  Array.blit orig_im 0 buf.F.im 0 n;
  F.forward buf;
  F.inverse buf;
  for i = 0 to n - 1 do
    check Alcotest.bool "re roundtrip" true (Float.abs (buf.F.re.(i) -. orig_re.(i)) < 1e-10);
    check Alcotest.bool "im roundtrip" true (Float.abs (buf.F.im.(i) -. orig_im.(i)) < 1e-10)
  done

let test_fft_impulse () =
  (* FFT of a unit impulse is the all-ones vector. *)
  let n = 64 in
  let buf = F.make_buffer n in
  buf.F.re.(0) <- 1.;
  F.forward buf;
  for i = 0 to n - 1 do
    check Alcotest.bool "flat spectrum re" true (Float.abs (buf.F.re.(i) -. 1.) < 1e-12);
    check Alcotest.bool "flat spectrum im" true (Float.abs buf.F.im.(i) < 1e-12)
  done

let test_fft_single_tone () =
  (* A tone e^{+2pi i k0 t / n} lands on bin k0 under the forward kernel
     e^{-2pi i jk/n}. *)
  let n = 32 and k0 = 5 in
  let buf = F.make_buffer n in
  for t = 0 to n - 1 do
    let theta = 2. *. Float.pi *. float_of_int (k0 * t) /. float_of_int n in
    buf.F.re.(t) <- cos theta;
    buf.F.im.(t) <- sin theta
  done;
  F.forward buf;
  for k = 0 to n - 1 do
    let mag = sqrt ((buf.F.re.(k) *. buf.F.re.(k)) +. (buf.F.im.(k) *. buf.F.im.(k))) in
    if k = k0 then check Alcotest.bool "tone bin" true (Float.abs (mag -. float_of_int n) < 1e-9)
    else check Alcotest.bool "other bins empty" true (mag < 1e-9)
  done

let test_fft_linearity () =
  let g = P.create ~seed:29 in
  let n = 128 in
  let a = F.make_buffer n and b = F.make_buffer n and s = F.make_buffer n in
  for i = 0 to n - 1 do
    a.F.re.(i) <- P.float01 g;
    b.F.re.(i) <- P.float01 g;
    s.F.re.(i) <- a.F.re.(i) +. b.F.re.(i)
  done;
  F.forward a;
  F.forward b;
  F.forward s;
  for i = 0 to n - 1 do
    check Alcotest.bool "linear" true
      (Float.abs (s.F.re.(i) -. a.F.re.(i) -. b.F.re.(i)) < 1e-9)
  done

let test_fft_bad_length () =
  let buf = { F.re = Array.make 12 0.; F.im = Array.make 12 0. } in
  Alcotest.check_raises "non power of two rejected"
    (Invalid_argument "Fft: length must be a power of two") (fun () -> F.forward buf)

(* ------------------------------------------------------------------ *)
(* Primes                                                              *)
(* ------------------------------------------------------------------ *)

let test_is_prime_small () =
  let primes = [ 2; 3; 5; 7; 11; 13; 97; 7919 ] in
  let composites = [ 0; 1; 4; 9; 91; 561; 1105; 7917 ] in
  List.iter (fun p -> check Alcotest.bool (string_of_int p) true (Pr.is_prime p)) primes;
  List.iter (fun c -> check Alcotest.bool (string_of_int c) false (Pr.is_prime c)) composites

let test_is_prime_carmichael () =
  (* Carmichael numbers fool Fermat tests but not Miller-Rabin. *)
  List.iter
    (fun c -> check Alcotest.bool (string_of_int c) false (Pr.is_prime c))
    [ 561; 1105; 1729; 2465; 2821; 6601; 8911; 41041; 825265 ]

let test_ntt_primes_properties () =
  let n = 4096 in
  let ps = Pr.ntt_primes ~bits:28 ~n ~count:8 in
  check Alcotest.int "count" 8 (List.length ps);
  List.iter
    (fun p ->
      check Alcotest.bool "prime" true (Pr.is_prime p);
      check Alcotest.int "ntt friendly" 1 (p mod (2 * n));
      check Alcotest.bool "28 bits" true (p > 1 lsl 27 && p < 1 lsl 28))
    ps;
  let sorted = List.sort (fun a b -> compare b a) ps in
  check Alcotest.(list int) "decreasing, distinct" sorted ps;
  check Alcotest.int "distinct" 8 (List.length (List.sort_uniq compare ps))

let test_ntt_primes_avoiding () =
  let n = 1024 in
  let base = Pr.ntt_primes ~bits:28 ~n ~count:3 in
  let avoided = Pr.ntt_primes_avoiding ~bits:28 ~n ~count:3 ~avoid:base in
  List.iter
    (fun p -> check Alcotest.bool "not in avoid list" false (List.mem p base))
    avoided

let test_primitive_root () =
  let n = 1024 in
  List.iter
    (fun p ->
      let g = Pr.primitive_root_2n ~p ~n in
      check Alcotest.int "g^n = -1" (p - 1) (M.pow ~q:p g n);
      check Alcotest.int "g^2n = 1" 1 (M.pow ~q:p g (2 * n)))
    (Pr.ntt_primes ~bits:28 ~n ~count:4)

(* ------------------------------------------------------------------ *)
(* NTT                                                                 *)
(* ------------------------------------------------------------------ *)

let ntt_table n =
  let p = List.hd (Pr.ntt_primes ~bits:28 ~n ~count:1) in
  N.make_table ~p ~n

let test_ntt_roundtrip () =
  List.iter
    (fun n ->
      let t = ntt_table n in
      let g = P.create ~seed:31 in
      let a = Array.init n (fun _ -> P.uniform_mod g (N.prime t)) in
      let b = B.of_array a in
      N.forward t b;
      N.inverse t b;
      check Alcotest.(array int) (Printf.sprintf "roundtrip n=%d" n) a (B.to_array b))
    [ 8; 64; 512; 1024 ]

let test_ntt_fast_vs_naive () =
  (* the Shoup/Barrett transforms must agree bit-for-bit with the
     division-based reference on identical inputs *)
  List.iter
    (fun n ->
      let t = ntt_table n in
      let g = P.create ~seed:41 in
      let a = Array.init n (fun _ -> P.uniform_mod g (N.prime t)) in
      let fwd_fast = B.of_array a and fwd_naive = B.of_array a in
      N.forward t fwd_fast;
      N.forward_naive t fwd_naive;
      check Alcotest.(array int)
        (Printf.sprintf "forward n=%d" n)
        (B.to_array fwd_naive) (B.to_array fwd_fast);
      let inv_fast = B.copy fwd_fast and inv_naive = B.copy fwd_fast in
      N.inverse t inv_fast;
      N.inverse_naive t inv_naive;
      check Alcotest.(array int)
        (Printf.sprintf "inverse n=%d" n)
        (B.to_array inv_naive) (B.to_array inv_fast);
      check Alcotest.(array int) (Printf.sprintf "roundtrip n=%d" n) a (B.to_array inv_fast))
    [ 8; 64; 1024 ]

let test_kernels_toggle () =
  let k = Hecate_support.Kernels.use_naive () in
  Hecate_support.Kernels.with_naive true (fun () ->
      check Alcotest.bool "naive inside" true (Hecate_support.Kernels.use_naive ()));
  check Alcotest.bool "restored" k (Hecate_support.Kernels.use_naive ());
  (* with_naive restores the flag even when the thunk raises *)
  (try
     Hecate_support.Kernels.with_naive true (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.bool "restored after raise" k (Hecate_support.Kernels.use_naive ())

(* Schoolbook negacyclic product for cross-validation. *)
let schoolbook_negacyclic ~q a b =
  let n = Array.length a in
  let r = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let k = i + j in
      let v = M.mul ~q a.(i) b.(j) in
      if k < n then r.(k) <- M.add ~q r.(k) v
      else r.(k - n) <- M.sub ~q r.(k - n) v
    done
  done;
  r

let test_ntt_vs_schoolbook () =
  let n = 64 in
  let t = ntt_table n in
  let q = N.prime t in
  let g = P.create ~seed:37 in
  for _ = 1 to 5 do
    let a = Array.init n (fun _ -> P.uniform_mod g q) in
    let b = Array.init n (fun _ -> P.uniform_mod g q) in
    check Alcotest.(array int) "matches schoolbook" (schoolbook_negacyclic ~q a b)
      (B.to_array (N.negacyclic_mul t (B.of_array a) (B.of_array b)))
  done

let test_ntt_negacyclic_wrap () =
  (* X^(n-1) * X = X^n = -1 in the ring. *)
  let n = 32 in
  let t = ntt_table n in
  let q = N.prime t in
  let a = B.create n and b = B.create n in
  B.set a (n - 1) 1;
  B.set b 1 1;
  let r = N.negacyclic_mul t a b in
  check Alcotest.int "constant term is -1" (q - 1) (B.get r 0);
  for i = 1 to n - 1 do
    check Alcotest.int "other terms zero" 0 (B.get r i)
  done

let prop_ntt_convolution_linear =
  QCheck.Test.make ~name:"ntt mul distributes over addition" ~count:20
    QCheck.(
      pair
        (list_of_size (Gen.return 16) (int_bound 1000))
        (list_of_size (Gen.return 16) (int_bound 1000)))
    (fun (la, lb) ->
      let n = 16 in
      let t = ntt_table n in
      let q = N.prime t in
      let a = B.of_array (Array.of_list la) and b = B.of_array (Array.of_list lb) in
      let c = B.init n (fun i -> i * 7 mod q) in
      let ab = N.negacyclic_mul t a b and ac = N.negacyclic_mul t a c in
      let b_plus_c = B.init n (fun i -> M.add ~q (B.get b i) (B.get c i)) in
      let lhs = N.negacyclic_mul t a b_plus_c in
      let rhs = B.init n (fun i -> M.add ~q (B.get ab i) (B.get ac i)) in
      B.equal lhs rhs)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  check (Alcotest.float 1e-12) "mean" 2.5 (S.mean [| 1.; 2.; 3.; 4. |]);
  check (Alcotest.float 1e-12) "variance" 1.25 (S.variance [| 1.; 2.; 3.; 4. |]);
  check (Alcotest.float 1e-12) "rmse zero" 0. (S.rmse [| 1.; 2. |] [| 1.; 2. |]);
  check (Alcotest.float 1e-12) "rmse" (sqrt 0.5) (S.rmse [| 1.; 2. |] [| 2.; 2. |]);
  check (Alcotest.float 1e-12) "max_abs_diff" 3. (S.max_abs_diff [| 1.; 5. |] [| 4.; 4. |]);
  check (Alcotest.float 1e-12) "geomean" 2. (S.geomean [| 1.; 4. |]);
  check (Alcotest.float 1e-12) "relative error" 0.5 (S.relative_error ~actual:2. ~estimate:3.)

let test_stats_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check (Alcotest.float 1e-12) "median" 50. (S.percentile xs 50.);
  check (Alcotest.float 1e-12) "p100" 100. (S.percentile xs 100.);
  check (Alcotest.float 1e-12) "p1" 1. (S.percentile xs 1.)

let test_stats_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty input") (fun () ->
      ignore (S.mean [||]));
  Alcotest.check_raises "rmse mismatch" (Invalid_argument "Stats.rmse: length mismatch")
    (fun () -> ignore (S.rmse [| 1. |] [| 1.; 2. |]))

let test_stats_median () =
  check (Alcotest.float 1e-12) "odd length" 3. (S.median [| 5.; 1.; 3. |]);
  check (Alcotest.float 1e-12) "even length" 2.5 (S.median [| 4.; 1.; 2.; 3. |]);
  check (Alcotest.float 1e-12) "single" 7. (S.median [| 7. |]);
  (* median is robust to one outlier where the mean is not *)
  check (Alcotest.float 1e-12) "outlier" 2. (S.median [| 1.; 2.; 1000. |]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.median: empty input") (fun () ->
      ignore (S.median [||]))

let test_monotonic_now () =
  let prev = ref (S.monotonic_now_s ()) in
  for _ = 1 to 1000 do
    let t = S.monotonic_now_s () in
    check Alcotest.bool "non-decreasing" true (t >= !prev);
    prev := t
  done

let test_time_median () =
  let calls = ref 0 in
  let d = S.time_median ~warmup:2 ~reps:3 (fun () -> incr calls) in
  check Alcotest.bool "positive" true (d >= 0.);
  check Alcotest.bool "warmup + reps calls" true (!calls >= 5);
  (* auto-batching: with a min sample duration, each sample must loop the
     thunk enough times to fill it *)
  let calls = ref 0 in
  ignore (S.time_median ~warmup:0 ~min_sample_s:0.005 ~reps:2 (fun () -> incr calls));
  check Alcotest.bool "batched" true (!calls > 2);
  Alcotest.check_raises "reps >= 1" (Invalid_argument "Stats.time_median: reps must be >= 1")
    (fun () -> ignore (S.time_median ~reps:0 (fun () -> ())))

(* ------------------------------------------------------------------ *)
(* Fileio.write_atomic                                                 *)
(* ------------------------------------------------------------------ *)

module Fio = Hecate_support.Fileio

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_dir f =
  let dir = Filename.temp_file "hecate_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_write_atomic_basic () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "out.txt" in
  Fio.write_atomic ~path "hello";
  check Alcotest.string "contents" "hello" (read_file path);
  Fio.write_atomic ~path "replaced";
  check Alcotest.string "overwrite" "replaced" (read_file path);
  (* no stray temp files survive a successful write *)
  check Alcotest.(list string) "no leftovers" [ "out.txt" ]
    (Array.to_list (Sys.readdir dir))

(* The atomicity property: a reader racing a stream of writers never
   observes a torn file — every read returns one of the complete
   payloads, never a prefix or a mix. *)
let test_write_atomic_never_partial () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "contended.bin" in
  let payload c = String.make 32768 c in
  let a = payload 'a' and b = payload 'b' in
  let rounds = 50 in
  let writer =
    Domain.spawn (fun () ->
        for i = 1 to rounds do
          Fio.write_atomic ~path (if i land 1 = 0 then a else b)
        done)
  in
  let torn = ref 0 and reads = ref 0 in
  while !reads < 500 do
    (match read_file path with
    | s -> if not (String.equal s a || String.equal s b) then incr torn
    | exception Sys_error _ -> () (* not yet created *));
    incr reads
  done;
  Domain.join writer;
  check Alcotest.int "no torn reads" 0 !torn;
  check Alcotest.string "final contents" a (read_file path)

(* ------------------------------------------------------------------ *)
(* Pool shutdown                                                       *)
(* ------------------------------------------------------------------ *)

module Pool = Hecate_support.Pool

let test_pool_double_shutdown () =
  let p = Pool.create ~size:2 () in
  let r = Pool.map_array p ~f:(fun x -> x * x) [| 1; 2; 3 |] in
  check Alcotest.(array int) "map" [| 1; 4; 9 |] r;
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.map_array p ~f:Fun.id [| 1 |]))

let test_pool_concurrent_shutdown () =
  let p = Pool.create ~size:2 () in
  ignore (Pool.map_array p ~f:Fun.id [| 1; 2; 3; 4 |]);
  let callers =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Pool.shutdown p))
  in
  Pool.shutdown p;
  List.iter Domain.join callers;
  Alcotest.check_raises "closed afterwards"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.map_array p ~f:Fun.id [| 1 |]))

(* Work already submitted must complete even when shutdown lands while
   the queue is still full — the daemon relies on this to drain cleanly
   on SIGTERM. *)
let test_pool_shutdown_drains_pending () =
  let p = Pool.create ~size:2 () in
  let done_count = Atomic.make 0 in
  let submitter =
    Domain.spawn (fun () ->
        Pool.map_array p
          ~f:(fun i ->
            Unix.sleepf 0.002;
            Atomic.incr done_count;
            i)
          (Array.init 16 Fun.id))
  in
  (* let some tasks queue up, then shut down underneath the submitter *)
  Unix.sleepf 0.005;
  Pool.shutdown p;
  let results = Domain.join submitter in
  check Alcotest.int "all tasks ran" 16 (Atomic.get done_count);
  check Alcotest.(array int) "results intact" (Array.init 16 Fun.id) results

(* ------------------------------------------------------------------ *)
(* Json rendering                                                      *)
(* ------------------------------------------------------------------ *)

module J = Hecate_support.Json

let test_json_render_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd\te\x01f");
        ("n", J.Num 3.5);
        ("i", J.int 42);
        ("big", J.Num 1e100);
        ("t", J.Bool true);
        ("z", J.Null);
        ("a", J.Arr [ J.int 1; J.Str "x"; J.Arr []; J.Obj [] ]);
      ]
  in
  let line = J.render v in
  check Alcotest.bool "single line" false (String.contains line '\n');
  check Alcotest.bool "roundtrips" true (J.parse line = v)

let test_json_render_nonfinite () =
  check Alcotest.string "nan is null" "null" (J.render (J.Num Float.nan));
  check Alcotest.string "inf is null" "null" (J.render (J.Num Float.infinity));
  check Alcotest.string "int form" "7" (J.render (J.int 7));
  check Alcotest.string "float form" "0.5" (J.render (J.Num 0.5))

let () =
  Alcotest.run "hecate_support"
    [
      ( "modarith",
        [
          Alcotest.test_case "basic ops" `Quick test_mod_basic;
          Alcotest.test_case "inverses" `Quick test_mod_inverse;
          qtest prop_mul_assoc;
          qtest prop_centered_roundtrip;
          Alcotest.test_case "barrett vs naive" `Quick test_barrett_vs_naive;
          Alcotest.test_case "barrett reduce_ctx" `Quick test_barrett_reduce_ctx;
          Alcotest.test_case "shoup vs naive" `Quick test_shoup_vs_naive;
          Alcotest.test_case "pow negative base" `Quick test_pow_negative_base;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seeds_differ;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split determinism" `Quick test_split_deterministic;
          Alcotest.test_case "split name sensitivity" `Quick test_split_names_differ;
          Alcotest.test_case "split independence" `Quick test_split_independent;
          Alcotest.test_case "split keyed on state" `Quick test_split_tracks_parent_state;
          Alcotest.test_case "int_below range" `Quick test_int_below_range;
          Alcotest.test_case "int_below uniformity" `Quick test_int_below_uniformish;
          Alcotest.test_case "ternary support" `Quick test_ternary_support;
          Alcotest.test_case "centered binomial moments" `Quick test_centered_binomial_moments;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        ] );
      ( "fft",
        [
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "single tone" `Quick test_fft_single_tone;
          Alcotest.test_case "linearity" `Quick test_fft_linearity;
          Alcotest.test_case "bad length" `Quick test_fft_bad_length;
        ] );
      ( "primes",
        [
          Alcotest.test_case "small primes" `Quick test_is_prime_small;
          Alcotest.test_case "carmichael numbers" `Quick test_is_prime_carmichael;
          Alcotest.test_case "ntt prime properties" `Quick test_ntt_primes_properties;
          Alcotest.test_case "avoid list" `Quick test_ntt_primes_avoiding;
          Alcotest.test_case "primitive roots" `Quick test_primitive_root;
        ] );
      ( "ntt",
        [
          Alcotest.test_case "roundtrip" `Quick test_ntt_roundtrip;
          Alcotest.test_case "fast vs naive" `Quick test_ntt_fast_vs_naive;
          Alcotest.test_case "kernel mode toggle" `Quick test_kernels_toggle;
          Alcotest.test_case "vs schoolbook" `Quick test_ntt_vs_schoolbook;
          Alcotest.test_case "negacyclic wraparound" `Quick test_ntt_negacyclic_wrap;
          qtest prop_ntt_convolution_linear;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "errors" `Quick test_stats_errors;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "monotonic clock" `Quick test_monotonic_now;
          Alcotest.test_case "time_median" `Quick test_time_median;
        ] );
      ( "fileio",
        [
          Alcotest.test_case "write_atomic basic" `Quick test_write_atomic_basic;
          Alcotest.test_case "write_atomic never partial" `Quick
            test_write_atomic_never_partial;
        ] );
      ( "pool",
        [
          Alcotest.test_case "double shutdown" `Quick test_pool_double_shutdown;
          Alcotest.test_case "concurrent shutdown" `Quick test_pool_concurrent_shutdown;
          Alcotest.test_case "shutdown drains pending" `Quick
            test_pool_shutdown_drains_pending;
        ] );
      ( "json",
        [
          Alcotest.test_case "render roundtrip" `Quick test_json_render_roundtrip;
          Alcotest.test_case "non-finite numbers" `Quick test_json_render_nonfinite;
        ] );
    ]
