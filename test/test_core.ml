(* Tests for the hecate core: code generation (EVA waterline vs PARS), SMU
   generation (Algorithm 1, Fig. 6), the explorer, parameter selection and
   the estimator. *)

module Types = Hecate_ir.Types
module Prog = Hecate_ir.Prog
module Typing = Hecate_ir.Typing
module B = Prog.Builder
module Codegen = Hecate.Codegen
module Smu = Hecate.Smu
module Explore = Hecate.Explore
module Estimator = Hecate.Estimator
module Paramselect = Hecate.Paramselect
module Costmodel = Hecate.Costmodel
module Driver = Hecate.Driver

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let cfg = Typing.config ~sf:28. ~waterline:20. ()
let ty = Alcotest.testable Types.pp Types.equal
let cipher scale level = Types.Cipher { Types.scale; level }

(* the running example of the paper: (x^2 + y^2)^3 *)
let fig2 () =
  let b = B.create ~name:"fig2" ~slot_count:8 () in
  let x = B.input b "x" and y = B.input b "y" in
  let z = B.add b (B.mul b x x) (B.mul b y y) in
  B.output b (B.mul b (B.mul b z z) z);
  B.finish b

let kinds p = Array.map (fun (o : Prog.op) -> Prog.kind_name o.Prog.kind) p.Prog.body
let count_kind p name = Array.fold_left (fun n k -> if k = name then n + 1 else n) 0 (kinds p)

let output_ty p =
  ignore (Typing.check_exn cfg p);
  (Prog.op p (List.hd p.Prog.outputs)).Prog.ty

(* ------------------------------------------------------------------ *)
(* Code generation                                                     *)
(* ------------------------------------------------------------------ *)

let test_eva_fig2 () =
  (* EVA (Fig. 2a): reactive rescale after z^2, modswitch on z *)
  let p = Codegen.waterline cfg (fig2 ()) in
  ignore (Typing.check_exn cfg p);
  check Alcotest.bool "uses rescale" true (count_kind p "rescale" > 0);
  check Alcotest.bool "uses modswitch" true (count_kind p "modswitch" > 0);
  check Alcotest.int "never downscales" 0 (count_kind p "downscale")

let test_pars_fig2 () =
  (* PARS (Fig. 2c): proactive downscale of z, both cubing muls at level 1,
     cumulative scale 2^60. Raw PARS emits one downscale per use; CSE merges
     them into the single shared downscale of the paper's plan. *)
  let p = Hecate_ir.Passes.cse (Codegen.pars cfg (fig2 ())) in
  check ty "result is cipher<60,1>" (cipher 60. 1) (output_ty p);
  check Alcotest.int "exactly one downscale" 1 (count_kind p "downscale")

let test_pars_lower_peak_than_eva () =
  (* PARS reaches a chain at most as long as EVA's on the running example *)
  let types_of p = Typing.check_exn cfg p in
  let eva = Paramselect.select ~sf_bits:28 ~types:(types_of (Codegen.waterline cfg (fig2 ()))) ~slot_count:8 () in
  let pars = Paramselect.select ~sf_bits:28 ~types:(types_of (Codegen.pars cfg (fig2 ()))) ~slot_count:8 () in
  check Alcotest.bool "chain not longer" true
    (pars.Paramselect.chain_levels <= eva.Paramselect.chain_levels)

let test_codegen_rejects_managed_input () =
  let p = Codegen.pars cfg (fig2 ()) in
  (match Codegen.pars cfg p with
  | _ -> Alcotest.fail "expected rejection of an already-managed program"
  | exception Hecate_ir.Diagnostic.Error d ->
      check Alcotest.string "code" "already-managed" (Hecate_ir.Diagnostic.code_name d.Hecate_ir.Diagnostic.code));
  (* the driver rejects managed inputs for every scheme, exploring ones
     included, with the same structured code *)
  List.iter
    (fun scheme ->
      match Driver.compile_result scheme ~sf_bits:28 ~waterline_bits:20. p with
      | Ok _ -> Alcotest.fail "driver accepted a managed program"
      | Error d ->
          check Alcotest.string "driver code" "already-managed"
            (Hecate_ir.Diagnostic.code_name d.Hecate_ir.Diagnostic.code))
    Driver.all_schemes

let test_codegen_free_operands () =
  (* const * cipher and const + cipher get encoded plaintexts *)
  let b = B.create ~slot_count:8 () in
  let x = B.input b "x" in
  let scaled = B.mul b x (B.const_scalar b 0.5) in
  B.output b (B.add b scaled (B.const_scalar b 1.)) ;
  let src = B.finish b in
  List.iter
    (fun gen ->
      let p = gen cfg ?hook:None src in
      ignore (Typing.check_exn cfg p);
      check Alcotest.bool "has encodes" true (count_kind p "encode" >= 2))
    [ Codegen.waterline; (fun cfg ?hook p -> Codegen.pars cfg ?hook p) ]

let test_codegen_deep_chain () =
  (* x^16 by repeated squaring: every squaring forces a rescale eventually;
     both schemes must produce typable code with levels increasing *)
  let b = B.create ~slot_count:8 () in
  let x = B.input b "x" in
  let rec sq v i = if i = 0 then v else sq (B.mul b v v) (i - 1) in
  B.output b (sq x 4);
  let src = B.finish b in
  List.iter
    (fun gen ->
      let p = gen cfg ?hook:None src in
      let t = output_ty p in
      check Alcotest.bool "level grew" true (Types.level_exn t >= 2);
      check Alcotest.bool "scale above waterline" true (Types.scale_exn t >= 20. -. 1e-6))
    [ Codegen.waterline; (fun cfg ?hook p -> Codegen.pars cfg ?hook p) ]

let test_codegen_rotation_passthrough () =
  let b = B.create ~slot_count:8 () in
  let x = B.input b "x" in
  B.output b (B.add b (B.rotate b x 1) x);
  let src = B.finish b in
  let p = Codegen.pars cfg src in
  check ty "rotate preserves type" (cipher 20. 0) (output_ty p)

let test_codegen_hook_forces_ops () =
  (* forcing one op on each mul operand must still typecheck *)
  let hook ~op_id:_ ~operand:_ = 1 in
  let p = Codegen.pars cfg ~hook (fig2 ()) in
  ignore (Typing.check_exn cfg p);
  check Alcotest.bool "extra management ops present" true
    (count_kind p "downscale" + count_kind p "modswitch" + count_kind p "rescale" > 1)

let test_pars_downscale_analysis_trigger () =
  (* two fresh inputs multiply at 20+20=40 <= 28+40: no pre-downscale; but
     values at scale 40 multiply at 80 > 68: pre-downscale fires *)
  let b = B.create ~slot_count:8 () in
  let x = B.input b "x" and y = B.input b "y" in
  let xy = B.mul b x y in (* scale 40 *)
  let xy2 = B.mul b xy xy in (* would be 80 *)
  B.output b xy2;
  let p = Codegen.pars cfg (B.finish b) in
  check Alcotest.bool "pre-downscale fired" true (count_kind p "downscale" >= 1);
  ignore (Typing.check_exn cfg p)

(* ------------------------------------------------------------------ *)
(* SMU generation                                                       *)
(* ------------------------------------------------------------------ *)

let test_smu_fig6 () =
  (* Fig. 6: (x^2 + y^2) * z ends with units {x,y}, {z}, {x2,y2}, {x2+y2},
     {(x2+y2)z} — 5 units *)
  let b = B.create ~slot_count:8 () in
  let x = B.input b "x" and y = B.input b "y" and z = B.input b "z" in
  let x2 = B.mul b x x and y2 = B.mul b y y in
  let s = B.add b x2 y2 in
  B.output b (B.mul b s z);
  let p = B.finish b in
  let smu = Smu.generate p in
  check Alcotest.int "five units" 5 (Smu.unit_count smu);
  let unit_of v = smu.Smu.unit_of.(v) in
  check Alcotest.int "x and y together" (unit_of 0) (unit_of 1);
  check Alcotest.bool "z separate" true (unit_of 2 <> unit_of 0);
  check Alcotest.int "x2 and y2 together (definition merge)" (unit_of 3) (unit_of 4);
  check Alcotest.bool "x2+y2 split from x2 (operation split)" true (unit_of 5 <> unit_of 3)

let test_smu_rotation_stays () =
  (* rotations do not change scale: parallel rotations consumed by the same
     unit stay grouped with their source through the user-aware split *)
  let b = B.create ~slot_count:8 () in
  let x = B.input b "x" in
  let r1 = B.rotate b x 1 in
  let r2 = B.rotate b x 2 in
  B.output b (B.mul b (B.add b r1 r2) x);
  let smu = Smu.generate (B.finish b) in
  check Alcotest.int "parallel rotations grouped" smu.Smu.unit_of.(1) smu.Smu.unit_of.(2)

let test_smu_edges_fewer_than_uses () =
  let bench = fig2 () in
  let smu = Smu.generate bench in
  check Alcotest.bool "edge reduction" true (Smu.edge_count smu <= smu.Smu.use_def_edges);
  check Alcotest.bool "uses counted" true (smu.Smu.use_def_edges >= 6)

let test_smu_plain_addition_merges () =
  (* cipher + const stays in the cipher's unit (definition-aware merge);
     parallel plain additions with the same consumer remain grouped *)
  let b = B.create ~slot_count:8 () in
  let x = B.input b "x" in
  let y = B.add b x (B.const_scalar b 1.) in
  let z = B.add b x (B.const_scalar b 2.) in
  B.output b (B.mul b y z);
  let smu = Smu.generate (B.finish b) in
  check Alcotest.int "parallel plain adds grouped" smu.Smu.unit_of.(2) smu.Smu.unit_of.(4)

let test_smu_naive_edges () =
  let bench = fig2 () in
  let smu = Smu.generate bench in
  let naive = Smu.naive_edges bench in
  check Alcotest.int "one edge per use" smu.Smu.use_def_edges (Array.length naive);
  Array.iter (fun (e : Smu.edge) -> check Alcotest.int "single site" 1 (List.length e.Smu.sites)) naive

let prop_smu_partition =
  (* units partition exactly the ciphertext values; edges reference units *)
  QCheck.Test.make ~name:"SMU units partition cipher values" ~count:30
    QCheck.(int_bound 1000)
    (fun seed ->
      (* little random DAG *)
      let g = Hecate_support.Prng.create ~seed in
      let b = B.create ~slot_count:16 () in
      let x = B.input b "x" and y = B.input b "y" in
      let pool = ref [ x; y ] in
      let pick () = List.nth !pool (Hecate_support.Prng.int_below g (List.length !pool)) in
      for _ = 1 to 8 + Hecate_support.Prng.int_below g 8 do
        let v = pick () and w = pick () in
        let node =
          match Hecate_support.Prng.int_below g 4 with
          | 0 -> B.add b v w
          | 1 -> B.mul b v w
          | 2 -> B.rotate b v (1 + Hecate_support.Prng.int_below g 7)
          | _ -> B.mul b v (B.const_scalar b 0.5)
        in
        pool := node :: !pool
      done;
      B.output b (List.hd !pool);
      let p = B.finish b in
      let smu = Smu.generate p in
      (* each unit id appears once; members are disjoint and cover exactly
         the values with unit_of >= 0 *)
      let seen = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun (u, members) ->
          List.iter
            (fun v ->
              if Hashtbl.mem seen v then ok := false;
              Hashtbl.replace seen v ();
              if smu.Smu.unit_of.(v) <> u then ok := false)
            members)
        smu.Smu.units;
      Array.iteri
        (fun v u ->
          match u with
          | -1 -> if Hashtbl.mem seen v then ok := false
          | _ -> if not (Hashtbl.mem seen v) then ok := false)
        smu.Smu.unit_of;
      Array.iter
        (fun (e : Smu.edge) ->
          if e.Smu.src = e.Smu.dst then ok := false;
          if e.Smu.sites = [] then ok := false)
        smu.Smu.edges;
      !ok)

let test_smu_deterministic () =
  let p = (Hecate_apps.Apps.sobel ~size:8 ()).Hecate_apps.Apps.prog in
  let a = Smu.generate p and b = Smu.generate p in
  check Alcotest.(array int) "same unit assignment" a.Smu.unit_of b.Smu.unit_of

(* ------------------------------------------------------------------ *)
(* Parameter selection                                                  *)
(* ------------------------------------------------------------------ *)

let test_paramselect_basic () =
  let types = [| cipher 20. 0; cipher 40. 1; cipher 20. 2 |] in
  let p = Paramselect.select ~sf_bits:28 ~types ~slot_count:64 () in
  (* scale 40 + margin 6 at level 1: 46 <= 30 + (L-1)*28 -> L >= 1.57 -> 2 *)
  check Alcotest.int "levels" 2 p.Paramselect.chain_levels;
  check (Alcotest.float 1e-9) "log q" (30. +. 56.) p.Paramselect.log_q;
  check Alcotest.int "primes at level 1" 2 (Paramselect.num_primes_at p ~level:1)

let test_paramselect_scales_with_depth () =
  let shallow = Paramselect.select ~sf_bits:28 ~types:[| cipher 20. 1 |] ~slot_count:8 () in
  let deep = Paramselect.select ~sf_bits:28 ~types:[| cipher 20. 9 |] ~slot_count:8 () in
  check Alcotest.bool "deeper needs more" true
    (deep.Paramselect.chain_levels > shallow.Paramselect.chain_levels);
  check Alcotest.bool "secure degree grows" true
    (deep.Paramselect.secure_n >= shallow.Paramselect.secure_n)

let test_paramselect_c1_headroom () =
  (* every scale must fit under the remaining modulus at its level *)
  let types = [| cipher 75. 0; cipher 47. 1 |] in
  let p = Paramselect.select ~sf_bits:28 ~types ~slot_count:8 () in
  Array.iter
    (fun t ->
      let s = Option.get (Types.scaled_of t) in
      let remaining =
        float_of_int p.Paramselect.q0_bits
        +. float_of_int ((p.Paramselect.chain_levels - s.Types.level) * p.Paramselect.sf_bits)
      in
      check Alcotest.bool "headroom" true (s.Types.scale +. 6. <= remaining +. 1e-9))
    types

(* ------------------------------------------------------------------ *)
(* Estimator                                                            *)
(* ------------------------------------------------------------------ *)

let model = Costmodel.analytic ()

let test_cost_monotone_in_primes () =
  List.iter
    (fun cls ->
      let c1 = model.Costmodel.cost cls ~num_primes:2 ~n:4096 in
      let c2 = model.Costmodel.cost cls ~num_primes:8 ~n:4096 in
      check Alcotest.bool (Costmodel.class_name cls ^ " grows with primes") true (c2 > c1))
    Costmodel.classes

let test_cost_monotone_in_degree () =
  List.iter
    (fun cls ->
      let c1 = model.Costmodel.cost cls ~num_primes:4 ~n:1024 in
      let c2 = model.Costmodel.cost cls ~num_primes:4 ~n:8192 in
      check Alcotest.bool (Costmodel.class_name cls ^ " grows with degree") true (c2 > c1))
    Costmodel.classes

let test_cost_mul_quadratic () =
  (* key switching makes cipher mul superlinear in the prime count *)
  let c l = model.Costmodel.cost Costmodel.Cipher_mul ~num_primes:l ~n:4096 in
  check Alcotest.bool "superlinear" true (c 16 /. c 8 > 2.5)

let test_cost_level_speedup_factor () =
  (* the paper's observation: level-1 mul is about 2.25x faster than level-0
     at an 11-prime chain; our structural model shows a clear speedup too *)
  let l0 = model.Costmodel.cost Costmodel.Cipher_mul ~num_primes:11 ~n:16384 in
  let l1 = model.Costmodel.cost Costmodel.Cipher_mul ~num_primes:10 ~n:16384 in
  check Alcotest.bool "higher level cheaper" true (l0 /. l1 > 1.1)

let test_estimate_fig2_pars_cheaper () =
  let run gen =
    let p = gen cfg ?hook:None (fig2 ()) in
    let types = Typing.check_exn cfg p in
    let params = Paramselect.select ~sf_bits:28 ~types ~slot_count:8 () in
    Estimator.estimate ~model ~params ~n:8192 p
  in
  check Alcotest.bool "pars estimated faster" true
    (run (fun cfg ?hook p -> Codegen.pars cfg ?hook p) < run Codegen.waterline)

let test_estimate_requires_types () =
  let p = fig2 () in
  (* unmanaged program: mul operands are untyped (Free) *)
  let params = Paramselect.select ~sf_bits:28 ~types:[| cipher 20. 0 |] ~slot_count:8 () in
  match Estimator.estimate ~model ~params ~n:1024 p with
  | _ -> Alcotest.fail "expected failure on untyped ops"
  | exception Invalid_argument _ -> ()

let test_table_model_overrides () =
  let table = Hashtbl.create 4 in
  Hashtbl.replace table (Costmodel.Cipher_mul, 3, 1024) 42.;
  let m = Costmodel.of_table table ~fallback:model in
  check (Alcotest.float 0.) "measured value used" 42.
    (m.Costmodel.cost Costmodel.Cipher_mul ~num_primes:3 ~n:1024);
  (* unmeasured prime count: rescaled from the nearest measurement *)
  let extrapolated = m.Costmodel.cost Costmodel.Cipher_mul ~num_primes:4 ~n:1024 in
  let shape3 = model.Costmodel.cost Costmodel.Cipher_mul ~num_primes:3 ~n:1024 in
  let shape4 = model.Costmodel.cost Costmodel.Cipher_mul ~num_primes:4 ~n:1024 in
  check (Alcotest.float 1e-6) "shape-scaled" (42. *. shape4 /. shape3) extrapolated

let test_table_model_tie_deterministic () =
  (* measurements at 2 and 6 primes are equidistant from a query at 4; the
     smaller prime count must win regardless of table insertion order *)
  let expected =
    let shape2 = model.Costmodel.cost Costmodel.Cipher_mul ~num_primes:2 ~n:1024 in
    let shape4 = model.Costmodel.cost Costmodel.Cipher_mul ~num_primes:4 ~n:1024 in
    7. *. shape4 /. shape2
  in
  List.iter
    (fun entries ->
      let table = Hashtbl.create 4 in
      List.iter (fun (l, t) -> Hashtbl.replace table (Costmodel.Cipher_mul, l, 1024) t) entries;
      let m = Costmodel.of_table table ~fallback:model in
      check (Alcotest.float 1e-9) "smaller prime count wins ties" expected
        (m.Costmodel.cost Costmodel.Cipher_mul ~num_primes:4 ~n:1024))
    [ [ (2, 7.); (6, 13.) ]; [ (6, 13.); (2, 7.) ] ]

let test_estimate_additive () =
  (* the program estimate is exactly the sum of per-op charges *)
  let p = Codegen.pars cfg (fig2 ()) in
  let types = Typing.check_exn cfg p in
  ignore types;
  let params = Paramselect.select ~sf_bits:28 ~types ~slot_count:8 () in
  let total = Estimator.estimate ~model ~params ~n:2048 p in
  let by_hand = ref 0. in
  Prog.iter
    (fun (o : Prog.op) ->
      let arg_tys = Array.map (fun a -> (Prog.op p a).Prog.ty) o.Prog.args in
      by_hand := !by_hand +. Estimator.per_op_seconds ~model ~params ~n:2048 o arg_tys)
    p;
  check (Alcotest.float 1e-12) "additive" !by_hand total

let test_estimate_free_ops_cost_nothing () =
  let b = B.create ~slot_count:8 () in
  let x = B.input b "x" in
  B.output b (B.mul b x (B.const_scalar b 0.5));
  let p = Codegen.pars cfg (B.finish b) in
  let types = Typing.check_exn cfg p in
  ignore types;
  let params = Paramselect.select ~sf_bits:28 ~types ~slot_count:8 () in
  Prog.iter
    (fun (o : Prog.op) ->
      let arg_tys = Array.map (fun a -> (Prog.op p a).Prog.ty) o.Prog.args in
      let c = Estimator.per_op_seconds ~model ~params ~n:2048 o arg_tys in
      match o.Prog.kind with
      | Prog.Input _ | Prog.Const _ -> check (Alcotest.float 0.) "free" 0. c
      | _ -> check Alcotest.bool "charged" true (c > 0.))
    p

(* ------------------------------------------------------------------ *)
(* Fig. 2: the three hand-written plans, ordered by the estimator       *)
(* ------------------------------------------------------------------ *)

(* plan (a): EVA's — rescale z^2 twice (sf=28), modswitch z, mul at level 2 *)
let fig2_plan_a =
  {|
func a(%0: cipher "x", %1: cipher "y") slots=8 {
  %2 = mul %0, %0
  %3 = mul %1, %1
  %4 = add %2, %3
  %5 = mul %4, %4
  %6 = rescale %5
  %7 = rescale %6
  %8 = modswitch %4
  %9 = modswitch %8
  %10 = mul %7, %9
  return %10
}
|}

(* plan (b): downscale z after squaring it — one mul at level 0 *)
let fig2_plan_b =
  {|
func b(%0: cipher "x", %1: cipher "y") slots=8 {
  %2 = mul %0, %0
  %3 = mul %1, %1
  %4 = add %2, %3
  %5 = mul %4, %4
  %6 = rescale %5
  %7 = rescale %6
  %8 = downscale %4, 20
  %9 = modswitch %8
  %10 = mul %7, %9
  return %10
}
|}

(* plan (c): HECATE's — downscale z first, both muls at level 1 *)
let fig2_plan_c =
  {|
func c(%0: cipher "x", %1: cipher "y") slots=8 {
  %2 = mul %0, %0
  %3 = mul %1, %1
  %4 = add %2, %3
  %5 = downscale %4, 20
  %6 = mul %5, %5
  %7 = mul %6, %5
  return %7
}
|}

let estimate_plan text =
  let p = Hecate_ir.Parser.parse text in
  let types = Typing.check_exn cfg p in
  let params = Paramselect.select ~sf_bits:28 ~types ~slot_count:8 () in
  Estimator.estimate ~model ~params ~n:16384 p

let test_fig2_three_plans () =
  let a = estimate_plan fig2_plan_a in
  let b = estimate_plan fig2_plan_b in
  let c = estimate_plan fig2_plan_c in
  (* the paper's argument: (c) beats (b) beats (a) because more of the
     expensive multiplications execute at higher levels *)
  check Alcotest.bool (Printf.sprintf "c (%.4f) <= b (%.4f)" c b) true (c <= b +. 1e-12);
  check Alcotest.bool (Printf.sprintf "b (%.4f) <= a (%.4f)" b a) true (b <= a +. 1e-12);
  (* and HECATE's search discovers plan (c) automatically *)
  let auto = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:20. (fig2 ()) in
  let auto_est = Driver.estimate_at auto ~n:16384 in
  check Alcotest.bool "search matches the hand plan" true
    (Float.abs (auto_est -. c) /. auto_est < 0.05)

(* ------------------------------------------------------------------ *)
(* Explorer and driver                                                  *)
(* ------------------------------------------------------------------ *)

let test_hill_climb_improves () =
  let prog = fig2 () in
  let smu = Smu.generate prog in
  let codegen ~hook = fst (Driver.finalize ~cfg (Codegen.waterline cfg ~hook prog)) in
  let evaluate p =
    let types = Typing.check_exn cfg p in
    let params = Paramselect.select ~sf_bits:28 ~types ~slot_count:8 () in
    Estimator.estimate ~model ~params ~n:8192 p
  in
  let r = Explore.hill_climb ~codegen ~evaluate ~edges:smu.Smu.edges () in
  let base = evaluate (codegen ~hook:Codegen.no_hook) in
  check Alcotest.bool "no regression" true (r.Explore.best_cost <= base);
  check Alcotest.bool "explored the neighbourhood" true
    (r.Explore.plans_explored >= Array.length smu.Smu.edges)

let test_hill_climb_evaluate_exception_skipped () =
  (* an Invalid_argument from [evaluate] (e.g. Paramselect.num_primes_at on a
     bad level) marks that one candidate infeasible instead of aborting the
     whole search *)
  let prog = fig2 () in
  let smu = Smu.generate prog in
  let codegen ~hook = fst (Driver.finalize ~cfg (Codegen.waterline cfg ~hook prog)) in
  let calls = Atomic.make 0 in
  let evaluate p =
    if Atomic.fetch_and_add calls 1 = 0 then float_of_int (Prog.num_ops p)
    else invalid_arg "Paramselect.num_primes_at: bad level"
  in
  let r = Explore.hill_climb ~codegen ~evaluate ~edges:smu.Smu.edges () in
  check Alcotest.bool "search survived" true (r.Explore.best_cost < infinity);
  check Alcotest.int "no candidate accepted" 0 r.Explore.epochs;
  check (Alcotest.array Alcotest.int) "base plan kept"
    (Array.make (Array.length smu.Smu.edges) 0)
    r.Explore.best_plan

let test_hill_climb_base_evaluate_fatal () =
  (* the all-zero base plan must compile and evaluate: a crash there is
     still a hard error, not a silent infinity *)
  let prog = fig2 () in
  let smu = Smu.generate prog in
  let codegen ~hook = fst (Driver.finalize ~cfg (Codegen.waterline cfg ~hook prog)) in
  let evaluate _ = invalid_arg "boom" in
  match Explore.hill_climb ~codegen ~evaluate ~edges:smu.Smu.edges () with
  | _ -> Alcotest.fail "expected Invalid_argument on a failing base plan"
  | exception Invalid_argument _ -> ()

(* A synthetic 3-edge search space whose optimum is only reachable by backing
   off an overshoot: the climb must take 000 -> 100 -> 110 -> 111 -> 011,
   where the last step is a -1 move on edge 0. The fake codegen encodes the
   plan into the program's op count (k = d0 + 4*d1 + 16*d2 rotations). *)
let backoff_edges =
  Array.init 3 (fun i -> { Smu.src = i; Smu.dst = i + 1; Smu.sites = [ (i, 0) ] })

let backoff_codegen ~hook =
  let d i = hook ~op_id:i ~operand:0 in
  let k = d 0 + (4 * d 1) + (16 * d 2) in
  let b = B.create ~slot_count:8 () in
  let x = B.input b "x" in
  let rec chain v j = if j = 0 then v else chain (B.rotate b v 1) (j - 1) in
  B.output b (chain x (k + 1));
  B.finish b

let backoff_evaluate p =
  match Prog.num_ops p - 2 with
  | 0 -> 10. (* 000 *)
  | 1 -> 9. (* 100 *)
  | 4 | 16 -> 9.5 (* 010, 001 *)
  | 5 -> 8. (* 110 *)
  | 21 -> 7. (* 111 *)
  | 20 -> 6. (* 011: only reachable from 111 by decrementing edge 0 *)
  | _ -> 100.

let test_hill_climb_backoff () =
  let r =
    Explore.hill_climb ~codegen:backoff_codegen ~evaluate:backoff_evaluate
      ~edges:backoff_edges ()
  in
  check (Alcotest.array Alcotest.int) "optimum needs a -1 move" [| 0; 1; 1 |]
    r.Explore.best_plan;
  check (Alcotest.float 0.) "cost of the backed-off plan" 6. r.Explore.best_cost;
  check Alcotest.int "four improving epochs" 4 r.Explore.epochs;
  check Alcotest.bool "revisited plans served from the cache" true (r.Explore.cache_hits > 0)

let test_hill_climb_parallel_matches_serial () =
  (* bit-identical best_plan/best_cost/plans_explored for every pool size *)
  let apps =
    [
      ("fig2", fig2 (), 100);
      ( "sobel8",
        Hecate_ir.Pass_manager.default_pipeline
          (Hecate_apps.Apps.sobel ~size:8 ()).Hecate_apps.Apps.prog,
        4 );
    ]
  in
  List.iter
    (fun (name, prog, max_epochs) ->
      let smu = Smu.generate prog in
      let codegen ~hook = fst (Driver.finalize ~cfg (Codegen.waterline cfg ~hook prog)) in
      let evaluate p =
        let types = Typing.check_exn cfg p in
        let params = Paramselect.select ~sf_bits:28 ~types ~slot_count:p.Prog.slot_count () in
        Estimator.estimate ~model ~params ~n:8192 p
      in
      let explore pool_size =
        Explore.hill_climb ~codegen ~evaluate ~edges:smu.Smu.edges ~max_epochs ~pool_size ()
      in
      let serial = explore 1 in
      List.iter
        (fun pool_size ->
          let par = explore pool_size in
          let lbl s = Printf.sprintf "%s pool=%d: %s" name pool_size s in
          check (Alcotest.array Alcotest.int) (lbl "best_plan") serial.Explore.best_plan
            par.Explore.best_plan;
          check (Alcotest.float 0.) (lbl "best_cost") serial.Explore.best_cost
            par.Explore.best_cost;
          check Alcotest.int (lbl "plans_explored") serial.Explore.plans_explored
            par.Explore.plans_explored;
          check Alcotest.int (lbl "cache_hits") serial.Explore.cache_hits
            par.Explore.cache_hits;
          check Alcotest.int (lbl "epochs") serial.Explore.epochs par.Explore.epochs)
        [ 2; 4 ])
    apps

let test_driver_pool_size_invariant () =
  let prog = fig2 () in
  let reference = Driver.compile ~pool_size:1 Driver.Hecate ~sf_bits:28 ~waterline_bits:20. prog in
  let other = Driver.compile ~pool_size:3 Driver.Hecate ~sf_bits:28 ~waterline_bits:20. prog in
  check (Alcotest.float 0.) "same estimate" reference.Driver.estimated_seconds
    other.Driver.estimated_seconds;
  let stats c = Option.get c.Driver.exploration in
  check Alcotest.int "same plans" (stats reference).Driver.plans_explored
    (stats other).Driver.plans_explored;
  check Alcotest.bool "trace covers every epoch" true
    (List.length (stats reference).Driver.trace > (stats reference).Driver.epochs - 1)

let test_hill_climb_epoch_cap () =
  let prog = fig2 () in
  let smu = Smu.generate prog in
  let codegen ~hook = fst (Driver.finalize ~cfg (Codegen.waterline cfg ~hook prog)) in
  let evaluate p = float_of_int (Prog.num_ops p) in
  let r = Explore.hill_climb ~codegen ~evaluate ~edges:smu.Smu.edges ~max_epochs:1 () in
  check Alcotest.bool "capped" true (r.Explore.epochs <= 1)

let test_driver_all_schemes () =
  let prog = fig2 () in
  let results =
    List.map (fun s -> (s, Driver.compile s ~sf_bits:28 ~waterline_bits:20. prog)) Driver.all_schemes
  in
  let est s = (List.assoc s results).Driver.estimated_seconds in
  check Alcotest.bool "hecate <= eva" true (est Driver.Hecate <= est Driver.Eva +. 1e-12);
  check Alcotest.bool "hecate <= pars" true (est Driver.Hecate <= est Driver.Pars +. 1e-12);
  check Alcotest.bool "smse <= eva" true (est Driver.Smse <= est Driver.Eva +. 1e-12);
  List.iter
    (fun (s, (c : Driver.compiled)) ->
      match (s, c.Driver.exploration) with
      | (Driver.Smse | Driver.Hecate), None -> Alcotest.fail "exploration stats missing"
      | (Driver.Eva | Driver.Pars), Some _ -> Alcotest.fail "unexpected exploration stats"
      | _ -> ())
    results

let test_driver_naive_explores_more () =
  let prog = fig2 () in
  let smart = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:20. prog in
  let naive =
    Driver.compile Driver.Hecate ~naive_exploration:true ~sf_bits:28 ~waterline_bits:20. prog
  in
  let plans c =
    match c.Driver.exploration with Some e -> e.Driver.plans_explored | None -> 0
  in
  check Alcotest.bool "naive explores at least as many plans" true (plans naive >= plans smart);
  check Alcotest.bool "naive no better" true
    (naive.Driver.estimated_seconds >= smart.Driver.estimated_seconds -. 1e-12)

let test_driver_output_types_valid () =
  List.iter
    (fun scheme ->
      let c = Driver.compile scheme ~sf_bits:28 ~waterline_bits:20. (fig2 ()) in
      let tys = Typing.check_exn cfg c.Driver.prog in
      Array.iter
        (fun t ->
          match Types.scaled_of t with
          | Some s ->
              check Alcotest.bool "C2 everywhere" true (s.Types.scale >= 20. -. 0.01);
              check Alcotest.bool "level within chain" true
                (s.Types.level <= c.Driver.params.Paramselect.chain_levels)
          | None -> ())
        tys)
    Driver.all_schemes

(* ------------------------------------------------------------------ *)
(* Pass-managed driver: behavior preservation and instrumentation      *)
(* ------------------------------------------------------------------ *)

module Pass_manager = Hecate_ir.Pass_manager
module Printer = Hecate_ir.Printer
module Parser = Hecate_ir.Parser

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_compile_matches_golden () =
  (* test/golden/*.ir is the printed output of the pre-pass-manager driver
     (hardcoded pass order, no fixpoint, no constant folding in finalize):
     the rewiring through Pass_manager must reproduce it byte for byte for
     every scheme. The files are regenerated only on deliberate changes to
     the cost model (exploration-based schemes pick plans by estimated
     cost, so repricing an op class can change the chosen plan). *)
  let progs =
    [
      ("fig2", Parser.parse_file "../examples/fig2.hec");
      ("dot_product", Parser.parse_file "../examples/dot_product.hec");
      ("sobel", (Hecate_apps.Apps.sobel ()).Hecate_apps.Apps.prog);
    ]
  in
  List.iter
    (fun (name, prog) ->
      List.iter
        (fun scheme ->
          let c = Driver.compile scheme ~sf_bits:28 ~waterline_bits:20. prog in
          let file =
            Printf.sprintf "golden/%s_%s.ir" name
              (String.lowercase_ascii (Driver.scheme_name scheme))
          in
          check Alcotest.string file (read_file file) (Printer.to_string c.Driver.prog))
        Driver.all_schemes)
    progs

let test_compile_reports_pass_timings () =
  let c = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:20. (fig2 ()) in
  let find name =
    List.find_opt (fun (t : Pass_manager.timing) -> t.Pass_manager.pass = name)
      c.Driver.pass_timings
  in
  List.iter
    (fun name ->
      match find name with
      | Some t ->
          check Alcotest.bool (name ^ " ran") true (t.Pass_manager.runs > 0);
          check Alcotest.bool (name ^ " non-negative time") true (t.Pass_manager.seconds >= 0.)
      | None -> Alcotest.failf "pass %s missing from the timing table" name)
    [ "cse"; "dce"; "constant-fold"; "fold-rotations"; "early-modswitch" ];
  (* the explorer finalizes every candidate plan through the same stats:
     cse must have been charged far more often than the one cleanup run *)
  let cse = Option.get (find "cse") in
  check Alcotest.bool "cse charged across candidate plans" true (cse.Pass_manager.runs > 3)

let test_compile_custom_cleanup () =
  let passes = Pass_manager.parse_exn "dce" in
  let c = Driver.compile ~passes Driver.Eva ~sf_bits:28 ~waterline_bits:20. (fig2 ()) in
  check Alcotest.bool "compiles and validates" true (Result.is_ok (Prog.validate c.Driver.prog));
  let timed = List.map (fun (t : Pass_manager.timing) -> t.Pass_manager.pass) c.Driver.pass_timings in
  check Alcotest.bool "no fold-rotations charged" true (not (List.mem "fold-rotations" timed))

let test_compile_dump_instrumentation () =
  let dumped = ref [] in
  let instr =
    Pass_manager.instrumentation ~dump_after:Pass_manager.Dump_all
      ~dump:(fun ~pass p -> dumped := (pass, Prog.num_ops p) :: !dumped)
      ()
  in
  ignore (Driver.compile ~instr Driver.Eva ~sf_bits:28 ~waterline_bits:20. (fig2 ()));
  check Alcotest.bool "every pass execution dumped" true (List.length !dumped >= 5);
  check Alcotest.bool "cse dumped" true (List.mem_assoc "cse" !dumped)

let () =
  Alcotest.run "hecate_core"
    [
      ( "codegen",
        [
          Alcotest.test_case "EVA on fig2" `Quick test_eva_fig2;
          Alcotest.test_case "PARS matches Fig. 2c" `Quick test_pars_fig2;
          Alcotest.test_case "PARS chain no longer" `Quick test_pars_lower_peak_than_eva;
          Alcotest.test_case "rejects managed input" `Quick test_codegen_rejects_managed_input;
          Alcotest.test_case "free operands encoded" `Quick test_codegen_free_operands;
          Alcotest.test_case "deep chains" `Quick test_codegen_deep_chain;
          Alcotest.test_case "rotation passthrough" `Quick test_codegen_rotation_passthrough;
          Alcotest.test_case "plan hook" `Quick test_codegen_hook_forces_ops;
          Alcotest.test_case "downscale analysis trigger" `Quick test_pars_downscale_analysis_trigger;
        ] );
      ( "smu",
        [
          Alcotest.test_case "Fig. 6 example" `Quick test_smu_fig6;
          Alcotest.test_case "rotation stays in unit" `Quick test_smu_rotation_stays;
          Alcotest.test_case "edges <= uses" `Quick test_smu_edges_fewer_than_uses;
          Alcotest.test_case "plain addition merges" `Quick test_smu_plain_addition_merges;
          Alcotest.test_case "naive edges" `Quick test_smu_naive_edges;
          Alcotest.test_case "deterministic" `Quick test_smu_deterministic;
          qtest prop_smu_partition;
        ] );
      ( "paramselect",
        [
          Alcotest.test_case "basic" `Quick test_paramselect_basic;
          Alcotest.test_case "depth scaling" `Quick test_paramselect_scales_with_depth;
          Alcotest.test_case "C1 headroom" `Quick test_paramselect_c1_headroom;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "monotone in primes" `Quick test_cost_monotone_in_primes;
          Alcotest.test_case "monotone in degree" `Quick test_cost_monotone_in_degree;
          Alcotest.test_case "mul superlinear" `Quick test_cost_mul_quadratic;
          Alcotest.test_case "level speedup" `Quick test_cost_level_speedup_factor;
          Alcotest.test_case "fig2: pars cheaper" `Quick test_estimate_fig2_pars_cheaper;
          Alcotest.test_case "requires types" `Quick test_estimate_requires_types;
          Alcotest.test_case "table model" `Quick test_table_model_overrides;
          Alcotest.test_case "table model tie-break" `Quick test_table_model_tie_deterministic;
          Alcotest.test_case "estimate additive" `Quick test_estimate_additive;
          Alcotest.test_case "free ops uncharged" `Quick test_estimate_free_ops_cost_nothing;
        ] );
      ( "fig2-plans",
        [ Alcotest.test_case "estimator orders the three plans" `Quick test_fig2_three_plans ] );
      ( "explore",
        [
          Alcotest.test_case "hill climb improves" `Quick test_hill_climb_improves;
          Alcotest.test_case "epoch cap" `Quick test_hill_climb_epoch_cap;
          Alcotest.test_case "evaluate crash skips candidate" `Quick
            test_hill_climb_evaluate_exception_skipped;
          Alcotest.test_case "base plan crash is fatal" `Quick
            test_hill_climb_base_evaluate_fatal;
          Alcotest.test_case "-1 move reaches the optimum" `Quick test_hill_climb_backoff;
          Alcotest.test_case "parallel matches serial" `Quick
            test_hill_climb_parallel_matches_serial;
        ] );
      ( "driver",
        [
          Alcotest.test_case "all schemes" `Quick test_driver_all_schemes;
          Alcotest.test_case "naive explores more" `Quick test_driver_naive_explores_more;
          Alcotest.test_case "output types valid" `Quick test_driver_output_types_valid;
          Alcotest.test_case "pool size invariant" `Quick test_driver_pool_size_invariant;
        ] );
      ( "pass-manager",
        [
          Alcotest.test_case "behavior preserved vs pre-refactor goldens" `Quick
            test_compile_matches_golden;
          Alcotest.test_case "per-pass timings reported" `Quick test_compile_reports_pass_timings;
          Alcotest.test_case "custom cleanup pipeline" `Quick test_compile_custom_cleanup;
          Alcotest.test_case "dump instrumentation" `Quick test_compile_dump_instrumentation;
        ] );
    ]
