(* Tests for the RNS layer: modulus chains, double-CRT polynomials, exact
   rescaling, base extension/reduction, CRT reconstruction, and the bignum
   that backs it. *)

module Bigint = Hecate_support.Bigint
module Prng = Hecate_support.Prng
module M = Hecate_support.Modarith
module Chain = Hecate_rns.Chain
module Poly = Hecate_rns.Poly

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let chain = lazy (Chain.create ~n:64 ~q0_bits:30 ~sf_bits:28 ~levels:3 ~special_bits:31)

let random_poly ?(with_special = false) ?(level_count = 4) seed =
  let c = Lazy.force chain in
  let g = Prng.create ~seed in
  let coeffs = Array.init (Chain.degree c) (fun _ -> Prng.int_below g 1000000 - 500000) in
  (Poly.of_centered_coeffs c ~level_count ~with_special coeffs, coeffs)

(* ------------------------------------------------------------------ *)
(* Bigint                                                              *)
(* ------------------------------------------------------------------ *)

let test_bigint_basics () =
  check Alcotest.string "zero" "0" (Bigint.to_string Bigint.zero);
  check Alcotest.string "of_int" "123456789" (Bigint.to_string (Bigint.of_int 123456789));
  check Alcotest.string "add_int carry" "1000000000"
    (Bigint.to_string (Bigint.add_int (Bigint.of_int 999999999) 1));
  check Alcotest.string "mul_int" "999999998000000001"
    (Bigint.to_string (Bigint.mul_int (Bigint.of_int 999999999) 999999999));
  check (Alcotest.float 1.) "to_float" 1e9 (Bigint.to_float (Bigint.of_int 1_000_000_000))

let test_bigint_big_products () =
  (* 2^200 via repeated doubling, checked against to_float *)
  let x = ref Bigint.one in
  for _ = 1 to 200 do
    x := Bigint.mul_int !x 2
  done;
  check Alcotest.bool "2^200" true (Float.abs ((Bigint.to_float !x /. 0x1p200) -. 1.) < 1e-12)

let test_bigint_sub_compare () =
  let a = Bigint.mul_int (Bigint.of_int 123456789) 1000000007 in
  let b = Bigint.of_int 42 in
  check Alcotest.int "a > b" 1 (Bigint.compare a b);
  check Alcotest.string "a - a = 0" "0" (Bigint.to_string (Bigint.sub a a));
  let d = Bigint.sub a b in
  check Alcotest.string "sub then add roundtrip" (Bigint.to_string a)
    (Bigint.to_string (Bigint.add d b));
  Alcotest.check_raises "negative rejected" (Invalid_argument "Bigint.sub: would be negative")
    (fun () -> ignore (Bigint.sub b a))

let prop_bigint_horner_matches_int =
  QCheck.Test.make ~name:"bigint arithmetic matches int below 2^62" ~count:300
    QCheck.(pair (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF))
    (fun (a, b) ->
      let big = Bigint.add_int (Bigint.mul_int (Bigint.of_int a) b) a in
      Bigint.to_string big = string_of_int ((a * b) + a))

(* ------------------------------------------------------------------ *)
(* Chain                                                               *)
(* ------------------------------------------------------------------ *)

let test_chain_structure () =
  let c = Lazy.force chain in
  check Alcotest.int "length" 4 (Chain.length c);
  check Alcotest.int "degree" 64 (Chain.degree c);
  let ps = Array.to_list (Chain.primes c) in
  check Alcotest.int "distinct" 4 (List.length (List.sort_uniq compare ps));
  check Alcotest.bool "special distinct" true (not (List.mem (Chain.special_prime c) ps));
  List.iteri
    (fun i p ->
      check Alcotest.int (Printf.sprintf "prime %d ntt-friendly" i) 1 (p mod (2 * 64)))
    ps

let test_chain_gadget_weights () =
  (* w_i = 1 mod q_i and 0 mod q_j (j <> i): the CRT interpolation basis *)
  let c = Lazy.force chain in
  for i = 0 to Chain.length c - 1 do
    for j = 0 to Chain.length c - 1 do
      let w = Chain.gadget_weight c ~digit:i ~modulus_index:j in
      if i = j then check Alcotest.int "w_i = 1 mod q_i" 1 w
      else check Alcotest.int "w_i = 0 mod q_j" 0 w
    done;
    (* mod P it is some well-defined residue *)
    let wp = Chain.gadget_weight c ~digit:i ~modulus_index:(Chain.length c) in
    check Alcotest.bool "w_i mod P in range" true (wp >= 0 && wp < Chain.special_prime c)
  done

let test_chain_inverses () =
  let c = Lazy.force chain in
  for l = 1 to Chain.length c - 1 do
    for i = 0 to l - 1 do
      let q = Chain.prime c i in
      check Alcotest.int "rescale inverse" 1
        (M.mul ~q (Chain.rescale_inv c ~dropped:l i) (Chain.prime c l mod q))
    done
  done;
  for i = 0 to Chain.length c - 1 do
    let q = Chain.prime c i in
    check Alcotest.int "special inverse" 1
      (M.mul ~q (Chain.special_inv c i) (Chain.special_prime c mod q))
  done

let test_chain_log2 () =
  let c = Lazy.force chain in
  let expect =
    Array.fold_left (fun acc p -> acc +. (log (float_of_int p) /. log 2.)) 0. (Chain.primes c)
  in
  check (Alcotest.float 1e-9) "log2 q" expect (Chain.log2_q c ~upto:4);
  check Alcotest.bool "about 30+3*28" true (Float.abs (expect -. 114.) < 1.)

(* ------------------------------------------------------------------ *)
(* Poly                                                                *)
(* ------------------------------------------------------------------ *)

let test_poly_roundtrip_crt () =
  let p, coeffs = random_poly 1 in
  let back = Poly.crt_reconstruct_centered p in
  Array.iteri
    (fun i c -> check (Alcotest.float 0.) (Printf.sprintf "coeff %d" i) (float_of_int c) back.(i))
    coeffs

let test_poly_ring_laws () =
  let c = Lazy.force chain in
  let p1, _ = random_poly 2 and p2, _ = random_poly 3 and p3, _ = random_poly 4 in
  let ( +! ) = Poly.add and ( *! ) a b = Poly.mul (Poly.to_eval a) (Poly.to_eval b) in
  ignore c;
  check Alcotest.bool "add commutes" true (Poly.equal (p1 +! p2) (p2 +! p1));
  check Alcotest.bool "mul commutes" true (Poly.equal (p1 *! p2) (p2 *! p1));
  let lhs = Poly.to_coeff (p1 *! (Poly.to_coeff (p2 +! p3))) in
  let rhs = Poly.to_coeff (Poly.add (p1 *! p2) (p1 *! p3)) in
  check Alcotest.bool "distributes" true (Poly.equal lhs rhs);
  check Alcotest.bool "neg cancels" true
    (Poly.equal (p1 +! Poly.neg p1) (Poly.sub p1 p1))

let test_poly_ntt_roundtrip () =
  let p, _ = random_poly 5 in
  check Alcotest.bool "to_eval/to_coeff roundtrip" true
    (Poly.equal p (Poly.to_coeff (Poly.to_eval p)))

let test_poly_rescale_exact () =
  (* rescaling a polynomial that is an exact multiple of the dropped prime
     divides it exactly *)
  let c = Lazy.force chain in
  let q_last = Chain.prime c 3 in
  let g = Prng.create ~seed:6 in
  let base = Array.init (Chain.degree c) (fun _ -> Prng.int_below g 20000 - 10000) in
  let scaled = Array.map (fun x -> x * q_last) base in
  let p = Poly.of_centered_coeffs c ~level_count:4 ~with_special:false scaled in
  let r = Poly.rescale_last p in
  let back = Poly.crt_reconstruct_centered r in
  Array.iteri
    (fun i b -> check (Alcotest.float 0.) "exact division" (float_of_int b) back.(i))
    base

let test_poly_rescale_rounds () =
  (* otherwise the error after division is at most 1/2 + epsilon *)
  let c = Lazy.force chain in
  let q_last = float_of_int (Chain.prime c 3) in
  let p, coeffs = random_poly 7 in
  let r = Poly.rescale_last p in
  let back = Poly.crt_reconstruct_centered r in
  Array.iteri
    (fun i orig ->
      let err = Float.abs (back.(i) -. (float_of_int orig /. q_last)) in
      check Alcotest.bool (Printf.sprintf "rounded division %d" i) true (err <= 0.5 +. 1e-9))
    coeffs

let test_poly_drop_last () =
  let p, coeffs = random_poly 8 in
  let d = Poly.drop_last p in
  check Alcotest.int "one fewer component" 3 (Poly.component_count d);
  (* values preserved mod the smaller modulus: small coefficients intact *)
  let back = Poly.crt_reconstruct_centered d in
  Array.iteri
    (fun i c -> check (Alcotest.float 0.) "value intact" (float_of_int c) back.(i))
    coeffs

let test_poly_mod_down_special () =
  (* mod-down divides by P with centered rounding *)
  let c = Lazy.force chain in
  let sp = float_of_int (Chain.special_prime c) in
  let p, coeffs = random_poly ~with_special:true 9 in
  let r = Poly.mod_down_special p in
  check Alcotest.bool "no special left" true (not r.Poly.with_special);
  let back = Poly.crt_reconstruct_centered r in
  Array.iteri
    (fun i orig ->
      let err = Float.abs (back.(i) -. (float_of_int orig /. sp)) in
      check Alcotest.bool "divided by P" true (err <= 0.5 +. 1e-9))
    coeffs

let test_poly_automorphism_involution () =
  (* X -> X^g then X -> X^{g^{-1} mod 2n} is the identity *)
  let c = Lazy.force chain in
  let two_n = 2 * Chain.degree c in
  let g = 5 in
  (* find inverse of 5 mod 2n *)
  let rec inv k = if k * g mod two_n = 1 then k else inv (k + 2) in
  let g_inv = inv 1 in
  let p, _ = random_poly 10 in
  let q = Poly.automorphism (Poly.automorphism p ~galois:g) ~galois:g_inv in
  check Alcotest.bool "involution" true (Poly.equal p q)

let test_poly_automorphism_homomorphic () =
  (* sigma(a * b) = sigma(a) * sigma(b) *)
  let a, _ = random_poly 11 and b, _ = random_poly 12 in
  let mul x y = Poly.to_coeff (Poly.mul (Poly.to_eval x) (Poly.to_eval y)) in
  let lhs = Poly.automorphism (mul a b) ~galois:5 in
  let rhs = mul (Poly.automorphism a ~galois:5) (Poly.automorphism b ~galois:5) in
  check Alcotest.bool "ring homomorphism" true (Poly.equal lhs rhs)

let test_poly_automorphism_odd_precondition () =
  (* the Galois group of a power-of-two cyclotomic is (Z/2nZ)^*: only odd
     elements are units, so both automorphism entry points must reject
     even ones instead of building a non-permutation *)
  let p, _ = random_poly 30 in
  (match Poly.automorphism p ~galois:4 with
  | _ -> Alcotest.fail "expected rejection of even galois element (coeff)"
  | exception Invalid_argument _ -> ());
  match Poly.automorphism_eval (Poly.to_eval p) ~galois:6 with
  | _ -> Alcotest.fail "expected rejection of even galois element (eval)"
  | exception Invalid_argument _ -> ()

let test_poly_automorphism_composition () =
  (* sigma_a (sigma_b p) = sigma_{a*b mod 2n} p *)
  let c = Lazy.force chain in
  let two_n = 2 * Chain.degree c in
  let p, _ = random_poly 31 in
  List.iter
    (fun (a, b) ->
      let lhs = Poly.automorphism (Poly.automorphism p ~galois:b) ~galois:a in
      let rhs = Poly.automorphism p ~galois:(a * b mod two_n) in
      check Alcotest.bool (Printf.sprintf "sigma_%d o sigma_%d" a b) true (Poly.equal lhs rhs))
    [ (3, 5); (5, 25); (7, 9); (two_n - 1, 3) ]

let test_poly_automorphism_eval_inverse_roundtrip () =
  (* the Eval-domain slot permutation agrees with the Coeff-domain
     definition through the NTT, and composing with the inverse Galois
     element is the identity *)
  let c = Lazy.force chain in
  let two_n = 2 * Chain.degree c in
  let g = 5 in
  let rec inv k = if k * g mod two_n = 1 then k else inv (k + 2) in
  let g_inv = inv 1 in
  let p, _ = random_poly 32 in
  let pe = Poly.to_eval p in
  let rot = Poly.automorphism_eval pe ~galois:g in
  check Alcotest.bool "matches coeff-domain automorphism" true
    (Poly.equal rot (Poly.to_eval (Poly.automorphism p ~galois:g)));
  check Alcotest.bool "inverse round-trip" true
    (Poly.equal pe (Poly.automorphism_eval rot ~galois:g_inv))

let test_poly_lift_digit () =
  (* gadget identity: sum_i lift(digit_i) * w_i = p (mod every chain prime) *)
  let c = Lazy.force chain in
  let p, _ = random_poly 13 in
  let acc = ref (Poly.zero c ~level_count:4 ~with_special:false Poly.Coeff) in
  for i = 0 to 3 do
    let dig = Poly.lift_digit p ~digit:i ~with_special:false in
    let weights = Array.init 4 (fun j -> Chain.gadget_weight c ~digit:i ~modulus_index:j) in
    acc := Poly.add !acc (Poly.mul_component_scalars dig weights)
  done;
  check Alcotest.bool "gadget reconstruction" true (Poly.equal !acc p)

let test_poly_restrict_levels () =
  let p, _ = random_poly ~with_special:true 14 in
  let r = Poly.restrict_levels p ~level_count:2 in
  check Alcotest.int "components" 3 (Poly.component_count r);
  check Alcotest.bool "keeps special" true r.Poly.with_special;
  check Alcotest.bool "prefix preserved" true
    (Hecate_support.Buf.equal p.Poly.data.(0) r.Poly.data.(0))

let test_poly_incompatible_rejected () =
  let p4, _ = random_poly 15 in
  let p2, _ = random_poly ~level_count:2 16 in
  (match Poly.add p4 p2 with
  | _ -> Alcotest.fail "expected incompatibility error"
  | exception Invalid_argument _ -> ());
  match Poly.mul p4 p4 with
  | _ -> Alcotest.fail "expected domain error (Coeff operands)"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Fast kernels: Barrett contexts, into-ops, in-place NTT, parallelism *)
(* ------------------------------------------------------------------ *)

let test_chain_barrett_ctx () =
  (* every precomputed Barrett context agrees with hardware-division
     multiplication on boundary and random residues *)
  let c = Lazy.force chain in
  let g = Prng.create ~seed:21 in
  let check_ctx name ctx q =
    check Alcotest.int (name ^ " modulus") q (M.modulus ctx);
    let residues = [ 0; 1; q - 2; q - 1 ] in
    List.iter
      (fun a ->
        List.iter
          (fun b -> check Alcotest.int name (M.mul ~q a b) (M.mulmod ctx a b))
          residues)
      residues;
    for _ = 1 to 200 do
      let a = Prng.int_below g q and b = Prng.int_below g q in
      check Alcotest.int name (M.mul ~q a b) (M.mulmod ctx a b)
    done
  in
  for i = 0 to Chain.length c - 1 do
    check_ctx (Printf.sprintf "chain prime %d" i) (Chain.ctx c i) (Chain.prime c i)
  done;
  check_ctx "special prime" (Chain.special_ctx c) (Chain.special_prime c)

let test_poly_into_ops_match_pure () =
  let a, _ = random_poly 22 and b, _ = random_poly 23 in
  let dst = Poly.copy a in
  Poly.add_into ~dst a b;
  check Alcotest.bool "add_into" true (Poly.equal dst (Poly.add a b));
  Poly.sub_into ~dst a b;
  check Alcotest.bool "sub_into" true (Poly.equal dst (Poly.sub a b));
  (* destination aliasing an operand is allowed *)
  let alias = Poly.copy a in
  Poly.add_into ~dst:alias alias b;
  check Alcotest.bool "add_into aliased" true (Poly.equal alias (Poly.add a b));
  let ea = Poly.to_eval a and eb = Poly.to_eval b in
  let dst = Poly.copy ea in
  Poly.mul_into ~dst ea eb;
  check Alcotest.bool "mul_into" true (Poly.equal dst (Poly.mul ea eb));
  let acc0, _ = random_poly 24 in
  let acc = Poly.to_eval acc0 in
  let expect = Poly.add acc (Poly.mul ea eb) in
  Poly.mul_add_into ~acc ea eb;
  check Alcotest.bool "mul_add_into" true (Poly.equal acc expect)

let test_poly_mul_add_into_deeper_basis () =
  (* the multiplier may carry the full basis while acc and a are reduced:
     equivalent to restricting the multiplier first *)
  let check_case ~with_special seed =
    let a2, _ = random_poly ~with_special ~level_count:2 seed in
    let b4, _ = random_poly ~with_special (seed + 1) in
    let acc0, _ = random_poly ~with_special ~level_count:2 (seed + 2) in
    let ea = Poly.to_eval a2 and eb = Poly.to_eval b4 in
    let acc = Poly.to_eval acc0 in
    let expect = Poly.add acc (Poly.mul ea (Poly.restrict_levels eb ~level_count:2)) in
    Poly.mul_add_into ~acc ea eb;
    check Alcotest.bool
      (Printf.sprintf "deeper-basis multiplier (special=%b)" with_special)
      true (Poly.equal acc expect)
  in
  check_case ~with_special:false 25;
  check_case ~with_special:true 35

let test_poly_inplace_transforms () =
  let p, _ = random_poly ~with_special:true 28 in
  let e = Poly.to_eval p in
  let ei = Poly.to_eval_inplace (Poly.copy p) in
  check Alcotest.bool "to_eval_inplace = to_eval" true (Poly.equal e ei);
  let back = Poly.to_coeff_inplace (Poly.copy e) in
  check Alcotest.bool "to_coeff_inplace = to_coeff" true (Poly.equal p back)

let test_poly_lift_digit_into () =
  let c = Lazy.force chain in
  let p, _ = random_poly 29 in
  List.iter
    (fun with_special ->
      for digit = 0 to 3 do
        let expect = Poly.lift_digit p ~digit ~with_special in
        let dst = Poly.zero c ~level_count:4 ~with_special Poly.Coeff in
        Poly.lift_digit_into ~dst p ~digit;
        check Alcotest.bool
          (Printf.sprintf "lift_digit_into digit %d special=%b" digit with_special)
          true (Poly.equal dst expect)
      done)
    [ false; true ]

(* Parallel kernels only engage at degree >= 4096; use a full-size chain so
   the jobs > 1 paths are actually exercised. *)
let big_chain = lazy (Chain.create ~n:4096 ~q0_bits:30 ~sf_bits:28 ~levels:2 ~special_bits:31)

let random_big_poly seed =
  let c = Lazy.force big_chain in
  let g = Prng.create ~seed in
  let coeffs = Array.init (Chain.degree c) (fun _ -> Prng.int_below g 1000000 - 500000) in
  Poly.of_centered_coeffs c ~level_count:3 ~with_special:true coeffs

let test_poly_parallel_matches_serial () =
  let module K = Hecate_support.Pool.Kernel in
  let a = random_big_poly 30 and b = random_big_poly 31 in
  let saved = K.jobs () in
  Fun.protect
    ~finally:(fun () -> K.set_jobs saved)
    (fun () ->
      K.set_jobs 1;
      let ea = Poly.to_eval a and eb = Poly.to_eval b in
      let serial_sum = Poly.add a b in
      let serial_mul = Poly.mul ea eb in
      let serial_back = Poly.to_coeff serial_mul in
      List.iter
        (fun jobs ->
          K.set_jobs jobs;
          let name s = Printf.sprintf "%s, jobs=%d" s jobs in
          check Alcotest.bool (name "add") true (Poly.equal serial_sum (Poly.add a b));
          let ea' = Poly.to_eval a and eb' = Poly.to_eval b in
          check Alcotest.bool (name "to_eval") true (Poly.equal ea ea');
          check Alcotest.bool (name "mul") true (Poly.equal serial_mul (Poly.mul ea' eb'));
          check Alcotest.bool (name "to_coeff") true
            (Poly.equal serial_back (Poly.to_coeff serial_mul)))
        [ 1; 2; 4 ])

let prop_poly_add_matches_int =
  QCheck.Test.make ~name:"poly add = coefficient add" ~count:50
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let p1, c1 = random_poly (100 + s1) and p2, c2 = random_poly (200 + s2) in
      let sum = Poly.crt_reconstruct_centered (Poly.add p1 p2) in
      Array.for_all2 (fun s (a, b) -> s = float_of_int (a + b)) sum
        (Array.map2 (fun a b -> (a, b)) c1 c2))

let () =
  Alcotest.run "hecate_rns"
    [
      ( "bigint",
        [
          Alcotest.test_case "basics" `Quick test_bigint_basics;
          Alcotest.test_case "big products" `Quick test_bigint_big_products;
          Alcotest.test_case "sub/compare" `Quick test_bigint_sub_compare;
          qtest prop_bigint_horner_matches_int;
        ] );
      ( "chain",
        [
          Alcotest.test_case "structure" `Quick test_chain_structure;
          Alcotest.test_case "gadget weights" `Quick test_chain_gadget_weights;
          Alcotest.test_case "inverses" `Quick test_chain_inverses;
          Alcotest.test_case "log2" `Quick test_chain_log2;
        ] );
      ( "poly",
        [
          Alcotest.test_case "crt roundtrip" `Quick test_poly_roundtrip_crt;
          Alcotest.test_case "ring laws" `Quick test_poly_ring_laws;
          Alcotest.test_case "ntt roundtrip" `Quick test_poly_ntt_roundtrip;
          Alcotest.test_case "rescale exact" `Quick test_poly_rescale_exact;
          Alcotest.test_case "rescale rounds" `Quick test_poly_rescale_rounds;
          Alcotest.test_case "drop last" `Quick test_poly_drop_last;
          Alcotest.test_case "mod down special" `Quick test_poly_mod_down_special;
          Alcotest.test_case "automorphism involution" `Quick test_poly_automorphism_involution;
          Alcotest.test_case "automorphism homomorphic" `Quick test_poly_automorphism_homomorphic;
          Alcotest.test_case "automorphism odd precondition" `Quick
            test_poly_automorphism_odd_precondition;
          Alcotest.test_case "automorphism composition" `Quick test_poly_automorphism_composition;
          Alcotest.test_case "automorphism eval inverse" `Quick
            test_poly_automorphism_eval_inverse_roundtrip;
          Alcotest.test_case "gadget decomposition" `Quick test_poly_lift_digit;
          Alcotest.test_case "restrict levels" `Quick test_poly_restrict_levels;
          Alcotest.test_case "incompatible rejected" `Quick test_poly_incompatible_rejected;
          qtest prop_poly_add_matches_int;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "chain barrett ctx" `Quick test_chain_barrett_ctx;
          Alcotest.test_case "into ops match pure" `Quick test_poly_into_ops_match_pure;
          Alcotest.test_case "mul_add_into deeper basis" `Quick
            test_poly_mul_add_into_deeper_basis;
          Alcotest.test_case "inplace transforms" `Quick test_poly_inplace_transforms;
          Alcotest.test_case "lift_digit_into" `Quick test_poly_lift_digit_into;
          Alcotest.test_case "parallel matches serial" `Quick test_poly_parallel_matches_serial;
        ] );
    ]
