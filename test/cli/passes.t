Pass-manager CLI: pipeline specs, per-pass timing, IR dumps.

The cleanup pipeline can be replaced by a textual spec (here: skip CSE and
rotation folding entirely; the program still compiles):

  $ ../../bin/hecatec.exe compile fig2.hec -s eva --passes 'dce' | head -1
  func fig2(%0: cipher "x", %1: cipher "y") slots=64 {

Unknown pass names are rejected naming the registry contents:

  $ ../../bin/hecatec.exe compile fig2.hec --passes 'cse,frobnicate'
  hecatec: option '--passes': invalid pipeline spec "cse,frobnicate": unknown
           pass "frobnicate" (known passes: constant-fold, cse, dce,
           early-modswitch, fold-plain-muls, fold-rotations)
  Usage: hecatec compile [OPTION]… FILE
  Try 'hecatec compile --help' or 'hecatec --help' for more information.
  [124]

Malformed specs are rejected too:

  $ ../../bin/hecatec.exe compile fig2.hec --passes 'fixpoint(cse'
  hecatec: option '--passes': invalid pipeline spec "fixpoint(cse": unclosed
           fixpoint(...)
  Usage: hecatec compile [OPTION]… FILE
  Try 'hecatec compile --help' or 'hecatec --help' for more information.
  [124]

--timing prints the per-pass table (name, runs, wall seconds, op delta);
wall times are nondeterministic, so normalize them and sort the rows:

  $ ../../bin/hecatec.exe compile fig2.hec -s eva --timing \
  >   | grep '^;   ' | sed -E 's/[0-9]+\.[0-9]+s/<time>/' | sort
  ;   constant-fold          2   <time>      +0
  ;   cse                    3   <time>      +0
  ;   dce                    2   <time>      +0
  ;   early-modswitch        1   <time>      +0
  ;   fold-rotations         1   <time>      +0
  ;   pass                runs     seconds     ops

--print-ir-after all dumps the IR after every pass execution, in order —
four cleanup passes, then one converged finalization sweep:

  $ ../../bin/hecatec.exe compile fig2.hec -s eva --print-ir-after all | grep '; IR after'
  ; IR after cse (7 ops)
  ; IR after constant-fold (7 ops)
  ; IR after fold-rotations (7 ops)
  ; IR after dce (7 ops)
  ; IR after cse (12 ops)
  ; IR after early-modswitch (12 ops)
  ; IR after cse (12 ops)
  ; IR after constant-fold (12 ops)
  ; IR after dce (12 ops)

--print-ir-after with a single pass name dumps only that pass, and the dump
carries the actual IR text:

  $ ../../bin/hecatec.exe compile fig2.hec -s eva --print-ir-after early-modswitch \
  >   | sed -n '/; IR after/,/^}/p' | head -5
  ; IR after early-modswitch (12 ops)
  func fig2(%0: cipher "x", %1: cipher "y") slots=64 {
    %2 = mul %0, %0 : cipher<40,0>
    %3 = mul %1, %1 : cipher<40,0>
    %4 = add %2, %3 : cipher<40,0>

Unknown dump targets are rejected:

  $ ../../bin/hecatec.exe compile fig2.hec --print-ir-after frobnicate
  hecatec: option '--print-ir-after': unknown pass "frobnicate" (expected "all"
           or one of: constant-fold, cse, dce, early-modswitch,
           fold-plain-muls, fold-rotations)
  Usage: hecatec compile [OPTION]… FILE
  Try 'hecatec compile --help' or 'hecatec --help' for more information.
  [124]
