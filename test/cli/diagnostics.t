Compilation failures are rendered as structured diagnostics on stderr —
never a backtrace — and exit 1.

An already-managed program is rejected with the offending op and a hint:

  $ cat > managed.hec <<'EOF'
  > func bad(%0: cipher "x") slots=8 {
  >   %1 = mul %0, %0
  >   %2 = rescale %1
  >   return %2
  > }
  > EOF
  $ ../../bin/hecatec.exe compile managed.hec -s eva
  error[already-managed]: Driver.compile: input program already contains scale-management operations
    --> op %2 (rescale)
    hint: the driver inserts all scale management itself; strip the existing rescale/modswitch/encode operations first
  [1]

The same failure as one machine-readable JSON object, with the stable
error class in `code`:

  $ ../../bin/hecatec.exe compile managed.hec --error-format json
  {"code":"already-managed","message":"Driver.compile: input program already contains scale-management operations","op":2,"op_kind":"rescale","operand_types":[],"provenance":null,"hint":"the driver inserts all scale management itself; strip the existing rescale/modswitch/encode operations first"}
  [1]

Parse errors carry the source line:

  $ printf 'func f(%%0: cipher "x") slots=8 {\n  %%1 = mul %%0\n  return %%1\n}\n' > broken.hec
  $ ../../bin/hecatec.exe compile broken.hec
  error[parse-error]: line 3: expected ','
    hint: see docs/ARCHITECTURE.md for the textual program grammar
  [1]
  $ ../../bin/hecatec.exe info broken.hec --error-format json
  {"code":"parse-error","message":"line 3: expected ','","op":null,"op_kind":null,"operand_types":[],"provenance":null,"hint":"see docs/ARCHITECTURE.md for the textual program grammar"}
  [1]

A well-formed program still compiles cleanly after all that:

  $ ../../bin/hecatec.exe compile fig2.hec -s eva | head -3
  func fig2(%0: cipher "x", %1: cipher "y") slots=64 {
    %2 = mul %0, %0 : cipher<40,0>
    %3 = mul %1, %1 : cipher<40,0>
