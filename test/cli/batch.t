SIMD batching frontend: scalar loop programs compile to packed vector IR.

The auto layout packs the matrix diagonally (Halevi-Shoup), so the 8x8
matvec needs far fewer rotations than one-slot lowering; the fingerprint
is the plan-cache identity of the lowered program:

  $ ../../bin/hecatec.exe batch matvec.bhec | head -4
  ; batch matvec8: 64 slots, layout auto [w:diag, x:row, y:row]
  ; lowered: 80 ops, 21 rotations (scalar sites batched into vector steps)
  ; cleaned: 21 rotations after cse,constant-fold,fixpoint(fold-plain-muls,fold-rotations,dce)
  ; fingerprint: d8f681b515474bc5faae904160edf506

The naive baseline pays one rotation per scalar load alignment:

  $ ../../bin/hecatec.exe batch matvec.bhec --layout naive | head -2
  ; batch matvec8: 64 slots, layout naive [w:row, x:row, y:row]
  ; lowered: 327 ops, 70 rotations (scalar sites batched into vector steps)

Forcing a fixed layout is supported (row keeps every array row-major):

  $ ../../bin/hecatec.exe batch matvec.bhec --layout row | head -1
  ; batch matvec8: 64 slots, layout row [w:row, x:row, y:row]

Unknown layouts are rejected:

  $ ../../bin/hecatec.exe batch matvec.bhec --layout zigzag
  hecatec: option '--layout': layout must be one of: auto, row, col, diag,
           naive
  Usage: hecatec batch [OPTION]… FILE
  Try 'hecatec batch --help' or 'hecatec --help' for more information.
  [124]

Scalar programs with loop-carried dependencies cannot be batched; the
diagnostic points at the offending surface statement:

  $ cat > scan.bhec <<'PROG'
  > batch scan {
  >   input x[4];
  >   output y[4];
  >   for i = 1 to 3 {
  >     y[i] = y[i - 1] + x[i];
  >   }
  > }
  > PROG
  $ ../../bin/hecatec.exe batch scan.bhec
  error[precondition]: loop-carried dependence on y[1]: the scalar iteration order interleaves this read with writes from another statement
    from: store y
    hint: batching executes each store/accumulate statement as one vector step; restructure the loops so no element is read by a statement that runs before its writer (docs/BATCHING.md)
  [1]

Syntax errors carry the source line:

  $ cat > bad.bhec <<'PROG'
  > batch bad {
  >   input x[4;
  > }
  > PROG
  $ ../../bin/hecatec.exe batch bad.bhec
  error[parse-error]: line 2: expected ',' or ']', got ';'
    hint: see docs/BATCHING.md for the scalar surface grammar
  [1]

The pass registry is printable from the top level (the batching pipeline
relies on fold-plain-muls to fuse mask and coefficient chains):

  $ ../../bin/hecatec.exe --list-passes
  constant-fold      evaluate homomorphic operations over all-constant operands
  cse                common-subexpression elimination by value numbering
  dce                remove operations that never reach an output
  early-modswitch    absorb a single-use modswitch into its producing operation (EVA)
  fold-plain-muls    fuse nested multiplications by constants (batching mask/coefficient chains)
  fold-rotations     combine single-use rotation chains; drop full-circle rotations
