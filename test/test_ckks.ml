(* Correctness tests for the from-scratch RNS-CKKS implementation:
   encode/decode, encrypt/decrypt, homomorphic ops vs plaintext reference. *)

module Params = Hecate_ckks.Params
module Encoder = Hecate_ckks.Encoder
module Eval = Hecate_ckks.Eval
module Poly = Hecate_rns.Poly
module Chain = Hecate_rns.Chain
module Prng = Hecate_support.Prng
module Stats = Hecate_support.Stats

let check = Alcotest.check

let params =
  lazy (Params.create ~n:1024 ~q0_bits:30 ~sf_bits:28 ~levels:3 ())

(* One shared evaluator: key generation is the expensive part. *)
let ctx = lazy (Eval.create ~seed:7 (Lazy.force params) ~rotations:[ 1; 3; -2; 511 ])

let random_vector ?(amplitude = 1.) seed k =
  let g = Prng.create ~seed in
  Array.init k (fun _ -> amplitude *. ((2. *. Prng.float01 g) -. 1.))

let scale20 = 0x1p24

(* ------------------------------------------------------------------ *)
(* Parameters                                                          *)
(* ------------------------------------------------------------------ *)

let test_params_basic () =
  let p = Lazy.force params in
  check Alcotest.int "slots" 512 (Params.slots p);
  check Alcotest.int "chain length" 4 (Chain.length p.Params.chain);
  check Alcotest.bool "log2 q in range" true
    (Params.log2_q p > 100. && Params.log2_q p < 128.)

let test_params_security_table () =
  check Alcotest.int "bound at 4096" 109 (Params.max_log_qp ~n:4096);
  check Alcotest.int "bound at 32768" 881 (Params.max_log_qp ~n:32768);
  check Alcotest.int "min degree small" 1024 (Params.min_degree_for ~log_qp:20.);
  check Alcotest.int "min degree mid" 8192 (Params.min_degree_for ~log_qp:150.);
  Alcotest.check_raises "too large"
    (Invalid_argument "Params.min_degree_for: modulus too large for supported degrees")
    (fun () -> ignore (Params.min_degree_for ~log_qp:2000.))

let test_params_security_check () =
  (* 30+28*3 = 114 bits of Q > 27-bit bound at n=1024, so the secure
     constructor must reject it. *)
  match Params.create ~check_security:true ~n:1024 ~q0_bits:30 ~sf_bits:28 ~levels:3 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Encoder                                                             *)
(* ------------------------------------------------------------------ *)

let test_encode_roundtrip () =
  let p = Lazy.force params in
  let enc = Encoder.create ~n:p.Params.n in
  let v = random_vector 11 (Encoder.slots enc) in
  let poly = Encoder.encode enc p.Params.chain ~level_count:4 ~scale:scale20 v in
  let coeffs = Poly.crt_reconstruct_centered poly in
  let v' = Encoder.decode enc ~scale:scale20 coeffs in
  check Alcotest.bool "roundtrip error small" true (Stats.max_abs_diff v v' < 1e-4)

let test_encode_constant_exact () =
  let p = Lazy.force params in
  let enc = Encoder.create ~n:p.Params.n in
  let poly = Encoder.encode_constant enc p.Params.chain ~level_count:2 ~scale:scale20 1. in
  let coeffs = Poly.crt_reconstruct_centered poly in
  check (Alcotest.float 0.) "constant term" scale20 coeffs.(0);
  for i = 1 to p.Params.n - 1 do
    check (Alcotest.float 0.) "zero elsewhere" 0. coeffs.(i)
  done;
  let v = Encoder.decode enc ~scale:scale20 coeffs in
  check Alcotest.bool "decodes to all ones" true
    (Stats.max_abs_diff v (Array.make (Encoder.slots enc) 1.) < 1e-9)

let test_encode_partial_vector () =
  let p = Lazy.force params in
  let enc = Encoder.create ~n:p.Params.n in
  let poly = Encoder.encode enc p.Params.chain ~level_count:4 ~scale:scale20 [| 0.5; -0.25 |] in
  let v' = Encoder.decode enc ~scale:scale20 (Poly.crt_reconstruct_centered poly) in
  check Alcotest.bool "slot 0" true (Float.abs (v'.(0) -. 0.5) < 1e-4);
  check Alcotest.bool "slot 1" true (Float.abs (v'.(1) +. 0.25) < 1e-4);
  check Alcotest.bool "padding decodes to 0" true (Float.abs v'.(100) < 1e-4)

let test_encode_overflow_rejected () =
  let p = Lazy.force params in
  let enc = Encoder.create ~n:p.Params.n in
  match Encoder.encode_constant enc p.Params.chain ~level_count:1 ~scale:0x1p62 1. with
  | _ -> Alcotest.fail "expected overflow rejection"
  | exception Invalid_argument _ -> ()

let test_galois_elements () =
  let enc = Encoder.create ~n:1024 in
  check Alcotest.int "rotation 0" 1 (Encoder.galois_element enc ~rotation:0);
  check Alcotest.int "rotation 1" 5 (Encoder.galois_element enc ~rotation:1);
  check Alcotest.int "rotation 2" 25 (Encoder.galois_element enc ~rotation:2);
  (* full cycle returns to identity *)
  check Alcotest.int "rotation slots" 1 (Encoder.galois_element enc ~rotation:512)

(* ------------------------------------------------------------------ *)
(* Encrypt / decrypt                                                   *)
(* ------------------------------------------------------------------ *)

let test_encrypt_roundtrip () =
  let t = Lazy.force ctx in
  let v = random_vector 13 512 in
  let ct = Eval.encrypt_vector t ~scale:scale20 v in
  let v' = Eval.decrypt t ct in
  check Alcotest.bool "noise below 1e-3" true (Stats.max_abs_diff v v' < 3e-3)

let test_encrypt_is_randomized () =
  let t = Lazy.force ctx in
  let v = random_vector 17 512 in
  let ct1 = Eval.encrypt_vector t ~scale:scale20 v in
  let ct2 = Eval.encrypt_vector t ~scale:scale20 v in
  check Alcotest.bool "fresh randomness" false (Poly.equal ct1.Eval.c0 ct2.Eval.c0)

(* ------------------------------------------------------------------ *)
(* Homomorphic operations                                              *)
(* ------------------------------------------------------------------ *)

let test_hom_add_sub_neg () =
  let t = Lazy.force ctx in
  let a = random_vector 19 512 and b = random_vector 23 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let cb = Eval.encrypt_vector t ~scale:scale20 b in
  let sum = Eval.decrypt t (Eval.add t ca cb) in
  let diff = Eval.decrypt t (Eval.sub t ca cb) in
  let neg = Eval.decrypt t (Eval.negate t ca) in
  for i = 0 to 511 do
    check Alcotest.bool "add" true (Float.abs (sum.(i) -. (a.(i) +. b.(i))) < 5e-3);
    check Alcotest.bool "sub" true (Float.abs (diff.(i) -. (a.(i) -. b.(i))) < 5e-3);
    check Alcotest.bool "neg" true (Float.abs (neg.(i) +. a.(i)) < 5e-3)
  done

let test_hom_add_plain () =
  let t = Lazy.force ctx in
  let a = random_vector 29 512 and b = random_vector 31 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let pb = Eval.encode t ~level:0 ~scale:scale20 b in
  let sum = Eval.decrypt t (Eval.add_plain t ca pb) in
  let diff = Eval.decrypt t (Eval.sub_plain t ca pb) in
  for i = 0 to 511 do
    check Alcotest.bool "add_plain" true (Float.abs (sum.(i) -. (a.(i) +. b.(i))) < 5e-3);
    check Alcotest.bool "sub_plain" true (Float.abs (diff.(i) -. (a.(i) -. b.(i))) < 5e-3)
  done

let test_hom_mul_plain_rescale () =
  let t = Lazy.force ctx in
  let a = random_vector 37 512 and b = random_vector 41 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let pb = Eval.encode t ~level:0 ~scale:scale20 b in
  let prod = Eval.mul_plain t ca pb in
  check Alcotest.bool "scale grew" true (Eval.scale prod > 0x1p47);
  let rescaled = Eval.rescale t prod in
  check Alcotest.int "level grew" 1 (Eval.level rescaled);
  let v = Eval.decrypt t rescaled in
  for i = 0 to 511 do
    check Alcotest.bool "mul_plain" true (Float.abs (v.(i) -. (a.(i) *. b.(i))) < 1e-2)
  done

let test_hom_mul_cipher () =
  let t = Lazy.force ctx in
  let a = random_vector 43 512 and b = random_vector 47 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let cb = Eval.encrypt_vector t ~scale:scale20 b in
  let prod = Eval.rescale t (Eval.mul t ca cb) in
  let v = Eval.decrypt t prod in
  for i = 0 to 511 do
    check Alcotest.bool "cipher mul" true (Float.abs (v.(i) -. (a.(i) *. b.(i))) < 1e-2)
  done

let test_hom_mul_depth2 () =
  (* ((a*b) rescaled) * (modswitched c): exercises level matching. *)
  let t = Lazy.force ctx in
  let a = random_vector 53 512 and b = random_vector 59 512 and c = random_vector 61 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let cb = Eval.encrypt_vector t ~scale:scale20 b in
  let cc = Eval.encrypt_vector t ~scale:scale20 c in
  let ab = Eval.rescale t (Eval.mul t ca cb) in
  let cc1 = Eval.mod_switch t cc in
  let abc = Eval.rescale t (Eval.mul t ab cc1) in
  check Alcotest.int "level 2" 2 (Eval.level abc);
  let v = Eval.decrypt t abc in
  for i = 0 to 511 do
    check Alcotest.bool "depth-2 product" true
      (Float.abs (v.(i) -. (a.(i) *. b.(i) *. c.(i))) < 1e-1)
  done

let test_hom_square () =
  let t = Lazy.force ctx in
  let a = random_vector 67 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let sq = Eval.decrypt t (Eval.rescale t (Eval.mul t ca ca)) in
  for i = 0 to 511 do
    check Alcotest.bool "square" true (Float.abs (sq.(i) -. (a.(i) *. a.(i))) < 1e-2)
  done

let test_mod_switch_preserves_value () =
  let t = Lazy.force ctx in
  let a = random_vector 71 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let switched = Eval.mod_switch t ca in
  check Alcotest.int "level + 1" 1 (Eval.level switched);
  check (Alcotest.float 0.) "scale unchanged" scale20 (Eval.scale switched);
  let v = Eval.decrypt t switched in
  check Alcotest.bool "value preserved" true (Stats.max_abs_diff v a < 5e-3)

let test_upscale () =
  let t = Lazy.force ctx in
  let a = random_vector 73 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let up = Eval.upscale t ca ~factor:0x1p8 in
  check (Alcotest.float 16.) "scale multiplied" 0x1p32 (Eval.scale up);
  check Alcotest.int "level unchanged" 0 (Eval.level up);
  let v = Eval.decrypt t up in
  check Alcotest.bool "value preserved" true (Stats.max_abs_diff v a < 5e-3)

let test_downscale_composition () =
  (* downscale = upscale to (S_f * S_w / current) then rescale: the scale
     comes back to the waterline and the level rises by one. *)
  let t = Lazy.force ctx in
  let p = Lazy.force params in
  let a = random_vector 79 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let q_dropped = Chain.prime p.Params.chain (Chain.length p.Params.chain - 1) in
  let factor = float_of_int q_dropped in
  let down = Eval.rescale t (Eval.upscale t ca ~factor) in
  check Alcotest.int "level + 1" 1 (Eval.level down);
  check Alcotest.bool "scale back at waterline" true
    (Float.abs ((Eval.scale down /. scale20) -. 1.) < 1e-9);
  let v = Eval.decrypt t down in
  check Alcotest.bool "value preserved" true (Stats.max_abs_diff v a < 5e-3)

let test_rotate () =
  let t = Lazy.force ctx in
  let a = random_vector 83 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let check_rotation r =
    let v = Eval.decrypt t (Eval.rotate t ca r) in
    let expected = Array.init 512 (fun i -> a.((i + r + 512) mod 512)) in
    check Alcotest.bool (Printf.sprintf "rotate %d" r) true (Stats.max_abs_diff v expected < 5e-3)
  in
  check_rotation 1;
  check_rotation 3;
  check_rotation 510 (* = -2 left = 2 right *)

let test_rotate_zero_is_identity () =
  let t = Lazy.force ctx in
  let a = random_vector 89 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let v = Eval.decrypt t (Eval.rotate t ca 0) in
  check Alcotest.bool "identity" true (Stats.max_abs_diff v a < 5e-3)

let test_rotate_missing_key () =
  let t = Lazy.force ctx in
  let a = random_vector 97 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  match Eval.rotate t ca 7 with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ()

(* ------------------------------------------------------------------ *)
(* Constraint enforcement                                               *)
(* ------------------------------------------------------------------ *)

let test_level_mismatch_rejected () =
  let t = Lazy.force ctx in
  let a = random_vector 101 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let cb = Eval.mod_switch t ca in
  match Eval.add t ca cb with
  | _ -> Alcotest.fail "expected Level_mismatch"
  | exception Eval.Level_mismatch _ -> ()

let test_scale_mismatch_rejected () =
  let t = Lazy.force ctx in
  let a = random_vector 103 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let cb = Eval.encrypt_vector t ~scale:0x1p25 a in
  match Eval.add t ca cb with
  | _ -> Alcotest.fail "expected Scale_mismatch"
  | exception Eval.Scale_mismatch _ -> ()

let test_rescale_exhaustion () =
  let t = Lazy.force ctx in
  let a = random_vector 107 512 in
  let ct = ref (Eval.encrypt_vector t ~scale:scale20 a) in
  for _ = 1 to Eval.max_level t do
    ct := Eval.mod_switch t !ct
  done;
  match Eval.rescale t !ct with
  | _ -> Alcotest.fail "expected Level_mismatch"
  | exception Eval.Level_mismatch _ -> ()

(* Latency shape: operations get cheaper as the level rises. This is the
   physical fact HECATE exploits; assert it holds in our substrate. *)
let test_mul_faster_at_higher_level () =
  let t = Lazy.force ctx in
  let a = random_vector 109 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let time_mul ct =
    let reps = 5 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Eval.mul t ct ct)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let t_level0 = time_mul ca in
  let high = Eval.mod_switch t (Eval.mod_switch t ca) in
  let t_level2 = time_mul high in
  check Alcotest.bool "level-2 mul faster than level-0" true (t_level2 < t_level0)

(* ------------------------------------------------------------------ *)
(* Fast kernels vs naive reference                                     *)
(* ------------------------------------------------------------------ *)

(* The Barrett/Shoup/in-place evaluator paths must be bit-identical to the
   naive division-based reference on the same inputs. All the ops below are
   deterministic given the ciphertext, so we can run each twice under the
   kernel toggle and compare residue-for-residue. *)
let test_eval_fast_matches_naive () =
  let module K = Hecate_support.Kernels in
  let t = Lazy.force ctx in
  let a = random_vector 131 512 and b = random_vector 137 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let cb = Eval.encrypt_vector t ~scale:scale20 b in
  let ct_equal name x y =
    check Alcotest.bool (name ^ " c0") true (Poly.equal x.Eval.c0 y.Eval.c0);
    check Alcotest.bool (name ^ " c1") true (Poly.equal x.Eval.c1 y.Eval.c1)
  in
  let pair f = (K.with_naive true f, K.with_naive false f) in
  let mul_naive, mul_fast = pair (fun () -> Eval.mul t ca cb) in
  ct_equal "mul" mul_naive mul_fast;
  let rs_naive, rs_fast = pair (fun () -> Eval.rescale t mul_naive) in
  ct_equal "rescale" rs_naive rs_fast;
  let rot_naive, rot_fast = pair (fun () -> Eval.rotate t ca 3) in
  ct_equal "rotate" rot_naive rot_fast;
  (* raw keyswitch on the c1 component against the relinearization key *)
  let p = Lazy.force params in
  let lc = Chain.length p.Params.chain in
  let d = Poly.to_coeff ca.Eval.c1 in
  let relin = (Eval.keys t).Hecate_ckks.Keys.relin in
  let ks_naive, ks_fast = pair (fun () -> Eval.keyswitch t ~lc d relin) in
  check Alcotest.bool "keyswitch fst" true (Poly.equal (fst ks_naive) (fst ks_fast));
  check Alcotest.bool "keyswitch snd" true (Poly.equal (snd ks_naive) (snd ks_fast));
  (* and the decrypted values agree end to end *)
  let dec_naive, dec_fast = pair (fun () -> Eval.decrypt t rs_fast) in
  check Alcotest.bool "decrypt" true (Stats.max_abs_diff dec_naive dec_fast = 0.)

(* Hoisting shares one digit decomposition across a rotation fan; the
   result must nevertheless be bit-identical to repeated single-rotation
   key switching, for every amount shape: positive, negative, the
   identity, and amounts at or beyond the slot count (wrap-around). *)
let test_rotate_many_matches_rotate () =
  let t = Lazy.force ctx in
  let a = random_vector 139 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let rs = [ 1; 3; -2; 511; 513; 0; 1024 ] in
  let hoisted = Eval.rotate_many t ca rs in
  let single = List.map (Eval.rotate t ca) rs in
  List.iteri
    (fun i (h, s) ->
      let name = Printf.sprintf "rotate %d" (List.nth rs i) in
      check Alcotest.bool (name ^ " c0") true (Poly.equal h.Eval.c0 s.Eval.c0);
      check Alcotest.bool (name ^ " c1") true (Poly.equal h.Eval.c1 s.Eval.c1))
    (List.combine hoisted single)

(* ... and the fast hoisted path must match the naive-kernel oracle,
   which takes the unhoisted per-rotation route. *)
let test_rotate_many_matches_naive () =
  let module K = Hecate_support.Kernels in
  let t = Lazy.force ctx in
  let a = random_vector 149 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let rs = [ 3; -2; 511 ] in
  let fast = K.with_naive false (fun () -> Eval.rotate_many t ca rs) in
  let naive = K.with_naive true (fun () -> Eval.rotate_many t ca rs) in
  List.iteri
    (fun i (f, n) ->
      let name = Printf.sprintf "rotate %d" (List.nth rs i) in
      check Alcotest.bool (name ^ " c0") true (Poly.equal f.Eval.c0 n.Eval.c0);
      check Alcotest.bool (name ^ " c1") true (Poly.equal f.Eval.c1 n.Eval.c1))
    (List.combine fast naive)

let test_mul_rescale_matches_composition () =
  (* the fused path drops one NTT round-trip but must stay bit-identical
     to rescale-after-mul, in payload, scale, and level *)
  let t = Lazy.force ctx in
  let a = random_vector 151 512 and b = random_vector 157 512 in
  let ca = Eval.encrypt_vector t ~scale:scale20 a in
  let cb = Eval.encrypt_vector t ~scale:scale20 b in
  let fused = Eval.mul_rescale t ca cb in
  let composed = Eval.rescale t (Eval.mul t ca cb) in
  check Alcotest.bool "c0" true (Poly.equal fused.Eval.c0 composed.Eval.c0);
  check Alcotest.bool "c1" true (Poly.equal fused.Eval.c1 composed.Eval.c1);
  check (Alcotest.float 0.) "scale" (Eval.scale composed) (Eval.scale fused);
  check Alcotest.int "level" (Eval.level composed) (Eval.level fused)

(* ------------------------------------------------------------------ *)
(* Failure injection / security smoke                                  *)
(* ------------------------------------------------------------------ *)

let test_wrong_key_garbage () =
  (* decrypting under an unrelated key must not reveal the message *)
  let p = Lazy.force params in
  let t1 = Lazy.force ctx in
  let t2 = Eval.create ~seed:999 p ~rotations:[] in
  let v = random_vector 211 512 in
  let ct = Eval.encrypt_vector t1 ~scale:scale20 v in
  let wrong = Eval.decrypt t2 ct in
  check Alcotest.bool "wrong key decrypt far from message" true
    (Stats.max_abs_diff v wrong > 1.)

let test_deep_chain_exhaustion () =
  (* four muls need four rescales but only three primes can be dropped *)
  let t = Lazy.force ctx in
  let v = random_vector 223 512 in
  let ct = ref (Eval.encrypt_vector t ~scale:scale20 v) in
  (match
     for _ = 1 to 4 do
       ct := Eval.rescale t (Eval.mul t !ct !ct)
     done
   with
  | () -> Alcotest.fail "expected exhaustion"
  | exception Eval.Level_mismatch _ -> ())

let test_encode_beyond_levels () =
  let t = Lazy.force ctx in
  match Eval.encode t ~level:99 ~scale:scale20 [| 1. |] with
  | _ -> Alcotest.fail "expected level rejection"
  | exception Eval.Level_mismatch _ -> ()

let test_full_rotation_is_identity () =
  let t = Lazy.force ctx in
  let v = random_vector 227 512 in
  let ct = Eval.encrypt_vector t ~scale:scale20 v in
  (* 512 = slot count: normalizes to 0, needs no key *)
  let v' = Eval.decrypt t (Eval.rotate t ct 512) in
  check Alcotest.bool "identity" true (Stats.max_abs_diff v v' < 3e-3)

let test_plain_modswitch_roundtrip () =
  let t = Lazy.force ctx in
  let v = random_vector 229 512 in
  let ct = Eval.mod_switch t (Eval.encrypt_vector t ~scale:scale20 v) in
  let pt = Eval.mod_switch_plain t (Eval.encode t ~level:0 ~scale:scale20 v) in
  let sum = Eval.decrypt t (Eval.add_plain t ct pt) in
  for i = 0 to 511 do
    check Alcotest.bool "plain modswitch preserves value" true
      (Float.abs (sum.(i) -. (2. *. v.(i))) < 5e-3)
  done

let test_additive_homomorphism_many () =
  (* summing 64 fresh encryptions stays accurate: noise grows ~sqrt(64) *)
  let t = Lazy.force ctx in
  let vs = Array.init 64 (fun i -> random_vector (300 + i) 512) in
  let total = Array.make 512 0. in
  Array.iter (fun v -> Array.iteri (fun i x -> total.(i) <- total.(i) +. x) v) vs;
  let sum =
    Array.fold_left
      (fun acc v ->
        let ct = Eval.encrypt_vector t ~scale:scale20 v in
        match acc with None -> Some ct | Some a -> Some (Eval.add t a ct))
      None vs
  in
  let got = Eval.decrypt t (Option.get sum) in
  check Alcotest.bool "64-way sum accurate" true (Stats.max_abs_diff total got < 3e-2)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qtest = QCheck_alcotest.to_alcotest

(* Encode/decode roundtrip across parameter presets. The decode error of a
   scale-S encoding is dominated by coefficient rounding (each of the N
   coefficients rounds by at most 1/2), so N/S bounds the slot error. *)
let encoder_presets =
  [
    lazy (Params.create ~n:64 ~q0_bits:30 ~sf_bits:20 ~levels:2 ());
    lazy (Params.create ~n:256 ~q0_bits:30 ~sf_bits:24 ~levels:2 ());
    lazy (Params.create ~n:1024 ~q0_bits:30 ~sf_bits:28 ~levels:3 ());
  ]

let prop_encode_roundtrip_presets =
  QCheck.Test.make ~name:"encode/decode roundtrip bound across presets" ~count:45
    QCheck.(pair (int_bound (List.length encoder_presets - 1)) (int_bound 10_000))
    (fun (pi, seed) ->
      let p = Lazy.force (List.nth encoder_presets pi) in
      let enc = Encoder.create ~n:p.Params.n in
      let scale = Float.exp2 (float_of_int p.Params.sf_bits) in
      let v = random_vector ((pi * 20011) + seed) (Encoder.slots enc) in
      let poly =
        Encoder.encode enc p.Params.chain ~level_count:(Chain.length p.Params.chain) ~scale v
      in
      let v' = Encoder.decode enc ~scale (Poly.crt_reconstruct_centered poly) in
      Stats.max_abs_diff v v' < float_of_int p.Params.n /. scale)

(* Random op sequences preserve the evaluator's scale/level bookkeeping:
   add/rotate/negate change neither, modswitch bumps only the level,
   upscale multiplies only the scale, mul multiplies the operand scales and
   rescale divides by exactly the dropped chain prime. *)
let prop_eval_scale_level_invariants =
  QCheck.Test.make ~name:"ops preserve scale/level bookkeeping" ~count:25
    QCheck.(pair (int_bound 10_000) (list_of_size Gen.(1 -- 8) (int_bound 5)))
    (fun (seed, steps) ->
      let t = Lazy.force ctx in
      let p = Lazy.force params in
      let chain = p.Params.chain in
      let fresh lvl s =
        let ct = ref (Eval.encrypt_vector t ~scale:s (random_vector seed 512)) in
        for _ = 1 to lvl do
          ct := Eval.mod_switch t !ct
        done;
        !ct
      in
      let ct = ref (fresh 0 scale20) in
      let expect_scale = ref scale20 and expect_level = ref 0 in
      let max_level = Eval.max_level t in
      List.iter
        (fun step ->
          match step with
          | 0 -> ct := Eval.add t !ct (fresh !expect_level (Eval.scale !ct))
          | 1 -> ct := Eval.rotate t !ct 1
          | 2 -> ct := Eval.negate t !ct
          | 3 ->
              if !expect_scale < 0x1p40 then begin
                ct := Eval.upscale t !ct ~factor:0x1p4;
                expect_scale := !expect_scale *. 0x1p4
              end
          | 4 ->
              if !expect_level < max_level then begin
                ct := Eval.mod_switch t !ct;
                incr expect_level
              end
          | _ ->
              if !expect_level < max_level && !expect_scale < 0x1p34 then begin
                let prod = Eval.mul t !ct (fresh !expect_level scale20) in
                if
                  Float.abs (Eval.scale prod -. (!expect_scale *. scale20))
                  > 1e-6 *. Eval.scale prod
                then QCheck.Test.fail_report "mul scale is not the product of operand scales";
                let dropped =
                  float_of_int (Chain.prime chain (Chain.length chain - 1 - !expect_level))
                in
                ct := Eval.rescale t prod;
                expect_scale := !expect_scale *. scale20 /. dropped;
                incr expect_level
              end)
        steps;
      Float.abs (Eval.scale !ct -. !expect_scale) <= 1e-6 *. !expect_scale
      && Eval.level !ct = !expect_level)

(* C3 enforcement is exact: [add] must raise precisely when levels differ
   (Level_mismatch) or scales differ beyond drift (Scale_mismatch). *)
let prop_add_mismatch_exact =
  QCheck.Test.make ~name:"add raises exactly on level/scale mismatch" ~count:40
    QCheck.(triple (int_bound 10_000) (int_bound 2) (int_bound 2))
    (fun (seed, dl, ds) ->
      let t = Lazy.force ctx in
      let a = random_vector seed 512 in
      let ca = ref (Eval.encrypt_vector t ~scale:scale20 a) in
      for _ = 1 to dl do
        ca := Eval.mod_switch t !ca
      done;
      let cb = Eval.encrypt_vector t ~scale:(scale20 *. Float.exp2 (float_of_int ds)) a in
      match Eval.add t !ca cb with
      | _ -> dl = 0 && ds = 0
      | exception Eval.Level_mismatch _ -> dl <> 0
      | exception Eval.Scale_mismatch _ -> dl = 0 && ds <> 0)

let prop_mul_level_mismatch_exact =
  QCheck.Test.make ~name:"mul raises exactly on level mismatch" ~count:30
    QCheck.(pair (int_bound 10_000) (int_bound 2))
    (fun (seed, dl) ->
      let t = Lazy.force ctx in
      let a = random_vector seed 512 in
      let ca = ref (Eval.encrypt_vector t ~scale:scale20 a) in
      for _ = 1 to dl do
        ca := Eval.mod_switch t !ca
      done;
      let cb = Eval.encrypt_vector t ~scale:scale20 a in
      match Eval.mul t !ca cb with
      | _ -> dl = 0
      | exception Eval.Level_mismatch _ -> dl <> 0)

let () =
  Alcotest.run "hecate_ckks"
    [
      ( "params",
        [
          Alcotest.test_case "basics" `Quick test_params_basic;
          Alcotest.test_case "security table" `Quick test_params_security_table;
          Alcotest.test_case "security check" `Quick test_params_security_check;
        ] );
      ( "encoder",
        [
          Alcotest.test_case "roundtrip" `Quick test_encode_roundtrip;
          Alcotest.test_case "constant exact" `Quick test_encode_constant_exact;
          Alcotest.test_case "partial vector" `Quick test_encode_partial_vector;
          Alcotest.test_case "overflow rejected" `Quick test_encode_overflow_rejected;
          Alcotest.test_case "galois elements" `Quick test_galois_elements;
        ] );
      ( "encrypt",
        [
          Alcotest.test_case "roundtrip" `Quick test_encrypt_roundtrip;
          Alcotest.test_case "randomized" `Quick test_encrypt_is_randomized;
        ] );
      ( "homomorphic",
        [
          Alcotest.test_case "add/sub/neg" `Quick test_hom_add_sub_neg;
          Alcotest.test_case "plain add/sub" `Quick test_hom_add_plain;
          Alcotest.test_case "plain mul + rescale" `Quick test_hom_mul_plain_rescale;
          Alcotest.test_case "cipher mul" `Quick test_hom_mul_cipher;
          Alcotest.test_case "depth 2" `Quick test_hom_mul_depth2;
          Alcotest.test_case "square" `Quick test_hom_square;
          Alcotest.test_case "modswitch" `Quick test_mod_switch_preserves_value;
          Alcotest.test_case "upscale" `Quick test_upscale;
          Alcotest.test_case "downscale composition" `Quick test_downscale_composition;
          Alcotest.test_case "rotate" `Quick test_rotate;
          Alcotest.test_case "rotate 0" `Quick test_rotate_zero_is_identity;
          Alcotest.test_case "rotate missing key" `Quick test_rotate_missing_key;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "level mismatch" `Quick test_level_mismatch_rejected;
          Alcotest.test_case "scale mismatch" `Quick test_scale_mismatch_rejected;
          Alcotest.test_case "rescale exhaustion" `Quick test_rescale_exhaustion;
          Alcotest.test_case "level speeds up mul" `Slow test_mul_faster_at_higher_level;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "fast matches naive" `Quick test_eval_fast_matches_naive;
          Alcotest.test_case "rotate_many matches rotate" `Quick test_rotate_many_matches_rotate;
          Alcotest.test_case "rotate_many matches naive" `Quick test_rotate_many_matches_naive;
          Alcotest.test_case "mul_rescale matches composition" `Quick
            test_mul_rescale_matches_composition;
        ] );
      ( "properties",
        [
          qtest prop_encode_roundtrip_presets;
          qtest prop_eval_scale_level_invariants;
          qtest prop_add_mismatch_exact;
          qtest prop_mul_level_mismatch_exact;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "wrong key garbage" `Quick test_wrong_key_garbage;
          Alcotest.test_case "chain exhaustion" `Quick test_deep_chain_exhaustion;
          Alcotest.test_case "encode beyond levels" `Quick test_encode_beyond_levels;
          Alcotest.test_case "full rotation identity" `Quick test_full_rotation_is_identity;
          Alcotest.test_case "plain modswitch" `Quick test_plain_modswitch_roundtrip;
          Alcotest.test_case "64-way additive" `Quick test_additive_homomorphism_many;
        ] );
    ]
