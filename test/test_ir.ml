(* Tests for hecate_ir: types, program structure, typing rules (Table I /
   Eq. 1-6), printer/parser round-trips, passes, liveness. *)

module Types = Hecate_ir.Types
module Prog = Hecate_ir.Prog
module Typing = Hecate_ir.Typing
module Printer = Hecate_ir.Printer
module Parser = Hecate_ir.Parser
module Passes = Hecate_ir.Passes
module Pass_manager = Hecate_ir.Pass_manager
module Liveness = Hecate_ir.Liveness
module B = Prog.Builder

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let cfg = Typing.config ~sf:28. ~waterline:20. ()
let cipher scale level = Types.Cipher { Types.scale; level }
let plain scale level = Types.Plain { Types.scale; level }

module Diagnostic = Hecate_ir.Diagnostic

let infer_ok kind args =
  match Typing.infer cfg kind args with
  | Ok t -> t
  | Error e -> Alcotest.failf "expected well-typed, got: %s" (Diagnostic.to_string e)

(* legacy-string view of the diagnostic: the message assertions below predate
   structured diagnostics and must keep passing unchanged *)
let infer_err kind args =
  match Typing.infer cfg kind args with
  | Ok t -> Alcotest.failf "expected type error, got %s" (Types.to_string t)
  | Error e -> Diagnostic.to_string e

let infer_err_code kind args =
  match Typing.infer cfg kind args with
  | Ok t -> Alcotest.failf "expected type error, got %s" (Types.to_string t)
  | Error e -> e.Diagnostic.code

let ty = Alcotest.testable Types.pp Types.equal

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let test_types_basics () =
  check Alcotest.bool "free not scaled" false (Types.is_scaled Types.Free);
  check Alcotest.bool "plain scaled" true (Types.is_scaled (plain 20. 0));
  check Alcotest.bool "cipher is cipher" true (Types.is_cipher (cipher 20. 1));
  check Alcotest.bool "plain not cipher" false (Types.is_cipher (plain 20. 1));
  check (Alcotest.float 0.) "scale_exn" 23. (Types.scale_exn (cipher 23. 0));
  check Alcotest.int "level_exn" 4 (Types.level_exn (plain 20. 4));
  check Alcotest.bool "scale_close tolerance" true (Types.scale_close 20. 20.005);
  check Alcotest.bool "scale_close distinguishes" false (Types.scale_close 20. 20.5);
  check ty "equal up to drift" (cipher 20. 1) (cipher 20.001 1)

(* ------------------------------------------------------------------ *)
(* Typing rules: Table I semantics                                     *)
(* ------------------------------------------------------------------ *)

let test_rule_rescale () =
  (* rescale: scale j -> j - sf (log2), level k -> k+1 *)
  check ty "rescale effect" (cipher 30. 1) (infer_ok Prog.Rescale [| cipher 58. 0 |]);
  (* C2: result below waterline rejected *)
  let e = infer_err Prog.Rescale [| cipher 40. 0 |] in
  check Alcotest.bool "waterline violation reported" true
    (Astring.String.is_infix ~affix:"waterline" e)

let test_rule_rescale_cipher_only () =
  ignore (infer_err Prog.Rescale [| plain 58. 0 |]);
  ignore (infer_err Prog.Rescale [| Types.Free |])

let test_rule_modswitch () =
  check ty "modswitch keeps scale" (cipher 33. 3) (infer_ok Prog.Modswitch [| cipher 33. 2 |]);
  check ty "modswitch on plain" (plain 33. 3) (infer_ok Prog.Modswitch [| plain 33. 2 |])

let test_rule_downscale () =
  (* downscale: scale -> waterline, level+1; only legal when rescale is not *)
  check ty "downscale effect" (cipher 20. 1)
    (infer_ok (Prog.Downscale { waterline = 20. }) [| cipher 40. 0 |]);
  (* rescale applicable (40+28=68-28=40 >= 20+28=48...): scale 50: 50-28=22>=20 *)
  let e = infer_err (Prog.Downscale { waterline = 20. }) [| cipher 50. 0 |] in
  check Alcotest.bool "prefers rescale" true (Astring.String.is_infix ~affix:"rescale" e);
  (* already at waterline: use modswitch *)
  let e = infer_err (Prog.Downscale { waterline = 20. }) [| cipher 20. 0 |] in
  check Alcotest.bool "prefers modswitch" true (Astring.String.is_infix ~affix:"modswitch" e);
  ignore (infer_err (Prog.Downscale { waterline = 20. }) [| plain 40. 0 |])

let test_rule_upscale () =
  check ty "upscale to target" (cipher 44. 2)
    (infer_ok (Prog.Upscale { target_scale = 44. }) [| cipher 40. 2 |]);
  ignore (infer_err (Prog.Upscale { target_scale = 30. }) [| cipher 40. 2 |])

let test_rule_mul () =
  (* scales multiply (add in log2); levels must match *)
  check ty "mul scales add" (cipher 45. 1) (infer_ok Prog.Mul [| cipher 25. 1; cipher 20. 1 |]);
  check ty "cipher x plain" (cipher 45. 1) (infer_ok Prog.Mul [| cipher 25. 1; plain 20. 1 |]);
  check ty "plain x plain stays plain" (plain 45. 1)
    (infer_ok Prog.Mul [| plain 25. 1; plain 20. 1 |]);
  let e = infer_err Prog.Mul [| cipher 25. 0; cipher 20. 1 |] in
  check Alcotest.bool "C3 reported" true (Astring.String.is_infix ~affix:"C3" e)

let test_rule_add () =
  check ty "add keeps scale" (cipher 25. 1) (infer_ok Prog.Add [| cipher 25. 1; cipher 25. 1 |]);
  ignore (infer_err Prog.Add [| cipher 25. 1; cipher 26. 1 |]);
  ignore (infer_err Prog.Sub [| cipher 25. 0; cipher 25. 1 |]);
  ignore (infer_err Prog.Add [| Types.Free; cipher 25. 1 |])

let test_rule_encode () =
  check ty "encode" (plain 22. 3) (infer_ok (Prog.Encode { scale = 22.; level = 3 }) [| Types.Free |]);
  (* C2 on encode *)
  ignore (infer_err (Prog.Encode { scale = 10.; level = 0 }) [| Types.Free |]);
  ignore (infer_err (Prog.Encode { scale = 22.; level = 0 }) [| cipher 22. 0 |])

let test_rule_c1 () =
  let cfg = Typing.config ~sf:28. ~waterline:20. ~max_log_q:100. () in
  (* scale 90 at level 1 exceeds 100 - 28 = 72 remaining bits *)
  match Typing.infer cfg Prog.Mul [| cipher 45. 1; cipher 45. 1 |] with
  | Ok _ -> Alcotest.fail "expected C1 violation"
  | Error e ->
      check Alcotest.bool "C1 reported" true
        (Astring.String.is_infix ~affix:"C1" (Diagnostic.to_string e))

let test_rule_level_bound () =
  let cfg = Typing.config ~sf:28. ~waterline:20. ~max_level:2 () in
  match Typing.infer cfg Prog.Modswitch [| cipher 20. 2 |] with
  | Ok _ -> Alcotest.fail "expected level bound violation"
  | Error _ -> ()

let prop_downscale_rescale_disjoint =
  (* exactly one of rescale/downscale/modswitch applies at every scale:
     the planner's operation choice is total and unambiguous *)
  QCheck.Test.make ~name:"scale-management choice is total" ~count:200
    QCheck.(float_bound_inclusive 60.)
    (fun s ->
      let s = 20. +. s in
      let rescale_ok = Result.is_ok (Typing.infer cfg Prog.Rescale [| cipher s 0 |]) in
      let downscale_ok =
        Result.is_ok (Typing.infer cfg (Prog.Downscale { waterline = 20. }) [| cipher s 0 |])
      in
      let modswitch_ok = Result.is_ok (Typing.infer cfg Prog.Modswitch [| cipher s 0 |]) in
      (* modswitch always applies; rescale and downscale never both apply *)
      modswitch_ok && not (rescale_ok && downscale_ok))

(* ------------------------------------------------------------------ *)
(* Program structure                                                   *)
(* ------------------------------------------------------------------ *)

let small_prog () =
  let b = B.create ~name:"t" ~slot_count:16 () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let c = B.const_scalar b 2. in
  let m = B.mul b x y in
  let s = B.add b m c in
  B.output b s;
  B.finish b

let test_prog_structure () =
  let p = small_prog () in
  check Alcotest.int "op count" 5 (Prog.num_ops p);
  check Alcotest.int "inputs" 2 (List.length p.Prog.inputs);
  check Alcotest.(list int) "outputs" [ 4 ] p.Prog.outputs;
  check Alcotest.bool "validates" true (Result.is_ok (Prog.validate p))

let test_prog_use_counts () =
  let p = small_prog () in
  let counts = Prog.use_counts p in
  check Alcotest.int "x used once" 1 counts.(0);
  check Alcotest.int "mul used once" 1 counts.(3);
  check Alcotest.int "output counted" 1 counts.(4)

let test_prog_users () =
  let p = small_prog () in
  let users = Prog.users p in
  check Alcotest.(list int) "x feeds mul" [ 3 ] users.(0);
  check Alcotest.(list int) "mul feeds add" [ 4 ] users.(3)

let test_validate_rejects () =
  let bad =
    {
      Prog.name = "bad";
      slot_count = 4;
      body = [| { Prog.id = 0; kind = Prog.Add; args = [| 0; 0 |]; ty = Types.Free; prov = None } |];
      inputs = [];
      outputs = [ 0 ];
    }
  in
  check Alcotest.bool "self-reference rejected" true (Result.is_error (Prog.validate bad))

let test_validate_input_list () =
  let p = small_prog () in
  let dup = { p with Prog.inputs = [ 0; 0 ] } in
  check Alcotest.bool "duplicate input entry rejected" true (Result.is_error (Prog.validate dup));
  let missing = { p with Prog.inputs = [ 0 ] } in
  (match Prog.validate missing with
  | Error msg ->
      check Alcotest.bool "undeclared input op named" true
        (Astring.String.is_infix ~affix:"input op 1" msg)
  | Ok () -> Alcotest.fail "input op missing from the input list must be rejected");
  let not_input = { p with Prog.inputs = [ 0; 3 ] } in
  check Alcotest.bool "non-input op in input list rejected" true
    (Result.is_error (Prog.validate not_input))

let test_prog_equal () =
  let p = small_prog () and q = small_prog () in
  check Alcotest.bool "structurally equal" true (Prog.equal p q);
  (Prog.op q 3).Prog.ty <- Types.Cipher { Types.scale = 20.; level = 0 };
  check Alcotest.bool "types ignored" true (Prog.equal p q);
  let r = { q with Prog.outputs = [ 3 ] } in
  check Alcotest.bool "different outputs detected" false (Prog.equal p r)

let test_builder_rejects_no_output () =
  let b = B.create ~slot_count:4 () in
  ignore (B.input b "x");
  match B.finish b with
  | _ -> Alcotest.fail "expected failure"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Printer / parser                                                    *)
(* ------------------------------------------------------------------ *)

let managed_prog () =
  (* the Fig. 2 example, compiled by hand into the HECATE plan *)
  Parser.parse
    {|
func fig2(%0: cipher "x", %1: cipher "y") slots=8 {
  %2 = mul %0, %0
  %3 = mul %1, %1
  %4 = add %2, %3
  %5 = downscale %4, 20
  %6 = mul %5, %5
  %7 = mul %6, %5
  return %7
}
|}

let test_parse_basic () =
  let p = managed_prog () in
  check Alcotest.int "ops" 8 (Prog.num_ops p);
  check Alcotest.int "slots" 8 p.Prog.slot_count;
  match (Prog.op p 5).Prog.kind with
  | Prog.Downscale { waterline } -> check (Alcotest.float 0.) "attr" 20. waterline
  | _ -> Alcotest.fail "expected downscale"

let test_parse_typecheck () =
  let p = managed_prog () in
  let tys = Typing.check_exn cfg p in
  check ty "z type" (cipher 40. 0) tys.(4);
  check ty "downscaled" (cipher 20. 1) tys.(5);
  check ty "final" (cipher 60. 1) tys.(7)

let test_print_parse_roundtrip () =
  let p = managed_prog () in
  ignore (Typing.check_exn cfg p);
  let text = Printer.to_string p in
  let p2 = Parser.parse text in
  check Alcotest.int "same op count" (Prog.num_ops p) (Prog.num_ops p2);
  ignore (Typing.check_exn cfg p2);
  let text2 = Printer.to_string p2 in
  check Alcotest.string "fixpoint" text text2

let test_parse_errors () =
  let expect_error s =
    match Parser.parse s with
    | _ -> Alcotest.fail "expected parse error"
    | exception Parser.Parse_error _ -> ()
  in
  expect_error "func f() slots=4 { return %0 }";
  expect_error {|func f(%0: cipher "x") slots=4 { %1 = mul %0 return %1 }|};
  expect_error {|func f(%0: cipher "x") slots=4 { %1 = frobnicate %0 return %1 }|};
  expect_error {|func f(%0: cipher "x") slots=4 { %1 = negate %0 return %1|}

let test_parse_comments_and_vectors () =
  let p =
    Parser.parse
      {|
# leading comment
func f(%0: cipher "x") slots=4 {
  %1 = const [1.5, -2, 0.25]  # trailing comment
  %2 = mul %0, %1
  return %2
}
|}
  in
  match (Prog.op p 1).Prog.kind with
  | Prog.Const { value = Prog.Vector v } ->
      check Alcotest.(array (float 0.)) "vector" [| 1.5; -2.; 0.25 |] v
  | _ -> Alcotest.fail "expected vector constant"

(* ------------------------------------------------------------------ *)
(* Passes                                                              *)
(* ------------------------------------------------------------------ *)

let test_dce () =
  let b = B.create ~slot_count:4 () in
  let x = B.input b "x" in
  let _dead = B.mul b x x in
  let live = B.add b x x in
  B.output b live;
  let p = B.finish b in
  let p' = Passes.dce p in
  check Alcotest.int "dead mul removed" 2 (Prog.num_ops p');
  check Alcotest.bool "still valid" true (Result.is_ok (Prog.validate p'))

let test_cse () =
  let b = B.create ~slot_count:4 () in
  let x = B.input b "x" in
  let m1 = B.mul b x x in
  let m2 = B.mul b x x in
  B.output b (B.add b m1 m2);
  let p = B.finish b in
  let p' = Passes.cse p in
  check Alcotest.int "duplicate mul merged" 3 (Prog.num_ops p');
  check Alcotest.bool "still valid" true (Result.is_ok (Prog.validate p'))

let test_cse_keeps_distinct_inputs () =
  let b = B.create ~slot_count:4 () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  B.output b (B.add b x y);
  let p = Passes.cse (B.finish b) in
  check Alcotest.int "inputs not merged" 3 (Prog.num_ops p)

let test_constant_fold () =
  let b = B.create ~slot_count:4 () in
  let x = B.input b "x" in
  let c = B.mul b (B.const_scalar b 3.) (B.const_scalar b 4.) in
  B.output b (B.mul b x c);
  let p = Passes.constant_fold (B.finish b) in
  (* input, folded const, mul *)
  check Alcotest.int "const mul folded" 3 (Prog.num_ops p);
  check Alcotest.bool "still valid" true (Result.is_ok (Prog.validate p));
  match (Prog.op p 1).Prog.kind with
  | Prog.Const { value = Prog.Scalar v } -> check (Alcotest.float 0.) "value" 12. v
  | _ -> Alcotest.fail "expected folded scalar"

let test_constant_fold_rotate () =
  let b = B.create ~slot_count:4 () in
  let x = B.input b "x" in
  let c = B.rotate b (B.const_vector b [| 1.; 2.; 3.; 4. |]) 1 in
  B.output b (B.mul b x c);
  let p = Passes.constant_fold (B.finish b) in
  match (Prog.op p 1).Prog.kind with
  | Prog.Const { value = Prog.Vector v } ->
      check Alcotest.(array (float 0.)) "rotated" [| 2.; 3.; 4.; 1. |] v
  | _ -> Alcotest.fail "expected folded vector"

let test_early_modswitch () =
  (* modswitch(mul(a, b)) with a single use becomes mul(ms a, ms b) *)
  let p =
    Parser.parse
      {|
func f(%0: cipher "x", %1: cipher "y") slots=4 {
  %2 = mul %0, %1
  %3 = modswitch %2
  %4 = mul %3, %3
  return %4
}
|}
  in
  ignore (Typing.check_exn cfg p);
  let p' = Passes.early_modswitch p in
  check Alcotest.bool "still valid" true (Result.is_ok (Prog.validate p'));
  ignore (Typing.check_exn cfg p');
  (* the first op consuming inputs must now be a modswitch *)
  let kinds = Array.map (fun (o : Prog.op) -> Prog.kind_name o.Prog.kind) p'.Prog.body in
  check Alcotest.bool "modswitch moved before mul" true
    (kinds.(2) = "modswitch" && kinds.(3) = "modswitch");
  (* semantics preserved: the final type is unchanged *)
  check ty "result type unchanged"
    (Prog.op p (Prog.num_ops p - 1)).Prog.ty
    (Prog.op p' (Prog.num_ops p' - 1)).Prog.ty

(* a deep single-use chain: one pass application must carry the modswitch
   the whole way down (the old one-step-per-application behaviour needed a
   pipeline fixpoint iteration per dataflow step and overflowed the
   64-iteration budget on LeNet-sized programs) *)
let deep_chain_prog depth =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "func f(%0: cipher \"x\") slots=4 {\n";
  for i = 1 to depth do
    Buffer.add_string buf (Printf.sprintf "  %%%d = add %%%d, %%%d\n" i (i - 1) (i - 1))
  done;
  Buffer.add_string buf (Printf.sprintf "  %%%d = modswitch %%%d\n" (depth + 1) depth);
  Buffer.add_string buf (Printf.sprintf "  return %%%d\n}\n" (depth + 1));
  Parser.parse (Buffer.contents buf)

let test_early_modswitch_deep_chain () =
  let p = deep_chain_prog 100 in
  let p' = Passes.early_modswitch p in
  check Alcotest.bool "still valid" true (Result.is_ok (Prog.validate p'));
  check Alcotest.int "op count unchanged" (Prog.num_ops p) (Prog.num_ops p');
  check Alcotest.string "modswitch migrated onto the input" "modswitch"
    (Prog.kind_name (Prog.op p' 1).Prog.kind);
  check Alcotest.bool "idempotent" true (Prog.equal p' (Passes.early_modswitch p'))

let test_early_modswitch_shared_operand () =
  (* modswitch(mul %1, %1): both wrapped operands must share ONE modswitch,
     otherwise the copies give %0 two users and migration stalls *)
  let p =
    Parser.parse
      {|
func f(%0: cipher "x") slots=4 {
  %1 = mul %0, %0
  %2 = modswitch %1
  %3 = mul %2, %2
  return %3
}
|}
  in
  let p' = Passes.early_modswitch p in
  check Alcotest.bool "still valid" true (Result.is_ok (Prog.validate p'));
  check Alcotest.int "no duplicate wrappers" (Prog.num_ops p) (Prog.num_ops p');
  let modswitches =
    Array.fold_left
      (fun n (o : Prog.op) -> match o.Prog.kind with Prog.Modswitch -> n + 1 | _ -> n)
      0 p'.Prog.body
  in
  check Alcotest.int "single shared modswitch" 1 modswitches;
  check Alcotest.string "it sits on the input" "modswitch"
    (Prog.kind_name (Prog.op p' 1).Prog.kind)

let test_finalize_fixpoint_deep_chain () =
  (* the full finalize pipeline must converge on programs deeper than the
     64-iteration fixpoint budget *)
  let p = deep_chain_prog 200 in
  let p' = Pass_manager.run (Pass_manager.finalize ~early_modswitch:true) p in
  check Alcotest.bool "still valid" true (Result.is_ok (Prog.validate p'))

let test_early_modswitch_multiuse_blocked () =
  (* the producing op has another user: the modswitch must stay *)
  let p =
    Parser.parse
      {|
func f(%0: cipher "x") slots=4 {
  %1 = mul %0, %0
  %2 = modswitch %1
  %3 = mul %2, %2
  %4 = add %1, %1
  return %3, %4
}
|}
  in
  let p' = Passes.early_modswitch p in
  check Alcotest.int "unchanged" (Prog.num_ops p) (Prog.num_ops p')

let test_fold_rotations_chain () =
  (* a three-deep rotation chain collapses to one rotation *)
  let b = B.create ~slot_count:16 () in
  let x = B.input b "x" in
  B.output b (B.rotate b (B.rotate b (B.rotate b x 3) 5) 2);
  let p = Passes.fold_rotations (B.finish b) in
  check Alcotest.int "single op besides input/output" 2 (Prog.num_ops p);
  check Alcotest.bool "still valid" true (Result.is_ok (Prog.validate p));
  match (Prog.op p 1).Prog.kind with
  | Prog.Rotate { amount } -> check Alcotest.int "combined amount" 10 amount
  | _ -> Alcotest.fail "expected rotation"

let test_fold_rotations_cancel () =
  (* rotations summing to the slot count disappear entirely *)
  let b = B.create ~slot_count:16 () in
  let x = B.input b "x" in
  B.output b (B.add b (B.rotate b (B.rotate b x 7) 9) x);
  let p = Passes.fold_rotations (B.finish b) in
  let rotations =
    Array.fold_left
      (fun n (o : Prog.op) -> match o.Prog.kind with Prog.Rotate _ -> n + 1 | _ -> n)
      0 p.Prog.body
  in
  check Alcotest.int "no rotations left" 0 rotations

let test_fold_rotations_multiuse_blocked () =
  (* the inner rotation has another consumer: folding must not change it *)
  let b = B.create ~slot_count:16 () in
  let x = B.input b "x" in
  let r1 = B.rotate b x 3 in
  let r2 = B.rotate b r1 5 in
  B.output b (B.add b r1 r2);
  let p = Passes.fold_rotations (B.finish b) in
  check Alcotest.int "both rotations survive" 4 (Prog.num_ops p)

let test_fold_rotations_semantics () =
  (* semantics-preserving on a mixed program *)
  let b = B.create ~slot_count:8 () in
  let x = B.input b "x" in
  let e = B.add b (B.rotate b (B.rotate b x 2) 3) (B.rotate b x 5) in
  B.output b e;
  let p0 = B.finish b in
  let p1 = Passes.fold_rotations p0 in
  check Alcotest.bool "fewer ops" true (Prog.num_ops p1 < Prog.num_ops p0);
  (* after folding, both sides become rotate-by-5 and CSE can merge them *)
  let p2 = Passes.cse p1 in
  check Alcotest.int "cse merges equal rotations" 3 (Prog.num_ops p2)

(* ------------------------------------------------------------------ *)
(* Pass manager: registry, pipeline specs, fixpoint, instrumentation   *)
(* ------------------------------------------------------------------ *)

(* test-only passes, registered once at module load *)
let () =
  (* structurally broken: points an output past the last op *)
  Pass_manager.register "test-broken" (fun p ->
      { p with Prog.outputs = [ Prog.num_ops p ] });
  (* structurally fine but ill-typed: downscale where only rescale is legal *)
  Pass_manager.register "test-illtyped" (fun p ->
      {
        p with
        Prog.body =
          Array.map
            (fun (o : Prog.op) ->
              match o.Prog.kind with
              | Prog.Downscale _ -> { o with Prog.kind = Prog.Rescale }
              | _ -> o)
            p.Prog.body;
      })

let test_pm_registry () =
  let names = List.map (fun (p : Pass_manager.pass) -> p.Pass_manager.name) (Pass_manager.registered ()) in
  List.iter
    (fun n -> check Alcotest.bool ("registered: " ^ n) true (List.mem n names))
    [ "cse"; "dce"; "constant-fold"; "fold-rotations"; "early-modswitch" ];
  check Alcotest.bool "sorted" true (names = List.sort compare names);
  (match Pass_manager.find "cse" with
  | Some p -> check Alcotest.bool "described" true (String.length p.Pass_manager.description > 0)
  | None -> Alcotest.fail "cse not found");
  (match Pass_manager.register "cse" Fun.id with
  | () -> Alcotest.fail "duplicate registration must be rejected"
  | exception Invalid_argument _ -> ());
  match Pass_manager.register "Bad Name" Fun.id with
  | () -> Alcotest.fail "invalid name must be rejected"
  | exception Invalid_argument _ -> ()

let test_pm_spec_roundtrip () =
  List.iter
    (fun spec ->
      let p = Pass_manager.parse_exn spec in
      check Alcotest.string ("canonical: " ^ spec) spec (Pass_manager.to_string p);
      let p2 = Pass_manager.parse_exn (Pass_manager.to_string p) in
      check Alcotest.string ("round-trip: " ^ spec) (Pass_manager.to_string p)
        (Pass_manager.to_string p2))
    [
      "cse";
      "cse,constant-fold,dce";
      "cse,constant-fold,fixpoint(fold-rotations,dce)";
      "fixpoint(cse,early-modswitch,cse,constant-fold,dce)";
      "fixpoint(fixpoint(dce),cse)";
    ];
  (* whitespace-insensitive *)
  check Alcotest.string "whitespace normalized" "cse,fixpoint(dce)"
    (Pass_manager.to_string (Pass_manager.parse_exn " cse ,\n fixpoint( dce ) "))

let test_pm_spec_rejects () =
  let expect_error ~mentions spec =
    match Pass_manager.parse spec with
    | Ok _ -> Alcotest.failf "spec %S must be rejected" spec
    | Error msg ->
        List.iter
          (fun affix ->
            check Alcotest.bool
              (Printf.sprintf "%S error mentions %S (got: %s)" spec affix msg)
              true
              (Astring.String.is_infix ~affix msg))
          mentions
  in
  expect_error ~mentions:[ "frobnicate"; "known passes"; "cse" ] "cse,frobnicate,dce";
  expect_error ~mentions:[ "expected a pass name" ] "";
  expect_error ~mentions:[ "expected a pass name" ] "cse,,dce";
  expect_error ~mentions:[ "unclosed" ] "fixpoint(cse";
  expect_error ~mentions:[ "'('" ] "fixpoint";
  expect_error ~mentions:[ "trailing" ] "dce)"

let test_pm_runs_pipeline () =
  (* the full cleanup pipeline works end to end: dead code, duplicate muls
     and a rotation chain all disappear *)
  let b = B.create ~slot_count:16 () in
  let x = B.input b "x" in
  let _dead = B.mul b x x in
  let m1 = B.mul b x x in
  let m2 = B.mul b x x in
  let r = B.rotate b (B.rotate b (B.add b m1 m2) 3) 5 in
  B.output b r;
  let p = B.finish b in
  let p' = Pass_manager.run Pass_manager.cleanup p in
  check Alcotest.bool "valid" true (Result.is_ok (Prog.validate p'));
  (* input, mul, add, rotate(8) *)
  check Alcotest.int "fully cleaned" 4 (Prog.num_ops p');
  check Alcotest.bool "matches default_pipeline" true
    (Prog.equal p' (Pass_manager.default_pipeline p))

let test_pm_fixpoint_terminates_when_clean () =
  (* nested fixpoints on an already-clean program converge after one sweep *)
  let p = small_prog () in
  let pl = Pass_manager.parse_exn "fixpoint(fixpoint(cse,dce),fixpoint(fold-rotations,dce))" in
  let stats = Pass_manager.create_stats () in
  let p' = Pass_manager.run ~stats pl p in
  check Alcotest.bool "program unchanged" true (Prog.equal p p');
  (* inner fixpoint bodies ran exactly twice each: once to rewrite, once to
     observe convergence; the outer fixpoint adds one more converged sweep *)
  List.iter
    (fun (t : Pass_manager.timing) ->
      check Alcotest.bool
        (Printf.sprintf "%s ran a bounded number of times (%d)" t.Pass_manager.pass
           t.Pass_manager.runs)
        true
        (t.Pass_manager.runs <= 4))
    (Pass_manager.timings stats)

let test_pm_fold_rotations_multiuse_under_fixpoint () =
  (* the multi-use safety of fold-rotations holds under fixpoint iteration:
     no amount of re-running may fold a shared inner rotation *)
  let b = B.create ~slot_count:16 () in
  let x = B.input b "x" in
  let r1 = B.rotate b x 3 in
  let r2 = B.rotate b r1 5 in
  B.output b (B.add b r1 r2);
  let p = Pass_manager.run (Pass_manager.parse_exn "fixpoint(fold-rotations,dce)") (B.finish b) in
  check Alcotest.bool "valid" true (Result.is_ok (Prog.validate p));
  check Alcotest.int "both rotations survive" 4 (Prog.num_ops p)

let test_pm_timing_stats () =
  let b = B.create ~slot_count:4 () in
  let x = B.input b "x" in
  let _dead = B.mul b x x in
  B.output b (B.add b x x);
  let p = B.finish b in
  let stats = Pass_manager.create_stats () in
  ignore (Pass_manager.run ~stats Pass_manager.cleanup p);
  ignore (Pass_manager.run ~stats (Pass_manager.parse_exn "dce") p);
  let ts = Pass_manager.timings stats in
  let find name = List.find (fun (t : Pass_manager.timing) -> t.Pass_manager.pass = name) ts in
  check Alcotest.bool "cse timed" true ((find "cse").Pass_manager.runs >= 1);
  check Alcotest.bool "dce removed the dead mul" true ((find "dce").Pass_manager.ops_delta < 0);
  List.iter
    (fun (t : Pass_manager.timing) ->
      check Alcotest.bool (t.Pass_manager.pass ^ " non-negative time") true
        (t.Pass_manager.seconds >= 0.))
    ts

let test_pm_verifier_names_broken_pass () =
  let p = small_prog () in
  let instr = Pass_manager.instrumentation () in
  match Pass_manager.run ~instr (Pass_manager.parse_exn "cse,test-broken,dce") p with
  | _ -> Alcotest.fail "broken pass must be caught by the inter-pass verifier"
  | exception Pass_manager.Pass_failed { pass; reason } ->
      check Alcotest.string "offending pass named" "test-broken" pass;
      check Alcotest.bool "structural diagnostic" true
        (Astring.String.is_infix ~affix:"out of range" reason)

let test_pm_typecheck_names_illtyped_pass () =
  let p = managed_prog () in
  let instr = Pass_manager.instrumentation ~typecheck:cfg () in
  (* sanity: the well-typed pipeline passes the same instrumentation *)
  ignore (Pass_manager.run ~instr (Pass_manager.parse_exn "cse") p);
  match Pass_manager.run ~instr (Pass_manager.parse_exn "test-illtyped") p with
  | _ -> Alcotest.fail "ill-typed rewrite must be caught"
  | exception Pass_manager.Pass_failed { pass; _ } ->
      check Alcotest.string "offending pass named" "test-illtyped" pass

let test_pm_dump_selector () =
  let dumped = ref [] in
  let instr =
    Pass_manager.instrumentation
      ~dump_after:(Pass_manager.Dump_passes [ "dce" ])
      ~dump:(fun ~pass p -> dumped := (pass, Prog.num_ops p) :: !dumped)
      ()
  in
  ignore (Pass_manager.run ~instr Pass_manager.cleanup (small_prog ()));
  check Alcotest.bool "only dce dumped" true
    (!dumped <> [] && List.for_all (fun (pass, _) -> pass = "dce") !dumped)

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

let test_liveness_buffers () =
  (* a chain reuses one buffer pair; peak live stays small *)
  let b = B.create ~slot_count:4 () in
  let x = B.input b "x" in
  let rec chain v i = if i = 0 then v else chain (B.mul b v v) (i - 1) in
  B.output b (chain x 10);
  let p = B.finish b in
  let l = Liveness.analyze p in
  check Alcotest.bool "buffers reused" true (l.Liveness.buffer_count <= 3);
  check Alcotest.bool "peak small" true (l.Liveness.peak_live <= 3)

let test_liveness_outputs_live () =
  let p = small_prog () in
  let l = Liveness.analyze p in
  check Alcotest.int "output live to end" (Prog.num_ops p) l.Liveness.last_use.(4)

let test_liveness_wide_program () =
  (* n independent values all consumed at the end: peak = n + 1 *)
  let b = B.create ~slot_count:4 () in
  let x = B.input b "x" in
  let vs = List.init 6 (fun i -> B.rotate b x (i + 1)) in
  B.output b (List.fold_left (fun acc v -> B.add b acc v) x vs);
  let p = B.finish b in
  let l = Liveness.analyze p in
  check Alcotest.bool "peak reflects width" true (l.Liveness.peak_live >= 6)

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let test_diagnostic_codes () =
  let code = Alcotest.testable (Fmt.of_to_string Diagnostic.code_name) ( = ) in
  check code "C2 on rescale" Diagnostic.Below_waterline
    (infer_err_code Prog.Rescale [| cipher 40. 0 |]);
  check code "C3 levels" Diagnostic.Level_mismatch
    (infer_err_code Prog.Add [| cipher 20. 0; cipher 20. 1 |]);
  check code "C3 scales" Diagnostic.Scale_mismatch
    (infer_err_code Prog.Add [| cipher 20. 0; cipher 48. 0 |]);
  check code "mul levels" Diagnostic.Level_mismatch
    (infer_err_code Prog.Mul [| cipher 20. 0; cipher 20. 1 |]);
  check code "upscale shrinks" Diagnostic.Bad_upscale
    (infer_err_code (Prog.Upscale { target_scale = 10. }) [| cipher 20. 0 |]);
  check code "redundant downscale" Diagnostic.Redundant_op
    (infer_err_code (Prog.Downscale { waterline = 20. }) [| cipher 20. 0 |]);
  check code "operand kind" Diagnostic.Operand_kind
    (infer_err_code Prog.Rescale [| plain 48. 0 |]);
  check code "arity" Diagnostic.Arity (infer_err_code Prog.Add [| cipher 20. 0 |]);
  let c1 = Typing.config ~sf:28. ~waterline:20. ~max_log_q:100. () in
  (match Typing.infer c1 Prog.Mul [| cipher 45. 1; cipher 45. 1 |] with
  | Ok _ -> Alcotest.fail "expected C1 violation"
  | Error d -> check code "C1 overflow" Diagnostic.Scale_overflow d.Diagnostic.code);
  (* kebab-case names are a stable contract (JSON output, repro headers) *)
  List.iter
    (fun c ->
      match Diagnostic.code_of_name (Diagnostic.code_name c) with
      | Some c' -> check code "code_name roundtrip" c c'
      | None -> Alcotest.failf "code %s does not round-trip" (Diagnostic.code_name c))
    [
      Diagnostic.Parse_error;
      Diagnostic.Invalid_program;
      Diagnostic.Operand_kind;
      Diagnostic.Scale_overflow;
      Diagnostic.Below_waterline;
      Diagnostic.Level_mismatch;
      Diagnostic.Scale_mismatch;
      Diagnostic.Level_exceeded;
      Diagnostic.Bad_upscale;
      Diagnostic.Bad_downscale;
      Diagnostic.Redundant_op;
      Diagnostic.Output_not_cipher;
      Diagnostic.Arity;
      Diagnostic.Precondition;
      Diagnostic.Already_managed;
      Diagnostic.Internal;
    ];
  check (Alcotest.option code) "unknown name" None (Diagnostic.code_of_name "no-such-code")

let test_check_fills_context () =
  (* an ill-typed op inside a provenance scope: the checker must name the op,
     its kind, operand types, and the surface chain *)
  let b = B.create ~name:"ill" ~slot_count:4 () in
  let x = B.input b "x" in
  let m = B.mul b x x in
  let deep =
    B.in_scope b "dot product" (fun () -> B.in_scope b "mul" (fun () -> B.mul b m m))
  in
  B.output b deep;
  let p = B.finish b in
  let cfg = Typing.config ~sf:28. ~waterline:20. ~max_log_q:60. () in
  match Typing.check cfg p with
  | Ok _ -> Alcotest.fail "expected C1 failure"
  | Error d ->
      check Alcotest.(option int) "op id" (Some 2) d.Diagnostic.op;
      check Alcotest.(option string) "op kind" (Some "mul") d.Diagnostic.op_kind;
      check Alcotest.int "operand types recorded" 2 (List.length d.Diagnostic.operand_types);
      (match d.Diagnostic.provenance with
      | Some prov ->
          check Alcotest.string "label" "mul" prov.Prog.label;
          check Alcotest.(list string) "context" [ "dot product" ] prov.Prog.context
      | None -> Alcotest.fail "diagnostic lacks provenance");
      check Alcotest.string "legacy prefix intact" "op 2: "
        (String.sub (Diagnostic.to_string d) 0 6);
      (* pretty and JSON renderings carry the code and the chain *)
      let pretty = Format.asprintf "%a" Diagnostic.pp d in
      check Alcotest.bool "pretty names code" true
        (Astring.String.is_infix ~affix:"error[scale-overflow]" pretty);
      check Alcotest.bool "pretty names chain" true
        (Astring.String.is_infix ~affix:"dot product > mul" pretty);
      let json = Diagnostic.to_json d in
      check Alcotest.bool "json code" true
        (Astring.String.is_infix ~affix:"\"code\":\"scale-overflow\"" json);
      check Alcotest.bool "json provenance" true
        (Astring.String.is_infix ~affix:"\"dot product\",\"mul\"" json)

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

let prov_prog () =
  let b = B.create ~name:"p" ~slot_count:8 () in
  let x = B.input b "x" in
  let m = B.in_scope b "square" (fun () -> B.mul b x x) in
  let r = B.in_scope b "outer" (fun () -> B.in_scope b "inner step" (fun () -> B.rotate b m 1)) in
  B.output b (B.add b m r);
  B.finish b

let test_provenance_recorded () =
  let p = prov_prog () in
  check Alcotest.(option string) "no scope, no prov" None
    (Option.map (fun pr -> pr.Prog.label) (Prog.op p 0).Prog.prov);
  (match (Prog.op p 1).Prog.prov with
  | Some pr ->
      check Alcotest.string "label" "square" pr.Prog.label;
      check Alcotest.(list string) "flat context" [] pr.Prog.context
  | None -> Alcotest.fail "scoped op lacks provenance");
  match (Prog.op p 2).Prog.prov with
  | Some pr ->
      check Alcotest.string "nested label" "inner step" pr.Prog.label;
      check Alcotest.(list string) "nested context" [ "outer" ] pr.Prog.context
  | None -> Alcotest.fail "nested scoped op lacks provenance"

let test_provenance_roundtrip () =
  let p = prov_prog () in
  (* default printing is provenance-free: golden pins and reproducers keep
     their byte-exact format *)
  check Alcotest.bool "default printing unchanged" false
    (Astring.String.is_infix ~affix:"!from" (Printer.to_string p));
  let text = Printer.to_string ~provenance:true p in
  check Alcotest.bool "comments emitted" true
    (Astring.String.is_infix ~affix:"# !from outer > inner step" text);
  let p' = Parser.parse text in
  check Alcotest.bool "structurally equal" true (Prog.equal p p');
  for i = 0 to Prog.num_ops p - 1 do
    match ((Prog.op p i).Prog.kind, (Prog.op p i).Prog.prov, (Prog.op p' i).Prog.prov) with
    | Prog.Input _, _, _ -> () (* signature line carries no comment *)
    | _, Some a, Some b ->
        check Alcotest.string (Printf.sprintf "op %d label" i) a.Prog.label b.Prog.label;
        check Alcotest.(list string) (Printf.sprintf "op %d context" i) a.Prog.context
          b.Prog.context
    | _, None, None -> ()
    | _, Some _, None -> Alcotest.failf "op %d lost provenance in roundtrip" i
    | _, None, Some _ -> Alcotest.failf "op %d gained provenance in roundtrip" i
  done;
  (* plain comments and headers never turn into provenance *)
  let p'' = Parser.parse (Printer.to_string p) in
  check Alcotest.bool "no spurious provenance" true
    (Array.for_all (fun (o : Prog.op) -> o.Prog.prov = None) p''.Prog.body)

let test_provenance_survives_passes () =
  let p = prov_prog () in
  let q = Passes.cse (Passes.dce p) in
  let labels prog =
    Array.to_list prog.Prog.body
    |> List.filter_map (fun (o : Prog.op) -> Option.map (fun pr -> pr.Prog.label) o.Prog.prov)
  in
  check Alcotest.(list string) "labels preserved" (labels p) (labels q)

let () =
  Alcotest.run "hecate_ir"
    [
      ( "types",
        [ Alcotest.test_case "basics" `Quick test_types_basics ] );
      ( "typing-rules",
        [
          Alcotest.test_case "rescale (Table I)" `Quick test_rule_rescale;
          Alcotest.test_case "rescale cipher-only" `Quick test_rule_rescale_cipher_only;
          Alcotest.test_case "modswitch (Table I)" `Quick test_rule_modswitch;
          Alcotest.test_case "downscale (Table I)" `Quick test_rule_downscale;
          Alcotest.test_case "upscale (Eq. 5)" `Quick test_rule_upscale;
          Alcotest.test_case "mul (Eq. 1)" `Quick test_rule_mul;
          Alcotest.test_case "add (Eq. 2)" `Quick test_rule_add;
          Alcotest.test_case "encode" `Quick test_rule_encode;
          Alcotest.test_case "C1 enforcement" `Quick test_rule_c1;
          Alcotest.test_case "level bound" `Quick test_rule_level_bound;
          qtest prop_downscale_rescale_disjoint;
        ] );
      ( "prog",
        [
          Alcotest.test_case "structure" `Quick test_prog_structure;
          Alcotest.test_case "use counts" `Quick test_prog_use_counts;
          Alcotest.test_case "users" `Quick test_prog_users;
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "validate input list" `Quick test_validate_input_list;
          Alcotest.test_case "structural equality" `Quick test_prog_equal;
          Alcotest.test_case "builder output required" `Quick test_builder_rejects_no_output;
        ] );
      ( "text",
        [
          Alcotest.test_case "parse" `Quick test_parse_basic;
          Alcotest.test_case "parse + typecheck" `Quick test_parse_typecheck;
          Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "comments and vectors" `Quick test_parse_comments_and_vectors;
        ] );
      ( "passes",
        [
          Alcotest.test_case "dce" `Quick test_dce;
          Alcotest.test_case "cse" `Quick test_cse;
          Alcotest.test_case "cse inputs distinct" `Quick test_cse_keeps_distinct_inputs;
          Alcotest.test_case "constant fold" `Quick test_constant_fold;
          Alcotest.test_case "constant fold rotate" `Quick test_constant_fold_rotate;
          Alcotest.test_case "early modswitch" `Quick test_early_modswitch;
          Alcotest.test_case "early modswitch blocked" `Quick test_early_modswitch_multiuse_blocked;
          Alcotest.test_case "early modswitch deep chain" `Quick test_early_modswitch_deep_chain;
          Alcotest.test_case "early modswitch shared operand" `Quick
            test_early_modswitch_shared_operand;
          Alcotest.test_case "finalize fixpoint deep chain" `Quick
            test_finalize_fixpoint_deep_chain;
          Alcotest.test_case "fold rotations chain" `Quick test_fold_rotations_chain;
          Alcotest.test_case "fold rotations cancel" `Quick test_fold_rotations_cancel;
          Alcotest.test_case "fold rotations multiuse" `Quick test_fold_rotations_multiuse_blocked;
          Alcotest.test_case "fold rotations semantics" `Quick test_fold_rotations_semantics;
        ] );
      ( "pass-manager",
        [
          Alcotest.test_case "registry" `Quick test_pm_registry;
          Alcotest.test_case "spec round-trip" `Quick test_pm_spec_roundtrip;
          Alcotest.test_case "spec rejects" `Quick test_pm_spec_rejects;
          Alcotest.test_case "cleanup pipeline" `Quick test_pm_runs_pipeline;
          Alcotest.test_case "nested fixpoint terminates" `Quick
            test_pm_fixpoint_terminates_when_clean;
          Alcotest.test_case "fold-rotations multiuse under fixpoint" `Quick
            test_pm_fold_rotations_multiuse_under_fixpoint;
          Alcotest.test_case "timing stats" `Quick test_pm_timing_stats;
          Alcotest.test_case "verifier names broken pass" `Quick
            test_pm_verifier_names_broken_pass;
          Alcotest.test_case "typecheck names ill-typed pass" `Quick
            test_pm_typecheck_names_illtyped_pass;
          Alcotest.test_case "dump selector" `Quick test_pm_dump_selector;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "codes per rule" `Quick test_diagnostic_codes;
          Alcotest.test_case "check fills context" `Quick test_check_fills_context;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "builder scopes" `Quick test_provenance_recorded;
          Alcotest.test_case "print/parse roundtrip" `Quick test_provenance_roundtrip;
          Alcotest.test_case "survives passes" `Quick test_provenance_survives_passes;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "buffer reuse" `Quick test_liveness_buffers;
          Alcotest.test_case "outputs live" `Quick test_liveness_outputs_live;
          Alcotest.test_case "wide program" `Quick test_liveness_wide_program;
        ] );
    ]
