(* Tests for the exploration portfolio (ISSUE 10): the shared memo never
   re-evaluates an incumbent, the race is deterministic across pool sizes
   and strategy-registration orders on every scheme, warm starts come from
   the plan corpus, and the differential-oracle gate rejects faulty
   strategies without letting their plans reach the caller or the cache. *)

module Prog = Hecate_ir.Prog
module Typing = Hecate_ir.Typing
module Diagnostic = Hecate_ir.Diagnostic
module B = Prog.Builder
module Codegen = Hecate.Codegen
module Smu = Hecate.Smu
module Explore = Hecate.Explore
module Estimator = Hecate.Estimator
module Paramselect = Hecate.Paramselect
module Costmodel = Hecate.Costmodel
module Driver = Hecate.Driver
module Plancache = Hecate.Plancache
module Oracle = Hecate_fuzz.Oracle

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let cfg = Typing.config ~sf:28. ~waterline:20. ()
let model = Costmodel.analytic ()

(* the running example of the paper: (x^2 + y^2)^3 *)
let fig2 () =
  let b = B.create ~name:"fig2" ~slot_count:8 () in
  let x = B.input b "x" and y = B.input b "y" in
  let z = B.add b (B.mul b x x) (B.mul b y y) in
  B.output b (B.mul b (B.mul b z z) z);
  B.finish b

(* A deeper fig2 variant, (x^2 + y^2)^7: unlike fig2 itself — whose
   finalization passes already reach the optimum, leaving an all-zero
   explore plan — its winning plan carries nonzero degrees, so the plan
   corpus has something portable to serve. *)
let fig2_pow ?(name = "fig2_pow") ?(x = "x") ?(y = "y") ?(dead = false) () =
  let b = B.create ~name ~slot_count:8 () in
  let x = B.input b x and y = B.input b y in
  if dead then ignore (B.add b x y);
  let z = B.add b (B.mul b x x) (B.mul b y y) in
  let rec pow k = if k = 1 then z else B.mul b (pow (k - 1)) z in
  B.output b (pow 7);
  B.finish b

(* An alpha variant: renamed function and inputs plus a dead derived op —
   same canonical DAG, so it shares [fig2_pow]'s fingerprint. *)
let fig2_pow_alpha () = fig2_pow ~name:"fig2_pow_alpha" ~x:"u" ~y:"v" ~dead:true ()

let fig2_codegen_evaluate () =
  let prog = fig2 () in
  let smu = Smu.generate prog in
  let codegen ~hook = fst (Driver.finalize ~cfg (Codegen.waterline cfg ~hook prog)) in
  let evaluate p =
    let types = Typing.check_exn cfg p in
    let params = Paramselect.select ~sf_bits:28 ~types ~slot_count:8 () in
    Estimator.estimate ~model ~params ~n:8192 p
  in
  (codegen, evaluate, smu.Smu.edges)

(* ------------------------------------------------------------------ *)
(* Shared memo: the incumbent is never re-evaluated                     *)
(* ------------------------------------------------------------------ *)

(* The synthetic 3-edge space of test_core's backoff test: the climb takes
   000 -> 100 -> 110 -> 111 -> 011 (five epochs, the last improving one a
   -1 move). The fake codegen encodes the plan into the op count
   (k = d0 + 4*d1 + 16*d2 rotations), so [num_ops] identifies the plan. *)
let backoff_edges =
  Array.init 3 (fun i -> { Smu.src = i; Smu.dst = i + 1; Smu.sites = [ (i, 0) ] })

let backoff_codegen ~hook =
  let d i = hook ~op_id:i ~operand:0 in
  let k = d 0 + (4 * d 1) + (16 * d 2) in
  let b = B.create ~slot_count:8 () in
  let x = B.input b "x" in
  let rec chain v j = if j = 0 then v else chain (B.rotate b v 1) (j - 1) in
  B.output b (chain x (k + 1));
  B.finish b

let backoff_cost p =
  match Prog.num_ops p - 2 with
  | 0 -> 10. (* 000 *)
  | 1 -> 9. (* 100 *)
  | 4 | 16 -> 9.5 (* 010, 001 *)
  | 5 -> 8. (* 110 *)
  | 21 -> 7. (* 111 *)
  | 20 -> 6. (* 011: only reachable from 111 by decrementing edge 0 *)
  | _ -> 100.

let test_no_incumbent_reevaluation () =
  (* Regression: with a warm memo, hill-climb used to re-score its own
     incumbent every epoch. Count evaluations per distinct plan — every
     one must be scored exactly once, and the total must equal
     [plans_explored] (every evaluation was fresh). *)
  let counts : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let evaluate p =
    let k = Prog.num_ops p in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k));
    backoff_cost p
  in
  let r = Explore.hill_climb ~codegen:backoff_codegen ~evaluate ~edges:backoff_edges () in
  check (Alcotest.array Alcotest.int) "search still finds the optimum" [| 0; 1; 1 |]
    r.Explore.best_plan;
  Hashtbl.iter
    (fun k n ->
      check Alcotest.int (Printf.sprintf "plan with %d ops evaluated exactly once" k) 1 n)
    counts;
  let total = Hashtbl.fold (fun _ n acc -> n + acc) counts 0 in
  check Alcotest.int "every evaluation was fresh" r.Explore.plans_explored total;
  (* Pin the exact count: base (1) plus the fresh part of each visited
     neighbourhood (3+3+3+4+2). The incumbent-re-evaluation bug inflated
     this by one per epoch. *)
  check Alcotest.int "evaluation count pinned" 16 total;
  check Alcotest.bool "revisits served from the memo" true (r.Explore.cache_hits > 0)

(* ------------------------------------------------------------------ *)
(* Determinism: pool size and registration order are invisible          *)
(* ------------------------------------------------------------------ *)

(* Deterministic Fisher-Yates on a seeded LCG (no Random state leaks). *)
let shuffle seed l =
  let a = Array.of_list l in
  let state = ref (seed * 2 + 1) in
  let next bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  for i = Array.length a - 1 downto 1 do
    let j = next (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let portfolio_order_and_pool_invariant =
  let codegen, evaluate, edges = fig2_codegen_evaluate () in
  let run ~strategies ~pool_size =
    Explore.portfolio ~codegen ~evaluate ~edges ~strategies ~max_epochs:8 ~pool_size ()
  in
  let reference = lazy (run ~strategies:(Explore.strategy_names ()) ~pool_size:1) in
  QCheck.Test.make ~count:6
    ~name:"portfolio: any pool size and strategy order matches the serial run"
    QCheck.(pair (int_range 1 4) (int_range 0 10_000))
    (fun (pool_size, perm_seed) ->
      let reference = Lazy.force reference in
      let r = run ~strategies:(shuffle perm_seed (Explore.strategy_names ())) ~pool_size in
      r.Explore.p_winner = reference.Explore.p_winner
      && r.Explore.p_best_cost = reference.Explore.p_best_cost
      && r.Explore.p_best_plan = reference.Explore.p_best_plan
      && r.Explore.p_plans_explored = reference.Explore.p_plans_explored
      && List.map (fun (s : Explore.strategy_stats) -> (s.Explore.strategy, s.Explore.s_best_cost))
           r.Explore.p_strategies
         = List.map (fun (s : Explore.strategy_stats) -> (s.Explore.strategy, s.Explore.s_best_cost))
             reference.Explore.p_strategies)

let portfolio_schemes_invariant =
  (* Driver-level: on all four schemes, a parallel portfolio compile is
     bit-identical to the serial one (Eva/Pars have no exploration — their
     equality is the trivial case the property also covers). *)
  let serial =
    lazy
      (List.map
         (fun scheme ->
           Driver.compile ~pool_size:1 ~strategy:Explore.portfolio_name scheme ~sf_bits:28
             ~waterline_bits:20. (fig2 ()))
         Driver.all_schemes)
  in
  QCheck.Test.make ~count:3 ~name:"portfolio via Driver: parallel = serial on all schemes"
    QCheck.(int_range 2 4)
    (fun pool_size ->
      List.for_all2
        (fun scheme (serial : Driver.compiled) ->
          let par =
            Driver.compile ~pool_size ~strategy:Explore.portfolio_name scheme ~sf_bits:28
              ~waterline_bits:20. (fig2 ())
          in
          serial.Driver.estimated_seconds = par.Driver.estimated_seconds
          && Hecate_ir.Printer.to_string serial.Driver.prog
             = Hecate_ir.Printer.to_string par.Driver.prog
          &&
          match (serial.Driver.exploration, par.Driver.exploration) with
          | None, None -> true
          | Some a, Some b ->
              a.Driver.strategy = b.Driver.strategy
              && a.Driver.best_plan = b.Driver.best_plan
              && a.Driver.plans_explored = b.Driver.plans_explored
          | _ -> false)
        Driver.all_schemes (Lazy.force serial))

(* ------------------------------------------------------------------ *)
(* Warm start from the plan corpus                                      *)
(* ------------------------------------------------------------------ *)

let test_warm_start_from_plan_corpus () =
  let cache = Plancache.create () in
  (* Seed the corpus: a default-strategy (hill-climb) compile. *)
  let entry_a, origin_a =
    Plancache.compile cache ~scheme:Driver.Hecate ~sf_bits:28 ~waterline_bits:20.
      (fig2_pow ())
  in
  check Alcotest.string "seed compile is cold" "cold" (Plancache.origin_name origin_a);
  check Alcotest.bool "seed entry carries a portable plan" true
    (entry_a.Plancache.keyed_plan <> []);
  check Alcotest.string "the alpha variant shares the seed's fingerprint"
    entry_a.Plancache.fingerprint
    (Prog.fingerprint
       (Hecate_ir.Pass_manager.run Hecate_ir.Pass_manager.cleanup (fig2_pow_alpha ())));
  (* Driver-level evidence: handed the corpus plan, the portfolio starts
     from it — the opening batch, not any epoch, already beats the
     all-zero waterline base plan. *)
  let warm =
    Plancache.warm_plans cache ~fingerprint:entry_a.Plancache.fingerprint
      ~structure:entry_a.Plancache.structure ~scheme:Driver.Hecate ~sf_bits:28 ()
  in
  check Alcotest.bool "the corpus serves the seed plan" true (warm <> []);
  let warmed =
    Driver.compile ~strategy:Explore.portfolio_name ~warm_plans:warm Driver.Hecate ~sf_bits:28
      ~waterline_bits:20. (fig2_pow_alpha ())
  in
  let e = Option.get warmed.Driver.exploration in
  check Alcotest.bool "warm start beat the waterline base plan" true e.Driver.seeded;
  (* Cache-level evidence: a warm-started portfolio compile of the alpha
     variant produces the byte-identical artifact of a cold one, and its
     first epoch already reports the seeded cost. *)
  let first_cost r ~strategy:_ (t : Explore.epoch_trace) =
    if !r = None then r := Some t.Explore.best_cost
  in
  let warm_first = ref None in
  let entry_b, origin_b =
    Plancache.compile cache ~on_epoch:(first_cost warm_first)
      ~strategy:Explore.portfolio_name ~scheme:Driver.Hecate ~sf_bits:28 ~waterline_bits:20.
      (fig2_pow_alpha ())
  in
  check Alcotest.string "portfolio key is distinct from the seed's" "cold"
    (Plancache.origin_name origin_b);
  let cold_first = ref None in
  let entry_c, _ =
    Plancache.compile (Plancache.create ()) ~on_epoch:(first_cost cold_first)
      ~strategy:Explore.portfolio_name ~scheme:Driver.Hecate ~sf_bits:28 ~waterline_bits:20.
      (fig2_pow_alpha ())
  in
  check Alcotest.string "byte-identical final artifact" entry_c.Plancache.artifact
    entry_b.Plancache.artifact;
  check Alcotest.bool "first epoch starts at or below the cold run's" true
    (Option.get !warm_first <= Option.get !cold_first)

(* ------------------------------------------------------------------ *)
(* Oracle gate                                                          *)
(* ------------------------------------------------------------------ *)

let test_gate_passes_honest_portfolio () =
  let prog = fig2 () in
  let gate = Oracle.explorer_gate ~sf_bits:28 ~waterline_bits:20. prog in
  let c =
    Driver.compile ~strategy:Explore.portfolio_name ~gate Driver.Hecate ~sf_bits:28
      ~waterline_bits:20. prog
  in
  let e = Option.get c.Driver.exploration in
  List.iter
    (fun (s : Explore.strategy_stats) ->
      match s.Explore.s_gate with
      | Explore.Gate_passed -> ()
      | Explore.Not_gated -> Alcotest.failf "%s was not gated" s.Explore.strategy
      | Explore.Gate_rejected f ->
          Alcotest.failf "%s rejected at %s: %s" s.Explore.strategy f.Explore.failed_check
            f.Explore.failed_detail)
    e.Driver.strategies

let test_gate_rejects_everything () =
  (* A gate that rejects every plan: the portfolio must raise a
     diagnostic with code oracle-rejected, and nothing may be cached. *)
  let reject ~strategy:_ ~plan:_ _ =
    Error
      {
        Explore.failed_check = "accuracy";
        failed_code = None;
        failed_detail = "synthetic rejection";
      }
  in
  let cache = Plancache.create () in
  (match
     Plancache.compile cache ~gate:reject ~scheme:Driver.Hecate ~sf_bits:28
       ~waterline_bits:20. (fig2 ())
   with
  | _ -> Alcotest.fail "expected Diagnostic.Error Oracle_rejected"
  | exception Diagnostic.Error d ->
      check Alcotest.string "diagnostic code" "oracle-rejected"
        (Diagnostic.code_name d.Diagnostic.code));
  check Alcotest.int "nothing the oracle rejected entered the cache" 0
    (Plancache.memory_size cache)

(* A strategy that lies: it claims an unbeatable cost for the all-zero
   plan, so absent the gate it would win the race. The oracle transform
   hook then corrupts exactly this strategy's winner into a mis-scaled
   program (an add of unequal scales, the C3 violation), so the portfolio
   must reject it, fall back to the best honest strategy, and record the
   diagnostic. Registered under a name sorting last so every other
   strategy keeps its usual trace order. *)
let liar = "zz-liar"

let register_liar () =
  Explore.register_strategy ~name:liar
    (fun ~params:_ ~eval:_ ~edges ~base:_ ~seeds:_ () ->
      {
        (* all-ones: distinct from every honest winner (fig2's is the
           all-zero plan), so the verdict is not shared via the
           per-plan dedup *)
        Explore.step_plan = Array.make (Array.length edges) 1;
        step_cost = 0.;
        step_prog = None;
        step_candidates = 0;
        step_hits = 0;
        step_improved = true;
        step_finished = true;
      })

(* scale(x*x) = 56 <> scale(x) = 28: Typing rejects the add (C3). *)
let mis_scaled () =
  let b = B.create ~name:"mis_scaled" ~slot_count:8 () in
  let x = B.input b "x" in
  B.output b (B.add b (B.mul b x x) x);
  B.finish b

let test_gate_rejects_faulty_strategy () =
  register_liar ();
  let prog = fig2 () in
  let transform ~strategy p = if strategy = liar then mis_scaled () else p in
  let gate = Oracle.explorer_gate ~transform ~sf_bits:28 ~waterline_bits:20. prog in
  let codegen, evaluate, edges = fig2_codegen_evaluate () in
  let r =
    Explore.portfolio ~codegen ~evaluate ~edges
      ~strategies:(liar :: Explore.strategy_names ())
      ~max_epochs:8 ~gate ()
  in
  check Alcotest.bool "the liar did not win" true (r.Explore.p_winner <> liar);
  let stats name =
    List.find (fun (s : Explore.strategy_stats) -> s.Explore.strategy = name)
      r.Explore.p_strategies
  in
  (match (stats liar).Explore.s_gate with
  | Explore.Gate_rejected f ->
      check Alcotest.bool "the failed check is recorded" true (f.Explore.failed_check <> "");
      check Alcotest.bool "the diagnostic code is recorded" true
        (f.Explore.failed_code <> None)
  | Explore.Gate_passed | Explore.Not_gated ->
      Alcotest.fail "the liar's corrupted winner passed the gate");
  (match (stats r.Explore.p_winner).Explore.s_gate with
  | Explore.Gate_passed -> ()
  | _ -> Alcotest.fail "the fallback winner did not pass the gate");
  (* and absent the gate, the liar's claimed cost would have won *)
  let ungated =
    Explore.portfolio ~codegen ~evaluate ~edges
      ~strategies:(liar :: Explore.strategy_names ())
      ~max_epochs:8 ()
  in
  check Alcotest.string "without the gate the liar wins the race" liar
    ungated.Explore.p_winner

let () =
  Alcotest.run "explore"
    [
      ( "memo",
        [ Alcotest.test_case "incumbent never re-evaluated" `Quick
            test_no_incumbent_reevaluation ] );
      ( "determinism",
        [ qtest portfolio_order_and_pool_invariant; qtest portfolio_schemes_invariant ] );
      ( "warm-start",
        [ Alcotest.test_case "portfolio warm-starts from the plan corpus" `Quick
            test_warm_start_from_plan_corpus ] );
      ( "oracle-gate",
        [
          Alcotest.test_case "honest winners pass" `Quick test_gate_passes_honest_portfolio;
          Alcotest.test_case "all-rejected raises and caches nothing" `Quick
            test_gate_rejects_everything;
          Alcotest.test_case "faulty strategy rejected, fallback recorded" `Quick
            test_gate_rejects_faulty_strategy;
        ] );
    ]
