(* Tests for the serving stack: canonical fingerprints, the
   content-addressed plan cache (LRU / disk / single-flight), the job
   protocol, and an end-to-end daemon session over a Unix socket. *)

module Prog = Hecate_ir.Prog
module Parser = Hecate_ir.Parser
module Printer = Hecate_ir.Printer
module Driver = Hecate.Driver
module Plancache = Hecate.Plancache
module Explore = Hecate.Explore
module Protocol = Hecate_serve.Protocol
module Server = Hecate_serve.Server
module Client = Hecate_serve.Client
module Json = Hecate_support.Json
module Gen = Hecate_fuzz.Gen

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let fig2 () = Parser.parse_file "../examples/fig2.hec"

let with_temp_dir f =
  let dir = Filename.temp_file "hecate_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Canonical fingerprints                                              *)
(* ------------------------------------------------------------------ *)

(* Two constructions of the same DAG: different value names, a permuted
   construction order, an extra dead op and provenance scopes on one
   side. Alpha-equivalent -> same fingerprint. *)
let test_fingerprint_alpha_equivalence () =
  let a =
    let b = Prog.Builder.create ~slot_count:16 () in
    let x = Prog.Builder.input b "x" in
    let y = Prog.Builder.input b "y" in
    let t1 = Prog.Builder.mul b x x in
    let t2 = Prog.Builder.mul b y y in
    Prog.Builder.output b (Prog.Builder.add b t1 t2);
    Prog.Builder.finish b
  in
  let b =
    let b = Prog.Builder.create ~name:"other" ~slot_count:16 () in
    Prog.Builder.in_scope b "noise" @@ fun () ->
    let u = Prog.Builder.input b "u" in
    let v = Prog.Builder.input b "v" in
    let t2 = Prog.Builder.mul b v v in
    ignore (Prog.Builder.mul b u v) (* dead: dropped by canonicalization *);
    let t1 = Prog.Builder.mul b u u in
    Prog.Builder.output b (Prog.Builder.add b t1 t2);
    Prog.Builder.finish b
  in
  let c =
    let b = Prog.Builder.create ~slot_count:16 () in
    let x = Prog.Builder.input b "x" in
    let y = Prog.Builder.input b "y" in
    let t1 = Prog.Builder.mul b x x in
    let t2 = Prog.Builder.mul b y y in
    Prog.Builder.output b (Prog.Builder.sub b t1 t2);
    Prog.Builder.finish b
  in
  check Alcotest.string "alpha-equivalent programs collide" (Prog.fingerprint a)
    (Prog.fingerprint b);
  check Alcotest.bool "distinct programs differ" false
    (String.equal (Prog.fingerprint a) (Prog.fingerprint c))

let test_fingerprint_slot_count_matters () =
  let build slots =
    let b = Prog.Builder.create ~slot_count:slots () in
    let x = Prog.Builder.input b "x" in
    Prog.Builder.output b (Prog.Builder.mul b x x);
    Prog.Builder.finish b
  in
  check Alcotest.bool "slot count is part of the address" false
    (String.equal (Prog.fingerprint (build 16)) (Prog.fingerprint (build 32)))

let prop_fingerprint_survives_roundtrip =
  QCheck.Test.make ~name:"fingerprint survives print/parse" ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let case = Gen.generate ~seed () in
      let p = case.Gen.prog in
      let fp = Prog.fingerprint p in
      let reparsed = Parser.parse (Printer.to_string p) in
      String.equal fp (Prog.fingerprint reparsed))

let prop_canonicalize_idempotent =
  QCheck.Test.make ~name:"canonicalize is idempotent and valid" ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p = (Gen.generate ~seed ()).Gen.prog in
      let c = Prog.canonicalize p in
      (match Prog.validate c with Ok () -> true | Error _ -> false)
      && String.equal (Prog.fingerprint p) (Prog.fingerprint c))

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

let compile_cached cache scheme prog =
  Plancache.compile cache ~scheme ~sf_bits:28 ~waterline_bits:20. prog

(* A warm hit must return the byte-identical artifact of a direct
   compile, for every scheme, without re-running exploration. *)
let test_cache_hit_bit_identical () =
  let prog = fig2 () in
  List.iter
    (fun scheme ->
      let cache = Plancache.create () in
      let direct = Driver.compile scheme ~sf_bits:28 ~waterline_bits:20. prog in
      let cold, o1 = compile_cached cache scheme prog in
      let warm, o2 = compile_cached cache scheme prog in
      let name = Driver.scheme_name scheme in
      check Alcotest.string (name ^ " cold origin") "cold" (Plancache.origin_name o1);
      check Alcotest.string (name ^ " warm origin") "memory" (Plancache.origin_name o2);
      check Alcotest.string (name ^ " cold = direct")
        (Printer.to_string direct.Driver.prog)
        cold.Plancache.artifact;
      check Alcotest.string (name ^ " warm = cold") cold.Plancache.artifact
        warm.Plancache.artifact)
    Driver.all_schemes

(* Alpha-equivalent submissions share one entry. *)
let test_cache_alpha_equivalent_hit () =
  let prog = fig2 () in
  let renamed = Parser.parse (Printer.to_string prog) in
  let cache = Plancache.create () in
  let _, o1 = compile_cached cache Driver.Hecate prog in
  let _, o2 = compile_cached cache Driver.Hecate renamed in
  check Alcotest.string "reparsed program hits" "memory" (Plancache.origin_name o2);
  check Alcotest.string "first was cold" "cold" (Plancache.origin_name o1)

let test_cache_disk_roundtrip () =
  with_temp_dir @@ fun dir ->
  let prog = fig2 () in
  let cache1 = Plancache.create ~dir () in
  let cold, _ = compile_cached cache1 Driver.Hecate prog in
  (* a different process: fresh in-memory state, same directory *)
  let cache2 = Plancache.create ~dir () in
  let warm, origin = compile_cached cache2 Driver.Hecate prog in
  check Alcotest.string "origin is disk" "disk" (Plancache.origin_name origin);
  check Alcotest.string "artifact identical" cold.Plancache.artifact warm.Plancache.artifact;
  check Alcotest.string "plan identical"
    (String.concat ","
       (List.map string_of_int (Array.to_list (Option.value ~default:[||] cold.Plancache.plan))))
    (String.concat ","
       (List.map string_of_int (Array.to_list (Option.value ~default:[||] warm.Plancache.plan))))

let test_cache_key_sensitivity () =
  let prog = fig2 () in
  let k scheme sf wl me = Plancache.key ~scheme ~sf_bits:sf ~waterline_bits:wl ~max_epochs:me prog in
  let base = k Driver.Hecate 28 20. 100 in
  check Alcotest.bool "scheme changes key" false (String.equal base (k Driver.Eva 28 20. 100));
  check Alcotest.bool "sf changes key" false (String.equal base (k Driver.Hecate 30 20. 100));
  check Alcotest.bool "waterline changes key" false
    (String.equal base (k Driver.Hecate 28 24. 100));
  check Alcotest.bool "budget changes key" false
    (String.equal base (k Driver.Hecate 28 20. 50));
  check Alcotest.string "stable otherwise" base (k Driver.Hecate 28 20. 100)

let test_cache_lru_eviction () =
  let cache = Plancache.create ~capacity:2 () in
  let seed_cache = Plancache.create () in
  let base, _ = compile_cached seed_cache Driver.Eva (fig2 ()) in
  let entry key = { base with Plancache.key } in
  Plancache.add cache (entry "k1");
  Plancache.add cache (entry "k2");
  check Alcotest.int "at capacity" 2 (Plancache.memory_size cache);
  (* touch k1 so k2 is the least recently used *)
  ignore (Plancache.find cache "k1");
  Plancache.add cache (entry "k3");
  check Alcotest.int "bounded" 2 (Plancache.memory_size cache);
  check Alcotest.bool "recently used survives" true (Plancache.find cache "k1" <> None);
  check Alcotest.bool "LRU evicted" true (Plancache.find cache "k2" = None);
  let s = Plancache.snapshot cache in
  check Alcotest.int "eviction counted" 1 s.Plancache.s_evictions

let test_cache_single_flight () =
  let cache = Plancache.create () in
  let seed_cache = Plancache.create () in
  let base, _ = compile_cached seed_cache Driver.Eva (fig2 ()) in
  let entry = { base with Plancache.key = "single-flight" } in
  let computes = Atomic.make 0 in
  let compute () =
    Atomic.incr computes;
    Unix.sleepf 0.08;
    (entry, true)
  in
  let run () = Plancache.find_or_compute cache "single-flight" ~compute in
  let domains = List.init 4 (fun _ -> Domain.spawn run) in
  let results = List.map Domain.join domains in
  check Alcotest.int "one exploration for n requests" 1 (Atomic.get computes);
  let count o =
    List.length
      (List.filter (fun (_, o') -> Plancache.origin_name o' = o) results)
  in
  check Alcotest.int "one cold" 1 (count "cold");
  check Alcotest.int "rest joined" 3 (count "joined");
  List.iter
    (fun (e, _) -> check Alcotest.string "same artifact" entry.Plancache.artifact e.Plancache.artifact)
    results

(* A compute that declares its result transient (budget-truncated) must
   not poison the cache. *)
let test_cache_transient_not_stored () =
  let cache = Plancache.create () in
  let seed_cache = Plancache.create () in
  let base, _ = compile_cached seed_cache Driver.Eva (fig2 ()) in
  let entry = { base with Plancache.key = "truncated" } in
  let e, origin = Plancache.find_or_compute cache "truncated" ~compute:(fun () -> (entry, false)) in
  check Alcotest.string "returned to the requester" entry.Plancache.artifact e.Plancache.artifact;
  check Alcotest.string "computed cold" "cold" (Plancache.origin_name origin);
  check Alcotest.bool "not cached" true (Plancache.find cache "truncated" = None)

let test_cache_entry_json_roundtrip () =
  let seed_cache = Plancache.create () in
  let entry, _ = compile_cached seed_cache Driver.Hecate (fig2 ()) in
  match Plancache.entry_of_json (Json.parse (Json.render (Plancache.entry_to_json entry))) with
  | None -> Alcotest.fail "entry JSON did not round-trip"
  | Some e ->
      check Alcotest.string "key" entry.Plancache.key e.Plancache.key;
      check Alcotest.string "artifact" entry.Plancache.artifact e.Plancache.artifact;
      check Alcotest.bool "plan" true (entry.Plancache.plan = e.Plancache.plan);
      check Alcotest.bool "params" true (entry.Plancache.params = e.Plancache.params)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_request_roundtrip () =
  let reqs =
    [
      Protocol.Submit
        {
          Protocol.program = "func f(%0 \"x\")\n";
          scheme = Driver.Smse;
          sf_bits = 30;
          waterline_bits = 22.;
          max_epochs = 40;
          budget_seconds = Some 1.5;
          strategy = Some "portfolio";
          stream = true;
        };
      Protocol.Submit
        {
          Protocol.program = "func g(%0 \"y\")\n";
          scheme = Driver.Hecate;
          sf_bits = 28;
          waterline_bits = 20.;
          max_epochs = 100;
          budget_seconds = None;
          strategy = None;
          stream = false;
        };
      Protocol.Status 7;
      Protocol.Cancel 9;
      Protocol.Stats;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      match Protocol.parse_request (Protocol.render_request r) with
      | Ok r' -> check Alcotest.bool "roundtrips" true (r = r')
      | Error msg -> Alcotest.fail msg)
    reqs

let test_protocol_request_errors () =
  let err line =
    match Protocol.parse_request line with Error _ -> true | Ok _ -> false
  in
  check Alcotest.bool "garbage" true (err "not json");
  check Alcotest.bool "missing op" true (err {|{"program":"x"}|});
  check Alcotest.bool "unknown op" true (err {|{"op":"frobnicate"}|});
  check Alcotest.bool "bad scheme" true (err {|{"op":"submit","program":"x","scheme":"rsa"}|});
  check Alcotest.bool "missing job id" true (err {|{"op":"cancel"}|})

let test_protocol_done_event () =
  let seed_cache = Plancache.create () in
  let entry, _ = compile_cached seed_cache Driver.Hecate (fig2 ()) in
  let line = Protocol.done_ ~job:3 ~origin:Plancache.Memory ~wall_seconds:0.25 entry in
  match Protocol.parse_event line with
  | Ok (Protocol.Done r) ->
      check Alcotest.int "job" 3 r.Protocol.job;
      check Alcotest.string "origin" "memory" r.Protocol.origin;
      check Alcotest.string "artifact" entry.Plancache.artifact r.Protocol.artifact;
      check Alcotest.string "fingerprint" entry.Plancache.fingerprint r.Protocol.fingerprint;
      check (Alcotest.float 1e-9) "wall" 0.25 r.Protocol.wall_seconds;
      check Alcotest.int "ring degree" entry.Plancache.params.Hecate.Paramselect.secure_n
        r.Protocol.secure_n
  | Ok _ -> Alcotest.fail "decoded as a different event"
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* End-to-end daemon session                                           *)
(* ------------------------------------------------------------------ *)

let submit_fig2 ?budget_seconds ?(scheme = Driver.Hecate) () =
  let program =
    let ic = open_in_bin "../examples/fig2.hec" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  {
    Protocol.program;
    scheme;
    sf_bits = 28;
    waterline_bits = 20.;
    max_epochs = 100;
    budget_seconds;
    strategy = None;
    stream = false;
  }

let with_server ?(oracle = false) f =
  with_temp_dir @@ fun dir ->
  let sock = Filename.concat dir "hecated.sock" in
  let cache = Plancache.create () in
  let server = Server.create ~workers:2 ~oracle cache in
  let th = Thread.create (fun () -> Server.serve server ~socket_path:sock) () in
  let rec await n =
    if Sys.file_exists sock then ()
    else if n = 0 then Alcotest.fail "server socket never appeared"
    else begin
      Thread.delay 0.01;
      await (n - 1)
    end
  in
  await 500;
  Fun.protect
    ~finally:(fun () ->
      ignore (Client.shutdown ~socket:sock);
      Thread.join th)
    (fun () -> f sock)

let test_server_end_to_end () =
  with_server @@ fun sock ->
  let get label = function
    | Ok o -> o
    | Error msg -> Alcotest.fail (label ^ ": " ^ msg)
  in
  let cold = get "cold" (Client.compile ~socket:sock (submit_fig2 ())) in
  let warm = get "warm" (Client.compile ~socket:sock (submit_fig2 ())) in
  check Alcotest.string "cold origin" "cold" cold.Client.result.Protocol.origin;
  check Alcotest.string "warm origin" "memory" warm.Client.result.Protocol.origin;
  check Alcotest.string "artifacts identical"
    cold.Client.result.Protocol.artifact warm.Client.result.Protocol.artifact;
  check Alcotest.bool "artifact non-empty" true
    (String.length cold.Client.result.Protocol.artifact > 0);
  (* a parse error must come back as a protocol error, not kill the session *)
  (match
     Client.compile ~socket:sock
       { (submit_fig2 ()) with Protocol.program = "this is not a program" }
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed program should fail");
  match Client.stats ~socket:sock with
  | Error msg -> Alcotest.fail msg
  | Ok json ->
      let cache_hits =
        Option.value ~default:(-1)
          (Json.to_int (Json.member "hits_memory" (Json.member "cache" json)))
      in
      check Alcotest.bool "stats report the hit" true (cache_hits >= 1)

let test_server_oracle_portfolio () =
  (* The daemon with --oracle serves a streamed portfolio job: progress
     events carry per-strategy tags, the winner is recorded, and the
     result entered the cache only because it survived the gate. *)
  with_server ~oracle:true @@ fun sock ->
  let seen = Hashtbl.create 8 in
  let on_progress ~strategy ~epoch:_ ~best_cost:_ = Hashtbl.replace seen strategy () in
  let submit =
    { (submit_fig2 ()) with Protocol.strategy = Some "portfolio"; stream = true }
  in
  match Client.compile ~socket:sock ~on_progress submit with
  | Error msg -> Alcotest.fail msg
  | Ok o ->
      check Alcotest.string "gated compile is cold" "cold" o.Client.result.Protocol.origin;
      check Alcotest.bool "winner strategy recorded" true
        (o.Client.result.Protocol.winner_strategy <> "");
      check Alcotest.bool "progress events tagged by strategy" true
        (Hashtbl.length seen >= 2);
      (match Client.compile ~socket:sock submit with
      | Error msg -> Alcotest.fail msg
      | Ok warm ->
          check Alcotest.string "gated result was cached" "memory"
            warm.Client.result.Protocol.origin;
          check Alcotest.string "byte-identical artifact"
            o.Client.result.Protocol.artifact warm.Client.result.Protocol.artifact)

let test_server_budget_is_transient () =
  with_server @@ fun sock ->
  (* a hopeless budget: the exploring scheme is cancelled before any work *)
  (match Client.compile ~socket:sock (submit_fig2 ~budget_seconds:(-1.0) ()) with
  | Error _ -> ()
  | Ok o ->
      (* anytime semantics may still return a best-so-far result; it must
         not have been cached as the full-budget answer *)
      check Alcotest.string "truncated result is not a hit" "cold"
        o.Client.result.Protocol.origin);
  match Client.compile ~socket:sock (submit_fig2 ()) with
  | Error msg -> Alcotest.fail msg
  | Ok o ->
      check Alcotest.string "full compile is still cold" "cold"
        o.Client.result.Protocol.origin

let () =
  Alcotest.run "hecate_serve"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "alpha equivalence" `Quick test_fingerprint_alpha_equivalence;
          Alcotest.test_case "slot count matters" `Quick test_fingerprint_slot_count_matters;
          qtest prop_fingerprint_survives_roundtrip;
          qtest prop_canonicalize_idempotent;
        ] );
      ( "plancache",
        [
          Alcotest.test_case "hit is bit-identical (all schemes)" `Quick
            test_cache_hit_bit_identical;
          Alcotest.test_case "alpha-equivalent submissions hit" `Quick
            test_cache_alpha_equivalent_hit;
          Alcotest.test_case "disk roundtrip" `Quick test_cache_disk_roundtrip;
          Alcotest.test_case "key sensitivity" `Quick test_cache_key_sensitivity;
          Alcotest.test_case "LRU eviction bounds" `Quick test_cache_lru_eviction;
          Alcotest.test_case "single flight" `Quick test_cache_single_flight;
          Alcotest.test_case "transient results not stored" `Quick
            test_cache_transient_not_stored;
          Alcotest.test_case "entry JSON roundtrip" `Quick test_cache_entry_json_roundtrip;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_protocol_request_roundtrip;
          Alcotest.test_case "request errors" `Quick test_protocol_request_errors;
          Alcotest.test_case "done event" `Quick test_protocol_done_event;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end over a socket" `Quick test_server_end_to_end;
          Alcotest.test_case "oracle-gated portfolio job" `Quick test_server_oracle_portfolio;
          Alcotest.test_case "budget-truncated is transient" `Quick
            test_server_budget_is_transient;
        ] );
    ]
