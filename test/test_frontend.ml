(* Tests for the DSL and its packing helpers, validated against the exact
   plaintext reference interpreter, and for scale/level inference over DSL
   programs (no manual scale management anywhere in this file). *)

module Dsl = Hecate_frontend.Dsl
module Infer = Hecate_frontend.Infer
module Ref = Hecate_backend.Reference
module Prog = Hecate_ir.Prog
module Printer = Hecate_ir.Printer
module Typing = Hecate_ir.Typing
module Pass_manager = Hecate_ir.Pass_manager
module Diagnostic = Hecate_ir.Diagnostic
module Driver = Hecate.Driver
module Prng = Hecate_support.Prng
module Stats = Hecate_support.Stats

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let run1 prog inputs = List.hd (Ref.execute prog ~inputs)

let close = Alcotest.float 1e-9

let test_arith () =
  let d = Dsl.create ~slot_count:8 () in
  let x = Dsl.input d "x" in
  let e = Dsl.sub d (Dsl.add d (Dsl.square d x) x) (Dsl.const_scalar d 1.) in
  Dsl.output d (Dsl.neg d e);
  let out = run1 (Dsl.finish d) [ ("x", [| 2.; -1.; 0.; 3.; 0.; 0.; 0.; 0. |]) ] in
  (* -(x^2 + x - 1) *)
  check close "slot0" (-5.) out.(0);
  check close "slot1" 1. out.(1);
  check close "slot2" 1. out.(2);
  check close "slot3" (-11.) out.(3)

let test_rotate_normalization () =
  let d = Dsl.create ~slot_count:8 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.rotate d x (-3));
  let out = run1 (Dsl.finish d) [ ("x", Array.init 8 float_of_int) ] in
  (* right rotation by 3: slot i holds x[(i - 3) mod 8] = x[i+5 mod 8] *)
  check close "wrap" 5. out.(0);
  check close "shifted" 0. out.(3)

let test_rotate_zero_emits_nothing () =
  let d = Dsl.create ~slot_count:8 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.add d (Dsl.rotate d x 0) (Dsl.rotate d x 8));
  let p = Dsl.finish d in
  let rotations =
    Array.fold_left
      (fun n (o : Prog.op) -> match o.Prog.kind with Prog.Rotate _ -> n + 1 | _ -> n)
      0 p.Prog.body
  in
  check Alcotest.int "no rotate ops" 0 rotations

let test_add_many_balanced () =
  let d = Dsl.create ~slot_count:4 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.add_many d (List.init 7 (fun i -> Dsl.scale_by d x (float_of_int (i + 1)))));
  let out = run1 (Dsl.finish d) [ ("x", [| 1.; 2.; 0.; 0. |]) ] in
  check close "sum of 1..7 times x" 28. out.(0);
  check close "slot1" 56. out.(1)

let test_reduce_sum_windows () =
  let d = Dsl.create ~slot_count:16 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.reduce_sum d x ~width:4);
  let out = run1 (Dsl.finish d) [ ("x", Array.init 16 float_of_int) ] in
  (* sliding windows: slot i = x_i + .. + x_(i+3) *)
  check close "window at 0" 6. out.(0);
  check close "window at 3" 18. out.(3);
  check close "window wraps" (14. +. 15. +. 0. +. 1.) out.(14)

let test_reduce_sum_total () =
  let d = Dsl.create ~slot_count:16 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.reduce_sum d x ~width:16);
  let out = run1 (Dsl.finish d) [ ("x", Array.init 16 float_of_int) ] in
  Array.iter (fun v -> check close "total everywhere" 120. v) out

let test_replicate () =
  let d = Dsl.create ~slot_count:16 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.replicate d x ~width:4);
  let out = run1 (Dsl.finish d) [ ("x", [| 9.; 8.; 7.; 6. |]) ] in
  for b = 0 to 3 do
    check close "copies" 9. out.(4 * b);
    check close "copies tail" 6. out.((4 * b) + 3)
  done

let test_mask () =
  let d = Dsl.create ~slot_count:8 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.mask d x (fun i -> i mod 2 = 0));
  let out = run1 (Dsl.finish d) [ ("x", Array.make 8 3.) ] in
  check close "kept" 3. out.(0);
  check close "zeroed" 0. out.(1)

let test_matvec_identity () =
  let d = Dsl.create ~slot_count:16 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.matvec d ~rows:4 ~cols:4 (fun j i -> if i = j then 1. else 0.) x);
  let v = [| 3.; 1.; 4.; 1.5 |] in
  let out = run1 (Dsl.finish d) [ ("x", v) ] in
  Array.iteri (fun i e -> check close (Printf.sprintf "slot %d" i) e out.(i)) v

let prop_matvec_matches_dense =
  QCheck.Test.make ~name:"matvec = dense product" ~count:25
    QCheck.(pair (int_range 1 9) (int_range 1 9))
    (fun (rows, cols) ->
      let g = Prng.create ~seed:(rows + (16 * cols)) in
      let w = Array.init rows (fun _ -> Array.init cols (fun _ -> Prng.float01 g -. 0.5)) in
      let x = Array.init cols (fun _ -> Prng.float01 g -. 0.5) in
      let d = Dsl.create ~slot_count:32 () in
      let xi = Dsl.input d "x" in
      Dsl.output d (Dsl.matvec d ~rows ~cols (fun j i -> w.(j).(i)) xi);
      let out = run1 (Dsl.finish d) [ ("x", x) ] in
      let ok = ref true in
      for j = 0 to rows - 1 do
        let e = ref 0. in
        for i = 0 to cols - 1 do
          e := !e +. (w.(j).(i) *. x.(i))
        done;
        if Float.abs (!e -. out.(j)) > 1e-9 then ok := false
      done;
      !ok)

let test_conv2d_shift () =
  (* single tap (0,1,1): plain left shift within a row *)
  let d = Dsl.create ~slot_count:16 () in
  let img = Dsl.input d "i" in
  Dsl.output d (Dsl.conv2d d ~image:img ~img_width:4 ~stride:1 ~taps:[ (0, 1, 1.) ]);
  let out = run1 (Dsl.finish d) [ ("i", Array.init 16 float_of_int) ] in
  check close "shifted" 1. out.(0);
  check close "row end wraps into next row" 4. out.(3)

let test_conv2d_sobel_interior () =
  (* cross-check a Sobel-x response on an interior pixel *)
  let w = 4 in
  let img = [| 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10.; 11.; 12.; 13.; 14.; 15. |] in
  let taps =
    [ (-1, -1, -1.); (-1, 1, 1.); (0, -1, -2.); (0, 1, 2.); (1, -1, -1.); (1, 1, 1.) ]
  in
  let d = Dsl.create ~slot_count:16 () in
  let i = Dsl.input d "i" in
  Dsl.output d (Dsl.conv2d d ~image:i ~img_width:w ~stride:1 ~taps);
  let out = run1 (Dsl.finish d) [ ("i", img) ] in
  (* pixel (1,1) = slot 5: taps read slots 5 + dy*4 + dx *)
  let expect =
    List.fold_left (fun acc (dy, dx, c) -> acc +. (c *. img.(5 + (dy * 4) + dx))) 0. taps
  in
  check close "interior response" expect out.(5)

let test_conv2d_stride_dilation () =
  let d = Dsl.create ~slot_count:16 () in
  let i = Dsl.input d "i" in
  Dsl.output d (Dsl.conv2d d ~image:i ~img_width:4 ~stride:2 ~taps:[ (0, 1, 1.) ]);
  let out = run1 (Dsl.finish d) [ ("i", Array.init 16 float_of_int) ] in
  (* dilated tap reads slot s + 2 *)
  check close "dilated" 2. out.(0)

let test_avg_pool () =
  let d = Dsl.create ~slot_count:16 () in
  let i = Dsl.input d "i" in
  Dsl.output d (Dsl.avg_pool2x2 d i ~img_width:4 ~stride:1);
  let img = Array.init 16 float_of_int in
  let out = run1 (Dsl.finish d) [ ("i", img) ] in
  (* pool at (0,0): avg of slots 0,1,4,5 = 2.5 *)
  check close "pool" 2.5 out.(0)

let test_zero_weight_taps_skipped () =
  let d = Dsl.create ~slot_count:16 () in
  let i = Dsl.input d "i" in
  Dsl.output d (Dsl.conv2d d ~image:i ~img_width:4 ~stride:1 ~taps:[ (0, 0, 1.); (0, 1, 0.) ]);
  let p = Dsl.finish d in
  check Alcotest.bool "few ops" true (Prog.num_ops p <= 2)

(* Combinator preconditions are structured diagnostics carrying the surface
   chain; [expect_precondition] asserts on the code and provenance label. *)
let expect_precondition ~label ?context f =
  match f () with
  | _ -> Alcotest.failf "expected precondition diagnostic from %s" label
  | exception Diagnostic.Error d -> (
      check
        (Alcotest.testable (Fmt.of_to_string Diagnostic.code_name) ( = ))
        "code" Diagnostic.Precondition d.Diagnostic.code;
      check Alcotest.bool "has a hint" true (d.Diagnostic.hint <> None);
      match d.Diagnostic.provenance with
      | None -> Alcotest.failf "diagnostic from %s lacks provenance" label
      | Some pr ->
          check Alcotest.string "provenance label" label pr.Prog.label;
          Option.iter
            (fun ctx -> check Alcotest.(list string) "provenance context" ctx pr.Prog.context)
            context)

let test_bad_params_rejected () =
  (* slot count is a configuration error, not a surface diagnostic *)
  (match Dsl.create ~slot_count:12 () with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ());
  let d = Dsl.create ~slot_count:8 () in
  let x = Dsl.input d "x" in
  expect_precondition ~label:"add_many" ~context:[] (fun () -> Dsl.add_many d []);
  expect_precondition ~label:"reduce_sum w3" ~context:[] (fun () ->
      Dsl.reduce_sum d x ~width:3);
  expect_precondition ~label:"replicate w5" ~context:[] (fun () -> Dsl.replicate d x ~width:5);
  (* padded dim 16 > 8 slots *)
  expect_precondition ~label:"matvec 10x10" ~context:[] (fun () ->
      Dsl.matvec d ~rows:10 ~cols:10 (fun _ _ -> 1.) x);
  expect_precondition ~label:"matvec 0x4" (fun () ->
      Dsl.matvec d ~rows:0 ~cols:4 (fun _ _ -> 1.) x);
  expect_precondition ~label:"matvec 2x2" (fun () ->
      Dsl.matvec d ~rows:2 ~cols:2 (fun _ _ -> 0.) x);
  expect_precondition ~label:"conv2d" (fun () ->
      Dsl.conv2d d ~image:x ~img_width:4 ~stride:1 ~taps:[]);
  expect_precondition ~label:"conv2d" (fun () ->
      Dsl.conv2d d ~image:x ~img_width:4 ~stride:1 ~taps:[ (0, 0, 0.) ]);
  (* nested: a precondition tripped inside a user combinator names the
     user's label in the context chain *)
  expect_precondition ~label:"add_many" ~context:[ "my_combinator" ] (fun () ->
      Dsl.with_label d "my_combinator" (fun () -> Dsl.add_many d []))

(* ------------------------------------------------------------------ *)
(* Scale/level inference over DSL programs (ISSUE 7 tentpole).          *)
(* The DSL emits no scale management; [Infer] must place it, the result *)
(* must typecheck, coincide with the driver's EVA code generation, and  *)
(* — for the running example — reproduce the hand-pinned golden IR.     *)
(* ------------------------------------------------------------------ *)

let infer_cfg = Typing.config ~sf:28. ~waterline:20. ()

let fig2_dsl () =
  (* the paper's running example, (x^2 + y^2)^3, written in the DSL: same
     surface ops, in the same order, as examples/fig2.hec *)
  let d = Dsl.create ~name:"fig2" ~slot_count:64 () in
  let x = Dsl.input d "x" in
  let y = Dsl.input d "y" in
  (* explicit lets: OCaml argument evaluation is right-to-left, and the
     golden pin fixes the op order *)
  let x2 = Dsl.square d x in
  let y2 = Dsl.square d y in
  let e = Dsl.add d x2 y2 in
  let e2 = Dsl.mul d e e in
  Dsl.output d (Dsl.mul d e2 e);
  Dsl.finish d

let matvec_dsl () =
  let d = Dsl.create ~name:"matvec" ~slot_count:16 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.matvec d ~rows:4 ~cols:4 (fun j i -> float_of_int ((j * 4) + i + 1)) x);
  Dsl.finish d

let conv_dsl () =
  let d = Dsl.create ~name:"conv" ~slot_count:16 () in
  let i = Dsl.input d "i" in
  let taps =
    [ (-1, -1, -1.); (-1, 1, 1.); (0, -1, -2.); (0, 1, 2.); (1, -1, -1.); (1, 1, 1.) ]
  in
  Dsl.output d (Dsl.avg_pool2x2 d (Dsl.conv2d d ~image:i ~img_width:4 ~stride:1 ~taps) ~img_width:4 ~stride:1);
  Dsl.finish d

let surface_apps () = [ ("fig2", fig2_dsl ()); ("matvec", matvec_dsl ()); ("conv", conv_dsl ()) ]

(* The driver cleans the surface program before code generation; apply the
   same cleanup before inference so the comparison is about scale-management
   placement, not about CSE/folding. *)
let infer_and_finalize surface =
  let cleaned = Pass_manager.run Pass_manager.cleanup surface in
  let inferred = Infer.infer_exn infer_cfg cleaned in
  fst (Driver.finalize ~cfg:infer_cfg inferred)

let test_infer_matches_driver_eva () =
  List.iter
    (fun (name, surface) ->
      let finalized = infer_and_finalize surface in
      let eva = Driver.compile Driver.Eva ~sf_bits:28 ~waterline_bits:20. surface in
      if not (Prog.equal finalized eva.Driver.prog) then
        Alcotest.failf "%s: inferred placement differs from the driver's EVA output" name)
    (surface_apps ())

let test_infer_typechecks_all_schemes () =
  List.iter
    (fun (name, surface) ->
      (match Infer.infer infer_cfg surface with
      | Error d -> Alcotest.failf "%s: inference failed: %s" name (Diagnostic.to_string d)
      | Ok q -> (
          match Typing.check infer_cfg q with
          | Ok _ -> ()
          | Error d ->
              Alcotest.failf "%s: inferred program ill-typed: %s" name (Diagnostic.to_string d)));
      List.iter
        (fun scheme ->
          match Driver.compile_result scheme ~sf_bits:28 ~waterline_bits:20. surface with
          | Ok _ -> ()
          | Error d ->
              Alcotest.failf "%s under %s: %s" name (Driver.scheme_name scheme)
                (Diagnostic.to_string d))
        Driver.all_schemes)
    (surface_apps ())

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_infer_fig2_matches_golden () =
  (* end to end: the zero-annotation DSL program reproduces, byte for byte,
     the golden IR pinned for the hand-written examples/fig2.hec under EVA
     (default printing is provenance-free, so the pin is unaffected by the
     provenance the DSL records) *)
  check Alcotest.string "golden/fig2_eva.ir" (read_file "golden/fig2_eva.ir")
    (Printer.to_string (infer_and_finalize (fig2_dsl ())))

let test_infer_diagnostic_carries_surface_chain () =
  (* under a modulus too small for x^4, inference fails with C1 — and the
     diagnostic names the surface combinator chain, not just an op id *)
  let d = Dsl.create ~slot_count:8 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.square d (Dsl.square d x));
  let surface = Dsl.finish d in
  let tight = Typing.config ~sf:28. ~waterline:20. ~max_log_q:60. () in
  match Infer.infer tight surface with
  | Ok _ -> Alcotest.fail "expected a scale-overflow diagnostic"
  | Error e ->
      check
        (Alcotest.testable (Fmt.of_to_string Diagnostic.code_name) ( = ))
        "code" Diagnostic.Scale_overflow e.Diagnostic.code;
      (match e.Diagnostic.provenance with
      | None -> Alcotest.fail "diagnostic lacks surface provenance"
      | Some pr ->
          check Alcotest.string "label" "mul" pr.Prog.label;
          check Alcotest.(list string) "context" [ "square" ] pr.Prog.context);
      check Alcotest.bool "op recorded" true (e.Diagnostic.op <> None)

let () =
  Alcotest.run "hecate_frontend"
    [
      ( "dsl",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "rotate normalization" `Quick test_rotate_normalization;
          Alcotest.test_case "rotate 0 elided" `Quick test_rotate_zero_emits_nothing;
          Alcotest.test_case "add_many" `Quick test_add_many_balanced;
          Alcotest.test_case "bad params" `Quick test_bad_params_rejected;
        ] );
      ( "packing",
        [
          Alcotest.test_case "reduce_sum windows" `Quick test_reduce_sum_windows;
          Alcotest.test_case "reduce_sum total" `Quick test_reduce_sum_total;
          Alcotest.test_case "replicate" `Quick test_replicate;
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "matvec identity" `Quick test_matvec_identity;
          qtest prop_matvec_matches_dense;
        ] );
      ( "stencils",
        [
          Alcotest.test_case "conv2d shift" `Quick test_conv2d_shift;
          Alcotest.test_case "sobel interior" `Quick test_conv2d_sobel_interior;
          Alcotest.test_case "stride dilation" `Quick test_conv2d_stride_dilation;
          Alcotest.test_case "avg pool" `Quick test_avg_pool;
          Alcotest.test_case "zero taps skipped" `Quick test_zero_weight_taps_skipped;
        ] );
      ( "infer",
        [
          Alcotest.test_case "matches driver EVA placement" `Quick test_infer_matches_driver_eva;
          Alcotest.test_case "typechecks under all schemes" `Quick
            test_infer_typechecks_all_schemes;
          Alcotest.test_case "fig2 matches golden IR" `Quick test_infer_fig2_matches_golden;
          Alcotest.test_case "diagnostic carries surface chain" `Quick
            test_infer_diagnostic_carries_surface_chain;
        ] );
    ]
