(* The accuracy/latency frontier: how the waterline trades precision for
   speed, and how well the static noise model predicts it.

   For the encrypted linear-regression workload we sweep waterlines,
   measure the real output error on the CKKS backend, compare it with the
   Noisemodel prediction, and show the estimated latency — the data behind
   the paper's "36 waterlines under an error bound" methodology (§VII-B).

   Run with:  dune exec examples/waterline_frontier.exe *)

module Apps = Hecate_apps.Apps
module Driver = Hecate.Driver
module Noisemodel = Hecate.Noisemodel
module Interp = Hecate_backend.Interp
module Accuracy = Hecate_backend.Accuracy

let () =
  let bench = Apps.linear_regression ~epochs:3 ~samples:1024 () in
  Printf.printf "LR E3 (1024 samples) under HECATE, sweeping the waterline:\n\n";
  Printf.printf "%4s %10s | %12s %12s | %12s %8s\n" "wl" "est (s)" "measured" "predicted"
    "error bound" "chain";
  Printf.printf "%s\n" (String.make 72 '-');
  let bound = 0x1p-8 in
  List.iter
    (fun wl ->
      match Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:wl bench.Apps.prog with
      | exception (Invalid_argument _ | Hecate_ir.Diagnostic.Error _) ->
          Printf.printf "%4.0f   (does not compile)\n" wl
      | c -> (
          let ncfg = Noisemodel.default_config ~n:2048 in
          let predicted = (Noisemodel.analyze ncfg c.Driver.prog).Noisemodel.predicted_rmse in
          match
            let eval =
              Interp.context ~params:c.Driver.params
                ~rotations:(Interp.required_rotations c.Driver.prog) ()
            in
            Accuracy.measure eval ~waterline_bits:wl c.Driver.prog ~inputs:bench.Apps.inputs
              ~valid_slots:1024
          with
          | acc ->
              Printf.printf "%4.0f %9.2fs | %12.2e %12.2e | %12s %6d+1\n%!" wl
                c.Driver.estimated_seconds acc.Accuracy.rmse predicted
                (if acc.Accuracy.rmse <= bound then "meets 2^-8" else "too noisy")
                c.Driver.params.Hecate.Paramselect.chain_levels
          | exception _ -> Printf.printf "%4.0f   (runtime scale failure)\n%!" wl))
    [ 14.; 16.; 18.; 20.; 22.; 24.; 26. ];
  Printf.printf
    "\nLow waterlines drown the message in noise; very high ones pay for longer\n\
     modulus chains (and, in this 28-bit-prime substrate, coarser downscale\n\
     multipliers). The harness picks the fastest configuration that meets the\n\
     bound, exactly as the paper's evaluation does.\n"
