(* Just enough JSON to read the BENCH_*.json artifacts back for the
   regression gate. Recursive descent over a string; numbers are floats,
   escapes cover what our own writer emits (plus \uXXXX for robustness). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
              in
              (* ASCII passthrough; anything wider is replaced — our own
                 artifacts never emit non-ASCII *)
              Buffer.add_char b (if code < 128 then Char.chr code else '?');
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (key, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members_loop ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Obj kvs -> ( match List.assoc_opt name kvs with Some v -> v | None -> Null)
  | _ -> Null

let to_list = function Arr l -> l | _ -> []
let to_float = function Num f -> Some f | _ -> None
let to_int = function Num f -> Some (int_of_float f) | _ -> None
let to_string = function Str s -> Some s | _ -> None
