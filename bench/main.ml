(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§VII).

     dune exec bench/main.exe            -- everything (fig7 table2 table3 fig8 fig7paper ablate ops)
     dune exec bench/main.exe fig7       -- Fig. 7: min latency per benchmark x scheme
     dune exec bench/main.exe table2     -- Table II: RMS error of selected programs
     dune exec bench/main.exe table3     -- Table III: search-space reduction
     dune exec bench/main.exe fig8       -- Fig. 8: estimated vs actual latency
     dune exec bench/main.exe ops        -- Bechamel microbenchmarks of the CKKS ops
                                            (the profile behind §VI-C)
     dune exec bench/main.exe ablate     -- design-choice ablations (step (e),
                                            early modswitch, SMU phases)
     dune exec bench/main.exe explore    -- SMSE exploration portfolio: every
                                            registered strategy races on every
                                            workload, each winner is executed
                                            on the backend and the estimator's
                                            per-strategy drift is reported;
                                            writes BENCH_explore.json.
                                            Flags: --quick, --oracle (replay
                                            winners through the differential
                                            oracle), --out FILE
     dune exec bench/main.exe passes     -- per-pass timing breakdown from the
                                            instrumented pass manager
     dune exec bench/main.exe kernels    -- RNS kernel microbenchmarks: Barrett/
                                            Shoup vs reference modmul, NTT,
                                            keyswitch, cipher mul, rescale;
                                            writes BENCH_kernels.json.
                                            Flags: --quick, --reps N (default 5),
                                            --warmup N (default 1), --jobs J,
                                            --out FILE (see docs/PERFORMANCE.md)
     dune exec bench/main.exe serve      -- plan-cache serving latencies: cold
                                            fig2 compile vs warm memory/disk
                                            hits and sustained hit throughput;
                                            writes BENCH_serve.json.
                                            Flags: --reps N, --cold-reps N,
                                            --quick, --out FILE
     dune exec bench/main.exe batch      -- SIMD batching frontend: rotation
                                            counts and end-to-end latency of
                                            the layout-assigned lowering vs
                                            the one-slot naive baseline;
                                            writes BENCH_batch.json.
                                            Flags: --quick, --reps N,
                                            --out FILE (see docs/BATCHING.md)
     dune exec bench/main.exe fuzz       -- differential fuzzing of the four
                                            scale-management schemes: random
                                            valid-by-construction programs are
                                            compiled under every scheme and
                                            cross-checked against the plaintext
                                            reference; failures are shrunk to
                                            minimal .hec reproducers.
                                            Flags: --seed N (default 42),
                                            --count N (default 200),
                                            --max-depth N, --max-ops N,
                                            --out DIR (default test/corpus).
                                            Exits 1 on any oracle failure
                                            (see docs/TESTING.md)

   Latencies are measured on the in-repo RNS-CKKS substrate at reduced ring
   degrees (see DESIGN.md); estimated latencies are also reported at the
   degree the 128-bit security table would mandate. *)

module Apps = Hecate_apps.Apps
module Driver = Hecate.Driver
module Explore = Hecate.Explore
module Smu = Hecate.Smu
module Costmodel = Hecate.Costmodel
module Paramselect = Hecate.Paramselect
module Prog = Hecate_ir.Prog
module Pass_manager = Hecate_ir.Pass_manager
module Harness = Hecate_backend.Harness
module Interp = Hecate_backend.Interp
module Accuracy = Hecate_backend.Accuracy
module Profile = Hecate_backend.Profile
module Stats = Hecate_support.Stats
module Json = Hecate_support.Json

let sf_bits = 28
let schemes = Driver.all_schemes

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* per-benchmark search budgets: LeNet dominates both compilation (SMSE hill
   climbing over a ~1.7k-op program) and execution, so it gets a coarser
   waterline grid and a capped climb *)
let grid (b : Apps.t) =
  match b.Apps.name with
  | "LeNet-r" -> [ 12.; 14.; 16.; 18.; 20.; 22.; 24.; 26. ]
  | "LR E3" | "PR E2" | "PR E3" ->
      (* exploration over these is ~10x costlier per waterline; 1-bit steps
         keep the sweep faithful in shape at tractable cost *)
      List.init 18 (fun i -> 10. +. float_of_int i)
  | _ -> Harness.default_waterlines

let epoch_cap (b : Apps.t) = if b.Apps.name = "LeNet-r" then 12 else 100

(* ------------------------------------------------------------------ *)
(* Fig. 7 + Table II: waterline search on the reduced suite            *)
(* ------------------------------------------------------------------ *)

let selections : (string * Driver.scheme, Harness.selection option) Hashtbl.t =
  Hashtbl.create 64

let select bench scheme =
  let key = ((bench : Apps.t).Apps.name, scheme) in
  match Hashtbl.find_opt selections key with
  | Some s -> s
  | None ->
      let s =
        Harness.search ~waterlines:(grid bench) ~max_epochs:(epoch_cap bench)
          ~use_profiled_model:true ~scheme bench
      in
      Hashtbl.replace selections key s;
      s

let geomean_of = function [] -> nan | l -> Stats.geomean (Array.of_list l)

(* one measured table cell: benchmark x scheme, plus the speedup vs the
   EVA baseline when both were feasible *)
type fig7_row = {
  f7_bench : string;
  f7_scheme : Driver.scheme;
  f7_selection : Harness.selection option;
  f7_speedup_vs_eva : float option;
}

let fig7_measure suite =
  heading "Fig. 7 -- minimum latency per benchmark and scheme (reduced suite, measured)";
  Printf.printf
    "Best waterline under max error 2^-8, chosen over the per-benchmark grid;\n\
     'actual' is wall-clock on the in-repo CKKS backend; speedup is vs EVA.\n\n";
  Printf.printf "%-8s" "bench";
  List.iter (fun s -> Printf.printf " | %21s" (Driver.scheme_name s)) schemes;
  Printf.printf "\n%s\n" (String.make 104 '-');
  let speedups = Hashtbl.create 8 in
  let rows = ref [] in
  List.iter
    (fun (b : Apps.t) ->
      Printf.printf "%-8s%!" b.Apps.name;
      let eva = select b Driver.Eva in
      List.iter
        (fun scheme ->
          match select b scheme with
          | None ->
              Printf.printf " | %21s%!" "infeasible";
              rows :=
                { f7_bench = b.Apps.name; f7_scheme = scheme; f7_selection = None;
                  f7_speedup_vs_eva = None }
                :: !rows
          | Some s ->
              let sp_opt =
                match eva with
                | Some e when scheme <> Driver.Eva ->
                    Some (e.Harness.actual_seconds /. s.Harness.actual_seconds)
                | _ -> None
              in
              let speedup =
                match sp_opt with
                | Some sp ->
                    Hashtbl.replace speedups scheme
                      (sp :: Option.value ~default:[] (Hashtbl.find_opt speedups scheme));
                    Printf.sprintf "%+5.1f%%" ((sp -. 1.) *. 100.)
                | None -> "      "
              in
              rows :=
                { f7_bench = b.Apps.name; f7_scheme = scheme; f7_selection = Some s;
                  f7_speedup_vs_eva = sp_opt }
                :: !rows;
              Printf.printf " | %8.3fs wl=%2.0f %s%!" s.Harness.actual_seconds
                s.Harness.waterline_bits speedup)
        schemes;
      print_newline ())
    suite;
  Printf.printf "%s\n" (String.make 104 '-');
  Printf.printf "geomean speedup over EVA:";
  let geomeans =
    List.filter_map
      (fun scheme ->
        if scheme = Driver.Eva then None
        else begin
          let sps = Option.value ~default:[] (Hashtbl.find_opt speedups scheme) in
          let gm = geomean_of sps in
          Printf.printf "  %s %+.1f%%" (Driver.scheme_name scheme) ((gm -. 1.) *. 100.);
          Some (scheme, gm)
        end)
      schemes
  in
  Printf.printf "\n(paper, full size on SEAL: PARS +13.4%%, SMSE +21.4%%, HECATE +27.4..27.9%%)\n";
  (List.rev !rows, geomeans)

let fig7 () = ignore (fig7_measure (Apps.reduced_suite ()))

(* estimated latency of the paper-size programs at the waterline the reduced
   search selected (LeNet exploration capped; see DESIGN.md) *)
let fig7_paper_measure () =
  heading "Fig. 7 (paper-size programs, estimated at the security-mandated degree)";
  Printf.printf "%-8s" "bench";
  List.iter (fun s -> Printf.printf " | %16s" (Driver.scheme_name s)) schemes;
  Printf.printf " | HECATE vs EVA\n%s\n" (String.make 100 '-');
  let speedups = ref [] in
  let rows = ref [] in
  List.iter2
    (fun (pb : Apps.t) (rb : Apps.t) ->
      Printf.printf "%-8s%!" pb.Apps.name;
      let ests =
        List.map
          (fun scheme ->
            let wl =
              match select rb scheme with
              | Some s -> s.Harness.waterline_bits
              | None -> 20.
            in
            let max_epochs = if pb.Apps.name = "LeNet" then 20 else 100 in
            let c = Driver.compile ~max_epochs scheme ~sf_bits ~waterline_bits:wl pb.Apps.prog in
            Printf.printf " | %9.2fs n=%2dk%!" c.Driver.estimated_seconds
              (c.Driver.params.Paramselect.secure_n / 1024);
            rows :=
              (pb.Apps.name, scheme, c.Driver.estimated_seconds,
               c.Driver.params.Paramselect.secure_n, wl)
              :: !rows;
            c.Driver.estimated_seconds)
          schemes
      in
      (match ests with
      | [ eva; _; _; hec ] ->
          speedups := (eva /. hec) :: !speedups;
          Printf.printf " | %+5.1f%%" (((eva /. hec) -. 1.) *. 100.)
      | _ -> ());
      print_newline ())
    (Apps.paper_suite ()) (Apps.reduced_suite ());
  let gm = geomean_of !speedups in
  Printf.printf "%s\ngeomean HECATE speedup over EVA (paper-size, estimated): %+.1f%%\n"
    (String.make 100 '-')
    ((gm -. 1.) *. 100.);
  (List.rev !rows, gm)

let fig7_paper () = ignore (fig7_paper_measure ())

(* `fig7` as a subcommand: run the measured table (and, unless --quick, the
   paper-size estimates) and persist everything as a committed JSON
   trajectory. Fields are emitted in a fixed order so regenerating the
   artifact produces a clean, reviewable diff. *)
let fig7_cmd flags =
  let quick = ref false in
  let out = ref "BENCH_fig7.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | other :: _ ->
        Printf.eprintf "fig7: unknown flag %s (--quick | --out FILE)\n" other;
        exit 2
  in
  parse flags;
  let suite =
    if !quick then
      (* the two cheapest searches; enough overlap with the committed full
         artifact for CI to sanity-check the pipeline end to end *)
      List.filter
        (fun (b : Apps.t) -> b.Apps.name = "SF" || b.Apps.name = "HCD")
        (Apps.reduced_suite ())
    else Apps.reduced_suite ()
  in
  let rows, geomeans = fig7_measure suite in
  let paper_rows, paper_gm =
    if !quick then ([], nan) else fig7_paper_measure ()
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"config\": {\"quick\": %b, \"sf_bits\": %d, \"error_bound_bits\": 8},\n"
       !quick sf_bits);
  Buffer.add_string buf "  \"measured\": [\n";
  let nrows = List.length rows in
  List.iteri
    (fun i r ->
      let base =
        Printf.sprintf "    {\"bench\": \"%s\", \"scheme\": \"%s\", \"feasible\": %b"
          r.f7_bench (Driver.scheme_name r.f7_scheme) (r.f7_selection <> None)
      in
      Buffer.add_string buf base;
      (match r.f7_selection with
      | Some s ->
          Buffer.add_string buf
            (Printf.sprintf
               ", \"waterline_bits\": %.0f, \"actual_seconds\": %.6f, \"rmse\": %.3e, \
                \"max_abs_error\": %.3e, \"exec_n\": %d"
               s.Harness.waterline_bits s.Harness.actual_seconds s.Harness.rmse
               s.Harness.max_abs_error s.Harness.exec_n)
      | None -> ());
      (match r.f7_speedup_vs_eva with
      | Some sp -> Buffer.add_string buf (Printf.sprintf ", \"speedup_vs_eva\": %.4f" sp)
      | None -> ());
      Buffer.add_string buf (Printf.sprintf "}%s\n" (if i = nrows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n  \"geomean_speedup_vs_eva\": {";
  List.iteri
    (fun i (scheme, gm) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\"%s\": %.4f"
           (if i = 0 then "" else ", ")
           (Driver.scheme_name scheme) gm))
    geomeans;
  Buffer.add_string buf "},\n  \"paper_estimates\": [\n";
  let nprows = List.length paper_rows in
  List.iteri
    (fun i (bench, scheme, est, secure_n, wl) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"bench\": \"%s\", \"scheme\": \"%s\", \"waterline_bits\": %.0f, \
            \"estimated_seconds\": %.4f, \"secure_n\": %d}%s\n"
           bench (Driver.scheme_name scheme) wl est secure_n
           (if i = nprows - 1 then "" else ",")))
    paper_rows;
  Buffer.add_string buf "  ]";
  if not !quick then
    Buffer.add_string buf
      (Printf.sprintf ",\n  \"paper_geomean_hecate_vs_eva\": %.4f" paper_gm);
  Buffer.add_string buf "\n}\n";
  Hecate_support.Fileio.write_atomic ~path:!out (Buffer.contents buf);
  Printf.printf "\nwrote %s\n" !out

let table2 () =
  heading "Table II -- RMS error of the selected compiled programs";
  Printf.printf "(error bound 2^-8 = %.2e; '-' = infeasible at every waterline)\n\n" 0x1p-8;
  Printf.printf "%-8s" "bench";
  List.iter (fun s -> Printf.printf " | %9s" (Driver.scheme_name s)) schemes;
  Printf.printf "\n%s\n" (String.make 56 '-');
  List.iter
    (fun (b : Apps.t) ->
      Printf.printf "%-8s%!" b.Apps.name;
      List.iter
        (fun scheme ->
          match select b scheme with
          | None -> Printf.printf " | %9s" "-"
          | Some s -> Printf.printf " | %9.2e%!" s.Harness.rmse)
        schemes;
      print_newline ())
    (Apps.reduced_suite ())

(* ------------------------------------------------------------------ *)
(* Table III: search-space reduction                                   *)
(* ------------------------------------------------------------------ *)

let table3 () =
  heading "Table III -- SMU search-space reduction (paper-size programs)";
  Printf.printf
    "naive = hill climbing directly over ciphertext use-def edges. Naive plan\n\
     counts are measured where tractable (*) and otherwise extrapolated as\n\
     (HECATE's epochs + 1) x use-def edges, mirroring the paper's\n\
     extrapolated 649-hour naive LeNet compile.\n\n";
  Printf.printf "%-8s %8s %6s %6s | %8s %10s | %8s %10s | %9s\n" "bench" "uses" "units"
    "edges" "ep(hec)" "plans(hec)" "ep(nv)" "plans(nv)" "reduction";
  Printf.printf "%s\n" (String.make 96 '-');
  List.iter
    (fun ((pb : Apps.t), naive_tractable) ->
      let prog = Pass_manager.default_pipeline pb.Apps.prog in
      let smu = Smu.generate prog in
      let max_epochs = if pb.Apps.name = "LeNet" then 20 else 100 in
      let hec =
        Driver.compile ~max_epochs Driver.Hecate ~sf_bits ~waterline_bits:20. pb.Apps.prog
      in
      let he = Option.get hec.Driver.exploration in
      let naive_plans, naive_epochs, measured =
        if naive_tractable then begin
          let nv =
            Driver.compile ~max_epochs Driver.Hecate ~naive_exploration:true ~sf_bits
              ~waterline_bits:20. pb.Apps.prog
          in
          let ne = Option.get nv.Driver.exploration in
          (ne.Driver.plans_explored, ne.Driver.epochs, "*")
        end
        else ((he.Driver.epochs + 1) * smu.Smu.use_def_edges, he.Driver.epochs, " ")
      in
      Printf.printf "%-8s %8d %6d %6d | %8d %10d | %7d%s %10d | %8.1fx\n%!" pb.Apps.name
        smu.Smu.use_def_edges (Smu.unit_count smu) (Smu.edge_count smu) he.Driver.epochs
        he.Driver.plans_explored naive_epochs measured naive_plans
        (float_of_int naive_plans /. float_of_int (max 1 he.Driver.plans_explored)))
    [
      (Apps.sobel (), true);
      (Apps.harris (), true);
      (Apps.mlp (), false);
      (Apps.lenet (), false);
      (Apps.linear_regression ~epochs:2 (), true);
      (Apps.linear_regression ~epochs:3 (), false);
      (Apps.polynomial_regression ~epochs:2 (), false);
      (Apps.polynomial_regression ~epochs:3 (), false);
    ]

(* ------------------------------------------------------------------ *)
(* Fig. 8: estimated vs actual latency                                 *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  heading "Fig. 8 -- estimated vs actual latency across settings";
  Printf.printf
    "Settings: reduced benchmarks x 4 schemes x waterlines {18,20,22,24,26};\n\
     estimates use the profiled cost model at the executed ring degree.\n\n";
  Printf.printf "%-8s %-7s %5s %12s %12s %8s\n" "bench" "scheme" "wl" "estimated" "actual"
    "rel.err";
  Printf.printf "%s\n" (String.make 60 '-');
  let rel_errors = ref [] in
  List.iter
    (fun (b : Apps.t) ->
      let wls = if b.Apps.name = "LeNet-r" then [ 20.; 24. ] else [ 18.; 20.; 22.; 24.; 26. ] in
      List.iter
        (fun scheme ->
          List.iter
            (fun wl ->
              match
                let c =
                  Driver.compile ~max_epochs:(epoch_cap b) scheme ~sf_bits ~waterline_bits:wl
                    b.Apps.prog
                in
                let rotations = Interp.required_rotations c.Driver.prog in
                let eval = Harness.cached_context ~params:c.Driver.params ~rotations in
                let report =
                  Interp.execute eval ~waterline_bits:wl c.Driver.prog ~inputs:b.Apps.inputs
                in
                let exec_n = (Hecate_ckks.Eval.params eval).Hecate_ckks.Params.n in
                let model =
                  Profile.cached_model ~n:exec_n
                    ~levels:c.Driver.params.Paramselect.chain_levels
                    ~q0_bits:c.Driver.params.Paramselect.q0_bits
                    ~sf_bits:c.Driver.params.Paramselect.sf_bits ()
                in
                (Driver.estimate_at ~model c ~n:exec_n, report.Interp.elapsed_seconds)
              with
              | est, actual ->
                  let rel = Stats.relative_error ~actual ~estimate:est in
                  rel_errors := rel :: !rel_errors;
                  Printf.printf "%-8s %-7s %5.0f %11.4fs %11.4fs %7.1f%%\n%!" b.Apps.name
                    (Driver.scheme_name scheme) wl est actual (100. *. rel)
              | exception _ -> ())
            wls)
        schemes)
    (Apps.reduced_suite ());
  let errs = Array.of_list !rel_errors in
  if Array.length errs > 0 then begin
    Array.sort compare errs;
    Printf.printf "%s\n" (String.make 60 '-');
    Printf.printf "settings: %d   geomean rel. error: %.1f%%   median: %.1f%%   max: %.1f%%\n"
      (Array.length errs)
      (100. *. Stats.geomean (Array.map (fun e -> Float.max e 1e-6) errs))
      (100. *. Stats.percentile errs 50.)
      (100. *. Stats.percentile errs 100.);
    Printf.printf "(paper: geomean 1.3%%, max 4.8%% -- on SEAL with hardware timers)\n"
  end

(* ------------------------------------------------------------------ *)
(* Ablations: design choices DESIGN.md calls out                       *)
(* ------------------------------------------------------------------ *)

let ablate () =
  heading "Ablations -- estimated latency at the security-mandated degree (waterline 20)";
  let benches =
    [
      Apps.sobel ~size:16 ();
      Apps.harris ~size:16 ();
      Apps.linear_regression ~epochs:2 ~samples:2048 ();
      Apps.polynomial_regression ~epochs:2 ~samples:2048 ();
    ]
  in
  Printf.printf "\n(a) PARS step (e), the pre-multiplication downscale analysis\n";
  Printf.printf "%-8s %14s %14s\n" "bench" "PARS full" "no step (e)";
  List.iter
    (fun (b : Apps.t) ->
      let full = Driver.compile Driver.Pars ~sf_bits ~waterline_bits:20. b.Apps.prog in
      let without =
        Driver.compile ~downscale_analysis:false Driver.Pars ~sf_bits ~waterline_bits:20.
          b.Apps.prog
      in
      Printf.printf "%-8s %13.3fs %13.3fs\n%!" b.Apps.name full.Driver.estimated_seconds
        without.Driver.estimated_seconds)
    benches;
  Printf.printf "\n(b) EVA's early-modswitch hoisting (applied in every scheme)\n";
  Printf.printf "%-8s %14s %14s\n" "bench" "with" "without";
  List.iter
    (fun (b : Apps.t) ->
      let with_ = Driver.compile Driver.Hecate ~sf_bits ~waterline_bits:20. b.Apps.prog in
      let without =
        Driver.compile ~early_modswitch:false Driver.Hecate ~sf_bits ~waterline_bits:20.
          b.Apps.prog
      in
      Printf.printf "%-8s %13.3fs %13.3fs\n%!" b.Apps.name with_.Driver.estimated_seconds
        without.Driver.estimated_seconds)
    benches;
  Printf.printf "\n(c) SMU generation phases (Algorithm 1): exploration granularity vs cost\n";
  Printf.printf "%-8s | %21s | %21s | %21s\n" "bench" "phase 1 only" "phases 1-2" "full (1-3)";
  Printf.printf "%-8s | %6s %6s %7s | %6s %6s %7s | %6s %6s %7s\n" "" "units" "plans" "est"
    "units" "plans" "est" "units" "plans" "est";
  List.iter
    (fun (b : Apps.t) ->
      Printf.printf "%-8s" b.Apps.name;
      List.iter
        (fun phases ->
          let c =
            Driver.compile ~smu_phases:phases Driver.Hecate ~sf_bits ~waterline_bits:20.
              b.Apps.prog
          in
          let e = Option.get c.Driver.exploration in
          Printf.printf " | %6d %6d %6.2fs%!" e.Driver.units e.Driver.plans_explored
            c.Driver.estimated_seconds)
        [ 1; 2; 3 ];
      print_newline ())
    benches

(* ------------------------------------------------------------------ *)
(* Exploration portfolio: strategy race + estimator-vs-actual drift    *)
(* ------------------------------------------------------------------ *)

(* Every registered strategy compiles every workload on its own, then the
   portfolio races them all; each winner is executed on the reduced-degree
   backend so the estimator's drift (the Fig. 8 claim) stays measurable
   per strategy as plans get more exotic. Writes BENCH_explore.json in the
   same "speedups" schema as the kernel artifact — the speedup column is
   EVA-baseline-estimate / strategy-estimate — so check-regress gates the
   committed trajectory unchanged. --oracle additionally replays every
   strategy's winner through the differential oracle (the hecated gate). *)

type explore_row = {
  x_bench : string;
  x_strategy : string;
  x_est : float; (* estimated at the security-mandated degree *)
  x_secure_n : int;
  x_levels : int;
  x_speedup : float; (* EVA baseline estimate / this strategy's estimate *)
  x_epochs : int;
  x_plans : int;
  x_winner : string; (* which strategy produced the plan (portfolio rows) *)
  x_drift : float option; (* |estimate - actual| / actual at the executed degree *)
  x_gate : string; (* "passed" | "rejected:<check>" | "-" when not gated *)
}

let explore_cmd flags =
  let quick = ref false in
  let oracle = ref false in
  let out = ref "BENCH_explore.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--oracle" :: rest ->
        oracle := true;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | other :: _ ->
        Printf.eprintf "explore: unknown flag %s (--quick | --oracle | --out FILE)\n" other;
        exit 2
  in
  parse flags;
  heading
    "Exploration portfolio -- strategy race and estimator drift (HECATE scheme, waterline 20)";
  Printf.printf
    "Each strategy explores on its own under the shared epoch budget, then the\n\
     portfolio races all of them; every winner executes on the reduced-degree\n\
     backend. 'drift' is the relative estimator error at the executed degree;\n\
     'speedup' is the EVA baseline estimate over the strategy's estimate.\n";
  let benches =
    if !quick then [ Apps.sobel ~size:16 () ]
    else
      [
        Apps.sobel ~size:16 ();
        Apps.harris ~size:16 ();
        Apps.linear_regression ~epochs:2 ~samples:2048 ();
        Apps.polynomial_regression ~epochs:2 ~samples:2048 ();
      ]
  in
  let strategies = Explore.strategy_names () @ [ Explore.portfolio_name ] in
  let rows = ref [] in
  let rejections = ref 0 in
  List.iter
    (fun (b : Apps.t) ->
      let eva = Driver.compile Driver.Eva ~sf_bits ~waterline_bits:20. b.Apps.prog in
      let gate =
        if !oracle then
          Some (Hecate_fuzz.Oracle.explorer_gate ~sf_bits ~waterline_bits:20. b.Apps.prog)
        else None
      in
      Printf.printf "\n%s (EVA baseline estimate %.3f s)\n" b.Apps.name
        eva.Driver.estimated_seconds;
      Printf.printf "  %-10s %12s %8s %7s %7s %8s %-9s\n" "strategy" "estimated" "speedup"
        "epochs" "plans" "drift" "oracle";
      List.iter
        (fun strategy ->
          match
            Driver.compile ~max_epochs:(epoch_cap b) ~strategy ?gate Driver.Hecate ~sf_bits
              ~waterline_bits:20. b.Apps.prog
          with
          | exception Hecate_ir.Diagnostic.Error d ->
              incr rejections;
              Printf.printf "  %-10s oracle rejected every winner: %s\n%!" strategy
                (Hecate_ir.Diagnostic.to_string d)
          | c ->
              let e = Option.get c.Driver.exploration in
              let drift =
                match
                  let rotations = Interp.required_rotations c.Driver.prog in
                  let eval = Harness.cached_context ~params:c.Driver.params ~rotations in
                  let report =
                    Interp.execute eval ~waterline_bits:20. c.Driver.prog ~inputs:b.Apps.inputs
                  in
                  let exec_n = (Hecate_ckks.Eval.params eval).Hecate_ckks.Params.n in
                  let model =
                    Profile.cached_model ~n:exec_n
                      ~levels:c.Driver.params.Paramselect.chain_levels
                      ~q0_bits:c.Driver.params.Paramselect.q0_bits
                      ~sf_bits:c.Driver.params.Paramselect.sf_bits ()
                  in
                  Stats.relative_error ~actual:report.Interp.elapsed_seconds
                    ~estimate:(Driver.estimate_at ~model c ~n:exec_n)
                with
                | d -> Some d
                | exception _ -> None
              in
              (* A rejected non-winner inside a portfolio race is still a
                 red flag the nightly replay must surface. *)
              List.iter
                (fun (s : Explore.strategy_stats) ->
                  match s.Explore.s_gate with
                  | Explore.Gate_rejected f ->
                      incr rejections;
                      Printf.printf "  %-10s ! %s rejected at %s: %s\n%!" strategy
                        s.Explore.strategy f.Explore.failed_check f.Explore.failed_detail
                  | Explore.Gate_passed | Explore.Not_gated -> ())
                e.Driver.strategies;
              let gate_str =
                match
                  List.find_opt
                    (fun (s : Explore.strategy_stats) -> s.Explore.strategy = e.Driver.strategy)
                    e.Driver.strategies
                with
                | Some { Explore.s_gate = Explore.Gate_passed; _ } -> "passed"
                | Some { Explore.s_gate = Explore.Gate_rejected f; _ } ->
                    "rejected:" ^ f.Explore.failed_check
                | Some { Explore.s_gate = Explore.Not_gated; _ } | None -> "-"
              in
              let speedup = eva.Driver.estimated_seconds /. c.Driver.estimated_seconds in
              rows :=
                {
                  x_bench = b.Apps.name;
                  x_strategy = strategy;
                  x_est = c.Driver.estimated_seconds;
                  x_secure_n = c.Driver.params.Paramselect.secure_n;
                  x_levels = c.Driver.params.Paramselect.chain_levels;
                  x_speedup = speedup;
                  x_epochs = e.Driver.epochs;
                  x_plans = e.Driver.plans_explored;
                  x_winner = e.Driver.strategy;
                  x_drift = drift;
                  x_gate = gate_str;
                }
                :: !rows;
              Printf.printf "  %-10s %11.4fs %7.3fx %7d %7d %7s %-9s%s\n%!" strategy
                c.Driver.estimated_seconds speedup e.Driver.epochs e.Driver.plans_explored
                (match drift with
                | Some d -> Printf.sprintf "%5.1f%%" (100. *. d)
                | None -> "-")
                gate_str
                (if strategy = Explore.portfolio_name then " winner: " ^ e.Driver.strategy
                 else ""))
        strategies)
    benches;
  let rows = List.rev !rows in
  (* The tentpole claim: some non-hill-climb strategy beats or ties the
     hill-climb baseline on every workload (they all search the same
     neighbourhood structure, so at minimum the tie must hold). *)
  Printf.printf "\nbest non-hill-climb strategy vs the hill-climb baseline:\n";
  List.iter
    (fun (b : Apps.t) ->
      let est_of s =
        List.find_map
          (fun r -> if r.x_bench = b.Apps.name && r.x_strategy = s then Some r.x_est else None)
          rows
      in
      match est_of "hill-climb" with
      | None -> ()
      | Some hc ->
          let best =
            List.fold_left
              (fun acc r ->
                if
                  r.x_bench = b.Apps.name
                  && r.x_strategy <> "hill-climb"
                  && r.x_strategy <> Explore.portfolio_name
                then match acc with
                  | Some (_, e) when e <= r.x_est -> acc
                  | _ -> Some (r.x_strategy, r.x_est)
                else acc)
              None rows
          in
          (match best with
          | Some (name, est) ->
              Printf.printf "  %-8s hill-climb %.4fs vs %s %.4fs -- %s\n" b.Apps.name hc name
                est
                (if est < hc then "beats" else if est = hc then "ties" else "LOSES")
          | None -> ()))
    benches;
  (* Side-by-side with the committed Fig. 7 trajectory, when present: the
     measured waterline-searched speedups and these fixed-waterline
     estimated speedups are different metrics, but gross disagreement
     means one of the two artifacts is stale. *)
  (match
     let j = Json.parse (Hecate_support.Fileio.read_file ~path:"BENCH_fig7.json") in
     Json.to_float (Json.member "HECATE" (Json.member "geomean_speedup_vs_eva" j))
   with
  | Some fig7_gm ->
      let ours =
        List.filter_map
          (fun r ->
            if r.x_strategy = Explore.portfolio_name then Some r.x_speedup else None)
          rows
      in
      if ours <> [] then
        Printf.printf
          "\ncommitted Fig. 7 measured HECATE-vs-EVA geomean: %.3fx; this run's \
           portfolio estimated geomean: %.3fx (different metrics -- waterline \
           search vs fixed waterline 20)\n"
          fig7_gm
          (geomean_of ours)
  | None -> ()
  | exception _ -> ());
  (* Persist the trajectory. *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"config\": {\"quick\": %b, \"oracle\": %b, \"sf_bits\": %d, \
        \"waterline_bits\": 20},\n"
       !quick !oracle sf_bits);
  Buffer.add_string buf "  \"drift\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"bench\": \"%s\", \"strategy\": \"%s\", \"winner\": \"%s\", \
            \"estimated_seconds\": %.6f, \"epochs\": %d, \"plans\": %d%s}%s\n"
           r.x_bench r.x_strategy r.x_winner r.x_est r.x_epochs r.x_plans
           (match r.x_drift with
           | Some d -> Printf.sprintf ", \"drift\": %.4f" d
           | None -> "")
           (if i = n - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n  \"speedups\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"kernel\": \"explore/%s/%s\", \"n\": %d, \"levels\": %d, \"speedup\": \
            %.4f}%s\n"
           r.x_bench r.x_strategy r.x_secure_n r.x_levels r.x_speedup
           (if i = n - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Hecate_support.Fileio.write_atomic ~path:!out (Buffer.contents buf);
  Printf.printf "\nwrote %s\n" !out;
  if !rejections > 0 then begin
    Printf.printf "FAIL: the oracle rejected %d strategy winner(s)\n" !rejections;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Per-pass timing breakdown via the instrumented pass manager         *)
(* ------------------------------------------------------------------ *)

let passes () =
  heading "Per-pass timing breakdown (instrumented pass manager, waterline 20)";
  Printf.printf
    "Wall time and net op-count delta per registered pass, accumulated over\n\
     the whole compile — for exploring schemes this includes every candidate\n\
     plan the hill climber finalized, so the table attributes exploration\n\
     cost to individual transforms.\n";
  let benches =
    [
      Apps.sobel ~size:16 ();
      Apps.harris ~size:16 ();
      Apps.linear_regression ~epochs:2 ~samples:2048 ();
    ]
  in
  List.iter
    (fun (b : Apps.t) ->
      List.iter
        (fun scheme ->
          let c = Driver.compile scheme ~sf_bits ~waterline_bits:20. b.Apps.prog in
          let total =
            List.fold_left
              (fun acc (t : Pass_manager.timing) -> acc +. t.Pass_manager.seconds)
              0. c.Driver.pass_timings
          in
          Printf.printf "\n%s / %s — %.3f s total in passes:\n" b.Apps.name
            (Driver.scheme_name scheme) total;
          Format.printf "%a@?" Pass_manager.pp_timings c.Driver.pass_timings)
        [ Driver.Eva; Driver.Hecate ])
    benches

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the CKKS operations                     *)
(* ------------------------------------------------------------------ *)

let ops () =
  heading "CKKS operation microbenchmarks (Bechamel) -- the profile behind the estimator";
  let open Bechamel in
  let n = 2048 and levels = 8 in
  let params = Hecate_ckks.Params.create ~n ~q0_bits:30 ~sf_bits:28 ~levels () in
  let eval = Hecate_ckks.Eval.create ~seed:0xB33F params ~rotations:[ 1 ] in
  let module E = Hecate_ckks.Eval in
  let v = Array.init (n / 2) (fun i -> 0.25 +. (0.001 *. float_of_int (i mod 13))) in
  let fresh = E.encrypt_vector eval ~scale:0x1p20 v in
  let at_level lvl =
    let rec drop ct k = if k = 0 then ct else drop (E.mod_switch eval ct) (k - 1) in
    drop fresh lvl
  in
  let tests =
    List.concat_map
      (fun lvl ->
        let ct = at_level lvl in
        let pt = E.encode eval ~level:lvl ~scale:0x1p20 v in
        let primes = levels + 1 - lvl in
        let name op = Printf.sprintf "%s/primes=%d" op primes in
        [
          Test.make ~name:(name "cipher_add") (Staged.stage (fun () -> E.add eval ct ct));
          Test.make ~name:(name "plain_add") (Staged.stage (fun () -> E.add_plain eval ct pt));
          Test.make ~name:(name "cipher_mul") (Staged.stage (fun () -> E.mul eval ct ct));
          Test.make ~name:(name "plain_mul") (Staged.stage (fun () -> E.mul_plain eval ct pt));
          Test.make ~name:(name "rotate") (Staged.stage (fun () -> E.rotate eval ct 1));
          Test.make ~name:(name "rescale")
            (Staged.stage
               (let sq = E.mul_plain eval ct pt in
                fun () -> E.rescale eval sq));
          Test.make ~name:(name "modswitch") (Staged.stage (fun () -> E.mod_switch eval ct));
          Test.make ~name:(name "encode")
            (Staged.stage (fun () -> E.encode eval ~level:lvl ~scale:0x1p20 v));
        ])
      [ 0; 4; 7 ]
  in
  let test = Test.make_grouped ~name:"ckks" ~fmt:"%s/%s" tests in
  let benchmark =
    Benchmark.all
      (Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ())
      Toolkit.Instance.[ monotonic_clock ]
      test
  in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock benchmark in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  Printf.printf "%-32s %14s\n%s\n" "operation" "time/op" (String.make 48 '-');
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ ns ] ->
          if ns > 1e6 then Printf.printf "%-32s %11.3f ms\n" name (ns /. 1e6)
          else Printf.printf "%-32s %11.3f us\n" name (ns /. 1e3)
      | _ -> Printf.printf "%-32s %14s\n" name "n/a")
    (List.sort compare rows);
  Printf.printf
    "\nNote the shape the paper exploits: every operation is cheaper with fewer\n\
     remaining primes (higher rescaling level); cipher_mul and rotate fall\n\
     superlinearly because key switching is quadratic in the prime count.\n"

(* ------------------------------------------------------------------ *)
(* RNS kernel microbenchmarks: fast vs reference paths                 *)
(* ------------------------------------------------------------------ *)

let kernels flags =
  let module Ntt = Hecate_support.Ntt in
  let module Pr = Hecate_support.Primes in
  let module Prng = Hecate_support.Prng in
  let module K = Hecate_support.Kernels in
  let module Buf = Hecate_support.Buf in
  let module PoolK = Hecate_support.Pool.Kernel in
  let module E = Hecate_ckks.Eval in
  let module Poly = Hecate_rns.Poly in
  let quick = ref false in
  let reps = ref 5 in
  let warmup = ref 1 in
  let out = ref "BENCH_kernels.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--reps" :: v :: rest ->
        reps := int_of_string v;
        parse rest
    | "--warmup" :: v :: rest ->
        warmup := int_of_string v;
        parse rest
    | "--jobs" :: v :: rest ->
        PoolK.set_jobs (int_of_string v);
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | other :: _ ->
        Printf.eprintf
          "kernels: unknown flag %s (--quick | --reps N | --warmup N | --jobs J | --out FILE)\n"
          other;
        exit 2
  in
  parse flags;
  if !reps < 1 then begin
    Printf.eprintf "kernels: --reps must be >= 1\n";
    exit 2
  end;
  heading "RNS kernel microbenchmarks -- Barrett/Shoup kernels vs reference paths";
  Printf.printf "median of %d reps (%d warmup), jobs=%d%s\n\n" !reps !warmup (PoolK.jobs ())
    (if !quick then " [quick]" else "");
  let time f = Stats.time_median ~warmup:!warmup ~min_sample_s:1e-3 ~reps:!reps f in
  let entries = ref [] in
  let record kernel variant ~n ~levels ns =
    entries := (kernel, variant, n, levels, ns) :: !entries;
    Printf.printf "  %-12s %-9s n=%-5d levels=%-2d %14.1f ns/op\n%!" kernel variant n levels ns
  in
  let speedup kernel ~n ~levels =
    let find v =
      List.find_map
        (fun (k, var, n', l', ns) -> if k = kernel && var = v && n' = n && l' = levels then Some ns else None)
        !entries
    in
    match (find "reference", find "fast") with
    | Some slow, Some fast when fast > 0. -> Some (slow /. fast)
    | _ -> None
  in
  let g = Prng.create ~seed:0xBA44E77 in
  (* modmul: element-wise modular product of two length-m residue vectors,
     measured through Ntt.pointwise_mul — the loop the kernels actually live
     in — so the division-based and Barrett paths are compared as deployed
     (inlined, no per-element call). *)
  let m = 4096 in
  let q = List.hd (Pr.ntt_primes ~bits:30 ~n:m ~count:1) in
  let mm_tbl = Ntt.make_table ~p:q ~n:m in
  let xs = Buf.init m (fun _ -> Prng.uniform_mod g q) in
  let ys = Buf.init m (fun _ -> Prng.uniform_mod g q) in
  let dst = Buf.create m in
  let t_ref = K.with_naive true (fun () -> time (fun () -> Ntt.pointwise_mul mm_tbl dst xs ys)) in
  let t_fast =
    K.with_naive false (fun () -> time (fun () -> Ntt.pointwise_mul mm_tbl dst xs ys))
  in
  record "modmul" "reference" ~n:m ~levels:0 (t_ref /. float_of_int m *. 1e9);
  record "modmul" "fast" ~n:m ~levels:0 (t_fast /. float_of_int m *. 1e9);
  (* (n, levels, big): the big-ring config exists to measure the hoisted
     rotation fan and fused mul+rescale at the production degree N=2^15;
     the division-based evaluator references are skipped there (a naive
     keyswitch at that ring is ~100x the fast path and tells us nothing
     new about kernel quality). Quick mode keeps a config that overlaps
     the committed full baseline so CI can diff speedups entry-for-entry. *)
  let configs =
    if !quick then [ (1024, 4, false) ] else [ (1024, 4, false); (4096, 8, false); (32768, 8, true) ]
  in
  let fan_amounts = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  List.iter
    (fun (n, levels, big) ->
      (* NTT forward transform: division-based reference vs Shoup butterflies *)
      let p = List.hd (Pr.ntt_primes ~bits:30 ~n ~count:1) in
      let tbl = Ntt.make_table ~p ~n in
      let a = Buf.init n (fun _ -> Prng.uniform_mod g p) in
      record "ntt_forward" "reference" ~n ~levels:1 (time (fun () -> Ntt.forward_naive tbl a) *. 1e9);
      record "ntt_forward" "fast" ~n ~levels:1 (time (fun () -> Ntt.forward tbl a) *. 1e9);
      (* evaluator-level kernels at this ring degree and chain length *)
      let params = Hecate_ckks.Params.create ~n ~q0_bits:30 ~sf_bits:28 ~levels () in
      let eval = E.create ~seed:0xFA57 params ~rotations:fan_amounts in
      let v = Array.init (n / 2) (fun i -> 0.25 +. (0.001 *. float_of_int (i mod 13))) in
      let ct = E.encrypt_vector eval ~scale:0x1p20 v in
      let lc = levels + 1 in
      if not big then begin
        let d = Poly.to_coeff (ct : E.ciphertext).E.c1 in
        let relin = (E.keys eval : Hecate_ckks.Keys.t).Hecate_ckks.Keys.relin in
        let bench_pair kernel f =
          record kernel "reference" ~n ~levels:lc (K.with_naive true (fun () -> time f) *. 1e9);
          record kernel "fast" ~n ~levels:lc (K.with_naive false (fun () -> time f) *. 1e9)
        in
        bench_pair "keyswitch" (fun () -> ignore (E.keyswitch eval ~lc d relin));
        bench_pair "cipher_mul" (fun () -> ignore (E.mul eval ct ct));
        let sq = E.mul eval ct ct in
        bench_pair "rescale" (fun () -> ignore (E.rescale eval sq))
      end;
      (* algorithmic pairs: both variants run on the fast kernels; the
         "reference" leg is the per-rotation / unfused algorithm, the
         "fast" leg the hoisted / fused one, so the speedup column isolates
         the structural win rather than Barrett-vs-division arithmetic *)
      record "rotate_fan8" "reference" ~n ~levels:lc
        (time (fun () -> List.iter (fun r -> ignore (E.rotate eval ct r)) fan_amounts) *. 1e9);
      record "rotate_fan8" "fast" ~n ~levels:lc
        (time (fun () -> ignore (E.rotate_many eval ct fan_amounts)) *. 1e9);
      record "mul_rescale" "reference" ~n ~levels:lc
        (time (fun () -> ignore (E.rescale eval (E.mul eval ct ct))) *. 1e9);
      record "mul_rescale" "fast" ~n ~levels:lc
        (time (fun () -> ignore (E.mul_rescale eval ct ct)) *. 1e9))
    configs;
  (* machine-readable results *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"config\": {\"reps\": %d, \"warmup\": %d, \"jobs\": %d, \"quick\": %b},\n"
       !reps !warmup (PoolK.jobs ()) !quick);
  Buffer.add_string buf "  \"entries\": [\n";
  let ordered = List.rev !entries in
  List.iteri
    (fun i (kernel, variant, n, levels, ns) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"variant\": \"%s\", \"n\": %d, \"levels\": %d, \
            \"ns_per_op\": %.1f}%s\n"
           kernel variant n levels ns
           (if i = List.length ordered - 1 then "" else ",")))
    ordered;
  Buffer.add_string buf "  ],\n  \"speedups\": [\n";
  let keys =
    List.sort_uniq compare (List.map (fun (k, _, n, l, _) -> (k, n, l)) !entries)
  in
  let sps =
    List.filter_map
      (fun (k, n, l) -> Option.map (fun s -> (k, n, l, s)) (speedup k ~n ~levels:l))
      keys
  in
  List.iteri
    (fun i (k, n, l, s) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"kernel\": \"%s\", \"n\": %d, \"levels\": %d, \"speedup\": %.2f}%s\n"
           k n l s
           (if i = List.length sps - 1 then "" else ",")))
    sps;
  Buffer.add_string buf "  ]\n}\n";
  Hecate_support.Fileio.write_atomic ~path:!out (Buffer.contents buf);
  Printf.printf "\nspeedups (reference / fast):\n";
  List.iter
    (fun (k, n, l, s) -> Printf.printf "  %-12s n=%-5d levels=%-2d %6.2fx\n" k n l s)
    sps;
  Printf.printf "\nwrote %s\n" !out

(* ------------------------------------------------------------------ *)
(* CI regression gate over committed kernel speedups                   *)
(* ------------------------------------------------------------------ *)

(* Compare the "speedups" arrays of two kernels artifacts. Absolute
   ns/op numbers are machine-dependent, but the reference/fast ratio is
   a property of the code: a fast path that loses >25% of its advantage
   over its own reference on the same machine, same run, has regressed. *)
let check_regress flags =
  let baseline = ref "BENCH_kernels.json" in
  let current = ref "" in
  let tolerance = ref 0.25 in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
        baseline := v;
        parse rest
    | "--current" :: v :: rest ->
        current := v;
        parse rest
    | "--tolerance" :: v :: rest ->
        tolerance := float_of_string v;
        parse rest
    | other :: _ ->
        Printf.eprintf
          "check-regress: unknown flag %s (--baseline FILE | --current FILE | --tolerance X)\n"
          other;
        exit 2
  in
  parse flags;
  if !current = "" then begin
    Printf.eprintf "check-regress: --current FILE is required\n";
    exit 2
  end;
  let speedups path =
    let j =
      try Json.parse (Hecate_support.Fileio.read_file ~path) with
      | Sys_error msg ->
          Printf.eprintf "check-regress: cannot read %s: %s\n" path msg;
          exit 2
      | Json.Parse_error msg ->
          Printf.eprintf "check-regress: %s is not valid JSON: %s\n" path msg;
          exit 2
    in
    List.filter_map
      (fun e ->
        match
          ( Json.to_string (Json.member "kernel" e),
            Json.to_int (Json.member "n" e),
            Json.to_int (Json.member "levels" e),
            Json.to_float (Json.member "speedup" e) )
        with
        | Some k, Some n, Some l, Some s -> Some ((k, n, l), s)
        | _ -> None)
      (Json.to_list (Json.member "speedups" j))
  in
  heading "Kernel speedup regression gate";
  Printf.printf "baseline %s vs current %s, tolerance %.0f%%\n\n" !baseline !current
    (!tolerance *. 100.);
  let base = speedups !baseline in
  let cur = speedups !current in
  let compared = ref 0 in
  let regressions = ref [] in
  List.iter
    (fun ((k, n, l), s_base) ->
      match List.assoc_opt (k, n, l) cur with
      | None -> () (* quick runs cover a subset of the committed configs *)
      | Some s_cur ->
          incr compared;
          let ok = s_cur >= s_base *. (1. -. !tolerance) in
          Printf.printf "  %-12s n=%-5d levels=%-2d baseline %6.2fx current %6.2fx %s\n" k n l
            s_base s_cur
            (if ok then "ok" else "REGRESSED");
          if not ok then regressions := (k, n, l, s_base, s_cur) :: !regressions)
    base;
  if !compared = 0 then begin
    Printf.eprintf
      "\ncheck-regress: no overlapping speedup entries between %s and %s -- \
       the gate compared nothing, failing\n"
      !baseline !current;
    exit 1
  end;
  if !regressions <> [] then begin
    Printf.eprintf "\n%d kernel speedup(s) regressed more than %.0f%%:\n"
      (List.length !regressions) (!tolerance *. 100.);
    List.iter
      (fun (k, n, l, s_base, s_cur) ->
        Printf.eprintf "  %s n=%d levels=%d: %.2fx -> %.2fx\n" k n l s_base s_cur)
      !regressions;
    exit 1
  end;
  Printf.printf "\nall %d compared speedups within tolerance\n" !compared

(* ------------------------------------------------------------------ *)
(* Plan-cache serving latencies                                        *)
(* ------------------------------------------------------------------ *)

(* The latency trade the daemon lives on: a cold fig2 compile pays the
   full SMSE exploration, a warm hit answers from the content-addressed
   plan cache (memory or disk) with the byte-identical artifact. Writes
   BENCH_serve.json with the same "speedups" schema as the kernel
   artifact, so check-regress gates it unchanged; the speedup column is
   cold-seconds / warm-seconds. Fails (exit 1) if a memory hit is not at
   least 10x faster than a cold miss — the serving design point. *)
let serve flags =
  let module Plancache = Hecate.Plancache in
  let out = ref "BENCH_serve.json" in
  let reps = ref 200 in
  let cold_reps = ref 7 in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--reps" :: v :: rest ->
        reps := int_of_string v;
        parse rest
    | "--cold-reps" :: v :: rest ->
        cold_reps := int_of_string v;
        parse rest
    | "--quick" :: rest ->
        reps := 50;
        cold_reps := 3;
        parse rest
    | other :: _ ->
        Printf.eprintf
          "serve: unknown flag %s (--out FILE | --reps N | --cold-reps N | --quick)\n" other;
        exit 2
  in
  parse flags;
  heading "Plan-cache serving latencies (fig2, HECATE scheme)";
  let prog =
    let b = Prog.Builder.create ~name:"fig2" ~slot_count:64 () in
    let x = Prog.Builder.input b "x" in
    let y = Prog.Builder.input b "y" in
    let s = Prog.Builder.add b (Prog.Builder.mul b x x) (Prog.Builder.mul b y y) in
    Prog.Builder.output b (Prog.Builder.mul b (Prog.Builder.mul b s s) s);
    Prog.Builder.finish b
  in
  let compile cache =
    Plancache.compile cache ~scheme:Driver.Hecate ~sf_bits ~waterline_bits:20. prog
  in
  let median_of f k =
    Stats.median (Array.init k (fun _ -> f ()))
  in
  let now = Unix.gettimeofday in
  (* cold: a fresh cache per measurement, so every compile explores *)
  let cold =
    median_of
      (fun () ->
        let cache = Plancache.create () in
        let t0 = now () in
        let _, origin = compile cache in
        assert (origin = Plancache.Cold);
        now () -. t0)
      !cold_reps
  in
  (* warm memory hits against one long-lived cache *)
  let cache = Plancache.create () in
  let entry, _ = compile cache in
  let warm_mem =
    median_of
      (fun () ->
        let t0 = now () in
        let e, origin = compile cache in
        assert (origin = Plancache.Memory);
        assert (String.equal e.Plancache.artifact entry.Plancache.artifact);
        now () -. t0)
      !reps
  in
  (* disk hits: a fresh in-memory state over a shared store, as after a
     daemon restart *)
  let dir = Filename.temp_file "hecate_bench_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  ignore (compile (Plancache.create ~dir ()));
  let warm_disk =
    median_of
      (fun () ->
        let fresh = Plancache.create ~dir () in
        let t0 = now () in
        let e, origin = compile fresh in
        assert (origin = Plancache.Disk);
        assert (String.equal e.Plancache.artifact entry.Plancache.artifact);
        now () -. t0)
      (min !reps 50)
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  (* sustained hit throughput on the long-lived cache *)
  let hits = ref 0 in
  let t0 = now () in
  while now () -. t0 < 0.1 do
    ignore (compile cache);
    incr hits
  done;
  let hits_per_s = float_of_int !hits /. (now () -. t0) in
  let n = entry.Plancache.params.Paramselect.secure_n in
  let levels = entry.Plancache.params.Paramselect.chain_levels in
  let sp_mem = cold /. Float.max 1e-9 warm_mem in
  let sp_disk = cold /. Float.max 1e-9 warm_disk in
  Printf.printf "  cold compile (full exploration)  %10.3f ms\n" (cold *. 1e3);
  Printf.printf "  warm hit, memory                 %10.3f ms  (%.0fx)\n" (warm_mem *. 1e3)
    sp_mem;
  Printf.printf "  warm hit, disk                   %10.3f ms  (%.0fx)\n" (warm_disk *. 1e3)
    sp_disk;
  Printf.printf "  sustained hit throughput         %10.0f hits/s\n" hits_per_s;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"config\": {\"reps\": %d, \"cold_reps\": %d, \"benchmark\": \"fig2\", \
                     \"scheme\": \"HECATE\"},\n"
       !reps !cold_reps);
  Buffer.add_string buf "  \"entries\": [\n";
  List.iteri
    (fun i (kernel, variant, seconds) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"variant\": \"%s\", \"n\": %d, \"levels\": %d, \
            \"ns_per_op\": %.1f}%s\n"
           kernel variant n levels (seconds *. 1e9)
           (if i = 3 then "" else ",")))
    [
      ("plan_cache_memory", "reference", cold);
      ("plan_cache_memory", "fast", warm_mem);
      ("plan_cache_disk", "reference", cold);
      ("plan_cache_disk", "fast", warm_disk);
    ];
  Buffer.add_string buf "  ],\n  \"speedups\": [\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"kernel\": \"plan_cache_memory\", \"n\": %d, \"levels\": %d, \"speedup\": %.2f},\n"
       n levels sp_mem);
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"kernel\": \"plan_cache_disk\", \"n\": %d, \"levels\": %d, \"speedup\": %.2f}\n"
       n levels sp_disk);
  Buffer.add_string buf "  ]\n}\n";
  Hecate_support.Fileio.write_atomic ~path:!out (Buffer.contents buf);
  Printf.printf "\nwrote %s\n" !out;
  if sp_mem < 10. then begin
    Printf.eprintf
      "serve: warm memory hit is only %.1fx faster than a cold compile (need >= 10x)\n" sp_mem;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* SIMD batching: packed lowering vs the one-slot naive baseline       *)
(* ------------------------------------------------------------------ *)

(* For each packed workload, lower once with the layout-assignment pass
   (auto) and once with the naive one-slot lowering, scale-manage both
   under HECATE, and compare (a) rotations in the managed program — the
   rotation-key budget — and (b) measured end-to-end latency on the CKKS
   backend. Writes BENCH_batch.json in the kernels schema so check-regress
   gates it unchanged; "<app>/rotations" speedups are exact op-count
   ratios (deterministic), "<app>/latency" speedups are wall-clock. *)
let batch flags =
  let module Lower = Hecate_batch.Lower in
  let module Batch_apps = Hecate_apps.Batch_apps in
  let quick = ref false in
  let reps = ref 7 in
  let out = ref "BENCH_batch.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        reps := 3;
        parse rest
    | "--reps" :: v :: rest ->
        reps := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | other :: _ ->
        Printf.eprintf "batch: unknown flag %s (--quick | --reps N | --out FILE)\n" other;
        exit 2
  in
  parse flags;
  heading "SIMD batching -- layout-assigned lowering vs one-slot naive baseline";
  Printf.printf
    "HECATE scheme, waterline 20; latency is the median of %d backend runs%s.\n\n" !reps
    (if !quick then " [quick]" else "");
  let entries = ref [] in
  let speedups = ref [] in
  List.iter
    (fun (app : Batch_apps.t) ->
      let lower spec =
        match Lower.lower ~spec app.Batch_apps.surface with
        | Ok l -> l
        | Error d ->
            Printf.eprintf "batch: lowering %s failed: %s\n" app.Batch_apps.name
              (Hecate_ir.Diagnostic.to_string d);
            exit 1
      in
      let measure (l : Lower.lowered) =
        let c =
          Driver.compile ~passes:(Pass_manager.parse_exn Lower.pipeline) Driver.Hecate
            ~sf_bits ~waterline_bits:20. l.Lower.prog
        in
        let inputs =
          List.map (fun (n, d) -> (n, Lower.pack_input l n d)) app.Batch_apps.inputs
        in
        let eval =
          Interp.context ~params:c.Driver.params
            ~rotations:(Interp.required_rotations c.Driver.prog) ()
        in
        let seconds =
          Stats.time_median ~warmup:1 ~min_sample_s:1e-4 ~reps:!reps (fun () ->
              ignore (Interp.execute eval ~waterline_bits:20. c.Driver.prog ~inputs))
        in
        let exec_n = (Hecate_ckks.Eval.params eval).Hecate_ckks.Params.n in
        (Lower.count_rotations c.Driver.prog, seconds, exec_n,
         c.Driver.params.Paramselect.chain_levels)
      in
      let nv_rot, nv_s, exec_n, levels = measure (lower Lower.Naive) in
      let au_rot, au_s, _, _ = measure (lower Lower.Auto) in
      let name = app.Batch_apps.name in
      let record kernel variant value =
        entries := (kernel, variant, exec_n, levels, value) :: !entries
      in
      record (name ^ "/rotations") "reference" (float_of_int nv_rot);
      record (name ^ "/rotations") "fast" (float_of_int au_rot);
      record (name ^ "/latency") "reference" (nv_s *. 1e9);
      record (name ^ "/latency") "fast" (au_s *. 1e9);
      let rot_sp = float_of_int nv_rot /. float_of_int (max 1 au_rot) in
      let lat_sp = nv_s /. Float.max 1e-9 au_s in
      speedups :=
        ((name ^ "/latency", exec_n, levels), lat_sp)
        :: ((name ^ "/rotations", exec_n, levels), rot_sp)
        :: !speedups;
      Printf.printf
        "  %-15s rotations %3d -> %3d (%4.1fx)   latency %8.3f ms -> %8.3f ms (%4.1fx)\n%!"
        name nv_rot au_rot rot_sp (nv_s *. 1e3) (au_s *. 1e3) lat_sp)
    (Batch_apps.suite ());
  (* the acceptance bar the batching subsystem ships under: the layout
     pass must at least halve matvec's rotation count vs naive *)
  (match
     List.find_map
       (fun ((k, _, _), s) -> if k = "batch-matvec/rotations" then Some s else None)
       !speedups
   with
  | Some s when s < 2. ->
      Printf.eprintf "batch: matvec rotation reduction %.2fx < 2x -- layout pass regressed\n" s;
      exit 1
  | _ -> ());
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"config\": {\"reps\": %d, \"quick\": %b, \"scheme\": \"HECATE\", \
        \"waterline_bits\": 20, \"note\": \"rotations entries are op counts, not times\"},\n"
       !reps !quick);
  Buffer.add_string buf "  \"entries\": [\n";
  let ordered = List.rev !entries in
  List.iteri
    (fun i (kernel, variant, n, levels, v) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"variant\": \"%s\", \"n\": %d, \"levels\": %d, \
            \"ns_per_op\": %.1f}%s\n"
           kernel variant n levels v
           (if i = List.length ordered - 1 then "" else ",")))
    ordered;
  Buffer.add_string buf "  ],\n  \"speedups\": [\n";
  let sps = List.rev !speedups in
  List.iteri
    (fun i ((k, n, l), s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"n\": %d, \"levels\": %d, \"speedup\": %.2f}%s\n" k n l s
           (if i = List.length sps - 1 then "" else ",")))
    sps;
  Buffer.add_string buf "  ]\n}\n";
  Hecate_support.Fileio.write_atomic ~path:!out (Buffer.contents buf);
  Printf.printf "\nwrote %s\n" !out

(* ------------------------------------------------------------------ *)
(* Differential fuzzing of the four schemes                            *)
(* ------------------------------------------------------------------ *)

let fuzz flags =
  let module Gen = Hecate_fuzz.Gen in
  let module Campaign = Hecate_fuzz.Campaign in
  let seed = ref 42 in
  let count = ref 200 in
  let max_depth = ref Gen.default_config.Gen.max_depth in
  let max_ops = ref Gen.default_config.Gen.max_ops in
  let out = ref "test/corpus" in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--count" :: v :: rest ->
        count := int_of_string v;
        parse rest
    | "--max-depth" :: v :: rest ->
        max_depth := int_of_string v;
        parse rest
    | "--max-ops" :: v :: rest ->
        max_ops := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | other :: _ ->
        Printf.eprintf
          "fuzz: unknown flag %s (--seed N | --count N | --max-depth N | --max-ops N | --out DIR)\n"
          other;
        exit 2
  in
  parse flags;
  heading "Differential fuzzing -- 4 schemes x random programs vs plaintext reference";
  Printf.printf
    "seed %d, %d cases, max depth %d, max ops %d; failures are shrunk and written to %s/\n\
     (case i uses seed %d+i: reproduce one case with --seed <case seed> --count 1)\n\n%!"
    !seed !count !max_depth !max_ops !out !seed;
  let gen = { Gen.default_config with Gen.max_depth = !max_depth; max_ops = !max_ops } in
  let report =
    Campaign.run ~gen ~out_dir:!out ~log:print_endline ~seed:!seed ~count:!count ()
  in
  Printf.printf "\n%d cases in %.1f s (%.1f cases/s): %d failure(s)\n" report.Campaign.count
    report.Campaign.elapsed_seconds
    (float_of_int report.Campaign.count /. Float.max 1e-9 report.Campaign.elapsed_seconds)
    (List.length report.Campaign.failures);
  if report.Campaign.failures <> [] then begin
    List.iter
      (fun (f : Campaign.case_failure) ->
        Printf.printf "  seed %d: %s (shrunk to %d ops%s)\n" f.Campaign.case_seed
          (Hecate_fuzz.Oracle.describe f.Campaign.failure)
          (Prog.num_ops f.Campaign.shrunk)
          (match f.Campaign.repro_path with Some p -> ", " ^ p | None -> ""))
      report.Campaign.failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* The single subcommand table: the dispatcher and its usage string are
   both generated from this list, so a subcommand cannot be registered
   without appearing in the usage line (the old hand-maintained usage
   string had drifted out of sync with the dispatcher). [takes_flags]
   subcommands receive the remaining argv as flags; the rest can be
   chained, e.g. `bench/main.exe table2 fig8`. *)
type subcommand = { sc_name : string; sc_takes_flags : bool; sc_run : string list -> unit }

let plain name f = { sc_name = name; sc_takes_flags = false; sc_run = (fun _ -> f ()) }
let flagged name f = { sc_name = name; sc_takes_flags = true; sc_run = f }

let all () =
  fig7 ();
  table2 ();
  table3 ();
  fig8 ();
  fig7_paper ();
  explore_cmd [];
  passes ();
  ablate ();
  ops ()

let subcommands =
  [
    flagged "fig7" fig7_cmd;
    plain "fig7paper" fig7_paper;
    plain "table2" table2;
    plain "table3" table3;
    plain "fig8" fig8;
    flagged "explore" explore_cmd;
    plain "passes" passes;
    plain "ops" ops;
    plain "ablate" ablate;
    flagged "kernels" kernels;
    flagged "serve" serve;
    flagged "batch" batch;
    flagged "fuzz" fuzz;
    flagged "check-regress" check_regress;
    plain "all" all;
  ]

let usage () = String.concat "|" (List.map (fun s -> s.sc_name) subcommands)

let find_subcommand name =
  match List.find_opt (fun s -> s.sc_name = name) subcommands with
  | Some s -> s
  | None ->
      Printf.eprintf "unknown subcommand %s (%s)\n" name (usage ());
      exit 2

let () =
  let t0 = Unix.gettimeofday () in
  let cmds = match Array.to_list Sys.argv with _ :: (_ :: _ as rest) -> rest | _ -> [ "all" ] in
  (match cmds with
  | name :: flags when (find_subcommand name).sc_takes_flags -> (find_subcommand name).sc_run flags
  | _ -> List.iter (fun name -> (find_subcommand name).sc_run []) cmds);
  Printf.printf "\ntotal harness time: %.1f s\n" (Unix.gettimeofday () -. t0)
