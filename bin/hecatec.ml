(* hecatec: command-line driver for the HECATE compiler.

   Subcommands:
     compile   parse a .hec program, scale-manage it under a scheme, print
               the managed IR, selected parameters and estimated latency
     run       compile and execute on the in-repo RNS-CKKS backend
     bench     compile one of the built-in benchmarks
     info      structural statistics of a program (SMUs, liveness, ...)
*)

open Cmdliner

module Prog = Hecate_ir.Prog
module Diagnostic = Hecate_ir.Diagnostic
module Parser = Hecate_ir.Parser
module Printer = Hecate_ir.Printer
module Liveness = Hecate_ir.Liveness
module Pass_manager = Hecate_ir.Pass_manager
module Driver = Hecate.Driver
module Explore = Hecate.Explore
module Smu = Hecate.Smu
module Paramselect = Hecate.Paramselect
module Interp = Hecate_backend.Interp
module Accuracy = Hecate_backend.Accuracy
module Apps = Hecate_apps.Apps
module Surface = Hecate_batch.Surface
module Lower = Hecate_batch.Lower

(* ------------------------------------------------------------------ *)
(* Diagnostic rendering                                                 *)
(* ------------------------------------------------------------------ *)

type error_format = Human | Json

(* Set by every subcommand before doing any work, read by the top-level
   handler after the exception has unwound the cmdliner evaluation. *)
let error_format = ref Human

let error_format_arg =
  Arg.(value & opt (enum [ ("human", Human); ("json", Json) ]) Human
         & info [ "error-format" ] ~docv:"FMT"
             ~doc:"How to render compilation errors on stderr: $(b,human) (multi-line, \
                   with source provenance and a hint) or $(b,json) (a single machine-readable \
                   object; field $(b,code) is the stable error class).")

let set_error_format fmt = error_format := fmt

let render_diagnostic (d : Diagnostic.t) =
  (match !error_format with
  | Human -> Format.eprintf "%a@." Diagnostic.pp d
  | Json -> Printf.eprintf "%s\n" (Diagnostic.to_json d));
  1

(* Every failure mode of the subcommands funnels into a diagnostic: already
   structured ones pass through; parse errors, pass-manager failures and
   configuration errors are wrapped. No exception reaches the user as a
   backtrace. *)
let handle_errors f =
  try f () with
  | Diagnostic.Error d -> exit (render_diagnostic d)
  | Parser.Parse_error { line; message } ->
      exit
        (render_diagnostic
           (Diagnostic.v ~code:Diagnostic.Parse_error
              ~hint:"see docs/ARCHITECTURE.md for the textual program grammar"
              (Printf.sprintf "line %d: %s" line message)))
  | Pass_manager.Pass_failed { pass; reason } ->
      exit
        (render_diagnostic
           (Diagnostic.v ~code:Diagnostic.Internal
              ~hint:"this is a compiler bug; re-run with --print-ir-after to bisect the pipeline"
              (Printf.sprintf "pass %s failed: %s" pass reason)))
  | Invalid_argument msg ->
      exit
        (render_diagnostic
           (Diagnostic.v ~code:Diagnostic.Precondition
              ~hint:
                "the configuration cannot accommodate this program; adjust the waterline, \
                 rescaling factor or program depth"
              msg))
  | Sys_error msg ->
      exit (render_diagnostic (Diagnostic.v ~code:Diagnostic.Precondition msg))

let scheme_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "eva" -> Ok Driver.Eva
    | "pars" -> Ok Driver.Pars
    | "smse" -> Ok Driver.Smse
    | "hecate" -> Ok Driver.Hecate
    | _ -> Error (`Msg "scheme must be one of: eva, pars, smse, hecate")
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Driver.scheme_name s))

let scheme_arg =
  Arg.(value & opt scheme_conv Driver.Hecate & info [ "s"; "scheme" ] ~docv:"SCHEME"
         ~doc:"Scale-management scheme: eva, pars, smse or hecate.")

let waterline_arg =
  Arg.(value & opt float 20. & info [ "w"; "waterline" ] ~docv:"BITS"
         ~doc:"Waterline (minimum ciphertext scale), in bits.")

let sf_arg =
  Arg.(value & opt int 28 & info [ "f"; "rescale-factor" ] ~docv:"BITS"
         ~doc:"Rescaling factor $(b,S_f) (rescale prime size), in bits.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input .hec program.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for SMSE exploration (default: available cores - 1; \
               the result is identical for every value).")

let kernel_jobs_arg =
  Arg.(value & opt (some int) None & info [ "kernel-jobs" ] ~docv:"N"
         ~doc:"Worker domains for the per-RNS-component CKKS kernels (NTT and \
               element-wise polynomial loops). Default 1 (serial), or the \
               $(b,HECATE_KERNEL_JOBS) environment variable; results are \
               bit-identical for every value. See docs/PERFORMANCE.md.")

let set_kernel_jobs jobs = Option.iter Hecate_support.Pool.Kernel.set_jobs jobs

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ]
         ~doc:"Print the per-epoch exploration trace (candidates, memo-cache hits, \
               best cost, wall-clock) and, when strategies race, the per-strategy \
               outcomes.")

let strategy_conv =
  let parse s =
    let s = String.lowercase_ascii s in
    if Explore.known_strategy s then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown strategy %S (expected %s or %s)" s
             (String.concat ", " (Explore.strategy_names ()))
             Explore.portfolio_name))
  in
  Arg.conv (parse, Format.pp_print_string)

let strategy_arg =
  let env =
    Cmd.Env.info "HECATE_STRATEGY"
      ~doc:"Default exploration strategy when $(b,--strategy) is not given."
  in
  Arg.(value & opt strategy_conv Explore.default_strategy
         & info [ "strategy" ] ~docv:"NAME" ~env
             ~doc:"Exploration strategy for the SMSE/HECATE schemes: $(b,hill-climb) \
                   (the default), $(b,beam), $(b,anneal), $(b,gradient), or \
                   $(b,portfolio) to race every registered strategy under one shared \
                   budget (the winner is deterministic — independent of worker count \
                   and registration order).")

let oracle_arg =
  Arg.(value & flag & info [ "oracle" ]
         ~doc:"Re-validate the winning plan of every exploration strategy through the \
               differential oracle (structural validation, the C1-C3 type system, \
               print/parse round-trip, encrypted execution against the plaintext \
               reference, and agreement with an EVA baseline) before accepting it. \
               Rejections fail the compile with code $(b,oracle-rejected). Only \
               meaningful for the exploring schemes, compiled in-process.")

let gate_of ~oracle ~sf_bits ~waterline_bits prog =
  if oracle then Some (Hecate_fuzz.Oracle.explorer_gate ~sf_bits ~waterline_bits prog)
  else None

let passes_conv =
  let parse s =
    match Pass_manager.parse s with Ok p -> Ok p | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Pass_manager.to_string p))

let passes_arg =
  Arg.(value & opt (some passes_conv) None & info [ "passes" ] ~docv:"SPEC"
         ~doc:"Replace the cleanup pipeline run before scale management. SPEC is a \
               comma-separated pass list with $(b,fixpoint(...)) nesting, e.g. \
               'cse,constant-fold,fixpoint(fold-rotations,dce)'.")

let timing_arg =
  Arg.(value & flag & info [ "timing" ]
         ~doc:"Print a per-pass timing table (name, runs, wall seconds, op-count delta) \
               accumulated over the whole compile, including exploration.")

let ir_after_conv =
  let parse s =
    if String.lowercase_ascii s = "all" then Ok Pass_manager.Dump_all
    else
      match Pass_manager.find s with
      | Some _ -> Ok (Pass_manager.Dump_passes [ s ])
      | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown pass %S (expected \"all\" or one of: %s)" s
                 (String.concat ", "
                    (List.map
                       (fun (p : Pass_manager.pass) -> p.Pass_manager.name)
                       (Pass_manager.registered ())))))
  in
  let print fmt = function
    | Pass_manager.Dump_all -> Format.pp_print_string fmt "all"
    | Pass_manager.Dump_passes names -> Format.pp_print_string fmt (String.concat "," names)
    | Pass_manager.No_dump -> Format.pp_print_string fmt "none"
  in
  Arg.conv (parse, print)

let ir_after_arg =
  Arg.(value & opt (some ir_after_conv) None & info [ "print-ir-after" ] ~docv:"PASS"
         ~doc:"Dump the IR after each execution of PASS (or of every pass, with \
               $(b,all)). Exploring schemes finalize many candidate plans; combine \
               with -s eva/pars for a single-trajectory dump.")

let instr_of ir_after =
  match ir_after with
  | None -> Pass_manager.instrumentation ()
  | Some dump_after -> Pass_manager.instrumentation ~dump_after ()

let report_timing show (c : Driver.compiled) =
  if show then begin
    print_string "; per-pass timing:\n";
    Format.printf "%a@?" Pass_manager.pp_timings c.Driver.pass_timings
  end

let bench_conv =
  let parse s =
    let pick f = Ok (f ()) in
    match String.lowercase_ascii s with
    | "sf" | "sobel" -> pick (fun () -> Apps.sobel ())
    | "hcd" | "harris" -> pick (fun () -> Apps.harris ())
    | "mlp" -> pick (fun () -> Apps.mlp ())
    | "lenet" -> pick (fun () -> Apps.lenet ())
    | "lenet-r" -> pick (fun () -> Apps.lenet ~reduced:true ())
    | "lr-e2" -> pick (fun () -> Apps.linear_regression ~epochs:2 ())
    | "lr-e3" -> pick (fun () -> Apps.linear_regression ~epochs:3 ())
    | "pr-e2" -> pick (fun () -> Apps.polynomial_regression ~epochs:2 ())
    | "pr-e3" -> pick (fun () -> Apps.polynomial_regression ~epochs:3 ())
    | _ -> Error (`Msg "unknown benchmark (sf, hcd, mlp, lenet, lenet-r, lr-e2, lr-e3, pr-e2, pr-e3)")
  in
  Arg.conv (parse, fun fmt (b : Apps.t) -> Format.pp_print_string fmt b.Apps.name)

let report_compiled ?(dump = true) ?(verbose = false) (c : Driver.compiled) =
  if dump then print_string (Printer.to_string c.Driver.prog);
  Printf.printf "; ops: %d\n" (Prog.num_ops c.Driver.prog);
  Printf.printf "; modulus chain: q0 = %d bits + %d rescale primes x %d bits (log2 Q = %.0f)\n"
    c.Driver.params.Paramselect.q0_bits c.Driver.params.Paramselect.chain_levels
    c.Driver.params.Paramselect.sf_bits c.Driver.params.Paramselect.log_q;
  Printf.printf "; ring degree for 128-bit security: N = %d\n" c.Driver.params.Paramselect.secure_n;
  Printf.printf "; estimated latency at that degree: %.3f s\n" c.Driver.estimated_seconds;
  match c.Driver.exploration with
  | None -> ()
  | Some e ->
      Printf.printf "; exploration: %d units, %d edges, %d epochs, %d plans\n" e.Driver.units
        e.Driver.smu_edges e.Driver.epochs e.Driver.plans_explored;
      if verbose then begin
        Printf.printf "; exploration detail: %d cache hits, %.3f s wall (%.1f plans/s)\n"
          e.Driver.cache_hits e.Driver.elapsed_seconds
          (float_of_int e.Driver.plans_explored /. Float.max 1e-9 e.Driver.elapsed_seconds);
        Printf.printf "; strategy: %s%s\n" e.Driver.strategy
          (if e.Driver.seeded then " (warm-started from the plan corpus)" else "");
        if List.length e.Driver.strategies > 1 then
          List.iter
            (fun (s : Explore.strategy_stats) ->
              Printf.printf ";   %-10s best %.6f s, %d epochs, %d steps%s\n"
                s.Explore.strategy s.Explore.s_best_cost s.Explore.s_epochs
                s.Explore.s_steps
                (match s.Explore.s_gate with
                | Explore.Not_gated -> ""
                | Explore.Gate_passed -> ", oracle: passed"
                | Explore.Gate_rejected f ->
                    Printf.sprintf ", oracle: rejected at %s" f.Explore.failed_check))
            e.Driver.strategies;
        List.iter
          (fun (t : Explore.epoch_trace) ->
            Printf.printf
              ";   epoch %3d: %4d candidates (%d cached), best %.6f s, %.3f s wall\n"
              t.Explore.epoch t.Explore.candidates t.Explore.cache_hits
              t.Explore.best_cost t.Explore.elapsed_seconds)
          e.Driver.trace
      end

(* Thin client path: ship the program text to a running hecated and print
   the artifact it returns. A warm server answers from its plan cache
   without re-running exploration, so repeat compiles are near-instant. *)
let compile_remote ~socket ~file ~scheme ~waterline ~sf ~strategy ~verbose =
  let program =
    let ic = open_in_bin file in
    Fun.protect ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let submit =
    {
      Hecate_serve.Protocol.program;
      scheme;
      sf_bits = sf;
      waterline_bits = waterline;
      max_epochs = 100;
      budget_seconds = None;
      strategy = (if strategy = Explore.default_strategy then None else Some strategy);
      stream = verbose;
    }
  in
  let on_progress ~strategy ~epoch ~best_cost =
    if verbose then
      Printf.eprintf "; [%s] epoch %3d: best %.6f s\n%!" strategy epoch best_cost
  in
  match Hecate_serve.Client.compile ~socket ~on_progress submit with
  | Error msg ->
      exit (render_diagnostic (Diagnostic.v ~code:Diagnostic.Precondition msg))
  | Ok { Hecate_serve.Client.result; client_seconds; _ } ->
      print_string result.Hecate_serve.Protocol.artifact;
      Printf.printf "; estimated latency: %.3f s (ring degree %d)\n"
        result.Hecate_serve.Protocol.estimated_seconds
        result.Hecate_serve.Protocol.secure_n;
      Printf.printf "; remote: origin=%s server=%.6fs round-trip=%.6fs fingerprint=%s\n"
        result.Hecate_serve.Protocol.origin result.Hecate_serve.Protocol.wall_seconds
        client_seconds result.Hecate_serve.Protocol.fingerprint;
      if result.Hecate_serve.Protocol.winner_strategy <> "" && verbose then
        Printf.printf "; remote winner strategy: %s\n"
          result.Hecate_serve.Protocol.winner_strategy

let compile_cmd =
  let run efmt file scheme waterline sf show_schedule jobs verbose passes timing ir_after
      strategy oracle remote =
    set_error_format efmt;
    handle_errors @@ fun () ->
    match remote with
    | Some socket -> compile_remote ~socket ~file ~scheme ~waterline ~sf ~strategy ~verbose
    | None ->
        let prog = Parser.parse_file file in
        let gate = gate_of ~oracle ~sf_bits:sf ~waterline_bits:waterline prog in
        let c =
          Driver.compile ?pool_size:jobs ?passes ~instr:(instr_of ir_after) ~strategy ?gate
            scheme ~sf_bits:sf ~waterline_bits:waterline prog
        in
        report_compiled ~verbose c;
        report_timing timing c;
        if show_schedule then begin
          print_endline "; lowered schedule (SEAL dialect):";
          Format.printf "%a@?" Hecate_backend.Schedule.pp
            (Hecate_backend.Schedule.lower c.Driver.prog)
        end
  in
  let schedule_arg =
    Arg.(value & flag & info [ "schedule" ]
           ~doc:"Also print the lowered buffer-addressed schedule.")
  in
  let remote_arg =
    Arg.(value & opt (some string) None & info [ "remote" ] ~docv:"SOCK"
           ~doc:"Compile through a running $(b,hecated) at this Unix socket instead of \
                 in-process. Repeat compiles of equivalent programs are answered from \
                 the server's plan cache without re-running exploration.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Scale-manage a .hec program and print the result.")
    Term.(const run $ error_format_arg $ file_arg $ scheme_arg $ waterline_arg $ sf_arg
          $ schedule_arg $ jobs_arg $ verbose_arg $ passes_arg $ timing_arg $ ir_after_arg
          $ strategy_arg $ oracle_arg $ remote_arg)

let run_cmd =
  let run efmt file scheme waterline sf seed jobs kernel_jobs verbose strategy =
    set_error_format efmt;
    handle_errors @@ fun () ->
    set_kernel_jobs kernel_jobs;
    let prog = Parser.parse_file file in
    let c =
      Driver.compile ?pool_size:jobs ~strategy scheme ~sf_bits:sf ~waterline_bits:waterline
        prog
    in
    report_compiled ~dump:false ~verbose c;
    (* random inputs in [0,1) for every declared input *)
    let g = Hecate_support.Prng.create ~seed in
    let inputs =
      List.map
        (fun v ->
          match (Prog.op c.Driver.prog v).Prog.kind with
          | Prog.Input { name } ->
              (name, Array.init prog.Prog.slot_count (fun _ -> Hecate_support.Prng.float01 g))
          | _ -> assert false)
        c.Driver.prog.Prog.inputs
    in
    let eval =
      Interp.context ~params:c.Driver.params
        ~rotations:(Interp.required_rotations c.Driver.prog) ()
    in
    let acc =
      Accuracy.measure eval ~waterline_bits:waterline c.Driver.prog ~inputs
        ~valid_slots:prog.Prog.slot_count
    in
    Printf.printf "; executed in %.3f s (ring degree %d, reduced-degree simulation)\n"
      acc.Accuracy.elapsed_seconds
      (Hecate_ckks.Eval.params eval).Hecate_ckks.Params.n;
    Printf.printf "; rmse vs plaintext reference: %.3e (max %.3e)\n" acc.Accuracy.rmse
      acc.Accuracy.max_abs_error;
    List.iteri
      (fun i out ->
        let k = min 8 (Array.length out) in
        Printf.printf "; output %d (first %d slots):" i k;
        Array.iter (fun x -> Printf.printf " %.5f" x) (Array.sub out 0 k);
        print_newline ())
      acc.Accuracy.outputs
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Input generator seed.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a .hec program on the in-repo CKKS backend.")
    Term.(const run $ error_format_arg $ file_arg $ scheme_arg $ waterline_arg $ sf_arg
          $ seed_arg $ jobs_arg $ kernel_jobs_arg $ verbose_arg $ strategy_arg)

let bench_cmd =
  let run efmt bench scheme waterline sf dump jobs kernel_jobs verbose passes timing ir_after
      strategy oracle =
    set_error_format efmt;
    handle_errors @@ fun () ->
    set_kernel_jobs kernel_jobs;
    let (b : Apps.t) = bench in
    Printf.printf "; benchmark %s (%d ops before scale management)\n" b.Apps.name
      (Prog.num_ops b.Apps.prog);
    let gate = gate_of ~oracle ~sf_bits:sf ~waterline_bits:waterline b.Apps.prog in
    let c =
      Driver.compile ?pool_size:jobs ?passes ~instr:(instr_of ir_after) ~strategy ?gate
        scheme ~sf_bits:sf ~waterline_bits:waterline b.Apps.prog
    in
    report_compiled ~dump ~verbose c;
    report_timing timing c
  in
  let bench_arg =
    Arg.(required & pos 0 (some bench_conv) None & info [] ~docv:"BENCH"
           ~doc:"Built-in benchmark name (sf, hcd, mlp, lenet, lenet-r, lr-e2, lr-e3, pr-e2, pr-e3).")
  in
  let dump_arg =
    Arg.(value & flag & info [ "dump" ] ~doc:"Print the managed IR (can be large).")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Compile a built-in benchmark and report statistics.")
    Term.(const run $ error_format_arg $ bench_arg $ scheme_arg $ waterline_arg $ sf_arg
          $ dump_arg $ jobs_arg $ kernel_jobs_arg $ verbose_arg $ passes_arg $ timing_arg
          $ ir_after_arg $ strategy_arg $ oracle_arg)

let dump_cmd =
  let run efmt bench out =
    set_error_format efmt;
    handle_errors @@ fun () ->
    let (b : Apps.t) = bench in
    let text = Printer.to_string b.Apps.prog in
    match out with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        output_string oc
          (Printf.sprintf "# %s: unmanaged HECATE IR exported by `hecatec dump`\n" b.Apps.name);
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s (%d ops)\n" path (Prog.num_ops b.Apps.prog)
  in
  let bench_arg =
    Arg.(required & pos 0 (some bench_conv) None & info [] ~docv:"BENCH"
           ~doc:"Built-in benchmark to export.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Export a built-in benchmark as a textual .hec program.")
    Term.(const run $ error_format_arg $ bench_arg $ out_arg)

let info_cmd =
  let run efmt file =
    set_error_format efmt;
    handle_errors @@ fun () ->
    let prog = Parser.parse_file file in
    let uses =
      Array.fold_left (fun acc (o : Prog.op) -> acc + Array.length o.Prog.args) 0 prog.Prog.body
    in
    Printf.printf "ops:            %d\n" (Prog.num_ops prog);
    Printf.printf "use-def edges:  %d\n" uses;
    Printf.printf "inputs:         %d\n" (List.length prog.Prog.inputs);
    Printf.printf "outputs:        %d\n" (List.length prog.Prog.outputs);
    (match Smu.generate prog with
    | smu ->
        Printf.printf "SMUs:           %d\n" (Smu.unit_count smu);
        Printf.printf "SMU edges:      %d\n" (Smu.edge_count smu)
    | exception Invalid_argument _ ->
        Printf.printf "SMUs:           n/a (program already scale-managed)\n");
    let live = Liveness.analyze prog in
    Printf.printf "peak live:      %d ciphertexts\n" live.Liveness.peak_live;
    Printf.printf "buffers needed: %d\n" live.Liveness.buffer_count
  in
  Cmd.v (Cmd.info "info" ~doc:"Structural statistics of a .hec program.")
    Term.(const run $ error_format_arg $ file_arg)

let batch_cmd =
  let run efmt file layout scheme waterline sf seed jobs kernel_jobs execute dump_unmanaged
      verbose timing =
    set_error_format efmt;
    handle_errors @@ fun () ->
    set_kernel_jobs kernel_jobs;
    let surface =
      try Surface.parse_file file
      with Parser.Parse_error { line; message } ->
        Diagnostic.error
          (Diagnostic.v ~code:Diagnostic.Parse_error
             ~hint:"see docs/BATCHING.md for the scalar surface grammar"
             (Printf.sprintf "line %d: %s" line message))
    in
    let lowered =
      match Lower.lower ~spec:layout surface with
      | Ok l -> l
      | Error d -> Diagnostic.error d
    in
    Printf.printf "; batch %s: %d slots, layout %s [%s]\n" surface.Surface.name
      lowered.Lower.slot_count
      (Lower.spec_to_string layout)
      (Hecate_batch.Layout.assignment_to_string lowered.Lower.assignment);
    Printf.printf "; lowered: %d ops, %d rotations (scalar sites batched into vector steps)\n"
      lowered.Lower.ops lowered.Lower.rotations;
    if dump_unmanaged then print_string (Printer.to_string lowered.Lower.prog);
    let c =
      Driver.compile ?pool_size:jobs
        ~passes:(Pass_manager.parse_exn Lower.pipeline)
        scheme ~sf_bits:sf ~waterline_bits:waterline lowered.Lower.prog
    in
    Printf.printf "; cleaned: %d rotations after %s\n"
      (Lower.count_rotations c.Driver.prog)
      Lower.pipeline;
    Printf.printf "; fingerprint: %s\n" (Prog.fingerprint lowered.Lower.prog);
    report_compiled ~dump:(not dump_unmanaged) ~verbose c;
    report_timing timing c;
    if execute then begin
      (* random logical inputs, packed per the chosen layouts *)
      let g = Hecate_support.Prng.create ~seed in
      let logical =
        List.filter_map
          (fun (d : Surface.array_decl) ->
            match d.Surface.kind with
            | Surface.Input ->
                Some
                  ( d.Surface.name,
                    Array.init (Surface.array_size d) (fun _ ->
                        Hecate_support.Prng.float01 g) )
            | _ -> None)
          surface.Surface.arrays
      in
      let inputs = List.map (fun (n, d) -> (n, Lower.pack_input lowered n d)) logical in
      let eval =
        Interp.context ~params:c.Driver.params
          ~rotations:(Interp.required_rotations c.Driver.prog) ()
      in
      let rep = Interp.execute eval ~waterline_bits:waterline c.Driver.prog ~inputs in
      let refs = Surface.execute surface ~inputs:logical in
      let err2 = ref 0. and maxerr = ref 0. and count = ref 0 in
      List.iter2
        (fun (name, expect) packed_out ->
          let got = Lower.decode_output lowered name packed_out in
          Array.iteri
            (fun i x ->
              let e = abs_float (got.(i) -. x) in
              err2 := !err2 +. (e *. e);
              maxerr := Float.max !maxerr e;
              incr count)
            expect)
        refs rep.Interp.outputs;
      Printf.printf "; executed in %.3f s (ring degree %d, reduced-degree simulation)\n"
        rep.Interp.elapsed_seconds
        (Hecate_ckks.Eval.params eval).Hecate_ckks.Params.n;
      Printf.printf "; rmse vs scalar reference: %.3e (max %.3e)\n"
        (sqrt (!err2 /. float_of_int (max 1 !count)))
        !maxerr;
      List.iter
        (fun (name, expect) ->
          let k = min 8 (Array.length expect) in
          Printf.printf "; output %s (first %d elements, scalar reference):" name k;
          Array.iter (fun x -> Printf.printf " %.5f" x) (Array.sub expect 0 k);
          print_newline ())
        refs
    end
  in
  let layout_conv =
    let parse s =
      match Lower.spec_of_string (String.lowercase_ascii s) with
      | Some spec -> Ok spec
      | None -> Error (`Msg "layout must be one of: auto, row, col, diag, naive")
    in
    Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Lower.spec_to_string s))
  in
  let layout_arg =
    Arg.(value & opt layout_conv Lower.Auto & info [ "l"; "layout" ] ~docv:"LAYOUT"
           ~doc:"Slot layout for array packing: $(b,auto) (rotation-count cost model picks \
                 per-array), $(b,row), $(b,col), $(b,diag), or $(b,naive) (one-slot \
                 lowering baseline, no batching across loop iterations).")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Input generator seed.")
  in
  let exec_arg =
    Arg.(value & flag & info [ "run" ]
           ~doc:"Also execute on the in-repo CKKS backend and report the error against \
                 exact scalar reference execution.")
  in
  let dump_unmanaged_arg =
    Arg.(value & flag & info [ "dump-vector-ir" ]
           ~doc:"Print the unmanaged vector IR produced by the lowering instead of the \
                 managed program.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Compile a scalar loop program (.bhec) into packed vector IR: choose slot \
             layouts, batch loop iterations into rotations, then scale-manage.")
    Term.(const run $ error_format_arg $ file_arg $ layout_arg $ scheme_arg $ waterline_arg
          $ sf_arg $ seed_arg $ jobs_arg $ kernel_jobs_arg $ exec_arg $ dump_unmanaged_arg
          $ verbose_arg $ timing_arg)

let list_passes_arg =
  Arg.(value & flag & info [ "list-passes" ]
         ~doc:"Print the registered IR passes (name and description) and exit.")

let default_term =
  let run list_passes =
    if list_passes then begin
      List.iter
        (fun (p : Pass_manager.pass) ->
          Printf.printf "%-18s %s\n" p.Pass_manager.name p.Pass_manager.description)
        (Pass_manager.registered ());
      `Ok ()
    end
    else `Help (`Pager, None)
  in
  Term.(ret (const run $ list_passes_arg))

let () =
  let doc = "HECATE: performance-aware scale optimization for RNS-CKKS programs" in
  exit
    (Cmd.eval
       (Cmd.group ~default:default_term (Cmd.info "hecatec" ~doc)
          [ compile_cmd; run_cmd; bench_cmd; dump_cmd; info_cmd; batch_cmd ]))
