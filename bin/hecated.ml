(* hecated: the persistent HECATE compilation server.

   Hosts a content-addressed plan cache behind a newline-delimited JSON
   protocol on a Unix-domain socket (or stdin/stdout with --stdio).
   `hecatec compile --remote SOCK file.hec` is the matching client. *)

open Cmdliner
module Plancache = Hecate.Plancache
module Server = Hecate_serve.Server

let default_socket () =
  match Sys.getenv_opt "HECATE_SOCKET" with
  | Some s when s <> "" -> s
  | _ ->
      let dir =
        match Sys.getenv_opt "XDG_RUNTIME_DIR" with
        | Some d when d <> "" -> d
        | _ -> Filename.get_temp_dir_name ()
      in
      Filename.concat dir (Printf.sprintf "hecated-%d.sock" (Unix.getuid ()))

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket to listen on. Default: $(b,\\$HECATE_SOCKET), else \
               $(b,hecated-<uid>.sock) under \\$XDG_RUNTIME_DIR or the temp directory.")

let stdio_arg =
  Arg.(value & flag & info [ "stdio" ]
         ~doc:"Serve a single session over stdin/stdout instead of a socket \
               (for tests and piping).")

let cache_dir_arg =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"On-disk plan cache root. Default: $(b,\\$HECATE_CACHE_DIR), else \
               $(b,\\$XDG_CACHE_HOME/hecate), else $(b,~/.cache/hecate).")

let no_disk_arg =
  Arg.(value & flag & info [ "no-disk" ]
         ~doc:"Keep the plan cache in memory only; nothing is persisted.")

let capacity_arg =
  Arg.(value & opt int 128 & info [ "capacity" ] ~docv:"N"
         ~doc:"In-memory plan cache capacity (LRU beyond it).")

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
         ~doc:"Concurrent compilation jobs (worker threads).")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains per exploration (default: available cores - 1).")

let oracle_arg =
  Arg.(value & flag & info [ "oracle" ]
         ~doc:"Re-validate every exploration winner through the differential oracle \
               (typecheck, print/parse round-trip, encrypted execution against the \
               plaintext reference, EVA-baseline agreement) before it is returned or \
               cached. Rejected plans surface as error events with code \
               $(b,oracle-rejected) and never enter the plan cache.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log accepted and finished jobs to stderr.")

let main socket stdio cache_dir no_disk capacity workers jobs oracle verbose =
  let dir = if no_disk then None else
      match cache_dir with Some d -> Some d | None -> Plancache.default_dir ()
  in
  let cache =
    match dir with
    | Some dir -> Plancache.create ~dir ~capacity ()
    | None -> Plancache.create ~capacity ()
  in
  (* Surface the persisted plan corpus so cold compiles of structurally
     similar programs warm-start from previous winners immediately. *)
  let preloaded = Plancache.preload cache in
  if verbose && preloaded > 0 then
    Printf.eprintf "hecated: preloaded %d cached plan(s)\n%!" preloaded;
  let server = Server.create ?pool_size:jobs ~workers ~oracle ~verbose cache in
  if stdio then begin
    Server.serve_stdio server;
    `Ok ()
  end
  else begin
    let socket_path = match socket with Some s -> s | None -> default_socket () in
    match Server.serve server ~socket_path with
    | () -> `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)
    | exception Unix.Unix_error (err, fn, arg) ->
        `Error
          (false,
           Printf.sprintf "%s: %s%s" fn (Unix.error_message err)
             (if arg = "" then "" else Printf.sprintf " (%s)" arg))
  end

let () =
  let doc = "persistent HECATE compilation server with a content-addressed plan cache" in
  let info_ = Cmd.info "hecated" ~doc in
  let term =
    Term.(ret
            (const main $ socket_arg $ stdio_arg $ cache_dir_arg $ no_disk_arg $ capacity_arg
             $ workers_arg $ jobs_arg $ oracle_arg $ verbose_arg))
  in
  exit (Cmd.eval (Cmd.v info_ term))
