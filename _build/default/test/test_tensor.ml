(* Tests for the CHET-style tensor frontend: shape/layout bookkeeping and
   numerical agreement with naive dense implementations, via the exact
   plaintext reference interpreter. *)

module Tensor = Hecate_frontend.Tensor
module Ref = Hecate_backend.Reference
module Prng = Hecate_support.Prng

let check = Alcotest.check
let close = Alcotest.float 1e-9

let random_image g h w = Array.init (h * w) (fun _ -> Prng.float01 g -. 0.5)

(* naive dense reference operations *)
let conv2d_valid img h w kernel =
  let k = Array.length kernel in
  let oh = h - k + 1 and ow = w - k + 1 in
  Array.init (oh * ow) (fun s ->
      let r = s / ow and c = s mod ow in
      let acc = ref 0. in
      for dy = 0 to k - 1 do
        for dx = 0 to k - 1 do
          acc := !acc +. (kernel.(dy).(dx) *. img.(((r + dy) * w) + c + dx))
        done
      done;
      !acc)

let pool2x2 img h w =
  let oh = h / 2 and ow = w / 2 in
  Array.init (oh * ow) (fun s ->
      let r = s / ow and c = s mod ow in
      0.25
      *. (img.((2 * r * w) + (2 * c))
         +. img.((2 * r * w) + (2 * c) + 1)
         +. img.(((2 * r) + 1) * w + (2 * c))
         +. img.(((2 * r) + 1) * w + (2 * c) + 1)))

let test_conv_matches_dense () =
  let g = Prng.create ~seed:1 in
  let h = 8 and w = 8 in
  let img = random_image g h w in
  let kernel = Array.init 3 (fun _ -> Array.init 3 (fun _ -> Prng.float01 g -. 0.5)) in
  let c = Tensor.create ~slot_count:64 () in
  let x = Tensor.input_image c "img" ~height:h ~width:w in
  let y = Tensor.conv2d x ~kernel ~bias:0.25 in
  check (Alcotest.pair Alcotest.int Alcotest.int) "valid dims" (6, 6) (Tensor.dims y);
  Tensor.output c y;
  let out = List.hd (Ref.execute (Tensor.finish c) ~inputs:[ ("img", img) ]) in
  let expect = conv2d_valid img h w kernel in
  (* result stays in the original grid: element (r,c) at slot r*w + c *)
  for r = 0 to 5 do
    for c = 0 to 5 do
      check close
        (Printf.sprintf "(%d,%d)" r c)
        (expect.((r * 6) + c) +. 0.25)
        out.((r * w) + c)
    done
  done

let test_pool_then_conv_dilation () =
  (* conv on a pooled grid uses dilation-2 taps; check one output element *)
  let g = Prng.create ~seed:2 in
  let h = 8 and w = 8 in
  let img = random_image g h w in
  let kernel = Array.init 2 (fun _ -> Array.init 2 (fun _ -> Prng.float01 g -. 0.5)) in
  let c = Tensor.create ~slot_count:64 () in
  let x = Tensor.input_image c "img" ~height:h ~width:w in
  let p = Tensor.avg_pool2x2 x in
  check Alcotest.int "dilation doubled" 2 (Tensor.dilation p);
  check (Alcotest.pair Alcotest.int Alcotest.int) "grid halved" (4, 4) (Tensor.dims p);
  let y = Tensor.conv2d p ~kernel ~bias:0. in
  Tensor.output c y;
  let out = List.hd (Ref.execute (Tensor.finish c) ~inputs:[ ("img", img) ]) in
  let pooled = pool2x2 img h w in
  let expect = conv2d_valid pooled 4 4 kernel in
  (* pooled element (r,c) sits at slot (2r*w + 2c); conv result keeps it *)
  check close "top-left" expect.(0) out.(0);
  check close "(1,1)" expect.((1 * 3) + 1) out.((2 * w) + 2)

let test_compact_and_dense () =
  let g = Prng.create ~seed:3 in
  let h = 4 and w = 4 in
  let img = random_image g h w in
  let c = Tensor.create ~slot_count:64 () in
  let x = Tensor.input_image c "img" ~height:h ~width:w in
  let p = Tensor.avg_pool2x2 x in
  let flat = Tensor.compact p in
  check (Alcotest.pair Alcotest.int Alcotest.int) "dense vector" (1, 4) (Tensor.dims flat);
  check Alcotest.int "dilation reset" 1 (Tensor.dilation flat);
  let weights = Array.init 3 (fun _ -> Array.init 4 (fun _ -> Prng.float01 g -. 0.5)) in
  let bias = Array.init 3 (fun _ -> Prng.float01 g -. 0.5) in
  let y = Tensor.dense flat ~weights ~bias in
  Tensor.output c y;
  let out = List.hd (Ref.execute (Tensor.finish c) ~inputs:[ ("img", img) ]) in
  let pooled = pool2x2 img h w in
  for j = 0 to 2 do
    let e = ref bias.(j) in
    for i = 0 to 3 do
      e := !e +. (weights.(j).(i) *. pooled.(i))
    done;
    check close (Printf.sprintf "logit %d" j) !e out.(j)
  done

let test_elementwise_and_square () =
  let g = Prng.create ~seed:4 in
  let img = random_image g 4 4 in
  let c = Tensor.create ~slot_count:16 () in
  let x = Tensor.input_image c "img" ~height:4 ~width:4 in
  let y = Tensor.add (Tensor.square x) (Tensor.scale x 2.) in
  Tensor.output c (Tensor.add_scalar y (-0.5));
  let out = List.hd (Ref.execute (Tensor.finish c) ~inputs:[ ("img", img) ]) in
  Array.iteri
    (fun i v -> check close "x^2 + 2x - 0.5" ((v *. v) +. (2. *. v) -. 0.5) out.(i))
    img

let test_shape_errors () =
  let c = Tensor.create ~slot_count:64 () in
  let a = Tensor.input_image c "a" ~height:4 ~width:4 in
  let b = Tensor.input_image c "b" ~height:2 ~width:8 in
  (match Tensor.add a b with
  | _ -> Alcotest.fail "expected shape mismatch"
  | exception Invalid_argument _ -> ());
  (match Tensor.dense a ~weights:[| [| 1. |] |] ~bias:[| 0. |] with
  | _ -> Alcotest.fail "expected dense-vector requirement"
  | exception Invalid_argument _ -> ());
  (match Tensor.conv2d a ~kernel:[| [| 1.; 2. |] |] ~bias:0. with
  | _ -> Alcotest.fail "expected square kernel requirement"
  | exception Invalid_argument _ -> ());
  match Tensor.input_image c "c" ~height:9 ~width:8 with
  | _ -> Alcotest.fail "expected size rejection"
  | exception Invalid_argument _ -> ()

let test_tensor_cnn_compiles_and_runs () =
  (* a miniature CNN written in the tensor layer compiles under HECATE and
     executes accurately on the CKKS backend *)
  let g = Prng.create ~seed:5 in
  let img = Array.map (fun v -> (v +. 0.5) /. 2.) (random_image g 8 8) in
  let kernel = Array.init 3 (fun _ -> Array.init 3 (fun _ -> (Prng.float01 g -. 0.5) /. 3.)) in
  let c = Tensor.create ~name:"mini_cnn" ~slot_count:64 () in
  let x = Tensor.input_image c "img" ~height:8 ~width:8 in
  let features = Tensor.avg_pool2x2 (Tensor.square (Tensor.conv2d x ~kernel ~bias:0.05)) in
  let flat = Tensor.compact features in
  let rows, cols = Tensor.dims flat in
  check Alcotest.int "flattened" 1 rows;
  let weights = Array.init 4 (fun _ -> Array.init cols (fun _ -> (Prng.float01 g -. 0.5) /. 4.)) in
  let bias = Array.make 4 0.01 in
  Tensor.output c (Tensor.dense flat ~weights ~bias);
  let prog = Tensor.finish c in
  let expected = List.hd (Ref.execute prog ~inputs:[ ("img", img) ]) in
  let compiled = Hecate.Driver.compile Hecate.Driver.Hecate ~sf_bits:28 ~waterline_bits:24. prog in
  let eval =
    Hecate_backend.Interp.context ~params:compiled.Hecate.Driver.params
      ~rotations:(Hecate_backend.Interp.required_rotations compiled.Hecate.Driver.prog) ()
  in
  let acc =
    Hecate_backend.Accuracy.measure eval ~waterline_bits:24. compiled.Hecate.Driver.prog
      ~inputs:[ ("img", img) ] ~valid_slots:4
  in
  check Alcotest.bool "accurate under encryption" true (acc.Hecate_backend.Accuracy.rmse < 1e-2);
  check Alcotest.bool "reference sane" true (Float.abs expected.(0) < 10.)

let () =
  Alcotest.run "hecate_tensor"
    [
      ( "tensor",
        [
          Alcotest.test_case "conv matches dense" `Quick test_conv_matches_dense;
          Alcotest.test_case "pool dilation" `Quick test_pool_then_conv_dilation;
          Alcotest.test_case "compact + dense" `Quick test_compact_and_dense;
          Alcotest.test_case "elementwise" `Quick test_elementwise_and_square;
          Alcotest.test_case "shape errors" `Quick test_shape_errors;
          Alcotest.test_case "mini CNN end-to-end" `Quick test_tensor_cnn_compiles_and_runs;
        ] );
    ]
