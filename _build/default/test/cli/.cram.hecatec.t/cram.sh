  $ ../../bin/hecatec.exe info fig2.hec
  $ ../../bin/hecatec.exe compile fig2.hec -s hecate | grep -E 'downscale|mul %5|mul %6'
  $ ../../bin/hecatec.exe compile fig2.hec -s eva | grep -c downscale
  $ ../../bin/hecatec.exe dump sf -o sf.hec
  $ ../../bin/hecatec.exe info sf.hec | head -2
