Structural statistics of the running example:

  $ ../../bin/hecatec.exe info fig2.hec
  ops:            7
  use-def edges:  10
  inputs:         2
  outputs:        1
  SMUs:           5
  SMU edges:      5
  peak live:      3 ciphertexts
  buffers needed: 3

HECATE finds the Fig. 2c plan (proactive downscale, both cubing
multiplications at level 1):

  $ ../../bin/hecatec.exe compile fig2.hec -s hecate | grep -E 'downscale|mul %5|mul %6'
    %5 = downscale %4, 0x1.4p+4 : cipher<20,1>
    %6 = mul %5, %5 : cipher<40,1>
    %7 = mul %6, %5 : cipher<60,1>

EVA never downscales:

  $ ../../bin/hecatec.exe compile fig2.hec -s eva | grep -c downscale
  0
  [1]

Exported benchmarks round-trip through the parser:

  $ ../../bin/hecatec.exe dump sf -o sf.hec
  wrote sf.hec (42 ops)
  $ ../../bin/hecatec.exe info sf.hec | head -2
  ops:            42
  use-def edges:  54
