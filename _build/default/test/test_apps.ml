(* Tests for the benchmark applications: reference semantics against
   independent NumPy-style reimplementations, program shape, and
   compilability under every scheme. *)

module Apps = Hecate_apps.Apps
module Prog = Hecate_ir.Prog
module Driver = Hecate.Driver
module Reference = Hecate_backend.Reference
module Prng = Hecate_support.Prng

let check = Alcotest.check

let run_ref (b : Apps.t) = List.hd (Reference.execute b.Apps.prog ~inputs:b.Apps.inputs)

(* independent pixel-level Sobel on a wrapped image *)
let sobel_pixel img size r c =
  let at dy dx = img.(((r + dy + size) mod size * size) + ((c + dx + size) mod size)) in
  (* taps use wrap-around *)
  ignore at;
  let px dy dx = ((r * size + c + dy * size + dx) mod (size*size) + (size*size)) mod (size*size) in
  let v dy dx = img.(px dy dx) in
  let gx = -.v (-1) (-1) +. v (-1) 1 -. (2. *. v 0 (-1)) +. (2. *. v 0 1) -. v 1 (-1) +. v 1 1 in
  let gy = -.v (-1) (-1) -. (2. *. v (-1) 0) -. v (-1) 1 +. v 1 (-1) +. (2. *. v 1 0) +. v 1 1 in
  (gx *. gx) +. (gy *. gy)

let test_sobel_semantics () =
  let size = 8 in
  let b = Apps.sobel ~size () in
  let img = List.assoc "image" b.Apps.inputs in
  let out = run_ref b in
  (* interior pixels only (rotation wrap = slot-linear wrap, which the
     pixel-level model reproduces away from the vector ends) *)
  for r = 1 to size - 2 do
    for c = 1 to size - 2 do
      let expected = sobel_pixel img size r c in
      check (Alcotest.float 1e-9)
        (Printf.sprintf "pixel %d,%d" r c)
        expected
        out.((r * size) + c)
    done
  done

let test_harris_response_definition () =
  (* spot-check: response = det - 0.04 trace^2 with 3x3 box sums of the
     gradient products; validated on one interior pixel *)
  let size = 8 in
  let b = Apps.harris ~size () in
  let img = List.assoc "image" b.Apps.inputs in
  let out = run_ref b in
  let slots = size * size in
  let v arr s = arr.(((s mod slots) + slots) mod slots) in
  (* the app folds a 1/4 normalization into the gradient stencils *)
  let gx s =
    0.25
    *. (-.v img (s - size - 1) +. v img (s - size + 1) -. (2. *. v img (s - 1))
       +. (2. *. v img (s + 1)) -. v img (s + size - 1) +. v img (s + size + 1))
  in
  let gy s =
    0.25
    *. (-.v img (s - size - 1) -. (2. *. v img (s - size)) -. v img (s - size + 1)
       +. v img (s + size - 1) +. (2. *. v img (s + size)) +. v img (s + size + 1))
  in
  let s0 = (4 * size) + 4 in
  let box f =
    let acc = ref 0. in
    for dy = -1 to 1 do
      for dx = -1 to 1 do
        acc := !acc +. f (s0 + (dy * size) + dx)
      done
    done;
    !acc
  in
  let sxx = box (fun s -> gx s *. gx s) in
  let syy = box (fun s -> gy s *. gy s) in
  let sxy = box (fun s -> gx s *. gy s) in
  let expected = (sxx *. syy) -. (sxy *. sxy) -. (0.04 *. ((sxx +. syy) ** 2.)) in
  check (Alcotest.float 1e-6) "harris response" expected out.(s0)

let test_mlp_semantics () =
  (* the MLP prog must agree with a dense two-layer forward pass; rebuild
     the same weights from the same seed by reading the consts is brittle,
     so instead check structural facts and output magnitude *)
  let b = Apps.mlp ~in_dim:16 ~hidden:8 ~out_dim:4 () in
  let out = run_ref b in
  check Alcotest.bool "outputs bounded" true
    (Array.for_all (fun x -> Float.abs x < 100.) (Array.sub out 0 4));
  check Alcotest.bool "not identically zero" true
    (Array.exists (fun x -> Float.abs x > 1e-12) (Array.sub out 0 4))

let test_lenet_structure () =
  let b = Apps.lenet ~reduced:true () in
  let p = b.Apps.prog in
  check Alcotest.bool "program is large" true (Prog.num_ops p > 1000);
  check Alcotest.int "classifier outputs" 10 b.Apps.valid_slots;
  let out = run_ref b in
  check Alcotest.bool "logits finite" true
    (Array.for_all Float.is_finite (Array.sub out 0 10))

let test_lenet_paper_size_op_count () =
  (* the full LeNet should be in the paper's op-count regime (11735 uses
     reported; ours is the same order of magnitude) *)
  let b = Apps.lenet () in
  let uses =
    Array.fold_left
      (fun acc (o : Prog.op) -> acc + Array.length o.Prog.args)
      0 b.Apps.prog.Prog.body
  in
  check Alcotest.bool (Printf.sprintf "uses = %d in [4000, 40000]" uses) true
    (uses >= 4000 && uses <= 40000)

(* gradient-descent reference in plain OCaml *)
let lr_reference ~epochs ~samples x y =
  let w = ref 0.1 and b = ref 0.05 in
  let lr = 0.5 in
  for _ = 1 to epochs do
    let gw = ref 0. and gb = ref 0. in
    for i = 0 to samples - 1 do
      let err = (!w *. x.(i)) +. !b -. y.(i) in
      gw := !gw +. (err *. x.(i));
      gb := !gb +. err
    done;
    w := !w -. (lr *. 2. /. float_of_int samples *. !gw);
    b := !b -. (lr *. 2. /. float_of_int samples *. !gb)
  done;
  (!w, !b)

let test_linear_regression_semantics () =
  let samples = 256 in
  let b = Apps.linear_regression ~epochs:2 ~samples () in
  let x = List.assoc "x" b.Apps.inputs and y = List.assoc "y" b.Apps.inputs in
  let w, bias = lr_reference ~epochs:2 ~samples x y in
  let out = run_ref b in
  for i = 0 to 9 do
    check (Alcotest.float 1e-9) "prediction" ((w *. x.(i)) +. bias) out.(i)
  done

let test_regression_epochs_grow_program () =
  let p2 = (Apps.linear_regression ~epochs:2 ~samples:256 ()).Apps.prog in
  let p3 = (Apps.linear_regression ~epochs:3 ~samples:256 ()).Apps.prog in
  check Alcotest.bool "E3 larger than E2" true (Prog.num_ops p3 > Prog.num_ops p2)

let test_polynomial_regression_learns () =
  (* data is generated from a quadratic: a few steps of GD must reduce the
     squared error versus the initial parameters *)
  let samples = 512 in
  let b = Apps.polynomial_regression ~epochs:3 ~samples () in
  let x = List.assoc "x" b.Apps.inputs and y = List.assoc "y" b.Apps.inputs in
  let out = run_ref b in
  let mse pred =
    let acc = ref 0. in
    for i = 0 to samples - 1 do
      let d = pred i -. y.(i) in
      acc := !acc +. (d *. d)
    done;
    !acc /. float_of_int samples
  in
  let initial i = (0.1 *. x.(i) *. x.(i)) +. (0.1 *. x.(i)) +. 0.05 in
  check Alcotest.bool "training reduced the error" true
    (mse (fun i -> out.(i)) < mse initial)

let test_all_benchmarks_compile_all_schemes () =
  (* every reduced benchmark must compile and typecheck under every scheme;
     LeNet is exercised separately (slow) *)
  let benches =
    [
      Apps.sobel ~size:8 ();
      Apps.harris ~size:8 ();
      Apps.mlp ~in_dim:16 ~hidden:8 ~out_dim:4 ();
      Apps.linear_regression ~epochs:2 ~samples:128 ();
      Apps.polynomial_regression ~epochs:2 ~samples:128 ();
    ]
  in
  List.iter
    (fun (b : Apps.t) ->
      List.iter
        (fun scheme ->
          let c = Driver.compile scheme ~sf_bits:28 ~waterline_bits:20. b.Apps.prog in
          check Alcotest.bool
            (b.Apps.name ^ "/" ^ Driver.scheme_name scheme ^ " produced ops")
            true
            (Prog.num_ops c.Driver.prog > 0))
        Driver.all_schemes)
    benches

let test_suites_cover_eight () =
  check Alcotest.int "paper suite" 8 (List.length (Apps.paper_suite ()));
  check Alcotest.int "reduced suite" 8 (List.length (Apps.reduced_suite ()));
  let names = List.map (fun (b : Apps.t) -> b.Apps.name) (Apps.paper_suite ()) in
  check
    Alcotest.(list string)
    "names" [ "SF"; "HCD"; "MLP"; "LeNet"; "LR E2"; "LR E3"; "PR E2"; "PR E3" ]
    names

let () =
  Alcotest.run "hecate_apps"
    [
      ( "image",
        [
          Alcotest.test_case "sobel semantics" `Quick test_sobel_semantics;
          Alcotest.test_case "harris response" `Quick test_harris_response_definition;
        ] );
      ( "learning",
        [
          Alcotest.test_case "mlp output" `Quick test_mlp_semantics;
          Alcotest.test_case "lenet structure" `Quick test_lenet_structure;
          Alcotest.test_case "lenet op count" `Slow test_lenet_paper_size_op_count;
          Alcotest.test_case "linear regression" `Quick test_linear_regression_semantics;
          Alcotest.test_case "epochs grow program" `Quick test_regression_epochs_grow_program;
          Alcotest.test_case "polynomial regression learns" `Quick test_polynomial_regression_learns;
        ] );
      ( "suite",
        [
          Alcotest.test_case "all compile" `Quick test_all_benchmarks_compile_all_schemes;
          Alcotest.test_case "eight benchmarks" `Quick test_suites_cover_eight;
        ] );
    ]
