(* Tests for the DSL and its packing helpers, validated against the exact
   plaintext reference interpreter. *)

module Dsl = Hecate_frontend.Dsl
module Ref = Hecate_backend.Reference
module Prog = Hecate_ir.Prog
module Prng = Hecate_support.Prng
module Stats = Hecate_support.Stats

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let run1 prog inputs = List.hd (Ref.execute prog ~inputs)

let close = Alcotest.float 1e-9

let test_arith () =
  let d = Dsl.create ~slot_count:8 () in
  let x = Dsl.input d "x" in
  let e = Dsl.sub d (Dsl.add d (Dsl.square d x) x) (Dsl.const_scalar d 1.) in
  Dsl.output d (Dsl.neg d e);
  let out = run1 (Dsl.finish d) [ ("x", [| 2.; -1.; 0.; 3.; 0.; 0.; 0.; 0. |]) ] in
  (* -(x^2 + x - 1) *)
  check close "slot0" (-5.) out.(0);
  check close "slot1" 1. out.(1);
  check close "slot2" 1. out.(2);
  check close "slot3" (-11.) out.(3)

let test_rotate_normalization () =
  let d = Dsl.create ~slot_count:8 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.rotate d x (-3));
  let out = run1 (Dsl.finish d) [ ("x", Array.init 8 float_of_int) ] in
  (* right rotation by 3: slot i holds x[(i - 3) mod 8] = x[i+5 mod 8] *)
  check close "wrap" 5. out.(0);
  check close "shifted" 0. out.(3)

let test_rotate_zero_emits_nothing () =
  let d = Dsl.create ~slot_count:8 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.add d (Dsl.rotate d x 0) (Dsl.rotate d x 8));
  let p = Dsl.finish d in
  let rotations =
    Array.fold_left
      (fun n (o : Prog.op) -> match o.Prog.kind with Prog.Rotate _ -> n + 1 | _ -> n)
      0 p.Prog.body
  in
  check Alcotest.int "no rotate ops" 0 rotations

let test_add_many_balanced () =
  let d = Dsl.create ~slot_count:4 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.add_many d (List.init 7 (fun i -> Dsl.scale_by d x (float_of_int (i + 1)))));
  let out = run1 (Dsl.finish d) [ ("x", [| 1.; 2.; 0.; 0. |]) ] in
  check close "sum of 1..7 times x" 28. out.(0);
  check close "slot1" 56. out.(1)

let test_reduce_sum_windows () =
  let d = Dsl.create ~slot_count:16 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.reduce_sum d x ~width:4);
  let out = run1 (Dsl.finish d) [ ("x", Array.init 16 float_of_int) ] in
  (* sliding windows: slot i = x_i + .. + x_(i+3) *)
  check close "window at 0" 6. out.(0);
  check close "window at 3" 18. out.(3);
  check close "window wraps" (14. +. 15. +. 0. +. 1.) out.(14)

let test_reduce_sum_total () =
  let d = Dsl.create ~slot_count:16 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.reduce_sum d x ~width:16);
  let out = run1 (Dsl.finish d) [ ("x", Array.init 16 float_of_int) ] in
  Array.iter (fun v -> check close "total everywhere" 120. v) out

let test_replicate () =
  let d = Dsl.create ~slot_count:16 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.replicate d x ~width:4);
  let out = run1 (Dsl.finish d) [ ("x", [| 9.; 8.; 7.; 6. |]) ] in
  for b = 0 to 3 do
    check close "copies" 9. out.(4 * b);
    check close "copies tail" 6. out.((4 * b) + 3)
  done

let test_mask () =
  let d = Dsl.create ~slot_count:8 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.mask d x (fun i -> i mod 2 = 0));
  let out = run1 (Dsl.finish d) [ ("x", Array.make 8 3.) ] in
  check close "kept" 3. out.(0);
  check close "zeroed" 0. out.(1)

let test_matvec_identity () =
  let d = Dsl.create ~slot_count:16 () in
  let x = Dsl.input d "x" in
  Dsl.output d (Dsl.matvec d ~rows:4 ~cols:4 (fun j i -> if i = j then 1. else 0.) x);
  let v = [| 3.; 1.; 4.; 1.5 |] in
  let out = run1 (Dsl.finish d) [ ("x", v) ] in
  Array.iteri (fun i e -> check close (Printf.sprintf "slot %d" i) e out.(i)) v

let prop_matvec_matches_dense =
  QCheck.Test.make ~name:"matvec = dense product" ~count:25
    QCheck.(pair (int_range 1 9) (int_range 1 9))
    (fun (rows, cols) ->
      let g = Prng.create ~seed:(rows + (16 * cols)) in
      let w = Array.init rows (fun _ -> Array.init cols (fun _ -> Prng.float01 g -. 0.5)) in
      let x = Array.init cols (fun _ -> Prng.float01 g -. 0.5) in
      let d = Dsl.create ~slot_count:32 () in
      let xi = Dsl.input d "x" in
      Dsl.output d (Dsl.matvec d ~rows ~cols (fun j i -> w.(j).(i)) xi);
      let out = run1 (Dsl.finish d) [ ("x", x) ] in
      let ok = ref true in
      for j = 0 to rows - 1 do
        let e = ref 0. in
        for i = 0 to cols - 1 do
          e := !e +. (w.(j).(i) *. x.(i))
        done;
        if Float.abs (!e -. out.(j)) > 1e-9 then ok := false
      done;
      !ok)

let test_conv2d_shift () =
  (* single tap (0,1,1): plain left shift within a row *)
  let d = Dsl.create ~slot_count:16 () in
  let img = Dsl.input d "i" in
  Dsl.output d (Dsl.conv2d d ~image:img ~img_width:4 ~stride:1 ~taps:[ (0, 1, 1.) ]);
  let out = run1 (Dsl.finish d) [ ("i", Array.init 16 float_of_int) ] in
  check close "shifted" 1. out.(0);
  check close "row end wraps into next row" 4. out.(3)

let test_conv2d_sobel_interior () =
  (* cross-check a Sobel-x response on an interior pixel *)
  let w = 4 in
  let img = [| 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10.; 11.; 12.; 13.; 14.; 15. |] in
  let taps =
    [ (-1, -1, -1.); (-1, 1, 1.); (0, -1, -2.); (0, 1, 2.); (1, -1, -1.); (1, 1, 1.) ]
  in
  let d = Dsl.create ~slot_count:16 () in
  let i = Dsl.input d "i" in
  Dsl.output d (Dsl.conv2d d ~image:i ~img_width:w ~stride:1 ~taps);
  let out = run1 (Dsl.finish d) [ ("i", img) ] in
  (* pixel (1,1) = slot 5: taps read slots 5 + dy*4 + dx *)
  let expect =
    List.fold_left (fun acc (dy, dx, c) -> acc +. (c *. img.(5 + (dy * 4) + dx))) 0. taps
  in
  check close "interior response" expect out.(5)

let test_conv2d_stride_dilation () =
  let d = Dsl.create ~slot_count:16 () in
  let i = Dsl.input d "i" in
  Dsl.output d (Dsl.conv2d d ~image:i ~img_width:4 ~stride:2 ~taps:[ (0, 1, 1.) ]);
  let out = run1 (Dsl.finish d) [ ("i", Array.init 16 float_of_int) ] in
  (* dilated tap reads slot s + 2 *)
  check close "dilated" 2. out.(0)

let test_avg_pool () =
  let d = Dsl.create ~slot_count:16 () in
  let i = Dsl.input d "i" in
  Dsl.output d (Dsl.avg_pool2x2 d i ~img_width:4 ~stride:1);
  let img = Array.init 16 float_of_int in
  let out = run1 (Dsl.finish d) [ ("i", img) ] in
  (* pool at (0,0): avg of slots 0,1,4,5 = 2.5 *)
  check close "pool" 2.5 out.(0)

let test_zero_weight_taps_skipped () =
  let d = Dsl.create ~slot_count:16 () in
  let i = Dsl.input d "i" in
  Dsl.output d (Dsl.conv2d d ~image:i ~img_width:4 ~stride:1 ~taps:[ (0, 0, 1.); (0, 1, 0.) ]);
  let p = Dsl.finish d in
  check Alcotest.bool "few ops" true (Prog.num_ops p <= 2)

let test_bad_params_rejected () =
  (match Dsl.create ~slot_count:12 () with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ());
  let d = Dsl.create ~slot_count:8 () in
  let x = Dsl.input d "x" in
  (match Dsl.reduce_sum d x ~width:3 with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ());
  match Dsl.matvec d ~rows:10 ~cols:10 (fun _ _ -> 1.) x with
  | _ -> Alcotest.fail "expected rejection (padded dim 16 > 8 slots)"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "hecate_frontend"
    [
      ( "dsl",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "rotate normalization" `Quick test_rotate_normalization;
          Alcotest.test_case "rotate 0 elided" `Quick test_rotate_zero_emits_nothing;
          Alcotest.test_case "add_many" `Quick test_add_many_balanced;
          Alcotest.test_case "bad params" `Quick test_bad_params_rejected;
        ] );
      ( "packing",
        [
          Alcotest.test_case "reduce_sum windows" `Quick test_reduce_sum_windows;
          Alcotest.test_case "reduce_sum total" `Quick test_reduce_sum_total;
          Alcotest.test_case "replicate" `Quick test_replicate;
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "matvec identity" `Quick test_matvec_identity;
          qtest prop_matvec_matches_dense;
        ] );
      ( "stencils",
        [
          Alcotest.test_case "conv2d shift" `Quick test_conv2d_shift;
          Alcotest.test_case "sobel interior" `Quick test_conv2d_sobel_interior;
          Alcotest.test_case "stride dilation" `Quick test_conv2d_stride_dilation;
          Alcotest.test_case "avg pool" `Quick test_avg_pool;
          Alcotest.test_case "zero taps skipped" `Quick test_zero_weight_taps_skipped;
        ] );
    ]
