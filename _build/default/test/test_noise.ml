(* Tests for the static noise model: transition properties of each
   operation, configuration sensitivity, and report structure. These are
   pure (no CKKS execution), so they pin the model's qualitative behaviour
   tightly. *)

module Types = Hecate_ir.Types
module Prog = Hecate_ir.Prog
module Typing = Hecate_ir.Typing
module B = Prog.Builder
module NM = Hecate.Noisemodel
module Codegen = Hecate.Codegen
module Driver = Hecate.Driver

let check = Alcotest.check
let cfg20 = Typing.config ~sf:28. ~waterline:20. ()

(* build + scale-manage a tiny program and return the analysis *)
let analyze ?(waterline = 20.) ?(n = 1024) build =
  let b = B.create ~slot_count:16 () in
  build b;
  let cfgw = Typing.config ~sf:28. ~waterline () in
  let prog = Codegen.pars cfgw (B.finish b) in
  ignore (Typing.check_exn cfgw prog);
  (prog, NM.analyze (NM.default_config ~n) prog)

let rmse ?waterline ?n build = (snd (analyze ?waterline ?n build)).NM.predicted_rmse

let test_identity_program () =
  (* x alone: fresh-encryption noise only *)
  let r = rmse (fun b -> B.output b (B.negate b (B.input b "x"))) in
  check Alcotest.bool "small but positive" true (r > 0. && r < 1e-2)

let test_mul_increases_noise () =
  let base = rmse (fun b -> B.output b (B.negate b (B.input b "x"))) in
  let squared =
    rmse (fun b ->
        let x = B.input b "x" in
        B.output b (B.mul b x x))
  in
  check Alcotest.bool "mul noisier than identity" true (squared > base)

let test_depth_increases_noise () =
  let d1 =
    rmse (fun b ->
        let x = B.input b "x" in
        B.output b (B.mul b x x))
  in
  let d3 =
    rmse (fun b ->
        let x = B.input b "x" in
        let x2 = B.mul b x x in
        let x4 = B.mul b x2 x2 in
        B.output b (B.mul b x4 x4))
  in
  check Alcotest.bool "deeper is noisier" true (d3 > d1)

let test_rotation_adds_noise () =
  let plainum = rmse (fun b -> B.output b (B.negate b (B.input b "x"))) in
  let rotated =
    rmse (fun b ->
        let x = B.input b "x" in
        let r = List.fold_left (fun acc k -> B.add b acc (B.rotate b x k)) x [ 1; 2; 3; 4 ] in
        B.output b r)
  in
  check Alcotest.bool "rotations accumulate key-switch noise" true (rotated > plainum)

let test_waterline_reduces_relative_noise () =
  let build b =
    let x = B.input b "x" in
    B.output b (B.mul b x x)
  in
  check Alcotest.bool "wl 24 beats wl 14" true (rmse ~waterline:24. build < rmse ~waterline:14. build)

let test_degree_increases_noise () =
  let build b =
    let x = B.input b "x" in
    B.output b (B.mul b x x)
  in
  check Alcotest.bool "bigger ring is noisier" true (rmse ~n:8192 build > rmse ~n:256 build)

let test_sigma_scales_noise () =
  let b = B.create ~slot_count:16 () in
  let x = B.input b "x" in
  B.output b (B.negate b x);
  let prog = Codegen.pars cfg20 (B.finish b) in
  ignore (Typing.check_exn cfg20 prog);
  let at sigma =
    (NM.analyze { (NM.default_config ~n:1024) with NM.sigma } prog).NM.predicted_rmse
  in
  check Alcotest.bool "sigma monotone" true (at 6.4 > at 3.2 && at 3.2 > at 0.8)

let test_report_arrays_cover_values () =
  let prog, r = analyze (fun b ->
      let x = B.input b "x" in
      B.output b (B.mul b (B.add b x x) x))
  in
  check Alcotest.int "noise per value" (Prog.num_ops prog) (Array.length r.NM.noise_bits);
  check Alcotest.int "message per value" (Prog.num_ops prog) (Array.length r.NM.message_bits);
  (* messages of scaled values carry at least the scale *)
  Prog.iter
    (fun (o : Prog.op) ->
      match Types.scaled_of o.Prog.ty with
      | Some s when Types.is_cipher o.Prog.ty ->
          check Alcotest.bool "message >= scale - slack" true
            (r.NM.message_bits.(o.Prog.id) >= s.Types.scale -. 10.)
      | _ -> ())
    prog

let test_downscale_rounding_term () =
  (* a high waterline close to sf makes the downscale multiplier coarse:
     predicted error must reflect it. Compare the same program shape at
     wl=26 (factor 2^2) vs wl=16 (factor 2^12) for the level-match
     downscale of (x*y)*(x*y). *)
  let build b =
    let x = B.input b "x" and y = B.input b "y" in
    let xy = B.mul b x y in
    B.output b (B.mul b xy xy)
  in
  let coarse = rmse ~waterline:26. build in
  let fine = rmse ~waterline:16. build in
  (* at wl=16 the noise floor dominates instead; the interesting check is
     that wl=26 is NOT proportionally better despite 10 more bits of scale *)
  check Alcotest.bool "rounding visible at coarse factors" true (coarse > fine /. 1024.)

let test_compiled_benchmark_analyzable () =
  (* the model runs on a full benchmark without blowing up *)
  let bench = Hecate_apps.Apps.sobel ~size:8 () in
  let c = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:20. bench.Hecate_apps.Apps.prog in
  let r = NM.analyze (NM.default_config ~n:256) c.Driver.prog in
  check Alcotest.bool "finite" true (Float.is_finite r.NM.predicted_rmse);
  check Alcotest.bool "positive" true (r.NM.predicted_rmse > 0.)

let test_rmse_bits_consistent () =
  let bench = Hecate_apps.Apps.sobel ~size:8 () in
  let c = Driver.compile Driver.Eva ~sf_bits:28 ~waterline_bits:20. bench.Hecate_apps.Apps.prog in
  let ncfg = NM.default_config ~n:256 in
  let bits = NM.predicted_rmse_bits ncfg c.Driver.prog in
  let direct = (NM.analyze ncfg c.Driver.prog).NM.predicted_rmse in
  check (Alcotest.float 1e-9) "log2 consistency" (Float.log direct /. Float.log 2.) bits

let () =
  Alcotest.run "hecate_noise"
    [
      ( "transitions",
        [
          Alcotest.test_case "identity" `Quick test_identity_program;
          Alcotest.test_case "mul increases" `Quick test_mul_increases_noise;
          Alcotest.test_case "depth increases" `Quick test_depth_increases_noise;
          Alcotest.test_case "rotation adds" `Quick test_rotation_adds_noise;
          Alcotest.test_case "waterline helps" `Quick test_waterline_reduces_relative_noise;
          Alcotest.test_case "degree hurts" `Quick test_degree_increases_noise;
          Alcotest.test_case "sigma scales" `Quick test_sigma_scales_noise;
          Alcotest.test_case "downscale rounding" `Quick test_downscale_rounding_term;
        ] );
      ( "reports",
        [
          Alcotest.test_case "arrays cover values" `Quick test_report_arrays_cover_values;
          Alcotest.test_case "benchmark analyzable" `Quick test_compiled_benchmark_analyzable;
          Alcotest.test_case "bits consistent" `Quick test_rmse_bits_consistent;
        ] );
    ]
