test/test_rns.ml: Alcotest Array Float Hecate_rns Hecate_support Lazy List Printf QCheck QCheck_alcotest
