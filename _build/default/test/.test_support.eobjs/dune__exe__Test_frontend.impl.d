test/test_frontend.ml: Alcotest Array Float Hecate_backend Hecate_frontend Hecate_ir Hecate_support List Printf QCheck QCheck_alcotest
