test/test_tensor.ml: Alcotest Array Float Hecate Hecate_backend Hecate_frontend Hecate_support List Printf
