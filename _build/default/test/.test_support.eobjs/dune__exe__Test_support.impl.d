test/test_support.ml: Alcotest Array Float Fun Gen Hashtbl Hecate_support List Printf QCheck QCheck_alcotest
