test/test_ckks.ml: Alcotest Array Float Hecate_ckks Hecate_rns Hecate_support Lazy Option Printf Unix
