test/test_core.ml: Alcotest Array Float Hashtbl Hecate Hecate_apps Hecate_ir Hecate_support List Option Printf QCheck QCheck_alcotest
