test/test_apps.ml: Alcotest Array Float Hecate Hecate_apps Hecate_backend Hecate_ir Hecate_support List Printf
