test/test_ir.ml: Alcotest Array Astring Hecate_ir List QCheck QCheck_alcotest Result
