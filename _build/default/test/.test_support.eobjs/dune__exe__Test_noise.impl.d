test/test_noise.ml: Alcotest Array Float Hecate Hecate_apps Hecate_ir List
