test/test_backend.ml: Alcotest Array Astring Format Hecate Hecate_apps Hecate_backend Hecate_ir Hecate_support List Printf QCheck QCheck_alcotest
