(* Tests for the backend: reference interpreter, CKKS interpreter (compiled
   programs execute to the right values under every scheme), profiling and
   the waterline-search harness. *)

module Prog = Hecate_ir.Prog
module B = Prog.Builder
module Driver = Hecate.Driver
module Costmodel = Hecate.Costmodel
module Interp = Hecate_backend.Interp
module Reference = Hecate_backend.Reference
module Accuracy = Hecate_backend.Accuracy
module Profile = Hecate_backend.Profile
module Harness = Hecate_backend.Harness
module Apps = Hecate_apps.Apps
module Prng = Hecate_support.Prng
module Stats = Hecate_support.Stats

let check = Alcotest.check

let fig2 () =
  let b = B.create ~name:"fig2" ~slot_count:64 () in
  let x = B.input b "x" and y = B.input b "y" in
  let z = B.add b (B.mul b x x) (B.mul b y y) in
  B.output b (B.mul b (B.mul b z z) z);
  B.finish b

let fig2_inputs =
  let g = Prng.create ~seed:0xF162 in
  [
    ("x", Array.init 64 (fun _ -> Prng.float01 g -. 0.5));
    ("y", Array.init 64 (fun _ -> Prng.float01 g -. 0.5));
  ]

(* ------------------------------------------------------------------ *)
(* Reference interpreter                                                *)
(* ------------------------------------------------------------------ *)

let test_reference_fig2 () =
  let out = List.hd (Reference.execute (fig2 ()) ~inputs:fig2_inputs) in
  let x = List.assoc "x" fig2_inputs and y = List.assoc "y" fig2_inputs in
  for i = 0 to 63 do
    let z = (x.(i) *. x.(i)) +. (y.(i) *. y.(i)) in
    check (Alcotest.float 1e-12) "cube" (z *. z *. z) out.(i)
  done

let test_reference_opaque_ops_transparent () =
  (* scale management ops must not affect reference semantics *)
  let p =
    Hecate_ir.Parser.parse
      {|
func f(%0: cipher "x") slots=4 {
  %1 = mul %0, %0
  %2 = rescale %1
  %3 = modswitch %2
  %4 = upscale %3, 40
  %5 = downscale %4, 20
  return %5
}
|}
  in
  let out = List.hd (Reference.execute p ~inputs:[ ("x", [| 3.; -2.; 0.5; 0. |]) ]) in
  check Alcotest.(array (float 1e-12)) "squares" [| 9.; 4.; 0.25; 0. |] out

let test_reference_missing_input () =
  match Reference.execute (fig2 ()) ~inputs:[ ("x", [| 1. |]) ] with
  | _ -> Alcotest.fail "expected missing input error"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* CKKS interpreter on compiled programs                                *)
(* ------------------------------------------------------------------ *)

let run_scheme scheme =
  let c = Driver.compile scheme ~sf_bits:28 ~waterline_bits:20. (fig2 ()) in
  let eval =
    Interp.context ~params:c.Driver.params
      ~rotations:(Interp.required_rotations c.Driver.prog) ()
  in
  Accuracy.measure eval ~waterline_bits:20. c.Driver.prog ~inputs:fig2_inputs ~valid_slots:64

let test_execute_all_schemes_accurate () =
  List.iter
    (fun scheme ->
      let acc = run_scheme scheme in
      check Alcotest.bool
        (Driver.scheme_name scheme ^ " under error bound")
        true
        (acc.Accuracy.rmse < 0x1p-8))
    Driver.all_schemes

let test_execute_reports_classes () =
  let c = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:20. (fig2 ()) in
  let eval =
    Interp.context ~params:c.Driver.params
      ~rotations:(Interp.required_rotations c.Driver.prog) ()
  in
  let r = Interp.execute eval ~waterline_bits:20. c.Driver.prog ~inputs:fig2_inputs in
  check Alcotest.bool "timed" true (r.Interp.elapsed_seconds > 0.);
  check Alcotest.bool "mul class present" true
    (List.mem_assoc Costmodel.Cipher_mul r.Interp.per_class);
  check Alcotest.bool "liveness bounded" true (r.Interp.peak_live <= Prog.num_ops c.Driver.prog)

let test_rotation_program_executes () =
  let b = B.create ~name:"rot" ~slot_count:64 () in
  let x = B.input b "x" in
  B.output b (B.mul b (B.add b x (B.rotate b x 3)) x);
  let p = B.finish b in
  let c = Driver.compile Driver.Pars ~sf_bits:28 ~waterline_bits:20. p in
  check Alcotest.(list int) "rotations detected" [ 3 ]
    (Interp.required_rotations c.Driver.prog);
  let eval = Interp.context ~params:c.Driver.params ~rotations:[ 3 ] () in
  let inputs = [ ("x", Array.init 64 (fun i -> 0.01 *. float_of_int i)) ] in
  let acc = Accuracy.measure eval ~waterline_bits:20. c.Driver.prog ~inputs ~valid_slots:64 in
  check Alcotest.bool "accurate" true (acc.Accuracy.rmse < 1e-2)

let test_context_degree_check () =
  let types = [| Hecate_ir.Types.Cipher { Hecate_ir.Types.scale = 20.; level = 0 } |] in
  let params = Hecate.Paramselect.select ~sf_bits:28 ~types ~slot_count:1024 () in
  match Interp.context ~exec_n:512 ~params ~rotations:[] () with
  | _ -> Alcotest.fail "expected degree rejection"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Profiling                                                            *)
(* ------------------------------------------------------------------ *)

let test_profile_shape () =
  let model = Profile.cached_model ~reps:2 ~n:512 ~levels:2 ~q0_bits:30 ~sf_bits:28 () in
  (* measured model must preserve the level-speedup shape *)
  let l0 = model.Costmodel.cost Costmodel.Cipher_mul ~num_primes:3 ~n:512 in
  let l2 = model.Costmodel.cost Costmodel.Cipher_mul ~num_primes:1 ~n:512 in
  check Alcotest.bool "positive" true (l0 > 0. && l2 > 0.);
  check Alcotest.bool "fewer primes faster" true (l2 < l0)

let test_profile_cache_reused () =
  let m1 = Profile.cached_model ~reps:2 ~n:512 ~levels:2 ~q0_bits:30 ~sf_bits:28 () in
  let m2 = Profile.cached_model ~reps:2 ~n:512 ~levels:2 ~q0_bits:30 ~sf_bits:28 () in
  check Alcotest.bool "same model object" true (m1 == m2)

(* ------------------------------------------------------------------ *)
(* Harness                                                              *)
(* ------------------------------------------------------------------ *)

let test_harness_waterlines () =
  check Alcotest.int "36 waterlines" 36 (List.length Harness.default_waterlines);
  check (Alcotest.float 1e-9) "low end" 10. (List.hd Harness.default_waterlines);
  check (Alcotest.float 1e-9) "high end" 27.5
    (List.nth Harness.default_waterlines 35)

let test_harness_estimate_ranking () =
  let bench = Apps.sobel ~size:8 () in
  let ranked = Harness.estimate_only ~waterlines:[ 18.; 20.; 22. ] ~scheme:Driver.Eva bench in
  check Alcotest.bool "candidates compiled" true (List.length ranked >= 2);
  let costs = List.map (fun (_, c) -> c.Driver.estimated_seconds) ranked in
  check Alcotest.bool "sorted ascending" true (List.sort compare costs = costs)

let test_harness_search_finds_feasible () =
  let bench = Apps.sobel ~size:8 () in
  match Harness.search ~waterlines:[ 16.; 20.; 24. ] ~scheme:Driver.Hecate bench with
  | None -> Alcotest.fail "expected a feasible configuration"
  | Some s ->
      check Alcotest.bool "meets bound" true (s.Harness.rmse <= 0x1p-8);
      check Alcotest.bool "timed" true (s.Harness.actual_seconds > 0.)

let test_harness_impossible_bound () =
  let bench = Apps.sobel ~size:8 () in
  match Harness.search ~waterlines:[ 16. ] ~error_bound:1e-300 ~scheme:Driver.Eva bench with
  | None -> ()
  | Some _ -> Alcotest.fail "expected infeasibility"

(* ------------------------------------------------------------------ *)
(* Estimator-vs-actual sanity (the Fig. 8 property, one data point)     *)
(* ------------------------------------------------------------------ *)

let test_estimator_tracks_actual () =
  (* size 16 -> millisecond-scale execution, where wall-clock noise does not
     swamp the comparison *)
  let bench = Apps.sobel ~size:16 () in
  match
    Harness.search ~waterlines:[ 20.; 22. ] ~use_profiled_model:true ~scheme:Driver.Eva bench
  with
  | None -> Alcotest.fail "expected feasible config"
  | Some s ->
      let rel =
        Stats.relative_error ~actual:s.Harness.actual_seconds
          ~estimate:s.Harness.estimated_seconds_exec
      in
      check Alcotest.bool
        (Printf.sprintf "relative error %.1f%% within 50%%" (100. *. rel))
        true (rel < 0.5)

(* ------------------------------------------------------------------ *)
(* Schedule lowering (the SEAL dialect)                                *)
(* ------------------------------------------------------------------ *)

module Schedule = Hecate_backend.Schedule

let test_schedule_lowering_shape () =
  let c = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:20. (fig2 ()) in
  let s = Schedule.lower c.Driver.prog in
  check Alcotest.int "one instruction per op plus outputs"
    (Prog.num_ops c.Driver.prog - 0 + 1 (* output marker *))
    (Array.length s.Schedule.instructions);
  check Alcotest.bool "buffers fewer than ops" true
    (s.Schedule.cipher_buffers < Prog.num_ops c.Driver.prog);
  check Alcotest.int "one output" 1 s.Schedule.output_count;
  (* the listing mentions the downscale lowering *)
  let text = Format.asprintf "%a" Schedule.pp s in
  check Alcotest.bool "downscale listed" true
    (Astring.String.is_infix ~affix:"downscale" text)

let test_schedule_execution_matches_interp () =
  let c = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:20. (fig2 ()) in
  let rotations = Interp.required_rotations c.Driver.prog in
  let eval = Interp.context ~params:c.Driver.params ~rotations () in
  let via_interp =
    (Interp.execute eval ~waterline_bits:20. c.Driver.prog ~inputs:fig2_inputs).Interp.outputs
  in
  let s = Schedule.lower c.Driver.prog in
  let via_schedule = Schedule.execute eval ~waterline_bits:20. s ~inputs:fig2_inputs in
  List.iter2
    (fun a b ->
      (* decryptions of independent encryptions differ only by noise *)
      check Alcotest.bool "same results" true (Stats.max_abs_diff a b < 1e-2))
    via_interp via_schedule

let test_schedule_buffer_reuse () =
  (* a long multiply chain must run in a handful of buffers *)
  let b = B.create ~name:"chain" ~slot_count:64 () in
  let x = B.input b "x" in
  let rec chain v i = if i = 0 then v else chain (B.mul b v v) (i - 1) in
  B.output b (chain x 6);
  let c = Driver.compile Driver.Eva ~sf_bits:28 ~waterline_bits:20. (B.finish b) in
  let s = Schedule.lower c.Driver.prog in
  check Alcotest.bool "constant-size pool" true (s.Schedule.cipher_buffers <= 4)

(* ------------------------------------------------------------------ *)
(* Noise model                                                         *)
(* ------------------------------------------------------------------ *)

module Noisemodel = Hecate.Noisemodel

let test_noise_model_predicts_measurement () =
  (* predicted output error within a moderate factor of the measured RMSE
     on the running example under EVA (no downscales: the model's
     worst-case multiplier-rounding term does not apply, so the comparison
     is tight) *)
  let c = Driver.compile Driver.Eva ~sf_bits:28 ~waterline_bits:20. (fig2 ()) in
  let acc = run_scheme Driver.Eva in
  let ncfg = Noisemodel.default_config ~n:128 in
  let predicted = (Noisemodel.analyze ncfg c.Driver.prog).Noisemodel.predicted_rmse in
  let ratio = predicted /. acc.Accuracy.rmse in
  check Alcotest.bool
    (Printf.sprintf "prediction within 30x (ratio %.2f)" ratio)
    true
    (ratio > 1. /. 30. && ratio < 30.)

let test_noise_model_waterline_monotone () =
  (* over the noise-dominated range, higher waterline -> lower predicted
     error for the same program shape *)
  let pred wl =
    let c = Driver.compile Driver.Eva ~sf_bits:28 ~waterline_bits:wl (fig2 ()) in
    (Noisemodel.analyze (Noisemodel.default_config ~n:1024) c.Driver.prog)
      .Noisemodel.predicted_rmse
  in
  check Alcotest.bool "16 < 12" true (pred 16. < pred 12.);
  check Alcotest.bool "20 < 16" true (pred 20. < pred 16.)

let test_noise_aware_exploration () =
  (* an absurdly tight budget rejects every neighbour: the climb stays at
     the baseline; a loose budget behaves like plain HECATE *)
  let prog = fig2 () in
  let loose = Driver.compile ~noise_budget_bits:100. Driver.Hecate ~sf_bits:28 ~waterline_bits:20. prog in
  let plain = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:20. prog in
  check (Alcotest.float 1e-9) "loose budget = plain hecate" plain.Driver.estimated_seconds
    loose.Driver.estimated_seconds

(* ------------------------------------------------------------------ *)
(* Ablation flags                                                      *)
(* ------------------------------------------------------------------ *)

let test_ablate_downscale_analysis () =
  (* the trigger program from test_core: step (e) disabled must produce no
     pre-multiplication downscale *)
  let b = B.create ~slot_count:8 () in
  let x = B.input b "x" and y = B.input b "y" in
  let xy = B.mul b x y in
  B.output b (B.mul b xy xy);
  let prog = B.finish b in
  let count_downscales (c : Driver.compiled) =
    Array.fold_left
      (fun n (o : Prog.op) -> match o.Prog.kind with Prog.Downscale _ -> n + 1 | _ -> n)
      0 c.Driver.prog.Prog.body
  in
  let with_e = Driver.compile Driver.Pars ~sf_bits:28 ~waterline_bits:20. prog in
  let without_e =
    Driver.compile ~downscale_analysis:false Driver.Pars ~sf_bits:28 ~waterline_bits:20. prog
  in
  check Alcotest.bool "step (e) downscales" true (count_downscales with_e > 0);
  check Alcotest.int "ablated: none" 0 (count_downscales without_e)

let test_ablate_smu_phases () =
  let prog = (Hecate_apps.Apps.sobel ~size:8 ()).Hecate_apps.Apps.prog in
  let units n = Hecate.Smu.unit_count (Hecate.Smu.generate ~phases:n prog) in
  check Alcotest.bool "phase 2 refines phase 1" true (units 2 >= units 1);
  check Alcotest.bool "phase 3 refines phase 2" true (units 3 >= units 2)

let test_ablate_early_modswitch () =
  let p =
    Hecate_ir.Parser.parse
      {|
func f(%0: cipher "x", %1: cipher "y") slots=4 {
  %2 = mul %0, %1
  %3 = modswitch %2
  %4 = mul %3, %3
  return %4
}
|}
  in
  let cfg = Hecate_ir.Typing.config ~sf:28. ~waterline:20. () in
  ignore (Hecate_ir.Typing.check_exn cfg p);
  let hoisted, _ = Driver.finalize ~cfg p in
  let kept, _ = Driver.finalize ~early_modswitch:false ~cfg p in
  let first_consumer_kind (q : Prog.t) =
    Prog.kind_name (Prog.op q 2).Prog.kind
  in
  check Alcotest.string "hoisted" "modswitch" (first_consumer_kind hoisted);
  check Alcotest.string "kept in place" "mul" (first_consumer_kind kept)

(* ------------------------------------------------------------------ *)
(* Property: compilation preserves plaintext semantics                 *)
(* ------------------------------------------------------------------ *)

(* Random DAG programs over two inputs: the reference semantics of the
   compiled program (where scale management is transparent) must equal the
   reference semantics of the source, for every scheme. *)
let random_program seed =
  let g = Prng.create ~seed in
  let b = B.create ~name:"rand" ~slot_count:16 () in
  let x = B.input b "x" and y = B.input b "y" in
  let pool = ref [ (x, 0); (y, 0) ] in
  (* track multiplicative budget so chains stay shallow *)
  let pick () = List.nth !pool (Prng.int_below g (List.length !pool)) in
  let n_ops = 3 + Prng.int_below g 12 in
  for _ = 1 to n_ops do
    let v, depth = pick () in
    let w, depth' = pick () in
    let node =
      match Prng.int_below g 6 with
      | 0 -> (B.add b v w, max depth depth')
      | 1 -> (B.sub b v w, max depth depth')
      | 2 when depth + depth' <= 3 -> (B.mul b v w, depth + depth' + 1)
      | 2 -> (B.add b v w, max depth depth')
      | 3 -> (B.negate b v, depth)
      | 4 -> (B.rotate b v (1 + Prng.int_below g 15), depth)
      | _ -> (B.mul b v (B.const_scalar b (0.25 +. Prng.float01 g)), depth)
    in
    pool := node :: !pool
  done;
  let out, _ = List.hd !pool in
  B.output b out;
  B.finish b

let prop_compile_preserves_semantics =
  QCheck.Test.make ~name:"compilation preserves plaintext semantics" ~count:40
    QCheck.(int_bound 10000)
    (fun seed ->
      let prog = random_program seed in
      let inputs =
        let g = Prng.create ~seed:(seed + 1) in
        [
          ("x", Array.init 16 (fun _ -> Prng.float01 g -. 0.5));
          ("y", Array.init 16 (fun _ -> Prng.float01 g -. 0.5));
        ]
      in
      let expected = Reference.execute prog ~inputs in
      List.for_all
        (fun scheme ->
          let c = Driver.compile scheme ~sf_bits:28 ~waterline_bits:20. prog in
          let got = Reference.execute c.Driver.prog ~inputs in
          List.for_all2 (fun a b -> Stats.max_abs_diff a b < 1e-9) expected got)
        Driver.all_schemes)

let prop_compiled_random_runs_on_ckks =
  (* a smaller sample actually executes under encryption *)
  QCheck.Test.make ~name:"random programs execute accurately on CKKS" ~count:5
    QCheck.(int_bound 1000)
    (fun seed ->
      let prog = random_program seed in
      let inputs =
        let g = Prng.create ~seed:(seed + 1) in
        [
          ("x", Array.init 16 (fun _ -> Prng.float01 g -. 0.5));
          ("y", Array.init 16 (fun _ -> Prng.float01 g -. 0.5));
        ]
      in
      let c = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:24. prog in
      let eval =
        Interp.context ~params:c.Driver.params
          ~rotations:(Interp.required_rotations c.Driver.prog) ()
      in
      let acc =
        Accuracy.measure eval ~waterline_bits:24. c.Driver.prog ~inputs ~valid_slots:16
      in
      acc.Accuracy.rmse < 1e-2)

let prop_print_parse_roundtrip =
  (* textual IR round-trips for arbitrary compiled programs, including every
     scale-management op and hex-float attributes *)
  QCheck.Test.make ~name:"print/parse roundtrip on compiled programs" ~count:25
    QCheck.(int_bound 10000)
    (fun seed ->
      let prog = random_program seed in
      let c = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:20. prog in
      let text = Hecate_ir.Printer.to_string c.Driver.prog in
      let parsed = Hecate_ir.Parser.parse text in
      let cfg = Hecate_ir.Typing.config ~sf:28. ~waterline:20. () in
      ignore (Hecate_ir.Typing.check_exn cfg parsed);
      Prog.num_ops parsed = Prog.num_ops c.Driver.prog
      && Hecate_ir.Printer.to_string parsed = text)

let prop_schedule_buffers_bounded =
  QCheck.Test.make ~name:"schedule buffer pool bounded by peak liveness" ~count:25
    QCheck.(int_bound 10000)
    (fun seed ->
      let prog = random_program seed in
      let c = Driver.compile Driver.Eva ~sf_bits:28 ~waterline_bits:20. prog in
      let s = Schedule.lower c.Driver.prog in
      let live = Hecate_ir.Liveness.analyze c.Driver.prog in
      s.Schedule.cipher_buffers <= live.Hecate_ir.Liveness.peak_live + 1)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "hecate_backend"
    [
      ( "reference",
        [
          Alcotest.test_case "fig2 semantics" `Quick test_reference_fig2;
          Alcotest.test_case "opaque ops transparent" `Quick test_reference_opaque_ops_transparent;
          Alcotest.test_case "missing input" `Quick test_reference_missing_input;
        ] );
      ( "interp",
        [
          Alcotest.test_case "all schemes accurate" `Quick test_execute_all_schemes_accurate;
          Alcotest.test_case "class stats" `Quick test_execute_reports_classes;
          Alcotest.test_case "rotations" `Quick test_rotation_program_executes;
          Alcotest.test_case "degree check" `Quick test_context_degree_check;
        ] );
      ( "profile",
        [
          Alcotest.test_case "shape" `Quick test_profile_shape;
          Alcotest.test_case "cache" `Quick test_profile_cache_reused;
        ] );
      ( "harness",
        [
          Alcotest.test_case "waterline grid" `Quick test_harness_waterlines;
          Alcotest.test_case "estimate ranking" `Quick test_harness_estimate_ranking;
          Alcotest.test_case "search feasible" `Quick test_harness_search_finds_feasible;
          Alcotest.test_case "impossible bound" `Quick test_harness_impossible_bound;
          Alcotest.test_case "estimator tracks actual" `Slow test_estimator_tracks_actual;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "lowering shape" `Quick test_schedule_lowering_shape;
          Alcotest.test_case "matches interp" `Quick test_schedule_execution_matches_interp;
          Alcotest.test_case "buffer reuse" `Quick test_schedule_buffer_reuse;
        ] );
      ( "noise",
        [
          Alcotest.test_case "predicts measurement" `Quick test_noise_model_predicts_measurement;
          Alcotest.test_case "waterline monotone" `Quick test_noise_model_waterline_monotone;
          Alcotest.test_case "noise-aware exploration" `Quick test_noise_aware_exploration;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "downscale analysis" `Quick test_ablate_downscale_analysis;
          Alcotest.test_case "smu phases" `Quick test_ablate_smu_phases;
          Alcotest.test_case "early modswitch" `Quick test_ablate_early_modswitch;
        ] );
      ( "properties",
        [
          qtest prop_compile_preserves_semantics;
          qtest prop_compiled_random_runs_on_ckks;
          qtest prop_print_parse_roundtrip;
          qtest prop_schedule_buffers_bounded;
        ] );
    ]
