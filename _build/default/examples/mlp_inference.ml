(* Private neural-network inference: a small MLP with square activations
   classifying an encrypted input vector, end to end.

   Shows HECATE's whole pipeline on the paper's MLP workload shape:
   DSL program -> scale management (all four schemes) -> parameter selection
   -> encrypted execution -> argmax over decrypted logits.

   Run with:  dune exec examples/mlp_inference.exe *)

module Apps = Hecate_apps.Apps
module Driver = Hecate.Driver
module Interp = Hecate_backend.Interp
module Accuracy = Hecate_backend.Accuracy
module Reference = Hecate_backend.Reference

let argmax a =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > a.(!best) then best := i) a;
  !best

let () =
  let bench = Apps.mlp ~in_dim:64 ~hidden:32 ~out_dim:10 () in
  Printf.printf "MLP 64-32-10 with square activation (%d IR ops)\n%!"
    (Hecate_ir.Prog.num_ops bench.Apps.prog);
  let expected = List.hd (Reference.execute bench.Apps.prog ~inputs:bench.Apps.inputs) in
  Printf.printf "plaintext logits argmax: class %d\n\n%!" (argmax (Array.sub expected 0 10));
  Printf.printf "%-8s %12s %12s %10s %8s\n" "scheme" "est (s)" "actual (s)" "rmse" "class";
  List.iter
    (fun scheme ->
      let c = Driver.compile scheme ~sf_bits:28 ~waterline_bits:22. bench.Apps.prog in
      let eval =
        Interp.context ~params:c.Driver.params
          ~rotations:(Interp.required_rotations c.Driver.prog) ()
      in
      let acc =
        Accuracy.measure eval ~waterline_bits:22. c.Driver.prog ~inputs:bench.Apps.inputs
          ~valid_slots:10
      in
      let logits = Array.sub (List.hd acc.Accuracy.outputs) 0 10 in
      Printf.printf "%-8s %12.3f %12.3f %10.2e %8d\n%!" (Driver.scheme_name scheme)
        c.Driver.estimated_seconds acc.Accuracy.elapsed_seconds acc.Accuracy.rmse
        (argmax logits))
    Driver.all_schemes
