(* Quickstart: the paper's running example (x^2 + y^2)^3 from Fig. 2.

   Builds the program with the DSL, compiles it under all four
   scale-management schemes, executes each on the in-repo RNS-CKKS backend
   and compares outputs against the plaintext reference.

   Run with:  dune exec examples/quickstart.exe *)

module Dsl = Hecate_frontend.Dsl
module Driver = Hecate.Driver
module Interp = Hecate_backend.Interp
module Accuracy = Hecate_backend.Accuracy
module Printer = Hecate_ir.Printer
module Prng = Hecate_support.Prng

let () =
  (* 1. Write the program: packed vectors of 64 slots. *)
  let d = Dsl.create ~name:"quickstart" ~slot_count:64 () in
  let x = Dsl.input d "x" and y = Dsl.input d "y" in
  let z = Dsl.add d (Dsl.square d x) (Dsl.square d y) in
  Dsl.output d (Dsl.mul d (Dsl.mul d z z) z);
  let prog = Dsl.finish d in

  (* 2. Synthetic inputs. *)
  let g = Prng.create ~seed:2024 in
  let vec () = Array.init 64 (fun _ -> Prng.float01 g -. 0.5) in
  let inputs = [ ("x", vec ()); ("y", vec ()) ] in

  (* 3. Compile and run under each scheme. *)
  Printf.printf "%-8s %10s %10s %12s %8s\n" "scheme" "est (s)" "actual (s)" "rmse" "chain";
  List.iter
    (fun scheme ->
      let c = Driver.compile scheme ~sf_bits:28 ~waterline_bits:20. prog in
      let eval =
        Interp.context ~params:c.Driver.params
          ~rotations:(Interp.required_rotations c.Driver.prog) ()
      in
      let acc =
        Accuracy.measure eval ~waterline_bits:20. c.Driver.prog ~inputs ~valid_slots:64
      in
      Printf.printf "%-8s %10.4f %10.4f %12.3e %5d+1\n"
        (Driver.scheme_name scheme) c.Driver.estimated_seconds acc.Accuracy.elapsed_seconds
        acc.Accuracy.rmse c.Driver.params.Hecate.Paramselect.chain_levels)
    Driver.all_schemes;

  (* 4. Show HECATE's plan: the proactive downscale of Fig. 2c. *)
  let c = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:20. prog in
  print_newline ();
  print_endline "HECATE's scale-management plan:";
  print_string (Printer.to_string c.Driver.prog)
