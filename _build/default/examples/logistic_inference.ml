(* Bonus workload beyond the paper's suite: private logistic-regression
   scoring with a cubic sigmoid approximation.

   score(x) = sigmoid(w.x + b),  sigmoid(t) ~ 0.5 + 0.25 t - 0.0052 t^3

   The polynomial is evaluated homomorphically (two ciphertext
   multiplications deep), a classic privacy-preserving-ML kernel. Shows the
   compiler handling cipher^3 interleaved with plaintext coefficients.

   Run with:  dune exec examples/logistic_inference.exe *)

module Dsl = Hecate_frontend.Dsl
module Driver = Hecate.Driver
module Interp = Hecate_backend.Interp
module Accuracy = Hecate_backend.Accuracy
module Prng = Hecate_support.Prng

let dim = 16
let batch = 64 (* one sample per slot block: features packed per-slot *)

let () =
  let g = Prng.create ~seed:0x106157 in
  let w = Array.init dim (fun _ -> Prng.float01 g -. 0.5) in
  let b0 = 0.1 in
  (* features for a batch: feature j of sample s lives in slot s + j*batch *)
  let x = Array.init (dim * batch) (fun _ -> Prng.float01 g -. 0.5) in
  let d = Dsl.create ~name:"logistic" ~slot_count:(dim * batch) () in
  let xi = Dsl.input d "x" in
  (* w.x per sample: multiply features by the broadcast weight vector, then
     fold the dim feature planes onto plane 0 by rotations *)
  let weights = Array.init (dim * batch) (fun s -> w.(s / batch)) in
  let wx = Dsl.mul d xi (Dsl.const_vector d weights) in
  let folded =
    List.init dim (fun j -> if j = 0 then wx else Dsl.rotate d wx (j * batch))
    |> Dsl.add_many d
  in
  let t = Dsl.add d folded (Dsl.const_scalar d b0) in
  (* 0.5 + 0.25 t - 0.0052 t^3 via t * (0.25 - 0.0052 t^2) + 0.5 *)
  let t2 = Dsl.square d t in
  let inner = Dsl.sub d (Dsl.const_scalar d 0.25) (Dsl.scale_by d t2 0.0052) in
  let score = Dsl.add d (Dsl.mul d t inner) (Dsl.const_scalar d 0.5) in
  Dsl.output d score;
  let prog = Dsl.finish d in
  Printf.printf "logistic scoring over %d samples x %d features (%d IR ops)\n\n" batch dim
    (Hecate_ir.Prog.num_ops prog);
  Printf.printf "%-8s %10s %10s %10s\n" "scheme" "est (s)" "actual (s)" "rmse";
  List.iter
    (fun scheme ->
      let c = Driver.compile scheme ~sf_bits:28 ~waterline_bits:22. prog in
      let eval =
        Interp.context ~params:c.Driver.params
          ~rotations:(Interp.required_rotations c.Driver.prog) ()
      in
      let acc =
        Accuracy.measure eval ~waterline_bits:22. c.Driver.prog ~inputs:[ ("x", x) ]
          ~valid_slots:batch
      in
      Printf.printf "%-8s %10.3f %10.3f %10.2e\n%!" (Driver.scheme_name scheme)
        c.Driver.estimated_seconds acc.Accuracy.elapsed_seconds acc.Accuracy.rmse)
    Driver.all_schemes;
  (* sanity: scores lie in (0, 1) like a probability *)
  let c = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:22. prog in
  let eval =
    Interp.context ~params:c.Driver.params
      ~rotations:(Interp.required_rotations c.Driver.prog) ()
  in
  let acc =
    Accuracy.measure eval ~waterline_bits:22. c.Driver.prog ~inputs:[ ("x", x) ]
      ~valid_slots:batch
  in
  let scores = Array.sub (List.hd acc.Accuracy.outputs) 0 batch in
  Printf.printf "\nfirst scores: ";
  Array.iter (fun s -> Printf.printf "%.3f " s) (Array.sub scores 0 8);
  Printf.printf "\nall in (0,1): %b\n"
    (Array.for_all (fun s -> s > 0. && s < 1.) scores)
