(* The tensor frontend: a small CNN written with shapes instead of slots.

   conv 3x3 -> square -> avg-pool -> flatten -> dense(10), on an encrypted
   12x12 image. The tensor layer (CHET-style, see lib/frontend/tensor.mli)
   tracks grids and dilations and lowers onto the packed-vector DSL; HECATE
   then scale-manages the result like any other program.

   Run with:  dune exec examples/cnn_tensor.exe *)

module Tensor = Hecate_frontend.Tensor
module Driver = Hecate.Driver
module Interp = Hecate_backend.Interp
module Accuracy = Hecate_backend.Accuracy
module Prng = Hecate_support.Prng

let () =
  let g = Prng.create ~seed:0xC91 in
  let h = 12 and w = 12 in
  let img = Array.init (h * w) (fun _ -> Prng.float01 g) in
  let kernel = Array.init 3 (fun _ -> Array.init 3 (fun _ -> (Prng.float01 g -. 0.5) /. 3.)) in

  let c = Tensor.create ~name:"cnn" ~slot_count:256 () in
  let x = Tensor.input_image c "img" ~height:h ~width:w in
  let conv = Tensor.conv2d x ~kernel ~bias:0.1 in
  let act = Tensor.square conv in
  let pooled = Tensor.avg_pool2x2 act in
  let rows, cols = Tensor.dims pooled in
  Printf.printf "feature map: %dx%d at dilation %d\n" rows cols (Tensor.dilation pooled);
  let flat = Tensor.compact pooled in
  let _, feat = Tensor.dims flat in
  let weights = Array.init 10 (fun _ -> Array.init feat (fun _ -> (Prng.float01 g -. 0.5) /. 8.)) in
  let bias = Array.init 10 (fun _ -> Prng.float01 g /. 10.) in
  Tensor.output c (Tensor.dense flat ~weights ~bias);
  let prog = Tensor.finish c in
  Printf.printf "lowered to %d IR operations\n\n" (Hecate_ir.Prog.num_ops prog);

  Printf.printf "%-8s %10s %12s %10s\n" "scheme" "est (s)" "actual (s)" "rmse";
  List.iter
    (fun scheme ->
      let compiled = Driver.compile scheme ~sf_bits:28 ~waterline_bits:24. prog in
      let eval =
        Interp.context ~params:compiled.Driver.params
          ~rotations:(Interp.required_rotations compiled.Driver.prog) ()
      in
      let acc =
        Accuracy.measure eval ~waterline_bits:24. compiled.Driver.prog
          ~inputs:[ ("img", img) ] ~valid_slots:10
      in
      Printf.printf "%-8s %10.3f %12.3f %10.2e\n%!" (Driver.scheme_name scheme)
        compiled.Driver.estimated_seconds acc.Accuracy.elapsed_seconds acc.Accuracy.rmse)
    Driver.all_schemes
