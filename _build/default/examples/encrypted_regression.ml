(* Privacy-preserving model training: gradient-descent linear regression on
   encrypted data.

   The data owner encrypts (x, y); the server trains y = w*x + b fully
   homomorphically (the paper's LR benchmark) and returns encrypted
   predictions. We compare the learned fit against plaintext training and
   show how the four scale-management schemes rank on this workload.

   Run with:  dune exec examples/encrypted_regression.exe *)

module Apps = Hecate_apps.Apps
module Driver = Hecate.Driver
module Interp = Hecate_backend.Interp
module Accuracy = Hecate_backend.Accuracy

let () =
  let samples = 1024 and epochs = 3 in
  let bench = Apps.linear_regression ~epochs ~samples () in
  let x = List.assoc "x" bench.Apps.inputs and y = List.assoc "y" bench.Apps.inputs in
  Printf.printf "training y = w*x + b for %d epochs on %d encrypted samples\n%!" epochs samples;
  Printf.printf "%-8s %8s %12s %12s %10s\n" "scheme" "chain" "est (s)" "actual (s)" "rmse";
  let outputs = ref [] in
  List.iter
    (fun scheme ->
      let c = Driver.compile scheme ~sf_bits:28 ~waterline_bits:24. bench.Apps.prog in
      let eval =
        Interp.context ~params:c.Driver.params
          ~rotations:(Interp.required_rotations c.Driver.prog) ()
      in
      let acc =
        Accuracy.measure eval ~waterline_bits:24. c.Driver.prog ~inputs:bench.Apps.inputs
          ~valid_slots:samples
      in
      if scheme = Driver.Hecate then outputs := acc.Accuracy.outputs;
      Printf.printf "%-8s %7d+1 %12.3f %12.3f %10.2e\n%!" (Driver.scheme_name scheme)
        c.Driver.params.Hecate.Paramselect.chain_levels c.Driver.estimated_seconds
        acc.Accuracy.elapsed_seconds acc.Accuracy.rmse)
    Driver.all_schemes;
  (* recover (w, b) from two decrypted predictions and compare to plaintext
     training *)
  (match !outputs with
  | [ pred ] ->
      (* pred_i = w x_i + b: solve from two samples with distinct x *)
      let i = 0 and j = 1 in
      let w = (pred.(i) -. pred.(j)) /. (x.(i) -. x.(j)) in
      let b = pred.(i) -. (w *. x.(i)) in
      Printf.printf "\nencrypted training result:  w = %+.4f   b = %+.4f\n" w b;
      (* plaintext training for comparison *)
      let wp = ref 0.1 and bp = ref 0.05 in
      for _ = 1 to epochs do
        let gw = ref 0. and gb = ref 0. in
        Array.iteri
          (fun k xk ->
            let err = (!wp *. xk) +. !bp -. y.(k) in
            gw := !gw +. (err *. xk);
            gb := !gb +. err)
          x;
        wp := !wp -. (1. /. float_of_int samples *. !gw);
        bp := !bp -. (1. /. float_of_int samples *. !gb)
      done;
      Printf.printf "plaintext training result:  w = %+.4f   b = %+.4f\n" !wp !bp;
      Printf.printf "(data generated around y = 0.7 x^2 + 0.8 x + 0.3)\n"
  | _ -> prerr_endline "unexpected output shape")
