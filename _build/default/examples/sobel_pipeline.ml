(* Encrypted image processing: Sobel edge detection on a synthetic image.

   The client encrypts a 32x32 image; the "server" (this process) runs the
   HECATE-compiled gradient program without ever decrypting; the client
   decrypts the squared gradient magnitude and renders an ASCII edge map.

   Run with:  dune exec examples/sobel_pipeline.exe *)

module Apps = Hecate_apps.Apps
module Driver = Hecate.Driver
module Interp = Hecate_backend.Interp
module Accuracy = Hecate_backend.Accuracy

let size = 32

(* a synthetic scene: a bright rectangle and a diagonal bar *)
let scene =
  Array.init (size * size) (fun s ->
      let r = s / size and c = s mod size in
      let rect = r >= 8 && r < 24 && c >= 10 && c < 22 in
      let bar = abs (r - c) <= 1 in
      if rect || bar then 0.9 else 0.1)

let () =
  let bench = Apps.sobel ~size () in
  (* swap in our scene for the generated random image *)
  let bench = { bench with Apps.inputs = [ ("image", scene) ] } in
  Printf.printf "compiling Sobel (%d ops) with HECATE...\n%!"
    (Hecate_ir.Prog.num_ops bench.Apps.prog);
  let c = Driver.compile Driver.Hecate ~sf_bits:28 ~waterline_bits:22. bench.Apps.prog in
  Printf.printf "chain: %d rescale primes, log2 Q = %.0f, estimated %0.3f s at N = %d\n%!"
    c.Driver.params.Hecate.Paramselect.chain_levels c.Driver.params.Hecate.Paramselect.log_q
    c.Driver.estimated_seconds c.Driver.params.Hecate.Paramselect.secure_n;
  let eval =
    Interp.context ~params:c.Driver.params
      ~rotations:(Interp.required_rotations c.Driver.prog) ()
  in
  let acc =
    Accuracy.measure eval ~waterline_bits:22. c.Driver.prog ~inputs:bench.Apps.inputs
      ~valid_slots:bench.Apps.valid_slots
  in
  Printf.printf "executed homomorphically in %.3f s; rmse vs plaintext %.2e\n\n%!"
    acc.Accuracy.elapsed_seconds acc.Accuracy.rmse;
  (* render the decrypted edge map (interior only: packed rotation wraps at
     the image border) *)
  let edges = List.hd acc.Accuracy.outputs in
  for r = 1 to size - 2 do
    for c = 1 to size - 2 do
      let v = edges.((r * size) + c) in
      print_char (if v > 1.0 then '#' else if v > 0.25 then '+' else '.')
    done;
    print_newline ()
  done
