examples/cnn_tensor.ml: Array Hecate Hecate_backend Hecate_frontend Hecate_ir Hecate_support List Printf
