examples/mlp_inference.mli:
