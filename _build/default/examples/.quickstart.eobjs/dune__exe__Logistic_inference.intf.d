examples/logistic_inference.mli:
