examples/quickstart.mli:
