examples/sobel_pipeline.ml: Array Hecate Hecate_apps Hecate_backend Hecate_ir List Printf
