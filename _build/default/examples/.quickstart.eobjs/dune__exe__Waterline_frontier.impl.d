examples/waterline_frontier.ml: Hecate Hecate_apps Hecate_backend List Printf String
