examples/encrypted_regression.mli:
