examples/cnn_tensor.mli:
