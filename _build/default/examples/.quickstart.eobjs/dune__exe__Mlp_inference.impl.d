examples/mlp_inference.ml: Array Hecate Hecate_apps Hecate_backend Hecate_ir List Printf
