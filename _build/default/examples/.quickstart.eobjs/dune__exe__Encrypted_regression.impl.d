examples/encrypted_regression.ml: Array Hecate Hecate_apps Hecate_backend List Printf
