examples/waterline_frontier.mli:
