lib/ir/liveness.mli: Prog
