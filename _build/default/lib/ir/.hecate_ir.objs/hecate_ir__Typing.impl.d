lib/ir/typing.ml: Array List Printf Prog Result Types
