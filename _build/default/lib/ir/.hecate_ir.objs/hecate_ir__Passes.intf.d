lib/ir/passes.mli: Prog
