lib/ir/typing.mli: Prog Types
