lib/ir/prog.ml: Array Hashtbl List Printf Types
