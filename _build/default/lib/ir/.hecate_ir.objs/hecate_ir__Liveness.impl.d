lib/ir/liveness.ml: Array List Prog Queue
