lib/ir/printer.ml: Array Format List Printf Prog String Types
