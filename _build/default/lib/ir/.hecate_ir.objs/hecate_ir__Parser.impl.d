lib/ir/parser.ml: Array Hashtbl List Printf Prog String Types
