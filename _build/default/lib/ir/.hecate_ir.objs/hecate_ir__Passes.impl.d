lib/ir/passes.ml: Array Fun Hashtbl List Option Prog Types
