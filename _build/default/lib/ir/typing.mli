(** Typing rules for scale-managed HECATE IR (paper §IV-B, Eq. 1-6).

    The checker enforces the RNS-CKKS constraints:
    - C1: every scale stays below the modulus remaining at its level
      (checked when [max_log_q] is supplied);
    - C2: rescaling and downscaling never push a ciphertext scale below the
      waterline;
    - C3: binary operations require equal operand levels, and additions
      equal operand scales.

    Scales are in log2. *)

type config = {
  sf : float; (** log2 of the rescaling factor [S_f] (the rescale prime size) *)
  waterline : float; (** log2 of the waterline [S_w] *)
  max_level : int option; (** number of rescaling primes available, if fixed *)
  max_log_q : float; (** total log2 ciphertext modulus for C1; [infinity] to skip *)
}

val config : ?max_level:int -> ?max_log_q:float -> sf:float -> waterline:float -> unit -> config

val infer : config -> Prog.kind -> Types.t array -> (Types.t, string) result
(** Result type of one operation from its operand types. *)

val check : config -> Prog.t -> (Types.t array, string) result
(** Type the whole program (storing types on the ops as a side effect) and
    verify every constraint, including that outputs are ciphertexts. Returns
    the type of every value. *)

val check_exn : config -> Prog.t -> Types.t array
(** @raise Invalid_argument with the verifier message on failure. *)
