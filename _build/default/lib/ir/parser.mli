(** Recursive-descent parser for the textual IR form produced by
    {!Printer}. Type annotations (after [:]) are accepted and discarded;
    run {!Typing.check} to recompute them. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Prog.t
(** @raise Parse_error on malformed input. *)

val parse_file : string -> Prog.t
(** @raise Sys_error if the file cannot be read. *)
