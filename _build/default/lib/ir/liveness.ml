type t = { last_use : int array; buffer_of : int array; buffer_count : int; peak_live : int }

let analyze (p : Prog.t) =
  let n = Prog.num_ops p in
  let last_use = Array.make n (-1) in
  Prog.iter
    (fun o -> Array.iter (fun a -> last_use.(a) <- max last_use.(a) o.Prog.id) o.Prog.args)
    p;
  (* Outputs stay live to the end of the program. *)
  List.iter (fun v -> last_use.(v) <- n) p.Prog.outputs;
  let buffer_of = Array.make n (-1) in
  let free = Queue.create () in
  let next_buffer = ref 0 in
  let live = ref 0 and peak = ref 0 in
  (* expiring.(i): values whose last use is op i *)
  let expiring = Array.make (n + 1) [] in
  Array.iteri (fun v u -> if u >= 0 && u < n then expiring.(u) <- v :: expiring.(u)) last_use;
  for i = 0 to n - 1 do
    (* allocate the result buffer *)
    if last_use.(i) >= 0 then begin
      let b =
        match Queue.take_opt free with
        | Some b -> b
        | None ->
            let b = !next_buffer in
            incr next_buffer;
            b
      in
      buffer_of.(i) <- b;
      incr live;
      peak := max !peak !live
    end;
    (* release buffers whose final consumer was this op *)
    List.iter
      (fun v ->
        if buffer_of.(v) >= 0 then begin
          Queue.add buffer_of.(v) free;
          decr live
        end)
      expiring.(i)
  done;
  { last_use; buffer_of; buffer_count = !next_buffer; peak_live = !peak }
