(** Liveness analysis and ciphertext-buffer planning (the memory
    optimization of the paper's SEAL dialect).

    Ciphertexts dominate FHE memory consumption; reusing dead ciphertext
    buffers bounds the working set by the peak number of simultaneously live
    values rather than the program length. *)

type t = private {
  last_use : int array; (** index of the final consumer of each value, or -1 if unused *)
  buffer_of : int array; (** buffer id assigned to each value *)
  buffer_count : int; (** total buffers needed *)
  peak_live : int; (** maximum number of simultaneously live values *)
}

val analyze : Prog.t -> t
(** Greedy linear-scan assignment over the (already topologically ordered)
    program. Outputs are treated as live to the end. *)
