type t = Free | Plain of scaled | Cipher of scaled
and scaled = { scale : float; level : int }

let is_scaled = function Free -> false | Plain _ | Cipher _ -> true
let is_cipher = function Cipher _ -> true | Free | Plain _ -> false
let scaled_of = function Free -> None | Plain s | Cipher s -> Some s

let scale_exn = function
  | Free -> invalid_arg "Types.scale_exn: free type has no scale"
  | Plain s | Cipher s -> s.scale

let level_exn = function
  | Free -> invalid_arg "Types.level_exn: free type has no level"
  | Plain s | Cipher s -> s.level

let scale_close a b = Float.abs (a -. b) < 0.01

let equal a b =
  match (a, b) with
  | Free, Free -> true
  | Plain x, Plain y | Cipher x, Cipher y -> x.level = y.level && scale_close x.scale y.scale
  | (Free | Plain _ | Cipher _), _ -> false

let pp fmt = function
  | Free -> Format.fprintf fmt "free"
  | Plain { scale; level } -> Format.fprintf fmt "plain<%g,%d>" scale level
  | Cipher { scale; level } -> Format.fprintf fmt "cipher<%g,%d>" scale level

let to_string t = Format.asprintf "%a" pp t
