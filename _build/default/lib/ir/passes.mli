(** Generic IR cleanup passes.

    All passes preserve program semantics and return a fresh program (the
    input is never mutated structurally). Types are not recomputed; run
    {!Typing.check} afterwards if needed. *)

val dce : Prog.t -> Prog.t
(** Remove operations whose value never reaches an output. Input ops are
    kept (they are part of the signature). *)

val cse : Prog.t -> Prog.t
(** Common-subexpression elimination by forward value numbering: operations
    with identical kind and (already-numbered) operands collapse. *)

val constant_fold : Prog.t -> Prog.t
(** Fold homomorphic operations whose operands are all constants, evaluating
    element-wise over the slot vector. *)

val fold_rotations : Prog.t -> Prog.t
(** Collapse chained rotations: [rotate (rotate x a) b] with a single use
    becomes [rotate x (a+b)] (dropping it entirely when the combined amount
    is a multiple of the slot count), and [rotate x 0] becomes [x]. Each
    rotation costs a key switch, so chains are worth one pass. *)

val early_modswitch : Prog.t -> Prog.t
(** EVA's early-modswitch optimization: a [modswitch] applied to the single
    use of an eligible operation is absorbed into that operation's operands
    (or its attribute, for [encode]), so the operation itself executes at
    the higher — cheaper — level. Applied transitively in one backward
    pass. *)

val default_pipeline : Prog.t -> Prog.t
(** [cse], [constant_fold], [dce] in that order. *)
