(** The HECATE type system (paper §IV-B).

    A value is [free] (not encoded), [plain] (encoded, not encrypted) or
    [cipher] (encoded and encrypted). Plain and cipher values carry a scale
    and a rescaling level; the paper calls these the {e scaled} types.
    Scales are tracked in log2 throughout the compiler. *)

type t =
  | Free
  | Plain of scaled
  | Cipher of scaled

and scaled = { scale : float; (** log2 of the scale *) level : int }

val is_scaled : t -> bool
val is_cipher : t -> bool

val scaled_of : t -> scaled option
(** The scale/level payload of a plain or cipher type. *)

val scale_exn : t -> float
(** @raise Invalid_argument on [Free]. *)

val level_exn : t -> int
(** @raise Invalid_argument on [Free]. *)

val scale_close : float -> float -> bool
(** Log-scale equality up to the drift that near-power-of-two rescaling
    primes introduce (tolerance 0.01 bits). *)

val equal : t -> t -> bool
(** Type equality, with {!scale_close} on scales. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
