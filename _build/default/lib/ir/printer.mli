(** Textual form of HECATE IR programs.

    Example:
    {v
    func main(%0: cipher, %1: cipher) slots=4096 {
      %2 = mul %0, %1 : cipher<40,0>
      %3 = rescale %2 : cipher<20,1>
      return %3
    }
    v}

    Type annotations are printed when known; {!Parser.parse} accepts and
    ignores them (types are recomputed by the checker). *)

val pp : Format.formatter -> Prog.t -> unit
val to_string : Prog.t -> string
