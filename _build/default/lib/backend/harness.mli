(** Evaluation harness: the paper's waterline search (§VII-B).

    For every benchmark and scheme the paper tries 36 waterlines, keeps the
    configurations whose output error stays below a bound (2^-8), and
    reports the fastest. [search] reproduces that: waterlines are ranked by
    estimated latency and executed in that order until one meets the error
    bound — the first hit is by construction the minimum-estimated-latency
    feasible configuration. *)

val default_waterlines : float list
(** 36 log2 waterlines, evenly spaced over [\[10, 27.5\]] (see DESIGN.md for
    why this range differs from a 60-bit-prime SEAL deployment). *)

type selection = {
  scheme : Hecate.Driver.scheme;
  waterline_bits : float;
  compiled : Hecate.Driver.compiled;
  rmse : float;
  max_abs_error : float;
  actual_seconds : float; (** wall-clock on the in-repo backend *)
  estimated_seconds_exec : float; (** estimate at the executed ring degree *)
  exec_n : int;
  configs_executed : int; (** how many waterlines had to be run *)
}

val cached_context :
  params:Hecate.Paramselect.t -> rotations:int list -> Hecate_ckks.Eval.t
(** Evaluator contexts keyed by chain shape and rotation set: key generation
    dominates sweep time, so the harness shares contexts across
    configurations. *)

val search :
  ?waterlines:float list ->
  ?error_bound:float ->
  ?sf_bits:int ->
  ?max_epochs:int ->
  ?use_profiled_model:bool ->
  ?feasible_target:int ->
  scheme:Hecate.Driver.scheme ->
  Hecate_apps.Apps.t ->
  selection option
(** [search ~scheme bench] returns [None] when no waterline meets the error
    bound. Configurations are executed fastest-estimated first until
    [feasible_target] (default 3) feasible ones are found; the fastest
    measured of those is returned. Infeasible configurations (compile- or
    run-time scale failures) are skipped, like overflowing configurations
    in the paper's sweep. *)

val estimate_only :
  ?waterlines:float list ->
  ?sf_bits:int ->
  ?max_epochs:int ->
  scheme:Hecate.Driver.scheme ->
  Hecate_apps.Apps.t ->
  (float * Hecate.Driver.compiled) list
(** Estimated latency (at the security-mandated degree) for every waterline
    that compiles, sorted fastest first: the ranking [search] walks. *)
