lib/backend/harness.ml: Accuracy Hashtbl Hecate Hecate_apps Hecate_ckks Interp List Profile
