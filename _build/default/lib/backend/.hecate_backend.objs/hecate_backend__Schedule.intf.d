lib/backend/schedule.mli: Format Hecate_ckks Hecate_ir
