lib/backend/interp.ml: Array Float Hashtbl Hecate Hecate_ckks Hecate_ir Hecate_rns List Option Unix
