lib/backend/profile.ml: Array Hashtbl Hecate Hecate_ckks Unix
