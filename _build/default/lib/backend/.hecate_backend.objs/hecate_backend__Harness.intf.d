lib/backend/harness.mli: Hecate Hecate_apps Hecate_ckks
