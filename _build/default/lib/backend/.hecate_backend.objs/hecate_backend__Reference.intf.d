lib/backend/reference.mli: Hecate_ir
