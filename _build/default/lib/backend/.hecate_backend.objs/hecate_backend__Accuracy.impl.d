lib/backend/accuracy.ml: Array Hecate_support Interp List Reference
