lib/backend/reference.ml: Array Hecate_ir List
