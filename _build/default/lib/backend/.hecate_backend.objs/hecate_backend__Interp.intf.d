lib/backend/interp.mli: Hecate Hecate_ckks Hecate_ir
