lib/backend/accuracy.mli: Hecate_ckks Hecate_ir
