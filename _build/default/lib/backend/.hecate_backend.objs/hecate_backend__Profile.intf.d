lib/backend/profile.mli: Hashtbl Hecate Hecate_ckks
