lib/backend/schedule.ml: Array Float Format Hecate_ckks Hecate_ir Hecate_rns List
