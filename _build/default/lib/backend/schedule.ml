module Prog = Hecate_ir.Prog
module Types = Hecate_ir.Types
module Liveness = Hecate_ir.Liveness
module Eval = Hecate_ckks.Eval
module Chain = Hecate_rns.Chain
module Params = Hecate_ckks.Params

type operand = Buffer of int | Immediate of float array | Scalar_imm of float

type instruction =
  | Encrypt_input of { name : string; dst : int }
  | Encode_imm of { value : operand; scale_bits : float; level : int; plain_id : int }
  | Add of { lhs : int; rhs : int; dst : int }
  | Sub of { lhs : int; rhs : int; dst : int }
  | Add_plain of { lhs : int; plain : int; dst : int }
  | Sub_plain of { lhs : int; plain : int; dst : int; reversed : bool }
  | Mul of { lhs : int; rhs : int; dst : int }
  | Mul_plain of { lhs : int; plain : int; dst : int }
  | Negate of { src : int; dst : int }
  | Rotate of { src : int; amount : int; dst : int }
  | Rescale of { src : int; dst : int }
  | Modswitch of { src : int; dst : int }
  | Modswitch_plain of { plain : int; dst_plain : int }
  | Upscale of { src : int; target_scale_bits : float; dst : int }
  | Downscale of { src : int; waterline_bits : float; dst : int }
  | Output of { src : int; index : int }

type t = {
  instructions : instruction array;
  cipher_buffers : int;
  plain_slots : int;
  output_count : int;
  source_ops : int;
}

type lowered_value = Lcipher of int | Lplain of int | Lfree of operand

let lower (p : Prog.t) =
  let live = Liveness.analyze p in
  let values = Array.make (Prog.num_ops p) (Lfree (Scalar_imm 0.)) in
  let instrs = ref [] in
  let plain_count = ref 0 in
  let emit i = instrs := i :: !instrs in
  let fresh_plain () =
    let id = !plain_count in
    incr plain_count;
    id
  in
  let is_cipher_ty v = Types.is_cipher (Prog.op p v).Prog.ty in
  let buffer v =
    match values.(v) with
    | Lcipher b -> b
    | Lplain _ | Lfree _ -> invalid_arg "Schedule.lower: expected a ciphertext value"
  in
  let plain v =
    match values.(v) with
    | Lplain id -> id
    | Lcipher _ | Lfree _ -> invalid_arg "Schedule.lower: expected a plaintext value"
  in
  let dst_of (o : Prog.op) =
    let b = live.Liveness.buffer_of.(o.Prog.id) in
    (* values with no uses still need a scratch buffer *)
    if b >= 0 then b else 0
  in
  Prog.iter
    (fun (o : Prog.op) ->
      let lowered =
        match o.Prog.kind with
        | Prog.Input { name } ->
            let dst = dst_of o in
            emit (Encrypt_input { name; dst });
            Lcipher dst
        | Prog.Const { value = Prog.Scalar x } -> Lfree (Scalar_imm x)
        | Prog.Const { value = Prog.Vector v } -> Lfree (Immediate (Array.copy v))
        | Prog.Encode { scale; level } -> (
            match values.(o.Prog.args.(0)) with
            | Lfree operand ->
                let plain_id = fresh_plain () in
                emit (Encode_imm { value = operand; scale_bits = scale; level; plain_id });
                Lplain plain_id
            | Lcipher _ | Lplain _ -> invalid_arg "Schedule.lower: encode of non-free value")
        | Prog.Add | Prog.Sub -> (
            let sub = o.Prog.kind = Prog.Sub in
            let a = o.Prog.args.(0) and b = o.Prog.args.(1) in
            let dst = dst_of o in
            match (is_cipher_ty a, is_cipher_ty b) with
            | true, true ->
                emit
                  (if sub then Sub { lhs = buffer a; rhs = buffer b; dst }
                   else Add { lhs = buffer a; rhs = buffer b; dst });
                Lcipher dst
            | true, false ->
                emit
                  (if sub then Sub_plain { lhs = buffer a; plain = plain b; dst; reversed = false }
                   else Add_plain { lhs = buffer a; plain = plain b; dst });
                Lcipher dst
            | false, true ->
                emit
                  (if sub then Sub_plain { lhs = buffer b; plain = plain a; dst; reversed = true }
                   else Add_plain { lhs = buffer b; plain = plain a; dst });
                Lcipher dst
            | false, false -> invalid_arg "Schedule.lower: plain-plain addition")
        | Prog.Mul -> (
            let a = o.Prog.args.(0) and b = o.Prog.args.(1) in
            let dst = dst_of o in
            match (is_cipher_ty a, is_cipher_ty b) with
            | true, true ->
                emit (Mul { lhs = buffer a; rhs = buffer b; dst });
                Lcipher dst
            | true, false ->
                emit (Mul_plain { lhs = buffer a; plain = plain b; dst });
                Lcipher dst
            | false, true ->
                emit (Mul_plain { lhs = buffer b; plain = plain a; dst });
                Lcipher dst
            | false, false -> invalid_arg "Schedule.lower: plain-plain multiplication")
        | Prog.Negate ->
            let dst = dst_of o in
            emit (Negate { src = buffer o.Prog.args.(0); dst });
            Lcipher dst
        | Prog.Rotate { amount } ->
            let dst = dst_of o in
            emit (Rotate { src = buffer o.Prog.args.(0); amount; dst });
            Lcipher dst
        | Prog.Rescale ->
            let dst = dst_of o in
            emit (Rescale { src = buffer o.Prog.args.(0); dst });
            Lcipher dst
        | Prog.Modswitch -> (
            match values.(o.Prog.args.(0)) with
            | Lcipher src ->
                let dst = dst_of o in
                emit (Modswitch { src; dst });
                Lcipher dst
            | Lplain src ->
                let dst_plain = fresh_plain () in
                emit (Modswitch_plain { plain = src; dst_plain });
                Lplain dst_plain
            | Lfree _ -> invalid_arg "Schedule.lower: modswitch of a free value")
        | Prog.Upscale { target_scale } ->
            let dst = dst_of o in
            emit (Upscale { src = buffer o.Prog.args.(0); target_scale_bits = target_scale; dst });
            Lcipher dst
        | Prog.Downscale { waterline } ->
            let dst = dst_of o in
            emit (Downscale { src = buffer o.Prog.args.(0); waterline_bits = waterline; dst });
            Lcipher dst
      in
      values.(o.Prog.id) <- lowered)
    p;
  List.iteri (fun index v -> emit (Output { src = buffer v; index })) p.Prog.outputs;
  {
    instructions = Array.of_list (List.rev !instrs);
    cipher_buffers = max 1 live.Liveness.buffer_count;
    plain_slots = max 1 !plain_count;
    output_count = List.length p.Prog.outputs;
    source_ops = Prog.num_ops p;
  }

let pp_operand fmt = function
  | Buffer b -> Format.fprintf fmt "ct[%d]" b
  | Immediate v -> Format.fprintf fmt "imm<%d elems>" (Array.length v)
  | Scalar_imm x -> Format.fprintf fmt "imm %g" x

let pp_instruction fmt = function
  | Encrypt_input { name; dst } -> Format.fprintf fmt "ct[%d] <- encrypt %S" dst name
  | Encode_imm { value; scale_bits; level; plain_id } ->
      Format.fprintf fmt "pt[%d] <- encode %a scale=2^%g level=%d" plain_id pp_operand value
        scale_bits level
  | Add { lhs; rhs; dst } -> Format.fprintf fmt "ct[%d] <- add ct[%d], ct[%d]" dst lhs rhs
  | Sub { lhs; rhs; dst } -> Format.fprintf fmt "ct[%d] <- sub ct[%d], ct[%d]" dst lhs rhs
  | Add_plain { lhs; plain; dst } ->
      Format.fprintf fmt "ct[%d] <- add_plain ct[%d], pt[%d]" dst lhs plain
  | Sub_plain { lhs; plain; dst; reversed } ->
      Format.fprintf fmt "ct[%d] <- %s ct[%d], pt[%d]" dst
        (if reversed then "rsub_plain" else "sub_plain")
        lhs plain
  | Mul { lhs; rhs; dst } -> Format.fprintf fmt "ct[%d] <- mul+relin ct[%d], ct[%d]" dst lhs rhs
  | Mul_plain { lhs; plain; dst } ->
      Format.fprintf fmt "ct[%d] <- mul_plain ct[%d], pt[%d]" dst lhs plain
  | Negate { src; dst } -> Format.fprintf fmt "ct[%d] <- negate ct[%d]" dst src
  | Rotate { src; amount; dst } -> Format.fprintf fmt "ct[%d] <- rotate ct[%d], %d" dst src amount
  | Rescale { src; dst } -> Format.fprintf fmt "ct[%d] <- rescale ct[%d]" dst src
  | Modswitch { src; dst } -> Format.fprintf fmt "ct[%d] <- modswitch ct[%d]" dst src
  | Modswitch_plain { plain; dst_plain } ->
      Format.fprintf fmt "pt[%d] <- modswitch pt[%d]" dst_plain plain
  | Upscale { src; target_scale_bits; dst } ->
      Format.fprintf fmt "ct[%d] <- upscale ct[%d] to 2^%g" dst src target_scale_bits
  | Downscale { src; waterline_bits; dst } ->
      Format.fprintf fmt "ct[%d] <- downscale ct[%d] to 2^%g" dst src waterline_bits
  | Output { src; index } -> Format.fprintf fmt "out[%d] <- ct[%d]" index src

let pp fmt t =
  Format.fprintf fmt "; %d instructions, %d ciphertext buffers, %d plaintexts (from %d IR ops)@\n"
    (Array.length t.instructions) t.cipher_buffers t.plain_slots t.source_ops;
  Array.iter (fun i -> Format.fprintf fmt "  %a@\n" pp_instruction i) t.instructions

let execute eval ~waterline_bits t ~inputs =
  let params = Eval.params eval in
  let chain = params.Params.chain in
  let slots = Params.slots params in
  let wl = Float.exp2 waterline_bits in
  let cts : Eval.ciphertext option array = Array.make t.cipher_buffers None in
  let pts : Eval.plaintext option array = Array.make t.plain_slots None in
  let outputs = Array.make t.output_count [||] in
  let ct b = match cts.(b) with Some c -> c | None -> invalid_arg "Schedule.execute: empty buffer" in
  let pt b = match pts.(b) with Some p -> p | None -> invalid_arg "Schedule.execute: empty plaintext" in
  let pad v =
    let out = Array.make slots 0. in
    Array.blit v 0 out 0 (min slots (Array.length v));
    out
  in
  let align a target =
    if Float.abs (Eval.scale a -. target) /. target < 1e-9 then a else Eval.set_scale eval a target
  in
  Array.iter
    (fun instr ->
      match instr with
      | Encrypt_input { name; dst } -> (
          match List.assoc_opt name inputs with
          | Some v -> cts.(dst) <- Some (Eval.encrypt_vector eval ~scale:wl (pad v))
          | None -> invalid_arg ("Schedule.execute: missing input " ^ name))
      | Encode_imm { value; scale_bits; level; plain_id } ->
          let scale = Float.exp2 scale_bits in
          let p =
            match value with
            | Scalar_imm x -> Eval.encode eval ~level ~scale (Array.make slots x)
            | Immediate v -> Eval.encode eval ~level ~scale (pad v)
            | Buffer _ -> invalid_arg "Schedule.execute: cannot encode a buffer"
          in
          pts.(plain_id) <- Some p
      | Add { lhs; rhs; dst } ->
          let a = ct lhs in
          cts.(dst) <- Some (Eval.add eval a (align (ct rhs) (Eval.scale a)))
      | Sub { lhs; rhs; dst } ->
          let a = ct lhs in
          cts.(dst) <- Some (Eval.sub eval a (align (ct rhs) (Eval.scale a)))
      | Add_plain { lhs; plain; dst } ->
          let p = pt plain in
          cts.(dst) <- Some (Eval.add_plain eval (align (ct lhs) p.Eval.pt_scale) p)
      | Sub_plain { lhs; plain; dst; reversed } ->
          let p = pt plain in
          let d = Eval.sub_plain eval (align (ct lhs) p.Eval.pt_scale) p in
          cts.(dst) <- Some (if reversed then Eval.negate eval d else d)
      | Mul { lhs; rhs; dst } -> cts.(dst) <- Some (Eval.mul eval (ct lhs) (ct rhs))
      | Mul_plain { lhs; plain; dst } -> cts.(dst) <- Some (Eval.mul_plain eval (ct lhs) (pt plain))
      | Negate { src; dst } -> cts.(dst) <- Some (Eval.negate eval (ct src))
      | Rotate { src; amount; dst } -> cts.(dst) <- Some (Eval.rotate eval (ct src) amount)
      | Rescale { src; dst } -> cts.(dst) <- Some (Eval.rescale eval (ct src))
      | Modswitch { src; dst } -> cts.(dst) <- Some (Eval.mod_switch eval (ct src))
      | Modswitch_plain { plain; dst_plain } ->
          pts.(dst_plain) <- Some (Eval.mod_switch_plain eval (pt plain))
      | Upscale { src; target_scale_bits; dst } ->
          let c = ct src in
          let target = Float.exp2 target_scale_bits in
          let factor = target /. Eval.scale c in
          cts.(dst) <-
            Some (if factor < 1.5 then Eval.set_scale eval c target else Eval.upscale eval c ~factor)
      | Downscale { src; waterline_bits; dst } ->
          let c = ct src in
          let lc = Chain.length chain - Eval.level c in
          let q_drop = float_of_int (Chain.prime chain (lc - 1)) in
          let factor = q_drop *. Float.exp2 waterline_bits /. Eval.scale c in
          cts.(dst) <- Some (Eval.rescale eval (Eval.upscale eval c ~factor))
      | Output { src; index } -> outputs.(index) <- Eval.decrypt eval (ct src))
    t.instructions;
  Array.to_list outputs
