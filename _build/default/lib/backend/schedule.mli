(** The SEAL dialect: a fully lowered, buffer-addressed instruction schedule.

    The last compilation stage (paper Fig. 3) turns the scale-managed IR
    into straight-line instructions over a small pool of reusable ciphertext
    buffers, sized by liveness analysis. [downscale] and [upscale] are
    lowered to their concrete SEAL-level implementations here, so an
    executor needs only the primitive RNS-CKKS API. *)

type operand = Buffer of int | Immediate of float array | Scalar_imm of float

type instruction =
  | Encrypt_input of { name : string; dst : int }
  | Encode_imm of { value : operand; scale_bits : float; level : int; plain_id : int }
      (** stage a plaintext into the plaintext pool *)
  | Add of { lhs : int; rhs : int; dst : int }
  | Sub of { lhs : int; rhs : int; dst : int }
  | Add_plain of { lhs : int; plain : int; dst : int }
  | Sub_plain of { lhs : int; plain : int; dst : int; reversed : bool }
      (** [reversed] computes [plain - cipher] *)
  | Mul of { lhs : int; rhs : int; dst : int } (** includes relinearization *)
  | Mul_plain of { lhs : int; plain : int; dst : int }
  | Negate of { src : int; dst : int }
  | Rotate of { src : int; amount : int; dst : int }
  | Rescale of { src : int; dst : int }
  | Modswitch of { src : int; dst : int }
  | Modswitch_plain of { plain : int; dst_plain : int }
  | Upscale of { src : int; target_scale_bits : float; dst : int }
      (** lowered to an exact constant-one plaintext multiply *)
  | Downscale of { src : int; waterline_bits : float; dst : int }
      (** lowered to upscale-to-[S_f*S_w] followed by rescale *)
  | Output of { src : int; index : int }

type t = {
  instructions : instruction array;
  cipher_buffers : int; (** ciphertext pool size (= liveness buffer count) *)
  plain_slots : int; (** plaintext pool size *)
  output_count : int;
  source_ops : int; (** IR operations lowered *)
}

val lower : Hecate_ir.Prog.t -> t
(** Lower a typed, scale-managed program. Rotations, constants and types
    must already be legal (run the driver first).
    @raise Invalid_argument on free-typed homomorphic operands. *)

val pp : Format.formatter -> t -> unit
(** Human-readable listing. *)

val execute :
  Hecate_ckks.Eval.t ->
  waterline_bits:float ->
  t ->
  inputs:(string * float array) list ->
  float array list
(** Reference executor for schedules; produces the same outputs as
    {!Interp.execute} on the originating program. *)
