module Prog = Hecate_ir.Prog

let pad slot_count v =
  let out = Array.make slot_count 0. in
  Array.blit v 0 out 0 (min slot_count (Array.length v));
  out

let execute (p : Prog.t) ~inputs =
  let sc = p.Prog.slot_count in
  let values = Array.make (Prog.num_ops p) [||] in
  let arg o i = values.(o.Prog.args.(i)) in
  Prog.iter
    (fun (o : Prog.op) ->
      let result =
        match o.Prog.kind with
        | Prog.Input { name } -> (
            match List.assoc_opt name inputs with
            | Some v -> pad sc v
            | None -> invalid_arg ("Reference.execute: missing input " ^ name))
        | Prog.Const { value = Prog.Scalar x } -> Array.make sc x
        | Prog.Const { value = Prog.Vector v } -> pad sc v
        | Prog.Encode _ | Prog.Rescale | Prog.Modswitch | Prog.Upscale _ | Prog.Downscale _ ->
            arg o 0
        | Prog.Add -> Array.init sc (fun i -> (arg o 0).(i) +. (arg o 1).(i))
        | Prog.Sub -> Array.init sc (fun i -> (arg o 0).(i) -. (arg o 1).(i))
        | Prog.Mul -> Array.init sc (fun i -> (arg o 0).(i) *. (arg o 1).(i))
        | Prog.Negate -> Array.map (fun x -> -.x) (arg o 0)
        | Prog.Rotate { amount } ->
            let r = ((amount mod sc) + sc) mod sc in
            let v = arg o 0 in
            Array.init sc (fun i -> v.((i + r) mod sc))
      in
      values.(o.Prog.id) <- result)
    p;
  List.map (fun v -> Array.copy values.(v)) p.Prog.outputs
