module Stats = Hecate_support.Stats

type t = {
  rmse : float;
  max_abs_error : float;
  outputs : float array list;
  elapsed_seconds : float;
}

let measure eval ~waterline_bits prog ~inputs ~valid_slots =
  let expected = Reference.execute prog ~inputs in
  let report = Interp.execute eval ~waterline_bits prog ~inputs in
  let clip v = Array.sub v 0 (min valid_slots (Array.length v)) in
  let exp_all = Array.concat (List.map clip expected) in
  let got_all = Array.concat (List.map clip report.Interp.outputs) in
  {
    rmse = Stats.rmse exp_all got_all;
    max_abs_error = Stats.max_abs_diff exp_all got_all;
    outputs = report.Interp.outputs;
    elapsed_seconds = report.Interp.elapsed_seconds;
  }
