(** Output-accuracy measurement: FHE execution vs the exact plaintext
    reference (Table II's RMS error). *)

type t = {
  rmse : float;
  max_abs_error : float;
  outputs : float array list; (** the decrypted FHE outputs *)
  elapsed_seconds : float; (** homomorphic execution time *)
}

val measure :
  Hecate_ckks.Eval.t ->
  waterline_bits:float ->
  Hecate_ir.Prog.t ->
  inputs:(string * float array) list ->
  valid_slots:int ->
  t
(** Runs both interpreters and compares the first [valid_slots] slots of
    every output (benchmarks only populate a prefix of the packed vector). *)
