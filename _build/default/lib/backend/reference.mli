(** Exact plaintext reference interpreter.

    Evaluates a HECATE IR program over unencrypted slot vectors. The opaque
    scale-management operations are semantic no-ops here — by the
    homomorphism property the result must match the decrypted FHE execution
    up to noise, which is exactly what the accuracy harness measures. *)

val execute : Hecate_ir.Prog.t -> inputs:(string * float array) list -> float array list
(** [execute prog ~inputs] returns one slot vector (length
    [prog.slot_count]) per program output. Input vectors shorter than the
    slot count are zero-padded.
    @raise Invalid_argument on a missing input name. *)
