lib/frontend/dsl.mli: Hecate_ir
