lib/frontend/tensor.mli: Dsl Hecate_ir
