lib/frontend/dsl.ml: Array Float Fun Hecate_ir List
