lib/frontend/tensor.ml: Array Dsl List
