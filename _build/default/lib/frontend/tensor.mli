(** CHET-style tensor frontend: shaped, layout-aware values that lower onto
    the packed-vector DSL (the paper's Fig. 3 anticipates such frontends on
    top of HECATE IR).

    Layout model: a tensor is a logical [rows x cols] grid (vectors are
    [1 x k]) embedded in the slot vector at a {e dilation}: element [(r, c)]
    of a grid with row pitch [pitch] and dilation [d] lives at slot
    [(r * pitch + c) * d]. Convolutions and poolings keep data in place and
    double the dilation instead of compacting — the standard packed-FHE
    trick the LeNet benchmark uses — while [compact] gathers a dilated grid
    into a dense vector for fully-connected layers. *)

type ctx
type t

val create : ?name:string -> slot_count:int -> unit -> ctx
val dsl : ctx -> Dsl.t
(** Escape hatch to the underlying DSL builder. *)

val input_image : ctx -> string -> height:int -> width:int -> t
(** Row-major dense image (dilation 1, pitch = width). *)

val input_vector : ctx -> string -> length:int -> t

val dims : t -> int * int
(** logical (rows, cols) *)

val dilation : t -> int

(** {2 Element-wise} *)

val add : t -> t -> t
(** @raise Invalid_argument on shape or layout mismatch. *)

val sub : t -> t -> t
val mul : t -> t -> t
val square : t -> t
val scale : t -> float -> t
val add_scalar : t -> float -> t

(** {2 Structured} *)

val conv2d : t -> kernel:float array array -> bias:float -> t
(** Valid 2-D convolution with a square kernel: the result keeps the
    operand's grid and dilation; only the top-left
    [(rows - k + 1) x (cols - k + 1)] region is meaningful. *)

val avg_pool2x2 : t -> t
(** 2x2 average pooling by dilation doubling: the result's logical grid
    halves and its dilation doubles. *)

val compact : t -> t
(** Gather a dilated grid into a dense [1 x (rows*cols)] vector (one mask +
    rotate + add per element — the fully-connected boundary). Dense inputs
    are returned unchanged. *)

val dense : t -> weights:float array array -> bias:float array -> t
(** Fully-connected layer on a dense vector via the BSGS diagonal method.
    [weights] is [out x in].
    @raise Invalid_argument if the operand is not dense (run {!compact}). *)

val output : ctx -> t -> unit
val finish : ctx -> Hecate_ir.Prog.t
