type ctx = { d : Dsl.t }

type t = {
  ctx : ctx;
  rows : int;
  cols : int;
  pitch : int; (* slots between consecutive rows, before dilation *)
  dil : int; (* dilation: slot distance between logically adjacent columns *)
  expr : Dsl.expr;
}

let create ?name ~slot_count () = { d = Dsl.create ?name ~slot_count () }
let dsl c = c.d
let dims t = (t.rows, t.cols)
let dilation t = t.dil

let input_image c name ~height ~width =
  if height * width > Dsl.slot_count c.d then invalid_arg "Tensor.input_image: too large";
  { ctx = c; rows = height; cols = width; pitch = width; dil = 1; expr = Dsl.input c.d name }

let input_vector c name ~length =
  if length > Dsl.slot_count c.d then invalid_arg "Tensor.input_vector: too large";
  { ctx = c; rows = 1; cols = length; pitch = length; dil = 1; expr = Dsl.input c.d name }

let same_layout a b =
  a.rows = b.rows && a.cols = b.cols && a.pitch = b.pitch && a.dil = b.dil

let lift2 name f a b =
  if a.ctx != b.ctx then invalid_arg ("Tensor." ^ name ^ ": different contexts");
  if not (same_layout a b) then invalid_arg ("Tensor." ^ name ^ ": shape or layout mismatch");
  { a with expr = f a.ctx.d a.expr b.expr }

let add a b = lift2 "add" Dsl.add a b
let sub a b = lift2 "sub" Dsl.sub a b
let mul a b = lift2 "mul" Dsl.mul a b
let square a = { a with expr = Dsl.square a.ctx.d a.expr }
let scale a c = { a with expr = Dsl.scale_by a.ctx.d a.expr c }
let add_scalar a c = { a with expr = Dsl.add a.ctx.d a.expr (Dsl.const_scalar a.ctx.d c) }

let conv2d a ~kernel ~bias =
  let k = Array.length kernel in
  if k = 0 || Array.exists (fun row -> Array.length row <> k) kernel then
    invalid_arg "Tensor.conv2d: kernel must be square";
  if k > a.rows || k > a.cols then invalid_arg "Tensor.conv2d: kernel larger than grid";
  let taps =
    List.concat
      (List.init k (fun dy -> List.init k (fun dx -> (dy, dx, kernel.(dy).(dx)))))
  in
  let conv = Dsl.conv2d a.ctx.d ~image:a.expr ~img_width:a.pitch ~stride:a.dil ~taps in
  let conv = if bias = 0. then conv else Dsl.add a.ctx.d conv (Dsl.const_scalar a.ctx.d bias) in
  { a with rows = a.rows - k + 1; cols = a.cols - k + 1; expr = conv }

let avg_pool2x2 a =
  if a.rows < 2 || a.cols < 2 then invalid_arg "Tensor.avg_pool2x2: grid too small";
  let pooled = Dsl.avg_pool2x2 a.ctx.d a.expr ~img_width:a.pitch ~stride:a.dil in
  { a with rows = a.rows / 2; cols = a.cols / 2; dil = 2 * a.dil; expr = pooled }

let compact a =
  if a.dil = 1 && a.rows = 1 then a
  else begin
    let d = a.ctx.d in
    let pieces =
      List.concat
        (List.init a.rows (fun r ->
             List.init a.cols (fun c ->
                 let src = ((r * a.pitch) + c) * a.dil in
                 let dst = (r * a.cols) + c in
                 let masked = Dsl.mask d a.expr (fun s -> s = src) in
                 Dsl.rotate d masked (src - dst))))
    in
    {
      a with
      rows = 1;
      cols = a.rows * a.cols;
      pitch = a.rows * a.cols;
      dil = 1;
      expr = Dsl.add_many d pieces;
    }
  end

let dense a ~weights ~bias =
  if a.rows <> 1 || a.dil <> 1 then
    invalid_arg "Tensor.dense: operand must be a dense vector (apply compact first)";
  let out_dim = Array.length weights in
  if out_dim = 0 then invalid_arg "Tensor.dense: empty weights";
  let in_dim = Array.length weights.(0) in
  if in_dim <> a.cols then invalid_arg "Tensor.dense: weight width does not match the vector";
  if Array.length bias <> out_dim then invalid_arg "Tensor.dense: bias length mismatch";
  let d = a.ctx.d in
  let y = Dsl.matvec d ~rows:out_dim ~cols:in_dim (fun j i -> weights.(j).(i)) a.expr in
  let y = Dsl.add d y (Dsl.const_vector d bias) in
  { a with rows = 1; cols = out_dim; pitch = out_dim; dil = 1; expr = y }

let output c t = Dsl.output c.d t.expr
let finish c = Dsl.finish c.d
