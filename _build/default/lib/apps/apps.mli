(** The paper's benchmark applications (§VII-A), expressed in the DSL with
    deterministic synthetic data.

    Every builder takes size parameters so the same program shape can be
    compiled at the paper's scale (for operation counts and estimated
    latency) and executed at a reduced scale on the in-repo CKKS substrate
    (for accuracy and estimator validation); defaults are the paper's
    sizes. *)

type t = {
  name : string;
  prog : Hecate_ir.Prog.t; (** unmanaged HECATE IR *)
  inputs : (string * float array) list; (** deterministic synthetic inputs *)
  valid_slots : int; (** slots carrying meaningful output *)
}

val sobel : ?size:int -> unit -> t
(** Sobel edge detection on a [size x size] image (default 64): squared
    gradient magnitude from the two 3x3 stencils. *)

val harris : ?size:int -> unit -> t
(** Harris corner detection (default 64): gradients, 3x3 structure-tensor
    box sums, response [det - 0.04 * trace^2]. *)

val mlp : ?in_dim:int -> ?hidden:int -> ?out_dim:int -> unit -> t
(** Feed-forward classifier with square activation (defaults 784-100-10). *)

val lenet : ?reduced:bool -> unit -> t
(** LeNet-5 for 28x28 inputs, CGO-2022 variant: square activations and a
    64-wide second fully-connected layer. [reduced] (default false) shrinks
    the channel counts (2 and 4 instead of 6 and 16) for in-repo
    execution. *)

val linear_regression : ?epochs:int -> ?samples:int -> unit -> t
(** Encrypted gradient-descent training of [y = w x + b] (defaults: 2
    epochs, 16384 samples). Returns the final prediction vector. *)

val polynomial_regression : ?epochs:int -> ?samples:int -> unit -> t
(** Same, for the quadratic model [y = a x^2 + b x + c] (defaults: 2 epochs,
    16384 samples). *)

val paper_suite : unit -> t list
(** SF, HCD, MLP, LeNet, LR E2, LR E3, PR E2, PR E3 at paper sizes. *)

val reduced_suite : unit -> t list
(** The same eight programs at sizes executable on the in-repo CKKS backend
    in seconds rather than hours. *)
